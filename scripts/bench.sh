#!/bin/sh
# bench.sh — run the ICDB benchmark harness and emit the BENCH_PR10.json
# trajectory file at the repo root.
#
# Usage:
#   scripts/bench.sh                    # default: 1k and 10k catalogs, 200-client wire scenario
#   SIZES=1000 scripts/bench.sh         # small catalog only
#   GUARD=1 scripts/bench.sh            # fail the perf guards (snapshot-vs-JSON, journal 5x/2x, pareto 5x, open-latency)
#   CONNS=0 scripts/bench.sh            # skip the concurrent wire-server scenario
#   CHAOS=1 scripts/bench.sh            # also run the wire scenario with hostile clients
#   JWRITE=0 scripts/bench.sh           # skip the journal durability scenarios
#   OPENLAT= scripts/bench.sh           # skip the snapshot open-latency scenario
#   SIZES=1000,10000,100000 OUT=/tmp/bench.json scripts/bench.sh
set -eu
cd "$(dirname "$0")/.."
SIZES="${SIZES:-1000,10000}"
OUT="${OUT:-BENCH_PR10.json}"
BENCHTIME="${BENCHTIME:-300ms}"
CONNS="${CONNS:-200}"
JWRITE="${JWRITE:-10000}"
JOPEN="${JOPEN:-100000}"
JRECORDS="${JRECORDS:-1000}"
OPENLAT="${OPENLAT-100000,1000000}"
GUARD_FLAG=""
[ "${GUARD:-0}" != "0" ] && GUARD_FLAG="-guard"
CHAOS_FLAG=""
[ "${CHAOS:-0}" != "0" ] && CHAOS_FLAG="-chaos"
exec go run ./cmd/icdbq bench -sizes "$SIZES" -out "$OUT" -benchtime "$BENCHTIME" -conns "$CONNS" -jwrite "$JWRITE" -jopen "$JOPEN" -jrecords "$JRECORDS" -openlat "$OPENLAT" $GUARD_FLAG $CHAOS_FLAG
