// connect.go implements icdbq's client mode: "icdbq connect" opens a
// wire-protocol session against a running icdbd server (internal/wire)
// and drives it as a REPL or as a one-shot command, and "icdbq cql
// -remote" routes the existing cql subcommand over the same transport.
// Result rows stream to stdout as the server sends them; the session
// state the set command adjusts (width, weights) lives server-side and
// spans the whole connection.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"icdb/internal/wire"
)

// defaultAddr is where icdbq connect and icdbd meet unless told
// otherwise; it is the single source of truth for both usage strings
// and the -addr flag default.
const defaultAddr = "127.0.0.1:7390"

// runConnect dispatches "icdbq connect": a remote REPL by default, one
// command with -c.
func runConnect(args []string) error {
	fs := flag.NewFlagSet("connect", flag.ContinueOnError)
	addr := fs.String("addr", defaultAddr, "icdbd server address")
	cmd := fs.String("c", "", "execute one command and exit instead of starting a REPL")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (use -c %q to run one command)", fs.Arg(0), fs.Arg(0))
	}
	c, err := wire.Dial(*addr)
	if err != nil {
		return fmt.Errorf("connecting to %s: %w", *addr, err)
	}
	defer c.Close()
	if *cmd != "" {
		return remoteExec(c, *cmd)
	}
	return remoteREPL(c, *addr)
}

// runRemoteCQL dispatches "icdbq cql -remote": the one-shot cql
// subcommand routed to a server instead of the in-process engine.
func runRemoteCQL(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf(`cql -remote needs an address and one command string, e.g. icdbq cql -remote %s "find component executing STORAGE limit 5"`, defaultAddr)
	}
	c, err := wire.Dial(args[0])
	if err != nil {
		return fmt.Errorf("connecting to %s: %w", args[0], err)
	}
	defer c.Close()
	return remoteExec(c, args[1])
}

// remoteExec runs one command on the session, streaming rows to stdout.
func remoteExec(c *wire.Client, cmd string) error {
	_, err := c.Exec(cmd, func(line string) { fmt.Println(line) })
	return err
}

// remoteREPL mirrors the local REPL (cql.go) over a wire session: the
// server holds the session state, so set width / set area_weight stick
// across commands here exactly as they do locally. Remote errors name
// no column, so there is no caret line.
func remoteREPL(c *wire.Client, addr string) error {
	fmt.Printf("ICDB CQL, connected to %s. Type \"help\" for the command summary, \"quit\" to leave.\n", addr)
	rd := bufio.NewReader(os.Stdin)
	for {
		fmt.Print(replPrompt)
		raw, err := rd.ReadString('\n')
		if err != nil && raw == "" {
			fmt.Println()
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		atEOF := err != nil
		line := strings.TrimSpace(raw)
		switch line {
		case "":
			if atEOF {
				fmt.Println()
				return nil
			}
			continue
		case "quit", "exit":
			return nil
		}
		if err := remoteExec(c, line); err != nil {
			var re *wire.RemoteError
			if errors.As(err, &re) {
				fmt.Printf("error: %v\n", re)
			} else {
				// Transport failure: the connection is gone.
				return err
			}
		}
		if atEOF {
			fmt.Println()
			return nil
		}
	}
}
