// connect.go implements icdbq's client mode: "icdbq connect" opens a
// wire-protocol session against a running icdbd server (internal/wire)
// and drives it as a REPL or as a one-shot command, and "icdbq cql
// -remote" routes the existing cql subcommand over the same transport.
// Result rows stream to stdout as the server sends them; the session
// state the set command adjusts (width, weights) lives server-side and
// spans the whole connection.
//
// Client resilience: transport failures (refused dials, dropped
// connections) are retried with exponential backoff and jitter up to
// -retries attempts, while server-side rejections (bad commands, bad
// auth, quotas) are never retried and exit non-zero. Ctrl-C during a
// streamed command sends the protocol's Cancel frame: the find stops,
// the REPL session survives.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"icdb/internal/wire"
)

// defaultAddr is where icdbq connect and icdbd meet unless told
// otherwise; it is the single source of truth for both usage strings
// and the -addr flag default.
const defaultAddr = "127.0.0.1:7390"

// defaultRetries is the default transport-retry budget for client
// commands (dial attempts, and full re-runs of a one-shot command that
// failed before any row arrived).
const defaultRetries = 3

// runConnect dispatches "icdbq connect": a remote REPL by default, one
// command with -c.
func runConnect(args []string) error {
	fs := flag.NewFlagSet("connect", flag.ContinueOnError)
	addr := fs.String("addr", defaultAddr, "icdbd server address")
	cmd := fs.String("c", "", "execute one command and exit instead of starting a REPL")
	secret := fs.String("secret", os.Getenv("ICDB_SECRET"), "shared-secret auth token for -secret servers (default $ICDB_SECRET)")
	retries := fs.Int("retries", defaultRetries, "attempts for transport failures (server-rejected commands are never retried)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (use -c %q to run one command)", fs.Arg(0), fs.Arg(0))
	}
	opts := wire.Options{Secret: *secret, Retry: wire.Backoff{Attempts: *retries}}
	if *cmd != "" {
		return remoteOneShot(*addr, opts, *cmd)
	}
	c, err := wire.DialOptions(*addr, opts)
	if err != nil {
		return fmt.Errorf("connecting to %s: %w", *addr, err)
	}
	defer c.Close()
	return remoteREPL(c, *addr)
}

// runRemoteCQL dispatches "icdbq cql -remote": the one-shot cql
// subcommand routed to a server instead of the in-process engine. Auth
// comes from ICDB_SECRET (there are no flags on this legacy form).
func runRemoteCQL(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf(`cql -remote needs an address and one command string, e.g. icdbq cql -remote %s "find component executing STORAGE limit 5"`, defaultAddr)
	}
	opts := wire.Options{
		Secret: os.Getenv("ICDB_SECRET"),
		Retry:  wire.Backoff{Attempts: defaultRetries},
	}
	return remoteOneShot(args[0], opts, args[1])
}

// remoteOneShot runs one command as its own session with transport
// retry, streaming rows to stdout. Ctrl-C cancels the command (the
// server aborts the stream) and exits non-zero; a server-side error
// propagates as the (non-nil) exit status.
func remoteOneShot(addr string, opts wire.Options, cmd string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	_, err := wire.ExecRetry(ctx, addr, opts, cmd, func(line string) { fmt.Println(line) })
	if err != nil {
		return fmt.Errorf("%s: %w", addr, err)
	}
	return nil
}

// remoteREPL mirrors the local REPL (cql.go) over a wire session: the
// server holds the session state, so set width / set area_weight stick
// across commands here exactly as they do locally. Remote errors name
// no column, so there is no caret line. Ctrl-C mid-command cancels
// that command — the server answers with a cancelled error and the
// session (and REPL) carry on.
func remoteREPL(c *wire.Client, addr string) error {
	fmt.Printf("ICDB CQL, connected to %s. Type \"help\" for the command summary, \"quit\" to leave.\n", addr)
	rd := bufio.NewReader(os.Stdin)
	for {
		fmt.Print(replPrompt)
		raw, err := rd.ReadString('\n')
		if err != nil && raw == "" {
			fmt.Println()
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		atEOF := err != nil
		line := strings.TrimSpace(raw)
		switch line {
		case "":
			if atEOF {
				fmt.Println()
				return nil
			}
			continue
		case "quit", "exit":
			return nil
		}
		if err := remoteExecInterruptible(c, line); err != nil {
			var re *wire.RemoteError
			if errors.As(err, &re) {
				if re.Code == wire.CodeCancelled {
					fmt.Println("cancelled")
				} else {
					fmt.Printf("error: %v\n", re)
				}
			} else {
				// Transport failure: the connection is gone.
				return err
			}
		}
		if atEOF {
			fmt.Println()
			return nil
		}
	}
}

// remoteExecInterruptible runs one REPL command with Ctrl-C wired to
// the protocol's Cancel frame for just that command's duration.
func remoteExecInterruptible(c *wire.Client, cmd string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	_, err := c.ExecContext(ctx, cmd, func(line string) { fmt.Println(line) })
	return err
}
