// explorebench.go implements the -explore scenario of "icdbq bench":
// the design-space frontier engine measured against the ordered find it
// extends. A synthetic exploration cloud of the catalog size is
// recorded, then one full streamed "find pareto" over it is timed
// against the width-aware ordered query at the same size — the guard
// pins the frontier sweep to a small constant factor of the find path
// it shares the store with.
package main

import (
	"fmt"
	"testing"

	"icdb/internal/genus"
	"icdb/internal/icdb"
)

// exploreBenchResult captures one catalog size's frontier scenario.
type exploreBenchResult struct {
	Size               int     `json:"size"`
	Points             int     `json:"points"`
	FrontierSize       int     `json:"frontier_size"`
	ParetoNsPerOp      float64 `json:"pareto_ns_per_op"`
	OrderedFindNsPerOp float64 `json:"ordered_find_ns_per_op"`
	// CostRatio is pareto/ordered — the factor the dominance sweep adds
	// over a plain ranked query of the same catalog size.
	CostRatio float64 `json:"cost_ratio"`
}

// exploreBenchGen names the synthetic generator the cloud records
// under, keeping the bench points out of any real generator's space.
const exploreBenchGen = "gen_parcloud"

// populateExplorations records n synthetic design points under one
// generator. Widths, areas, and delays are spread by fixed mixers (the
// benchgen idiom); the offsets decorrelate the two axes' minima so the
// cloud has a non-trivial frontier instead of a single dominating
// corner at i=0.
func populateExplorations(db *icdb.DB, n int) error {
	for i := 0; i < n; i++ {
		err := db.RecordExploration(icdb.Exploration{
			Generator: exploreBenchGen,
			Bindings:  fmt.Sprintf("p=%d", i),
			Component: genus.CompCounter,
			Width:     1 + (i*5)%128,
			Area:      float64(1 + (i*13+4567)%9973),
			Delay:     float64(1 + (i*7+389)%997),
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// runExploreBench records an n-point cloud into db, times the streamed
// frontier query, and pairs it with the ordered-find measurement taken
// at the same size. The frontier is cross-validated against the O(n²)
// dominance definition before any timing.
func runExploreBench(db *icdb.DB, n int, ordered benchMeasure,
	measure func(string, int, func(b *testing.B)) benchMeasure) (benchMeasure, *exploreBenchResult, error) {
	if err := populateExplorations(db, n); err != nil {
		return benchMeasure{}, nil, err
	}
	q := icdb.ParetoQuery{Generator: exploreBenchGen, Dominated: true}
	frontier, err := db.ParetoFrontier(icdb.ParetoQuery{Generator: exploreBenchGen})
	if err != nil {
		return benchMeasure{}, nil, err
	}
	if len(frontier) == 0 {
		return benchMeasure{}, nil, fmt.Errorf("explore bench: empty frontier over %d points", n)
	}
	pts := make([]icdb.Exploration, 0, n)
	mask := make([]bool, 0, n)
	if err := db.Pareto(q, func(p icdb.ParetoPoint) bool {
		pts = append(pts, p.Exploration)
		mask = append(mask, !p.Dominated)
		return true
	}); err != nil {
		return benchMeasure{}, nil, err
	}
	if len(pts) != n {
		return benchMeasure{}, nil, fmt.Errorf("explore bench: streamed %d of %d points", len(pts), n)
	}
	if err := icdb.CheckFrontier(pts, mask); err != nil {
		return benchMeasure{}, nil, err
	}

	par := measure("find_pareto", n, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rows := 0
			err := db.Pareto(q, func(icdb.ParetoPoint) bool {
				rows++
				return true
			})
			if err != nil || rows != n {
				b.Fatal(err, rows)
			}
		}
	})
	res := &exploreBenchResult{
		Size:               n,
		Points:             n,
		FrontierSize:       len(frontier),
		ParetoNsPerOp:      par.NsPerOp,
		OrderedFindNsPerOp: ordered.NsPerOp,
	}
	if ordered.NsPerOp > 0 {
		res.CostRatio = par.NsPerOp / ordered.NsPerOp
	}
	return par, res, nil
}
