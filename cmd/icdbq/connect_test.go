package main

// Client-mode regression tests, pinning the exit-status contract: a
// RemoteError from "icdbq connect -c" or "icdbq cql -remote" must
// surface as a non-nil error (exit 1), success as nil — and transport
// retry must not turn a server-side rejection into a retry storm.

import (
	"net"
	"strings"
	"testing"

	"icdb/internal/icdb"
	"icdb/internal/relstore"
	"icdb/internal/wire"
)

// startWireServer serves a seeded catalog for client-mode tests.
func startWireServer(t *testing.T, cfg func(*wire.Server)) (*wire.Server, string) {
	t.Helper()
	db, err := icdb.Open(relstore.New())
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &wire.Server{DB: db}
	if cfg != nil {
		cfg(srv)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

func TestConnectOneShotExitStatus(t *testing.T) {
	_, addr := startWireServer(t, nil)

	if err := run([]string{"connect", "-addr", addr, "-c", "show impls"}); err != nil {
		t.Fatalf("good command: %v", err)
	}
	err := run([]string{"connect", "-addr", addr, "-c", "find component exectuing STORAGE"})
	if err == nil {
		t.Fatal("bad command exited zero")
	}
	if !strings.Contains(err.Error(), "exectuing") {
		t.Fatalf("bad command error does not carry the server message: %v", err)
	}
}

func TestRemoteCQLExitStatus(t *testing.T) {
	_, addr := startWireServer(t, nil)

	if err := run([]string{"cql", "-remote", addr, "show impls"}); err != nil {
		t.Fatalf("good command: %v", err)
	}
	if err := run([]string{"cql", "-remote", addr, "bogus"}); err == nil {
		t.Fatal("bad command exited zero")
	}
}

func TestConnectSecretFlag(t *testing.T) {
	srv, addr := startWireServer(t, func(s *wire.Server) { s.Secret = "tok" })

	if err := run([]string{"connect", "-addr", addr, "-secret", "tok", "-c", "show impls"}); err != nil {
		t.Fatalf("authenticated one-shot: %v", err)
	}
	err := run([]string{"connect", "-addr", addr, "-secret", "bad", "-c", "show impls"})
	if err == nil || !strings.Contains(err.Error(), "authentication failed") {
		t.Fatalf("wrong secret: err = %v", err)
	}
	// The rejection was answered by the server, so the retry budget
	// must not have been spent hammering it.
	if n := srv.Stats().AuthFailures; n != 1 {
		t.Fatalf("auth failures = %d, want 1 (RemoteError retried?)", n)
	}

	t.Setenv("ICDB_SECRET", "tok")
	if err := run([]string{"cql", "-remote", addr, "show impls"}); err != nil {
		t.Fatalf("cql -remote with ICDB_SECRET: %v", err)
	}
}

func TestConnectRefusedAddrFailsAfterRetries(t *testing.T) {
	// A port nothing listens on: grab one and close it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	err = run([]string{"connect", "-addr", addr, "-retries", "2", "-c", "show impls"})
	if err == nil {
		t.Fatal("connect to a dead address exited zero")
	}
}
