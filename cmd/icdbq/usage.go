package main

import "strings"

// defaultBenchOut is the default trajectory file of "icdbq bench". It is
// the single source of truth for the bench -out flag default and for
// every usage string naming it; TestDocCommentMatchesUsage keeps the
// package doc comment in sync.
const defaultBenchOut = "BENCH_PR10.json"

// command describes one icdbq subcommand. The table below is the single
// source of truth for usage output: runtime usage errors are generated
// from it, and TestDocCommentMatchesUsage asserts the package doc
// comment in main.go lists exactly these synopses.
type command struct {
	name     string
	synopsis string
}

// commands returns the subcommand table in display order.
func commands() []command {
	return []command{
		{"impls", "icdbq impls"},
		{"query", "icdbq query <function>... [-where <expr>]"},
		{"cql", `icdbq cql "<command>" | icdbq cql -i | icdbq cql -remote <addr> "<command>"`},
		{"connect", `icdbq connect [-addr ` + defaultAddr + `] [-secret token] [-retries 3] [-c "<command>"]`},
		{"expand", "icdbq expand <design.iif|-> [param=value...]"},
		{"generate", "icdbq generate <generator|component> param=value..."},
		{"estimate", "icdbq estimate <impl> width=<bits> [area|delay|cost]"},
		{"bench", "icdbq bench [-sizes 1000,10000] [-out " + defaultBenchOut + "] [-benchtime 300ms] [-guard] [-conns 200] [-chaos] [-jwrite 10000] [-jopen 100000] [-jrecords 1000] [-explore] [-openlat 100000,1000000]"},
	}
}

// commandNames renders the subcommand names for "unknown command"
// errors: "impls, query, cql, expand, or bench".
func commandNames() string {
	cs := commands()
	names := make([]string, len(cs))
	for i, c := range cs {
		names[i] = c.name
	}
	return strings.Join(names[:len(names)-1], ", ") + ", or " + names[len(names)-1]
}

// usageText renders the full usage block, one synopsis per line.
func usageText() string {
	var sb strings.Builder
	sb.WriteString("usage:\n")
	for _, c := range commands() {
		sb.WriteString("  " + c.synopsis + "\n")
	}
	return strings.TrimRight(sb.String(), "\n")
}
