package main

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// TestDocCommentMatchesUsage keeps the package doc comment in main.go
// and the runtime usage output generated from the same command table:
// every synopsis must appear verbatim as a doc-comment usage line, and
// the doc comment must not list commands the table does not know.
func TestDocCommentMatchesUsage(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "main.go", nil, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse main.go: %v", err)
	}
	if f.Doc == nil {
		t.Fatal("main.go has no package doc comment")
	}
	doc := f.Doc.Text()

	var docUsage []string
	for _, line := range strings.Split(doc, "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "icdbq ") {
			docUsage = append(docUsage, line)
		}
	}
	cmds := commands()
	if len(docUsage) != len(cmds) {
		t.Fatalf("doc comment lists %d usage lines %q, command table has %d",
			len(docUsage), docUsage, len(cmds))
	}
	for i, c := range cmds {
		if docUsage[i] != c.synopsis {
			t.Errorf("doc usage line %d = %q, want %q (regenerate from the table in usage.go)",
				i, docUsage[i], c.synopsis)
		}
	}
}

// TestUsageTextNamesEveryCommand checks the generated usage block and
// the unknown-command vocabulary stay complete.
func TestUsageTextNamesEveryCommand(t *testing.T) {
	usage := usageText()
	names := commandNames()
	for _, c := range commands() {
		if !strings.Contains(usage, c.synopsis) {
			t.Errorf("usageText misses %q", c.synopsis)
		}
		if !strings.Contains(names, c.name) {
			t.Errorf("commandNames misses %q", c.name)
		}
	}
	if !strings.Contains(usage, defaultBenchOut) {
		t.Errorf("usage does not state the bench default output %q", defaultBenchOut)
	}
}
