// cql.go implements "icdbq cql": the textual CQL front-end, as a
// one-shot command and as an interactive REPL. Results stream to stdout
// as the engine yields them (see internal/cql); parse errors are
// reported with their column, and the REPL draws a caret under the
// offending token.
package main

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"

	"icdb/internal/cql"
	"icdb/internal/icdb"
)

// runCQL dispatches "icdbq cql": `icdbq cql "<command>"` executes one
// command, `icdbq cql -i` starts the REPL.
func runCQL(db *icdb.DB, args []string) error {
	if len(args) == 1 && args[0] == "-i" {
		return runREPL(db)
	}
	if len(args) != 1 {
		return fmt.Errorf(`cql needs exactly one command string (or -i for a REPL), e.g. icdbq cql "find component executing STORAGE limit 5"`)
	}
	env := &cql.Env{DB: db, Out: os.Stdout, ReadFile: readDesign}
	return env.Exec(args[0])
}

// readDesign loads an expand command's design source: a file path, or
// standard input for "-".
func readDesign(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

// replPrompt is the REPL's prompt; caret positioning under an error
// column accounts for its width.
const replPrompt = "cql> "

// runREPL reads CQL commands from standard input line by line until
// "quit", "exit", or EOF. One Env lives for the whole session, so
// repeated expands reuse parsed designs and expanded templates. Designs
// cannot be read from "-" here — the REPL owns standard input.
func runREPL(db *icdb.DB) error {
	env := &cql.Env{
		DB:  db,
		Out: os.Stdout,
		ReadFile: func(path string) ([]byte, error) {
			if path == "-" {
				return nil, fmt.Errorf("cannot read a design from stdin inside the REPL")
			}
			return os.ReadFile(path)
		},
	}
	fmt.Println(`ICDB CQL. Type "help" for the command summary, "quit" to leave.`)
	// A bufio.Reader, not a Scanner: a pasted line longer than the
	// Scanner's 64KB token limit must not kill the session.
	rd := bufio.NewReader(os.Stdin)
	for {
		fmt.Print(replPrompt)
		raw, err := rd.ReadString('\n')
		if err != nil && raw == "" {
			fmt.Println()
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		atEOF := err != nil
		line := strings.TrimSpace(raw)
		switch line {
		case "":
			if atEOF {
				fmt.Println()
				return nil
			}
			continue
		case "quit", "exit":
			return nil
		}
		if err := env.Exec(line); err != nil {
			var e *cql.Error
			if errors.As(err, &e) && e.Col >= 1 {
				// The mistyped line sits right above; point at the column,
				// re-adding any leading whitespace Exec did not see.
				lead := raw[:len(raw)-len(strings.TrimLeft(raw, " \t"))]
				fmt.Printf("%s%s^\n", strings.Repeat(" ", len(replPrompt)), lead+strings.Repeat(" ", e.Col-1))
			}
			fmt.Printf("error: %v\n", err)
		}
		if atEOF {
			fmt.Println()
			return nil
		}
	}
}
