// journalbench.go implements the durability scenario of "icdbq bench":
// steady-state write cost with the write-ahead journal against the
// only durable alternative it replaced (a full snapshot rewrite per
// mutation), and cold-open cost of snapshot+journal-replay recovery
// against a plain snapshot load. The first is the reason the journal
// exists (per-mutation durability that does not rewrite the catalog);
// the second is its price at boot, which compaction keeps bounded.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"icdb/internal/benchgen"
	"icdb/internal/relstore"
)

// journalBenchResult is the "journal" section of the bench report.
type journalBenchResult struct {
	// Steady-state writes against a WriteSize-row catalog: one
	// effective Upsert made durable by a journal append+fsync, vs the
	// same Upsert made durable by a full SaveSnapshot rewrite.
	WriteSize            int     `json:"write_size"`
	FsyncPolicy          string  `json:"fsync_policy"`
	JournalWriteNsPerOp  float64 `json:"journal_write_ns_per_op"`
	SnapshotWriteNsPerOp float64 `json:"snapshot_rewrite_ns_per_op"`
	WriteSpeedup         float64 `json:"write_speedup"`

	// Cold open of an OpenSize-row catalog: OpenDurable (snapshot load
	// + JournalRecords replayed) vs LoadSnapshot alone.
	OpenSize           int     `json:"open_size"`
	JournalRecords     int     `json:"journal_records"`
	DurableOpenNsPerOp float64 `json:"durable_open_ns_per_op"`
	SnapOpenNsPerOp    float64 `json:"snapshot_open_ns_per_op"`
	OpenRatio          float64 `json:"open_ratio"`
}

// benchKV is the small keyed table the write scenario mutates; the
// catalog rows around it are what a per-mutation snapshot rewrite has
// to re-encode every time, and what OpenDurable has to load at boot.
var benchKV = relstore.Schema{
	Table: "bench_kv",
	Columns: []relstore.Column{
		{Name: "k", Type: relstore.TString},
		{Name: "v", Type: relstore.TInt},
	},
	Key: []string{"k"},
}

// runJournalBench measures both scenarios. measure is runBench's
// instrumented testing.Benchmark wrapper.
func runJournalBench(tmp string, writeSize, openSize, records int,
	measure func(name string, size int, f func(b *testing.B)) benchMeasure) (*journalBenchResult, error) {

	res := &journalBenchResult{
		WriteSize:      writeSize,
		FsyncPolicy:    relstore.FsyncAlways.String(),
		OpenSize:       openSize,
		JournalRecords: records,
	}

	// --- Steady-state writes at writeSize rows ---
	fmt.Fprintf(os.Stderr, "building %d-implementation catalog for the journal write scenario...\n", writeSize)
	db, err := benchgen.NewDB(writeSize)
	if err != nil {
		return nil, err
	}
	writeSnap := filepath.Join(tmp, "jwrite.snap")
	if err := db.Store().SaveSnapshot(writeSnap); err != nil {
		return nil, err
	}
	db = nil
	runtime.GC()

	d, err := relstore.OpenDurable(writeSnap, relstore.DurableOptions{
		Fsync:     relstore.FsyncAlways,
		CompactAt: -1, // the scenario measures appends, not compaction
	})
	if err != nil {
		return nil, err
	}
	if err := d.CreateTable(benchKV); err != nil {
		d.Close()
		return nil, err
	}
	seq := 0
	jw := measure("journal_write_fsync_always", writeSize, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			seq++
			if err := d.Upsert("bench_kv", relstore.Row{"k": "hot", "v": seq}); err != nil {
				b.Fatal(err)
			}
		}
	})
	if err := d.Close(); err != nil {
		return nil, err
	}

	// Baseline: the same effective mutation made durable the only way
	// the snapshot-only store can — a full atomic catalog rewrite.
	s, err := relstore.LoadSnapshot(writeSnap)
	if err != nil {
		return nil, err
	}
	if err := s.CreateTable(benchKV); err != nil {
		return nil, err
	}
	baseSnap := filepath.Join(tmp, "jwrite_base.snap")
	sw := measure("snapshot_rewrite_per_write", writeSize, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			seq++
			if err := s.Upsert("bench_kv", relstore.Row{"k": "hot", "v": seq}); err != nil {
				b.Fatal(err)
			}
			if err := s.SaveSnapshot(baseSnap); err != nil {
				b.Fatal(err)
			}
		}
	})
	res.JournalWriteNsPerOp = jw.NsPerOp
	res.SnapshotWriteNsPerOp = sw.NsPerOp
	if jw.NsPerOp > 0 {
		res.WriteSpeedup = sw.NsPerOp / jw.NsPerOp
	}

	// --- Cold open at openSize rows with a replay tail ---
	fmt.Fprintf(os.Stderr, "building %d-implementation catalog for the journal open scenario...\n", openSize)
	big, err := benchgen.NewDB(openSize)
	if err != nil {
		return nil, err
	}
	openSnap := filepath.Join(tmp, "jopen.snap")
	if err := big.Store().SaveSnapshot(openSnap); err != nil {
		return nil, err
	}
	big = nil
	runtime.GC()

	// Leave `records` journal records next to the snapshot: the replay
	// tail a catalog accumulates between compactions.
	d2, err := relstore.OpenDurable(openSnap, relstore.DurableOptions{
		Fsync:     relstore.FsyncOff,
		CompactAt: -1,
	})
	if err != nil {
		return nil, err
	}
	if err := d2.CreateTable(benchKV); err != nil {
		d2.Close()
		return nil, err
	}
	for i := 0; i < records-1; i++ {
		if err := d2.Upsert("bench_kv", relstore.Row{"k": fmt.Sprintf("k%05d", i), "v": i}); err != nil {
			d2.Close()
			return nil, err
		}
	}
	if err := d2.Close(); err != nil {
		return nil, err
	}

	do := measure("open_durable_with_replay", openSize, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d, err := relstore.OpenDurable(openSnap, relstore.DurableOptions{CompactAt: -1})
			if err != nil {
				b.Fatal(err)
			}
			if ri := d.Recovery(); ri.Replayed != records || ri.Truncated {
				b.Fatalf("recovery = %v, want a clean %d-record replay", ri, records)
			}
			if err := d.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
	so := measure("open_snapshot_only", openSize, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := relstore.LoadSnapshot(openSnap); err != nil {
				b.Fatal(err)
			}
		}
	})
	res.DurableOpenNsPerOp = do.NsPerOp
	res.SnapOpenNsPerOp = so.NsPerOp
	if so.NsPerOp > 0 {
		res.OpenRatio = do.NsPerOp / so.NsPerOp
	}
	return res, nil
}
