// Command icdbq is a small front-end over the ICDB engine: it answers
// query-by-function requests against the builtin component database,
// executes textual CQL commands (one-shot, as an interactive REPL, or
// against a remote icdbd server), runs component generators and cost
// estimators, and expands IIF designs to flat equation networks.
//
// Usage:
//
//	icdbq impls
//	icdbq query <function>... [-where <expr>]
//	icdbq cql "<command>" | icdbq cql -i | icdbq cql -remote <addr> "<command>"
//	icdbq connect [-addr 127.0.0.1:7390] [-secret token] [-retries 3] [-c "<command>"]
//	icdbq expand <design.iif|-> [param=value...]
//	icdbq generate <generator|component> param=value...
//	icdbq estimate <impl> width=<bits> [area|delay|cost]
//	icdbq bench [-sizes 1000,10000] [-out BENCH_PR10.json] [-benchtime 300ms] [-guard] [-conns 200] [-chaos] [-jwrite 10000] [-jopen 100000] [-jrecords 1000] [-explore] [-openlat 100000,1000000]
//
// The usage lines above are generated from the command table in
// usage.go and verified by TestDocCommentMatchesUsage; edit them there.
package main

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"icdb/internal/cql"
	"icdb/internal/expand"
	"icdb/internal/genus"
	"icdb/internal/icdb"
	"icdb/internal/iif"
	"icdb/internal/relstore"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "icdbq: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("%s", usageText())
	}
	switch {
	case args[0] == "bench":
		// Benchmarks build their own catalogs; no seeded DB needed.
		return runBench(args[1:])
	case args[0] == "_openprobe":
		// Internal: one open-latency measurement in a fresh process,
		// exec'd by "bench" (see openbench.go). Not in the usage table.
		return runOpenProbe(args[1:])
	case args[0] == "connect":
		// Client mode talks to an icdbd server; no local DB at all.
		return runConnect(args[1:])
	case args[0] == "cql" && len(args) > 1 && args[1] == "-remote":
		return runRemoteCQL(args[2:])
	}
	db, err := icdb.Open(relstore.New())
	if err != nil {
		return err
	}
	switch args[0] {
	case "impls":
		impls, err := db.Impls()
		if err != nil {
			return err
		}
		for _, im := range impls {
			fmt.Printf("%-12s %-18s %-12s width %d..%d area %g delay %g  %s\n",
				im.Name, im.Component, im.Style, im.WidthMin, im.WidthMax,
				im.Area, im.Delay, genus.FunctionSetKey(im.Functions))
		}
		return nil

	case "query":
		return runQuery(db, args[1:])

	case "cql":
		return runCQL(db, args[1:])

	case "expand":
		return runExpand(db, args[1:])

	case "generate", "estimate":
		// Both verbs are CQL commands; the subcommands are sugar that
		// forwards the argument vector as one command line.
		env := &cql.Env{DB: db, Out: os.Stdout}
		return env.Exec(strings.Join(args, " "))
	}
	return fmt.Errorf("unknown command %q (want %s)", args[0], commandNames())
}

func runQuery(db *icdb.DB, args []string) error {
	var fns []genus.Function
	var cs []icdb.Constraint
	for i := 0; i < len(args); i++ {
		if args[i] == "-where" {
			if i+1 >= len(args) {
				return fmt.Errorf("-where needs an expression")
			}
			c, err := icdb.Where(args[i+1])
			if err != nil {
				return err
			}
			cs = append(cs, c)
			i++
			continue
		}
		fns = append(fns, genus.Function(args[i]))
	}
	cands, err := db.QueryByFunctions(fns, cs...)
	if err != nil {
		return err
	}
	if len(cands) == 0 {
		fmt.Println("no matching implementations")
		return nil
	}
	for i, c := range cands {
		fmt.Printf("%d. %-12s %-18s cost %g\n", i+1, c.Impl.Name, c.Impl.Component, c.Cost)
	}
	return nil
}

func runExpand(db *icdb.DB, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("expand needs a design file (or - for stdin)")
	}
	var src []byte
	var err error
	if args[0] == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(args[0])
	}
	if err != nil {
		return err
	}
	params := make(map[string]int)
	for _, a := range args[1:] {
		name, val, ok := strings.Cut(a, "=")
		if !ok {
			return fmt.Errorf("bad parameter %q (want name=value)", a)
		}
		v, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("bad parameter %q: %v", a, err)
		}
		params[name] = v
	}
	d, err := iif.Parse(string(src))
	if err != nil {
		return err
	}
	net, err := expand.New(db).Expand(d, params)
	if err != nil {
		return err
	}
	if err := net.Validate(); err != nil {
		return fmt.Errorf("expanded network is malformed: %w", err)
	}
	if _, err := net.TopoOrder(); err != nil {
		return err
	}
	fmt.Print(net.Format())
	insts, err := db.Instances()
	if err != nil {
		return err
	}
	for _, in := range insts {
		fmt.Fprintf(os.Stderr, "instance %d: %s (%s) used %dx\n",
			in.ID, in.Impl, icdb.BindingsKey(in.Bindings), in.Uses)
	}
	return nil
}
