// bench.go implements "icdbq bench": programmatic benchmarks of the ICDB
// read and persistence paths over synthetic catalogs, emitted as a JSON
// trajectory file (BENCH_PR<N>.json) so performance is tracked commit
// over commit. Each measurement is paired with its reference path —
// indexed queries against the in-tree full-scan engine they replaced,
// binary snapshot persistence against the JSON compat path, streamed
// results against materialized ones — reproducing every before/after
// comparison on whatever machine runs it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"icdb/internal/benchgen"
	"icdb/internal/expand"
	"icdb/internal/genus"
	"icdb/internal/icdb"
	"icdb/internal/relstore"
)

// prePRBaseline pins numbers measured on earlier read/persistence paths
// on the reference container (Intel Xeon @ 2.10GHz), so the trajectory
// keeps the actual before-change measurements even after the slow paths
// improve or disappear:
//
//   - query_by_function / impl_by_name: the pre-index engine
//     (commit 5f6c9fa, before PR 2's planner and inverted indexes);
//   - save_json / load_json and the round-trip alloc count: the
//     whole-store JSON persistence measured in BENCH_PR2.json (commit
//     7e2e007, before PR 3's binary snapshot format).
var prePRBaseline = map[string]map[string]float64{
	"query_by_function_ns_per_op":   {"1000": 1995273, "10000": 22741848},
	"impl_by_name_ns_per_op":        {"1000": 163993, "10000": 2492863},
	"save_json_ns_per_op":           {"1000": 7565606, "10000": 81215169},
	"load_json_ns_per_op":           {"1000": 10527788, "10000": 124847356},
	"json_round_trip_allocs_per_op": {"1000": 77678, "10000": 766057},
}

type benchMeasure struct {
	Name        string  `json:"name"`
	Size        int     `json:"size,omitempty"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchComparison pairs one measurement with the reference path it
// replaced: Speedup and AllocRatio are baseline/new (bigger is better).
type benchComparison struct {
	Name            string  `json:"name"`
	Size            int     `json:"size"`
	Baseline        string  `json:"baseline"`
	NsPerOp         float64 `json:"ns_per_op"`
	BaselineNsPerOp float64 `json:"baseline_ns_per_op"`
	Speedup         float64 `json:"speedup"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	BaselineAllocs  int64   `json:"baseline_allocs_per_op"`
	AllocRatio      float64 `json:"alloc_ratio"`
}

type benchReport struct {
	Tool           string                        `json:"tool"`
	GOOS           string                        `json:"goos"`
	GOARCH         string                        `json:"goarch"`
	CPUs           int                           `json:"cpus"`
	GoVersion      string                        `json:"go_version"`
	Benchtime      string                        `json:"benchtime"`
	Sizes          []int                         `json:"sizes"`
	PrePRBaseline  map[string]map[string]float64 `json:"pre_pr_baseline"`
	Comparisons    []benchComparison             `json:"comparisons"`
	Measurements   []benchMeasure                `json:"measurements"`
	WireBench      *wireBenchResult              `json:"wire_concurrent_clients,omitempty"`
	WireBenchChaos *wireBenchResult              `json:"wire_concurrent_clients_chaos,omitempty"`
	Journal        *journalBenchResult           `json:"journal,omitempty"`
	Explore        []exploreBenchResult          `json:"explore,omitempty"`
	OpenLatency    []openBenchResult             `json:"open_latency,omitempty"`
}

func compare(name string, size int, baseline string, now, was benchMeasure) benchComparison {
	c := benchComparison{
		Name: name, Size: size, Baseline: baseline,
		NsPerOp: now.NsPerOp, BaselineNsPerOp: was.NsPerOp,
		AllocsPerOp: now.AllocsPerOp, BaselineAllocs: was.AllocsPerOp,
	}
	if now.NsPerOp > 0 {
		c.Speedup = was.NsPerOp / now.NsPerOp
	}
	if now.AllocsPerOp > 0 {
		c.AllocRatio = float64(was.AllocsPerOp) / float64(now.AllocsPerOp)
	}
	return c
}

func runBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	sizesFlag := fs.String("sizes", "1000,10000", "comma-separated catalog sizes")
	out := fs.String("out", defaultBenchOut, "output JSON path")
	benchtime := fs.String("benchtime", "300ms", "per-benchmark measuring time")
	guard := fs.Bool("guard", false, "fail unless LoadSnapshot beats JSON Load at the 10000 size")
	conns := fs.Int("conns", 200, "concurrent clients for the wire-server scenario (0 disables it)")
	chaos := fs.Bool("chaos", false, "also run the wire scenario with a quarter of the clients misbehaving")
	jwrite := fs.Int("jwrite", 10000, "catalog size for the journal steady-state write scenario (0 disables the journal scenarios)")
	jopen := fs.Int("jopen", 100000, "catalog size for the journal cold-open scenario")
	jrecords := fs.Int("jrecords", 1000, "journal records replayed in the cold-open scenario")
	explore := fs.Bool("explore", true, "run the design-space frontier scenario at each catalog size")
	openlat := fs.String("openlat", "100000,1000000", "comma-separated row counts for the snapshot open-latency scenario (empty disables it)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var sizes []int
	for _, s := range strings.Split(*sizesFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			return fmt.Errorf("bad size %q", s)
		}
		sizes = append(sizes, n)
	}
	// testing.Benchmark reads the test.benchtime flag; register the
	// testing flags and set it explicitly.
	testing.Init()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		return err
	}

	report := benchReport{
		Tool:          "icdbq bench",
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		CPUs:          runtime.NumCPU(),
		GoVersion:     runtime.Version(),
		Benchtime:     *benchtime,
		Sizes:         sizes,
		PrePRBaseline: prePRBaseline,
	}

	measure := func(name string, size int, f func(b *testing.B)) benchMeasure {
		r := testing.Benchmark(f)
		m := benchMeasure{
			Name:        name,
			Size:        size,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		fmt.Fprintf(os.Stderr, "%-28s n=%-7d %12.0f ns/op %8d allocs/op\n", name, size, m.NsPerOp, m.AllocsPerOp)
		return m
	}

	tmp, err := os.MkdirTemp("", "icdbq-bench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	guardResults := map[string]benchMeasure{}

	for _, n := range sizes {
		fmt.Fprintf(os.Stderr, "building %d-implementation catalog...\n", n)
		db, err := benchgen.NewDB(n)
		if err != nil {
			return err
		}
		// Warm the lazily built inverted indexes so measurements see
		// steady state.
		if _, err := db.QueryByFunction(genus.FuncADD); err != nil {
			return err
		}
		// Cross-validate the two result paths before timing them: the
		// streamed query must yield exactly the materialized set.
		mat, err := db.QueryByFunction(genus.FuncADD, icdb.MaxArea(50))
		if err != nil {
			return err
		}
		str, err := benchgen.StreamedQueryByFunction(db, genus.FuncADD, icdb.MaxArea(50))
		if err != nil {
			return err
		}
		if len(mat) != len(str) {
			return fmt.Errorf("size %d: streamed query yielded %d candidates, materialized %d", n, len(str), len(mat))
		}
		for i := range mat {
			if mat[i].Impl.Name != str[i].Impl.Name || mat[i].Cost != str[i].Cost {
				return fmt.Errorf("size %d: streamed candidate %d = %s/%g, materialized %s/%g",
					n, i, str[i].Impl.Name, str[i].Cost, mat[i].Impl.Name, mat[i].Cost)
			}
		}

		qIdx := measure("query_by_function", n, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := db.QueryByFunction(genus.FuncADD, icdb.MaxArea(50)); err != nil {
					b.Fatal(err)
				}
			}
		})
		qScan := measure("query_by_function_fullscan", n, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := benchgen.FullScanQueryByFunction(db, genus.FuncADD, icdb.MaxArea(50)); err != nil {
					b.Fatal(err)
				}
			}
		})
		qStream := measure("query_by_function_scan", n, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rows := 0
				err := db.QueryByFunctionScan(genus.FuncADD, func(c icdb.Candidate) bool {
					rows++
					return true
				}, icdb.MaxArea(50))
				if err != nil || rows == 0 {
					b.Fatal(err, rows)
				}
			}
		})
		lIdx := measure("impl_by_name", n, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := db.ImplByName(benchgen.NameOf(i % n)); err != nil {
					b.Fatal(err)
				}
			}
		})
		lScan := measure("impl_by_name_fullscan", n, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := benchgen.FullScanImplRow(db, benchgen.NameOf(i%n)); err != nil {
					b.Fatal(err)
				}
			}
		})
		topK := measure("query_topk5", n, func(b *testing.B) {
			b.ReportAllocs()
			fns := []genus.Function{genus.FuncADD, genus.FuncSUB}
			for i := 0; i < b.N; i++ {
				if _, err := db.QueryByFunctionsTopK(fns, 5, icdb.ForWidth(8)); err != nil {
					b.Fatal(err)
				}
			}
		})

		jsonPath := filepath.Join(tmp, fmt.Sprintf("save%d.json", n))
		snapPath := filepath.Join(tmp, fmt.Sprintf("save%d.snap", n))
		saveJSON := measure("save_json", n, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := db.Store().Save(jsonPath); err != nil {
					b.Fatal(err)
				}
			}
		})
		saveSnap := measure("save_snapshot", n, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := db.Store().SaveSnapshot(snapPath); err != nil {
					b.Fatal(err)
				}
			}
		})

		// Width-aware cost model: the same ordered TopK query with the
		// estimator expressions evaluated per candidate at width 16,
		// against the scalar engine filtered to the same coverage. Every
		// synthetic implementation carries an "area * width" estimator
		// (see benchgen.PopulateEstimators), which is order-preserving for
		// a fixed width, so the two paths must return identical names —
		// cross-validated before timing. Estimators are registered only
		// after the save benchmarks above, so the persisted catalogs stay
		// row-for-row comparable with the BENCH_PR3 trajectory.
		if err := benchgen.PopulateEstimators(db, n); err != nil {
			return err
		}
		ordFns := []genus.Function{genus.FuncADD}
		ordScalar, err := db.QueryByFunctionsOrdered(ordFns, icdb.Order{Attr: "area"}, 10, icdb.ForWidth(16))
		if err != nil {
			return err
		}
		ordWidth, err := db.QueryByFunctionsOrdered(ordFns, icdb.Order{Attr: "area"}, 10, icdb.AtWidth(16))
		if err != nil {
			return err
		}
		if len(ordScalar) != len(ordWidth) {
			return fmt.Errorf("size %d: width-aware query yielded %d candidates, scalar %d", n, len(ordWidth), len(ordScalar))
		}
		for i := range ordScalar {
			if ordScalar[i].Impl.Name != ordWidth[i].Impl.Name || ordWidth[i].Area != 16*ordScalar[i].Area {
				return fmt.Errorf("size %d: width-aware candidate %d = %s/%g, scalar %s/%g",
					n, i, ordWidth[i].Impl.Name, ordWidth[i].Area, ordScalar[i].Impl.Name, ordScalar[i].Area)
			}
		}
		ordScalarM := measure("query_ordered_scalar", n, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := db.QueryByFunctionsOrdered(ordFns, icdb.Order{Attr: "area"}, 10, icdb.ForWidth(16)); err != nil {
					b.Fatal(err)
				}
			}
		})
		ordWidthM := measure("query_ordered_at_width", n, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := db.QueryByFunctionsOrdered(ordFns, icdb.Order{Attr: "area"}, 10, icdb.AtWidth(16)); err != nil {
					b.Fatal(err)
				}
			}
		})

		// Design-space frontier scenario: an n-point exploration cloud
		// recorded into the same catalog, with one full streamed
		// "find pareto" (dominated points included) timed against the
		// width-aware ordered query above — the ranked find path the
		// frontier engine extends.
		if *explore {
			par, eb, err := runExploreBench(db, n, ordWidthM, measure)
			if err != nil {
				return fmt.Errorf("explore bench: %w", err)
			}
			report.Comparisons = append(report.Comparisons,
				compare("find_pareto", n, "ordered find at the same catalog size", par, ordWidthM))
			report.Measurements = append(report.Measurements, par)
			report.Explore = append(report.Explore, *eb)
			fmt.Fprintf(os.Stderr, "find_pareto n=%d: frontier %d/%d, %.2fx the ordered find\n",
				n, eb.FrontierSize, eb.Points, eb.CostRatio)
			if *guard && n == 10000 && eb.CostRatio > 5 {
				return fmt.Errorf("bench guard: 10k-point find pareto (%.0f ns/op) is %.2fx the same-size ordered find (%.0f ns/op), want <= 5x",
					eb.ParetoNsPerOp, eb.CostRatio, eb.OrderedFindNsPerOp)
			}
		}

		// Release the source catalog before the load benchmarks: loading
		// is the tool-startup path, and keeping a dead 100k-impl catalog
		// resident would only add GC noise to both formats' numbers.
		db = nil
		runtime.GC()

		loadJSON := measure("load_json", n, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := relstore.Load(jsonPath); err != nil {
					b.Fatal(err)
				}
			}
		})
		loadSnap := measure("load_snapshot", n, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := relstore.LoadSnapshot(snapPath); err != nil {
					b.Fatal(err)
				}
			}
		})

		report.Comparisons = append(report.Comparisons,
			compare("query_by_function", n, "full scan (pre-index path)", qIdx, qScan),
			compare("impl_by_name", n, "full scan (pre-index path)", lIdx, lScan),
			compare("query_by_function_stream", n, "materialized QueryByFunction", qStream, qIdx),
			compare("query_ordered_at_width", n, "scalar ordered query (same coverage filter)", ordWidthM, ordScalarM),
			compare("persistence_round_trip", n, "JSON Save+Load", benchMeasure{
				NsPerOp:     saveSnap.NsPerOp + loadSnap.NsPerOp,
				AllocsPerOp: saveSnap.AllocsPerOp + loadSnap.AllocsPerOp,
			}, benchMeasure{
				NsPerOp:     saveJSON.NsPerOp + loadJSON.NsPerOp,
				AllocsPerOp: saveJSON.AllocsPerOp + loadJSON.AllocsPerOp,
			}),
		)
		report.Measurements = append(report.Measurements,
			qIdx, qScan, qStream, lIdx, lScan, topK, ordScalarM, ordWidthM,
			saveJSON, saveSnap, loadJSON, loadSnap)

		if n == 10000 {
			guardResults["load_json"] = loadJSON
			guardResults["load_snapshot"] = loadSnap
		}
	}

	// Catalog-size-independent measurements.
	db, err := icdb.Open(relstore.New())
	if err != nil {
		return err
	}
	params := map[string]int{"size": 8}
	report.Measurements = append(report.Measurements,
		measure("expand_cold", 0, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := expand.New(db).ExpandImpl("cnt_up", params); err != nil {
					b.Fatal(err)
				}
			}
		}),
		measure("register_impl", 0, func(b *testing.B) {
			b.ReportAllocs()
			im := benchgen.ImplAt(0)
			for i := 0; i < b.N; i++ {
				if err := db.RegisterImpl(im); err != nil {
					b.Fatal(err)
				}
			}
		}),
	)

	// Durability scenario: journaled steady-state writes vs per-mutation
	// snapshot rewrites, and snapshot+replay cold open vs snapshot-only.
	if *jwrite > 0 {
		jb, err := runJournalBench(tmp, *jwrite, *jopen, *jrecords, measure)
		if err != nil {
			return fmt.Errorf("journal bench: %w", err)
		}
		report.Journal = jb
		fmt.Fprintf(os.Stderr, "journal write speedup %.1fx (vs snapshot rewrite at n=%d), durable open %.2fx snapshot-only (n=%d + %d records)\n",
			jb.WriteSpeedup, jb.WriteSize, jb.OpenRatio, jb.OpenSize, jb.JournalRecords)
		if *guard {
			if jb.WriteSpeedup < 5 {
				return fmt.Errorf("bench guard: journaled write (%.0f ns/op) is only %.1fx the per-mutation snapshot rewrite (%.0f ns/op) at %d rows, want >= 5x",
					jb.JournalWriteNsPerOp, jb.WriteSpeedup, jb.SnapshotWriteNsPerOp, jb.WriteSize)
			}
			if jb.OpenRatio > 2 {
				return fmt.Errorf("bench guard: durable open (%.0f ns/op) is %.2fx the snapshot-only open (%.0f ns/op) at %d rows, want <= 2x",
					jb.DurableOpenNsPerOp, jb.OpenRatio, jb.SnapOpenNsPerOp, jb.OpenSize)
			}
		}
	}

	// Open-latency scenario: what v4's section directory buys at boot —
	// lazy time-to-first-query against eager, parallel section decode
	// against serial, and the v4 directory's overhead against v3.
	if *openlat != "" {
		var openSizes []int
		for _, s := range strings.Split(*openlat, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				return fmt.Errorf("bad -openlat size %q", s)
			}
			openSizes = append(openSizes, n)
		}
		largest := openSizes[0]
		for _, n := range openSizes {
			if n > largest {
				largest = n
			}
		}
		for _, n := range openSizes {
			ob, err := runOpenBench(benchgen.CacheDir(), n, 1, *benchtime)
			if err != nil {
				return fmt.Errorf("open bench: %w", err)
			}
			report.OpenLatency = append(report.OpenLatency, *ob)
			fmt.Fprintf(os.Stderr, "open n=%d: ttfq lazy/eager %.3fx, parallel decode %.2fx serial, v4/v3 eager %.2fx\n",
				n, ob.TTFQRatio, ob.ParallelSpeedup, ob.V4EagerOverV3)
			if !*guard {
				continue
			}
			if n == 100000 && ob.TTFQRatio > 0.2 {
				return fmt.Errorf("bench guard: lazy time-to-first-query (%.0f ns/op) is %.3fx eager (%.0f ns/op) at %d rows, want <= 0.2x",
					ob.TTFQLazyNsPerOp, ob.TTFQRatio, ob.TTFQEagerNsPerOp, n)
			}
			if n == largest {
				if runtime.NumCPU() >= 4 && ob.ParallelSpeedup < 1.5 {
					return fmt.Errorf("bench guard: parallel eager decode (%.0f ns/op) is only %.2fx serial (%.0f ns/op) at %d rows on %d CPUs, want >= 1.5x",
						ob.V4ParallelNsPerOp, ob.ParallelSpeedup, ob.V4SerialNsPerOp, n, runtime.NumCPU())
				}
				if ob.V4EagerOverV3 > 1.1 {
					return fmt.Errorf("bench guard: v4 eager open (%.0f ns/op) is %.2fx the v3 open (%.0f ns/op) at %d rows, want <= 1.1x",
						ob.V4ParallelNsPerOp, ob.V4EagerOverV3, ob.V3EagerNsPerOp, n)
				}
			}
		}
	}

	// Concurrent-client scenario: an in-process wire server under mixed
	// find/generate/expand traffic from hundreds of sessions. Any command
	// error fails the bench — under load the server must stay correct.
	if *conns > 0 {
		wb, err := runWireBench(*conns, 25, 2000, false)
		if err != nil {
			return fmt.Errorf("wire bench: %w", err)
		}
		report.WireBench = wb

		// Chaos variant: same healthy traffic shape, but every fourth
		// connection misbehaves (cancels, stalls, garbage handshakes,
		// quota exhaustion) against a server running tight limits. The
		// healthy clients' p99 staying within a small factor of the
		// clean run is the isolation claim, measured.
		if *chaos {
			wbc, err := runWireBench(*conns, 25, 2000, true)
			if err != nil {
				return fmt.Errorf("wire chaos bench: %w", err)
			}
			report.WireBenchChaos = wbc
			ratio := wbc.LatencyUsP99 / wb.LatencyUsP99
			fmt.Fprintf(os.Stderr, "chaos p99 / clean p99 = %.2fx\n", ratio)
			if *guard && ratio > 3 {
				return fmt.Errorf("bench guard: chaos p99 (%.0fus) is %.2fx clean p99 (%.0fus), want <= 3x",
					wbc.LatencyUsP99, ratio, wb.LatencyUsP99)
			}
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	for _, c := range report.Comparisons {
		fmt.Printf("%s n=%d: %.0f ns/op vs %.0f ns/op %s (%.1fx, %.1fx fewer allocs)\n",
			c.Name, c.Size, c.NsPerOp, c.BaselineNsPerOp, c.Baseline, c.Speedup, c.AllocRatio)
	}

	if *guard {
		lj, okJ := guardResults["load_json"]
		ls, okS := guardResults["load_snapshot"]
		if !okJ || !okS {
			return fmt.Errorf("bench guard needs the 10000 size in -sizes (got %v)", sizes)
		}
		if ls.NsPerOp >= lj.NsPerOp {
			return fmt.Errorf("bench guard: LoadSnapshot (%.0f ns/op) is not faster than JSON Load (%.0f ns/op) at 10000 implementations",
				ls.NsPerOp, lj.NsPerOp)
		}
		fmt.Fprintf(os.Stderr, "guard ok: LoadSnapshot %.0f ns/op < JSON Load %.0f ns/op at n=10000 (%.1fx)\n",
			ls.NsPerOp, lj.NsPerOp, lj.NsPerOp/ls.NsPerOp)
	}
	return nil
}
