// bench.go implements "icdbq bench": programmatic benchmarks of the ICDB
// read path over synthetic catalogs, emitted as a JSON trajectory file
// (BENCH_PR<N>.json) so performance is tracked commit over commit. Each
// indexed measurement is paired with the in-tree full-scan reference
// path (internal/benchgen), reproducing the before/after comparison on
// whatever machine runs it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"icdb/internal/benchgen"
	"icdb/internal/expand"
	"icdb/internal/genus"
	"icdb/internal/icdb"
	"icdb/internal/relstore"
)

// prePRBaseline pins the numbers measured on the pre-index read path
// (commit 5f6c9fa, the state before the planner/index engine landed) on
// the reference container (Intel Xeon @ 2.10GHz), for the same workload
// the comparisons below run: QueryByFunction(ADD, MaxArea(50)) and
// ImplByName over the benchgen catalog. The live fullscan_ns_per_op
// numbers re-measure that path in-tree; this block records the actual
// before-change measurement.
var prePRBaseline = map[string]map[string]float64{
	"query_by_function_ns_per_op": {"1000": 1995273, "10000": 22741848},
	"impl_by_name_ns_per_op":      {"1000": 163993, "10000": 2492863},
}

type benchMeasure struct {
	Name        string  `json:"name"`
	Size        int     `json:"size,omitempty"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type benchComparison struct {
	Name            string  `json:"name"`
	Size            int     `json:"size"`
	IndexedNsPerOp  float64 `json:"indexed_ns_per_op"`
	FullScanNsPerOp float64 `json:"fullscan_ns_per_op"`
	Speedup         float64 `json:"speedup"`
	IndexedAllocs   int64   `json:"indexed_allocs_per_op"`
	FullScanAllocs  int64   `json:"fullscan_allocs_per_op"`
}

type benchReport struct {
	Tool          string                        `json:"tool"`
	GOOS          string                        `json:"goos"`
	GOARCH        string                        `json:"goarch"`
	CPUs          int                           `json:"cpus"`
	GoVersion     string                        `json:"go_version"`
	Benchtime     string                        `json:"benchtime"`
	Sizes         []int                         `json:"sizes"`
	PrePRBaseline map[string]map[string]float64 `json:"pre_pr_baseline"`
	Comparisons   []benchComparison             `json:"comparisons"`
	Measurements  []benchMeasure                `json:"measurements"`
}

func runBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	sizesFlag := fs.String("sizes", "1000,10000", "comma-separated catalog sizes")
	out := fs.String("out", "BENCH_PR2.json", "output JSON path")
	benchtime := fs.String("benchtime", "300ms", "per-benchmark measuring time")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var sizes []int
	for _, s := range strings.Split(*sizesFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			return fmt.Errorf("bad size %q", s)
		}
		sizes = append(sizes, n)
	}
	// testing.Benchmark reads the test.benchtime flag; register the
	// testing flags and set it explicitly.
	testing.Init()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		return err
	}

	report := benchReport{
		Tool:          "icdbq bench",
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		CPUs:          runtime.NumCPU(),
		GoVersion:     runtime.Version(),
		Benchtime:     *benchtime,
		Sizes:         sizes,
		PrePRBaseline: prePRBaseline,
	}

	measure := func(name string, size int, f func(b *testing.B)) benchMeasure {
		r := testing.Benchmark(f)
		m := benchMeasure{
			Name:        name,
			Size:        size,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		fmt.Fprintf(os.Stderr, "%-28s n=%-7d %12.0f ns/op %8d allocs/op\n", name, size, m.NsPerOp, m.AllocsPerOp)
		return m
	}

	tmp, err := os.MkdirTemp("", "icdbq-bench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	for _, n := range sizes {
		fmt.Fprintf(os.Stderr, "building %d-implementation catalog...\n", n)
		db, err := benchgen.NewDB(n)
		if err != nil {
			return err
		}
		// Warm the lazily built inverted indexes so measurements see
		// steady state.
		if _, err := db.QueryByFunction(genus.FuncADD); err != nil {
			return err
		}

		qIdx := measure("query_by_function", n, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := db.QueryByFunction(genus.FuncADD, icdb.MaxArea(50)); err != nil {
					b.Fatal(err)
				}
			}
		})
		qScan := measure("query_by_function_fullscan", n, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := benchgen.FullScanQueryByFunction(db, genus.FuncADD, icdb.MaxArea(50)); err != nil {
					b.Fatal(err)
				}
			}
		})
		report.Comparisons = append(report.Comparisons, benchComparison{
			Name: "query_by_function", Size: n,
			IndexedNsPerOp: qIdx.NsPerOp, FullScanNsPerOp: qScan.NsPerOp,
			Speedup:       qScan.NsPerOp / qIdx.NsPerOp,
			IndexedAllocs: qIdx.AllocsPerOp, FullScanAllocs: qScan.AllocsPerOp,
		})

		lIdx := measure("impl_by_name", n, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := db.ImplByName(benchgen.NameOf(i % n)); err != nil {
					b.Fatal(err)
				}
			}
		})
		lScan := measure("impl_by_name_fullscan", n, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := benchgen.FullScanImplRow(db, benchgen.NameOf(i%n)); err != nil {
					b.Fatal(err)
				}
			}
		})
		report.Comparisons = append(report.Comparisons, benchComparison{
			Name: "impl_by_name", Size: n,
			IndexedNsPerOp: lIdx.NsPerOp, FullScanNsPerOp: lScan.NsPerOp,
			Speedup:       lScan.NsPerOp / lIdx.NsPerOp,
			IndexedAllocs: lIdx.AllocsPerOp, FullScanAllocs: lScan.AllocsPerOp,
		})

		report.Measurements = append(report.Measurements,
			qIdx, qScan, lIdx, lScan,
			measure("query_topk5", n, func(b *testing.B) {
				b.ReportAllocs()
				fns := []genus.Function{genus.FuncADD, genus.FuncSUB}
				for i := 0; i < b.N; i++ {
					if _, err := db.QueryByFunctionsTopK(fns, 5, icdb.ForWidth(8)); err != nil {
						b.Fatal(err)
					}
				}
			}),
			measure("save_json", n, func(b *testing.B) {
				b.ReportAllocs()
				path := filepath.Join(tmp, fmt.Sprintf("save%d.json", n))
				for i := 0; i < b.N; i++ {
					if err := db.Store().Save(path); err != nil {
						b.Fatal(err)
					}
				}
			}),
			measure("load_json", n, func(b *testing.B) {
				b.ReportAllocs()
				path := filepath.Join(tmp, fmt.Sprintf("save%d.json", n))
				for i := 0; i < b.N; i++ {
					if _, err := relstore.Load(path); err != nil {
						b.Fatal(err)
					}
				}
			}),
		)
	}

	// Catalog-size-independent measurements.
	db, err := icdb.Open(relstore.New())
	if err != nil {
		return err
	}
	params := map[string]int{"size": 8}
	report.Measurements = append(report.Measurements,
		measure("expand_cold", 0, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := expand.New(db).ExpandImpl("cnt_up", params); err != nil {
					b.Fatal(err)
				}
			}
		}),
		measure("register_impl", 0, func(b *testing.B) {
			b.ReportAllocs()
			im := benchgen.ImplAt(0)
			for i := 0; i < b.N; i++ {
				if err := db.RegisterImpl(im); err != nil {
					b.Fatal(err)
				}
			}
		}),
	)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	for _, c := range report.Comparisons {
		fmt.Printf("%s n=%d: %.0f ns/op indexed vs %.0f ns/op full scan (%.1fx)\n",
			c.Name, c.Size, c.IndexedNsPerOp, c.FullScanNsPerOp, c.Speedup)
	}
	return nil
}
