// bench_wire.go implements the concurrent-client scenario of "icdbq
// bench": an in-process icdbd server (internal/wire) on a loopback
// listener, driven by hundreds of concurrent connections issuing mixed
// find/generate/expand traffic. It measures aggregate throughput and
// per-command latency percentiles, and exercises the property the
// server is built on — streamed finds iterate snapshot-isolated reads,
// so writers on other sessions never wait on a reader.
package main

import (
	"fmt"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"icdb/internal/benchgen"
	"icdb/internal/wire"
)

// benchDesign is the design the expand traffic expands, served to the
// wire server from memory (no filesystem in the loop).
const benchDesign = "NAME: bench_cell; PARAMETER: size; INORDER: d, clk; OUTORDER: q; { q = d @ (~r clk); }"

// wireBenchResult is the concurrent-client scenario's report entry.
type wireBenchResult struct {
	Connections  int            `json:"connections"`
	OpsPerConn   int            `json:"ops_per_conn"`
	Ops          int            `json:"ops"`
	Rows         int            `json:"rows"`
	Mix          map[string]int `json:"mix"`
	CatalogSize  int            `json:"catalog_size"`
	DurationMs   float64        `json:"duration_ms"`
	OpsPerSec    float64        `json:"ops_per_sec"`
	LatencyUsP50 float64        `json:"latency_us_p50"`
	LatencyUsP95 float64        `json:"latency_us_p95"`
	LatencyUsP99 float64        `json:"latency_us_p99"`
	LatencyUsMax float64        `json:"latency_us_max"`
}

// runWireBench starts a wire server over a catalogSize-implementation
// synthetic catalog and hammers it with conns concurrent sessions, each
// running opsPerConn commands of mixed traffic: 3/5 streamed finds, 1/5
// generates (writes), 1/5 design expands. Any command failure fails the
// whole scenario — under load the server must stay correct, not just up.
func runWireBench(conns, opsPerConn, catalogSize int) (*wireBenchResult, error) {
	db, err := benchgen.NewDB(catalogSize)
	if err != nil {
		return nil, err
	}
	srv := &wire.Server{
		DB:       db,
		ReadFile: func(string) ([]byte, error) { return []byte(benchDesign), nil },
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	defer func() {
		srv.Close()
		<-serveDone
	}()
	addr := ln.Addr().String()

	type connStats struct {
		lat  []time.Duration
		rows int
		mix  map[string]int
		err  error
	}
	stats := make([]connStats, conns)
	var wg sync.WaitGroup
	start := time.Now()
	for ci := 0; ci < conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			st := &stats[ci]
			st.lat = make([]time.Duration, 0, opsPerConn)
			st.mix = make(map[string]int)
			c, err := wire.Dial(addr)
			if err != nil {
				st.err = fmt.Errorf("conn %d: %w", ci, err)
				return
			}
			defer c.Close()
			if _, err := c.Exec(fmt.Sprintf("set width %d", ci%16+1), nil); err != nil {
				st.err = fmt.Errorf("conn %d set: %w", ci, err)
				return
			}
			for i := 0; i < opsPerConn; i++ {
				var cmd, kind string
				switch i % 5 {
				case 0, 1, 2:
					kind = "find"
					cmd = "find component executing ADD order by cost limit 5"
				case 3:
					kind = "generate"
					cmd = fmt.Sprintf("generate Counter size=%d", (ci*opsPerConn+i)%60+1)
				default:
					kind = "expand"
					cmd = "expand bench.iif size=4"
				}
				t0 := time.Now()
				rows, err := c.Exec(cmd, nil)
				if err != nil {
					st.err = fmt.Errorf("conn %d %s: %w", ci, kind, err)
					return
				}
				st.lat = append(st.lat, time.Since(t0))
				st.rows += rows
				st.mix[kind]++
			}
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &wireBenchResult{
		Connections: conns,
		OpsPerConn:  opsPerConn,
		Mix:         make(map[string]int),
		CatalogSize: catalogSize,
		DurationMs:  float64(elapsed.Nanoseconds()) / 1e6,
	}
	var all []time.Duration
	for i := range stats {
		if stats[i].err != nil {
			return nil, stats[i].err
		}
		all = append(all, stats[i].lat...)
		res.Rows += stats[i].rows
		for k, v := range stats[i].mix {
			res.Mix[k] += v
		}
	}
	res.Ops = len(all)
	res.OpsPerSec = float64(res.Ops) / elapsed.Seconds()
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		i := int(p * float64(len(all)-1))
		return float64(all[i].Nanoseconds()) / 1e3
	}
	res.LatencyUsP50 = pct(0.50)
	res.LatencyUsP95 = pct(0.95)
	res.LatencyUsP99 = pct(0.99)
	res.LatencyUsMax = pct(1.0)
	fmt.Fprintf(os.Stderr,
		"wire_concurrent_clients: %d conns x %d ops in %.0fms: %.0f ops/s, p50 %.0fus p95 %.0fus p99 %.0fus\n",
		conns, opsPerConn, res.DurationMs, res.OpsPerSec,
		res.LatencyUsP50, res.LatencyUsP95, res.LatencyUsP99)
	return res, nil
}
