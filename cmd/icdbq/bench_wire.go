// bench_wire.go implements the concurrent-client scenarios of "icdbq
// bench": an in-process icdbd server (internal/wire) on a loopback
// listener, driven by hundreds of concurrent connections issuing mixed
// find/generate/expand traffic. It measures aggregate throughput and
// per-command latency percentiles, and exercises the property the
// server is built on — streamed finds iterate snapshot-isolated reads,
// so writers on other sessions never wait on a reader.
//
// With -chaos a quarter of the connections turn hostile — cancelling
// finds mid-stream, stalling until the write timeout kills them,
// writing garbage at the handshake, and exhausting row quotas — while
// the healthy three quarters keep measuring. The healthy percentiles
// under chaos, reported alongside the clean run, are the number that
// proves a misbehaving client cannot degrade everyone else.
package main

import (
	"context"
	"fmt"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"icdb/internal/benchgen"
	"icdb/internal/wire"
)

// benchDesign is the design the expand traffic expands, served to the
// wire server from memory (no filesystem in the loop).
const benchDesign = "NAME: bench_cell; PARAMETER: size; INORDER: d, clk; OUTORDER: q; { q = d @ (~r clk); }"

// wireBenchResult is one concurrent-client scenario's report entry.
// In chaos mode the latency percentiles cover the healthy connections
// only — the chaos agents' aborted commands are events, not samples.
type wireBenchResult struct {
	Connections  int            `json:"connections"`
	OpsPerConn   int            `json:"ops_per_conn"`
	Ops          int            `json:"ops"`
	Rows         int            `json:"rows"`
	Mix          map[string]int `json:"mix"`
	CatalogSize  int            `json:"catalog_size"`
	DurationMs   float64        `json:"duration_ms"`
	OpsPerSec    float64        `json:"ops_per_sec"`
	LatencyUsP50 float64        `json:"latency_us_p50"`
	LatencyUsP95 float64        `json:"latency_us_p95"`
	LatencyUsP99 float64        `json:"latency_us_p99"`
	LatencyUsMax float64        `json:"latency_us_max"`
	Chaos        bool           `json:"chaos,omitempty"`
	ChaosConns   int            `json:"chaos_conns,omitempty"`
	ChaosEvents  map[string]int `json:"chaos_events,omitempty"`
	ServerStats  *wire.Stats    `json:"server_stats,omitempty"`
}

// chaosLimits are the server limits the chaos scenario runs under:
// tight enough that the hostile agents actually trip them, loose
// enough that the healthy traffic (bounded finds) never does.
var chaosLimits = wire.Limits{
	MaxSessionRows:   600,
	WriteTimeout:     250 * time.Millisecond,
	HandshakeTimeout: 5 * time.Second,
}

// runWireBench starts a wire server over a catalogSize-implementation
// synthetic catalog and hammers it with conns concurrent sessions, each
// running opsPerConn commands of mixed traffic: 3/5 streamed finds, 1/5
// generates (writes), 1/5 design expands. Any command failure on a
// healthy connection fails the whole scenario — under load the server
// must stay correct, not just up. With chaos, every fourth connection
// misbehaves instead of measuring (see chaosAgent).
func runWireBench(conns, opsPerConn, catalogSize int, chaos bool) (*wireBenchResult, error) {
	db, err := benchgen.NewDB(catalogSize)
	if err != nil {
		return nil, err
	}
	srv := &wire.Server{
		DB:       db,
		ReadFile: func(string) ([]byte, error) { return []byte(benchDesign), nil },
	}
	if chaos {
		srv.Limits = chaosLimits
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	defer func() {
		srv.Close()
		<-serveDone
	}()
	addr := ln.Addr().String()

	type connStats struct {
		lat    []time.Duration
		rows   int
		mix    map[string]int
		events map[string]int
		err    error
	}
	stats := make([]connStats, conns)
	chaosConns := 0
	var wg sync.WaitGroup
	start := time.Now()
	for ci := 0; ci < conns; ci++ {
		wg.Add(1)
		if chaos && ci%4 == 3 {
			chaosConns++
			go func(ci int) {
				defer wg.Done()
				st := &stats[ci]
				st.events = make(map[string]int)
				chaosAgent(addr, ci, st.events)
			}(ci)
			continue
		}
		go func(ci int) {
			defer wg.Done()
			st := &stats[ci]
			st.lat = make([]time.Duration, 0, opsPerConn)
			st.mix = make(map[string]int)
			c, err := wire.Dial(addr)
			if err != nil {
				st.err = fmt.Errorf("conn %d: %w", ci, err)
				return
			}
			defer c.Close()
			if _, err := c.Exec(fmt.Sprintf("set width %d", ci%16+1), nil); err != nil {
				st.err = fmt.Errorf("conn %d set: %w", ci, err)
				return
			}
			for i := 0; i < opsPerConn; i++ {
				var cmd, kind string
				switch i % 5 {
				case 0, 1, 2:
					kind = "find"
					cmd = "find component executing ADD order by cost limit 5"
				case 3:
					kind = "generate"
					cmd = fmt.Sprintf("generate Counter size=%d", (ci*opsPerConn+i)%60+1)
				default:
					kind = "expand"
					cmd = "expand bench.iif size=4"
				}
				t0 := time.Now()
				rows, err := c.Exec(cmd, nil)
				if err != nil {
					st.err = fmt.Errorf("conn %d %s: %w", ci, kind, err)
					return
				}
				st.lat = append(st.lat, time.Since(t0))
				st.rows += rows
				st.mix[kind]++
			}
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &wireBenchResult{
		Connections: conns,
		OpsPerConn:  opsPerConn,
		Mix:         make(map[string]int),
		CatalogSize: catalogSize,
		DurationMs:  float64(elapsed.Nanoseconds()) / 1e6,
		Chaos:       chaos,
		ChaosConns:  chaosConns,
	}
	if chaos {
		res.ChaosEvents = make(map[string]int)
		st := srv.Stats()
		res.ServerStats = &st
	}
	var all []time.Duration
	for i := range stats {
		if stats[i].err != nil {
			return nil, stats[i].err
		}
		all = append(all, stats[i].lat...)
		res.Rows += stats[i].rows
		for k, v := range stats[i].mix {
			res.Mix[k] += v
		}
		for k, v := range stats[i].events {
			res.ChaosEvents[k] += v
		}
	}
	res.Ops = len(all)
	res.OpsPerSec = float64(res.Ops) / elapsed.Seconds()
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		i := int(p * float64(len(all)-1))
		return float64(all[i].Nanoseconds()) / 1e3
	}
	res.LatencyUsP50 = pct(0.50)
	res.LatencyUsP95 = pct(0.95)
	res.LatencyUsP99 = pct(0.99)
	res.LatencyUsMax = pct(1.0)
	label := "wire_concurrent_clients"
	if chaos {
		label = "wire_concurrent_clients_chaos"
	}
	fmt.Fprintf(os.Stderr,
		"%s: %d conns x %d ops in %.0fms: %.0f ops/s, p50 %.0fus p95 %.0fus p99 %.0fus\n",
		label, conns, opsPerConn, res.DurationMs, res.OpsPerSec,
		res.LatencyUsP50, res.LatencyUsP95, res.LatencyUsP99)
	if chaos {
		fmt.Fprintf(os.Stderr, "  chaos: %d hostile conns, events %v, server stats %+v\n",
			chaosConns, res.ChaosEvents, *res.ServerStats)
	}
	return res, nil
}

// chaosAgent is one hostile connection's lifetime: a rotation of the
// misbehaviors the server's limits exist for. Every outcome is legal —
// a cancelled find may win or lose its race, a stalled session is
// killed by the write timeout or survives on socket buffers — the
// agent just keeps the pressure on and records what happened. Only the
// healthy connections' measurements judge the server.
func chaosAgent(addr string, ci int, events map[string]int) {
	redial := func() *wire.Client {
		c, err := wire.DialOptions(addr, wire.Options{
			Retry: wire.Backoff{Attempts: 5, Base: 5 * time.Millisecond},
		})
		if err != nil {
			events["redial_failed"]++
			return nil
		}
		return c
	}
	for round := 0; round < 5; round++ {
		switch (ci + round) % 4 {
		case 0: // cancel a streamed find mid-flight
			c := redial()
			if c == nil {
				continue
			}
			ctx, cancel := context.WithCancel(context.Background())
			rows := 0
			c.ExecContext(ctx, "find component executing ADD", func(string) {
				rows++
				if rows == 2 {
					cancel()
				}
			})
			cancel()
			c.Close()
			events["cancel"]++
		case 1: // stall mid-stream until the write timeout reaps us
			c := redial()
			if c == nil {
				continue
			}
			rows := 0
			c.Exec("find component executing ADD", func(string) {
				rows++
				if rows == 1 {
					time.Sleep(3 * chaosLimits.WriteTimeout)
				}
			})
			c.Close()
			events["stall"]++
		case 2: // garbage at the handshake
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				events["redial_failed"]++
				continue
			}
			conn.Write([]byte("GET / HTTP/1.1\r\n\r\n"))
			conn.Close()
			events["garbage"]++
		case 3: // exhaust the session row quota with unbounded finds
			c := redial()
			if c == nil {
				continue
			}
			for i := 0; i < 6; i++ {
				if _, err := c.Exec("find component executing ADD", nil); err != nil {
					events["quota"]++
					break
				}
			}
			c.Close()
		}
	}
}
