// openbench.go implements the open-latency scenario of "icdbq bench":
// what snapshot format v4's section directory buys at boot. Two catalog
// shapes drive it. A balanced catalog (a third implementations, the
// rest explorations, estimators alongside) makes every heavy section
// carry weight, so eager parallel section decode and the v4-over-v3
// encoding overhead are both visible. A skewed catalog (a fixed 1000
// implementations next to n explorations) is the shape lazy open
// exists for: the first query touches only the small implementations
// section, so time-to-first-query should not pay for the point cloud.
//
// Every variant is measured in its own subprocess (the hidden
// "_openprobe" subcommand): opening a multi-gigabyte catalog leaves
// allocator and GC state behind that measurably distorts whatever runs
// next in the same process — enough to flip a v4-vs-v3 comparison —
// and a fresh process per variant is also what the metric means in
// practice, since a cold open happens once per tool boot.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"testing"

	"icdb/internal/benchgen"
	"icdb/internal/icdb"
	"icdb/internal/relstore"
)

// openBenchResult is one size's entry in the "open_latency" section of
// the bench report.
type openBenchResult struct {
	Size          int   `json:"size"`
	Sections      int   `json:"sections"`
	SnapshotBytes int64 `json:"snapshot_bytes"`

	// Full-materialization opens of the balanced catalog.
	V3EagerNsPerOp    float64 `json:"open_v3_eager_ns_per_op"`
	V4ParallelNsPerOp float64 `json:"open_v4_eager_parallel_ns_per_op"`
	V4SerialNsPerOp   float64 `json:"open_v4_eager_serial_ns_per_op"`
	V4LazyNsPerOp     float64 `json:"open_v4_lazy_ns_per_op"`
	ParallelSpeedup   float64 `json:"parallel_decode_speedup"`  // serial / parallel, bigger is better
	V4EagerOverV3     float64 `json:"v4_eager_over_v3"`         // parallel v4 / v3, smaller is better
	LazyOverEager     float64 `json:"lazy_open_over_v4_serial"` // lazy / serial v4, smaller is better

	// Time-to-first-query on the skewed catalog: open + icdb.Open +
	// one ImplByName.
	TTFQLazyNsPerOp  float64 `json:"ttfq_lazy_ns_per_op"`
	TTFQEagerNsPerOp float64 `json:"ttfq_eager_ns_per_op"`
	TTFQRatio        float64 `json:"ttfq_lazy_over_eager"` // lazy / eager, smaller is better
}

// openProbeVariants maps -variant names to open calls. The probe and
// the parent agree on these names.
var openProbeVariants = map[string]func(path string) (*relstore.Store, error){
	"v3": func(path string) (*relstore.Store, error) {
		return relstore.LoadSnapshot(path)
	},
	"parallel": func(path string) (*relstore.Store, error) {
		return relstore.OpenSnapshot(path, relstore.SnapshotOptions{})
	},
	"serial": func(path string) (*relstore.Store, error) {
		return relstore.OpenSnapshot(path, relstore.SnapshotOptions{Workers: 1})
	},
	"lazy": func(path string) (*relstore.Store, error) {
		return relstore.OpenSnapshot(path, relstore.SnapshotOptions{Mode: relstore.OpenLazy})
	},
}

// runOpenProbe implements the hidden "_openprobe" subcommand: measure
// one open variant against one snapshot file in this (fresh) process
// and print the benchMeasure as JSON on stdout.
func runOpenProbe(args []string) error {
	fs := flag.NewFlagSet("_openprobe", flag.ContinueOnError)
	path := fs.String("path", "", "snapshot file to open")
	variant := fs.String("variant", "", "v3, parallel, serial, or lazy")
	query := fs.Bool("query", false, "follow the open with icdb.Open and one ImplByName (time-to-first-query)")
	benchtime := fs.String("benchtime", "100ms", "per-benchmark measuring time")
	if err := fs.Parse(args); err != nil {
		return err
	}
	open, ok := openProbeVariants[*variant]
	if !ok {
		return fmt.Errorf("-variant must be v3, parallel, serial, or lazy (got %q)", *variant)
	}
	testing.Init()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		return err
	}
	// Warm the page cache off the clock: whether the snapshot file is
	// resident depends on what the parent process did lately, and a
	// cold read of a gigabyte-scale file would swamp the decode being
	// compared. Every variant therefore times a warm-cache open.
	if _, err := os.ReadFile(*path); err != nil {
		return err
	}
	runtime.GC()
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := open(*path)
			if err != nil {
				b.Fatal(err)
			}
			if *query {
				db, err := icdb.Open(s)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := db.ImplByName(benchgen.NameOf(0)); err != nil {
					b.Fatal(err)
				}
			}
			s = nil
			// Level the heap between iterations, off the clock, so
			// iteration k is not measured against iteration k-1's
			// garbage.
			b.StopTimer()
			runtime.GC()
			b.StartTimer()
		}
	})
	out, err := json.Marshal(benchMeasure{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	})
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

// runOpenBench measures the open-latency scenario at n total rows,
// building (or reusing) the catalog snapshots under cacheDir. benchtime
// is forwarded to each probe subprocess.
func runOpenBench(cacheDir string, n, seed int, benchtime string) (*openBenchResult, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("open bench: locating own binary for probe subprocesses: %w", err)
	}
	probe := func(name, variant, path string, query bool) (benchMeasure, error) {
		args := []string{"_openprobe", "-path", path, "-variant", variant, "-benchtime", benchtime}
		if query {
			args = append(args, "-query")
		}
		cmd := exec.Command(exe, args...)
		cmd.Stderr = os.Stderr
		out, err := cmd.Output()
		if err != nil {
			return benchMeasure{}, fmt.Errorf("open probe %s: %w", name, err)
		}
		var m benchMeasure
		if err := json.Unmarshal(bytes.TrimSpace(out), &m); err != nil {
			return benchMeasure{}, fmt.Errorf("open probe %s: bad output %q: %w", name, out, err)
		}
		m.Name, m.Size = name, n
		fmt.Fprintf(os.Stderr, "%-28s n=%-7d %12.0f ns/op %8d allocs/op\n", name, n, m.NsPerOp, m.AllocsPerOp)
		return m, nil
	}

	res := &openBenchResult{Size: n}

	// --- Balanced catalog: v3 vs v4, serial vs parallel, lazy ---
	balanced := benchgen.CatalogSpec{Impls: n / 3, Expls: n - n/3, Estimators: true, Seed: seed, Version: 4}
	fmt.Fprintf(os.Stderr, "open scenario: balanced catalog at n=%d (cached under %s)...\n", n, cacheDir)
	v4Path, err := benchgen.CachedCatalog(cacheDir, balanced)
	if err != nil {
		return nil, err
	}
	balanced.Version = 3
	v3Path, err := benchgen.CachedCatalog(cacheDir, balanced)
	if err != nil {
		return nil, err
	}
	if fi, err := os.Stat(v4Path); err == nil {
		res.SnapshotBytes = fi.Size()
	}

	// Untimed validation pass: the v4 and v3 files must agree on the
	// catalog before their timings mean anything. Lazy opens keep the
	// validation itself cheap at 1M rows.
	probeStore, err := relstore.OpenSnapshot(v4Path, relstore.SnapshotOptions{Mode: relstore.OpenLazy})
	if err != nil {
		return nil, err
	}
	res.Sections = probeStore.LazyInfo().Tables
	nImpls, err := probeStore.Count(icdb.TableImplementations, nil)
	if err != nil {
		return nil, err
	}
	v3Probe, err := relstore.LoadSnapshot(v3Path)
	if err != nil {
		return nil, err
	}
	nImpls3, err := v3Probe.Count(icdb.TableImplementations, nil)
	if err != nil {
		return nil, err
	}
	if nImpls != nImpls3 {
		return nil, fmt.Errorf("open bench: v4 catalog holds %d implementations, v3 %d", nImpls, nImpls3)
	}
	probeStore, v3Probe = nil, nil
	runtime.GC()

	v3, err := probe("open_v3_eager", "v3", v3Path, false)
	if err != nil {
		return nil, err
	}
	v4p, err := probe("open_v4_eager_parallel", "parallel", v4Path, false)
	if err != nil {
		return nil, err
	}
	v4s, err := probe("open_v4_eager_serial", "serial", v4Path, false)
	if err != nil {
		return nil, err
	}
	v4l, err := probe("open_v4_lazy", "lazy", v4Path, false)
	if err != nil {
		return nil, err
	}
	res.V3EagerNsPerOp = v3.NsPerOp
	res.V4ParallelNsPerOp = v4p.NsPerOp
	res.V4SerialNsPerOp = v4s.NsPerOp
	res.V4LazyNsPerOp = v4l.NsPerOp
	if v4p.NsPerOp > 0 {
		res.ParallelSpeedup = v4s.NsPerOp / v4p.NsPerOp
	}
	if v3.NsPerOp > 0 {
		res.V4EagerOverV3 = v4p.NsPerOp / v3.NsPerOp
	}
	if v4s.NsPerOp > 0 {
		res.LazyOverEager = v4l.NsPerOp / v4s.NsPerOp
	}

	// --- Skewed catalog: time-to-first-query, lazy vs eager ---
	skewed := benchgen.CatalogSpec{Impls: 1000, Expls: n, Seed: seed, Version: 4}
	fmt.Fprintf(os.Stderr, "open scenario: skewed catalog at n=%d...\n", n)
	skewPath, err := benchgen.CachedCatalog(cacheDir, skewed)
	if err != nil {
		return nil, err
	}

	// First-query validation: the lazy path must return the same
	// implementation the eager path does, while leaving the exploration
	// cloud cold (that cold section is the entire point of the ratio).
	firstQuery := func(mode relstore.OpenMode) (icdb.Impl, *relstore.Store, error) {
		s, err := relstore.OpenSnapshot(skewPath, relstore.SnapshotOptions{Mode: mode})
		if err != nil {
			return icdb.Impl{}, nil, err
		}
		db, err := icdb.Open(s)
		if err != nil {
			return icdb.Impl{}, nil, err
		}
		im, err := db.ImplByName(benchgen.NameOf(0))
		return im, s, err
	}
	lazyIm, lazyStore, err := firstQuery(relstore.OpenLazy)
	if err != nil {
		return nil, err
	}
	eagerIm, _, err := firstQuery(relstore.OpenEager)
	if err != nil {
		return nil, err
	}
	if lazyIm.Name != eagerIm.Name || lazyIm.Area != eagerIm.Area {
		return nil, fmt.Errorf("open bench: lazy first query returned %s/%g, eager %s/%g",
			lazyIm.Name, lazyIm.Area, eagerIm.Name, eagerIm.Area)
	}
	coldExplorations := false
	for _, t := range lazyStore.LazyInfo().PendingTables {
		if t == icdb.TableExplorations {
			coldExplorations = true
		}
	}
	if !coldExplorations {
		return nil, fmt.Errorf("open bench: the lazy first query hydrated the exploration cloud (pending: %v)",
			lazyStore.LazyInfo().PendingTables)
	}
	lazyStore = nil
	runtime.GC()

	tl, err := probe("ttfq_lazy", "lazy", skewPath, true)
	if err != nil {
		return nil, err
	}
	te, err := probe("ttfq_eager", "parallel", skewPath, true)
	if err != nil {
		return nil, err
	}
	res.TTFQLazyNsPerOp = tl.NsPerOp
	res.TTFQEagerNsPerOp = te.NsPerOp
	if te.NsPerOp > 0 {
		res.TTFQRatio = tl.NsPerOp / te.NsPerOp
	}
	return res, nil
}
