// Command icdbd serves the ICDB component database over the wire
// protocol (internal/wire): the paper's tool/database split as a
// long-lived service. Synthesis tools — or icdbq in client mode —
// connect over TCP, each getting its own CQL session (current width,
// tool-parameter overrides, expander reuse), while snapshot-isolated
// reads keep one client's streamed find from blocking another's writes.
//
// Usage:
//
//	icdbd [-addr 127.0.0.1:7390] [-db catalog] [-save] [-designs dir]
//	      [-secret token] [-maxconns n] [-maxcmds n] [-maxrows n]
//	      [-idle d] [-wtimeout d] [-handshake d] [-grace d] [-v]
//
// With -db the catalog is loaded from the given file (JSON or binary
// snapshot, sniffed); without it the server starts from the builtin
// seeded catalog. -save writes the catalog back (as a binary snapshot)
// on graceful shutdown; it requires -db. -designs names the only
// directory "expand <file>" commands may read designs from — without
// it, expand-from-file is disabled (the safe default for a network
// service).
//
// -secret requires every client to present the same shared-secret
// token in its protocol-v2 handshake (icdbq's -secret flag or the
// ICDB_SECRET env var); it defaults to the ICDBD_SECRET environment
// variable so the token can be kept out of process listings. The
// -maxconns/-maxcmds/-maxrows/-idle/-wtimeout/-handshake flags install
// the server limits documented in internal/wire (0 disables one);
// every violation answers a typed Error frame, never a raw TCP reset,
// and the live counters are visible to any client via "show server".
//
// SIGINT or SIGTERM shuts the server down gracefully: in-flight
// commands are aborted with a decodable shutdown Error, handlers get
// -grace to unwind, and then the catalog is saved atomically.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"icdb/internal/icdb"
	"icdb/internal/relstore"
	"icdb/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "icdbd: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error { return runServer(args, nil, nil) }

// runServer is run with test hooks: ready (if non-nil) receives the
// bound listen address once the server is accepting, and closing stop
// (if non-nil) triggers the same graceful shutdown a signal would.
func runServer(args []string, ready func(addr string), stop <-chan struct{}) error {
	fs := flag.NewFlagSet("icdbd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7390", "TCP address to listen on")
	dbPath := fs.String("db", "", "catalog file to load (JSON or snapshot); empty starts from the builtin seed")
	save := fs.Bool("save", false, "save the catalog back to -db (as a binary snapshot) on graceful shutdown")
	designs := fs.String("designs", "", "directory expand commands may read design files from; empty disables expand-from-file")
	secret := fs.String("secret", os.Getenv("ICDBD_SECRET"), "shared-secret auth token clients must present (default $ICDBD_SECRET); empty disables auth")
	maxConns := fs.Int("maxconns", 256, "max concurrent connections; 0 = unlimited")
	maxCmds := fs.Int("maxcmds", 0, "max commands per session; 0 = unlimited")
	maxRows := fs.Int("maxrows", 0, "max streamed rows per session; 0 = unlimited")
	idle := fs.Duration("idle", 10*time.Minute, "idle session timeout; 0 = none")
	wtimeout := fs.Duration("wtimeout", 30*time.Second, "per-frame write timeout (unsticks stalled readers); 0 = none")
	handshake := fs.Duration("handshake", 10*time.Second, "handshake deadline (rejects stalled or partial preambles); 0 = none")
	grace := fs.Duration("grace", 5*time.Second, "shutdown grace period for in-flight sessions to unwind")
	verbose := fs.Bool("v", false, "log per-connection lifecycle events")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if *save && *dbPath == "" {
		return fmt.Errorf("-save needs -db to know where to save")
	}

	store := relstore.New()
	if *dbPath != "" {
		var err error
		if store, err = relstore.Load(*dbPath); err != nil {
			if !errors.Is(err, os.ErrNotExist) {
				return err
			}
			// A missing -db file with -save is a fresh catalog to be
			// created at shutdown; without -save it is a mistake.
			if !*save {
				return fmt.Errorf("catalog %s does not exist (use -save to create it at shutdown)", *dbPath)
			}
			store = relstore.New()
			log.Printf("catalog %s does not exist; starting from the builtin seed", *dbPath)
		}
	}
	db, err := icdb.Open(store)
	if err != nil {
		return err
	}

	srv := &wire.Server{
		DB:     db,
		Secret: *secret,
		Limits: wire.Limits{
			MaxConns:           *maxConns,
			MaxSessionCommands: *maxCmds,
			MaxSessionRows:     *maxRows,
			IdleTimeout:        *idle,
			WriteTimeout:       *wtimeout,
			HandshakeTimeout:   *handshake,
		},
	}
	if *designs != "" {
		srv.ReadFile = designReader(*designs)
	}
	if *verbose {
		srv.Logf = log.Printf
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.Printf("icdbd listening on %s", ln.Addr())

	// Serve until a termination signal (or the test stop hook);
	// Shutdown aborts in-flight commands with a decodable Error frame,
	// waits up to -grace for handlers to unwind, and leaves the store
	// consistent for the save below.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sig)
	if ready != nil {
		ready(ln.Addr().String())
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case s := <-sig:
		log.Printf("received %v, shutting down", s)
		srv.Shutdown(*grace)
		<-done
	case <-stop:
		log.Printf("stop requested, shutting down")
		srv.Shutdown(*grace)
		<-done
	case err := <-done:
		if err != nil {
			return err
		}
	}

	if *save {
		if err := store.SaveSnapshot(*dbPath); err != nil {
			return fmt.Errorf("saving catalog: %w", err)
		}
		log.Printf("catalog saved to %s", *dbPath)
	}
	return nil
}

// designReader confines "expand <file>" reads to dir: the
// client-supplied path must be a local relative path (no absolute
// paths, no ".." escapes) and resolves inside dir.
func designReader(dir string) func(path string) ([]byte, error) {
	return func(path string) ([]byte, error) {
		if !filepath.IsLocal(path) {
			return nil, fmt.Errorf("design path %q must be relative to the server's designs directory", path)
		}
		return os.ReadFile(filepath.Join(dir, path))
	}
}
