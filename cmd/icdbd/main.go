// Command icdbd serves the ICDB component database over the wire
// protocol (internal/wire): the paper's tool/database split as a
// long-lived service. Synthesis tools — or icdbq in client mode —
// connect over TCP, each getting its own CQL session (current width,
// tool-parameter overrides, expander reuse), while snapshot-isolated
// reads keep one client's streamed find from blocking another's writes.
//
// Usage:
//
//	icdbd [-addr 127.0.0.1:7390] [-db catalog] [-save] [-designs dir] [-v]
//
// With -db the catalog is loaded from the given file (JSON or binary
// snapshot, sniffed); without it the server starts from the builtin
// seeded catalog. -save writes the catalog back (as a binary snapshot)
// on graceful shutdown; it requires -db. -designs names the only
// directory "expand <file>" commands may read designs from — without
// it, expand-from-file is disabled (the safe default for a network
// service). SIGINT or SIGTERM shuts the server down gracefully:
// in-flight connections are closed, then the catalog is saved.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"icdb/internal/icdb"
	"icdb/internal/relstore"
	"icdb/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "icdbd: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("icdbd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7390", "TCP address to listen on")
	dbPath := fs.String("db", "", "catalog file to load (JSON or snapshot); empty starts from the builtin seed")
	save := fs.Bool("save", false, "save the catalog back to -db (as a binary snapshot) on graceful shutdown")
	designs := fs.String("designs", "", "directory expand commands may read design files from; empty disables expand-from-file")
	verbose := fs.Bool("v", false, "log per-connection lifecycle events")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if *save && *dbPath == "" {
		return fmt.Errorf("-save needs -db to know where to save")
	}

	store := relstore.New()
	if *dbPath != "" {
		var err error
		if store, err = relstore.Load(*dbPath); err != nil {
			if !errors.Is(err, os.ErrNotExist) {
				return err
			}
			// A missing -db file with -save is a fresh catalog to be
			// created at shutdown; without -save it is a mistake.
			if !*save {
				return fmt.Errorf("catalog %s does not exist (use -save to create it at shutdown)", *dbPath)
			}
			store = relstore.New()
			log.Printf("catalog %s does not exist; starting from the builtin seed", *dbPath)
		}
	}
	db, err := icdb.Open(store)
	if err != nil {
		return err
	}

	srv := &wire.Server{DB: db}
	if *designs != "" {
		srv.ReadFile = designReader(*designs)
	}
	if *verbose {
		srv.Logf = log.Printf
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.Printf("icdbd listening on %s", ln.Addr())

	// Serve until a termination signal; Close unblocks Serve and waits
	// for every connection handler to unwind (mid-stream commands stop
	// at their next socket write, leaving the store consistent).
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case s := <-sig:
		log.Printf("received %v, shutting down", s)
		srv.Close()
		<-done
	case err := <-done:
		if err != nil {
			return err
		}
	}

	if *save {
		if err := store.SaveSnapshot(*dbPath); err != nil {
			return fmt.Errorf("saving catalog: %w", err)
		}
		log.Printf("catalog saved to %s", *dbPath)
	}
	return nil
}

// designReader confines "expand <file>" reads to dir: the
// client-supplied path must be a local relative path (no absolute
// paths, no ".." escapes) and resolves inside dir.
func designReader(dir string) func(path string) ([]byte, error) {
	return func(path string) ([]byte, error) {
		if !filepath.IsLocal(path) {
			return nil, fmt.Errorf("design path %q must be relative to the server's designs directory", path)
		}
		return os.ReadFile(filepath.Join(dir, path))
	}
}
