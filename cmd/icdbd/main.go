// Command icdbd serves the ICDB component database over the wire
// protocol (internal/wire): the paper's tool/database split as a
// long-lived service. Synthesis tools — or icdbq in client mode —
// connect over TCP, each getting its own CQL session (current width,
// tool-parameter overrides, expander reuse), while snapshot-isolated
// reads keep one client's streamed find from blocking another's writes.
//
// Usage:
//
//	icdbd [-addr 127.0.0.1:7390] [-db catalog] [-save] [-designs dir]
//	      [-open lazy|eager|auto]
//	      [-journal] [-fsync always|off|<duration>] [-compact-at n]
//	      [-secret token] [-maxconns n] [-maxcmds n] [-maxrows n]
//	      [-idle d] [-wtimeout d] [-handshake d] [-grace d] [-v]
//
// With -db the catalog is loaded from the given file (JSON or binary
// snapshot, sniffed); without it the server starts from the builtin
// seeded catalog. -save writes the catalog back (as a binary snapshot)
// on graceful shutdown; it requires -db, and the save is skipped when
// nothing changed since boot. -designs names the only directory
// "expand <file>" commands may read designs from — without it,
// expand-from-file is disabled (the safe default for a network
// service).
//
// -open picks how a binary snapshot catalog is materialized. "lazy"
// (also the "auto" default) decodes only the v4 section directory and
// each table's schema at boot; a table's rows — and, under -journal,
// its share of uncovered journal records — materialize on first touch,
// so a large catalog serves its first query long before it is fully
// decoded. "eager" decodes every section up front (in parallel for v4
// snapshots). JSON catalogs and pre-v4 snapshots are always eager.
// The boot log reports the effective mode and "show server" exposes
// live hydration counters.
//
// -journal makes the catalog crash-safe incrementally persistent
// (relstore.OpenDurable): every mutation is write-ahead logged to
// <db>.wal before it is applied, recovery replays the journal over the
// snapshot (truncating a torn tail), and the journal is folded into
// the snapshot when it crosses -compact-at bytes and again at graceful
// shutdown. It requires -db and replaces -save (durability is
// continuous, not shutdown-time). -fsync picks the journal sync
// policy: "always" (the default; an acknowledged mutation survives any
// crash), "off" (sync only at compaction and shutdown), or a duration
// like "100ms" (sync at most that often; a crash loses at most the
// last interval). A stale .wal next to a catalog that advanced without
// journaling is rejected at boot rather than silently merged — delete
// the journal only if you mean to discard it. Durability state —
// journal size, records since last compaction, fsync policy, last
// recovery outcome — is visible to any client via "show server".
//
// -secret requires every client to present the same shared-secret
// token in its protocol-v2 handshake (icdbq's -secret flag or the
// ICDB_SECRET env var); it defaults to the ICDBD_SECRET environment
// variable so the token can be kept out of process listings. The
// -maxconns/-maxcmds/-maxrows/-idle/-wtimeout/-handshake flags install
// the server limits documented in internal/wire (0 disables one);
// every violation answers a typed Error frame, never a raw TCP reset,
// and the live counters are visible to any client via "show server".
//
// SIGINT or SIGTERM shuts the server down gracefully: in-flight
// commands are aborted with a decodable shutdown Error, handlers get
// -grace to unwind, and then the catalog is saved atomically.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"icdb/internal/icdb"
	"icdb/internal/relstore"
	"icdb/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "icdbd: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error { return runServer(args, nil, nil) }

// runServer is run with test hooks: ready (if non-nil) receives the
// bound listen address once the server is accepting, and closing stop
// (if non-nil) triggers the same graceful shutdown a signal would.
func runServer(args []string, ready func(addr string), stop <-chan struct{}) error {
	fs := flag.NewFlagSet("icdbd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7390", "TCP address to listen on")
	dbPath := fs.String("db", "", "catalog file to load (JSON or snapshot); empty starts from the builtin seed")
	save := fs.Bool("save", false, "save the catalog back to -db (as a binary snapshot) on graceful shutdown")
	journal := fs.Bool("journal", false, "write-ahead journal every mutation to <db>.wal (crash-safe incremental persistence); requires -db, replaces -save")
	openMode := fs.String("open", "auto", "snapshot open mode: lazy, eager, or auto (lazy for binary snapshots and -journal; JSON catalogs are always eager)")
	fsync := fs.String("fsync", "always", "journal sync policy: always, off, or an interval like 100ms")
	compactAt := fs.Int64("compact-at", 4<<20, "journal size in bytes that triggers compaction into the snapshot; <0 disables auto-compaction")
	designs := fs.String("designs", "", "directory expand commands may read design files from; empty disables expand-from-file")
	secret := fs.String("secret", os.Getenv("ICDBD_SECRET"), "shared-secret auth token clients must present (default $ICDBD_SECRET); empty disables auth")
	maxConns := fs.Int("maxconns", 256, "max concurrent connections; 0 = unlimited")
	maxCmds := fs.Int("maxcmds", 0, "max commands per session; 0 = unlimited")
	maxRows := fs.Int("maxrows", 0, "max streamed rows per session; 0 = unlimited")
	idle := fs.Duration("idle", 10*time.Minute, "idle session timeout; 0 = none")
	wtimeout := fs.Duration("wtimeout", 30*time.Second, "per-frame write timeout (unsticks stalled readers); 0 = none")
	handshake := fs.Duration("handshake", 10*time.Second, "handshake deadline (rejects stalled or partial preambles); 0 = none")
	grace := fs.Duration("grace", 5*time.Second, "shutdown grace period for in-flight sessions to unwind")
	verbose := fs.Bool("v", false, "log per-connection lifecycle events")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if *save && *dbPath == "" {
		return fmt.Errorf("-save needs -db to know where to save")
	}
	if *journal && *dbPath == "" {
		return fmt.Errorf("-journal needs -db to know where the catalog lives")
	}
	if *journal && *save {
		return fmt.Errorf("-journal replaces -save (durability is continuous); drop -save")
	}
	policy, interval, err := parseFsync(*fsync)
	if err != nil {
		return err
	}
	mode, err := parseOpenMode(*openMode)
	if err != nil {
		return err
	}

	var store *relstore.Store
	var durable *relstore.Durable
	switch {
	case *journal:
		// Crash-safe path: load snapshot + replay journal, then journal
		// every further mutation. A missing catalog is simply a fresh
		// one — the journal records everything from the first boot on.
		durable, err = relstore.OpenDurable(*dbPath, relstore.DurableOptions{
			Fsync:         policy,
			FsyncInterval: interval,
			CompactAt:     *compactAt,
			Open:          mode,
		})
		if err != nil {
			return err
		}
		defer durable.Close()
		store = durable.Store
		log.Printf("journal %s: recovery %s", durable.Info().JournalPath, durable.Recovery())
	case *dbPath != "":
		if store, err = relstore.LoadWith(*dbPath, relstore.SnapshotOptions{Mode: mode}); err != nil {
			if !errors.Is(err, os.ErrNotExist) {
				return err
			}
			// A missing -db file with -save is a fresh catalog to be
			// created at shutdown; without -save it is a mistake.
			if !*save {
				return fmt.Errorf("catalog %s does not exist (use -save to create it at shutdown)", *dbPath)
			}
			store = relstore.New()
			log.Printf("catalog %s does not exist; starting from the builtin seed", *dbPath)
		}
	default:
		store = relstore.New()
	}
	if *dbPath != "" {
		li := store.LazyInfo()
		bootMode := relstore.OpenEager
		if li.Lazy {
			bootMode = relstore.OpenLazy
		}
		log.Printf("catalog %s opened %s: %d section(s), %d journal record(s) deferred to hydration",
			*dbPath, bootMode, li.Tables, li.DeferredPending)
	}
	db, err := icdb.Open(store)
	if err != nil {
		return err
	}
	// Generation after icdb.Open's bootstrap/seeding is the baseline for
	// the shutdown no-op check: if nothing moved it, -save is skipped.
	baseGen := store.Generation()

	srv := &wire.Server{
		DB:     db,
		Secret: *secret,
		Limits: wire.Limits{
			MaxConns:           *maxConns,
			MaxSessionCommands: *maxCmds,
			MaxSessionRows:     *maxRows,
			IdleTimeout:        *idle,
			WriteTimeout:       *wtimeout,
			HandshakeTimeout:   *handshake,
		},
	}
	if durable != nil {
		srv.Durability = durable.Info
	}
	srv.Hydration = store.LazyInfo
	if *designs != "" {
		srv.ReadFile = designReader(*designs)
	}
	if *verbose {
		srv.Logf = log.Printf
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.Printf("icdbd listening on %s", ln.Addr())

	// Serve until a termination signal (or the test stop hook);
	// Shutdown aborts in-flight commands with a decodable Error frame,
	// waits up to -grace for handlers to unwind, and leaves the store
	// consistent for the save below.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sig)
	if ready != nil {
		ready(ln.Addr().String())
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case s := <-sig:
		log.Printf("received %v, shutting down", s)
		srv.Shutdown(*grace)
		<-done
	case <-stop:
		log.Printf("stop requested, shutting down")
		srv.Shutdown(*grace)
		<-done
	case err := <-done:
		if err != nil {
			return err
		}
	}

	switch {
	case durable != nil:
		// Fold the journal into the snapshot so the next boot opens
		// without a replay, then close (which syncs the tail).
		info := durable.Info()
		if err := durable.Compact(); err != nil {
			return fmt.Errorf("compacting journal: %w", err)
		}
		if err := durable.Close(); err != nil {
			return fmt.Errorf("closing journal: %w", err)
		}
		if *verbose {
			log.Printf("journal: %d append(s), %d sync(s), %d compaction(s), fsync=%s",
				info.Appends, info.Syncs, durable.Info().Compactions, info.Policy)
		}
		log.Printf("catalog compacted to %s", *dbPath)
	case *save:
		// Skip the full-catalog rewrite when no mutation landed since
		// boot — unless the file does not exist yet (fresh catalog).
		_, statErr := os.Stat(*dbPath)
		if store.Generation() == baseGen && statErr == nil {
			log.Printf("catalog unchanged; skipping save to %s", *dbPath)
			break
		}
		if err := store.SaveSnapshot(*dbPath); err != nil {
			return fmt.Errorf("saving catalog: %w", err)
		}
		log.Printf("catalog saved to %s", *dbPath)
	}
	return nil
}

// parseOpenMode maps the -open flag to a snapshot open mode. "auto"
// (the default) asks for lazy open: v4 binary snapshots defer each
// table's decode (and its share of journal replay) to first touch,
// while JSON catalogs and pre-v4 snapshots — which have no section
// directory — fall back to a full eager decode inside relstore, so
// "auto" is safe to request unconditionally.
func parseOpenMode(s string) (relstore.OpenMode, error) {
	switch s {
	case "auto", "lazy":
		return relstore.OpenLazy, nil
	case "eager":
		return relstore.OpenEager, nil
	}
	return 0, fmt.Errorf("-open must be lazy, eager, or auto (got %q)", s)
}

// parseFsync maps the -fsync flag to a journal sync policy: "always",
// "off", or a duration string for interval syncing.
func parseFsync(s string) (relstore.FsyncPolicy, time.Duration, error) {
	switch s {
	case "always":
		return relstore.FsyncAlways, 0, nil
	case "off":
		return relstore.FsyncOff, 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return 0, 0, fmt.Errorf("-fsync must be always, off, or a positive duration (got %q)", s)
	}
	return relstore.FsyncInterval, d, nil
}

// designReader confines "expand <file>" reads to dir: the
// client-supplied path must be a local relative path (no absolute
// paths, no ".." escapes) and resolves inside dir.
func designReader(dir string) func(path string) ([]byte, error) {
	return func(path string) ([]byte, error) {
		if !filepath.IsLocal(path) {
			return nil, fmt.Errorf("design path %q must be relative to the server's designs directory", path)
		}
		return os.ReadFile(filepath.Join(dir, path))
	}
}
