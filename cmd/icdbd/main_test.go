package main

// Daemon lifecycle tests: graceful shutdown (by stop hook and by real
// SIGTERM) saves an atomic snapshot and tells in-flight sessions with
// a decodable Error frame instead of a raw TCP reset; the missing
// -db bootstrap paths behave as documented.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"net"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"icdb/internal/icdb"
	"icdb/internal/relstore"
	"icdb/internal/wire"
)

// startDaemon runs the server in-process with the stop hook wired up,
// returning its bound address, the stop trigger, and the exit channel.
func startDaemon(t *testing.T, args ...string) (string, chan struct{}, chan error) {
	t.Helper()
	ready := make(chan string, 1)
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- runServer(append([]string{"-addr", "127.0.0.1:0"}, args...),
			func(addr string) { ready <- addr }, stop)
	}()
	select {
	case addr := <-ready:
		return addr, stop, done
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not come up")
	}
	panic("unreachable")
}

// rawSession opens a bare protocol-v2 session (no auth) so the test
// can observe individual frames.
func rawSession(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	pre := make([]byte, len(wire.Magic)+4)
	copy(pre, wire.Magic)
	binary.LittleEndian.PutUint32(pre[len(wire.Magic):], wire.Version)
	if _, err := conn.Write(pre); err != nil {
		t.Fatal(err)
	}
	if ft, _, err := wire.ReadFrame(conn); err != nil || ft != wire.FrameHello {
		t.Fatalf("handshake: frame %v err %v", ft, err)
	}
	if err := wire.WriteFrame(conn, wire.FrameHello, nil); err != nil {
		t.Fatal(err)
	}
	if ft, _, err := wire.ReadFrame(conn); err != nil || ft != wire.FrameDone {
		t.Fatalf("auth ack: frame %v err %v", ft, err)
	}
	return conn
}

func implCount(t *testing.T, store *relstore.Store) int {
	t.Helper()
	db, err := icdb.Open(store)
	if err != nil {
		t.Fatal(err)
	}
	impls, err := db.Impls()
	if err != nil {
		t.Fatal(err)
	}
	return len(impls)
}

// TestGracefulShutdownSavesSnapshot: the stop path bootstraps a
// missing -db catalog, tells an idle session CodeShutdown (a decodable
// frame, not a reset), and persists session writes atomically.
func TestGracefulShutdownSavesSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "catalog.icdb")
	addr, stop, done := startDaemon(t, "-db", path, "-save")

	// A client write that must survive the shutdown.
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("generate Counter size=24", nil); err != nil {
		t.Fatal(err)
	}

	idle := rawSession(t, addr)
	defer idle.Close()

	close(stop)
	ft, payload, err := wire.ReadFrame(idle)
	if err != nil || ft != wire.FrameError {
		t.Fatalf("idle session at shutdown: frame %v err %v, want a decodable Error", ft, err)
	}
	if len(payload) == 0 || wire.ErrCode(payload[0]) != wire.CodeShutdown {
		t.Fatalf("idle session Error payload %q, want code %s", payload, wire.CodeShutdown)
	}
	if err := <-done; err != nil {
		t.Fatalf("daemon exit: %v", err)
	}

	saved, err := relstore.Load(path)
	if err != nil {
		t.Fatalf("saved catalog: %v", err)
	}
	seed := implCount(t, relstore.New())
	if got := implCount(t, saved); got != seed+1 {
		t.Fatalf("saved catalog has %d impls, want seed %d + 1 generated", got, seed)
	}
}

// TestSIGTERMGracefulShutdown: a real SIGTERM (not the test hook)
// drives the same graceful path and saves the catalog.
func TestSIGTERMGracefulShutdown(t *testing.T) {
	path := filepath.Join(t.TempDir(), "catalog.icdb")
	_, _, done := startDaemon(t, "-db", path, "-save")

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down on SIGTERM")
	}
	if _, err := relstore.Load(path); err != nil {
		t.Fatalf("catalog not saved on SIGTERM: %v", err)
	}
}

// TestMissingCatalogWithoutSaveErrors: pointing -db at a file that
// does not exist without -save is a configuration mistake, not a
// silent empty catalog.
func TestMissingCatalogWithoutSaveErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nope.icdb")
	err := run([]string{"-db", path})
	if err == nil || !strings.Contains(err.Error(), "does not exist") {
		t.Fatalf("missing catalog without -save: err = %v", err)
	}
}

// TestSecretFromEnv: ICDBD_SECRET installs auth without putting the
// token on the command line; wrong tokens are rejected with CodeAuth.
func TestSecretFromEnv(t *testing.T) {
	t.Setenv("ICDBD_SECRET", "s3cret")
	addr, stop, done := startDaemon(t)
	defer func() {
		close(stop)
		<-done
	}()

	_, err := wire.DialOptions(addr, wire.Options{Secret: "wrong"})
	var re *wire.RemoteError
	if !errors.As(err, &re) || re.Code != wire.CodeAuth {
		t.Fatalf("wrong secret: err = %v, want RemoteError %s", err, wire.CodeAuth)
	}
	c, err := wire.DialOptions(addr, wire.Options{Secret: "s3cret"})
	if err != nil {
		t.Fatalf("right secret: %v", err)
	}
	defer c.Close()
	if n, err := c.Exec("show impls", nil); err != nil || n == 0 {
		t.Fatalf("authenticated exec: n=%d err=%v", n, err)
	}
}

// TestJournalDaemonLifecycle: -journal boots a fresh catalog, journals
// a client write, reports durability over "show server", compacts the
// journal into the snapshot at graceful shutdown, and a second boot
// recovers the write, re-seeds journal-silently, and leaves the
// snapshot byte-identical after its own shutdown.
func TestJournalDaemonLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "catalog.icdb")
	addr, stop, done := startDaemon(t, "-db", path, "-journal")

	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("generate Counter size=24", nil); err != nil {
		t.Fatal(err)
	}
	var info strings.Builder
	if _, err := c.Exec("show server", func(line string) {
		info.WriteString(line + "\n")
	}); err != nil {
		t.Fatal(err)
	}
	c.Close()
	for _, want := range []string{"durability:   journaled, fsync=always", "recovery:     clean (no snapshot"} {
		if !strings.Contains(info.String(), want) {
			t.Errorf("show server output missing %q:\n%s", want, info.String())
		}
	}

	close(stop)
	if err := <-done; err != nil {
		t.Fatalf("daemon exit: %v", err)
	}
	// Shutdown compacted: the snapshot holds everything, the journal is
	// header-only, and the next boot needs no replay.
	saved, err := relstore.Load(path)
	if err != nil {
		t.Fatalf("compacted catalog: %v", err)
	}
	seed := implCount(t, relstore.New())
	if got := implCount(t, saved); got != seed+1 {
		t.Fatalf("compacted catalog has %d impls, want seed %d + 1 generated", got, seed)
	}
	snap1, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Second boot: nothing mutates, so shutdown's compaction is a no-op
	// and the snapshot is untouched — icdb.Open's re-seeding must be
	// journal-silent for this to hold.
	addr, stop, done = startDaemon(t, "-db", path, "-journal")
	c2, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := c2.Exec("show impls", nil); err != nil || n == 0 {
		t.Fatalf("impls after recovery: n=%d err=%v", n, err)
	}
	c2.Close()
	close(stop)
	if err := <-done; err != nil {
		t.Fatalf("second daemon exit: %v", err)
	}
	snap2, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap1, snap2) {
		t.Error("idle boot+shutdown rewrote the snapshot (re-seed not journal-silent or compaction not skipped)")
	}
}

// TestJournalDaemonRecoversTornTail: a daemon booted over a journal
// with a torn final record recovers the clean prefix and reports the
// truncation through "show server".
func TestJournalDaemonRecoversTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "catalog.icdb")
	// Build a journaled catalog directly, then tear the journal's tail.
	d, err := relstore.OpenDurable(path, relstore.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := icdb.Open(d.Store); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	jpath := path + ".wal"
	jdata, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jpath, jdata[:len(jdata)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	addr, stop, done := startDaemon(t, "-db", path, "-journal")
	defer func() {
		close(stop)
		<-done
	}()
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var info strings.Builder
	if _, err := c.Exec("show server", func(line string) {
		info.WriteString(line + "\n")
	}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(info.String(), "recovery:     truncated torn tail at offset") {
		t.Errorf("show server does not report the torn-tail recovery:\n%s", info.String())
	}
	if n, err := c.Exec("show impls", nil); err != nil || n == 0 {
		t.Fatalf("impls after torn-tail recovery: n=%d err=%v", n, err)
	}
}

// TestLazyOpenDaemon: the default -open auto boots a binary snapshot
// catalog lazily — "show server" reports zero hydrated tables until a
// query touches one — while -open eager materializes everything up
// front. Both modes serve identical query results.
func TestLazyOpenDaemon(t *testing.T) {
	path := filepath.Join(t.TempDir(), "catalog.icdb")
	s := relstore.New()
	if _, err := icdb.Open(s); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}

	showServer := func(c *wire.Client) string {
		t.Helper()
		var info strings.Builder
		if _, err := c.Exec("show server", func(line string) {
			info.WriteString(line + "\n")
		}); err != nil {
			t.Fatal(err)
		}
		return info.String()
	}

	addr, stop, done := startDaemon(t, "-db", path, "-save")
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	// Before any query touches a relation, every section is still an
	// undecoded stub: opening the catalog and asking "show server" must
	// not hydrate anything.
	if info := showServer(c); !strings.Contains(info, "open:         lazy, 0/") {
		t.Errorf("lazy boot hydrated early:\n%s", info)
	}
	if n, err := c.Exec("show impls", nil); err != nil || n == 0 {
		t.Fatalf("show impls under lazy open: n=%d err=%v", n, err)
	}
	info := showServer(c)
	if strings.Contains(info, "open:         lazy, 0/") {
		t.Errorf("query did not hydrate its relation:\n%s", info)
	}
	if !strings.Contains(info, "open:         lazy, ") {
		t.Errorf("show server lost the lazy open line:\n%s", info)
	}
	c.Close()
	close(stop)
	if err := <-done; err != nil {
		t.Fatalf("lazy daemon exit: %v", err)
	}

	// -open eager: fully materialized at boot, same answers.
	addr, stop, done = startDaemon(t, "-db", path, "-save", "-open", "eager")
	c, err = wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if info := showServer(c); !strings.Contains(info, "open:         eager (fully materialized)") {
		t.Errorf("eager boot not reported:\n%s", info)
	}
	if n, err := c.Exec("show impls", nil); err != nil || n == 0 {
		t.Fatalf("show impls under eager open: n=%d err=%v", n, err)
	}
	c.Close()
	close(stop)
	if err := <-done; err != nil {
		t.Fatalf("eager daemon exit: %v", err)
	}
}

// TestLazyOpenJournalDaemon: -journal defaults to lazy open too; a
// journaled write from a previous boot is deferred to hydration and
// still visible to the first query that touches its table.
func TestLazyOpenJournalDaemon(t *testing.T) {
	path := filepath.Join(t.TempDir(), "catalog.icdb")
	// First boot: journal a write, then kill without compaction by
	// closing the Durable directly (simulating a crash leaves the WAL
	// uncovered by the snapshot).
	d, err := relstore.OpenDurable(path, relstore.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	db, err := icdb.Open(d.Store)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	// A post-compaction mutation lands only in the journal.
	if _, _, err := db.Generate("gen_cnt", map[string]int{"size": 24}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	addr, stop, done := startDaemon(t, "-db", path, "-journal")
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	var info strings.Builder
	if _, err := c.Exec("show server", func(line string) {
		info.WriteString(line + "\n")
	}); err != nil {
		t.Fatal(err)
	}
	out := info.String()
	if !strings.Contains(out, "open:         lazy, 0/") {
		t.Errorf("journaled lazy boot hydrated early:\n%s", out)
	}
	if !strings.Contains(out, "deferred to hydration") && !strings.Contains(out, "deferred journal record(s) pending") {
		t.Errorf("show server does not report deferred journal records:\n%s", out)
	}
	if n, err := c.Exec("show impls", nil); err != nil || n == 0 {
		t.Fatalf("show impls under lazy journaled open: n=%d err=%v", n, err)
	}
	// Touching implementations hydrated that table and replayed its
	// deferred journal records — records aimed at untouched tables stay
	// pending (per-table deferral, not all-or-nothing).
	info.Reset()
	if _, err := c.Exec("show server", func(line string) {
		info.WriteString(line + "\n")
	}); err != nil {
		t.Fatal(err)
	}
	out = info.String()
	if strings.Contains(out, " 0 replayed") {
		t.Errorf("deferred journal records not replayed at hydration:\n%s", out)
	}
	if !strings.Contains(out, "open:         lazy, ") {
		t.Errorf("show server lost the lazy open line:\n%s", out)
	}
	c.Close()
	close(stop)
	if err := <-done; err != nil {
		t.Fatalf("daemon exit: %v", err)
	}
}

// TestJournalFlagValidation: -journal's flag interactions fail fast
// with actionable errors.
func TestJournalFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-journal"}, "needs -db"},
		{[]string{"-journal", "-db", "x", "-save"}, "replaces -save"},
		{[]string{"-journal", "-db", "x", "-fsync", "sometimes"}, "-fsync must be"},
		{[]string{"-journal", "-db", "x", "-fsync", "-5s"}, "-fsync must be"},
		{[]string{"-db", "x", "-open", "sideways"}, "-open must be"},
	} {
		err := run(tc.args)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v): err = %v, want %q", tc.args, err, tc.want)
		}
	}
}

// TestSaveSkipsUnchangedCatalog: a -save daemon that saw no mutations
// leaves the catalog file untouched instead of rewriting it.
func TestSaveSkipsUnchangedCatalog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "catalog.icdb")
	// First run creates the catalog (fresh file: always saved).
	_, stop, done := startDaemon(t, "-db", path, "-save")
	close(stop)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	old := time.Unix(1000000000, 0)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}

	// Idle run: read-only traffic only; shutdown must skip the save.
	addr, stop, done := startDaemon(t, "-db", path, "-save")
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("show impls", nil); err != nil {
		t.Fatal(err)
	}
	c.Close()
	close(stop)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if !st.ModTime().Equal(old) {
		t.Error("idle -save run rewrote an unchanged catalog")
	}

	// A mutating run still saves.
	addr, stop, done = startDaemon(t, "-db", path, "-save")
	c, err = wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("generate Counter size=48", nil); err != nil {
		t.Fatal(err)
	}
	c.Close()
	close(stop)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if st, err = os.Stat(path); err != nil || st.ModTime().Equal(old) {
		t.Errorf("mutating -save run did not rewrite the catalog (stat %v, err %v)", st, err)
	}
}
