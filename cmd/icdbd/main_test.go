package main

// Daemon lifecycle tests: graceful shutdown (by stop hook and by real
// SIGTERM) saves an atomic snapshot and tells in-flight sessions with
// a decodable Error frame instead of a raw TCP reset; the missing
// -db bootstrap paths behave as documented.

import (
	"encoding/binary"
	"errors"
	"net"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"icdb/internal/icdb"
	"icdb/internal/relstore"
	"icdb/internal/wire"
)

// startDaemon runs the server in-process with the stop hook wired up,
// returning its bound address, the stop trigger, and the exit channel.
func startDaemon(t *testing.T, args ...string) (string, chan struct{}, chan error) {
	t.Helper()
	ready := make(chan string, 1)
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- runServer(append([]string{"-addr", "127.0.0.1:0"}, args...),
			func(addr string) { ready <- addr }, stop)
	}()
	select {
	case addr := <-ready:
		return addr, stop, done
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not come up")
	}
	panic("unreachable")
}

// rawSession opens a bare protocol-v2 session (no auth) so the test
// can observe individual frames.
func rawSession(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	pre := make([]byte, len(wire.Magic)+4)
	copy(pre, wire.Magic)
	binary.LittleEndian.PutUint32(pre[len(wire.Magic):], wire.Version)
	if _, err := conn.Write(pre); err != nil {
		t.Fatal(err)
	}
	if ft, _, err := wire.ReadFrame(conn); err != nil || ft != wire.FrameHello {
		t.Fatalf("handshake: frame %v err %v", ft, err)
	}
	if err := wire.WriteFrame(conn, wire.FrameHello, nil); err != nil {
		t.Fatal(err)
	}
	if ft, _, err := wire.ReadFrame(conn); err != nil || ft != wire.FrameDone {
		t.Fatalf("auth ack: frame %v err %v", ft, err)
	}
	return conn
}

func implCount(t *testing.T, store *relstore.Store) int {
	t.Helper()
	db, err := icdb.Open(store)
	if err != nil {
		t.Fatal(err)
	}
	impls, err := db.Impls()
	if err != nil {
		t.Fatal(err)
	}
	return len(impls)
}

// TestGracefulShutdownSavesSnapshot: the stop path bootstraps a
// missing -db catalog, tells an idle session CodeShutdown (a decodable
// frame, not a reset), and persists session writes atomically.
func TestGracefulShutdownSavesSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "catalog.icdb")
	addr, stop, done := startDaemon(t, "-db", path, "-save")

	// A client write that must survive the shutdown.
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("generate Counter size=24", nil); err != nil {
		t.Fatal(err)
	}

	idle := rawSession(t, addr)
	defer idle.Close()

	close(stop)
	ft, payload, err := wire.ReadFrame(idle)
	if err != nil || ft != wire.FrameError {
		t.Fatalf("idle session at shutdown: frame %v err %v, want a decodable Error", ft, err)
	}
	if len(payload) == 0 || wire.ErrCode(payload[0]) != wire.CodeShutdown {
		t.Fatalf("idle session Error payload %q, want code %s", payload, wire.CodeShutdown)
	}
	if err := <-done; err != nil {
		t.Fatalf("daemon exit: %v", err)
	}

	saved, err := relstore.Load(path)
	if err != nil {
		t.Fatalf("saved catalog: %v", err)
	}
	seed := implCount(t, relstore.New())
	if got := implCount(t, saved); got != seed+1 {
		t.Fatalf("saved catalog has %d impls, want seed %d + 1 generated", got, seed)
	}
}

// TestSIGTERMGracefulShutdown: a real SIGTERM (not the test hook)
// drives the same graceful path and saves the catalog.
func TestSIGTERMGracefulShutdown(t *testing.T) {
	path := filepath.Join(t.TempDir(), "catalog.icdb")
	_, _, done := startDaemon(t, "-db", path, "-save")

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down on SIGTERM")
	}
	if _, err := relstore.Load(path); err != nil {
		t.Fatalf("catalog not saved on SIGTERM: %v", err)
	}
}

// TestMissingCatalogWithoutSaveErrors: pointing -db at a file that
// does not exist without -save is a configuration mistake, not a
// silent empty catalog.
func TestMissingCatalogWithoutSaveErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nope.icdb")
	err := run([]string{"-db", path})
	if err == nil || !strings.Contains(err.Error(), "does not exist") {
		t.Fatalf("missing catalog without -save: err = %v", err)
	}
}

// TestSecretFromEnv: ICDBD_SECRET installs auth without putting the
// token on the command line; wrong tokens are rejected with CodeAuth.
func TestSecretFromEnv(t *testing.T) {
	t.Setenv("ICDBD_SECRET", "s3cret")
	addr, stop, done := startDaemon(t)
	defer func() {
		close(stop)
		<-done
	}()

	_, err := wire.DialOptions(addr, wire.Options{Secret: "wrong"})
	var re *wire.RemoteError
	if !errors.As(err, &re) || re.Code != wire.CodeAuth {
		t.Fatalf("wrong secret: err = %v, want RemoteError %s", err, wire.CodeAuth)
	}
	c, err := wire.DialOptions(addr, wire.Options{Secret: "s3cret"})
	if err != nil {
		t.Fatalf("right secret: %v", err)
	}
	defer c.Close()
	if n, err := c.Exec("show impls", nil); err != nil || n == 0 {
		t.Fatalf("authenticated exec: n=%d err=%v", n, err)
	}
}
