// Package benchgen generates deterministic synthetic ICDB catalogs at
// benchmark scale (DB4HLS-style component databases reach 100k+ entries)
// and provides reference implementations of the pre-index full-scan read
// paths, so benchmarks can compare the planner/index engine against the
// behavior it replaced using the same public API surface.
//
// Everything here is deterministic: implementation i is always the same
// implementation, with attributes derived from small fixed mixers, so
// benchmark runs are comparable across machines and commits.
package benchgen

import (
	"fmt"
	"sort"

	"icdb/internal/genus"
	"icdb/internal/icdb"
	"icdb/internal/relstore"
)

// srcTemplate is the IIF source every synthetic implementation carries: a
// minimal parseable single-stage network with the conventional "size"
// width parameter. Registration parses it, so catalog population also
// exercises the IIF front-end at scale.
const srcTemplate = `
NAME: %s;
PARAMETER: size;
VARIABLE: i;
INORDER: A[size], B[size];
OUTORDER: O[size];
{
  #for(i = 0; i < size; i++)
    O[i] = A[i] * B[i];
}
`

// NameOf returns the name of the i-th synthetic implementation.
func NameOf(i int) string { return fmt.Sprintf("gen_%06d", i) }

// ImplAt returns the i-th synthetic implementation. Component types
// rotate through the full GENUS catalog; function sets are growing
// prefixes of each type's function set; width ranges, stages, area, and
// delay are spread by fixed mixers so constraint predicates select
// non-trivial subsets.
func ImplAt(i int) icdb.Impl {
	cts := genus.AllComponentTypes()
	ct := cts[i%len(cts)]
	fns := genus.Functions(ct)
	name := NameOf(i)
	return icdb.Impl{
		Name:      name,
		Component: ct,
		Style:     "synthetic",
		Functions: fns[:1+i%len(fns)],
		WidthMin:  1 + i%4,
		WidthMax:  8 + i%120,
		Stages:    i % 4,
		Area:      float64(1 + (i*13)%97),
		Delay:     float64(1 + (i*7)%53),
		Params:    []string{"size"},
		Source:    fmt.Sprintf(srcTemplate, name),
	}
}

// Populate registers n synthetic implementations into db through the
// validating RegisterImpl path (IIF parse included).
func Populate(db *icdb.DB, n int) error {
	for i := 0; i < n; i++ {
		if err := db.RegisterImpl(ImplAt(i)); err != nil {
			return fmt.Errorf("benchgen: impl %d: %w", i, err)
		}
	}
	return nil
}

// PopulateEstimators registers width-scaling estimator expressions for
// the first n synthetic implementations ("area * width" — the per-bit
// estimate times the evaluation point — and a constant "delay"), so
// benchmarks can measure the width-aware query path against a catalog
// where every candidate pays an estimator evaluation.
func PopulateEstimators(db *icdb.DB, n int) error {
	for i := 0; i < n; i++ {
		name := NameOf(i)
		if err := db.RegisterEstimator(name, "area", "area * width"); err != nil {
			return fmt.Errorf("benchgen: estimator %d: %w", i, err)
		}
		if err := db.RegisterEstimator(name, "delay", "delay"); err != nil {
			return fmt.Errorf("benchgen: estimator %d: %w", i, err)
		}
	}
	return nil
}

// NewDB opens a fresh in-memory database holding the builtin library
// plus n synthetic implementations.
func NewDB(n int) (*icdb.DB, error) {
	db, err := icdb.Open(relstore.New())
	if err != nil {
		return nil, err
	}
	if err := Populate(db, n); err != nil {
		return nil, err
	}
	return db, nil
}

// FullScanQueryByFunction reproduces the pre-index query path exactly:
// select and decode every implementation row, filter by function
// membership and constraints per row, then sort the survivors. It is the
// "before" side of the query benchmarks.
func FullScanQueryByFunction(db *icdb.DB, fn genus.Function, cs ...icdb.Constraint) ([]icdb.Candidate, error) {
	impls, err := db.Impls()
	if err != nil {
		return nil, err
	}
	wa, wd := 1.0, 1.0
	if v, ok := db.ToolParam("icdb", "area_weight"); ok {
		wa = v
	}
	if v, ok := db.ToolParam("icdb", "delay_weight"); ok {
		wd = v
	}
	var out []icdb.Candidate
	for _, im := range impls {
		has := make(map[genus.Function]bool, len(im.Functions))
		for _, f := range im.Functions {
			has[f] = true
		}
		if !has[fn] {
			continue
		}
		ok := true
		for _, c := range cs {
			pass, err := c.Accept(im.Attrs())
			if err != nil {
				return nil, err
			}
			if !pass {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		out = append(out, icdb.Candidate{Impl: im, Area: im.Area, Delay: im.Delay, Cost: im.Area*wa + im.Delay*wd})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Cost != out[j].Cost {
			return out[i].Cost < out[j].Cost
		}
		return out[i].Impl.Name < out[j].Impl.Name
	})
	return out, nil
}

// FullScanImplRow reproduces the pre-index lookup path: a predicate scan
// of the implementations relation for one name (decoding the row is
// negligible next to the scan, so the reference stops at the raw row).
func FullScanImplRow(db *icdb.DB, name string) (relstore.Row, error) {
	return db.Store().SelectOne(icdb.TableImplementations,
		relstore.Func(func(r relstore.Row) bool { return r["name"] == name }))
}

// StreamedQueryByFunction materializes the streaming query path into the
// ranked shape QueryByFunction returns, so tests and the bench harness
// can cross-validate the two result paths candidate for candidate. (Real
// streaming consumers fold or filter in the visitor instead; collecting
// defeats the point outside of validation.)
func StreamedQueryByFunction(db *icdb.DB, fn genus.Function, cs ...icdb.Constraint) ([]icdb.Candidate, error) {
	var out []icdb.Candidate
	err := db.QueryByFunctionScan(fn, func(c icdb.Candidate) bool {
		c.Impl = c.Impl.Clone() // the streamed Impl must not be retained as-is
		out = append(out, c)
		return true
	}, cs...)
	if err != nil {
		return nil, err
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Cost != out[j].Cost {
			return out[i].Cost < out[j].Cost
		}
		return out[i].Impl.Name < out[j].Impl.Name
	})
	return out, nil
}
