// catalog.go grows benchgen to open-latency scale. The open benchmarks
// need million-row snapshot files, which the RegisterImpl path cannot
// build in reasonable time (it parses every implementation's IIF
// source), and which are too expensive to regenerate on every bench
// run. So this file provides raw-row population — upserting
// relation-shaped rows straight into the store, skipping per-row
// validation the synthetic rows satisfy by construction — plus an
// on-disk cache of generated snapshot files keyed by catalog spec
// (table mix, size, seed, format version), built once per machine and
// reused by every later run.
package benchgen

import (
	"fmt"
	"os"
	"path/filepath"

	"icdb/internal/genus"
	"icdb/internal/icdb"
	"icdb/internal/relstore"
)

// RawImplRow returns implementation i as a raw implementations-relation
// row, shaped exactly as RegisterImpl would store ImplAt(i) except for
// an empty IIF source: at catalog scale the source text would dominate
// snapshot size (and its parse the build time) without changing what
// the open and query paths measure.
func RawImplRow(i int) relstore.Row {
	im := ImplAt(i)
	return relstore.Row{
		"name":      im.Name,
		"component": string(im.Component),
		"style":     im.Style,
		"functions": genus.FunctionSetKey(im.Functions),
		"width_min": im.WidthMin,
		"width_max": im.WidthMax,
		"stages":    im.Stages,
		"area":      im.Area,
		"delay":     im.Delay,
		"params":    "size",
		"source":    "",
	}
}

// PopulateRaw upserts n synthetic implementation rows straight into the
// store, bypassing RegisterImpl's per-row IIF parse. The rows decode
// into the same implementations ImplAt describes (minus source), so the
// query benchmarks' lookups by NameOf(i) keep working.
func PopulateRaw(s *relstore.Store, n int) error {
	for i := 0; i < n; i++ {
		if err := s.Upsert(icdb.TableImplementations, RawImplRow(i)); err != nil {
			return fmt.Errorf("benchgen: raw impl %d: %w", i, err)
		}
	}
	return nil
}

// ExplorationRowAt returns the i-th synthetic exploration row for seed:
// a recorded design point whose bindings string makes the
// (generator, bindings) key unique per i, clustered under the first
// 1024 synthetic implementation names so per-generator posting lists
// hold non-trivial point clouds.
func ExplorationRowAt(seed, i int) relstore.Row {
	cts := genus.AllComponentTypes()
	j := i + seed*7919
	return relstore.Row{
		"generator": NameOf(i % 1024),
		"bindings":  fmt.Sprintf("size=%d", i),
		"component": string(cts[j%len(cts)]),
		"width":     1 + j%128,
		"area":      float64(1 + (j*29)%9973),
		"delay":     float64(1 + (j*17)%499),
	}
}

// PopulateExplorations upserts n synthetic exploration rows for seed.
func PopulateExplorations(s *relstore.Store, seed, n int) error {
	for i := 0; i < n; i++ {
		if err := s.Upsert(icdb.TableExplorations, ExplorationRowAt(seed, i)); err != nil {
			return fmt.Errorf("benchgen: exploration %d: %w", i, err)
		}
	}
	return nil
}

// PopulateRawEstimators upserts the same estimator pair per
// implementation that PopulateEstimators registers ("area * width" and
// a constant "delay"), without the per-expression parse validation the
// fixed expressions cannot fail.
func PopulateRawEstimators(s *relstore.Store, n int) error {
	for i := 0; i < n; i++ {
		name := NameOf(i)
		if err := s.Upsert(icdb.TableEstimators, relstore.Row{"impl": name, "attr": "area", "expr": "area * width"}); err != nil {
			return fmt.Errorf("benchgen: raw estimator %d: %w", i, err)
		}
		if err := s.Upsert(icdb.TableEstimators, relstore.Row{"impl": name, "attr": "delay", "expr": "delay"}); err != nil {
			return fmt.Errorf("benchgen: raw estimator %d: %w", i, err)
		}
	}
	return nil
}

// CatalogSpec identifies one synthetic catalog snapshot in the on-disk
// cache. Generation is fully deterministic in the spec, so equal specs
// name interchangeable files.
type CatalogSpec struct {
	Impls      int  // raw implementation rows
	Expls      int  // exploration rows
	Estimators bool // estimator pair per implementation
	Seed       int  // perturbs the exploration attribute mixers
	Version    int  // snapshot format version: 3 or 4
}

// CacheDir returns the stable per-machine location of the benchgen
// catalog cache. Generating the million-row catalogs dominates the
// open-latency scenario's wall time, so cached files deliberately
// outlive the bench run's own temp directory.
func CacheDir() string { return filepath.Join(os.TempDir(), "icdb-benchgen-cache") }

// CachedCatalog returns the path of the snapshot file holding spec's
// catalog under dir, building it on first use. SaveSnapshot writes
// atomically, so a crashed build never leaves a half-written file
// behind the cache key.
func CachedCatalog(dir string, spec CatalogSpec) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("catalog-i%d-x%d-e%t-s%d-v%d.snap",
		spec.Impls, spec.Expls, spec.Estimators, spec.Seed, spec.Version))
	if _, err := os.Stat(path); err == nil {
		return path, nil
	}
	store, err := BuildCatalog(spec)
	if err != nil {
		return "", err
	}
	if err := store.SaveSnapshotVersion(path, spec.Version); err != nil {
		return "", err
	}
	return path, nil
}

// BuildCatalog materializes spec's catalog in memory: the ICDB schemas
// and builtin library, then the spec'd raw implementation, exploration,
// and estimator rows.
func BuildCatalog(spec CatalogSpec) (*relstore.Store, error) {
	store := relstore.New()
	if _, err := icdb.Open(store); err != nil {
		return nil, err
	}
	if err := PopulateRaw(store, spec.Impls); err != nil {
		return nil, err
	}
	if err := PopulateExplorations(store, spec.Seed, spec.Expls); err != nil {
		return nil, err
	}
	if spec.Estimators {
		if err := PopulateRawEstimators(store, spec.Impls); err != nil {
			return nil, err
		}
	}
	return store, nil
}
