package benchgen

import (
	"testing"

	"icdb/internal/genus"
	"icdb/internal/icdb"
)

// TestIndexedQueryMatchesFullScanReference cross-validates the two query
// engines: on a synthetic catalog, the indexed path must return exactly
// the candidates (and order) of the pre-index full-scan reference, for a
// spread of functions and constraints.
func TestIndexedQueryMatchesFullScanReference(t *testing.T) {
	db, err := NewDB(300)
	if err != nil {
		t.Fatal(err)
	}
	constraints := [][]icdb.Constraint{
		nil,
		{icdb.MaxArea(40)},
		{icdb.ForWidth(16)},
		{icdb.MustWhere("area + delay < 60 && stages >= 1")},
	}
	for _, fn := range []genus.Function{genus.FuncADD, genus.FuncSTORAGE, genus.FuncAND, genus.FuncMuxSCL} {
		for _, cs := range constraints {
			want, err := FullScanQueryByFunction(db, fn, cs...)
			if err != nil {
				t.Fatal(err)
			}
			got, err := db.QueryByFunction(fn, cs...)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s %v: indexed %d candidates, full scan %d", fn, cs, len(got), len(want))
			}
			for i := range got {
				if got[i].Impl.Name != want[i].Impl.Name || got[i].Cost != want[i].Cost {
					t.Fatalf("%s %v: [%d] indexed %s/%g, full scan %s/%g",
						fn, cs, i, got[i].Impl.Name, got[i].Cost, want[i].Impl.Name, want[i].Cost)
				}
			}
		}
	}
}

// TestDeterminism: implementation i is identical across calls, and the
// reference lookup finds it.
func TestDeterminism(t *testing.T) {
	a, b := ImplAt(17), ImplAt(17)
	if a.Name != b.Name || a.Area != b.Area || a.Delay != b.Delay || len(a.Functions) != len(b.Functions) {
		t.Fatalf("ImplAt not deterministic: %+v vs %+v", a, b)
	}
	db, err := NewDB(50)
	if err != nil {
		t.Fatal(err)
	}
	row, err := FullScanImplRow(db, NameOf(17))
	if err != nil {
		t.Fatal(err)
	}
	if row["component"] != string(a.Component) {
		t.Errorf("row component = %v, want %v", row["component"], a.Component)
	}
	im, err := db.ImplByName(NameOf(17))
	if err != nil || im.Area != a.Area {
		t.Errorf("ImplByName = %+v (%v)", im, err)
	}
}
