package core
