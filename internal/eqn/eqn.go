// Package eqn defines the flat (non-parameterized) equation network that
// the IIF expander produces and the logic synthesis pipeline consumes.
//
// A Network is a list of single-assignment equations over scalar signals.
// Signal names carry their indices textually ("Q[3]"). Besides the boolean
// operators, nodes represent the IIF hardware extensions: D flip-flops and
// latches with asynchronous set/reset, tri-state buffers, wire-or, delay
// elements, buffers, and schmitt triggers.
package eqn

import (
	"fmt"
	"sort"
	"strings"
)

// Node is an equation right-hand side.
type Node interface{ nodeTag() }

// Var references another signal by name.
type Var struct{ Name string }

// Const is the constant 0 or 1.
type Const struct{ V bool }

// Not is boolean negation.
type Not struct{ X Node }

// Buf is an explicit buffer (~b).
type Buf struct{ X Node }

// Schmitt is a schmitt trigger (~s).
type Schmitt struct{ X Node }

// And is n-ary conjunction.
type And struct{ Xs []Node }

// Or is n-ary disjunction.
type Or struct{ Xs []Node }

// Xor is exclusive-or ((+)).
type Xor struct{ X, Y Node }

// Xnor is exclusive-nor ((.)).
type Xnor struct{ X, Y Node }

// Tristate is a tri-state buffer (~t): output follows X when Ctrl is 1,
// else high-impedance.
type Tristate struct{ X, Ctrl Node }

// WireOr is an n-ary wired-or (~w).
type WireOr struct{ Xs []Node }

// DelayEl is a pure delay element (~d) of NS nanoseconds.
type DelayEl struct {
	X  Node
	NS float64
}

// EdgeKind is the clocking discipline of a sequential element.
type EdgeKind int

// Clocking kinds: edge-triggered flip-flops (~r, ~f) and level-sensitive
// latches (~h, ~l).
const (
	Rise EdgeKind = iota
	Fall
	LevelHigh
	LevelLow
)

func (e EdgeKind) String() string {
	switch e {
	case Rise:
		return "~r"
	case Fall:
		return "~f"
	case LevelHigh:
		return "~h"
	case LevelLow:
		return "~l"
	}
	return "?"
}

// AsyncRule forces the element output to Value whenever Cond is true,
// independent of the clock ("~a (value/cond, ...)").
type AsyncRule struct {
	Value bool
	Cond  Node
}

// FF is a D flip-flop or latch: output takes D at the clock event given by
// Edge on Clock, overridden by any matching Async rule.
type FF struct {
	D     Node
	Edge  EdgeKind
	Clock Node
	Async []AsyncRule
}

func (Var) nodeTag()      {}
func (Const) nodeTag()    {}
func (Not) nodeTag()      {}
func (Buf) nodeTag()      {}
func (Schmitt) nodeTag()  {}
func (And) nodeTag()      {}
func (Or) nodeTag()       {}
func (Xor) nodeTag()      {}
func (Xnor) nodeTag()     {}
func (Tristate) nodeTag() {}
func (WireOr) nodeTag()   {}
func (DelayEl) nodeTag()  {}
func (FF) nodeTag()       {}

// Equation defines signal LHS by expression RHS.
type Equation struct {
	LHS string
	RHS Node
}

// Network is a flat design: declared I/O plus a list of equations in
// definition order. Each signal is defined at most once.
type Network struct {
	Name      string
	Inputs    []string
	Outputs   []string
	Internals []string
	Eqns      []Equation

	byLHS map[string]int
}

// NewNetwork creates an empty network with the given name.
func NewNetwork(name string) *Network {
	return &Network{Name: name, byLHS: make(map[string]int)}
}

// AddEquation appends an equation; it fails if lhs is already defined or
// is a declared input.
func (n *Network) AddEquation(lhs string, rhs Node) error {
	if n.byLHS == nil {
		n.reindex()
	}
	if _, dup := n.byLHS[lhs]; dup {
		return fmt.Errorf("eqn: signal %q defined twice", lhs)
	}
	for _, in := range n.Inputs {
		if in == lhs {
			return fmt.Errorf("eqn: input signal %q cannot be assigned", lhs)
		}
	}
	n.byLHS[lhs] = len(n.Eqns)
	n.Eqns = append(n.Eqns, Equation{LHS: lhs, RHS: rhs})
	return nil
}

func (n *Network) reindex() {
	n.byLHS = make(map[string]int, len(n.Eqns))
	for i, e := range n.Eqns {
		n.byLHS[e.LHS] = i
	}
}

// Def returns the defining node of signal name, or nil if name is an input
// or undefined.
func (n *Network) Def(name string) Node {
	if n.byLHS == nil {
		n.reindex()
	}
	if i, ok := n.byLHS[name]; ok {
		return n.Eqns[i].RHS
	}
	return nil
}

// ReplaceDef replaces the defining equation of name.
func (n *Network) ReplaceDef(name string, rhs Node) error {
	if n.byLHS == nil {
		n.reindex()
	}
	i, ok := n.byLHS[name]
	if !ok {
		return fmt.Errorf("eqn: signal %q not defined", name)
	}
	n.Eqns[i].RHS = rhs
	return nil
}

// IsInput reports whether name is a declared input.
func (n *Network) IsInput(name string) bool {
	for _, in := range n.Inputs {
		if in == name {
			return true
		}
	}
	return false
}

// IsOutput reports whether name is a declared output.
func (n *Network) IsOutput(name string) bool {
	for _, o := range n.Outputs {
		if o == name {
			return true
		}
	}
	return false
}

// Support returns the signal names referenced by node x, sorted.
func Support(x Node) []string {
	set := make(map[string]bool)
	collectSupport(x, set)
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func collectSupport(x Node, set map[string]bool) {
	switch v := x.(type) {
	case Var:
		set[v.Name] = true
	case Const:
	case Not:
		collectSupport(v.X, set)
	case Buf:
		collectSupport(v.X, set)
	case Schmitt:
		collectSupport(v.X, set)
	case And:
		for _, c := range v.Xs {
			collectSupport(c, set)
		}
	case Or:
		for _, c := range v.Xs {
			collectSupport(c, set)
		}
	case Xor:
		collectSupport(v.X, set)
		collectSupport(v.Y, set)
	case Xnor:
		collectSupport(v.X, set)
		collectSupport(v.Y, set)
	case Tristate:
		collectSupport(v.X, set)
		collectSupport(v.Ctrl, set)
	case WireOr:
		for _, c := range v.Xs {
			collectSupport(c, set)
		}
	case DelayEl:
		collectSupport(v.X, set)
	case FF:
		collectSupport(v.D, set)
		collectSupport(v.Clock, set)
		for _, r := range v.Async {
			collectSupport(r.Cond, set)
		}
	}
}

// Validate checks network well-formedness: every referenced signal is an
// input or has a defining equation, and every declared output is defined.
func (n *Network) Validate() error {
	defined := make(map[string]bool)
	for _, in := range n.Inputs {
		defined[in] = true
	}
	for _, e := range n.Eqns {
		defined[e.LHS] = true
	}
	for _, e := range n.Eqns {
		for _, s := range Support(e.RHS) {
			if !defined[s] {
				return fmt.Errorf("eqn: %s: undefined signal %q", e.LHS, s)
			}
		}
	}
	for _, o := range n.Outputs {
		if !defined[o] {
			return fmt.Errorf("eqn: output %q has no defining equation", o)
		}
	}
	return nil
}

// IsSequential reports whether node x contains a flip-flop, latch, or
// other non-combinational element at any depth.
func IsSequential(x Node) bool {
	switch v := x.(type) {
	case FF, DelayEl:
		return true
	case Not:
		return IsSequential(v.X)
	case Buf:
		return IsSequential(v.X)
	case Schmitt:
		return IsSequential(v.X)
	case And:
		for _, c := range v.Xs {
			if IsSequential(c) {
				return true
			}
		}
	case Or:
		for _, c := range v.Xs {
			if IsSequential(c) {
				return true
			}
		}
	case Xor:
		return IsSequential(v.X) || IsSequential(v.Y)
	case Xnor:
		return IsSequential(v.X) || IsSequential(v.Y)
	case Tristate:
		return IsSequential(v.X) || IsSequential(v.Ctrl)
	case WireOr:
		for _, c := range v.Xs {
			if IsSequential(c) {
				return true
			}
		}
	}
	return false
}

// String renders the node in IIF surface syntax with XOR printed as "!="
// per the MILO flat-format convention shown in Appendix A.
func String(x Node) string {
	switch v := x.(type) {
	case Var:
		return v.Name
	case Const:
		if v.V {
			return "1"
		}
		return "0"
	case Not:
		return "!" + parenString(v.X)
	case Buf:
		return "~b " + parenString(v.X)
	case Schmitt:
		return "~s " + parenString(v.X)
	case And:
		return joinNodes(v.Xs, "*")
	case Or:
		return joinNodes(v.Xs, "+")
	case Xor:
		return parenString(v.X) + "!=" + parenString(v.Y)
	case Xnor:
		return parenString(v.X) + "==" + parenString(v.Y)
	case Tristate:
		return parenString(v.X) + " ~t " + parenString(v.Ctrl)
	case WireOr:
		return joinNodes(v.Xs, " ~w ")
	case DelayEl:
		return parenString(v.X) + fmt.Sprintf(" ~d %g", v.NS)
	case FF:
		s := "(" + String(v.D) + ") @(" + v.Edge.String() + " " + String(v.Clock) + ")"
		if len(v.Async) > 0 {
			var items []string
			for _, r := range v.Async {
				val := "0"
				if r.Value {
					val = "1"
				}
				items = append(items, val+"/("+String(r.Cond)+")")
			}
			s += " ~a(" + strings.Join(items, ",") + ")"
		}
		return s
	}
	return "?"
}

func parenString(x Node) string {
	switch x.(type) {
	case Var, Const, Not:
		return String(x)
	}
	return "(" + String(x) + ")"
}

func joinNodes(xs []Node, sep string) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = parenString(x)
	}
	return strings.Join(parts, sep)
}

// Format renders the whole network in the flat MILO input format of
// Appendix A §4.2.
func (n *Network) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "NAME=%s;\n", n.Name)
	fmt.Fprintf(&b, "INORDER=%s;\n", strings.Join(n.Inputs, " "))
	fmt.Fprintf(&b, "OUTORDER=%s;\n", strings.Join(n.Outputs, " "))
	for _, e := range n.Eqns {
		fmt.Fprintf(&b, "%s=%s;\n", e.LHS, String(e.RHS))
	}
	return b.String()
}

// Clone deep-copies the network.
func (n *Network) Clone() *Network {
	c := NewNetwork(n.Name)
	c.Inputs = append([]string(nil), n.Inputs...)
	c.Outputs = append([]string(nil), n.Outputs...)
	c.Internals = append([]string(nil), n.Internals...)
	for _, e := range n.Eqns {
		c.byLHS[e.LHS] = len(c.Eqns)
		c.Eqns = append(c.Eqns, Equation{LHS: e.LHS, RHS: CloneNode(e.RHS)})
	}
	return c
}

// CloneNode deep-copies a node.
func CloneNode(x Node) Node {
	return RenameNode(x, func(name string) string { return name })
}

// RenameNode deep-copies node x, applying rename to every signal
// reference. This is the single traversal both cloning and the
// expander's instance-prefix splicing use, so new node kinds only need
// to be handled here.
func RenameNode(x Node, rename func(string) string) Node {
	switch v := x.(type) {
	case Var:
		return Var{Name: rename(v.Name)}
	case Const:
		return v
	case Not:
		return Not{X: RenameNode(v.X, rename)}
	case Buf:
		return Buf{X: RenameNode(v.X, rename)}
	case Schmitt:
		return Schmitt{X: RenameNode(v.X, rename)}
	case And:
		return And{Xs: renameNodes(v.Xs, rename)}
	case Or:
		return Or{Xs: renameNodes(v.Xs, rename)}
	case Xor:
		return Xor{X: RenameNode(v.X, rename), Y: RenameNode(v.Y, rename)}
	case Xnor:
		return Xnor{X: RenameNode(v.X, rename), Y: RenameNode(v.Y, rename)}
	case Tristate:
		return Tristate{X: RenameNode(v.X, rename), Ctrl: RenameNode(v.Ctrl, rename)}
	case WireOr:
		return WireOr{Xs: renameNodes(v.Xs, rename)}
	case DelayEl:
		return DelayEl{X: RenameNode(v.X, rename), NS: v.NS}
	case FF:
		ff := FF{D: RenameNode(v.D, rename), Edge: v.Edge, Clock: RenameNode(v.Clock, rename)}
		for _, r := range v.Async {
			ff.Async = append(ff.Async, AsyncRule{Value: r.Value, Cond: RenameNode(r.Cond, rename)})
		}
		return ff
	}
	return x
}

func renameNodes(xs []Node, rename func(string) string) []Node {
	out := make([]Node, len(xs))
	for i, x := range xs {
		out[i] = RenameNode(x, rename)
	}
	return out
}

// EvalComb evaluates a combinational node under the given input values.
// It fails on sequential nodes or unknown signals.
func EvalComb(x Node, env map[string]bool) (bool, error) {
	switch v := x.(type) {
	case Var:
		b, ok := env[v.Name]
		if !ok {
			return false, fmt.Errorf("eqn: eval: unknown signal %q", v.Name)
		}
		return b, nil
	case Const:
		return v.V, nil
	case Not:
		b, err := EvalComb(v.X, env)
		return !b, err
	case Buf:
		return EvalComb(v.X, env)
	case Schmitt:
		return EvalComb(v.X, env)
	case And:
		for _, c := range v.Xs {
			b, err := EvalComb(c, env)
			if err != nil {
				return false, err
			}
			if !b {
				return false, nil
			}
		}
		return true, nil
	case Or:
		for _, c := range v.Xs {
			b, err := EvalComb(c, env)
			if err != nil {
				return false, err
			}
			if b {
				return true, nil
			}
		}
		return false, nil
	case Xor:
		a, err := EvalComb(v.X, env)
		if err != nil {
			return false, err
		}
		b, err := EvalComb(v.Y, env)
		return a != b, err
	case Xnor:
		a, err := EvalComb(v.X, env)
		if err != nil {
			return false, err
		}
		b, err := EvalComb(v.Y, env)
		return a == b, err
	}
	return false, fmt.Errorf("eqn: eval: non-combinational node %T", x)
}

// TopoOrder returns the equations in dependency order (definitions before
// uses), treating FF and DelayEl boundaries as cuts (their outputs are
// state, not combinational dependencies). It fails on a purely
// combinational cycle.
func (n *Network) TopoOrder() ([]Equation, error) {
	if n.byLHS == nil {
		n.reindex()
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	var order []Equation
	var visit func(name string) error
	visit = func(name string) error {
		idx, ok := n.byLHS[name]
		if !ok {
			return nil // input or undefined; Validate catches the latter
		}
		switch color[name] {
		case gray:
			return fmt.Errorf("eqn: combinational cycle through %q", name)
		case black:
			return nil
		}
		color[name] = gray
		e := n.Eqns[idx]
		if !isStateBoundary(e.RHS) {
			for _, dep := range Support(e.RHS) {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		color[name] = black
		order = append(order, e)
		return nil
	}
	for _, e := range n.Eqns {
		if err := visit(e.LHS); err != nil {
			return nil, err
		}
	}
	return order, nil
}

func isStateBoundary(x Node) bool {
	switch x.(type) {
	case FF, DelayEl:
		return true
	}
	return false
}
