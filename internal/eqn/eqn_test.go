package eqn

import (
	"strings"
	"testing"
)

// counterNet builds a 1-bit counter: q feeds back through an xor into a
// flip-flop, exercising the FF state boundary.
func counterNet(t *testing.T) *Network {
	t.Helper()
	n := NewNetwork("cnt1")
	n.Inputs = []string{"en", "clk"}
	n.Outputs = []string{"q"}
	if err := n.AddEquation("d", Xor{X: Var{"q"}, Y: Var{"en"}}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddEquation("q", FF{D: Var{"d"}, Edge: Rise, Clock: Var{"clk"}}); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestAddEquationErrors(t *testing.T) {
	n := NewNetwork("t")
	n.Inputs = []string{"a"}
	if err := n.AddEquation("x", Var{"a"}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddEquation("x", Var{"a"}); err == nil {
		t.Error("duplicate definition accepted")
	}
	if err := n.AddEquation("a", Const{true}); err == nil {
		t.Error("assignment to input accepted")
	}
}

func TestDefAndReplaceDef(t *testing.T) {
	n := counterNet(t)
	if n.Def("en") != nil {
		t.Error("Def(input) != nil")
	}
	if n.Def("nope") != nil {
		t.Error("Def(undefined) != nil")
	}
	if _, ok := n.Def("d").(Xor); !ok {
		t.Errorf("Def(d) = %T", n.Def("d"))
	}
	if err := n.ReplaceDef("d", Const{true}); err != nil {
		t.Fatal(err)
	}
	if c, ok := n.Def("d").(Const); !ok || !c.V {
		t.Errorf("after ReplaceDef: %v", n.Def("d"))
	}
	if err := n.ReplaceDef("nope", Const{true}); err == nil {
		t.Error("ReplaceDef of undefined signal accepted")
	}
	if !n.IsInput("en") || n.IsInput("q") {
		t.Error("IsInput wrong")
	}
	if !n.IsOutput("q") || n.IsOutput("en") {
		t.Error("IsOutput wrong")
	}
}

func TestSupportAllNodeKinds(t *testing.T) {
	node := Or{Xs: []Node{
		And{Xs: []Node{Var{"a"}, Not{Var{"b"}}}},
		Xor{X: Buf{Var{"c"}}, Y: Schmitt{Var{"d"}}},
		Xnor{X: Var{"e"}, Y: Const{true}},
		Tristate{X: Var{"f"}, Ctrl: Var{"g"}},
		WireOr{Xs: []Node{Var{"h"}}},
		DelayEl{X: Var{"i"}, NS: 2},
		FF{D: Var{"j"}, Edge: Fall, Clock: Var{"k"},
			Async: []AsyncRule{{Value: true, Cond: Var{"l"}}}},
	}}
	got := Support(node)
	want := "a b c d e f g h i j k l"
	if strings.Join(got, " ") != want {
		t.Errorf("Support = %v, want %v", got, want)
	}
}

func TestValidate(t *testing.T) {
	n := counterNet(t)
	if err := n.Validate(); err != nil {
		t.Errorf("valid network rejected: %v", err)
	}
	bad := NewNetwork("bad")
	bad.Outputs = []string{"o"}
	if err := bad.AddEquation("o", Var{"ghost"}); err != nil {
		t.Fatal(err)
	}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "undefined") {
		t.Errorf("undefined signal: %v", err)
	}
	bad2 := NewNetwork("bad2")
	bad2.Outputs = []string{"o"}
	if err := bad2.Validate(); err == nil || !strings.Contains(err.Error(), "no defining equation") {
		t.Errorf("undefined output: %v", err)
	}
}

func TestIsSequential(t *testing.T) {
	ff := FF{D: Var{"d"}, Edge: Rise, Clock: Var{"clk"}}
	seq := []Node{
		ff,
		DelayEl{X: Var{"a"}, NS: 1},
		Not{X: ff},
		Buf{X: ff},
		Schmitt{X: ff},
		And{Xs: []Node{Var{"a"}, ff}},
		Or{Xs: []Node{ff}},
		Xor{X: Var{"a"}, Y: ff},
		Xnor{X: ff, Y: Var{"a"}},
		Tristate{X: Var{"a"}, Ctrl: ff},
		WireOr{Xs: []Node{ff}},
	}
	for _, x := range seq {
		if !IsSequential(x) {
			t.Errorf("IsSequential(%s) = false", String(x))
		}
	}
	comb := []Node{
		Var{"a"}, Const{true},
		And{Xs: []Node{Var{"a"}, Not{Var{"b"}}}},
		Xor{X: Var{"a"}, Y: Var{"b"}},
	}
	for _, x := range comb {
		if IsSequential(x) {
			t.Errorf("IsSequential(%s) = true", String(x))
		}
	}
}

func TestStringGolden(t *testing.T) {
	cases := []struct {
		node Node
		want string
	}{
		{Var{"a"}, "a"},
		{Const{true}, "1"},
		{Const{false}, "0"},
		{Not{Var{"a"}}, "!a"},
		{Buf{Var{"a"}}, "~b a"},
		{Schmitt{Var{"a"}}, "~s a"},
		{And{Xs: []Node{Var{"a"}, Var{"b"}, Not{Var{"c"}}}}, "a*b*!c"},
		{Or{Xs: []Node{Var{"a"}, And{Xs: []Node{Var{"b"}, Var{"c"}}}}}, "a+(b*c)"},
		{Xor{X: Var{"a"}, Y: Var{"b"}}, "a!=b"},
		{Xnor{X: Var{"a"}, Y: Var{"b"}}, "a==b"},
		{Tristate{X: Var{"a"}, Ctrl: Var{"en"}}, "a ~t en"},
		{WireOr{Xs: []Node{Var{"a"}, Var{"b"}}}, "a ~w b"},
		{DelayEl{X: Var{"a"}, NS: 2.5}, "a ~d 2.5"},
		{FF{D: Var{"d"}, Edge: Rise, Clock: Var{"clk"}}, "(d) @(~r clk)"},
		{
			FF{D: Var{"d"}, Edge: LevelHigh, Clock: Var{"clk"},
				Async: []AsyncRule{{Value: false, Cond: Var{"rst"}}, {Value: true, Cond: Var{"set"}}}},
			"(d) @(~h clk) ~a(0/(rst),1/(set))",
		},
	}
	for _, tc := range cases {
		if got := String(tc.node); got != tc.want {
			t.Errorf("String = %q, want %q", got, tc.want)
		}
	}
	for _, e := range []EdgeKind{Rise, Fall, LevelHigh, LevelLow} {
		if s := e.String(); !strings.HasPrefix(s, "~") {
			t.Errorf("EdgeKind %d = %q", e, s)
		}
	}
	if EdgeKind(99).String() != "?" {
		t.Error("unknown EdgeKind")
	}
}

func TestFormatGolden(t *testing.T) {
	n := counterNet(t)
	want := "NAME=cnt1;\n" +
		"INORDER=en clk;\n" +
		"OUTORDER=q;\n" +
		"d=q!=en;\n" +
		"q=(d) @(~r clk);\n"
	if got := n.Format(); got != want {
		t.Errorf("Format:\n%s\nwant:\n%s", got, want)
	}
}

func TestCloneIndependence(t *testing.T) {
	n := counterNet(t)
	c := n.Clone()
	if err := c.ReplaceDef("d", Const{false}); err != nil {
		t.Fatal(err)
	}
	c.Inputs[0] = "mutated"
	if _, ok := n.Def("d").(Xor); !ok {
		t.Error("ReplaceDef on clone leaked into original")
	}
	if n.Inputs[0] != "en" {
		t.Error("input slice shared with clone")
	}
	if c.Name != n.Name || len(c.Eqns) != len(n.Eqns) {
		t.Error("clone lost content")
	}
	// CloneNode covers every node kind.
	orig := Or{Xs: []Node{
		Not{Var{"a"}}, Buf{Var{"b"}}, Schmitt{Var{"c"}},
		And{Xs: []Node{Var{"d"}}},
		Xor{X: Var{"e"}, Y: Var{"f"}}, Xnor{X: Var{"g"}, Y: Var{"h"}},
		Tristate{X: Var{"i"}, Ctrl: Var{"j"}}, WireOr{Xs: []Node{Var{"k"}}},
		DelayEl{X: Var{"l"}, NS: 3},
		FF{D: Var{"m"}, Edge: Fall, Clock: Var{"n"},
			Async: []AsyncRule{{Value: true, Cond: Var{"o"}}}},
	}}
	if got, want := String(CloneNode(orig)), String(orig); got != want {
		t.Errorf("CloneNode changed structure: %q vs %q", got, want)
	}
}

func TestEvalComb(t *testing.T) {
	env := map[string]bool{"a": true, "b": false, "c": true}
	cases := []struct {
		node Node
		want bool
	}{
		{Var{"a"}, true},
		{Const{false}, false},
		{Not{Var{"a"}}, false},
		{Buf{Var{"b"}}, false},
		{Schmitt{Var{"a"}}, true},
		{And{Xs: []Node{Var{"a"}, Var{"c"}}}, true},
		{And{Xs: []Node{Var{"a"}, Var{"b"}}}, false},
		{Or{Xs: []Node{Var{"b"}, Var{"a"}}}, true},
		{Or{Xs: []Node{Var{"b"}, Var{"b"}}}, false},
		{Xor{X: Var{"a"}, Y: Var{"b"}}, true},
		{Xor{X: Var{"a"}, Y: Var{"c"}}, false},
		{Xnor{X: Var{"a"}, Y: Var{"c"}}, true},
		{Xnor{X: Var{"a"}, Y: Var{"b"}}, false},
	}
	for _, tc := range cases {
		got, err := EvalComb(tc.node, env)
		if err != nil {
			t.Errorf("EvalComb(%s): %v", String(tc.node), err)
			continue
		}
		if got != tc.want {
			t.Errorf("EvalComb(%s) = %v, want %v", String(tc.node), got, tc.want)
		}
	}
}

func TestEvalCombErrors(t *testing.T) {
	env := map[string]bool{"a": true}
	bad := []Node{
		Var{"ghost"},
		FF{D: Var{"a"}, Edge: Rise, Clock: Var{"a"}},
		DelayEl{X: Var{"a"}, NS: 1},
		Tristate{X: Var{"a"}, Ctrl: Var{"a"}},
		WireOr{Xs: []Node{Var{"a"}}},
		And{Xs: []Node{Var{"a"}, Var{"ghost"}}},
		Or{Xs: []Node{Var{"ghost"}}},
		Xor{X: Var{"ghost"}, Y: Var{"a"}},
		Xor{X: Var{"a"}, Y: Var{"ghost"}},
		Xnor{X: Var{"ghost"}, Y: Var{"a"}},
		Not{Var{"ghost"}},
	}
	for _, x := range bad {
		if _, err := EvalComb(x, env); err == nil {
			t.Errorf("EvalComb(%s) succeeded, want error", String(x))
		}
	}
}

func TestTopoOrder(t *testing.T) {
	n := NewNetwork("chain")
	n.Inputs = []string{"a"}
	n.Outputs = []string{"z"}
	// Define out of dependency order on purpose.
	if err := n.AddEquation("z", Var{"y"}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddEquation("y", And{Xs: []Node{Var{"x"}, Var{"a"}}}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddEquation("x", Not{Var{"a"}}); err != nil {
		t.Fatal(err)
	}
	order, err := n.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[string]int)
	for i, e := range order {
		pos[e.LHS] = i
	}
	if !(pos["x"] < pos["y"] && pos["y"] < pos["z"]) {
		t.Errorf("order = %v", pos)
	}
}

func TestTopoOrderCombCycle(t *testing.T) {
	n := NewNetwork("cyc")
	n.Outputs = []string{"p"}
	if err := n.AddEquation("p", Var{"q"}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddEquation("q", Not{Var{"p"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.TopoOrder(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("err = %v, want combinational cycle", err)
	}
}

func TestTopoOrderFFBreaksCycle(t *testing.T) {
	// The counter feedback loop (q -> d -> q) crosses a flip-flop, which
	// is a state boundary, so ordering must succeed.
	n := counterNet(t)
	order, err := n.TopoOrder()
	if err != nil {
		t.Fatalf("FF cycle not cut: %v", err)
	}
	if len(order) != 2 {
		t.Errorf("order = %d equations, want 2", len(order))
	}
}

func TestRenameNode(t *testing.T) {
	orig := Or{Xs: []Node{
		And{Xs: []Node{Var{"a"}, Not{Var{"b"}}}},
		FF{D: Var{"d"}, Edge: Rise, Clock: Var{"clk"},
			Async: []AsyncRule{{Value: true, Cond: Var{"rst"}}}},
		Tristate{X: Var{"x"}, Ctrl: Var{"en"}},
	}}
	got := RenameNode(orig, func(n string) string { return "p_" + n })
	want := "(p_a*!p_b)+((p_d) @(~r p_clk) ~a(1/(p_rst)))+(p_x ~t p_en)"
	if String(got) != want {
		t.Errorf("RenameNode = %q, want %q", String(got), want)
	}
	// Original untouched.
	if !strings.Contains(String(orig), "a*!b") {
		t.Errorf("original mutated: %q", String(orig))
	}
}
