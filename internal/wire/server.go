package wire

import (
	"bufio"
	"bytes"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"icdb/internal/cql"
	"icdb/internal/icdb"
	"icdb/internal/relstore"
)

// Limits bounds what one client — or all of them together — may cost
// the server. The zero value means "unlimited" for every field, which
// keeps the embedded test servers and the pre-PR 7 behavior unchanged;
// cmd/icdbd installs production defaults via flags. Every violation is
// answered with a typed Error frame (CodeQuota, CodeTimeout, ...)
// before the session is closed, never a raw TCP reset.
type Limits struct {
	// MaxConns caps concurrent sessions (counting handshakes in
	// flight). A connection over the cap is answered with a plain
	// Error frame at the handshake and closed — graceful rejection,
	// not accept-loop failure.
	MaxConns int
	// MaxSessionCommands caps the commands one session may run; the
	// first command past the quota gets Error CodeQuota and the
	// session closes.
	MaxSessionCommands int
	// MaxSessionRows caps the total Row frames one session may
	// receive; a streamed find that crosses the quota is aborted
	// mid-stream with Error CodeQuota and the session closes.
	MaxSessionRows int
	// IdleTimeout bounds how long a session may sit between commands
	// (it also bounds a client that stalls mid-frame, since the server
	// is idle-waiting for the frame to complete). Expiry answers
	// Error CodeTimeout and closes the session.
	IdleTimeout time.Duration
	// WriteTimeout bounds every frame write, so a client that stops
	// reading mid-stream cannot park the serving goroutine forever:
	// the next flush fails and the command unwinds through the
	// engine's sink-error path.
	WriteTimeout time.Duration
	// HandshakeTimeout bounds the whole preamble/Hello/auth exchange;
	// a client that trickles half a magic and stalls is logged and
	// rejected instead of holding a session slot.
	HandshakeTimeout time.Duration
}

// Stats is a snapshot of the server's operation counters, exposed to
// operators through the CQL "show server" verb.
type Stats struct {
	SessionsActive   int64
	SessionsTotal    int64
	SessionsRejected int64
	Commands         int64
	Rows             int64
	Errors           int64
	Cancels          int64
	QuotaHits        int64
	Timeouts         int64
	AuthFailures     int64
}

// Server serves the ICDB wire protocol: one goroutine per connection,
// one cql.Env — and therefore one CQL session (current width, weight
// overrides, expander reuse) — per connection. Commands on a connection
// run sequentially; commands on different connections run concurrently
// against the shared DB, whose snapshot-isolated reads keep a slow
// client's streamed find from blocking anyone else's writes. Limits
// and Secret bound what a misbehaving client can cost; both default to
// fully open.
type Server struct {
	// DB is the shared component database; it must be non-nil.
	DB *icdb.DB
	// ReadFile, when non-nil, lets sessions run "expand <file>"; it
	// receives the client-supplied path and is responsible for
	// restricting it (cmd/icdbd confines it to a -designs directory).
	// Nil disables expand, the safe default for a network server.
	ReadFile func(path string) ([]byte, error)
	// Logf, when non-nil, receives per-connection lifecycle lines.
	Logf func(format string, args ...any)
	// Limits bounds per-session and server-wide resource use; the
	// zero value is unlimited.
	Limits Limits
	// Secret, when non-empty, requires every session to present the
	// same token in its auth Hello (protocol v2); the comparison is
	// constant-time and unauthenticated connections are rejected
	// before any command runs. v1 clients cannot authenticate and are
	// rejected outright when a secret is set.
	Secret string
	// Durability, when non-nil, reports the backing store's journal
	// state for "show server" (cmd/icdbd wires it to the Durable
	// store's Info when running with -journal). Nil means the catalog
	// is snapshot-only.
	Durability func() relstore.DurabilityInfo
	// Hydration, when non-nil, reports the backing store's snapshot
	// open mode and lazy-hydration counters for "show server"
	// (cmd/icdbd wires it to the store's LazyInfo). Nil hides the
	// "open:" line entirely (e.g. a store not backed by a snapshot).
	Hydration func() relstore.LazyInfo

	mu      sync.Mutex
	ln      net.Listener
	conns   map[net.Conn]struct{}
	closed  bool
	closing chan struct{} // closed on Shutdown; wakes idle sessions
	wg      sync.WaitGroup

	// closedFlag mirrors closed for the per-row abort check in
	// lineWriter, which must not take the server mutex.
	closedFlag atomic.Bool

	stats struct {
		sessionsActive   atomic.Int64
		sessionsTotal    atomic.Int64
		sessionsRejected atomic.Int64
		commands         atomic.Int64
		rows             atomic.Int64
		errors           atomic.Int64
		cancels          atomic.Int64
		quotaHits        atomic.Int64
		timeouts         atomic.Int64
		authFailures     atomic.Int64
	}
}

// Stats snapshots the server's operation counters.
func (s *Server) Stats() Stats {
	return Stats{
		SessionsActive:   s.stats.sessionsActive.Load(),
		SessionsTotal:    s.stats.sessionsTotal.Load(),
		SessionsRejected: s.stats.sessionsRejected.Load(),
		Commands:         s.stats.commands.Load(),
		Rows:             s.stats.rows.Load(),
		Errors:           s.stats.errors.Load(),
		Cancels:          s.stats.cancels.Load(),
		QuotaHits:        s.stats.quotaHits.Load(),
		Timeouts:         s.stats.timeouts.Load(),
		AuthFailures:     s.stats.authFailures.Load(),
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// closingChan lazily creates the shutdown broadcast channel so sessions
// can select on it whether or not Shutdown ever runs.
func (s *Server) closingChan() chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing == nil {
		s.closing = make(chan struct{})
	}
	return s.closing
}

// Serve accepts connections on ln until Close/Shutdown (or a fatal
// listener error) and blocks until every connection handler has
// returned. The listener is owned by the server from this point:
// Close closes it.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("wire: server is closed")
	}
	s.ln = ln
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.mu.Unlock()

	var err error
	for {
		conn, aerr := ln.Accept()
		if aerr != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if !closed {
				err = aerr
			}
			break
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			break
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
	s.wg.Wait()
	return err
}

// Shutdown stops the server gracefully: the listener closes, every
// in-flight command is aborted through the engine's sink-error path
// with Error CodeShutdown, idle sessions are told the same, and the
// call waits up to grace for handlers to unwind before hard-closing
// whatever remains (a session parked in a write to a stalled client,
// for instance). In-flight clients therefore see a decodable
// Done/Error, not a raw TCP reset.
func (s *Server) Shutdown(grace time.Duration) error {
	closing := s.closingChan()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	s.closedFlag.Store(true)
	ln := s.ln
	s.mu.Unlock()
	close(closing)
	var err error
	if ln != nil {
		err = ln.Close()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var graceC <-chan time.Time
	if grace > 0 {
		t := time.NewTimer(grace)
		defer t.Stop()
		graceC = t.C
	} else {
		c := make(chan time.Time, 1)
		c <- time.Time{}
		graceC = c
	}
	select {
	case <-done:
	case <-graceC:
		s.mu.Lock()
		conns := make([]net.Conn, 0, len(s.conns))
		for c := range s.conns {
			conns = append(conns, c)
		}
		s.mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
		<-done
	}
	return err
}

// Close stops accepting and tears every live connection down
// immediately (Shutdown with no grace period). A mid-stream command on
// a closed connection fails its socket write and unwinds through the
// engine's visitor stop-path, leaving the store consistent.
func (s *Server) Close() error { return s.Shutdown(0) }

// sessionErr is a server-side abort of one command or session: it
// travels through the cql.Env sink (lineWriter) as a write error, so
// the engine stops yielding promptly, and the handler answers with the
// typed Error frame it carries. fatal closes the session after the
// reply; non-fatal (cancel) leaves it usable.
type sessionErr struct {
	code  ErrCode
	msg   string
	fatal bool
}

func (e *sessionErr) Error() string { return e.msg }

// session is the per-connection state shared between the handler
// goroutine (which executes commands) and the reader goroutine (which
// keeps draining frames mid-command so Cancel can land).
type session struct {
	srv     *Server
	conn    net.Conn
	bw      *bufio.Writer
	version uint32

	// gen is the generation of the in-flight command, 0 when idle.
	// A Cancel frame targets the generation in flight when it is
	// read; a cancel landing between commands (the cancel-vs-Done
	// race) targets generation 0 and is ignored.
	gen       atomic.Int64
	cancelGen atomic.Int64
	// abort, once set, fatally ends the session at its next sink
	// write (pipeline overflow; server shutdown uses closedFlag).
	abort atomic.Pointer[sessionErr]

	inbox     chan string // commands from the reader; cap 1 = max pipeline
	readerErr chan error  // terminal reader failure (EOF, bad frame, overflow)

	rows int // session total of streamed rows (handler goroutine only)
	cmds int // session total of commands (handler goroutine only)
}

// aborted reports the sessionErr the in-flight command (generation gen)
// must unwind with, or nil. Called from lineWriter on every write, so
// it is lock-free: two atomic loads and a flag.
func (s *session) aborted(gen int64) *sessionErr {
	if s.srv.closedFlag.Load() {
		return &sessionErr{code: CodeShutdown, msg: "server shutting down", fatal: true}
	}
	if se := s.abort.Load(); se != nil {
		return se
	}
	if gen != 0 && s.cancelGen.Load() == gen {
		return &sessionErr{code: CodeCancelled, msg: "command cancelled", fatal: false}
	}
	return nil
}

// armWrite applies the server's write deadline ahead of a frame write,
// so a client that stops reading cannot park the handler forever.
func (s *session) armWrite() {
	if d := s.srv.Limits.WriteTimeout; d > 0 {
		s.conn.SetWriteDeadline(time.Now().Add(d))
	}
}

// readLoop drains frames off the connection for the session's
// lifetime: Commands queue for the handler (at most one while another
// is in flight — more is a protocol violation that aborts the
// session), Cancels mark the in-flight command, anything else is a
// protocol error. It exits by reporting the terminal error on
// readerErr; the handler owns the reply.
func (s *session) readLoop(br *bufio.Reader) {
	for {
		t, payload, err := ReadFrame(br)
		if err != nil {
			s.readerErr <- err
			return
		}
		switch t {
		case FrameCommand:
			select {
			case s.inbox <- string(payload):
			default:
				s.abort.CompareAndSwap(nil, &sessionErr{
					code:  CodeProtocol,
					msg:   "pipelined command limit exceeded (one queued command per session)",
					fatal: true,
				})
				s.readerErr <- errPipelineOverflow
				return
			}
		case FrameCancel:
			if s.version < 2 {
				s.readerErr <- fmt.Errorf("wire: Cancel frame on a v%d session", s.version)
				return
			}
			if g := s.gen.Load(); g != 0 {
				s.cancelGen.Store(g)
				s.srv.stats.cancels.Add(1)
			}
		default:
			s.readerErr <- fmt.Errorf("wire: unexpected %s frame", t)
			return
		}
	}
}

var errPipelineOverflow = errors.New("wire: pipelined command limit exceeded")

// serveConn runs one connection: limit check, handshake (with optional
// auth), then a command loop until the client hangs up, a limit trips,
// or the server shuts down.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	s.stats.sessionsTotal.Add(1)
	active := s.stats.sessionsActive.Add(1)
	defer s.stats.sessionsActive.Add(-1)
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)

	if d := s.Limits.HandshakeTimeout; d > 0 {
		conn.SetDeadline(time.Now().Add(d))
	}

	// Connection limit: graceful rejection with a decodable frame, not
	// accept-loop backpressure collapse. The reply predates the Hello,
	// so it uses the plain (v1, frozen-contract) Error payload every
	// client version can decode.
	if max := s.Limits.MaxConns; max > 0 && active > int64(max) {
		s.stats.sessionsRejected.Add(1)
		s.stats.quotaHits.Add(1)
		WriteFrame(bw, FrameError, fmt.Appendf(nil, "server connection limit (%d) reached, try again later", max))
		bw.Flush()
		s.logf("wire: %s: rejected: connection limit %d", conn.RemoteAddr(), max)
		return
	}

	v, err := readPreamble(br)
	if err != nil {
		s.stats.sessionsRejected.Add(1)
		if errors.Is(err, os.ErrDeadlineExceeded) {
			s.stats.timeouts.Add(1)
			s.logf("wire: %s: rejected: handshake timeout (partial or stalled preamble): %v", conn.RemoteAddr(), err)
		} else {
			s.logf("wire: %s: handshake: %v", conn.RemoteAddr(), err)
		}
		return
	}
	if v < MinVersion || v > Version {
		// Answer with a versioned rejection, then hang up: the client
		// knows the handshake format even if it speaks a newer protocol.
		WriteFrame(bw, FrameError, fmt.Appendf(nil, "unsupported protocol version %d (server speaks %d..%d)", v, MinVersion, Version))
		bw.Flush()
		s.stats.sessionsRejected.Add(1)
		s.logf("wire: %s: rejected version %d", conn.RemoteAddr(), v)
		return
	}
	if v < 2 && s.Secret != "" {
		// v1 has no auth exchange; with a secret set those clients are
		// rejected before any command runs.
		WriteFrame(bw, FrameError, []byte("authentication required (reconnect with protocol version 2)"))
		bw.Flush()
		s.stats.sessionsRejected.Add(1)
		s.stats.authFailures.Add(1)
		s.logf("wire: %s: rejected: v1 client with auth required", conn.RemoteAddr())
		return
	}
	if err := WriteFrame(bw, FrameHello, u32(v)); err != nil || bw.Flush() != nil {
		return
	}
	if v >= 2 {
		// Auth exchange: the client's Hello carries its token; the
		// session starts only after Done acknowledges it.
		t, token, err := ReadFrame(br)
		if err != nil || t != FrameHello {
			s.stats.sessionsRejected.Add(1)
			if err == nil {
				WriteFrame(bw, FrameError, codedError(CodeProtocol, fmt.Sprintf("expected auth Hello, got %s", t)))
				bw.Flush()
			} else if errors.Is(err, os.ErrDeadlineExceeded) {
				s.stats.timeouts.Add(1)
			}
			s.logf("wire: %s: rejected: auth hello: frame %v err %v", conn.RemoteAddr(), t, err)
			return
		}
		if s.Secret != "" && subtle.ConstantTimeCompare(token, []byte(s.Secret)) != 1 {
			s.stats.sessionsRejected.Add(1)
			s.stats.authFailures.Add(1)
			WriteFrame(bw, FrameError, codedError(CodeAuth, "authentication failed"))
			bw.Flush()
			s.logf("wire: %s: rejected: authentication failed", conn.RemoteAddr())
			return
		}
		if err := WriteFrame(bw, FrameDone, u32(0)); err != nil || bw.Flush() != nil {
			return
		}
	}
	conn.SetDeadline(time.Time{})
	s.logf("wire: %s: session open (v%d)", conn.RemoteAddr(), v)

	sess := &session{
		srv:       s,
		conn:      conn,
		bw:        bw,
		version:   v,
		inbox:     make(chan string, 1),
		readerErr: make(chan error, 1),
	}
	// One Env per connection: the session state the set command adjusts
	// (width, weights) and the expander's template reuse are confined to
	// this client.
	lw := &lineWriter{sess: sess}
	env := &cql.Env{DB: s.DB, Out: lw, ReadFile: s.ReadFile, ServerInfo: s.serverInfo}
	go sess.readLoop(br)
	closing := s.closingChan()

	gen := int64(0)
	for {
		var idleC <-chan time.Time
		var idleT *time.Timer
		if d := s.Limits.IdleTimeout; d > 0 {
			idleT = time.NewTimer(d)
			idleC = idleT.C
		}
		select {
		case cmd := <-sess.inbox:
			if idleT != nil {
				idleT.Stop()
			}
			gen++
			if !s.runCommand(sess, env, lw, cmd, gen) {
				return
			}
		case err := <-sess.readerErr:
			if idleT != nil {
				idleT.Stop()
			}
			// A command may have been queued before the reader died
			// (a client that writes its last command and half-closes):
			// serve it before acting on the failure.
			select {
			case cmd := <-sess.inbox:
				gen++
				if !s.runCommand(sess, env, lw, cmd, gen) {
					return
				}
			default:
			}
			if errors.Is(err, errPipelineOverflow) {
				s.replyErr(sess, CodeProtocol, "pipelined command limit exceeded (one queued command per session)")
			}
			s.logf("wire: %s: session end: %v", conn.RemoteAddr(), err)
			return
		case <-idleC:
			s.stats.timeouts.Add(1)
			s.replyErr(sess, CodeTimeout, fmt.Sprintf("idle timeout (%s)", s.Limits.IdleTimeout))
			s.logf("wire: %s: session end: idle timeout", conn.RemoteAddr())
			return
		case <-closing:
			s.replyErr(sess, CodeShutdown, "server shutting down")
			s.logf("wire: %s: session end: server shutdown", conn.RemoteAddr())
			return
		}
	}
}

// runCommand executes one command and writes its reply, returning
// whether the session should continue.
func (s *Server) runCommand(sess *session, env *cql.Env, lw *lineWriter, cmd string, gen int64) bool {
	sess.cmds++
	if max := s.Limits.MaxSessionCommands; max > 0 && sess.cmds > max {
		s.stats.quotaHits.Add(1)
		s.replyErr(sess, CodeQuota, fmt.Sprintf("session command quota (%d) exhausted", max))
		s.logf("wire: %s: session end: command quota", sess.conn.RemoteAddr())
		return false
	}
	s.stats.commands.Add(1)
	sess.gen.Store(gen)
	lw.reset(gen)
	execErr := env.Exec(cmd)
	sess.gen.Store(0)
	werr := lw.finish()
	if werr != nil {
		var se *sessionErr
		if errors.As(werr, &se) {
			ok := s.replyErr(sess, se.code, se.msg)
			if se.fatal {
				s.logf("wire: %s: session end: %s: %s", sess.conn.RemoteAddr(), se.code, se.msg)
				return false
			}
			return ok
		}
		// The client is gone (or stopped reading past the write
		// deadline) mid-stream; nothing left to tell it.
		if errors.Is(werr, os.ErrDeadlineExceeded) {
			s.stats.timeouts.Add(1)
		}
		s.logf("wire: %s: write: %v", sess.conn.RemoteAddr(), werr)
		return false
	}
	if execErr != nil {
		s.stats.errors.Add(1)
		return s.replyErr(sess, CodeGeneric, execErr.Error())
	}
	sess.armWrite()
	if err := WriteFrame(sess.bw, FrameDone, u32(uint32(lw.rows))); err != nil {
		return false
	}
	if err := sess.bw.Flush(); err != nil {
		s.logf("wire: %s: write: %v", sess.conn.RemoteAddr(), err)
		return false
	}
	return true
}

// replyErr writes one Error frame in the session's dialect (coded for
// v2, plain text for v1), reporting whether the write succeeded.
func (s *Server) replyErr(sess *session, code ErrCode, msg string) bool {
	var payload []byte
	if sess.version >= 2 {
		payload = codedError(code, msg)
	} else {
		payload = []byte(msg)
	}
	sess.armWrite()
	if err := WriteFrame(sess.bw, FrameError, payload); err != nil {
		return false
	}
	return sess.bw.Flush() == nil
}

// serverInfo renders the operator view behind the CQL "show server"
// verb: protocol versions, live counters, auth state, and limits.
func (s *Server) serverInfo(w io.Writer) error {
	st := s.Stats()
	fmt.Fprintf(w, "protocol:     v%d (accepts v%d..v%d)\n", Version, MinVersion, Version)
	fmt.Fprintf(w, "sessions:     %d active, %d total, %d rejected\n",
		st.SessionsActive, st.SessionsTotal, st.SessionsRejected)
	fmt.Fprintf(w, "commands:     %d (%d errors, %d cancelled)\n", st.Commands, st.Errors, st.Cancels)
	fmt.Fprintf(w, "rows:         %d\n", st.Rows)
	fmt.Fprintf(w, "quota hits:   %d\n", st.QuotaHits)
	fmt.Fprintf(w, "timeouts:     %d\n", st.Timeouts)
	if s.Secret != "" {
		fmt.Fprintf(w, "auth:         on (%d failures)\n", st.AuthFailures)
	} else {
		fmt.Fprintln(w, "auth:         off")
	}
	l := s.Limits
	fmt.Fprintf(w, "limits:       max_conns=%s session_commands=%s session_rows=%s idle=%s write=%s handshake=%s\n",
		limitN(l.MaxConns), limitN(l.MaxSessionCommands), limitN(l.MaxSessionRows),
		limitD(l.IdleTimeout), limitD(l.WriteTimeout), limitD(l.HandshakeTimeout))
	if s.Durability != nil {
		d := s.Durability()
		fmt.Fprintf(w, "durability:   journaled, fsync=%s, %d byte(s) / %d record(s) since last compaction, %d compaction(s)\n",
			d.Policy, d.JournalBytes, d.Records, d.Compactions)
		fmt.Fprintf(w, "recovery:     %s\n", d.Recovery)
	} else {
		fmt.Fprintln(w, "durability:   snapshot-only (no journal)")
	}
	if s.Hydration != nil {
		h := s.Hydration()
		if h.Lazy {
			fmt.Fprintf(w, "open:         lazy, %d/%d table(s) hydrated (%d hydration(s)), %d deferred journal record(s) pending, %d replayed\n",
				h.Hydrated, h.Tables, h.Hydrations, h.DeferredPending, h.DeferredReplayed)
		} else {
			fmt.Fprintln(w, "open:         eager (fully materialized)")
		}
	}
	return nil
}

func limitN(n int) string {
	if n <= 0 {
		return "off"
	}
	return fmt.Sprintf("%d", n)
}

func limitD(d time.Duration) string {
	if d <= 0 {
		return "off"
	}
	return d.String()
}

// lineWriter adapts a frame stream to the io.Writer a cql.Env prints
// to: every completed output line becomes one Row frame, written (and
// flushed) as it is produced, so rows reach a streaming client while
// the command is still running. It is also where server-side aborts
// land: a socket write error, a Cancel frame, a row quota, or a
// shutdown surfaces here as the write error that stops a streamed find
// immediately (the engine's sink-error path).
type lineWriter struct {
	sess *session
	buf  bytes.Buffer
	rows int
	gen  int64
	err  error
}

func (lw *lineWriter) reset(gen int64) {
	lw.buf.Reset()
	lw.rows = 0
	lw.gen = gen
	lw.err = nil
}

func (lw *lineWriter) Write(p []byte) (int, error) {
	if lw.err != nil {
		return 0, lw.err
	}
	if se := lw.sess.aborted(lw.gen); se != nil {
		lw.err = se
		return 0, se
	}
	n := len(p)
	for {
		i := bytes.IndexByte(p, '\n')
		if i < 0 {
			lw.buf.Write(p)
			return n, nil
		}
		lw.buf.Write(p[:i])
		if err := lw.emit(); err != nil {
			return 0, err
		}
		p = p[i+1:]
	}
}

// emit sends the buffered line as one Row frame and flushes it out,
// enforcing the session row quota first.
func (lw *lineWriter) emit() error {
	srv := lw.sess.srv
	if max := srv.Limits.MaxSessionRows; max > 0 && lw.sess.rows >= max {
		srv.stats.quotaHits.Add(1)
		lw.err = &sessionErr{code: CodeQuota,
			msg:   fmt.Sprintf("session row quota (%d) exhausted", max),
			fatal: true}
		lw.buf.Reset()
		return lw.err
	}
	lw.sess.armWrite()
	if err := WriteFrame(lw.sess.bw, FrameRow, lw.buf.Bytes()); err == nil {
		lw.err = lw.sess.bw.Flush()
	} else {
		lw.err = err
	}
	lw.buf.Reset()
	if lw.err == nil {
		lw.rows++
		lw.sess.rows++
		srv.stats.rows.Add(1)
	}
	return lw.err
}

// finish flushes a trailing unterminated line (defensive — CQL output
// is newline-terminated) and reports any write error seen during the
// command.
func (lw *lineWriter) finish() error {
	if lw.err == nil && lw.buf.Len() > 0 {
		lw.emit()
	}
	return lw.err
}

// doneCount decodes a Done payload.
func doneCount(payload []byte) int {
	if len(payload) != 4 {
		return -1
	}
	return int(binary.LittleEndian.Uint32(payload))
}
