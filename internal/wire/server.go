package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"net"
	"sync"

	"icdb/internal/cql"
	"icdb/internal/icdb"
)

// Server serves the ICDB wire protocol: one goroutine per connection,
// one cql.Env — and therefore one CQL session (current width, weight
// overrides, expander reuse) — per connection. Commands on a connection
// run sequentially; commands on different connections run concurrently
// against the shared DB, whose snapshot-isolated reads keep a slow
// client's streamed find from blocking anyone else's writes.
type Server struct {
	// DB is the shared component database; it must be non-nil.
	DB *icdb.DB
	// ReadFile, when non-nil, lets sessions run "expand <file>"; it
	// receives the client-supplied path and is responsible for
	// restricting it (cmd/icdbd confines it to a -designs directory).
	// Nil disables expand, the safe default for a network server.
	ReadFile func(path string) ([]byte, error)
	// Logf, when non-nil, receives per-connection lifecycle lines.
	Logf func(format string, args ...any)

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// Serve accepts connections on ln until Close (or a fatal listener
// error) and blocks until every connection handler has returned. The
// listener is owned by the server from this point: Close closes it.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("wire: server is closed")
	}
	s.ln = ln
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.mu.Unlock()

	var err error
	for {
		conn, aerr := ln.Accept()
		if aerr != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if !closed {
				err = aerr
			}
			break
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			break
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
	s.wg.Wait()
	return err
}

// Close stops accepting, closes every live connection, and waits for
// their handlers to return. A mid-stream command on a closed connection
// fails its socket write and unwinds through the engine's visitor
// stop-path, leaving the store consistent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

// serveConn runs one connection: handshake, then a command loop until
// the client hangs up.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)

	v, err := readPreamble(br)
	if err != nil {
		s.logf("wire: %s: handshake: %v", conn.RemoteAddr(), err)
		return
	}
	if v != Version {
		// Answer with a versioned rejection, then hang up: the client
		// knows the handshake format even if it speaks a newer protocol.
		WriteFrame(bw, FrameError, fmt.Appendf(nil, "unsupported protocol version %d (server speaks %d)", v, Version))
		bw.Flush()
		s.logf("wire: %s: rejected version %d", conn.RemoteAddr(), v)
		return
	}
	if err := WriteFrame(bw, FrameHello, u32(Version)); err != nil || bw.Flush() != nil {
		return
	}
	s.logf("wire: %s: session open", conn.RemoteAddr())

	// One Env per connection: the session state the set command adjusts
	// (width, weights) and the expander's template reuse are confined to
	// this client.
	lw := &lineWriter{w: bw}
	env := &cql.Env{DB: s.DB, Out: lw, ReadFile: s.ReadFile}

	for {
		t, payload, err := ReadFrame(br)
		if err != nil {
			s.logf("wire: %s: session end: %v", conn.RemoteAddr(), err)
			return
		}
		if t != FrameCommand {
			s.logf("wire: %s: unexpected %s frame", conn.RemoteAddr(), t)
			return
		}
		lw.reset()
		execErr := env.Exec(string(payload))
		if err := lw.finish(); err != nil {
			// The client is gone mid-stream; nothing left to tell it.
			s.logf("wire: %s: write: %v", conn.RemoteAddr(), err)
			return
		}
		if execErr != nil {
			if err := WriteFrame(bw, FrameError, []byte(execErr.Error())); err != nil {
				return
			}
		} else {
			if err := WriteFrame(bw, FrameDone, u32(uint32(lw.rows))); err != nil {
				return
			}
		}
		if err := bw.Flush(); err != nil {
			s.logf("wire: %s: write: %v", conn.RemoteAddr(), err)
			return
		}
	}
}

// lineWriter adapts a frame stream to the io.Writer a cql.Env prints
// to: every completed output line becomes one Row frame, written (and
// flushed) as it is produced, so rows reach a streaming client while
// the command is still running. A socket write error is returned to the
// engine through Write, which stops a streamed find immediately.
type lineWriter struct {
	w    *bufio.Writer
	buf  bytes.Buffer
	rows int
	err  error
}

func (lw *lineWriter) reset() {
	lw.buf.Reset()
	lw.rows = 0
	lw.err = nil
}

func (lw *lineWriter) Write(p []byte) (int, error) {
	if lw.err != nil {
		return 0, lw.err
	}
	n := len(p)
	for {
		i := bytes.IndexByte(p, '\n')
		if i < 0 {
			lw.buf.Write(p)
			return n, nil
		}
		lw.buf.Write(p[:i])
		if err := lw.emit(); err != nil {
			return 0, err
		}
		p = p[i+1:]
	}
}

// emit sends the buffered line as one Row frame and flushes it out.
func (lw *lineWriter) emit() error {
	if err := WriteFrame(lw.w, FrameRow, lw.buf.Bytes()); err == nil {
		lw.err = lw.w.Flush()
	} else {
		lw.err = err
	}
	lw.buf.Reset()
	if lw.err == nil {
		lw.rows++
	}
	return lw.err
}

// finish flushes a trailing unterminated line (defensive — CQL output
// is newline-terminated) and reports any write error seen during the
// command.
func (lw *lineWriter) finish() error {
	if lw.err == nil && lw.buf.Len() > 0 {
		lw.emit()
	}
	return lw.err
}

// doneCount decodes a Done payload.
func doneCount(payload []byte) int {
	if len(payload) != 4 {
		return -1
	}
	return int(binary.LittleEndian.Uint32(payload))
}
