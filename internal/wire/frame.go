// Package wire implements the ICDB network protocol: a length-prefixed,
// versioned binary framing over TCP that carries CQL commands to an
// icdbd server and streams result rows back. It is the transport the
// paper's tool/database split implies — synthesis tools talk to the
// component database server — layered over the same cql.Env every
// in-process front-end uses.
//
// The format follows the conventions of the relstore snapshot format
// (internal/relstore/SNAPSHOT.md): an 8-byte magic plus a u32 version up
// front, little-endian integers, and lengths always prefixing data. The
// full protocol is specified in WIRE.md.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Magic opens every connection: the client sends it (followed by its
// u32 protocol version) before the first frame, so a server can reject
// a stray HTTP request or port scan after eight bytes.
const Magic = "ICDBWIRE"

// Version is the newest protocol version this package speaks. Servers
// accept any version in [MinVersion, Version] and run the session at
// the version the client announced; anything else is rejected — they
// never guess (the snapshot format's versioning policy).
const Version = 2

// MinVersion is the oldest protocol version this package still serves.
// A v1 client interoperates with a v2 server for the v1 command set:
// no Cancel frame, no auth exchange, and plain-text Error payloads.
const MinVersion = 1

// MaxFrame bounds a frame's payload length. Commands are single lines
// and rows are single result lines, so 1MiB is generous; the bound
// keeps a corrupt or malicious length prefix from forcing a giant
// allocation.
const MaxFrame = 1 << 20

// FrameType tags one frame's meaning.
type FrameType uint8

// The frame types of protocol versions 1 and 2.
const (
	// FrameHello is a handshake frame. Server to client its payload is
	// the u32 protocol version the session will speak; in a v2
	// handshake the client answers with its own Hello whose payload is
	// the (possibly empty) shared-secret auth token.
	FrameHello FrameType = 1
	// FrameCommand carries one CQL command line, client to server.
	FrameCommand FrameType = 2
	// FrameRow carries one line of command output, server to client,
	// without the trailing newline. Rows stream as the engine yields
	// them — an unbounded find never materializes server-side.
	FrameRow FrameType = 3
	// FrameDone ends a command's reply: payload is the u32 count of Row
	// frames sent. Every command ends with exactly one Done or Error.
	// In a v2 handshake an empty-count Done also acknowledges the
	// client's auth Hello.
	FrameDone FrameType = 4
	// FrameError ends a command's reply with a failure. In a v1 session
	// (and in every pre-Hello handshake rejection, a frozen contract)
	// the payload is the error text; in a v2 session it is a u8 ErrCode
	// followed by the text. The connection stays usable for further
	// commands unless the code (or a failed handshake) says otherwise.
	FrameError FrameType = 5
	// FrameCancel (v2+) asks the server to abort the in-flight command
	// without dropping the connection, client to server, empty payload.
	// The aborted command answers with Error code CodeCancelled; a
	// Cancel that arrives when no command is in flight (the cancel-vs-
	// Done race) is ignored.
	FrameCancel FrameType = 6
)

func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "Hello"
	case FrameCommand:
		return "Command"
	case FrameRow:
		return "Row"
	case FrameDone:
		return "Done"
	case FrameError:
		return "Error"
	case FrameCancel:
		return "Cancel"
	}
	return fmt.Sprintf("FrameType(%d)", uint8(t))
}

// ErrCode classifies a v2 Error frame so clients can react without
// parsing text: retry policy (RemoteErrors are never retried, but a
// caller may treat CodeQuota rejections specially), cancel
// acknowledgement, and clean-shutdown detection all key off it.
type ErrCode uint8

// The error codes of protocol version 2. Codes marked "session ends"
// are followed by the server closing the connection cleanly; the rest
// leave the session usable.
const (
	// CodeGeneric is a command failure (parse error, unknown impl, ...);
	// the session survives.
	CodeGeneric ErrCode = 0
	// CodeAuth rejects a session whose Hello auth token did not match
	// the server's shared secret. Session ends.
	CodeAuth ErrCode = 1
	// CodeQuota reports an exhausted server limit: connection limit at
	// handshake, or a per-session row/command quota. Session ends.
	CodeQuota ErrCode = 2
	// CodeTimeout reports an expired read/idle deadline. Session ends.
	CodeTimeout ErrCode = 3
	// CodeCancelled acknowledges a Cancel frame: the in-flight command
	// was aborted. The session survives.
	CodeCancelled ErrCode = 4
	// CodeShutdown tells the client the server is shutting down
	// gracefully; in-flight commands are aborted with it. Session ends.
	CodeShutdown ErrCode = 5
	// CodeProtocol reports a client protocol violation (unexpected
	// frame, pipeline overflow). Session ends.
	CodeProtocol ErrCode = 6
)

func (c ErrCode) String() string {
	switch c {
	case CodeGeneric:
		return "error"
	case CodeAuth:
		return "auth"
	case CodeQuota:
		return "quota"
	case CodeTimeout:
		return "timeout"
	case CodeCancelled:
		return "cancelled"
	case CodeShutdown:
		return "shutdown"
	case CodeProtocol:
		return "protocol"
	}
	return fmt.Sprintf("ErrCode(%d)", uint8(c))
}

// WriteFrame writes one frame: u32 payload length, u8 type, payload.
func WriteFrame(w io.Writer, t FrameType, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: %s frame payload %d bytes exceeds limit %d", t, len(payload), MaxFrame)
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = byte(t)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		// Never issue a zero-length write: net.Pipe (the test
		// transport) rendezvouses even on empty writes, which would
		// deadlock an unbuffered peer mid-handshake.
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame written by WriteFrame, bounding the payload
// at MaxFrame. io.EOF is returned unwrapped when the stream ends
// cleanly between frames (a client hanging up), io.ErrUnexpectedEOF
// mid-frame.
func ReadFrame(r io.Reader) (FrameType, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return 0, nil, err // clean EOF between frames stays io.EOF
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	t := FrameType(hdr[4])
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("wire: %s frame declares %d payload bytes, limit %d", t, n, MaxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return t, payload, nil
}

// writePreamble sends the client's connection opener: magic + the
// protocol version the client wants to speak.
func writePreamble(w io.Writer, version uint32) error {
	var buf [len(Magic) + 4]byte
	copy(buf[:], Magic)
	binary.LittleEndian.PutUint32(buf[len(Magic):], version)
	_, err := w.Write(buf[:])
	return err
}

// readPreamble validates a client's connection opener, returning the
// announced version.
func readPreamble(r io.Reader) (uint32, error) {
	var buf [len(Magic) + 4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, err
	}
	if string(buf[:len(Magic)]) != Magic {
		return 0, fmt.Errorf("wire: bad magic %q (not an ICDB wire client)", buf[:len(Magic)])
	}
	return binary.LittleEndian.Uint32(buf[len(Magic):]), nil
}

// u32 renders a count as a Done/Hello payload.
func u32(v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return b[:]
}

// codedError renders a v2 Error payload: u8 code + text.
func codedError(code ErrCode, msg string) []byte {
	b := make([]byte, 1+len(msg))
	b[0] = byte(code)
	copy(b[1:], msg)
	return b
}

// decodeError splits an Error payload according to the session version:
// v2 payloads carry a leading u8 code, v1 payloads (and pre-Hello
// handshake rejections) are bare text.
func decodeError(version uint32, payload []byte) (ErrCode, string) {
	if version >= 2 && len(payload) >= 1 {
		return ErrCode(payload[0]), string(payload[1:])
	}
	return CodeGeneric, string(payload)
}
