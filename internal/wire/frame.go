// Package wire implements the ICDB network protocol: a length-prefixed,
// versioned binary framing over TCP that carries CQL commands to an
// icdbd server and streams result rows back. It is the transport the
// paper's tool/database split implies — synthesis tools talk to the
// component database server — layered over the same cql.Env every
// in-process front-end uses.
//
// The format follows the conventions of the relstore snapshot format
// (internal/relstore/SNAPSHOT.md): an 8-byte magic plus a u32 version up
// front, little-endian integers, and lengths always prefixing data. The
// full protocol is specified in WIRE.md.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Magic opens every connection: the client sends it (followed by its
// u32 protocol version) before the first frame, so a server can reject
// a stray HTTP request or port scan after eight bytes.
const Magic = "ICDBWIRE"

// Version is the protocol version this package speaks. Servers reject
// clients announcing any other version — they never guess (the snapshot
// format's versioning policy).
const Version = 1

// MaxFrame bounds a frame's payload length. Commands are single lines
// and rows are single result lines, so 1MiB is generous; the bound
// keeps a corrupt or malicious length prefix from forcing a giant
// allocation.
const MaxFrame = 1 << 20

// FrameType tags one frame's meaning.
type FrameType uint8

// The frame types of protocol version 1.
const (
	// FrameHello is the server's handshake reply: payload is the u32
	// protocol version the server speaks.
	FrameHello FrameType = 1
	// FrameCommand carries one CQL command line, client to server.
	FrameCommand FrameType = 2
	// FrameRow carries one line of command output, server to client,
	// without the trailing newline. Rows stream as the engine yields
	// them — an unbounded find never materializes server-side.
	FrameRow FrameType = 3
	// FrameDone ends a command's reply: payload is the u32 count of Row
	// frames sent. Every command ends with exactly one Done or Error.
	FrameDone FrameType = 4
	// FrameError ends a command's reply with a failure: payload is the
	// error text. The connection stays usable for further commands
	// unless the handshake itself failed.
	FrameError FrameType = 5
)

func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "Hello"
	case FrameCommand:
		return "Command"
	case FrameRow:
		return "Row"
	case FrameDone:
		return "Done"
	case FrameError:
		return "Error"
	}
	return fmt.Sprintf("FrameType(%d)", uint8(t))
}

// WriteFrame writes one frame: u32 payload length, u8 type, payload.
func WriteFrame(w io.Writer, t FrameType, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: %s frame payload %d bytes exceeds limit %d", t, len(payload), MaxFrame)
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = byte(t)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame written by WriteFrame, bounding the payload
// at MaxFrame. io.EOF is returned unwrapped when the stream ends
// cleanly between frames (a client hanging up), io.ErrUnexpectedEOF
// mid-frame.
func ReadFrame(r io.Reader) (FrameType, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return 0, nil, err // clean EOF between frames stays io.EOF
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	t := FrameType(hdr[4])
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("wire: %s frame declares %d payload bytes, limit %d", t, n, MaxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return t, payload, nil
}

// writePreamble sends the client's connection opener: magic + version.
func writePreamble(w io.Writer) error {
	var buf [len(Magic) + 4]byte
	copy(buf[:], Magic)
	binary.LittleEndian.PutUint32(buf[len(Magic):], Version)
	_, err := w.Write(buf[:])
	return err
}

// readPreamble validates a client's connection opener, returning the
// announced version.
func readPreamble(r io.Reader) (uint32, error) {
	var buf [len(Magic) + 4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, err
	}
	if string(buf[:len(Magic)]) != Magic {
		return 0, fmt.Errorf("wire: bad magic %q (not an ICDB wire client)", buf[:len(Magic)])
	}
	return binary.LittleEndian.Uint32(buf[len(Magic):]), nil
}

// u32 renders a count as a Done/Hello payload.
func u32(v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return b[:]
}
