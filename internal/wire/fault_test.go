package wire

// Transport-torture suite: every mid-frame failure a hostile or
// unlucky network can produce, driven deterministically through the
// faultconn wrapper — split preambles, stalled handshakes, truncated
// and corrupted frames, mid-stream resets, cancel-vs-Done races, and
// quota exhaustion under load. CI runs these (plus TestSoak*) with
// -race -count=2 as the fault+soak job.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"icdb/internal/icdb"
	"icdb/internal/relstore"
	"icdb/internal/wire/faultconn"
)

// startServerOpts is startServer with server configuration (limits,
// secret, logging) applied before the listener starts.
func startServerOpts(t *testing.T, db *icdb.DB, cfg func(*Server)) (*Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{DB: db}
	if cfg != nil {
		cfg(srv)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

// startPipeServerOpts is startPipeServer with server configuration.
func startPipeServerOpts(t *testing.T, db *icdb.DB, cfg func(*Server)) (*Server, *pipeListener) {
	t.Helper()
	ln := newPipeListener()
	srv := &Server{DB: db}
	if cfg != nil {
		cfg(srv)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		<-done
	})
	return srv, ln
}

// logRecorder captures Server.Logf lines for assertions.
type logRecorder struct {
	mu    sync.Mutex
	lines []string
}

func (l *logRecorder) logf(format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lines = append(l.lines, fmt.Sprintf(format, args...))
}

func (l *logRecorder) contains(sub string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, line := range l.lines {
		if strings.Contains(line, sub) {
			return true
		}
	}
	return false
}

// drainToError reads frames until an Error arrives (skipping Rows),
// returning its decoded v2 code and message. A Done first is fatal.
func drainToError(t *testing.T, conn net.Conn) (ErrCode, string) {
	t.Helper()
	for {
		ft, payload, err := ReadFrame(conn)
		if err != nil {
			t.Fatalf("draining to Error: %v", err)
		}
		switch ft {
		case FrameRow:
		case FrameError:
			code, msg := decodeError(2, payload)
			return code, msg
		default:
			t.Fatalf("draining to Error: unexpected %s frame", ft)
		}
	}
}

// drainToDone reads frames until Done, returning the row count.
func drainToDone(t *testing.T, conn net.Conn) int {
	t.Helper()
	rows := 0
	for {
		ft, payload, err := ReadFrame(conn)
		if err != nil {
			t.Fatalf("draining to Done after %d rows: %v", rows, err)
		}
		switch ft {
		case FrameRow:
			rows++
		case FrameDone:
			if n := doneCount(payload); n != rows {
				t.Fatalf("Done reports %d rows, received %d", n, rows)
			}
			return rows
		case FrameError:
			_, msg := decodeError(2, payload)
			t.Fatalf("draining to Done: Error %q after %d rows", msg, rows)
		}
	}
}

// eventually polls cond until it holds or the deadline passes.
func eventually(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFaultSplitPreambleHandshakes: a preamble trickling in across
// three short reads (split inside the magic and inside the version
// word) is normal TCP behavior and must handshake fine.
func TestFaultSplitPreambleHandshakes(t *testing.T) {
	db := openDB(t)
	_, ln := startPipeServerOpts(t, db, nil)
	fc := faultconn.New(ln.dial(t),
		faultconn.Fault{Op: faultconn.Write, At: 3, Kind: faultconn.Chop},
		faultconn.Fault{Op: faultconn.Write, At: 9, Kind: faultconn.Chop})
	defer fc.Close()

	rawHandshake(t, fc, Version, "")
	if err := WriteFrame(fc, FrameCommand, []byte("show impls")); err != nil {
		t.Fatal(err)
	}
	if rows := drainToDone(t, fc); rows == 0 {
		t.Fatal("show impls over a chopped handshake returned no rows")
	}
}

// TestFaultPartialPreambleStallRejected: half a magic followed by
// silence must not hold a session slot forever — the handshake
// deadline expires, the rejection is logged, and the conn closes.
func TestFaultPartialPreambleStallRejected(t *testing.T) {
	db := openDB(t)
	logs := &logRecorder{}
	srv, ln := startPipeServerOpts(t, db, func(s *Server) {
		s.Limits.HandshakeTimeout = 50 * time.Millisecond
		s.Logf = logs.logf
	})
	fc := faultconn.New(ln.dial(t),
		faultconn.Fault{Op: faultconn.Write, At: 3, Kind: faultconn.Stall, Delay: 2 * time.Second})
	defer fc.Close()
	go writePreamble(fc, Version) // blocks in the stall; the tail write fails after close

	eventually(t, 5*time.Second, "handshake timeout log", func() bool {
		return logs.contains("handshake timeout")
	})
	if srv.Stats().Timeouts == 0 {
		t.Error("stalled handshake did not count as a timeout")
	}
	if srv.Stats().SessionsRejected == 0 {
		t.Error("stalled handshake did not count as a rejection")
	}
}

// TestFaultResetMidHandshake: a client vanishing halfway through the
// preamble is logged and the server keeps serving.
func TestFaultResetMidHandshake(t *testing.T) {
	db := openDB(t)
	srv, ln := startPipeServerOpts(t, db, nil)
	fc := faultconn.New(ln.dial(t),
		faultconn.Fault{Op: faultconn.Write, At: 5, Kind: faultconn.Reset})
	if err := writePreamble(fc, Version); err == nil {
		t.Fatal("write past an injected reset succeeded")
	}

	eventually(t, 5*time.Second, "session teardown", func() bool {
		return srv.Stats().SessionsActive == 0
	})
	conn := ln.dial(t)
	defer conn.Close()
	rawHandshake(t, conn, Version, "")
}

// TestFaultTruncatedFrameMidCommand: a command frame whose payload is
// cut off by a reset ends that session (unexpected EOF) without
// disturbing the server.
func TestFaultTruncatedFrameMidCommand(t *testing.T) {
	db := openDB(t)
	srv, ln := startPipeServerOpts(t, db, nil)
	// Client write offsets: preamble 0..11, auth Hello header 12..16
	// (empty payload writes nothing), command header 17..21, payload
	// from 22. Reset three bytes into the ten-byte payload.
	fc := faultconn.New(ln.dial(t),
		faultconn.Fault{Op: faultconn.Write, At: 25, Kind: faultconn.Reset})
	rawHandshake(t, fc, Version, "")
	if err := WriteFrame(fc, FrameCommand, []byte("show impls")); err == nil {
		t.Fatal("write past an injected reset succeeded")
	}

	eventually(t, 5*time.Second, "session teardown", func() bool {
		return srv.Stats().SessionsActive == 0
	})
	conn := ln.dial(t)
	defer conn.Close()
	rawHandshake(t, conn, Version, "")
	if err := WriteFrame(conn, FrameCommand, []byte("show impls")); err != nil {
		t.Fatal(err)
	}
	if rows := drainToDone(t, conn); rows == 0 {
		t.Fatal("server unusable after a truncated frame")
	}
}

// TestFaultCorruptLengthPrefix: one flipped bit in a length prefix
// turns the frame into a multi-gigabyte claim; the server must refuse
// it (bounded at MaxFrame) and close only that session.
func TestFaultCorruptLengthPrefix(t *testing.T) {
	db := openDB(t)
	srv, ln := startPipeServerOpts(t, db, nil)
	// Offset 20 is the most significant byte of the command frame's
	// u32 length prefix (see TestFaultTruncatedFrameMidCommand's map).
	fc := faultconn.New(ln.dial(t),
		faultconn.Fault{Op: faultconn.Write, At: 20, Kind: faultconn.Corrupt})
	defer fc.Close()
	rawHandshake(t, fc, Version, "")
	WriteFrame(fc, FrameCommand, []byte("show impls"))
	// The server drops the session without a reply (it cannot trust
	// the stream enough to frame one).
	if _, _, err := ReadFrame(fc); err == nil {
		t.Fatal("server answered a frame with a corrupt length prefix")
	}

	eventually(t, 5*time.Second, "session teardown", func() bool {
		return srv.Stats().SessionsActive == 0
	})
	conn := ln.dial(t)
	defer conn.Close()
	rawHandshake(t, conn, Version, "")
}

// TestFaultCancelMidStreamSessionSurvives is the tentpole acceptance
// scenario for Cancel: a streamed find is aborted mid-flight by a
// Cancel frame, the abort is acknowledged with CodeCancelled, and the
// SAME session then runs another command normally.
func TestFaultCancelMidStreamSessionSurvives(t *testing.T) {
	db := openDB(t)
	addImpls(t, db, 200)
	srv, ln := startPipeServerOpts(t, db, nil)
	conn := ln.dial(t)
	defer conn.Close()
	rawHandshake(t, conn, Version, "")

	if err := WriteFrame(conn, FrameCommand, []byte("find component executing STORAGE")); err != nil {
		t.Fatal(err)
	}
	if ft, _, err := ReadFrame(conn); err != nil || ft != FrameRow {
		t.Fatalf("first row: frame %v err %v", ft, err)
	}
	if err := WriteFrame(conn, FrameCancel, nil); err != nil {
		t.Fatal(err)
	}
	code, msg := drainToError(t, conn)
	if code != CodeCancelled {
		t.Fatalf("cancel answered %s (%q), want %s", code, msg, CodeCancelled)
	}

	// The session survives the cancel: a fresh command completes.
	if err := WriteFrame(conn, FrameCommand, []byte("show session")); err != nil {
		t.Fatal(err)
	}
	if rows := drainToDone(t, conn); rows == 0 {
		t.Fatal("session dead after cancel")
	}
	if srv.Stats().Cancels != 1 {
		t.Errorf("cancels counter = %d, want 1", srv.Stats().Cancels)
	}
}

// TestFaultCancelVsDoneRace: a Cancel that loses the race — arriving
// after the command's Done — targets an idle generation and must be
// ignored, not poison the next command.
func TestFaultCancelVsDoneRace(t *testing.T) {
	db := openDB(t)
	srv, addr := startServerOpts(t, db, nil)
	c := dialT(t, addr)

	execLines(t, c, "show session")
	if err := c.Cancel(); err != nil {
		t.Fatal(err)
	}
	// The late cancel is a no-op; the next command runs clean.
	if got := execLines(t, c, "show session"); len(got) == 0 {
		t.Fatal("session poisoned by a post-Done cancel")
	}
	if n := srv.Stats().Cancels; n != 0 {
		t.Errorf("idle cancel counted as aborting a command (cancels = %d)", n)
	}
}

// TestFaultExecContextCancel: context cancellation mid-stream sends a
// Cancel frame; Exec returns RemoteError CodeCancelled and the client
// session stays usable.
func TestFaultExecContextCancel(t *testing.T) {
	db := openDB(t)
	addImpls(t, db, 300)
	srv, ln := startPipeServerOpts(t, db, nil)
	c, err := NewClient(ln.dial(t))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows := 0
	_, err = c.ExecContext(ctx, "find component executing STORAGE", func(string) {
		rows++
		if rows == 1 {
			// Cancel, then hold the read loop until the Cancel frame
			// has landed server-side: on the synchronous pipe the find
			// is pinned mid-stream for exactly that long, so the abort
			// is deterministic, not a race against the stream draining.
			cancel()
			eventually(t, 5*time.Second, "cancel to land", func() bool {
				return srv.Stats().Cancels >= 1
			})
		}
	})
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != CodeCancelled {
		t.Fatalf("cancelled exec: err = %v, want RemoteError %s", err, CodeCancelled)
	}
	if rows >= 300 {
		t.Fatalf("cancel did not stop the stream (%d rows delivered)", rows)
	}
	if got := execLines(t, c, "show session"); len(got) == 0 {
		t.Fatal("client session dead after context cancel")
	}
}

// TestFaultRowQuotaMidStream: a streamed find crossing the session row
// quota is aborted mid-stream with CodeQuota and the session closes.
func TestFaultRowQuotaMidStream(t *testing.T) {
	db := openDB(t)
	addImpls(t, db, 200)
	srv, ln := startPipeServerOpts(t, db, func(s *Server) {
		s.Limits.MaxSessionRows = 25
	})
	c, err := NewClient(ln.dial(t))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rows, err := c.Exec("find component executing STORAGE", nil)
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != CodeQuota {
		t.Fatalf("quota exec: err = %v, want RemoteError %s", err, CodeQuota)
	}
	if !strings.Contains(re.Msg, "row quota (25)") {
		t.Fatalf("quota message: %q", re.Msg)
	}
	if rows != 25 {
		t.Fatalf("received %d rows before the quota error, want 25", rows)
	}
	if _, err := c.Exec("show session", nil); err == nil {
		t.Fatal("session survived a fatal quota error")
	}
	if srv.Stats().QuotaHits != 1 {
		t.Errorf("quota hits = %d, want 1", srv.Stats().QuotaHits)
	}
}

// TestFaultCommandQuota: the first command past the session command
// quota answers CodeQuota and the session closes.
func TestFaultCommandQuota(t *testing.T) {
	db := openDB(t)
	_, addr := startServerOpts(t, db, func(s *Server) {
		s.Limits.MaxSessionCommands = 2
	})
	c := dialT(t, addr)
	execLines(t, c, "show session")
	execLines(t, c, "show session")
	_, err := c.Exec("show session", nil)
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != CodeQuota {
		t.Fatalf("third command: err = %v, want RemoteError %s", err, CodeQuota)
	}
	if !strings.Contains(re.Msg, "command quota (2)") {
		t.Fatalf("quota message: %q", re.Msg)
	}
	if _, err := c.Exec("show session", nil); err == nil {
		t.Fatal("session survived the command quota")
	}
}

// TestFaultIdleTimeout: a session that sits silent past the idle
// deadline is told CodeTimeout and closed — not reset, not leaked.
func TestFaultIdleTimeout(t *testing.T) {
	db := openDB(t)
	srv, ln := startPipeServerOpts(t, db, func(s *Server) {
		s.Limits.IdleTimeout = 60 * time.Millisecond
	})
	conn := ln.dial(t)
	defer conn.Close()
	rawHandshake(t, conn, Version, "")

	ft, payload, err := ReadFrame(conn)
	if err != nil || ft != FrameError {
		t.Fatalf("idle session: frame %v err %v, want Error", ft, err)
	}
	code, msg := decodeError(2, payload)
	if code != CodeTimeout || !strings.Contains(msg, "idle timeout") {
		t.Fatalf("idle session: %s %q, want %s", code, msg, CodeTimeout)
	}
	if _, _, err := ReadFrame(conn); err == nil {
		t.Fatal("session open after idle timeout")
	}
	if srv.Stats().Timeouts == 0 {
		t.Error("idle timeout not counted")
	}
}

// TestFaultWriteTimeoutUnsticksStalledClient: a client that stops
// reading mid-stream cannot park the serving goroutine — the write
// deadline expires, the session unwinds, and the server keeps serving.
func TestFaultWriteTimeoutUnsticksStalledClient(t *testing.T) {
	db := openDB(t)
	addImpls(t, db, 200)
	srv, ln := startPipeServerOpts(t, db, func(s *Server) {
		s.Limits.WriteTimeout = 80 * time.Millisecond
	})
	stalled := stallingClient(t, ln, "find component executing STORAGE")
	defer stalled.Close()

	eventually(t, 5*time.Second, "write timeout", func() bool {
		return srv.Stats().Timeouts >= 1
	})
	eventually(t, 5*time.Second, "stalled session teardown", func() bool {
		return srv.Stats().SessionsActive == 0
	})
	c, err := NewClient(ln.dial(t))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := execLines(t, c, "show impls"); len(got) == 0 {
		t.Fatal("server unusable after unsticking a stalled client")
	}
}

// TestFaultPipelineOverflow: more than one queued command behind an
// in-flight one is a protocol violation; the session is aborted with
// CodeProtocol, including the command mid-stream.
func TestFaultPipelineOverflow(t *testing.T) {
	db := openDB(t)
	addImpls(t, db, 200)
	_, ln := startPipeServerOpts(t, db, nil)
	conn := ln.dial(t)
	defer conn.Close()
	rawHandshake(t, conn, Version, "")

	if err := WriteFrame(conn, FrameCommand, []byte("find component executing STORAGE")); err != nil {
		t.Fatal(err)
	}
	if ft, _, err := ReadFrame(conn); err != nil || ft != FrameRow {
		t.Fatalf("first row: frame %v err %v", ft, err)
	}
	// One queued command is legal pipelining; the second overflows.
	if err := WriteFrame(conn, FrameCommand, []byte("show session")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(conn, FrameCommand, []byte("show session")); err != nil {
		t.Fatal(err)
	}
	code, msg := drainToError(t, conn)
	if code != CodeProtocol || !strings.Contains(msg, "pipelined") {
		t.Fatalf("overflow answered %s %q, want %s", code, msg, CodeProtocol)
	}
	if _, _, err := ReadFrame(conn); err == nil {
		t.Fatal("session open after pipeline overflow")
	}
}

// TestFaultAuth: the shared-secret handshake — right secret in, wrong
// secret rejected with CodeAuth, v1 clients rejected outright (their
// protocol has no auth exchange), all in constant-time compares.
func TestFaultAuth(t *testing.T) {
	db := openDB(t)
	srv, addr := startServerOpts(t, db, func(s *Server) {
		s.Secret = "hunter2"
	})

	c, err := DialOptions(addr, Options{Secret: "hunter2"})
	if err != nil {
		t.Fatalf("correct secret: %v", err)
	}
	defer c.Close()
	if got := execLines(t, c, "show impls"); len(got) == 0 {
		t.Fatal("authenticated session returned no rows")
	}

	_, err = DialOptions(addr, Options{Secret: "wrong"})
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != CodeAuth {
		t.Fatalf("wrong secret: err = %v, want RemoteError %s", err, CodeAuth)
	}

	_, err = DialOptions(addr, Options{Version: 1})
	if !errors.As(err, &re) || !strings.Contains(re.Msg, "authentication required") {
		t.Fatalf("v1 client against auth server: err = %v", err)
	}

	if n := srv.Stats().AuthFailures; n != 2 {
		t.Errorf("auth failures = %d, want 2", n)
	}
}

// TestFaultV1ClientInterop: a v1 client interoperates with the v2
// server for the v1 command set — plain-text errors, no Cancel.
func TestFaultV1ClientInterop(t *testing.T) {
	db := openDB(t)
	_, addr := startServerOpts(t, db, nil)

	// Raw v1 session: no auth leg, bare-text Error payloads.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rawHandshake(t, conn, 1, "")
	if err := WriteFrame(conn, FrameCommand, []byte("show impls")); err != nil {
		t.Fatal(err)
	}
	if rows := drainToDone(t, conn); rows == 0 {
		t.Fatal("v1 show impls returned no rows")
	}
	if err := WriteFrame(conn, FrameCommand, []byte("bogus")); err != nil {
		t.Fatal(err)
	}
	ft, payload, err := ReadFrame(conn)
	if err != nil || ft != FrameError {
		t.Fatalf("v1 bad command: frame %v err %v", ft, err)
	}
	if !strings.Contains(string(payload), "bogus") {
		t.Fatalf("v1 error payload is not bare text: %q", payload)
	}
	// The session survives a command error, v1 or v2.
	if err := WriteFrame(conn, FrameCommand, []byte("show impls")); err != nil {
		t.Fatal(err)
	}
	drainToDone(t, conn)

	// The Client API pinned to v1: Exec works, Cancel refuses.
	c, err := DialOptions(addr, Options{Version: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.ProtocolVersion(); got != 1 {
		t.Fatalf("negotiated v%d, want v1", got)
	}
	if _, err := c.Exec("show impls", nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Cancel(); err == nil {
		t.Fatal("Cancel on a v1 session did not error")
	}
}

// TestFaultMaxConns: a connection over the cap is rejected gracefully
// with a decodable Error frame, and capacity frees when a session ends.
func TestFaultMaxConns(t *testing.T) {
	db := openDB(t)
	srv, addr := startServerOpts(t, db, func(s *Server) {
		s.Limits.MaxConns = 1
	})
	c1 := dialT(t, addr)
	execLines(t, c1, "show session")

	_, err := Dial(addr)
	var re *RemoteError
	if !errors.As(err, &re) || !strings.Contains(re.Msg, "connection limit (1)") {
		t.Fatalf("over-cap dial: err = %v, want graceful RemoteError", err)
	}
	if srv.Stats().SessionsRejected == 0 {
		t.Error("rejected connection not counted")
	}

	c1.Close()
	eventually(t, 5*time.Second, "capacity to free", func() bool {
		c, err := Dial(addr)
		if err != nil {
			return false
		}
		c.Close()
		return true
	})
}

// TestFaultDialRetryBackoff: transport failures during dial are
// retried with backoff; the client connects once the server recovers.
func TestFaultDialRetryBackoff(t *testing.T) {
	db := openDB(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{DB: db}
	t.Cleanup(func() { srv.Close() })
	go func() {
		// A flaky spell: the first two connections die before the
		// handshake, then the real server takes over the listener.
		for i := 0; i < 2; i++ {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
		srv.Serve(ln)
	}()

	c, err := DialOptions(ln.Addr().String(), Options{
		Retry: Backoff{Attempts: 6, Base: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("dial with retry: %v", err)
	}
	defer c.Close()
	if got := execLines(t, c, "show impls"); len(got) == 0 {
		t.Fatal("recovered session returned no rows")
	}
}

// TestFaultNoRetryOnRemoteError: a server that answered and said no
// (bad auth) is not hammered with retries.
func TestFaultNoRetryOnRemoteError(t *testing.T) {
	db := openDB(t)
	srv, addr := startServerOpts(t, db, func(s *Server) {
		s.Secret = "hunter2"
	})
	_, err := DialOptions(addr, Options{
		Secret: "wrong",
		Retry:  Backoff{Attempts: 5, Base: time.Millisecond},
	})
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != CodeAuth {
		t.Fatalf("err = %v, want RemoteError %s", err, CodeAuth)
	}
	if n := srv.Stats().AuthFailures; n != 1 {
		t.Errorf("auth failures = %d, want 1 (RemoteError must not be retried)", n)
	}
}

// TestFaultShutdownGraceful: Shutdown aborts the in-flight command
// through the sink-error path and tells idle sessions too — every
// client sees a decodable CodeShutdown Error, not a raw TCP reset.
func TestFaultShutdownGraceful(t *testing.T) {
	db := openDB(t)
	addImpls(t, db, 300)
	// The pipe transport keeps the streamed find pinned mid-flight
	// (the server is blocked in a row flush) so the shutdown
	// deterministically aborts it; TCP buffers would let the command
	// finish first.
	srv, ln := startPipeServerOpts(t, db, nil)

	idle := ln.dial(t)
	defer idle.Close()
	rawHandshake(t, idle, Version, "")

	streaming := ln.dial(t)
	defer streaming.Close()
	rawHandshake(t, streaming, Version, "")
	if err := WriteFrame(streaming, FrameCommand, []byte("find component executing STORAGE")); err != nil {
		t.Fatal(err)
	}
	if ft, _, err := ReadFrame(streaming); err != nil || ft != FrameRow {
		t.Fatalf("first row: frame %v err %v", ft, err)
	}

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.Shutdown(5 * time.Second) }()
	eventually(t, 5*time.Second, "shutdown to begin", func() bool {
		return srv.closedFlag.Load()
	})

	code, msg := drainToError(t, streaming)
	if code != CodeShutdown {
		t.Fatalf("in-flight command got %s (%q), want %s", code, msg, CodeShutdown)
	}
	ft, payload, err := ReadFrame(idle)
	if err != nil || ft != FrameError {
		t.Fatalf("idle session: frame %v err %v, want Error", ft, err)
	}
	if code, _ := decodeError(2, payload); code != CodeShutdown {
		t.Fatalf("idle session got %s, want %s", code, CodeShutdown)
	}

	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestShowServerEndToEnd: the operator's "show server" verb over the
// wire reports protocol, counters, auth state, and limits.
func TestShowServerEndToEnd(t *testing.T) {
	db := openDB(t)
	_, addr := startServerOpts(t, db, func(s *Server) {
		s.Secret = "hunter2"
		s.Limits.MaxSessionRows = 1000
		s.Limits.IdleTimeout = time.Minute
	})
	c, err := DialOptions(addr, Options{Secret: "hunter2"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	execLines(t, c, "show impls") // bump the counters

	info := strings.Join(execLines(t, c, "show server"), "\n")
	for _, want := range []string{
		"protocol:     v2",
		"sessions:     1 active",
		"auth:         on",
		"session_rows=1000",
		"idle=1m0s",
		"max_conns=off",
		"durability:   snapshot-only (no journal)",
	} {
		if !strings.Contains(info, want) {
			t.Errorf("show server output missing %q:\n%s", want, info)
		}
	}
}

// TestShowServerJournalDurability: with the Durability hook installed
// (as icdbd -journal does), "show server" reports the journal state
// and recovery outcome.
func TestShowServerJournalDurability(t *testing.T) {
	db := openDB(t)
	durability := func() relstore.DurabilityInfo {
		return relstore.DurabilityInfo{
			JournalPath:  "cat.snap.wal",
			Policy:       "always",
			JournalBytes: 4096,
			Records:      7,
			Compactions:  2,
			Recovery:     relstore.RecoveryInfo{SnapshotLoaded: true, Replayed: 7, Truncated: true, TruncatedAt: 4096},
		}
	}
	_, addr := startServerOpts(t, db, func(s *Server) { s.Durability = durability })
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	info := strings.Join(execLines(t, c, "show server"), "\n")
	for _, want := range []string{
		"durability:   journaled, fsync=always, 4096 byte(s) / 7 record(s) since last compaction, 2 compaction(s)",
		"recovery:     truncated torn tail at offset 4096 (snapshot + 7 journal record(s))",
	} {
		if !strings.Contains(info, want) {
			t.Errorf("show server output missing %q:\n%s", want, info)
		}
	}
}

// TestSoakMixedTraffic hammers one server with four client
// personalities at once — healthy, cancelling, quota-exceeding, and
// garbage-writing — and checks no one blocks anyone else and the
// server finishes consistent. CI runs this under -race.
func TestSoakMixedTraffic(t *testing.T) {
	db := openDB(t)
	addImpls(t, db, 300)
	srv, addr := startServerOpts(t, db, func(s *Server) {
		s.Limits.MaxSessionRows = 150
		s.Limits.MaxSessionCommands = 100
		s.Limits.WriteTimeout = 2 * time.Second
	})

	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch i % 4 {
			case 0: // healthy: bounded finds in a steady loop
				c, err := DialOptions(addr, Options{Retry: Backoff{Attempts: 3, Base: 2 * time.Millisecond}})
				if err != nil {
					t.Errorf("healthy %d: %v", i, err)
					return
				}
				defer c.Close()
				for r := 0; r < 15; r++ {
					if _, err := c.Exec("find component executing STORAGE order by cost limit 3", nil); err != nil {
						t.Errorf("healthy %d round %d: %v", i, r, err)
						return
					}
				}
			case 1: // canceller: aborts streams mid-flight
				for r := 0; r < 5; r++ {
					c, err := Dial(addr)
					if err != nil {
						t.Errorf("canceller %d: %v", i, err)
						return
					}
					ctx, cancel := context.WithCancel(context.Background())
					rows := 0
					_, err = c.ExecContext(ctx, "find component executing STORAGE limit 100", func(string) {
						rows++
						if rows == 2 {
							cancel()
						}
					})
					cancel()
					var re *RemoteError
					if err != nil && !errors.As(err, &re) {
						t.Errorf("canceller %d round %d: transport error %v", i, r, err)
					}
					c.Close()
				}
			case 2: // quota hog: unbounded finds until the row quota trips
				for r := 0; r < 3; r++ {
					c, err := Dial(addr)
					if err != nil {
						t.Errorf("hog %d: %v", i, err)
						return
					}
					_, err = c.Exec("find component executing STORAGE", nil)
					var re *RemoteError
					if !errors.As(err, &re) || re.Code != CodeQuota {
						t.Errorf("hog %d round %d: err = %v, want %s", i, r, err, CodeQuota)
					}
					c.Close()
				}
			case 3: // garbage: wrong magic and half-handshakes
				for r := 0; r < 5; r++ {
					conn, err := net.Dial("tcp", addr)
					if err != nil {
						t.Errorf("garbage %d: %v", i, err)
						return
					}
					if r%2 == 0 {
						conn.Write([]byte("GET / HTTP/1.1\r\n\r\n"))
					} else {
						conn.Write([]byte(Magic[:4]))
					}
					conn.Close()
				}
			}
		}(i)
	}
	wg.Wait()

	// The server survived: a fresh session still answers, and the
	// counters reflect the abuse.
	c := dialT(t, addr)
	if got := execLines(t, c, "find component executing STORAGE order by cost limit 3"); len(got) == 0 {
		t.Fatal("server returned no rows after the soak")
	}
	st := srv.Stats()
	if st.QuotaHits < 9 {
		t.Errorf("quota hits = %d, want >= 9 (3 hogs x 3 rounds)", st.QuotaHits)
	}
	if st.SessionsRejected < 15 {
		t.Errorf("rejected = %d, want >= 15 (garbage dials)", st.SessionsRejected)
	}
	if st.SessionsTotal < 12 {
		t.Errorf("sessions total = %d, want >= 12", st.SessionsTotal)
	}
}
