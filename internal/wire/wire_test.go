package wire

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"

	"icdb/internal/genus"
	"icdb/internal/icdb"
	"icdb/internal/relstore"
)

func openDB(t *testing.T) *icdb.DB {
	t.Helper()
	db, err := icdb.Open(relstore.New())
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// addImpls registers n throwaway register implementations, bulking the
// catalog up so a streamed find outgrows socket and bufio buffers.
func addImpls(t *testing.T, db *icdb.DB, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("bulk_%04d", i)
		err := db.RegisterImpl(icdb.Impl{
			Name:      name,
			Component: genus.CompRegister,
			Functions: []genus.Function{genus.FuncSTORAGE},
			WidthMin:  1, WidthMax: 64, Stages: 1,
			Area: float64(i%17) + 1, Delay: float64(i%11) + 1,
			Params: []string{"size"},
			Source: fmt.Sprintf(
				"NAME: %s; PARAMETER: size; INORDER: d, clk; OUTORDER: q; { q = d @ (~r clk); }", name),
		})
		if err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
	}
}

// startServer serves db on a loopback TCP listener, closing everything
// at test end.
func startServer(t *testing.T, db *icdb.DB) (*Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{DB: db}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

// rawHandshake drives the client half of the handshake over a bare
// conn, for tests that speak frames by hand: preamble, server Hello,
// and (v2+) the auth Hello / Done exchange.
func rawHandshake(t *testing.T, conn net.Conn, version uint32, secret string) {
	t.Helper()
	if err := writePreamble(conn, version); err != nil {
		t.Fatal(err)
	}
	ft, payload, err := ReadFrame(conn)
	if err != nil || ft != FrameHello {
		t.Fatalf("handshake: frame %v err %v (payload %q)", ft, err, payload)
	}
	if got := doneCount(payload); got != int(version) {
		t.Fatalf("handshake: server answered version %d to a v%d client", got, version)
	}
	if version >= 2 {
		if err := WriteFrame(conn, FrameHello, []byte(secret)); err != nil {
			t.Fatal(err)
		}
		ft, payload, err := ReadFrame(conn)
		if err != nil || ft != FrameDone {
			t.Fatalf("auth: frame %v err %v (payload %q)", ft, err, payload)
		}
	}
}

func dialT(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func execLines(t *testing.T, c *Client, cmd string) []string {
	t.Helper()
	var lines []string
	n, err := c.Exec(cmd, func(line string) { lines = append(lines, line) })
	if err != nil {
		t.Fatalf("Exec(%q): %v", cmd, err)
	}
	if n != len(lines) {
		t.Fatalf("Exec(%q): count %d != %d delivered lines", cmd, n, len(lines))
	}
	return lines
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, []byte("x"), bytes.Repeat([]byte("abc"), 1000)}
	for i, p := range payloads {
		if err := WriteFrame(&buf, FrameType(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range payloads {
		ft, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if ft != FrameType(i+1) || !bytes.Equal(got, p) {
			t.Fatalf("frame %d: got type %s payload %d bytes", i, ft, len(got))
		}
	}
	if _, _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("after last frame: err = %v, want io.EOF", err)
	}
	// Oversized declared length is rejected without allocating it.
	bad := []byte{0xff, 0xff, 0xff, 0xff, byte(FrameRow)}
	if _, _, err := ReadFrame(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("oversized frame: err = %v", err)
	}
}

func TestHandshakeAndCommands(t *testing.T) {
	db := openDB(t)
	_, addr := startServer(t, db)
	c := dialT(t, addr)

	lines := execLines(t, c, "show impls")
	if len(lines) == 0 {
		t.Fatal("show impls returned no rows")
	}
	// A parse error comes back as a RemoteError with the column intact,
	// and the session survives it.
	_, err := c.Exec("find component exectuing STORAGE", nil)
	var re *RemoteError
	if !errors.As(err, &re) || !strings.Contains(re.Msg, "exectuing") {
		t.Fatalf("bad command: err = %v, want RemoteError mentioning the typo", err)
	}
	if got := execLines(t, c, "describe reg_d"); len(got) == 0 {
		t.Fatal("session dead after remote error")
	}
}

func TestHandshakeRejectsBadClients(t *testing.T) {
	db := openDB(t)
	_, addr := startServer(t, db)

	// Wrong magic: the server hangs up without a frame.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("GET / HTTP/1.1\r\n"))
	if _, err := conn.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("bad magic: read err = %v, want EOF", err)
	}

	// Right magic, wrong version: a versioned Error frame.
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	conn2.Write([]byte(Magic))
	conn2.Write([]byte{99, 0, 0, 0})
	ft, payload, err := ReadFrame(conn2)
	if err != nil || ft != FrameError {
		t.Fatalf("version 99: frame %s err %v, want Error", ft, err)
	}
	if !strings.Contains(string(payload), "version 99") {
		t.Fatalf("version 99 rejection text: %q", payload)
	}
}

// TestSessionIsolation interleaves two connections and checks that set
// width and weight overrides are confined to the session that set them.
func TestSessionIsolation(t *testing.T) {
	db := openDB(t)
	_, addr := startServer(t, db)
	c1 := dialT(t, addr)
	c2 := dialT(t, addr)

	execLines(t, c1, "set width 16")
	// c2 still sees the default session...
	sess2 := strings.Join(execLines(t, c2, "show session"), "\n")
	if !strings.Contains(sess2, "width:        off") {
		t.Fatalf("c2 session inherited c1's width:\n%s", sess2)
	}
	// ...and c1's implicit find equals c2's explicit at-width find.
	implicit := execLines(t, c1, "find component of type Counter order by area")
	explicit := execLines(t, c2, "find component of type Counter at width 16 order by area")
	if strings.Join(implicit, "\n") != strings.Join(explicit, "\n") {
		t.Fatalf("c1 (session width 16) != c2 (explicit at width 16):\n%v\nvs\n%v", implicit, explicit)
	}
	// c2's plain find stays scalar.
	scalar := execLines(t, c2, "find component of type Counter order by area")
	if strings.Join(scalar, "\n") == strings.Join(explicit, "\n") {
		t.Fatal("c2's plain find unexpectedly evaluated at width 16")
	}

	// Weight overrides are likewise per-session: c1 scores by delay
	// alone, c2 keeps the defaults.
	execLines(t, c1, "set area_weight 0")
	execLines(t, c1, "set width off")
	d1 := execLines(t, c1, "find component of type Counter order by cost limit 1")
	d2 := execLines(t, c2, "find component of type Counter order by cost limit 1")
	if len(d1) != 1 || len(d2) != 1 {
		t.Fatalf("limit 1 finds returned %d and %d rows", len(d1), len(d2))
	}
	if d1[0] == d2[0] {
		t.Fatalf("weight override leaked: both sessions rank %q first", d1[0])
	}
}

// TestServerStreamsBeforeDone checks rows arrive as Row frames before
// the Done frame and the Done count matches.
func TestServerStreamsBeforeDone(t *testing.T) {
	db := openDB(t)
	addImpls(t, db, 50)
	_, addr := startServer(t, db)
	c := dialT(t, addr)
	lines := execLines(t, c, "find component executing STORAGE")
	if len(lines) < 50 {
		t.Fatalf("find streamed %d rows, want >= 50", len(lines))
	}
}
