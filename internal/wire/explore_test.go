package wire

// End-to-end coverage of the design-space verbs over the wire. explore
// sweeps, pareto frontiers, and the explorations listing stream as
// ordinary Row frames through the per-session cql.Env, so the existing
// cancel and quota machinery applies to them unchanged — the latter two
// tests pin that down rather than assume it.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestExploreAndParetoOverWire drives a sweep and a frontier query
// through a TCP session and checks the streamed rows, including that
// the recorded space is database state visible to a second session.
func TestExploreAndParetoOverWire(t *testing.T) {
	db := openDB(t)
	_, addr := startServer(t, db)
	c := dialT(t, addr)

	lines := execLines(t, c, "explore gen_cnt width 4..16 step 4")
	if len(lines) != 5 {
		t.Fatalf("explore streamed %d rows: %q", len(lines), lines)
	}
	if !strings.HasPrefix(lines[0], "width   4: area 48 delay 2.25") {
		t.Errorf("explore row = %q", lines[0])
	}
	if lines[4] != "explored 4 design point(s) of gen_cnt" {
		t.Errorf("explore summary = %q", lines[4])
	}

	lines = execLines(t, c, "find pareto of generator gen_cnt dominated")
	if len(lines) != 4 {
		t.Fatalf("pareto streamed %d rows: %q", len(lines), lines)
	}
	if !strings.HasPrefix(lines[0], "1. gen_cnt[size=4]") {
		t.Errorf("frontier row = %q", lines[0])
	}
	if !strings.Contains(lines[1], "dominated by gen_cnt[size=4] (Δarea 48, Δdelay 0.25)") {
		t.Errorf("dominated row = %q", lines[1])
	}

	// Explorations are shared catalog state, not session state: a
	// second client sees the same recorded space.
	c2 := dialT(t, addr)
	if got := execLines(t, c2, "show explorations"); len(got) != 4 {
		t.Fatalf("second session lists %d explorations: %q", len(got), got)
	}
}

// TestParetoRowQuotaOverWire: a dominated-frontier stream crossing the
// session row quota is cut mid-stream with CodeQuota, exactly like an
// ordinary find.
func TestParetoRowQuotaOverWire(t *testing.T) {
	db := openDB(t)
	if _, err := db.Explore("gen_cnt", 1, 128, 1, nil, false); err != nil {
		t.Fatal(err)
	}
	srv, ln := startPipeServerOpts(t, db, func(s *Server) {
		s.Limits.MaxSessionRows = 10
	})
	c, err := NewClient(ln.dial(t))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rows, err := c.Exec("find pareto of generator gen_cnt dominated", nil)
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != CodeQuota {
		t.Fatalf("quota exec: err = %v, want RemoteError %s", err, CodeQuota)
	}
	if rows != 10 {
		t.Fatalf("received %d rows before the quota error, want 10", rows)
	}
	if srv.Stats().QuotaHits != 1 {
		t.Errorf("quota hits = %d, want 1", srv.Stats().QuotaHits)
	}
}

// TestParetoCancelMidStreamOverWire: context cancellation aborts an
// in-flight pareto stream with CodeCancelled and the session survives.
func TestParetoCancelMidStreamOverWire(t *testing.T) {
	db := openDB(t)
	if _, err := db.Explore("gen_cnt", 1, 128, 1, nil, false); err != nil {
		t.Fatal(err)
	}
	srv, ln := startPipeServerOpts(t, db, nil)
	c, err := NewClient(ln.dial(t))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows := 0
	_, err = c.ExecContext(ctx, "find pareto of generator gen_cnt dominated", func(string) {
		rows++
		if rows == 1 {
			// As in TestFaultExecContextCancel: hold the read loop on
			// the synchronous pipe until the Cancel frame has landed,
			// so the abort is deterministic.
			cancel()
			eventually(t, 5*time.Second, "cancel to land", func() bool {
				return srv.Stats().Cancels >= 1
			})
		}
	})
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != CodeCancelled {
		t.Fatalf("cancelled exec: err = %v, want RemoteError %s", err, CodeCancelled)
	}
	if rows >= 128 {
		t.Fatalf("cancel did not stop the stream (%d rows delivered)", rows)
	}
	if got := execLines(t, c, "show explorations"); len(got) != 128 {
		t.Fatalf("session dead or space corrupted after cancel: %d rows", len(got))
	}
}
