package wire

// Server liveness tests: a slow or vanished client must never block
// other sessions or corrupt the store. They run over net.Pipe — a
// synchronous, unbuffered transport — so "client stops reading" means
// the server's very next flush blocks, deterministically, without
// having to outgrow kernel socket buffers.

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"icdb/internal/icdb"
)

// pipeListener is an in-memory net.Listener handing out net.Pipe ends.
type pipeListener struct {
	ch   chan net.Conn
	done chan struct{}
	once sync.Once
}

func newPipeListener() *pipeListener {
	return &pipeListener{ch: make(chan net.Conn), done: make(chan struct{})}
}

func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *pipeListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }

func (l *pipeListener) Addr() net.Addr { return pipeAddr{} }

// dial hands the server one pipe end and returns the client end.
func (l *pipeListener) dial(t *testing.T) net.Conn {
	t.Helper()
	client, server := net.Pipe()
	select {
	case l.ch <- server:
	case <-time.After(5 * time.Second):
		t.Fatal("server did not accept the pipe connection")
	}
	return client
}

// startPipeServer serves db over an in-memory listener.
func startPipeServer(t *testing.T, db *icdb.DB) *pipeListener {
	t.Helper()
	ln := newPipeListener()
	srv := &Server{DB: db}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		<-done
	})
	return ln
}

// stallingClient opens a session and issues cmd, reads the first Row
// frame, then stops reading — on the synchronous pipe the server is now
// blocked in a Row flush until the client reads again or disconnects.
func stallingClient(t *testing.T, ln *pipeListener, cmd string) net.Conn {
	t.Helper()
	conn := ln.dial(t)
	rawHandshake(t, conn, Version, "")
	if err := WriteFrame(conn, FrameCommand, []byte(cmd)); err != nil {
		t.Fatal(err)
	}
	if ft, _, err := ReadFrame(conn); err != nil || ft != FrameRow {
		t.Fatalf("first row: frame %v err %v", ft, err)
	}
	return conn
}

// TestSlowClientDoesNotBlockOtherSessions is the tentpole's acceptance
// scenario: session A is mid-stream in an unbounded find and has
// stopped reading (server blocked writing to it); session B must still
// complete a write (generate) and a find of its own.
func TestSlowClientDoesNotBlockOtherSessions(t *testing.T) {
	db := openDB(t)
	addImpls(t, db, 200)
	ln := startPipeServer(t, db)

	stalled := stallingClient(t, ln, "find component executing STORAGE")
	defer stalled.Close()

	fast, err := NewClient(ln.dial(t))
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()
	type result struct {
		rows int
		err  error
	}
	res := make(chan result, 1)
	go func() {
		if _, err := fast.Exec("generate Counter size=24", nil); err != nil {
			res <- result{0, err}
			return
		}
		n, err := fast.Exec("find component of type Counter order by area limit 5", nil)
		res <- result{n, err}
	}()
	select {
	case r := <-res:
		if r.err != nil {
			t.Fatalf("fast session: %v", r.err)
		}
		if r.rows == 0 {
			t.Fatal("fast session find returned no rows")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("fast session blocked behind a stalled streaming client")
	}
}

// TestMidStreamDisconnectLeavesStoreConsistent hangs a client up in the
// middle of a streamed find and checks the server keeps serving and the
// store still answers queries with the same catalog as before.
func TestMidStreamDisconnectLeavesStoreConsistent(t *testing.T) {
	db := openDB(t)
	addImpls(t, db, 200)
	ln := startPipeServer(t, db)

	probe, err := NewClient(ln.dial(t))
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Close()
	before, err := probe.Exec("find component executing STORAGE", nil)
	if err != nil {
		t.Fatal(err)
	}

	stalled := stallingClient(t, ln, "find component executing STORAGE")
	stalled.Close() // vanish mid-stream

	c, err := NewClient(ln.dial(t))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	after, err := c.Exec("find component executing STORAGE", nil)
	if err != nil {
		t.Fatalf("find after disconnect: %v", err)
	}
	if after != before {
		t.Fatalf("catalog has %d STORAGE rows after mid-stream disconnect, want %d", after, before)
	}
	if _, err := c.Exec("generate Counter size=12", nil); err != nil {
		t.Fatalf("write after disconnect: %v", err)
	}
}

// TestConcurrentSessions runs several connections issuing mixed
// find/generate/set traffic concurrently; under -race this checks the
// per-connection sessions and the shared DB stay coherent.
func TestConcurrentSessions(t *testing.T) {
	db := openDB(t)
	addImpls(t, db, 60)
	_, addr := startServer(t, db)

	const clients = 8
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			defer c.Close()
			width := i%16 + 1
			if _, err := c.Exec(fmt.Sprintf("set width %d", width), nil); err != nil {
				t.Errorf("client %d set: %v", i, err)
				return
			}
			for round := 0; round < 10; round++ {
				if _, err := c.Exec("find component executing STORAGE order by cost limit 3", nil); err != nil {
					t.Errorf("client %d find: %v", i, err)
					return
				}
				if _, err := c.Exec(fmt.Sprintf("generate Counter size=%d", (i*10+round)%60+1), nil); err != nil {
					t.Errorf("client %d generate: %v", i, err)
					return
				}
				// The session width must have survived the round.
				var sess strings.Builder
				if _, err := c.Exec("show session", func(l string) { sess.WriteString(l + "\n") }); err != nil {
					t.Errorf("client %d show session: %v", i, err)
					return
				}
				want := fmt.Sprintf("width:        %d", width)
				if !strings.Contains(sess.String(), want) {
					t.Errorf("client %d: session width drifted, want %q in:\n%s", i, want, sess.String())
					return
				}
			}
		}(i)
	}
	wg.Wait()
}
