package wire

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"time"
)

// Client is one wire-protocol session. Exec is not safe for concurrent
// use — the protocol pipelines one command at a time per connection
// (open several clients for parallelism; each gets its own server-side
// session anyway) — but Cancel may be called from another goroutine
// while an Exec is in flight.
type Client struct {
	conn    net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	version uint32
	wmu     sync.Mutex // serializes frame writes (Exec vs Cancel)
}

// RemoteError is a command failure reported by the server (an Error
// frame): the command was delivered and rejected, as opposed to a
// transport failure. Code classifies it on protocol v2 sessions
// (CodeGeneric on v1). Retry helpers never retry a RemoteError.
type RemoteError struct {
	Code ErrCode
	Msg  string
}

func (e *RemoteError) Error() string { return e.Msg }

// Backoff is the retry policy for transport-level failures: attempt
// delays grow exponentially from Base up to Max, each with uniform
// jitter in [d/2, d) so a fleet of reconnecting clients does not
// stampede the server in lockstep.
type Backoff struct {
	// Attempts is the total number of tries; values below 1 mean a
	// single attempt (no retry).
	Attempts int
	// Base is the first retry's nominal delay (default 100ms).
	Base time.Duration
	// Max caps the nominal delay (default 5s).
	Max time.Duration
}

// delay computes the jittered sleep before retry number attempt
// (0-based).
func (b Backoff) delay(attempt int) time.Duration {
	base := b.Base
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := b.Max
	if max <= 0 {
		max = 5 * time.Second
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// Options configures a client connection beyond the address.
type Options struct {
	// Secret is the shared-secret auth token presented in the v2
	// handshake; leave empty for servers without -secret.
	Secret string
	// Version is the protocol version to announce (default
	// wire.Version). Set 1 to talk to pre-v2 servers; v1 sessions
	// cannot authenticate or cancel.
	Version uint32
	// DialTimeout bounds the TCP connect (default 10s).
	DialTimeout time.Duration
	// Retry is the dial retry policy for transport failures; the zero
	// value means a single attempt.
	Retry Backoff
}

// Dial connects to an icdbd server and completes the handshake with
// default options (no auth, no retry).
func Dial(addr string) (*Client, error) { return DialOptions(addr, Options{}) }

// DialOptions connects to an icdbd server, retrying transport failures
// per o.Retry with exponential backoff and jitter. A RemoteError — the
// server answered and rejected us (bad auth, connection limit, version)
// — is returned immediately, never retried; the one exception is a
// pre-v2 server rejecting our version, which is answered by a one-shot
// downgrade to protocol v1 when no secret is required.
func DialOptions(addr string, o Options) (*Client, error) {
	attempts := o.Retry.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(o.Retry.delay(i - 1))
		}
		c, err := dialOnce(addr, o)
		if err == nil {
			return c, nil
		}
		var re *RemoteError
		if errors.As(err, &re) {
			if o.Version == 0 && o.Secret == "" && strings.HasPrefix(re.Msg, "unsupported protocol version") {
				o2 := o
				o2.Version = 1
				return dialOnce(addr, o2)
			}
			return nil, err
		}
		lastErr = err
	}
	return nil, lastErr
}

func dialOnce(addr string, o Options) (*Client, error) {
	dt := o.DialTimeout
	if dt <= 0 {
		dt = 10 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, dt)
	if err != nil {
		return nil, err
	}
	c, err := NewClientOptions(conn, o)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// NewClient runs the client side of the handshake over an established
// connection with default options (for tests and custom transports);
// on success the client owns conn.
func NewClient(conn net.Conn) (*Client, error) { return NewClientOptions(conn, Options{}) }

// NewClientOptions runs the client side of the handshake over an
// established connection; on success the client owns conn.
func NewClientOptions(conn net.Conn, o Options) (*Client, error) {
	ver := o.Version
	if ver == 0 {
		ver = Version
	}
	if ver < 2 && o.Secret != "" {
		return nil, fmt.Errorf("wire: protocol v%d has no auth exchange; a secret needs v2", ver)
	}
	c := &Client{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
	if err := writePreamble(c.bw, ver); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	t, payload, err := ReadFrame(c.br)
	if err != nil {
		return nil, fmt.Errorf("wire: handshake: %w", err)
	}
	switch t {
	case FrameHello:
		v := doneCount(payload)
		if v < MinVersion || v > int(ver) {
			return nil, fmt.Errorf("wire: server speaks protocol version %d, client %d", v, ver)
		}
		c.version = uint32(v)
	case FrameError:
		// Pre-Hello handshake rejections are plain text in every
		// protocol version (the frozen handshake contract).
		return nil, &RemoteError{Code: CodeGeneric, Msg: string(payload)}
	default:
		return nil, fmt.Errorf("wire: handshake: unexpected %s frame", t)
	}
	if c.version >= 2 {
		// Auth exchange: send our token (possibly empty), wait for the
		// server's verdict.
		if err := c.writeFrame(FrameHello, []byte(o.Secret)); err != nil {
			return nil, err
		}
		t, payload, err := ReadFrame(c.br)
		if err != nil {
			return nil, fmt.Errorf("wire: handshake: %w", err)
		}
		switch t {
		case FrameDone:
		case FrameError:
			code, msg := decodeError(c.version, payload)
			return nil, &RemoteError{Code: code, Msg: msg}
		default:
			return nil, fmt.Errorf("wire: handshake: unexpected %s frame", t)
		}
	}
	return c, nil
}

// ProtocolVersion reports the negotiated session version.
func (c *Client) ProtocolVersion() uint32 { return c.version }

// writeFrame writes and flushes one frame under the write lock, so
// Cancel can interleave safely with an in-flight Exec.
func (c *Client) writeFrame(t FrameType, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := WriteFrame(c.bw, t, payload); err != nil {
		return err
	}
	return c.bw.Flush()
}

// Cancel asks the server to abort the in-flight command without
// dropping the connection; the command answers with a RemoteError of
// CodeCancelled (or completes normally if it won the race). Safe to
// call from another goroutine while Exec is reading the reply. Needs a
// v2 session.
func (c *Client) Cancel() error {
	if c.version < 2 {
		return fmt.Errorf("wire: server session speaks protocol v%d; Cancel needs v2", c.version)
	}
	return c.writeFrame(FrameCancel, nil)
}

// Exec sends one CQL command and streams the reply: onRow (if non-nil)
// receives each output line as it arrives, and the returned count is
// the number of rows the server sent. A *RemoteError is a server-side
// command failure; any other error is a transport failure, after which
// the client is unusable.
func (c *Client) Exec(cmd string, onRow func(line string)) (rows int, err error) {
	return c.ExecContext(context.Background(), cmd, onRow)
}

// ExecContext is Exec with cancellation: when ctx ends mid-command the
// client sends a Cancel frame and keeps reading until the server
// acknowledges (RemoteError CodeCancelled) or the command completes
// anyway — the session stays usable either way. On a v1 session there
// is no Cancel frame, so cancellation tears the connection down
// instead.
func (c *Client) ExecContext(ctx context.Context, cmd string, onRow func(line string)) (rows int, err error) {
	if err := c.writeFrame(FrameCommand, []byte(cmd)); err != nil {
		return 0, err
	}
	if done := ctx.Done(); done != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-done:
				if c.Cancel() != nil {
					// v1 (or dead) session: no cancel frame exists; the
					// only way to honor ctx is to abandon the connection.
					c.conn.SetReadDeadline(time.Now())
				}
			case <-stop:
			}
		}()
	}
	for {
		t, payload, err := ReadFrame(c.br)
		if err != nil {
			if ctx.Err() != nil {
				return rows, fmt.Errorf("wire: command abandoned: %w", ctx.Err())
			}
			return rows, fmt.Errorf("wire: reading reply: %w", err)
		}
		switch t {
		case FrameRow:
			rows++
			if onRow != nil {
				onRow(string(payload))
			}
		case FrameDone:
			if n := doneCount(payload); n != rows {
				return rows, fmt.Errorf("wire: server reports %d rows, received %d", n, rows)
			}
			return rows, nil
		case FrameError:
			code, msg := decodeError(c.version, payload)
			return rows, &RemoteError{Code: code, Msg: msg}
		default:
			return rows, fmt.Errorf("wire: unexpected %s frame in command reply", t)
		}
	}
}

// ExecRetry dials addr and runs one command as its own session,
// retrying transport failures (dial errors, dropped connections) with
// the backoff policy in o.Retry; a RemoteError is returned immediately,
// never retried. A command whose stream already delivered rows is not
// retried either, so onRow never sees duplicates. This is the one-shot
// client path ("icdbq connect -c", "icdbq cql -remote"); it must not
// be used for commands that depend on session state.
func ExecRetry(ctx context.Context, addr string, o Options, cmd string, onRow func(line string)) (int, error) {
	attempts := o.Retry.Attempts
	if attempts < 1 {
		attempts = 1
	}
	dialOpts := o
	dialOpts.Retry.Attempts = 1 // the outer loop owns retry pacing
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			select {
			case <-time.After(o.Retry.delay(i - 1)):
			case <-ctx.Done():
				return 0, ctx.Err()
			}
		}
		c, err := DialOptions(addr, dialOpts)
		if err != nil {
			var re *RemoteError
			if errors.As(err, &re) {
				return 0, err
			}
			lastErr = err
			continue
		}
		rows, err := c.ExecContext(ctx, cmd, onRow)
		c.Close()
		if err == nil {
			return rows, nil
		}
		var re *RemoteError
		if errors.As(err, &re) || rows > 0 || ctx.Err() != nil {
			return rows, err
		}
		lastErr = err
	}
	return 0, lastErr
}

// Close tears the connection down.
func (c *Client) Close() error { return c.conn.Close() }
