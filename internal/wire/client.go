package wire

import (
	"bufio"
	"fmt"
	"net"
)

// Client is one wire-protocol session. It is not safe for concurrent
// use: the protocol pipelines one command at a time per connection
// (open several clients for parallelism — each gets its own server-side
// session anyway).
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// RemoteError is a command failure reported by the server (an Error
// frame): the command was delivered and rejected, as opposed to a
// transport failure.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return e.Msg }

// Dial connects to an icdbd server and completes the handshake.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c, err := NewClient(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// NewClient runs the client side of the handshake over an established
// connection (for tests and custom transports); on success the client
// owns conn.
func NewClient(conn net.Conn) (*Client, error) {
	c := &Client{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
	if err := writePreamble(c.bw); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	t, payload, err := ReadFrame(c.br)
	if err != nil {
		return nil, fmt.Errorf("wire: handshake: %w", err)
	}
	switch t {
	case FrameHello:
		if v := doneCount(payload); v != Version {
			return nil, fmt.Errorf("wire: server speaks protocol version %d, client %d", v, Version)
		}
		return c, nil
	case FrameError:
		return nil, &RemoteError{Msg: string(payload)}
	}
	return nil, fmt.Errorf("wire: handshake: unexpected %s frame", t)
}

// Exec sends one CQL command and streams the reply: onRow (if non-nil)
// receives each output line as it arrives, and the returned count is
// the number of rows the server sent. A *RemoteError is a server-side
// command failure; any other error is a transport failure, after which
// the client is unusable.
func (c *Client) Exec(cmd string, onRow func(line string)) (rows int, err error) {
	if err := WriteFrame(c.bw, FrameCommand, []byte(cmd)); err != nil {
		return 0, err
	}
	if err := c.bw.Flush(); err != nil {
		return 0, err
	}
	for {
		t, payload, err := ReadFrame(c.br)
		if err != nil {
			return rows, fmt.Errorf("wire: reading reply: %w", err)
		}
		switch t {
		case FrameRow:
			rows++
			if onRow != nil {
				onRow(string(payload))
			}
		case FrameDone:
			if n := doneCount(payload); n != rows {
				return rows, fmt.Errorf("wire: server reports %d rows, received %d", n, rows)
			}
			return rows, nil
		case FrameError:
			return rows, &RemoteError{Msg: string(payload)}
		default:
			return rows, fmt.Errorf("wire: unexpected %s frame in command reply", t)
		}
	}
}

// Close tears the connection down.
func (c *Client) Close() error { return c.conn.Close() }
