package faultconn

import (
	"io"
	"net"
	"testing"
	"time"
)

// pipePair returns a faulted client end and the raw server end.
func pipePair(faults ...Fault) (*Conn, net.Conn) {
	client, server := net.Pipe()
	return New(client, faults...), server
}

// readAll pulls n bytes off conn, returning each underlying Read's
// size so tests can assert where writes were split. net.Pipe delivers
// one writer call per Read, so chunk boundaries mirror write boundaries.
func readChunks(t *testing.T, conn net.Conn, n int) (data []byte, chunks []int) {
	t.Helper()
	buf := make([]byte, n)
	for len(data) < n {
		m, err := conn.Read(buf)
		if m > 0 {
			data = append(data, buf[:m]...)
			chunks = append(chunks, m)
		}
		if err != nil {
			t.Fatalf("read after %d bytes: %v", len(data), err)
		}
	}
	return data, chunks
}

func TestChopSplitsWrite(t *testing.T) {
	fc, server := pipePair(Fault{Op: Write, At: 3, Kind: Chop})
	defer fc.Close()
	go func() {
		if n, err := fc.Write([]byte("abcdefghij")); err != nil || n != 10 {
			t.Errorf("write: n=%d err=%v", n, err)
		}
	}()
	data, chunks := readChunks(t, server, 10)
	if string(data) != "abcdefghij" {
		t.Fatalf("data = %q", data)
	}
	if len(chunks) != 2 || chunks[0] != 3 || chunks[1] != 7 {
		t.Fatalf("chunks = %v, want [3 7]", chunks)
	}
}

func TestCorruptFlipsOneByte(t *testing.T) {
	fc, server := pipePair(Fault{Op: Write, At: 2, Kind: Corrupt})
	defer fc.Close()
	go fc.Write([]byte("abcdef"))
	data, _ := readChunks(t, server, 6)
	want := []byte("abcdef")
	want[2] ^= 0xFF
	if string(data) != string(want) {
		t.Fatalf("data = %q, want %q", data, want)
	}
}

func TestResetMidWrite(t *testing.T) {
	fc, server := pipePair(Fault{Op: Write, At: 4, Kind: Reset})
	done := make(chan error, 1)
	go func() {
		_, err := fc.Write([]byte("abcdefghij"))
		done <- err
	}()
	data, _ := readChunks(t, server, 4)
	if string(data) != "abcd" {
		t.Fatalf("data = %q", data)
	}
	if err := <-done; err == nil {
		t.Fatal("write after reset: no error")
	}
	if _, err := server.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("peer read after reset: %v, want EOF", err)
	}
}

func TestReadFaults(t *testing.T) {
	client, server := net.Pipe()
	fc := New(server,
		Fault{Op: Read, At: 2, Kind: Chop},
		Fault{Op: Read, At: 5, Kind: Corrupt})
	defer fc.Close()
	go client.Write([]byte("abcdefgh"))
	buf := make([]byte, 8)
	if _, err := io.ReadFull(fc, buf); err != nil {
		t.Fatal(err)
	}
	want := []byte("abcdefgh")
	want[5] ^= 0xFF
	if string(buf) != string(want) {
		t.Fatalf("read %q, want %q", buf, want)
	}
}

func TestStallDelaysWrite(t *testing.T) {
	const delay = 30 * time.Millisecond
	fc, server := pipePair(Fault{Op: Write, At: 0, Kind: Stall, Delay: delay})
	defer fc.Close()
	start := time.Now()
	go fc.Write([]byte("xy"))
	readChunks(t, server, 2)
	if elapsed := time.Since(start); elapsed < delay {
		t.Fatalf("write landed after %v, want >= %v", elapsed, delay)
	}
}
