// Package faultconn wraps a net.Conn with scripted fault injection for
// deterministic transport-torture tests: short (split) writes, stalls,
// connection resets, and byte corruption, each fired at an exact byte
// offset of the read or write stream. The wire package's torture suite
// drives an icdbd server through every mid-frame failure a hostile or
// unlucky network can produce, without a flaky timing dependency in
// sight — a fault at write offset 3 always lands between the same two
// bytes of the same frame.
//
// Offsets are counted per direction from the start of the connection:
// fault {Op: Write, At: 3, Kind: Chop} forces the bytes up to offset 3
// into their own underlying Write call (over net.Pipe, a synchronous
// transport, the peer observes exactly that split as a short read).
// Faults are consumed in At order per direction, one-shot each.
package faultconn

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"
)

// Op selects which direction of the stream a fault applies to.
type Op uint8

// The two stream directions, counted independently.
const (
	// Read faults fire when the wrapped Read reaches the offset.
	Read Op = iota
	// Write faults fire when the wrapped Write reaches the offset.
	Write
)

func (o Op) String() string {
	if o == Read {
		return "read"
	}
	return "write"
}

// Kind is what happens when the stream reaches a fault's offset.
type Kind uint8

// The fault kinds.
const (
	// Chop splits the call at the offset: the bytes before it are
	// delivered in their own underlying call, so a peer on a
	// synchronous transport (net.Pipe) observes a short read exactly
	// there. A Chop never loses data and never returns an error.
	Chop Kind = iota
	// Stall sleeps the fault's Delay at the offset before proceeding.
	Stall
	// Corrupt XOR-flips the byte at the offset (0xFF) and carries on —
	// a single-bit-of-trust violation the framing must catch.
	Corrupt
	// Reset closes the underlying conn at the offset and fails the
	// call, emulating a peer that vanished mid-frame.
	Reset
)

func (k Kind) String() string {
	switch k {
	case Chop:
		return "chop"
	case Stall:
		return "stall"
	case Corrupt:
		return "corrupt"
	case Reset:
		return "reset"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Fault is one scripted event: at byte offset At of direction Op, do
// Kind (with Delay, for stalls).
type Fault struct {
	Op    Op
	At    int64
	Kind  Kind
	Delay time.Duration
}

// Conn wraps a net.Conn, firing the scripted faults as the byte
// streams pass their offsets. Safe for the usual net.Conn discipline
// (one reader, one writer, concurrent Close).
type Conn struct {
	net.Conn

	mu     sync.Mutex
	reads  []Fault // sorted by At, consumed front to back
	writes []Fault
	rdOff  int64
	wrOff  int64
}

// errReset is returned by a Reset fault; the peer sees the close.
type errReset struct{ op Op }

func (e errReset) Error() string { return fmt.Sprintf("faultconn: injected %s reset", e.op) }

// New wraps conn with the given fault script. Faults on the same
// direction fire in offset order regardless of the order given.
func New(conn net.Conn, faults ...Fault) *Conn {
	c := &Conn{Conn: conn}
	for _, f := range faults {
		if f.Op == Read {
			c.reads = append(c.reads, f)
		} else {
			c.writes = append(c.writes, f)
		}
	}
	sort.SliceStable(c.reads, func(i, j int) bool { return c.reads[i].At < c.reads[j].At })
	sort.SliceStable(c.writes, func(i, j int) bool { return c.writes[i].At < c.writes[j].At })
	return c
}

// nextWrite pops the front write fault if the window [wrOff,
// wrOff+n) reaches it.
func (c *Conn) nextWrite(n int) (Fault, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.writes) == 0 || c.writes[0].At > c.wrOff+int64(n) {
		return Fault{}, false
	}
	f := c.writes[0]
	if f.At <= c.wrOff {
		c.writes = c.writes[1:]
	}
	return f, true
}

func (c *Conn) Write(p []byte) (int, error) {
	total := 0
	for {
		f, ok := c.nextWrite(len(p))
		if !ok {
			if len(p) == 0 {
				return total, nil
			}
			n, err := c.Conn.Write(p)
			c.advance(Write, n)
			return total + n, err
		}
		if head := int(f.At - c.offset(Write)); head > 0 {
			// Deliver the bytes before the fault in their own call.
			n, err := c.Conn.Write(p[:head])
			c.advance(Write, n)
			total += n
			p = p[n:]
			if err != nil {
				return total, err
			}
			continue // the fault is now at the front of the stream
		}
		switch f.Kind {
		case Chop:
			// The split already happened by delivering the head alone.
		case Stall:
			time.Sleep(f.Delay)
		case Corrupt:
			if len(p) > 0 {
				b := p[0] ^ 0xFF
				n, err := c.Conn.Write([]byte{b})
				c.advance(Write, n)
				total += n
				p = p[n:]
				if err != nil {
					return total, err
				}
			}
		case Reset:
			c.Conn.Close()
			return total, errReset{Write}
		}
	}
}

// nextRead pops the front read fault if the stream position reached it.
func (c *Conn) nextRead() (Fault, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.reads) == 0 {
		return Fault{}, false
	}
	f := c.reads[0]
	if f.At <= c.rdOff {
		c.reads = c.reads[1:]
		return f, true
	}
	return f, false
}

func (c *Conn) Read(p []byte) (int, error) {
	for {
		f, due := c.nextRead()
		if due {
			switch f.Kind {
			case Chop:
				continue // a boundary, which reads produce naturally
			case Stall:
				time.Sleep(f.Delay)
				continue
			case Corrupt:
				one := make([]byte, 1)
				n, err := c.Conn.Read(one)
				c.advance(Read, n)
				if n == 1 {
					p[0] = one[0] ^ 0xFF
					return 1, err
				}
				return 0, err
			case Reset:
				c.Conn.Close()
				return 0, errReset{Read}
			}
		}
		// Never read past the next pending fault's offset, so the
		// fault fires exactly there on a later call.
		limit := len(p)
		if head := c.headroom(Read); head > 0 && int64(limit) > head {
			limit = int(head)
		}
		n, err := c.Conn.Read(p[:limit])
		c.advance(Read, n)
		return n, err
	}
}

// headroom reports how many bytes may pass before the next fault of
// the direction, or 0 when unbounded.
func (c *Conn) headroom(op Op) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if op == Read {
		if len(c.reads) == 0 {
			return 0
		}
		return c.reads[0].At - c.rdOff
	}
	if len(c.writes) == 0 {
		return 0
	}
	return c.writes[0].At - c.wrOff
}

// pending reports whether any fault remains for the direction.
func (c *Conn) pending(op Op) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if op == Read {
		return len(c.reads) > 0
	}
	return len(c.writes) > 0
}

// offset reports the direction's current stream position.
func (c *Conn) offset(op Op) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if op == Read {
		return c.rdOff
	}
	return c.wrOff
}

// advance moves the direction's stream position after an underlying
// call moved n bytes.
func (c *Conn) advance(op Op, n int) {
	if n <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if op == Read {
		c.rdOff += int64(n)
	} else {
		c.wrOff += int64(n)
	}
}
