package expand

// Pins for the C-integer instantiation of the shared evaluator
// (iif.EvalExpr via cEnv): the wrapper must keep every behavior
// expand.evalInt had before the unification — int truncation, the notC
// error class for out-of-domain constructs, mutation semantics, and the
// speculative-fold (noMutate) mode.

import (
	"strings"
	"testing"

	"icdb/internal/iif"
)

func testExpansion() *expansion {
	return &expansion{
		params: map[string]int{"size": 8},
		vars:   map[string]int{"i": 5},
	}
}

func evalSrc(t *testing.T, x *expansion, src string) (int, error) {
	t.Helper()
	e, err := iif.ParseExpr(src)
	if err != nil {
		t.Fatalf("ParseExpr(%q): %v", src, err)
	}
	return x.evalInt(e)
}

func TestEvalIntPinnedCSemantics(t *testing.T) {
	cases := []struct {
		src  string
		want int
	}{
		{"7/2", 3},         // int division truncates
		{"0-7/2", -3},      // toward zero
		{"7%2", 1},         // Go int remainder
		{"2 ** 10", 1024},  // integer power
		{"size * 2", 16},   // parameter lookup
		{"i + size", 13},   // vars and params together
		{"1 || 1/0", 1},    // short-circuit skips poisoned right side
		{"0 && 1/0", 0},    //
		{"size == 8", 1},   // comparisons yield 0/1
		{"!(size - 8)", 1}, //
	}
	for _, tc := range cases {
		x := testExpansion()
		got, err := evalSrc(t, x, tc.src)
		if err != nil || got != tc.want {
			t.Errorf("evalInt(%q) = %d, %v; want %d", tc.src, got, err, tc.want)
		}
	}
}

func TestEvalIntPinnedErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
		notC bool // expected to carry the notC marker (structural fallback)
	}{
		{"1/0", "division by zero", false},
		{"1%0", "modulo by zero", false},
		{"2 ** (0-1)", "negative exponent -1", false},
		{"(1+2)++", "++ needs a variable operand", false},
		{"bogus + 1", `"bogus" is not a parameter or variable`, true},
		{"~b 1", "operator ~b not valid in a C expression", true},
		{"1 ~d 2", "operator ~d not valid in a C expression", true},
		{"a ~a(1/b)", "expression is not a C expression", true},
	}
	for _, tc := range cases {
		x := testExpansion()
		_, err := evalSrc(t, x, tc.src)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("evalInt(%q) err = %v, want %q", tc.src, err, tc.want)
			continue
		}
		if got := isNotC(err); got != tc.notC {
			t.Errorf("evalInt(%q): isNotC = %v, want %v (err %v)", tc.src, got, tc.notC, err)
		}
	}
}

func TestEvalIntMutation(t *testing.T) {
	x := testExpansion()
	if v, err := evalSrc(t, x, "++i"); err != nil || v != 6 || x.vars["i"] != 6 {
		t.Fatalf("++i = %d, %v (i now %d); want 6, i=6", v, err, x.vars["i"])
	}
	if v, err := evalSrc(t, x, "i++"); err != nil || v != 6 || x.vars["i"] != 7 {
		t.Fatalf("i++ = %d, %v (i now %d); want 6, i=7", v, err, x.vars["i"])
	}
	if v, err := evalSrc(t, x, "i--"); err != nil || v != 7 || x.vars["i"] != 6 {
		t.Fatalf("i-- = %d, %v (i now %d); want 7, i=6", v, err, x.vars["i"])
	}
	// Parameters are immutable.
	if _, err := evalSrc(t, x, "size++"); err == nil ||
		!strings.Contains(err.Error(), `cannot assign to parameter "size"`) {
		t.Fatalf("size++ err = %v, want cannot assign to parameter", err)
	}
}

// TestEvalIntPureMode pins the speculative-fold behaviors: mutation is a
// notC rejection (so no side effect escapes a failed fold), and
// short-circuiting is disabled so a signal reference on either side of
// &&/|| forces the structural path regardless of parameter values.
func TestEvalIntPureMode(t *testing.T) {
	x := testExpansion()
	e, err := iif.ParseExpr("++i")
	if err != nil {
		t.Fatal(err)
	}
	_, perr := x.evalIntPure(e)
	if perr == nil || !strings.Contains(perr.Error(), "++ not valid in a signal expression") {
		t.Fatalf("pure ++i err = %v, want rejection", perr)
	}
	if !isNotC(perr) {
		t.Fatalf("pure ++i: rejection must carry the notC class, got %v", perr)
	}
	if x.vars["i"] != 5 {
		t.Fatalf("pure ++i mutated i to %d", x.vars["i"])
	}
	// "0 && Q" must NOT fold to 0 in pure mode: Q is a signal.
	e, err = iif.ParseExpr("0 && Q")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.evalIntPure(e); err == nil || !isNotC(err) {
		t.Fatalf("pure 0 && Q: err = %v, want notC fallback", err)
	}
	// But with short-circuiting on (normal mode), the same fold succeeds.
	if v, err := x.evalInt(e); err != nil || v != 0 {
		t.Fatalf("0 && Q in mutating mode = %d, %v; want 0 (short-circuit)", v, err)
	}
}
