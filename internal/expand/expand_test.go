package expand

import (
	"strings"
	"testing"

	"icdb/internal/eqn"
	"icdb/internal/genus"
	"icdb/internal/icdb"
	"icdb/internal/iif"
)

func mustParse(t *testing.T, src string) *iif.Design {
	t.Helper()
	d, err := iif.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func expandSrc(t *testing.T, src string, params map[string]int) (*eqn.Network, error) {
	t.Helper()
	return New(newDB(t)).Expand(mustParse(t, src), params)
}

func TestExpandImplRegister(t *testing.T) {
	db := newDB(t)
	net, err := New(db).ExpandImpl("reg_d", map[string]int{"size": 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	wantIn := []string{"D[0]", "D[1]", "load", "clk"}
	if strings.Join(net.Inputs, " ") != strings.Join(wantIn, " ") {
		t.Fatalf("inputs = %v, want %v", net.Inputs, wantIn)
	}
	ff, ok := net.Def("Q[0]").(eqn.FF)
	if !ok {
		t.Fatalf("Q[0] def = %T, want FF", net.Def("Q[0]"))
	}
	if ff.Edge != eqn.Rise {
		t.Errorf("edge = %v, want ~r", ff.Edge)
	}
	// D input: D[0]*load + Q[0]*!load.
	for _, tc := range []struct {
		d, load, q, want bool
	}{
		{true, true, false, true},
		{false, true, true, false},
		{true, false, false, false},
		{false, false, true, true},
	} {
		env := map[string]bool{"D[0]": tc.d, "load": tc.load, "Q[0]": tc.q}
		got, err := eqn.EvalComb(ff.D, env)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("reg D with %+v = %v, want %v", tc, got, tc.want)
		}
	}
	// Instance recorded for the direct expansion too.
	insts, err := db.Instances()
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 1 || insts[0].Impl != "reg_d" {
		t.Fatalf("instances = %+v", insts)
	}
}

func TestExpandControlConstructs(t *testing.T) {
	const src = `
NAME: ctrl;
PARAMETER: n;
VARIABLE: i, acc;
INORDER: A[n];
OUTORDER: O, P, R;
{
  /* aggregate OR over all bits, via #for with break/continue */
  #for(i = 0; i < n; i++) {
    #if (i == 2) #continue;
    #if (i >= 3) #break;
    O += A[i];
  }
  #c_line acc = 2 ** 3 + -1;
  #if (acc == 7 && n > 1) P = A[0] * A[1]; #else P = 0;
  R = A[n-1] (+) 1;
}
`
	net, err := expandSrc(t, src, map[string]int{"n": 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	// O aggregates bits 0 and 1 only (2 skipped by continue, 3 by break).
	or, ok := net.Def("O").(eqn.Or)
	if !ok || len(or.Xs) != 2 {
		t.Fatalf("O = %v, want 2-way OR", eqn.String(net.Def("O")))
	}
	if got := eqn.String(net.Def("P")); got != "A[0]*A[1]" {
		t.Errorf("P = %q", got)
	}
	// A[n-1] (+) 1 == not A[3].
	if got := eqn.String(net.Def("R")); got != "A[3]!=1" {
		t.Errorf("R = %q", got)
	}
}

func TestExpandHardwareOps(t *testing.T) {
	const src = `
NAME: hw;
INORDER: a, b, c, rst, clk;
OUTORDER: t, w, dly, bs, ff;
{
  t = a ~t b;
  w = a ~w b ~w c;
  dly = a ~d 5;
  bs = ~b (~s a);
  ff = (a (.) b) @ (~f clk) ~a (0/rst, 1/b*c);
}
`
	net, err := expandSrc(t, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, ok := net.Def("t").(eqn.Tristate); !ok {
		t.Errorf("t = %T", net.Def("t"))
	}
	if w, ok := net.Def("w").(eqn.WireOr); !ok || len(w.Xs) != 3 {
		t.Errorf("w = %v", net.Def("w"))
	}
	if d, ok := net.Def("dly").(eqn.DelayEl); !ok || d.NS != 5 {
		t.Errorf("dly = %v", net.Def("dly"))
	}
	if _, ok := net.Def("bs").(eqn.Buf); !ok {
		t.Errorf("bs = %T", net.Def("bs"))
	}
	ff, ok := net.Def("ff").(eqn.FF)
	if !ok || ff.Edge != eqn.Fall || len(ff.Async) != 2 {
		t.Fatalf("ff = %v", net.Def("ff"))
	}
	if ff.Async[0].Value || !ff.Async[1].Value {
		t.Errorf("async rule values = %v,%v", ff.Async[0].Value, ff.Async[1].Value)
	}
}

func TestExpandErrors(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		params map[string]int
		want   string
	}{
		{
			name: "unbound parameter",
			src:  "NAME: e; PARAMETER: size; INORDER: a; OUTORDER: o; { o = a; }",
			want: "unbound",
		},
		{
			name:   "unknown parameter",
			src:    "NAME: e; INORDER: a; OUTORDER: o; { o = a; }",
			params: map[string]int{"size": 4},
			want:   "no such parameter",
		},
		{
			name: "index out of range",
			src:  "NAME: e; INORDER: a[2]; OUTORDER: o; { o = a[2]; }",
			want: "out of range",
		},
		{
			name: "wrong index count",
			src:  "NAME: e; INORDER: a[2]; OUTORDER: o; { o = a; }",
			want: "referenced with 0",
		},
		{
			name: "duplicate definition",
			src:  "NAME: e; INORDER: a; OUTORDER: o; { o = a; o = !a; }",
			want: "defined twice",
		},
		{
			name: "assign to input",
			src:  "NAME: e; INORDER: a; OUTORDER: o; { a = 1; o = a; }",
			want: "cannot be assigned",
		},
		{
			name: "undeclared C variable",
			src:  "NAME: e; INORDER: a; OUTORDER: o; { #c_line i = 1; o = a; }",
			want: "undeclared variable",
		},
		{
			name:   "assign to parameter",
			src:    "NAME: e; PARAMETER: p; INORDER: a; OUTORDER: o; { #c_line p = 1; o = a; }",
			params: map[string]int{"p": 1},
			want:   "cannot assign to parameter",
		},
		{
			name: "edge op outside clock",
			src:  "NAME: e; INORDER: a; OUTORDER: o; { o = ~r a; }",
			want: "clock specification",
		},
		{
			name: "missing edge in clock",
			src:  "NAME: e; INORDER: a, clk; OUTORDER: o; { o = a @ clk; }",
			want: "edge specification",
		},
		{
			name: "async on comb",
			src:  "NAME: e; INORDER: a, r; OUTORDER: o; { o = a ~a (0/r); }",
			want: "~a applies",
		},
		{
			name: "division by zero",
			src:  "NAME: e; VARIABLE: i; INORDER: a; OUTORDER: o; { #c_line i = 4/0; o = a; }",
			want: "division by zero",
		},
		{
			name: "signal/variable collision",
			src:  "NAME: e; VARIABLE: a; INORDER: a; OUTORDER: o; { o = 1; }",
			want: "collides",
		},
		{
			name: "mutating declaration dimension",
			src:  "NAME: e; VARIABLE: i; INORDER: a[++i]; OUTORDER: o; { o = 1; }",
			want: "not valid in a signal expression",
		},
		{
			name: "reserved prefix declaration",
			src:  "NAME: e; INORDER: a; OUTORDER: o; PIIFVARIABLE: u0_x; { o = a; }",
			want: "reserved instance-prefix",
		},
		{
			name: "reserved prefix reference",
			src:  "NAME: e; INORDER: a; OUTORDER: o; { u7_t = a; o = a; }",
			want: "reserved instance-prefix",
		},
		{
			name: "unresolvable call",
			src:  "NAME: e; INORDER: a; OUTORDER: o; { #frobnicator(a, o); o = a; }",
			want: "resolves to no implementation",
		},
		{
			name: "call arg count",
			src:  "NAME: e; INORDER: a, b; OUTORDER: o; { #logic_and(2, a, b, o); }",
			want: "argument",
		},
		{
			name: "call output not a signal",
			src:  "NAME: e; INORDER: a, b; OUTORDER: o; { #logic_and(1, a, b, !o); o = a; }",
			want: "must connect to a signal",
		},
		{
			name: "call width out of range",
			src:  "NAME: e; INORDER: a, b; OUTORDER: o; { #logic_and(99, a, b, o); }",
			want: "width range",
		},
		{
			name: "infinite for",
			src:  "NAME: e; VARIABLE: i; INORDER: a; OUTORDER: o; { #for(i = 0; 1; i) #c_line i = 0; o = a; }",
			want: "iterations",
		},
		{
			name:   "bad dimension",
			src:    "NAME: e; PARAMETER: n; INORDER: a[n]; OUTORDER: o; { o = 1; }",
			params: map[string]int{"n": 0},
			want:   "dimension",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			params := tc.params
			_, err := expandSrc(t, tc.src, params)
			if err == nil {
				t.Fatalf("expand succeeded, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestExpandImplCached: repeated ExpandImpl calls share the template
// cache with the #call path, and each caller gets an independent clone.
func TestExpandImplCached(t *testing.T) {
	db := newDB(t)
	ex := New(db)
	n1, err := ex.ExpandImpl("reg_d", map[string]int{"size": 2})
	if err != nil {
		t.Fatal(err)
	}
	n2, err := ex.ExpandImpl("reg_d", map[string]int{"size": 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := n1.ReplaceDef("Q[0]", eqn.Const{V: true}); err != nil {
		t.Fatal(err)
	}
	if _, mutated := n2.Def("Q[0]").(eqn.Const); mutated {
		t.Error("cached template leaked between ExpandImpl callers")
	}
	insts, err := db.Instances()
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 1 || insts[0].Uses != 2 {
		t.Fatalf("instances = %+v, want one row used 2x", insts)
	}
}

// TestFailedCallRecordsNoInstance: a call that errors after resolution
// (here: wrong argument count) must not leave a row in the instances
// relation, or reuse accounting would lie.
func TestFailedCallRecordsNoInstance(t *testing.T) {
	db := newDB(t)
	_, err := New(db).Expand(mustParse(t,
		"NAME: e; INORDER: a, b; OUTORDER: o; { #logic_and(2, a, b, o); }"), nil)
	if err == nil {
		t.Fatal("bad call expanded")
	}
	insts, err := db.Instances()
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 0 {
		t.Fatalf("failed call recorded instances: %+v", insts)
	}
}

// TestFoldRejectsMutation: ++/-- must not leak variable mutations out of
// any signal-context evaluation — folds, indices, ~d counts, ~a values.
func TestFoldRejectsMutation(t *testing.T) {
	for _, src := range []string{
		"NAME: e; VARIABLE: i; INORDER: a; OUTORDER: o; { o = i++; }",
		"NAME: e; VARIABLE: i; INORDER: a[2]; OUTORDER: o; { o = a[i++]; }",
		"NAME: e; VARIABLE: i; INORDER: a; OUTORDER: o; { o = a ~d i++; }",
		"NAME: e; VARIABLE: i; INORDER: a, r, clk; OUTORDER: o; { o = a @ (~r clk) ~a (i++/r); }",
	} {
		_, err := expandSrc(t, src, nil)
		if err == nil || !strings.Contains(err.Error(), "not valid in a signal expression") {
			t.Fatalf("%s: err = %v, want mutation rejection", src, err)
		}
	}
}

// TestFailedCallWithBadPortRecordsNoInstance: a call whose argument
// count is right but whose port expressions are invalid must also leave
// the instances relation untouched.
func TestFailedCallWithBadPortRecordsNoInstance(t *testing.T) {
	db := newDB(t)
	for _, src := range []string{
		// input references an out-of-range bit
		"NAME: e; INORDER: a[1], b; OUTORDER: o; { #logic_and(1, a[5], b, o); }",
		// output is an expression, not a signal
		"NAME: e; INORDER: a, b; OUTORDER: o; { #logic_and(1, a, b, !o); o = a; }",
		// output signal already driven
		"NAME: e; INORDER: a, b; OUTORDER: o; { o = a; #logic_and(1, a, b, o); }",
		// two outputs of one call wired to the same signal
		"NAME: e; INORDER: a0, a1, b0, b1; OUTORDER: x; { #logic_and(2, a0, a1, b0, b1, x, x); }",
	} {
		_, err := New(db).Expand(mustParse(t, src), nil)
		if err == nil {
			t.Fatalf("%s: expanded", src)
		}
		insts, ierr := db.Instances()
		if ierr != nil {
			t.Fatal(ierr)
		}
		if len(insts) != 0 {
			t.Fatalf("%s: failed call recorded instances %+v", src, insts)
		}
	}
}

// TestNestedInstanceAccounting: when a template containing a
// subcomponent is served from the cache, the nested implementation's
// use count must still reflect every structural copy spliced.
func TestNestedInstanceAccounting(t *testing.T) {
	db := newDB(t)
	err := db.RegisterImpl(icdb.Impl{
		Name:      "wrap_reg",
		Component: "Register",
		Functions: reg2Functions(),
		WidthMin:  2, WidthMax: 2, Stages: 1,
		Area: 13, Delay: 2,
		Source: "NAME: wrap_reg; INORDER: D[2], load, clk; OUTORDER: Q[2];\n" +
			"{ #reg_d(2, D[0], D[1], load, clk, Q[0], Q[1]); }",
	})
	if err != nil {
		t.Fatal(err)
	}
	const src = `
NAME: t; INORDER: D[2], load, clk; OUTORDER: X[2], Y[2];
{
  #wrap_reg(D[0], D[1], load, clk, X[0], X[1]);
  #wrap_reg(D[0], D[1], load, clk, Y[0], Y[1]);
}
`
	net, err := New(db).Expand(mustParse(t, src), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	uses := map[string]int{}
	insts, err := db.Instances()
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range insts {
		uses[in.Impl] = in.Uses
	}
	if uses["wrap_reg"] != 2 || uses["reg_d"] != 2 {
		t.Fatalf("uses = %v, want wrap_reg:2 reg_d:2", uses)
	}

	// A failed call to the wrapper (missing one port argument) must not
	// record anything — not the wrapper, and not its nested register.
	before := len(insts)
	_, err = New(db).Expand(mustParse(t,
		"NAME: t2; INORDER: D[2], load, clk; OUTORDER: X[2];\n"+
			"{ #wrap_reg(D[0], D[1], load, clk, X[0]); }"), nil)
	if err == nil {
		t.Fatal("short call expanded")
	}
	insts, err = db.Instances()
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != before {
		t.Fatalf("failed wrapper call changed instances: %+v", insts)
	}
	for _, in := range insts {
		if in.Uses != uses[in.Impl] {
			t.Errorf("failed call bumped %s uses to %d", in.Impl, in.Uses)
		}
	}
}

func reg2Functions() []genus.Function {
	return []genus.Function{genus.FuncSTORAGE}
}

// TestSignalExprValidityIsValueIndependent: a C-only operator over a
// signal must be rejected regardless of the parameter values involved
// (short-circuiting must not hide the signal reference).
func TestSignalExprValidityIsValueIndependent(t *testing.T) {
	const src = "NAME: e; PARAMETER: size; INORDER: en; OUTORDER: o; { o = size || en; }"
	for _, sz := range []int{0, 4} {
		_, err := expandSrc(t, src, map[string]int{"size": sz})
		if err == nil || !strings.Contains(err.Error(), "not valid in a signal expression") {
			t.Fatalf("size=%d: err = %v, want operator rejection", sz, err)
		}
	}
	// Pure-C folds (no signal references) still work.
	net, err := expandSrc(t,
		"NAME: e; PARAMETER: size; INORDER: a; OUTORDER: o; { o = a * (size > 2); }",
		map[string]int{"size": 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := eqn.String(net.Def("o")); got != "a*1" {
		t.Errorf("o = %q", got)
	}
	// A genuine arithmetic error inside a pure subexpression surfaces as
	// itself, not as a misleading "operator not valid" message.
	_, err = expandSrc(t,
		"NAME: e; PARAMETER: size; INORDER: en; OUTORDER: o; { o = en + 4/(size-1); }",
		map[string]int{"size": 1})
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("err = %v, want division by zero", err)
	}
}

// TestExpandImplWidthRange: the direct API path enforces the same width
// metadata as the #call path.
func TestExpandImplWidthRange(t *testing.T) {
	_, err := New(newDB(t)).ExpandImpl("reg_d", map[string]int{"size": 128})
	if err == nil || !strings.Contains(err.Error(), "width range") {
		t.Fatalf("err = %v, want width range rejection", err)
	}
}

// TestExpandResolveByFunction exercises the query-by-function resolution
// path: "#and(...)" names a GENUS function, not an implementation or
// component type.
func TestExpandResolveByFunction(t *testing.T) {
	const src = `
NAME: byfn;
INORDER: a, b;
OUTORDER: o;
{
  #AND(1, a, b, o);
}
`
	db := newDB(t)
	net, err := New(db).Expand(mustParse(t, src), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	insts, err := db.Instances()
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 1 || insts[0].Impl != "logic_and" {
		t.Fatalf("instances = %+v, want logic_and", insts)
	}
	env := map[string]bool{"a": true, "b": true}
	order, err := net.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	for _, eq := range order {
		v, err := eqn.EvalComb(eq.RHS, env)
		if err != nil {
			t.Fatal(err)
		}
		env[eq.LHS] = v
	}
	if !env["o"] {
		t.Error("1 AND 1 = 0")
	}
}

// TestExpandNestedComponents checks recursive expansion: a design whose
// subcomponent is itself expressed in terms of another database lookup
// would nest; here we verify the depth guard instead with a
// self-referential library entry.
func TestExpandDepthGuard(t *testing.T) {
	db := newDB(t)
	ex := New(db)
	ex.MaxDepth = 0
	_, err := ex.Expand(mustParse(t, `
NAME: deep;
INORDER: a, b;
OUTORDER: o;
{
  #logic_and(1, a, b, o);
}
`), nil)
	if err == nil || !strings.Contains(err.Error(), "nesting") {
		t.Fatalf("err = %v, want nesting guard", err)
	}
}

func TestExpandAdder(t *testing.T) {
	db := newDB(t)
	net, err := New(db).ExpandImpl("add_ripple", map[string]int{"size": 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	order, err := net.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	// 4-bit adder: exhaustively check a handful of sums via EvalComb.
	addEval := func(a, b, cin int) (sum int) {
		env := map[string]bool{"cin": cin != 0}
		for i := 0; i < 4; i++ {
			env[fmtName("A", i)] = a&(1<<i) != 0
			env[fmtName("B", i)] = b&(1<<i) != 0
		}
		for _, eq := range order {
			v, err := eqn.EvalComb(eq.RHS, env)
			if err != nil {
				t.Fatal(err)
			}
			env[eq.LHS] = v
		}
		for i := 0; i < 4; i++ {
			if env[fmtName("S", i)] {
				sum |= 1 << i
			}
		}
		if env["cout"] {
			sum |= 1 << 4
		}
		return sum
	}
	for _, tc := range [][4]int{{3, 5, 0, 8}, {15, 1, 0, 16}, {7, 7, 1, 15}, {0, 0, 0, 0}, {15, 15, 1, 31}} {
		if got := addEval(tc[0], tc[1], tc[2]); got != tc[3] {
			t.Errorf("%d + %d + %d = %d, want %d", tc[0], tc[1], tc[2], got, tc[3])
		}
	}
}

func fmtName(base string, i int) string {
	return base + "[" + string(rune('0'+i)) + "]"
}
