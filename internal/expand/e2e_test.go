package expand

import (
	"fmt"
	"testing"

	"icdb/internal/eqn"
	"icdb/internal/icdb"
	"icdb/internal/iif"
	"icdb/internal/relstore"
)

func newDB(t *testing.T) *icdb.DB {
	t.Helper()
	db, err := icdb.Open(relstore.New())
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// sim is a tiny synchronous simulator over a flat network: all flip-flops
// are treated as sharing one clock event per Tick.
type sim struct {
	t     *testing.T
	net   *eqn.Network
	order []eqn.Equation
	state map[string]bool
}

func newSim(t *testing.T, net *eqn.Network) *sim {
	t.Helper()
	order, err := net.TopoOrder()
	if err != nil {
		t.Fatalf("TopoOrder: %v", err)
	}
	return &sim{t: t, net: net, order: order, state: make(map[string]bool)}
}

// settle computes every combinational signal from inputs and the current
// flip-flop state.
func (s *sim) settle(inputs map[string]bool) map[string]bool {
	s.t.Helper()
	env := make(map[string]bool, len(inputs))
	for k, v := range inputs {
		env[k] = v
	}
	for _, eq := range s.order {
		if _, isFF := eq.RHS.(eqn.FF); isFF {
			env[eq.LHS] = s.state[eq.LHS]
			continue
		}
		v, err := eqn.EvalComb(eq.RHS, env)
		if err != nil {
			s.t.Fatalf("eval %s: %v", eq.LHS, err)
		}
		env[eq.LHS] = v
	}
	return env
}

// Tick applies one clock event and returns the post-edge signal values.
func (s *sim) Tick(inputs map[string]bool) map[string]bool {
	s.t.Helper()
	env := s.settle(inputs)
	next := make(map[string]bool)
	for _, eq := range s.order {
		ff, isFF := eq.RHS.(eqn.FF)
		if !isFF {
			continue
		}
		d, err := eqn.EvalComb(ff.D, env)
		if err != nil {
			s.t.Fatalf("eval D of %s: %v", eq.LHS, err)
		}
		for _, rule := range ff.Async {
			cond, err := eqn.EvalComb(rule.Cond, env)
			if err != nil {
				s.t.Fatalf("eval async of %s: %v", eq.LHS, err)
			}
			if cond {
				d = rule.Value
				break
			}
		}
		next[eq.LHS] = d
	}
	for k, v := range next {
		s.state[k] = v
	}
	return s.settle(inputs)
}

func qValue(t *testing.T, env map[string]bool, width int) int {
	t.Helper()
	v := 0
	for i := 0; i < width; i++ {
		if env[fmt.Sprintf("Q[%d]", i)] {
			v |= 1 << i
		}
	}
	return v
}

const topCounter = `
NAME: top;
INORDER: D[4], load, en, clk;
OUTORDER: Q[4];
SUBCOMPONENT: counter;
{
  #counter(4, D[0], D[1], D[2], D[3], load, en, clk, Q[0], Q[1], Q[2], Q[3]);
}
`

// TestEndToEndCounter is the acceptance path: parse an IIF design that
// references a counter, resolve it through the database by component
// type (which queries by function under the hood), expand to a flat
// network, validate and order it, and check counting/loading behavior by
// evaluating the equations.
func TestEndToEndCounter(t *testing.T) {
	db := newDB(t)
	d, err := iif.Parse(topCounter)
	if err != nil {
		t.Fatal(err)
	}
	ex := New(db)
	net, err := ex.Expand(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if _, err := net.TopoOrder(); err != nil {
		t.Fatalf("TopoOrder: %v", err)
	}
	if len(net.Inputs) != 7 || len(net.Outputs) != 4 {
		t.Fatalf("I/O = %v / %v", net.Inputs, net.Outputs)
	}

	// The counter resolution must have picked the best-ranked Counter
	// implementation (cnt_up: cost 14 beats cnt_ripple: cost 16).
	insts, err := db.Instances()
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 1 || insts[0].Impl != "cnt_up" || insts[0].Bindings["size"] != 4 {
		t.Fatalf("instances = %+v, want one cnt_up size=4", insts)
	}

	// Direct EvalComb assertion on an output's next-state function:
	// Q[0] aliases u0_Q[0], whose flip-flop D input is u0_n[0] with
	// n[0] = (Q[0] xor en)*!load + D[0]*load.
	if v, ok := net.Def("Q[0]").(eqn.Var); !ok || v.Name != "u0_Q[0]" {
		t.Fatalf("Def(Q[0]) = %v", net.Def("Q[0]"))
	}
	ff, ok := net.Def("u0_Q[0]").(eqn.FF)
	if !ok {
		t.Fatalf("u0_Q[0] is not a flip-flop: %T", net.Def("u0_Q[0]"))
	}
	nextBit0 := net.Def("u0_n[0]")
	if nextBit0 == nil {
		t.Fatal("no equation for u0_n[0]")
	}
	if dv, ok := ff.D.(eqn.Var); !ok || dv.Name != "u0_n[0]" {
		t.Fatalf("FF D = %v", ff.D)
	}
	for _, tc := range []struct {
		q0, en, load, d0, want bool
	}{
		{false, true, false, false, true}, // counting: 0 -> 1
		{true, true, false, false, false}, // counting: bit toggles
		{true, false, false, false, true}, // hold
		{false, false, true, true, true},  // load D
		{true, true, true, false, false},  // load overrides count
	} {
		env := map[string]bool{
			"u0_Q[0]": tc.q0, "u0_c[0]": tc.en, "u0_load": tc.load, "u0_D[0]": tc.d0,
		}
		got, err := eqn.EvalComb(nextBit0, env)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("next Q[0] with %+v = %v, want %v", tc, got, tc.want)
		}
	}

	// Sequential behavior: count three times, then parallel-load 5, then
	// count once more.
	s := newSim(t, net)
	in := func(d int, load, en bool) map[string]bool {
		m := map[string]bool{"load": load, "en": en, "clk": false}
		for i := 0; i < 4; i++ {
			m[fmt.Sprintf("D[%d]", i)] = d&(1<<i) != 0
		}
		return m
	}
	for i := 1; i <= 3; i++ {
		env := s.Tick(in(0, false, true))
		if got := qValue(t, env, 4); got != i {
			t.Fatalf("after %d tick(s): Q = %d, want %d", i, got, i)
		}
	}
	if got := qValue(t, s.Tick(in(5, true, true)), 4); got != 5 {
		t.Fatalf("after load: Q = %d, want 5", got)
	}
	if got := qValue(t, s.Tick(in(0, false, true)), 4); got != 6 {
		t.Fatalf("after count: Q = %d, want 6", got)
	}
	if got := qValue(t, s.Tick(in(0, false, false)), 4); got != 6 {
		t.Fatalf("after idle: Q = %d, want 6", got)
	}
}

// TestInstanceReuse verifies the instance-manager path: expanding the
// same design twice reuses the recorded instance (and the cached
// template) instead of creating a second row.
func TestInstanceReuse(t *testing.T) {
	db := newDB(t)
	d, err := iif.Parse(topCounter)
	if err != nil {
		t.Fatal(err)
	}
	ex := New(db)
	if _, err := ex.Expand(d, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Expand(d, nil); err != nil {
		t.Fatal(err)
	}
	insts, err := db.Instances()
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 1 {
		t.Fatalf("got %d instance rows, want 1 (reused)", len(insts))
	}
	if insts[0].Uses != 2 {
		t.Errorf("uses = %d, want 2", insts[0].Uses)
	}
	if insts[0].Design != "top" {
		t.Errorf("design = %q, want top", insts[0].Design)
	}
}
