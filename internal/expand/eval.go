package expand

import (
	"errors"

	"icdb/internal/eqn"
	"icdb/internal/iif"
)

// ---- C (integer) expression evaluation ----

// notCError marks "this expression is not a pure C expression" failures
// (signal references, hardware operators, mutation in pure context).
// Speculative folds fall through to structural signal evaluation on such
// errors, while genuine evaluation errors (division by zero, negative
// exponent) propagate to the user.
type notCError struct{ err error }

func (e notCError) Error() string { return e.err.Error() }
func (e notCError) Unwrap() error { return e.err }

func notC(pos iif.Pos, format string, args ...any) error {
	return notCError{err: iif.Errf(pos, format, args...)}
}

func isNotC(err error) bool {
	var n notCError
	return errors.As(err, &n)
}

// lookupInt resolves a name in C context: variables shadow parameters.
func (x *expansion) lookupInt(r *iif.Ref) (int, error) {
	if len(r.Index) != 0 {
		return 0, notC(r.Pos, "%q is not a C variable (indexed reference)", r.Name)
	}
	if v, ok := x.vars[r.Name]; ok {
		return v, nil
	}
	if v, ok := x.params[r.Name]; ok {
		return v, nil
	}
	return 0, notC(r.Pos, "%q is not a parameter or variable", r.Name)
}

// cEnv adapts an expansion to iif.EvalEnv[int], binding the generic
// evaluation core (iif.EvalExpr) to C-integer semantics: variables
// shadow parameters, ++/-- mutate (outside speculative folds), hardware
// operators are "not a C expression" (the notC error class speculative
// folds fall through on). It is a pointer view of the expansion itself —
// (*cEnv)(x) — so building one allocates nothing.
type cEnv expansion

func (c *cEnv) expn() *expansion { return (*expansion)(c) }

func (c *cEnv) Lookup(r *iif.Ref) (int, error) { return c.expn().lookupInt(r) }

func (c *cEnv) Mutate(pos iif.Pos, op iif.UnaryOp, operand iif.Expr) (int, error) {
	x := c.expn()
	if x.noMutate {
		return 0, notC(pos, "%s not valid in a signal expression", op)
	}
	r, ok := operand.(*iif.Ref)
	if !ok {
		return 0, iif.Errf(pos, "%s needs a variable operand", op)
	}
	cur, err := x.lookupInt(r)
	if err != nil {
		return 0, err
	}
	delta := 1
	if op == iif.UPreDec || op == iif.UPostDec {
		delta = -1
	}
	if err := x.setVar(r, cur+delta); err != nil {
		return 0, err
	}
	if op == iif.UPostInc || op == iif.UPostDec {
		return cur, nil
	}
	return cur + delta, nil
}

func (c *cEnv) BadUnary(pos iif.Pos, op iif.UnaryOp) error {
	return notC(pos, "operator %s not valid in a C expression", op)
}

func (c *cEnv) BadBinary(pos iif.Pos, op iif.BinaryOp) error {
	return notC(pos, "operator %s not valid in a C expression", op)
}

func (c *cEnv) BadExpr(e iif.Expr) error {
	return notC(iif.ExprPos(e), "expression is not a C expression")
}

// ShortCircuit is off during speculative folds — see iif.EvalEnv.
func (c *cEnv) ShortCircuit() bool { return !c.noMutate }

// evalInt evaluates e with C semantics: '+' adds, '*' multiplies,
// comparisons yield 0/1, and ++/-- mutate variables.
func (x *expansion) evalInt(e iif.Expr) (int, error) {
	return iif.EvalExpr[int](e, (*cEnv)(x))
}

// ---- signal (boolean) expression evaluation ----

// tryInt attempts a pure-C evaluation of e. Mutating operators (++/--)
// are rejected in this mode so no side effect can escape a failed or
// speculative fold. A non-nil error is a genuine evaluation failure
// (e.g. division by zero in a pure subexpression) that must reach the
// user; ok=false with a nil error means "not a C expression, evaluate
// structurally".
func (x *expansion) tryInt(e iif.Expr) (v int, ok bool, err error) {
	v, err = x.evalIntPure(e)
	if err == nil {
		return v, true, nil
	}
	if isNotC(err) {
		return 0, false, nil
	}
	return 0, false, err
}

// evalIntPure evaluates e with C semantics but rejects ++/--: used
// wherever an integer is needed inside a signal context (indices, ~d
// counts, ~a values), where a mutation would silently corrupt loop
// variables.
func (x *expansion) evalIntPure(e iif.Expr) (int, error) {
	saved := x.noMutate
	x.noMutate = true
	v, err := x.evalInt(e)
	x.noMutate = saved
	return v, err
}

// evalBool evaluates e as a signal expression, producing an equation
// node. Pure C subexpressions (e.g. "size > 4") constant-fold.
func (x *expansion) evalBool(e iif.Expr) (eqn.Node, error) {
	v, ok, err := x.tryInt(e)
	if err != nil {
		return nil, err
	}
	if ok {
		return eqn.Const{V: v != 0}, nil
	}
	switch v := e.(type) {
	case *iif.Ref:
		name, err := x.scalarName(v)
		if err != nil {
			return nil, err
		}
		return eqn.Var{Name: name}, nil

	case *iif.IntLit:
		// Unreachable (folded above); kept for safety.
		return eqn.Const{V: v.V != 0}, nil

	case *iif.Unary:
		switch v.Op {
		case iif.UNot, iif.UBuf, iif.USchmitt:
			inner, err := x.evalBool(v.X)
			if err != nil {
				return nil, err
			}
			switch v.Op {
			case iif.UNot:
				return eqn.Not{X: inner}, nil
			case iif.UBuf:
				return eqn.Buf{X: inner}, nil
			default:
				return eqn.Schmitt{X: inner}, nil
			}
		case iif.URise, iif.UFall, iif.UHigh, iif.ULow:
			return nil, iif.Errf(v.Pos, "edge operator %s is only valid in a clock specification after @", v.Op)
		}
		return nil, iif.Errf(v.Pos, "operator %s not valid in a signal expression", v.Op)

	case *iif.Binary:
		switch v.Op {
		case iif.BOr, iif.BAnd, iif.BXor, iif.BXnor, iif.BTri, iif.BWireOr:
			l, err := x.evalBool(v.X)
			if err != nil {
				return nil, err
			}
			r, err := x.evalBool(v.Y)
			if err != nil {
				return nil, err
			}
			switch v.Op {
			case iif.BOr:
				return orNode(l, r), nil
			case iif.BAnd:
				return andNode(l, r), nil
			case iif.BXor:
				return eqn.Xor{X: l, Y: r}, nil
			case iif.BXnor:
				return eqn.Xnor{X: l, Y: r}, nil
			case iif.BTri:
				return eqn.Tristate{X: l, Ctrl: r}, nil
			default:
				return wireOrNode(l, r), nil
			}
		case iif.BDelay:
			inner, err := x.evalBool(v.X)
			if err != nil {
				return nil, err
			}
			ns, err := x.evalIntPure(v.Y)
			if err != nil {
				return nil, err
			}
			return eqn.DelayEl{X: inner, NS: float64(ns)}, nil
		case iif.BAt:
			d, err := x.evalBool(v.X)
			if err != nil {
				return nil, err
			}
			edgeExpr, ok := v.Y.(*iif.Unary)
			if !ok {
				return nil, iif.Errf(v.Pos, "clocked assignment needs an edge specification (~r/~f/~h/~l clock)")
			}
			var edge eqn.EdgeKind
			switch edgeExpr.Op {
			case iif.URise:
				edge = eqn.Rise
			case iif.UFall:
				edge = eqn.Fall
			case iif.UHigh:
				edge = eqn.LevelHigh
			case iif.ULow:
				edge = eqn.LevelLow
			default:
				return nil, iif.Errf(edgeExpr.Pos, "clocked assignment needs an edge specification (~r/~f/~h/~l clock)")
			}
			clk, err := x.evalBool(edgeExpr.X)
			if err != nil {
				return nil, err
			}
			return eqn.FF{D: d, Edge: edge, Clock: clk}, nil
		}
		return nil, iif.Errf(v.Pos, "operator %s not valid in a signal expression", v.Op)

	case *iif.Async:
		inner, err := x.evalBool(v.X)
		if err != nil {
			return nil, err
		}
		ff, ok := inner.(eqn.FF)
		if !ok {
			return nil, iif.Errf(v.Pos, "~a applies to a clocked (@) expression")
		}
		for _, it := range v.Items {
			val, err := x.evalIntPure(it.Value)
			if err != nil {
				return nil, err
			}
			if val != 0 && val != 1 {
				return nil, iif.Errf(v.Pos, "~a value must be 0 or 1, got %d", val)
			}
			cond, err := x.evalBool(it.Cond)
			if err != nil {
				return nil, err
			}
			ff.Async = append(ff.Async, eqn.AsyncRule{Value: val == 1, Cond: cond})
		}
		return ff, nil
	}
	return nil, iif.Errf(iif.ExprPos(e), "expression is not a signal expression")
}

// orNode builds an n-ary OR, flattening nested ORs into one node.
func orNode(l, r eqn.Node) eqn.Node {
	var xs []eqn.Node
	if lo, ok := l.(eqn.Or); ok {
		xs = append(xs, lo.Xs...)
	} else {
		xs = append(xs, l)
	}
	if ro, ok := r.(eqn.Or); ok {
		xs = append(xs, ro.Xs...)
	} else {
		xs = append(xs, r)
	}
	return eqn.Or{Xs: xs}
}

// andNode builds an n-ary AND, flattening nested ANDs into one node.
func andNode(l, r eqn.Node) eqn.Node {
	var xs []eqn.Node
	if la, ok := l.(eqn.And); ok {
		xs = append(xs, la.Xs...)
	} else {
		xs = append(xs, l)
	}
	if ra, ok := r.(eqn.And); ok {
		xs = append(xs, ra.Xs...)
	} else {
		xs = append(xs, r)
	}
	return eqn.And{Xs: xs}
}

// wireOrNode builds an n-ary wired-or, flattening nested ones.
func wireOrNode(l, r eqn.Node) eqn.Node {
	var xs []eqn.Node
	if lw, ok := l.(eqn.WireOr); ok {
		xs = append(xs, lw.Xs...)
	} else {
		xs = append(xs, l)
	}
	if rw, ok := r.(eqn.WireOr); ok {
		xs = append(xs, rw.Xs...)
	} else {
		xs = append(xs, r)
	}
	return eqn.WireOr{Xs: xs}
}
