package expand

import (
	"strings"
	"testing"

	"icdb/internal/genus"
	"icdb/internal/icdb"
)

// regAdder registers a trivial single-bit adder implementation covering
// the given width range.
func regAdder(t *testing.T, db *icdb.DB, name string, wmin, wmax int, area float64) {
	t.Helper()
	src := "NAME: " + name + "; PARAMETER: size; INORDER: a, b; OUTORDER: s; { s = a (+) b; }"
	if err := db.RegisterImpl(icdb.Impl{
		Name:      name,
		Component: genus.CompAdderSubtractor,
		Style:     "test",
		Functions: []genus.Function{genus.FuncADD},
		WidthMin:  wmin, WidthMax: wmax, Stages: 0,
		Area: area, Delay: 1,
		Params: []string{"size"},
		Source: src,
	}); err != nil {
		t.Fatal(err)
	}
}

// TestWidthAwareCallResolution: two #calls sharing one name but
// requesting different sizes must not share a resolution — the second
// call re-resolves against implementations covering its width (the
// ROADMAP's width-aware call resolution, range-recovery case).
func TestWidthAwareCallResolution(t *testing.T) {
	db := newDB(t)
	// narrow_add is the cheapest ADD but only stretches to 4 bits;
	// wide_add covers the rest. (The builtin add_ripple, cost 15, covers
	// [1,64] and must lose the ranking to both.)
	regAdder(t, db, "narrow_add", 1, 4, 1)
	regAdder(t, db, "wide_add", 5, 64, 2)

	const top = `
NAME: top;
INORDER: x, y;
OUTORDER: p, q, r;
{
  #ADD(4, x, y, p);
  #ADD(16, x, y, q);
  #ADD(2, x, y, r);
}
`
	net, err := New(db).Expand(mustParse(t, top), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	insts, err := db.Instances()
	if err != nil {
		t.Fatal(err)
	}
	uses := make(map[string]int)
	for _, in := range insts {
		uses[in.Impl] += in.Uses
	}
	// Calls 1 and 3 fit narrow_add; call 2 must recover onto wide_add
	// instead of failing on narrow_add's range.
	if uses["narrow_add"] != 2 || uses["wide_add"] != 1 {
		t.Errorf("instance uses = %v, want narrow_add:2 wide_add:1", uses)
	}
}

// TestWidthAwareResolutionByComponentName: the same recovery through the
// component-type resolution path.
func TestWidthAwareResolutionByComponentName(t *testing.T) {
	db := newDB(t)
	regAdder(t, db, "narrow_add", 1, 4, 1)
	regAdder(t, db, "wide_add", 5, 64, 2)
	const top = `
NAME: top;
INORDER: x, y;
OUTORDER: p;
{
  #Adder_Subtractor(16, x, y, p);
}
`
	if _, err := New(db).Expand(mustParse(t, top), nil); err != nil {
		t.Fatalf("component-path width recovery failed: %v", err)
	}
	insts, _ := db.Instances()
	if len(insts) != 1 || insts[0].Impl != "wide_add" {
		t.Errorf("instances = %+v, want one wide_add", insts)
	}
}

// TestWidthRecoveryRequiresSameParamList: recovery rebinds evaluated
// argument values positionally, so an alternate implementation whose
// parameters differ in name or order must be rejected (error, not a
// silent mis-binding).
func TestWidthRecoveryRequiresSameParamList(t *testing.T) {
	db := newDB(t)
	regAdder(t, db, "narrow_add", 1, 4, 1)
	// The only wide ADD declares (stages, size) — positionally
	// incompatible with narrow_add's (size).
	if err := db.RegisterImpl(icdb.Impl{
		Name:      "wide_odd",
		Component: genus.CompAdderSubtractor,
		Style:     "test",
		Functions: []genus.Function{genus.FuncADD},
		WidthMin:  5, WidthMax: 64, Stages: 0,
		Area: 2, Delay: 1,
		Params: []string{"stages", "size"},
		Source: "NAME: wide_odd; PARAMETER: stages, size; INORDER: a, b; OUTORDER: s; { s = a (+) b; }",
	}); err != nil {
		t.Fatal(err)
	}
	const top = `
NAME: top;
INORDER: x, y;
OUTORDER: p;
{
  #ADD(16, x, y, p);
}
`
	_, err := New(db).Expand(mustParse(t, top), nil)
	if err == nil || !strings.Contains(err.Error(), "width range") {
		t.Fatalf("err = %v, want width range error (no positional mis-binding)", err)
	}
}

// TestExactNameStaysAuthoritative: naming an implementation that cannot
// stretch to the requested size is an error, never a silent substitution.
func TestExactNameStaysAuthoritative(t *testing.T) {
	db := newDB(t)
	regAdder(t, db, "narrow_add", 1, 4, 1)
	regAdder(t, db, "wide_add", 5, 64, 2)
	const top = `
NAME: top;
INORDER: x, y;
OUTORDER: p;
{
  #narrow_add(16, x, y, p);
}
`
	_, err := New(db).Expand(mustParse(t, top), nil)
	if err == nil || !strings.Contains(err.Error(), "width range") {
		t.Fatalf("err = %v, want width range error", err)
	}
	// No instance may be recorded for the failed call.
	insts, _ := db.Instances()
	if len(insts) != 0 {
		t.Errorf("failed call left instances: %+v", insts)
	}
}

// regSubGenerator registers a 1-bit-port subtractor-shaped generator for
// the ADD/SUB tests (source ports: a, b -> s, like regAdder's impls).
func regSubGenerator(t *testing.T, db *icdb.DB, name string, fn genus.Function, wmin, wmax int, areaExpr string) {
	t.Helper()
	src := "NAME: " + name + "; PARAMETER: size; INORDER: a, b; OUTORDER: s; { s = a (+) b; }"
	if err := db.RegisterGenerator(icdb.Generator{
		Name:      name,
		Component: genus.CompAdderSubtractor,
		Style:     "test",
		Functions: []genus.Function{fn},
		WidthMin:  wmin, WidthMax: wmax, Stages: 0,
		Params:    []string{"size"},
		AreaExpr:  areaExpr,
		DelayExpr: "1",
		Source:    src,
	}); err != nil {
		t.Fatal(err)
	}
}

// TestWidthFilterPrefersParamCompatibleCandidate: with several
// implementations covering the requested width, resolution must pick
// the cheapest one whose parameter list matches the prototype — not
// error out because the overall-cheapest candidate declares different
// parameters (the pre-PR 5 recovery did the latter).
func TestWidthFilterPrefersParamCompatibleCandidate(t *testing.T) {
	db := newDB(t)
	regAdder(t, db, "narrow_add", 1, 4, 1)
	// wide_odd is the cheapest 16-covering ADD but positionally
	// incompatible; wide_add matches and must win.
	if err := db.RegisterImpl(icdb.Impl{
		Name:      "wide_odd",
		Component: genus.CompAdderSubtractor,
		Style:     "test",
		Functions: []genus.Function{genus.FuncADD},
		WidthMin:  5, WidthMax: 64, Stages: 0,
		Area: 2, Delay: 1,
		Params: []string{"stages", "size"},
		Source: "NAME: wide_odd; PARAMETER: stages, size; INORDER: a, b; OUTORDER: s; { s = a (+) b; }",
	}); err != nil {
		t.Fatal(err)
	}
	regAdder(t, db, "wide_add", 5, 64, 3)
	const top = `
NAME: top;
INORDER: x, y;
OUTORDER: p;
{
  #ADD(16, x, y, p);
}
`
	if _, err := New(db).Expand(mustParse(t, top), nil); err != nil {
		t.Fatalf("param-compatible recovery failed: %v", err)
	}
	insts, _ := db.Instances()
	if len(insts) != 1 || insts[0].Impl != "wide_add" {
		t.Errorf("instances = %+v, want one wide_add", insts)
	}
}

// TestResolutionRanksByEstimatedCostAtWidth: candidates are ranked by
// their cost estimated at the call's width, so a per-bit-cheap but
// width-scaling implementation loses to a flat one at large sizes.
func TestResolutionRanksByEstimatedCostAtWidth(t *testing.T) {
	db := newDB(t)
	regAdder(t, db, "scaling_add", 1, 64, 1) // per-bit cheapest...
	if err := db.RegisterEstimator("scaling_add", "area", "area * width"); err != nil {
		t.Fatal(err)
	}
	regAdder(t, db, "flat_add", 1, 64, 10) // ...but flat_add is 10 at any width
	if err := db.RegisterEstimator("flat_add", "area", "area"); err != nil {
		t.Fatal(err)
	}
	const top = `
NAME: top;
INORDER: x, y;
OUTORDER: p, q;
{
  #ADD(2, x, y, p);
  #ADD(32, x, y, q);
}
`
	if _, err := New(db).Expand(mustParse(t, top), nil); err != nil {
		t.Fatal(err)
	}
	insts, _ := db.Instances()
	uses := make(map[string]int)
	for _, in := range insts {
		uses[in.Impl] += in.Uses
	}
	// At size 2 scaling_add costs 2+1 < 11; at size 32 it costs 32+1 > 11.
	if uses["scaling_add"] != 1 || uses["flat_add"] != 1 {
		t.Errorf("instance uses = %v, want scaling_add:1 flat_add:1", uses)
	}
}

// TestGeneratorFallbackResolution: a #call naming a function with no
// stored implementation resolves through a registered generator, which
// synthesizes, registers, and splices a width-pinned implementation —
// once per distinct width.
func TestGeneratorFallbackResolution(t *testing.T) {
	db := newDB(t)
	regSubGenerator(t, db, "gsub", genus.FuncSUB, 1, 64, "2 * width")
	const top = `
NAME: top;
INORDER: x, y;
OUTORDER: p, q, r;
{
  #SUB(8, x, y, p);
  #SUB(8, x, y, q);
  #SUB(4, x, y, r);
}
`
	if _, err := New(db).Expand(mustParse(t, top), nil); err != nil {
		t.Fatalf("generator fallback failed: %v", err)
	}
	// Two distinct widths -> two generated implementations; the repeated
	// size-8 call reuses the first.
	for name, wantUses := range map[string]int{"gsub_size_8": 2, "gsub_size_4": 1} {
		im, err := db.ImplByName(name)
		if err != nil {
			t.Fatalf("generated %s not registered: %v", name, err)
		}
		if im.WidthMin != im.WidthMax {
			t.Errorf("%s width range = [%d,%d], want pinned", name, im.WidthMin, im.WidthMax)
		}
		insts, _ := db.Instances()
		got := 0
		for _, in := range insts {
			if in.Impl == name {
				got += in.Uses
			}
		}
		if got != wantUses {
			t.Errorf("%s uses = %d, want %d", name, got, wantUses)
		}
	}
}

// TestGeneratorFallbackPicksCheapestAtWidth: among several matching
// generators, the one whose estimated cost at the binding point is
// lowest wins.
func TestGeneratorFallbackPicksCheapestAtWidth(t *testing.T) {
	db := newDB(t)
	regSubGenerator(t, db, "gsub_scaling", genus.FuncSUB, 1, 64, "3 * width")
	regSubGenerator(t, db, "gsub_flat", genus.FuncSUB, 1, 64, "30")
	const top = `
NAME: top;
INORDER: x, y;
OUTORDER: p, q;
{
  #SUB(2, x, y, p);
  #SUB(32, x, y, q);
}
`
	if _, err := New(db).Expand(mustParse(t, top), nil); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"gsub_scaling_size_2", "gsub_flat_size_32"} {
		if _, err := db.ImplByName(want); err != nil {
			t.Errorf("expected generated impl %s: %v", want, err)
		}
	}
}

// TestStoredImplStillBeatsGeneratorWhenItCovers: generators are a
// fallback — a stored implementation covering the width is preferred.
func TestStoredImplStillBeatsGeneratorWhenItCovers(t *testing.T) {
	db := newDB(t)
	regSubGenerator(t, db, "gsub", genus.FuncSUB, 1, 64, "1")
	if err := db.RegisterImpl(icdb.Impl{
		Name:      "stored_sub",
		Component: genus.CompAdderSubtractor,
		Style:     "test",
		Functions: []genus.Function{genus.FuncSUB},
		WidthMin:  1, WidthMax: 64, Stages: 0,
		Area: 100, Delay: 100, // expensive, but stored wins over generating
		Params: []string{"size"},
		Source: "NAME: stored_sub; PARAMETER: size; INORDER: a, b; OUTORDER: s; { s = a (+) b; }",
	}); err != nil {
		t.Fatal(err)
	}
	const top = `
NAME: top;
INORDER: x, y;
OUTORDER: p;
{
  #SUB(8, x, y, p);
}
`
	if _, err := New(db).Expand(mustParse(t, top), nil); err != nil {
		t.Fatal(err)
	}
	insts, _ := db.Instances()
	if len(insts) != 1 || insts[0].Impl != "stored_sub" {
		t.Errorf("instances = %+v, want one stored_sub", insts)
	}
}

// TestBrokenEstimatorSurfacesAsError: a registered estimator that fails
// to evaluate must abort resolution with its error — not silently
// demote the stored implementation to a generator fallback or a
// "no implementation covers" message.
func TestBrokenEstimatorSurfacesAsError(t *testing.T) {
	db := newDB(t)
	regAdder(t, db, "only_add", 1, 64, 1)
	// Parses fine, fails at evaluation: "widht" is not an attribute.
	if err := db.RegisterEstimator("only_add", "area", "area * widht"); err != nil {
		t.Fatal(err)
	}
	const top = `
NAME: top;
INORDER: x, y;
OUTORDER: p;
{
  #ADD(8, x, y, p);
}
`
	_, err := New(db).Expand(mustParse(t, top), nil)
	if err == nil || !strings.Contains(err.Error(), "widht") {
		t.Fatalf("err = %v, want the estimator's unknown-attribute error", err)
	}
}
