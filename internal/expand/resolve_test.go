package expand

import (
	"strings"
	"testing"

	"icdb/internal/genus"
	"icdb/internal/icdb"
)

// regAdder registers a trivial single-bit adder implementation covering
// the given width range.
func regAdder(t *testing.T, db *icdb.DB, name string, wmin, wmax int, area float64) {
	t.Helper()
	src := "NAME: " + name + "; PARAMETER: size; INORDER: a, b; OUTORDER: s; { s = a (+) b; }"
	if err := db.RegisterImpl(icdb.Impl{
		Name:      name,
		Component: genus.CompAdderSubtractor,
		Style:     "test",
		Functions: []genus.Function{genus.FuncADD},
		WidthMin:  wmin, WidthMax: wmax, Stages: 0,
		Area: area, Delay: 1,
		Params: []string{"size"},
		Source: src,
	}); err != nil {
		t.Fatal(err)
	}
}

// TestWidthAwareCallResolution: two #calls sharing one name but
// requesting different sizes must not share a resolution — the second
// call re-resolves against implementations covering its width (the
// ROADMAP's width-aware call resolution, range-recovery case).
func TestWidthAwareCallResolution(t *testing.T) {
	db := newDB(t)
	// narrow_add is the cheapest ADD but only stretches to 4 bits;
	// wide_add covers the rest. (The builtin add_ripple, cost 15, covers
	// [1,64] and must lose the ranking to both.)
	regAdder(t, db, "narrow_add", 1, 4, 1)
	regAdder(t, db, "wide_add", 5, 64, 2)

	const top = `
NAME: top;
INORDER: x, y;
OUTORDER: p, q, r;
{
  #ADD(4, x, y, p);
  #ADD(16, x, y, q);
  #ADD(2, x, y, r);
}
`
	net, err := New(db).Expand(mustParse(t, top), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	insts, err := db.Instances()
	if err != nil {
		t.Fatal(err)
	}
	uses := make(map[string]int)
	for _, in := range insts {
		uses[in.Impl] += in.Uses
	}
	// Calls 1 and 3 fit narrow_add; call 2 must recover onto wide_add
	// instead of failing on narrow_add's range.
	if uses["narrow_add"] != 2 || uses["wide_add"] != 1 {
		t.Errorf("instance uses = %v, want narrow_add:2 wide_add:1", uses)
	}
}

// TestWidthAwareResolutionByComponentName: the same recovery through the
// component-type resolution path.
func TestWidthAwareResolutionByComponentName(t *testing.T) {
	db := newDB(t)
	regAdder(t, db, "narrow_add", 1, 4, 1)
	regAdder(t, db, "wide_add", 5, 64, 2)
	const top = `
NAME: top;
INORDER: x, y;
OUTORDER: p;
{
  #Adder_Subtractor(16, x, y, p);
}
`
	if _, err := New(db).Expand(mustParse(t, top), nil); err != nil {
		t.Fatalf("component-path width recovery failed: %v", err)
	}
	insts, _ := db.Instances()
	if len(insts) != 1 || insts[0].Impl != "wide_add" {
		t.Errorf("instances = %+v, want one wide_add", insts)
	}
}

// TestWidthRecoveryRequiresSameParamList: recovery rebinds evaluated
// argument values positionally, so an alternate implementation whose
// parameters differ in name or order must be rejected (error, not a
// silent mis-binding).
func TestWidthRecoveryRequiresSameParamList(t *testing.T) {
	db := newDB(t)
	regAdder(t, db, "narrow_add", 1, 4, 1)
	// The only wide ADD declares (stages, size) — positionally
	// incompatible with narrow_add's (size).
	if err := db.RegisterImpl(icdb.Impl{
		Name:      "wide_odd",
		Component: genus.CompAdderSubtractor,
		Style:     "test",
		Functions: []genus.Function{genus.FuncADD},
		WidthMin:  5, WidthMax: 64, Stages: 0,
		Area: 2, Delay: 1,
		Params: []string{"stages", "size"},
		Source: "NAME: wide_odd; PARAMETER: stages, size; INORDER: a, b; OUTORDER: s; { s = a (+) b; }",
	}); err != nil {
		t.Fatal(err)
	}
	const top = `
NAME: top;
INORDER: x, y;
OUTORDER: p;
{
  #ADD(16, x, y, p);
}
`
	_, err := New(db).Expand(mustParse(t, top), nil)
	if err == nil || !strings.Contains(err.Error(), "width range") {
		t.Fatalf("err = %v, want width range error (no positional mis-binding)", err)
	}
}

// TestExactNameStaysAuthoritative: naming an implementation that cannot
// stretch to the requested size is an error, never a silent substitution.
func TestExactNameStaysAuthoritative(t *testing.T) {
	db := newDB(t)
	regAdder(t, db, "narrow_add", 1, 4, 1)
	regAdder(t, db, "wide_add", 5, 64, 2)
	const top = `
NAME: top;
INORDER: x, y;
OUTORDER: p;
{
  #narrow_add(16, x, y, p);
}
`
	_, err := New(db).Expand(mustParse(t, top), nil)
	if err == nil || !strings.Contains(err.Error(), "width range") {
		t.Fatalf("err = %v, want width range error", err)
	}
	// No instance may be recorded for the failed call.
	insts, _ := db.Instances()
	if len(insts) != 0 {
		t.Errorf("failed call left instances: %+v", insts)
	}
}
