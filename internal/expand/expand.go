// Package expand turns parameterized IIF designs into flat equation
// networks. It is the ICDB expander of §5: given a design and actual
// parameter values it evaluates the C-like control constructs (#for,
// #if, #c_line), flattens indexed signals to scalars ("Q[3]"), resolves
// every subcomponent call through the component database (by
// implementation name, component type, or function), and splices the
// callee's expanded network into the caller under a unique instance
// prefix. Expanded (implementation, bindings) pairs are recorded as
// database instances and cached so repeated expansions reuse the work.
package expand

import (
	"fmt"
	"regexp"
	"slices"
	"strings"

	"icdb/internal/eqn"
	"icdb/internal/genus"
	"icdb/internal/icdb"
	"icdb/internal/iif"
)

// maxLoopIters bounds a single #for loop so a bad step expression cannot
// hang expansion.
const maxLoopIters = 1 << 16

// Expander expands IIF designs against a component database.
//
// An Expander memoizes parsed implementation sources, call-name
// resolutions, and expanded (implementation, bindings) templates for its
// lifetime. Re-registering an implementation in the database does not
// invalidate these caches: create a fresh Expander to pick up changed
// sources.
type Expander struct {
	db *icdb.DB
	// MaxDepth bounds nested component expansion (cycles in the
	// implementation library would otherwise recurse forever).
	MaxDepth int

	designs  map[string]*iif.Design // parsed implementation sources, by name
	nets     map[string]*eqn.Network
	netDeps  map[string][]instReq     // template key -> transitive subcomponent requests
	resolved map[resolveKey]icdb.Impl // #call resolution memo
}

// resolveKey memoizes #call resolution per (name, requested width): two
// calls sharing a name but requesting different sizes may legitimately
// resolve to different implementations, so the bare name is not enough.
// Width anyWidth records the width-agnostic resolution used before a
// call's size binding is known.
type resolveKey struct {
	name  string
	width int
}

// anyWidth marks a resolution not constrained by a requested width.
const anyWidth = -1

// instReq is one recorded instantiation request: which implementation a
// template splices, with which bindings. Replayed on template cache
// hits to keep the instances relation's use counts honest.
type instReq struct {
	impl     string
	bindings map[string]int
}

// New creates an expander over db.
func New(db *icdb.DB) *Expander {
	return &Expander{
		db:       db,
		MaxDepth: 16,
		designs:  make(map[string]*iif.Design),
		nets:     make(map[string]*eqn.Network),
		netDeps:  make(map[string][]instReq),
		resolved: make(map[resolveKey]icdb.Impl),
	}
}

// Expand flattens design d with the given parameter values. Every
// declared PARAMETER must be bound; unknown names are rejected.
func (e *Expander) Expand(d *iif.Design, params map[string]int) (*eqn.Network, error) {
	return e.expand(d, params, d.Name, 0)
}

// ExpandImpl looks implementation name up in the database, parses its
// IIF source, and expands it. This records a database instance exactly
// like a subcomponent call would.
func (e *Expander) ExpandImpl(name string, params map[string]int) (*eqn.Network, error) {
	im, err := e.db.ImplByName(name)
	if err != nil {
		return nil, err
	}
	d, err := e.design(im)
	if err != nil {
		return nil, err
	}
	// Enforce the implementation's width metadata exactly like the
	// #call path does.
	if sz, ok := params["size"]; ok && (sz < im.WidthMin || sz > im.WidthMax) {
		return nil, fmt.Errorf("expand: %s: size %d outside implementation width range [%d,%d]",
			im.Name, sz, im.WidthMin, im.WidthMax)
	}
	// Share the template cache with the #call path: repeated expansions
	// of the same (implementation, bindings) pair reuse the work. The
	// caller gets a clone so the cached template stays pristine.
	net, _, err := e.template(d, im, params, d.Name, 0)
	if err != nil {
		return nil, err
	}
	if err := e.recordInstance(d.Name, im, params); err != nil {
		return nil, err
	}
	return net.Clone(), nil
}

// design returns the parsed IIF source of im, memoized.
func (e *Expander) design(im icdb.Impl) (*iif.Design, error) {
	if d, ok := e.designs[im.Name]; ok {
		return d, nil
	}
	d, err := iif.Parse(im.Source)
	if err != nil {
		return nil, fmt.Errorf("expand: implementation %q: %w", im.Name, err)
	}
	e.designs[im.Name] = d
	return d, nil
}

func instKey(impl string, bindings map[string]int) string {
	return impl + "|" + icdb.BindingsKey(bindings)
}

// reservedPrefix matches the "u<N>_" instance-prefix namespace; user
// signals may not live there or a spliced subcomponent could silently
// capture them.
var reservedPrefix = regexp.MustCompile(`^u[0-9]+_`)

// template returns the expanded network for (im, bindings) through the
// cache, reporting whether it was served from cache.
func (e *Expander) template(d *iif.Design, im icdb.Impl, bindings map[string]int, design string, depth int) (net *eqn.Network, cached bool, err error) {
	key := instKey(im.Name, bindings)
	if net, ok := e.nets[key]; ok {
		return net, true, nil
	}
	var nested []instReq
	net, err = e.expandCollect(d, bindings, design, depth, &nested)
	if err != nil {
		return nil, false, err
	}
	e.nets[key] = net
	e.netDeps[key] = nested
	return net, false, nil
}

// recordInstance records the (im, bindings) instantiation plus the
// template's nested subcomponent requests. Template expansion itself
// never touches the instances relation (it only collects requests), so
// recording happens exactly once per validated splice — and a failed
// call records nothing, nested or not.
func (e *Expander) recordInstance(design string, im icdb.Impl, bindings map[string]int) error {
	if _, _, err := e.db.Instantiate(design, im.Name, bindings); err != nil {
		return err
	}
	for _, dep := range e.netDeps[instKey(im.Name, bindings)] {
		if _, _, err := e.db.Instantiate(design, dep.impl, dep.bindings); err != nil {
			return err
		}
	}
	return nil
}

func (e *Expander) expand(d *iif.Design, params map[string]int, design string, depth int) (*eqn.Network, error) {
	return e.expandCollect(d, params, design, depth, nil)
}

// expandCollect is expand with an optional collector that receives the
// instantiation requests made while expanding (used for template
// cache-hit replay).
func (e *Expander) expandCollect(d *iif.Design, params map[string]int, design string, depth int, deps *[]instReq) (*eqn.Network, error) {
	if depth > e.MaxDepth {
		return nil, fmt.Errorf("expand: %s: component nesting deeper than %d (recursive library?)", d.Name, e.MaxDepth)
	}
	x := &expansion{
		ex:     e,
		d:      d,
		design: design,
		depth:  depth,
		deps:   deps,
		net:    eqn.NewNetwork(d.Name),
		params: make(map[string]int, len(d.Params)),
		vars:   make(map[string]int, len(d.Vars)),
		dims:   make(map[string][]int),
	}
	for _, p := range d.Params {
		v, ok := params[p]
		if !ok {
			return nil, fmt.Errorf("expand: %s: parameter %q is unbound", d.Name, p)
		}
		x.params[p] = v
	}
	for p := range params {
		if _, ok := x.params[p]; !ok {
			return nil, fmt.Errorf("expand: %s: no such parameter %q (have %v)", d.Name, p, d.Params)
		}
	}
	for _, v := range d.Vars {
		if _, clash := x.params[v]; clash {
			return nil, fmt.Errorf("expand: %s: %q is both PARAMETER and VARIABLE", d.Name, v)
		}
		x.vars[v] = 0
	}
	var err error
	if x.net.Inputs, err = x.flatten(d.Inputs); err != nil {
		return nil, err
	}
	if x.net.Outputs, err = x.flatten(d.Outputs); err != nil {
		return nil, err
	}
	if x.net.Internals, err = x.flatten(d.Internal); err != nil {
		return nil, err
	}
	if d.Body == nil {
		return nil, fmt.Errorf("expand: %s: design has no body", d.Name)
	}
	if err := x.exec(d.Body); err != nil {
		return nil, err
	}
	return x.net, nil
}

// expansion is the mutable state of one design expansion.
type expansion struct {
	ex     *Expander
	d      *iif.Design
	design string // top-level design name, for instance records
	depth  int
	net    *eqn.Network
	params map[string]int
	vars   map[string]int
	dims   map[string][]int // declared signal name -> dimensions (empty = scalar)
	nInst  int
	// deps, when non-nil, collects the instantiation requests made by
	// this expansion (it is a template being cached).
	deps *[]instReq
	// noMutate rejects ++/-- during speculative constant folding
	// (tryInt), so signal-expression folds cannot change variables.
	noMutate bool
}

// flatten evaluates declaration dimensions and expands each declared
// signal into its scalar names ("D[size]" with size=2 becomes D[0], D[1]).
func (x *expansion) flatten(decls []iif.SignalDecl) ([]string, error) {
	var names []string
	for _, sd := range decls {
		if reservedPrefix.MatchString(sd.Name) {
			return nil, iif.Errf(sd.Pos, "signal %q uses the reserved instance-prefix namespace u<N>_", sd.Name)
		}
		if _, isVar := x.vars[sd.Name]; isVar {
			return nil, iif.Errf(sd.Pos, "signal %q collides with a VARIABLE", sd.Name)
		}
		if _, isParam := x.params[sd.Name]; isParam {
			return nil, iif.Errf(sd.Pos, "signal %q collides with a PARAMETER", sd.Name)
		}
		if _, dup := x.dims[sd.Name]; dup {
			return nil, iif.Errf(sd.Pos, "signal %q declared twice", sd.Name)
		}
		dims := make([]int, len(sd.Dims))
		for i, de := range sd.Dims {
			// Dimensions are pure expressions over parameters; ++/--
			// here would silently corrupt variables before the body runs.
			v, err := x.evalIntPure(de)
			if err != nil {
				return nil, err
			}
			if v < 1 {
				return nil, iif.Errf(sd.Pos, "signal %s: dimension %d evaluates to %d", sd.Name, i, v)
			}
			dims[i] = v
		}
		x.dims[sd.Name] = dims
		names = append(names, scalarNames(sd.Name, dims)...)
	}
	return names, nil
}

func scalarNames(base string, dims []int) []string {
	if len(dims) == 0 {
		return []string{base}
	}
	var out []string
	for i := 0; i < dims[0]; i++ {
		out = append(out, scalarNames(fmt.Sprintf("%s[%d]", base, i), dims[1:])...)
	}
	return out
}

// scalarName resolves a signal reference to its flat scalar name,
// checking declared dimensions when known.
func (x *expansion) scalarName(r *iif.Ref) (string, error) {
	if reservedPrefix.MatchString(r.Name) {
		return "", iif.Errf(r.Pos, "signal %q uses the reserved instance-prefix namespace u<N>_", r.Name)
	}
	if _, isVar := x.vars[r.Name]; isVar {
		return "", iif.Errf(r.Pos, "%q is a C variable, not a signal", r.Name)
	}
	if _, isParam := x.params[r.Name]; isParam {
		return "", iif.Errf(r.Pos, "%q is a parameter, not a signal", r.Name)
	}
	idx := make([]int, len(r.Index))
	for i, ie := range r.Index {
		// Indices are pure: Q[i++] mutating the loop variable would be
		// a silent corruption, so ++/-- is rejected here.
		v, err := x.evalIntPure(ie)
		if err != nil {
			return "", err
		}
		idx[i] = v
	}
	if dims, declared := x.dims[r.Name]; declared {
		if len(idx) != len(dims) {
			return "", iif.Errf(r.Pos, "signal %q has %d dimension(s), referenced with %d index(es)", r.Name, len(dims), len(idx))
		}
		for i, v := range idx {
			if v < 0 || v >= dims[i] {
				return "", iif.Errf(r.Pos, "signal %q index %d out of range [0,%d)", r.Name, v, dims[i])
			}
		}
	}
	name := r.Name
	for _, v := range idx {
		name = fmt.Sprintf("%s[%d]", name, v)
	}
	return name, nil
}

// ---- statements ----

// Loop-control sentinels.
type ctrlError int

const (
	ctrlBreak ctrlError = iota
	ctrlContinue
)

func (c ctrlError) Error() string {
	if c == ctrlBreak {
		return "#break outside a loop"
	}
	return "#continue outside a loop"
}

func (x *expansion) exec(s iif.Stmt) error {
	switch st := s.(type) {
	case *iif.Block:
		for _, inner := range st.Stmts {
			if err := x.exec(inner); err != nil {
				return err
			}
		}
		return nil

	case *iif.Assign:
		return x.assign(st)

	case *iif.If:
		v, err := x.evalInt(st.Cond)
		if err != nil {
			return err
		}
		if v != 0 {
			return x.exec(st.Then)
		}
		if st.Else != nil {
			return x.exec(st.Else)
		}
		return nil

	case *iif.For:
		return x.execFor(st)

	case *iif.Break:
		return ctrlBreak

	case *iif.Continue:
		return ctrlContinue

	case *iif.Call:
		return x.call(st)
	}
	return fmt.Errorf("expand: unhandled statement %T", s)
}

func (x *expansion) execFor(st *iif.For) error {
	if st.Init != nil {
		if err := x.execHeaderExpr(st.Init); err != nil {
			return err
		}
	}
	for iters := 0; ; iters++ {
		if iters >= maxLoopIters {
			return iif.Errf(st.Pos, "#for exceeded %d iterations", maxLoopIters)
		}
		if st.Cond != nil {
			v, err := x.evalInt(st.Cond)
			if err != nil {
				return err
			}
			if v == 0 {
				return nil
			}
		}
		err := x.exec(st.Body)
		switch err {
		case nil, ctrlContinue:
		case ctrlBreak:
			return nil
		default:
			return err
		}
		if st.Step != nil {
			if err := x.execHeaderExpr(st.Step); err != nil {
				return err
			}
		}
	}
}

// execHeaderExpr runs a #for init/step expression: either an assignment
// ("i = 0") or a plain C expression evaluated for its side effects
// ("i++").
func (x *expansion) execHeaderExpr(e iif.Expr) error {
	if lhs, rhs, ok := iif.ForAssign(e); ok {
		v, err := x.evalInt(rhs)
		if err != nil {
			return err
		}
		return x.setVar(lhs, v)
	}
	_, err := x.evalInt(e)
	return err
}

func (x *expansion) setVar(r *iif.Ref, v int) error {
	if len(r.Index) != 0 {
		return iif.Errf(r.Pos, "C variable %q cannot be indexed", r.Name)
	}
	if _, ok := x.vars[r.Name]; !ok {
		if _, isParam := x.params[r.Name]; isParam {
			return iif.Errf(r.Pos, "cannot assign to parameter %q", r.Name)
		}
		return iif.Errf(r.Pos, "assignment to undeclared variable %q (declare it with VARIABLE)", r.Name)
	}
	x.vars[r.Name] = v
	return nil
}

func (x *expansion) assign(a *iif.Assign) error {
	if a.CLine {
		if a.Op != iif.OpAssign {
			return iif.Errf(a.Pos, "#c_line supports only plain assignment")
		}
		v, err := x.evalInt(a.RHS)
		if err != nil {
			return err
		}
		return x.setVar(a.LHS, v)
	}
	lhs, err := x.scalarName(a.LHS)
	if err != nil {
		return err
	}
	rhs, err := x.evalBool(a.RHS)
	if err != nil {
		return err
	}
	if a.Op == iif.OpAssign {
		if err := x.net.AddEquation(lhs, rhs); err != nil {
			return iif.Errf(a.Pos, "%v", err)
		}
		return nil
	}
	// Aggregate assignment: fold into any existing definition.
	prev := x.net.Def(lhs)
	if prev == nil {
		if err := x.net.AddEquation(lhs, rhs); err != nil {
			return iif.Errf(a.Pos, "%v", err)
		}
		return nil
	}
	var combined eqn.Node
	switch a.Op {
	case iif.OpAggOr:
		combined = orNode(prev, rhs)
	case iif.OpAggAnd:
		combined = andNode(prev, rhs)
	case iif.OpAggXor:
		combined = eqn.Xor{X: prev, Y: rhs}
	case iif.OpAggXnor:
		combined = eqn.Xnor{X: prev, Y: rhs}
	default:
		return iif.Errf(a.Pos, "unsupported assignment operator %s", a.Op)
	}
	return x.net.ReplaceDef(lhs, combined)
}

// ---- subcomponent calls ----

func (x *expansion) call(c *iif.Call) error {
	im, err := x.resolve(c, anyWidth)
	if err != nil {
		return err
	}
	d, err := x.ex.design(im)
	if err != nil {
		return err
	}
	np := len(d.Params)
	if len(c.Args) < np {
		return iif.Errf(c.Pos, "#%s: needs %d leading parameter argument(s) %v", c.Name, np, d.Params)
	}
	// Evaluate the parameter arguments once, positionally: argument
	// expressions may have side effects (i++), so a width-aware
	// re-resolution below rebinds these values instead of re-evaluating.
	vals := make([]int, np)
	for i, p := range d.Params {
		v, err := x.evalInt(c.Args[i])
		if err != nil {
			return iif.Errf(c.Pos, "#%s: parameter %q: %v", c.Name, p, err)
		}
		vals[i] = v
	}
	bindings := bindParams(d.Params, vals)
	if sz, ok := bindings["size"]; ok && (sz < im.WidthMin || sz > im.WidthMax) {
		// The width-agnostic resolution cannot expand to this size; ask
		// the database again, filtered to implementations covering it
		// (the ROADMAP's width-aware call resolution, for the
		// range-recovery case).
		// Rebinding vals is positional, so the alternate must declare the
		// same parameters in the same order — a count match alone could
		// silently bind values to the wrong names.
		recovered := false
		if alt, altErr := x.resolve(c, sz); altErr == nil {
			if ad, derr := x.ex.design(alt); derr == nil && slices.Equal(ad.Params, d.Params) {
				im, d = alt, ad
				recovered = true
			}
		}
		if !recovered {
			return iif.Errf(c.Pos, "#%s: size %d outside implementation %q width range [%d,%d]",
				c.Name, sz, im.Name, im.WidthMin, im.WidthMax)
		}
		bindings = bindParams(d.Params, vals)
		if sz, ok := bindings["size"]; ok && (sz < im.WidthMin || sz > im.WidthMax) {
			return iif.Errf(c.Pos, "#%s: size %d outside implementation %q width range [%d,%d]",
				c.Name, sz, im.Name, im.WidthMin, im.WidthMax)
		}
	}
	tmpl, _, err := x.ex.template(d, im, bindings, x.design, x.depth+1)
	if err != nil {
		return err
	}
	need := np + len(tmpl.Inputs) + len(tmpl.Outputs)
	if len(c.Args) != need {
		return iif.Errf(c.Pos, "#%s: got %d argument(s), want %d (%d parameter(s) %v, inputs %v, outputs %v)",
			c.Name, len(c.Args), need, np, d.Params, tmpl.Inputs, tmpl.Outputs)
	}
	// Evaluate every port connection before touching the network or the
	// instances relation, so a failed call leaves no trace.
	inNodes := make([]eqn.Node, len(tmpl.Inputs))
	for i, in := range tmpl.Inputs {
		node, err := x.evalBool(c.Args[np+i])
		if err != nil {
			return iif.Errf(c.Pos, "#%s: input %s: %v", c.Name, in, err)
		}
		inNodes[i] = node
	}
	outNames := make([]string, len(tmpl.Outputs))
	seenOut := make(map[string]bool, len(tmpl.Outputs))
	for j, out := range tmpl.Outputs {
		arg := c.Args[np+len(tmpl.Inputs)+j]
		ref, isRef := arg.(*iif.Ref)
		if !isRef {
			return iif.Errf(c.Pos, "#%s: output %s must connect to a signal, got %s", c.Name, out, iif.ExprString(arg))
		}
		lhs, err := x.scalarName(ref)
		if err != nil {
			return err
		}
		if x.net.Def(lhs) != nil || x.net.IsInput(lhs) || seenOut[lhs] {
			return iif.Errf(ref.Pos, "#%s: output signal %q already driven", c.Name, lhs)
		}
		seenOut[lhs] = true
		outNames[j] = lhs
	}
	if x.deps != nil {
		// Inside a template expansion: only collect the request (plus
		// this call's own transitive subcomponents); the consumer that
		// eventually splices the template records them.
		*x.deps = append(*x.deps, instReq{impl: im.Name, bindings: bindings})
		*x.deps = append(*x.deps, x.ex.netDeps[instKey(im.Name, bindings)]...)
	} else if err := x.ex.recordInstance(x.design, im, bindings); err != nil {
		return iif.Errf(c.Pos, "#%s: %v", c.Name, err)
	}
	prefix := fmt.Sprintf("u%d_", x.nInst)
	x.nInst++
	// Drive the callee's (prefixed) inputs from the caller argument
	// expressions.
	for i, in := range tmpl.Inputs {
		if err := x.net.AddEquation(prefix+in, inNodes[i]); err != nil {
			return iif.Errf(c.Pos, "#%s: %v", c.Name, err)
		}
	}
	// Splice the callee equations, renaming every signal under the
	// instance prefix.
	for _, eq := range tmpl.Eqns {
		if err := x.net.AddEquation(prefix+eq.LHS, eqn.RenameNode(eq.RHS, func(name string) string { return prefix + name })); err != nil {
			return iif.Errf(c.Pos, "#%s: %v", c.Name, err)
		}
	}
	// Alias the callee's outputs onto the caller's output signals.
	for j, out := range tmpl.Outputs {
		if err := x.net.AddEquation(outNames[j], eqn.Var{Name: prefix + out}); err != nil {
			return iif.Errf(c.Pos, "#%s: %v", c.Name, err)
		}
	}
	for _, group := range [][]string{tmpl.Inputs, tmpl.Outputs, tmpl.Internals} {
		for _, n := range group {
			x.net.Internals = append(x.net.Internals, prefix+n)
		}
	}
	return nil
}

// bindParams zips parameter names with positionally evaluated values.
func bindParams(params []string, vals []int) map[string]int {
	bindings := make(map[string]int, len(params))
	for i, p := range params {
		bindings[p] = vals[i]
	}
	return bindings
}

// resolve maps a #CALL name to a database implementation, memoized per
// (name, width). Resolution tries, in order: an implementation of that
// exact (or lower-cased) name, the best-ranked implementation of a
// matching component type, and the best-ranked implementation answering
// a query by function — the paper's query-by-function path from inside
// the expander. A width other than anyWidth constrains the component-
// and function-query paths to implementations whose width range covers
// it (exact-name resolution stays authoritative: naming an
// implementation that cannot stretch to the requested size is an error,
// not a substitution).
func (x *expansion) resolve(c *iif.Call, width int) (icdb.Impl, error) {
	key := resolveKey{name: c.Name, width: width}
	if im, ok := x.ex.resolved[key]; ok {
		return im, nil
	}
	im, err := x.resolveUncached(c, width)
	if err != nil {
		return icdb.Impl{}, err
	}
	x.ex.resolved[key] = im
	return im, nil
}

func (x *expansion) resolveUncached(c *iif.Call, width int) (icdb.Impl, error) {
	db := x.ex.db
	if im, err := db.ImplByName(c.Name); err == nil {
		return im, nil
	}
	if im, err := db.ImplByName(strings.ToLower(c.Name)); err == nil {
		return im, nil
	}
	var cs []icdb.Constraint
	if width != anyWidth {
		cs = append(cs, icdb.ForWidth(width))
	}
	if ct, ok := genus.NormalizeComponentType(c.Name); ok {
		if im, ok := cheapest(func(visit func(icdb.Candidate) bool) error {
			return db.QueryByComponentScan(ct, visit, cs...)
		}); ok {
			return im, nil
		}
	}
	if fn, err := genus.NormalizeFunction(c.Name); err == nil {
		if im, ok := cheapest(func(visit func(icdb.Candidate) bool) error {
			return db.QueryByFunctionScan(fn, visit, cs...)
		}); ok {
			return im, nil
		}
	}
	return icdb.Impl{}, iif.Errf(c.Pos, "#%s: resolves to no implementation, component type, or function in the database", c.Name)
}

// cheapest folds a streamed query down to its single best-ranked
// candidate (lowest cost, name as tie-break — the same order the ranked
// queries return) without materializing the result set: resolution only
// ever needs the winner, so the candidates are consumed as they stream.
func cheapest(scan func(visit func(icdb.Candidate) bool) error) (icdb.Impl, bool) {
	var best icdb.Impl
	var bestCost float64
	found := false
	err := scan(func(cand icdb.Candidate) bool {
		if !found || cand.Cost < bestCost ||
			(cand.Cost == bestCost && cand.Impl.Name < best.Name) {
			// Clone: the streamed Impl shares the query cache's slices
			// and must not be retained past the visit.
			best, bestCost, found = cand.Impl.Clone(), cand.Cost, true
		}
		return true
	})
	return best, err == nil && found
}
