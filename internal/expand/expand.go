// Package expand turns parameterized IIF designs into flat equation
// networks. It is the ICDB expander of §5: given a design and actual
// parameter values it evaluates the C-like control constructs (#for,
// #if, #c_line), flattens indexed signals to scalars ("Q[3]"), resolves
// every subcomponent call through the component database (by
// implementation name, component type, or function), and splices the
// callee's expanded network into the caller under a unique instance
// prefix. Expanded (implementation, bindings) pairs are recorded as
// database instances and cached so repeated expansions reuse the work.
package expand

import (
	"fmt"
	"regexp"
	"slices"
	"strings"

	"icdb/internal/eqn"
	"icdb/internal/genus"
	"icdb/internal/icdb"
	"icdb/internal/iif"
)

// maxLoopIters bounds a single #for loop so a bad step expression cannot
// hang expansion.
const maxLoopIters = 1 << 16

// Expander expands IIF designs against a component database.
//
// An Expander memoizes parsed implementation sources, call-name
// resolutions, and expanded (implementation, bindings) templates for its
// lifetime. Re-registering an implementation in the database does not
// invalidate these caches: create a fresh Expander to pick up changed
// sources.
type Expander struct {
	db *icdb.DB
	// MaxDepth bounds nested component expansion (cycles in the
	// implementation library would otherwise recurse forever).
	MaxDepth int

	designs  map[string]*iif.Design // parsed implementation sources, by name
	nets     map[string]*eqn.Network
	netDeps  map[string][]instReq     // template key -> transitive subcomponent requests
	resolved map[resolveKey]icdb.Impl // #call resolution memo (stored impls only)
	protos   map[string]*proto        // #call arity-prototype memo, by call name
}

// resolveKey memoizes #call resolution per (name, full binding set,
// port count): two calls sharing a name but binding different parameter
// points — or connecting different port shapes — may legitimately
// resolve to different implementations, because both the width filter
// and the port-shape filter evaluate against the bindings (a non-size
// parameter can appear in a candidate's port dimensions). Generator-
// emitted implementations are never memoized here: Generate itself
// dedups per point.
type resolveKey struct {
	name     string
	bindings string // icdb.BindingsKey of the evaluated parameter point
	ports    int
}

// proto is the arity prototype of a #call: the implementation or
// generator that fixes the call's parameter list before the parameter
// arguments are evaluated. Exactly one of im and gen is non-nil; exact
// records whether the call named it directly (exact resolutions are
// authoritative — a width the named entry cannot cover is an error, not
// a substitution).
type proto struct {
	im     *icdb.Impl
	gen    *icdb.Generator
	exact  bool
	params []string
}

// instReq is one recorded instantiation request: which implementation a
// template splices, with which bindings. Replayed on template cache
// hits to keep the instances relation's use counts honest.
type instReq struct {
	impl     string
	bindings map[string]int
}

// New creates an expander over db.
func New(db *icdb.DB) *Expander {
	return &Expander{
		db:       db,
		MaxDepth: 16,
		designs:  make(map[string]*iif.Design),
		nets:     make(map[string]*eqn.Network),
		netDeps:  make(map[string][]instReq),
		resolved: make(map[resolveKey]icdb.Impl),
		protos:   make(map[string]*proto),
	}
}

// Expand flattens design d with the given parameter values. Every
// declared PARAMETER must be bound; unknown names are rejected.
func (e *Expander) Expand(d *iif.Design, params map[string]int) (*eqn.Network, error) {
	return e.expand(d, params, d.Name, 0)
}

// ExpandImpl looks implementation name up in the database, parses its
// IIF source, and expands it. This records a database instance exactly
// like a subcomponent call would.
func (e *Expander) ExpandImpl(name string, params map[string]int) (*eqn.Network, error) {
	im, err := e.db.ImplByName(name)
	if err != nil {
		return nil, err
	}
	d, err := e.design(im)
	if err != nil {
		return nil, err
	}
	// Enforce the implementation's width metadata exactly like the
	// #call path does.
	if sz, ok := params["size"]; ok && (sz < im.WidthMin || sz > im.WidthMax) {
		return nil, fmt.Errorf("expand: %s: size %d outside implementation width range [%d,%d]",
			im.Name, sz, im.WidthMin, im.WidthMax)
	}
	// Share the template cache with the #call path: repeated expansions
	// of the same (implementation, bindings) pair reuse the work. The
	// caller gets a clone so the cached template stays pristine.
	net, _, err := e.template(d, im, params, d.Name, 0)
	if err != nil {
		return nil, err
	}
	if err := e.recordInstance(d.Name, im, params); err != nil {
		return nil, err
	}
	return net.Clone(), nil
}

// design returns the parsed IIF source of im, memoized.
func (e *Expander) design(im icdb.Impl) (*iif.Design, error) {
	if d, ok := e.designs[im.Name]; ok {
		return d, nil
	}
	d, err := iif.Parse(im.Source)
	if err != nil {
		return nil, fmt.Errorf("expand: implementation %q: %w", im.Name, err)
	}
	e.designs[im.Name] = d
	return d, nil
}

func instKey(impl string, bindings map[string]int) string {
	return impl + "|" + icdb.BindingsKey(bindings)
}

// reservedPrefix matches the "u<N>_" instance-prefix namespace; user
// signals may not live there or a spliced subcomponent could silently
// capture them.
var reservedPrefix = regexp.MustCompile(`^u[0-9]+_`)

// template returns the expanded network for (im, bindings) through the
// cache, reporting whether it was served from cache.
func (e *Expander) template(d *iif.Design, im icdb.Impl, bindings map[string]int, design string, depth int) (net *eqn.Network, cached bool, err error) {
	key := instKey(im.Name, bindings)
	if net, ok := e.nets[key]; ok {
		return net, true, nil
	}
	var nested []instReq
	net, err = e.expandCollect(d, bindings, design, depth, &nested)
	if err != nil {
		return nil, false, err
	}
	e.nets[key] = net
	e.netDeps[key] = nested
	return net, false, nil
}

// recordInstance records the (im, bindings) instantiation plus the
// template's nested subcomponent requests. Template expansion itself
// never touches the instances relation (it only collects requests), so
// recording happens exactly once per validated splice — and a failed
// call records nothing, nested or not.
func (e *Expander) recordInstance(design string, im icdb.Impl, bindings map[string]int) error {
	if _, _, err := e.db.Instantiate(design, im.Name, bindings); err != nil {
		return err
	}
	for _, dep := range e.netDeps[instKey(im.Name, bindings)] {
		if _, _, err := e.db.Instantiate(design, dep.impl, dep.bindings); err != nil {
			return err
		}
	}
	return nil
}

func (e *Expander) expand(d *iif.Design, params map[string]int, design string, depth int) (*eqn.Network, error) {
	return e.expandCollect(d, params, design, depth, nil)
}

// expandCollect is expand with an optional collector that receives the
// instantiation requests made while expanding (used for template
// cache-hit replay).
func (e *Expander) expandCollect(d *iif.Design, params map[string]int, design string, depth int, deps *[]instReq) (*eqn.Network, error) {
	if depth > e.MaxDepth {
		return nil, fmt.Errorf("expand: %s: component nesting deeper than %d (recursive library?)", d.Name, e.MaxDepth)
	}
	x := &expansion{
		ex:     e,
		d:      d,
		design: design,
		depth:  depth,
		deps:   deps,
		net:    eqn.NewNetwork(d.Name),
		params: make(map[string]int, len(d.Params)),
		vars:   make(map[string]int, len(d.Vars)),
		dims:   make(map[string][]int),
	}
	for _, p := range d.Params {
		v, ok := params[p]
		if !ok {
			return nil, fmt.Errorf("expand: %s: parameter %q is unbound", d.Name, p)
		}
		x.params[p] = v
	}
	for p := range params {
		if _, ok := x.params[p]; !ok {
			return nil, fmt.Errorf("expand: %s: no such parameter %q (have %v)", d.Name, p, d.Params)
		}
	}
	for _, v := range d.Vars {
		if _, clash := x.params[v]; clash {
			return nil, fmt.Errorf("expand: %s: %q is both PARAMETER and VARIABLE", d.Name, v)
		}
		x.vars[v] = 0
	}
	var err error
	if x.net.Inputs, err = x.flatten(d.Inputs); err != nil {
		return nil, err
	}
	if x.net.Outputs, err = x.flatten(d.Outputs); err != nil {
		return nil, err
	}
	if x.net.Internals, err = x.flatten(d.Internal); err != nil {
		return nil, err
	}
	if d.Body == nil {
		return nil, fmt.Errorf("expand: %s: design has no body", d.Name)
	}
	if err := x.exec(d.Body); err != nil {
		return nil, err
	}
	return x.net, nil
}

// expansion is the mutable state of one design expansion.
type expansion struct {
	ex     *Expander
	d      *iif.Design
	design string // top-level design name, for instance records
	depth  int
	net    *eqn.Network
	params map[string]int
	vars   map[string]int
	dims   map[string][]int // declared signal name -> dimensions (empty = scalar)
	nInst  int
	// deps, when non-nil, collects the instantiation requests made by
	// this expansion (it is a template being cached).
	deps *[]instReq
	// noMutate rejects ++/-- during speculative constant folding
	// (tryInt), so signal-expression folds cannot change variables.
	noMutate bool
}

// flatten evaluates declaration dimensions and expands each declared
// signal into its scalar names ("D[size]" with size=2 becomes D[0], D[1]).
func (x *expansion) flatten(decls []iif.SignalDecl) ([]string, error) {
	var names []string
	for _, sd := range decls {
		if reservedPrefix.MatchString(sd.Name) {
			return nil, iif.Errf(sd.Pos, "signal %q uses the reserved instance-prefix namespace u<N>_", sd.Name)
		}
		if _, isVar := x.vars[sd.Name]; isVar {
			return nil, iif.Errf(sd.Pos, "signal %q collides with a VARIABLE", sd.Name)
		}
		if _, isParam := x.params[sd.Name]; isParam {
			return nil, iif.Errf(sd.Pos, "signal %q collides with a PARAMETER", sd.Name)
		}
		if _, dup := x.dims[sd.Name]; dup {
			return nil, iif.Errf(sd.Pos, "signal %q declared twice", sd.Name)
		}
		dims := make([]int, len(sd.Dims))
		for i, de := range sd.Dims {
			// Dimensions are pure expressions over parameters; ++/--
			// here would silently corrupt variables before the body runs.
			v, err := x.evalIntPure(de)
			if err != nil {
				return nil, err
			}
			if v < 1 {
				return nil, iif.Errf(sd.Pos, "signal %s: dimension %d evaluates to %d", sd.Name, i, v)
			}
			dims[i] = v
		}
		x.dims[sd.Name] = dims
		names = append(names, scalarNames(sd.Name, dims)...)
	}
	return names, nil
}

func scalarNames(base string, dims []int) []string {
	if len(dims) == 0 {
		return []string{base}
	}
	var out []string
	for i := 0; i < dims[0]; i++ {
		out = append(out, scalarNames(fmt.Sprintf("%s[%d]", base, i), dims[1:])...)
	}
	return out
}

// scalarName resolves a signal reference to its flat scalar name,
// checking declared dimensions when known.
func (x *expansion) scalarName(r *iif.Ref) (string, error) {
	if reservedPrefix.MatchString(r.Name) {
		return "", iif.Errf(r.Pos, "signal %q uses the reserved instance-prefix namespace u<N>_", r.Name)
	}
	if _, isVar := x.vars[r.Name]; isVar {
		return "", iif.Errf(r.Pos, "%q is a C variable, not a signal", r.Name)
	}
	if _, isParam := x.params[r.Name]; isParam {
		return "", iif.Errf(r.Pos, "%q is a parameter, not a signal", r.Name)
	}
	idx := make([]int, len(r.Index))
	for i, ie := range r.Index {
		// Indices are pure: Q[i++] mutating the loop variable would be
		// a silent corruption, so ++/-- is rejected here.
		v, err := x.evalIntPure(ie)
		if err != nil {
			return "", err
		}
		idx[i] = v
	}
	if dims, declared := x.dims[r.Name]; declared {
		if len(idx) != len(dims) {
			return "", iif.Errf(r.Pos, "signal %q has %d dimension(s), referenced with %d index(es)", r.Name, len(dims), len(idx))
		}
		for i, v := range idx {
			if v < 0 || v >= dims[i] {
				return "", iif.Errf(r.Pos, "signal %q index %d out of range [0,%d)", r.Name, v, dims[i])
			}
		}
	}
	name := r.Name
	for _, v := range idx {
		name = fmt.Sprintf("%s[%d]", name, v)
	}
	return name, nil
}

// ---- statements ----

// Loop-control sentinels.
type ctrlError int

const (
	ctrlBreak ctrlError = iota
	ctrlContinue
)

func (c ctrlError) Error() string {
	if c == ctrlBreak {
		return "#break outside a loop"
	}
	return "#continue outside a loop"
}

func (x *expansion) exec(s iif.Stmt) error {
	switch st := s.(type) {
	case *iif.Block:
		for _, inner := range st.Stmts {
			if err := x.exec(inner); err != nil {
				return err
			}
		}
		return nil

	case *iif.Assign:
		return x.assign(st)

	case *iif.If:
		v, err := x.evalInt(st.Cond)
		if err != nil {
			return err
		}
		if v != 0 {
			return x.exec(st.Then)
		}
		if st.Else != nil {
			return x.exec(st.Else)
		}
		return nil

	case *iif.For:
		return x.execFor(st)

	case *iif.Break:
		return ctrlBreak

	case *iif.Continue:
		return ctrlContinue

	case *iif.Call:
		return x.call(st)
	}
	return fmt.Errorf("expand: unhandled statement %T", s)
}

func (x *expansion) execFor(st *iif.For) error {
	if st.Init != nil {
		if err := x.execHeaderExpr(st.Init); err != nil {
			return err
		}
	}
	for iters := 0; ; iters++ {
		if iters >= maxLoopIters {
			return iif.Errf(st.Pos, "#for exceeded %d iterations", maxLoopIters)
		}
		if st.Cond != nil {
			v, err := x.evalInt(st.Cond)
			if err != nil {
				return err
			}
			if v == 0 {
				return nil
			}
		}
		err := x.exec(st.Body)
		switch err {
		case nil, ctrlContinue:
		case ctrlBreak:
			return nil
		default:
			return err
		}
		if st.Step != nil {
			if err := x.execHeaderExpr(st.Step); err != nil {
				return err
			}
		}
	}
}

// execHeaderExpr runs a #for init/step expression: either an assignment
// ("i = 0") or a plain C expression evaluated for its side effects
// ("i++").
func (x *expansion) execHeaderExpr(e iif.Expr) error {
	if lhs, rhs, ok := iif.ForAssign(e); ok {
		v, err := x.evalInt(rhs)
		if err != nil {
			return err
		}
		return x.setVar(lhs, v)
	}
	_, err := x.evalInt(e)
	return err
}

func (x *expansion) setVar(r *iif.Ref, v int) error {
	if len(r.Index) != 0 {
		return iif.Errf(r.Pos, "C variable %q cannot be indexed", r.Name)
	}
	if _, ok := x.vars[r.Name]; !ok {
		if _, isParam := x.params[r.Name]; isParam {
			return iif.Errf(r.Pos, "cannot assign to parameter %q", r.Name)
		}
		return iif.Errf(r.Pos, "assignment to undeclared variable %q (declare it with VARIABLE)", r.Name)
	}
	x.vars[r.Name] = v
	return nil
}

func (x *expansion) assign(a *iif.Assign) error {
	if a.CLine {
		if a.Op != iif.OpAssign {
			return iif.Errf(a.Pos, "#c_line supports only plain assignment")
		}
		v, err := x.evalInt(a.RHS)
		if err != nil {
			return err
		}
		return x.setVar(a.LHS, v)
	}
	lhs, err := x.scalarName(a.LHS)
	if err != nil {
		return err
	}
	rhs, err := x.evalBool(a.RHS)
	if err != nil {
		return err
	}
	if a.Op == iif.OpAssign {
		if err := x.net.AddEquation(lhs, rhs); err != nil {
			return iif.Errf(a.Pos, "%v", err)
		}
		return nil
	}
	// Aggregate assignment: fold into any existing definition.
	prev := x.net.Def(lhs)
	if prev == nil {
		if err := x.net.AddEquation(lhs, rhs); err != nil {
			return iif.Errf(a.Pos, "%v", err)
		}
		return nil
	}
	var combined eqn.Node
	switch a.Op {
	case iif.OpAggOr:
		combined = orNode(prev, rhs)
	case iif.OpAggAnd:
		combined = andNode(prev, rhs)
	case iif.OpAggXor:
		combined = eqn.Xor{X: prev, Y: rhs}
	case iif.OpAggXnor:
		combined = eqn.Xnor{X: prev, Y: rhs}
	default:
		return iif.Errf(a.Pos, "unsupported assignment operator %s", a.Op)
	}
	return x.net.ReplaceDef(lhs, combined)
}

// ---- subcomponent calls ----

func (x *expansion) call(c *iif.Call) error {
	pr, err := x.resolveProto(c)
	if err != nil {
		return err
	}
	np := len(pr.params)
	if len(c.Args) < np {
		return iif.Errf(c.Pos, "#%s: needs %d leading parameter argument(s) %v", c.Name, np, pr.params)
	}
	// Evaluate the parameter arguments once, positionally: argument
	// expressions may have side effects (i++), so the width-aware
	// resolution below rebinds these values instead of re-evaluating.
	vals := make([]int, np)
	for i, p := range pr.params {
		v, err := x.evalInt(c.Args[i])
		if err != nil {
			return iif.Errf(c.Pos, "#%s: parameter %q: %v", c.Name, p, err)
		}
		vals[i] = v
	}
	bindings := bindParams(pr.params, vals)
	im, err := x.resolveFinal(c, pr, bindings)
	if err != nil {
		return err
	}
	d, err := x.ex.design(im)
	if err != nil {
		return err
	}
	tmpl, _, err := x.ex.template(d, im, bindings, x.design, x.depth+1)
	if err != nil {
		return err
	}
	need := np + len(tmpl.Inputs) + len(tmpl.Outputs)
	if len(c.Args) != need {
		return iif.Errf(c.Pos, "#%s: got %d argument(s), want %d (%d parameter(s) %v, inputs %v, outputs %v)",
			c.Name, len(c.Args), need, np, d.Params, tmpl.Inputs, tmpl.Outputs)
	}
	// Evaluate every port connection before touching the network or the
	// instances relation, so a failed call leaves no trace.
	inNodes := make([]eqn.Node, len(tmpl.Inputs))
	for i, in := range tmpl.Inputs {
		node, err := x.evalBool(c.Args[np+i])
		if err != nil {
			return iif.Errf(c.Pos, "#%s: input %s: %v", c.Name, in, err)
		}
		inNodes[i] = node
	}
	outNames := make([]string, len(tmpl.Outputs))
	seenOut := make(map[string]bool, len(tmpl.Outputs))
	for j, out := range tmpl.Outputs {
		arg := c.Args[np+len(tmpl.Inputs)+j]
		ref, isRef := arg.(*iif.Ref)
		if !isRef {
			return iif.Errf(c.Pos, "#%s: output %s must connect to a signal, got %s", c.Name, out, iif.ExprString(arg))
		}
		lhs, err := x.scalarName(ref)
		if err != nil {
			return err
		}
		if x.net.Def(lhs) != nil || x.net.IsInput(lhs) || seenOut[lhs] {
			return iif.Errf(ref.Pos, "#%s: output signal %q already driven", c.Name, lhs)
		}
		seenOut[lhs] = true
		outNames[j] = lhs
	}
	if x.deps != nil {
		// Inside a template expansion: only collect the request (plus
		// this call's own transitive subcomponents); the consumer that
		// eventually splices the template records them.
		*x.deps = append(*x.deps, instReq{impl: im.Name, bindings: bindings})
		*x.deps = append(*x.deps, x.ex.netDeps[instKey(im.Name, bindings)]...)
	} else if err := x.ex.recordInstance(x.design, im, bindings); err != nil {
		return iif.Errf(c.Pos, "#%s: %v", c.Name, err)
	}
	prefix := fmt.Sprintf("u%d_", x.nInst)
	x.nInst++
	// Drive the callee's (prefixed) inputs from the caller argument
	// expressions.
	for i, in := range tmpl.Inputs {
		if err := x.net.AddEquation(prefix+in, inNodes[i]); err != nil {
			return iif.Errf(c.Pos, "#%s: %v", c.Name, err)
		}
	}
	// Splice the callee equations, renaming every signal under the
	// instance prefix.
	for _, eq := range tmpl.Eqns {
		if err := x.net.AddEquation(prefix+eq.LHS, eqn.RenameNode(eq.RHS, func(name string) string { return prefix + name })); err != nil {
			return iif.Errf(c.Pos, "#%s: %v", c.Name, err)
		}
	}
	// Alias the callee's outputs onto the caller's output signals.
	for j, out := range tmpl.Outputs {
		if err := x.net.AddEquation(outNames[j], eqn.Var{Name: prefix + out}); err != nil {
			return iif.Errf(c.Pos, "#%s: %v", c.Name, err)
		}
	}
	for _, group := range [][]string{tmpl.Inputs, tmpl.Outputs, tmpl.Internals} {
		for _, n := range group {
			x.net.Internals = append(x.net.Internals, prefix+n)
		}
	}
	return nil
}

// bindParams zips parameter names with positionally evaluated values.
func bindParams(params []string, vals []int) map[string]int {
	bindings := make(map[string]int, len(params))
	for i, p := range params {
		bindings[p] = vals[i]
	}
	return bindings
}

// resolveProto maps a #CALL name to its arity prototype — the database
// entry that fixes the call's parameter list — memoized per name.
// Resolution tries, in order: an implementation of that exact (or
// lower-cased) name, a generator of that exact (or lower-cased) name,
// the best-ranked implementation of a matching component type or
// answering a query by function (the paper's query-by-function path from
// inside the expander), and finally a generator of the matching type or
// function. The prototype only fixes the parameter list; the
// implementation actually spliced is chosen width-aware by resolveFinal
// once the size binding is known.
func (x *expansion) resolveProto(c *iif.Call) (*proto, error) {
	if pr, ok := x.ex.protos[c.Name]; ok {
		return pr, nil
	}
	pr, err := x.resolveProtoUncached(c)
	if err != nil {
		return nil, err
	}
	x.ex.protos[c.Name] = pr
	return pr, nil
}

func (x *expansion) resolveProtoUncached(c *iif.Call) (*proto, error) {
	db := x.ex.db
	for _, name := range []string{c.Name, strings.ToLower(c.Name)} {
		if im, err := db.ImplByName(name); err == nil {
			return &proto{im: &im, exact: true, params: im.Params}, nil
		}
	}
	for _, name := range []string{c.Name, strings.ToLower(c.Name)} {
		if g, err := db.GeneratorByName(name); err == nil {
			return &proto{gen: &g, exact: true, params: g.Params}, nil
		}
	}
	im, ok, err := cheapestWhere(func(visit func(icdb.Candidate) bool) error {
		return x.scanByTypeOrFunction(c, visit)
	}, nil)
	if err != nil {
		return nil, iif.Errf(c.Pos, "#%s: %v", c.Name, err)
	}
	if ok {
		return &proto{im: &im, params: im.Params}, nil
	}
	if gens := x.generatorsFor(c); len(gens) > 0 {
		g := gens[0] // generatorsFor sorts by name; any fixes the arity
		return &proto{gen: &g, params: g.Params}, nil
	}
	return nil, iif.Errf(c.Pos, "#%s: resolves to no implementation, generator, component type, or function in the database", c.Name)
}

// scanByTypeOrFunction streams the stored implementations the call name
// selects: the implementations of a matching GENUS component type, or
// those answering a query by function. Only one of the two paths can
// match (the vocabularies are disjoint).
func (x *expansion) scanByTypeOrFunction(c *iif.Call, visit func(icdb.Candidate) bool, cs ...icdb.Constraint) error {
	db := x.ex.db
	if ct, ok := genus.NormalizeComponentType(c.Name); ok {
		return db.QueryByComponentScan(ct, visit, cs...)
	}
	if fn, err := genus.NormalizeFunction(c.Name); err == nil {
		return db.QueryByFunctionScan(fn, visit, cs...)
	}
	return nil
}

// generatorsFor lists the registered generators the call name selects by
// component type or function, sorted by name.
func (x *expansion) generatorsFor(c *iif.Call) []icdb.Generator {
	db := x.ex.db
	if ct, ok := genus.NormalizeComponentType(c.Name); ok {
		gens, err := db.GeneratorsByComponent(ct)
		if err != nil {
			return nil
		}
		return gens
	}
	if fn, err := genus.NormalizeFunction(c.Name); err == nil {
		all, err := db.Generators()
		if err != nil {
			return nil
		}
		var out []icdb.Generator
		for _, g := range all {
			if g.Executes(fn) {
				out = append(out, g)
			}
		}
		return out
	}
	return nil
}

// resolveFinal picks the implementation a call actually splices, given
// the evaluated parameter bindings. Exact-name prototypes are
// authoritative: a named implementation that cannot stretch to the
// requested size is an error, and a named generator is run at the
// binding point. Query-resolved calls are width-aware in all cases: when
// the bindings carry a size, candidates are filtered to implementations
// covering it (and sharing the prototype's parameter list, so the
// positionally evaluated values rebind safely) *before* ranking, and
// ranked by their cost estimated at that width (see icdb.AtWidth). When
// no stored implementation covers the size, resolution falls through to
// the registered generators and synthesizes one.
func (x *expansion) resolveFinal(c *iif.Call, pr *proto, bindings map[string]int) (icdb.Impl, error) {
	db := x.ex.db
	sz, hasSz := bindings["size"]
	if pr.exact {
		if pr.im != nil {
			if hasSz && (sz < pr.im.WidthMin || sz > pr.im.WidthMax) {
				return icdb.Impl{}, iif.Errf(c.Pos, "#%s: size %d outside implementation %q width range [%d,%d]",
					c.Name, sz, pr.im.Name, pr.im.WidthMin, pr.im.WidthMax)
			}
			return *pr.im, nil
		}
		im, _, err := db.Generate(pr.gen.Name, bindings)
		if err != nil {
			return icdb.Impl{}, iif.Errf(c.Pos, "#%s: %v", c.Name, err)
		}
		return im, nil
	}
	if !hasSz {
		if pr.im != nil {
			return *pr.im, nil
		}
		// A query-resolved generator prototype always declares "size"
		// (RegisterGenerator enforces it), so its bindings carry one.
		return icdb.Impl{}, iif.Errf(c.Pos, "#%s: generator %q needs a size binding", c.Name, pr.gen.Name)
	}
	key := resolveKey{name: c.Name, bindings: icdb.BindingsKey(bindings), ports: len(c.Args) - len(pr.params)}
	if im, ok := x.ex.resolved[key]; ok {
		return im, nil
	}
	// Stored implementations first: filtered to the requested width, the
	// prototype's parameter list, and the call's port shape before
	// ranking, ranked by estimated-at-width cost.
	match := x.shapeMatch(c, pr, bindings)
	im, ok, err := cheapestWhere(func(visit func(icdb.Candidate) bool) error {
		return x.scanByTypeOrFunction(c, visit, icdb.AtWidth(sz))
	}, match)
	if err != nil {
		return icdb.Impl{}, iif.Errf(c.Pos, "#%s: %v", c.Name, err)
	}
	if ok {
		x.ex.resolved[key] = im
		return im, nil
	}
	// Generator fallback: no stored implementation covers the width.
	if im, ok, err := x.generateFor(c, sz, bindings, pr.params); err != nil {
		return icdb.Impl{}, err
	} else if ok {
		return im, nil
	}
	if pr.im != nil {
		return icdb.Impl{}, iif.Errf(c.Pos, "#%s: size %d outside implementation %q width range [%d,%d]",
			c.Name, sz, pr.im.Name, pr.im.WidthMin, pr.im.WidthMax)
	}
	return icdb.Impl{}, iif.Errf(c.Pos, "#%s: no implementation or generator covers size %d with the call's %d port connection(s)",
		c.Name, sz, len(c.Args)-len(pr.params))
}

// shapeMatch builds the pre-ranking candidate filter of a width-aware
// resolution: the candidate must declare exactly the prototype's
// parameter list (the positionally evaluated values rebind safely) and
// its declared ports, flattened at the evaluated bindings, must account
// for the call's remaining arguments — so a structurally incompatible
// implementation is filtered out before ranking, not discovered after an
// expensive template expansion.
func (x *expansion) shapeMatch(c *iif.Call, pr *proto, bindings map[string]int) func(icdb.Candidate) bool {
	want := len(c.Args) - len(pr.params)
	return func(cand icdb.Candidate) bool {
		if !slices.Equal(cand.Impl.Params, pr.params) {
			return false
		}
		d, err := x.ex.design(cand.Impl)
		if err != nil {
			return false
		}
		n, err := portCount(d, bindings)
		return err == nil && n == want
	}
}

// portCount evaluates how many scalar input and output ports design d
// exposes at the given parameter bindings, without expanding its body:
// declaration dimensions are pure expressions over parameters, so the
// flattened port count is their product-sum.
func portCount(d *iif.Design, bindings map[string]int) (int, error) {
	px := &expansion{params: bindings, vars: map[string]int{}}
	n := 0
	for _, decls := range [][]iif.SignalDecl{d.Inputs, d.Outputs} {
		for _, sd := range decls {
			scalars := 1
			for _, de := range sd.Dims {
				v, err := px.evalIntPure(de)
				if err != nil {
					return 0, err
				}
				if v < 1 {
					return 0, iif.Errf(sd.Pos, "signal %s: dimension evaluates to %d", sd.Name, v)
				}
				scalars *= v
			}
			n += scalars
		}
	}
	return n, nil
}

// generateFor runs the cheapest matching generator at the binding point:
// candidates must match the call by type or function, cover the
// requested width, declare exactly the prototype's parameter list
// (positional rebinding safety), and present the call's port shape; they
// are ranked by cost estimated at the binding point. Not memoized in
// resolved — the emitted implementation depends on the full binding set,
// and Generate dedups per point itself.
func (x *expansion) generateFor(c *iif.Call, sz int, bindings map[string]int, params []string) (icdb.Impl, bool, error) {
	db := x.ex.db
	gens := x.generatorsFor(c)
	want := len(c.Args) - len(params)
	var best *icdb.Generator
	var bestCost float64
	for i := range gens {
		g := &gens[i]
		if sz < g.WidthMin || sz > g.WidthMax || !slices.Equal(g.Params, params) {
			continue
		}
		if d, err := iif.Parse(g.Source); err != nil {
			continue
		} else if n, err := portCount(d, bindings); err != nil || n != want {
			continue
		}
		_, _, cost, err := db.GeneratorCost(*g, bindings)
		if err != nil {
			return icdb.Impl{}, false, iif.Errf(c.Pos, "#%s: %v", c.Name, err)
		}
		if best == nil || cost < bestCost {
			best, bestCost = g, cost
		}
	}
	if best == nil {
		return icdb.Impl{}, false, nil
	}
	im, _, err := db.Generate(best.Name, bindings)
	if err != nil {
		return icdb.Impl{}, false, iif.Errf(c.Pos, "#%s: %v", c.Name, err)
	}
	return im, true, nil
}

// cheapestWhere folds a streamed query down to its single best-ranked
// candidate (lowest cost, name as tie-break — the same order the ranked
// queries return) without materializing the result set: resolution only
// ever needs the winner, so the candidates are consumed as they stream.
// A non-nil match additionally filters candidates before ranking. Scan
// errors propagate — under a width evaluation point a broken estimator
// expression fails the scan per row, and swallowing that would silently
// demote the catalog's intended candidate to a generator fallback.
func cheapestWhere(scan func(visit func(icdb.Candidate) bool) error, match func(icdb.Candidate) bool) (icdb.Impl, bool, error) {
	var best icdb.Impl
	var bestCost float64
	found := false
	err := scan(func(cand icdb.Candidate) bool {
		if match != nil && !match(cand) {
			return true
		}
		if !found || cand.Cost < bestCost ||
			(cand.Cost == bestCost && cand.Impl.Name < best.Name) {
			// Clone: the streamed Impl shares the query cache's slices
			// and must not be retained past the visit.
			best, bestCost, found = cand.Impl.Clone(), cand.Cost, true
		}
		return true
	})
	if err != nil {
		return icdb.Impl{}, false, err
	}
	return best, found, nil
}
