package cql

import (
	"fmt"
	"io"
	"strings"

	"icdb/internal/expand"
	"icdb/internal/genus"
	"icdb/internal/icdb"
	"icdb/internal/iif"
)

// HelpText is the command summary the "help" command prints; the full
// grammar lives in CQL.md. The attribute and order-key lists are built
// from the same engine vocabularies the parser validates against.
var HelpText = fmt.Sprintf(`CQL commands:
  find component [of type <Type>] [executing <Fn> and <Fn>...]
                 [with <attr> <op> <n> and ...]
                 [at width <bits>]
                 [order by %s [asc|desc]]
                 [limit <n>]
  find pareto [of type <Type> | of generator <G>]
              [with <attr> <op> <n> and ...] [at width <bits>]
              [dominated] [limit <n>]
  explore <generator> width <lo>..<hi> [step <n>] [materialize]
          [param=value ...]
  show impls | components | functions | generators | explorations
  describe <impl>
  expand <file|-> [param=value ...]
  generate <generator|component> param=value ...
  estimate <impl> width=<bits> [%s]
  set width <bits|off> | set area_weight <w|off> | set delay_weight <w|off>
  show session | show server
  help

Attributes: %s.
Operators:  <=  <  >=  >  =  !=   ("width = 8" means the range covers 8 bits).
With "at width <bits>", candidates must cover the width and area/delay
are the estimator expressions evaluated there (scalars when none is
registered).
Without "order by"/"limit", results stream in unspecified order; with
either, they arrive ranked (default key: weighted cost, ascending).
"explore" sweeps a generator's size across the width range, recording
each design point; "materialize" also registers the implementations.
"find pareto" streams the non-dominated frontier of the recorded
points in ascending area order; "dominated" adds the beaten points,
each naming the frontier point that dominates it and by how much.
Session parameters: "set width" is the default evaluation point for
find commands without an "at width" clause; the weight overrides
rescore ranking for this session only. "show session" lists them.
`, strings.Join(orderKeyWords, "|"), strings.Join(estimateWords, "|"), strings.Join(attrWords, ", "))

// Env is the execution environment of a CQL session: the database
// commands run against, the writer results are printed to, and the
// file loader expand commands read designs through.
type Env struct {
	// DB is the component database; it must be non-nil.
	DB *icdb.DB
	// Out receives command output. Errors are returned, not printed.
	Out io.Writer
	// ReadFile loads the design source for an expand command. Leaving it
	// nil disables expand (for embedders that must not touch the
	// filesystem); the command then fails with a positioned error.
	ReadFile func(path string) ([]byte, error)
	// ServerInfo, when non-nil, renders the "show server" operator view
	// (a network server binds its counters and limits here). Nil — the
	// local front-ends — makes the command fail with a positioned
	// error, since there is no server to describe.
	ServerInfo func(w io.Writer) error

	// expander is created lazily and kept for the Env's lifetime, so a
	// REPL session reuses parsed designs and expanded templates.
	expander *expand.Expander

	// Session parameters (the "set" command). width, when positive, is
	// the default width evaluation point applied to find commands that
	// have no "at width" clause of their own. wArea/wDelay, when non-nil,
	// override the database ranking weights for this session's queries.
	// Each Env is one session: a server gives every connection its own.
	width  int
	wArea  *float64
	wDelay *float64
}

// Exec parses and executes one CQL command line. Results stream to
// env.Out as they are produced; errors (including parse errors with
// their column positions) are returned.
func (env *Env) Exec(src string) error {
	stmt, err := Parse(src)
	if err != nil {
		return err
	}
	switch s := stmt.(type) {
	case *FindStmt:
		return env.execFind(s)
	case *ParetoStmt:
		return env.execPareto(s)
	case *ShowStmt:
		return env.execShow(s)
	case *DescribeStmt:
		return env.execDescribe(s)
	case *ExpandStmt:
		return env.execExpand(s)
	case *GenerateStmt:
		return env.execGenerate(s)
	case *EstimateStmt:
		return env.execEstimate(s)
	case *ExploreStmt:
		return env.execExplore(s)
	case *SetStmt:
		return env.execSet(s)
	case *HelpStmt:
		_, err := io.WriteString(env.Out, HelpText)
		return err
	}
	return fmt.Errorf("cql: unhandled statement %T", stmt)
}

// execFind compiles and runs a find command, printing one numbered row
// per candidate as the engine yields it. Session parameters apply here:
// a set width fills in for a missing "at width" clause, and weight
// overrides rescore the ranking. A failed write to env.Out stops the
// stream immediately — a streamed find over a large catalog must not
// keep scanning for a client that is gone.
func (env *Env) execFind(f *FindStmt) error {
	if f.At == nil && env.width > 0 {
		at := *f // the session default must not mutate the caller's AST
		at.At = &AtClause{Width: env.width}
		f = &at
	}
	q, err := CompileFind(env.DB, f)
	if err != nil {
		return err
	}
	if env.wArea != nil || env.wDelay != nil {
		wa, wd := env.DB.RankWeights()
		if env.wArea != nil {
			wa = *env.wArea
		}
		if env.wDelay != nil {
			wd = *env.wDelay
		}
		q.cs = append(q.cs, icdb.Weights(wa, wd))
	}
	n := 0
	var werr error
	err = q.Run(func(c icdb.Candidate) bool {
		n++
		// Area/Delay are the query-evaluated estimates: the scalars on a
		// plain find, the estimator values at the width of an "at width"
		// find.
		_, werr = fmt.Fprintf(env.Out, "%d. %-12s %-18s width %d..%d area %g delay %g cost %g\n",
			n, c.Impl.Name, c.Impl.Component, c.Impl.WidthMin, c.Impl.WidthMax,
			c.Area, c.Delay, c.Cost)
		return werr == nil
	})
	if err != nil {
		return err
	}
	if werr != nil {
		return werr
	}
	if n == 0 {
		fmt.Fprintln(env.Out, "no matching implementations")
	}
	return nil
}

// execPareto compiles and runs a "find pareto" command, streaming the
// frontier (and, with "dominated", the beaten points with their
// explanations) as the engine yields it. Session weight overrides
// rescore the printed cost exactly as on the find path; the session
// width default is NOT applied — an "at width" pin on a frontier query
// filters to points explored at exactly that width, which must be an
// explicit ask. Like a streamed find, a failed write stops the stream.
func (env *Env) execPareto(f *ParetoStmt) error {
	q := icdb.ParetoQuery{Dominated: f.Dominated}
	if f.Type != nil {
		ct, ok := genus.NormalizeComponentType(f.Type.Text)
		if !ok {
			return &Error{Col: f.Type.Col,
				Msg:  "unknown component type '" + f.Type.Text + "'",
				Hint: suggest(f.Type.Text, componentTypeNames())}
		}
		q.Component = ct
	}
	if f.Generator != nil {
		// Not validated against the generators relation: exploration
		// spaces also form under implementation names (EstimateImpl).
		q.Generator = f.Generator.Text
	}
	for i := range f.Where {
		c, err := compileCond(&f.Where[i])
		if err != nil {
			return err
		}
		q.Constraints = append(q.Constraints, c)
	}
	if f.At != nil {
		q.Constraints = append(q.Constraints, icdb.AtWidth(f.At.Width))
	}
	if env.wArea != nil || env.wDelay != nil {
		wa, wd := env.DB.RankWeights()
		if env.wArea != nil {
			wa = *env.wArea
		}
		if env.wDelay != nil {
			wd = *env.wDelay
		}
		q.Constraints = append(q.Constraints, icdb.Weights(wa, wd))
	}
	n, frontier := 0, 0
	var werr error
	err := env.DB.Pareto(q, func(p icdb.ParetoPoint) bool {
		if f.HasLimit && n >= f.Limit {
			return false
		}
		n++
		if p.Dominated {
			_, werr = fmt.Fprintf(env.Out, "   %-24s %-18s width %3d area %g delay %g cost %g  dominated by %s (Δarea %g, Δdelay %g)\n",
				p.PointID(), p.Component, p.Width, p.Area, p.Delay, p.Cost,
				p.DominatedBy, p.DArea, p.DDelay)
		} else {
			frontier++
			_, werr = fmt.Fprintf(env.Out, "%d. %-24s %-18s width %3d area %g delay %g cost %g\n",
				frontier, p.PointID(), p.Component, p.Width, p.Area, p.Delay, p.Cost)
		}
		return werr == nil
	})
	if err != nil {
		return err
	}
	if werr != nil {
		return werr
	}
	if n == 0 {
		fmt.Fprintln(env.Out, "no explored design points match (run 'explore' or 'generate' first)")
	}
	return nil
}

// execExplore resolves the generator, runs the sweep, and prints one
// row per evaluated design point.
func (env *Env) execExplore(s *ExploreStmt) error {
	if _, err := env.DB.GeneratorByName(s.Gen.Text); err != nil {
		return &Error{Col: s.Gen.Col,
			Msg:  "unknown generator '" + s.Gen.Text + "'",
			Hint: suggest(s.Gen.Text, generatorNames(env.DB))}
	}
	params := make(map[string]int, len(s.Params))
	for _, p := range s.Params {
		params[p.Name.Text] = p.Value
	}
	step := s.Step
	if step == 0 {
		step = 1
	}
	pts, err := env.DB.Explore(s.Gen.Text, s.Lo, s.Hi, step, params, s.Materialize)
	if err != nil {
		return errf(s.RangeCol, "%v", err)
	}
	for _, pt := range pts {
		if pt.Impl != "" {
			verb := "registered"
			if pt.Reused {
				verb = "reused"
			}
			_, err = fmt.Fprintf(env.Out, "width %3d: area %g delay %g cost %g  %s %s\n",
				pt.Width, pt.Area, pt.Delay, pt.Cost, verb, pt.Impl)
		} else {
			_, err = fmt.Fprintf(env.Out, "width %3d: area %g delay %g cost %g\n",
				pt.Width, pt.Area, pt.Delay, pt.Cost)
		}
		if err != nil {
			return err
		}
	}
	_, err = fmt.Fprintf(env.Out, "explored %d design point(s) of %s\n", len(pts), s.Gen.Text)
	return err
}

// execSet records one session parameter (see Env's session fields).
func (env *Env) execSet(s *SetStmt) error {
	switch s.Param.Text {
	case "width":
		if s.Off {
			env.width = 0
		} else {
			env.width = int(s.Value)
		}
	case "area_weight":
		env.wArea = setWeight(s)
	case "delay_weight":
		env.wDelay = setWeight(s)
	default:
		return errf(s.Param.Col, "unknown session parameter '%s'", s.Param.Text)
	}
	return env.showSession()
}

func setWeight(s *SetStmt) *float64 {
	if s.Off {
		return nil
	}
	v := s.Value
	return &v
}

// showSession prints the session parameters, marking which are session
// overrides and which fall through to the database defaults.
func (env *Env) showSession() error {
	w := env.Out
	if env.width > 0 {
		fmt.Fprintf(w, "width:        %d (default evaluation point for find)\n", env.width)
	} else {
		fmt.Fprintln(w, "width:        off (find uses scalar estimates unless 'at width' is given)")
	}
	dwa, dwd := env.DB.RankWeights()
	if env.wArea != nil {
		fmt.Fprintf(w, "area_weight:  %g (session override; database default %g)\n", *env.wArea, dwa)
	} else {
		fmt.Fprintf(w, "area_weight:  %g (database default)\n", dwa)
	}
	if env.wDelay != nil {
		fmt.Fprintf(w, "delay_weight: %g (session override; database default %g)\n", *env.wDelay, dwd)
	} else {
		fmt.Fprintf(w, "delay_weight: %g (database default)\n", dwd)
	}
	return nil
}

// execShow prints one of the catalog listings in deterministic order
// (implementations in insertion order, vocabularies in GENUS order).
// Like a streamed find, every listing stops at the first sink failure
// — the server's cancel/quota/shutdown aborts land as write errors,
// and a dead client must not get the whole catalog rendered.
func (env *Env) execShow(s *ShowStmt) error {
	switch s.What.Text {
	case "session":
		return env.showSession()
	case "server":
		if env.ServerInfo == nil {
			return errf(s.What.Col, "show server needs a network session (connect to an icdbd server)")
		}
		return env.ServerInfo(env.Out)
	case "impls":
		impls, err := env.DB.Impls()
		if err != nil {
			return err
		}
		for _, im := range impls {
			if _, err := fmt.Fprintf(env.Out, "%-12s %-18s %-12s width %d..%d area %g delay %g  %s\n",
				im.Name, im.Component, im.Style, im.WidthMin, im.WidthMax,
				im.Area, im.Delay, genus.FunctionSetKey(im.Functions)); err != nil {
				return err
			}
		}
	case "components":
		for _, ct := range genus.AllComponentTypes() {
			fns, err := env.DB.ComponentFunctions(ct)
			if err != nil {
				return err
			}
			if _, err := fmt.Fprintf(env.Out, "%-18s %s\n", ct, joinFns(fns)); err != nil {
				return err
			}
		}
	case "functions":
		for _, fn := range genus.AllFunctions() {
			var err error
			if a, ok := genus.Arity(fn); ok {
				_, err = fmt.Fprintf(env.Out, "%-10s %d in, %d out\n", fn, a.Inputs, a.Outputs)
			} else {
				_, err = fmt.Fprintf(env.Out, "%s\n", fn)
			}
			if err != nil {
				return err
			}
		}
	case "explorations":
		xs, err := env.DB.Explorations()
		if err != nil {
			return err
		}
		if len(xs) == 0 {
			fmt.Fprintln(env.Out, "no recorded explorations (run 'explore', 'generate', or 'estimate')")
			return nil
		}
		for _, e := range xs {
			if _, err := fmt.Fprintf(env.Out, "%-24s %-18s width %3d area %g delay %g\n",
				e.PointID(), e.Component, e.Width, e.Area, e.Delay); err != nil {
				return err
			}
		}
	case "generators":
		gens, err := env.DB.Generators()
		if err != nil {
			return err
		}
		if len(gens) == 0 {
			fmt.Fprintln(env.Out, "no registered generators")
			return nil
		}
		for _, g := range gens {
			if _, err := fmt.Fprintf(env.Out, "%-12s %-18s %-12s width %d..%d area= %s delay= %s  %s\n",
				g.Name, g.Component, g.Style, g.WidthMin, g.WidthMax,
				g.AreaExpr, g.DelayExpr, genus.FunctionSetKey(g.Functions)); err != nil {
				return err
			}
		}
	}
	return nil
}

// execDescribe prints the full record of one implementation, its IIF
// source indented beneath the attributes.
func (env *Env) execDescribe(s *DescribeStmt) error {
	im, err := env.DB.ImplByName(s.Name.Text)
	if err != nil {
		return &Error{Col: s.Name.Col,
			Msg:  "unknown implementation '" + s.Name.Text + "'",
			Hint: suggest(s.Name.Text, implNames(env.DB))}
	}
	w := env.Out
	fmt.Fprintf(w, "name:      %s\n", im.Name)
	fmt.Fprintf(w, "component: %s\n", im.Component)
	fmt.Fprintf(w, "style:     %s\n", im.Style)
	fmt.Fprintf(w, "functions: %s\n", joinFns(im.Functions))
	fmt.Fprintf(w, "width:     %d..%d bits\n", im.WidthMin, im.WidthMax)
	fmt.Fprintf(w, "stages:    %d\n", im.Stages)
	fmt.Fprintf(w, "area:      %g (per bit)\n", im.Area)
	fmt.Fprintf(w, "delay:     %g (per bit)\n", im.Delay)
	fmt.Fprintf(w, "params:    %s\n", strings.Join(im.Params, ","))
	if ests, err := env.DB.Estimators(im.Name); err == nil && len(ests) > 0 {
		for _, attr := range icdb.EstimatorAttrs() {
			if expr, ok := ests[attr]; ok {
				fmt.Fprintf(w, "estimator: %s = %s\n", attr, expr)
			}
		}
	}
	fmt.Fprintln(w, "source:")
	for _, line := range strings.Split(strings.Trim(im.Source, "\n"), "\n") {
		fmt.Fprintf(w, "  | %s\n", line)
	}
	return nil
}

// execGenerate resolves a generator — by exact name, or the cheapest
// parameter-compatible generator of a component type — runs it at the
// binding point, and prints the registered implementation.
func (env *Env) execGenerate(s *GenerateStmt) error {
	params := make(map[string]int, len(s.Params))
	for _, p := range s.Params {
		params[p.Name.Text] = p.Value
	}
	g, err := env.DB.GeneratorByName(s.Name.Text)
	if err != nil {
		g, err = env.pickGenerator(s, params)
		if err != nil {
			return err
		}
	}
	im, reused, err := env.DB.Generate(g.Name, params)
	if err != nil {
		return errf(s.Name.Col, "%v", err)
	}
	verb := "registered"
	if reused {
		verb = "reused"
	}
	fmt.Fprintf(env.Out, "%s %s: %s %s width %d..%d area %g delay %g (generator %s)\n",
		verb, im.Name, im.Component, im.Style, im.WidthMin, im.WidthMax, im.Area, im.Delay, g.Name)
	return nil
}

// pickGenerator resolves a generate command's name as a component type
// and selects that type's cheapest generator at the binding point, among
// those whose parameter names match the given bindings.
func (env *Env) pickGenerator(s *GenerateStmt, params map[string]int) (icdb.Generator, error) {
	ct, ok := genus.NormalizeComponentType(s.Name.Text)
	if !ok {
		return icdb.Generator{}, &Error{Col: s.Name.Col,
			Msg:  "unknown generator or component type '" + s.Name.Text + "'",
			Hint: suggest(s.Name.Text, append(generatorNames(env.DB), componentTypeNames()...))}
	}
	gens, err := env.DB.GeneratorsByComponent(ct)
	if err != nil {
		return icdb.Generator{}, err
	}
	var best *icdb.Generator
	var bestCost float64
	for i := range gens {
		g := &gens[i]
		if !sameBindingNames(g.Params, params) {
			continue
		}
		// Filter by width coverage before ranking, exactly like the
		// expander's generator fallback: a cheap generator that cannot
		// stretch to the bound size must not shadow one that can.
		if sz, ok := params["size"]; ok && (sz < g.WidthMin || sz > g.WidthMax) {
			continue
		}
		_, _, cost, err := env.DB.GeneratorCost(*g, params)
		if err != nil {
			continue
		}
		if best == nil || cost < bestCost {
			best, bestCost = g, cost
		}
	}
	if best == nil {
		return icdb.Generator{}, errf(s.Name.Col, "no generator of type %s matches the given parameters", ct)
	}
	return *best, nil
}

// sameBindingNames reports whether the binding map covers exactly the
// declared parameter names.
func sameBindingNames(declared []string, params map[string]int) bool {
	if len(declared) != len(params) {
		return false
	}
	for _, p := range declared {
		if _, ok := params[p]; !ok {
			return false
		}
	}
	return true
}

// execEstimate evaluates one implementation's estimators at a width
// point and prints the requested attribute (or all three).
func (env *Env) execEstimate(s *EstimateStmt) error {
	if _, err := env.DB.ImplByName(s.Name.Text); err != nil {
		return &Error{Col: s.Name.Col,
			Msg:  "unknown implementation '" + s.Name.Text + "'",
			Hint: suggest(s.Name.Text, implNames(env.DB))}
	}
	area, delay, cost, err := env.DB.EstimateImpl(s.Name.Text, s.Width)
	if err != nil {
		return errf(s.WidthCol, "%v", err)
	}
	if s.Attr != nil {
		v := cost
		switch s.Attr.Text {
		case "area":
			v = area
		case "delay":
			v = delay
		}
		fmt.Fprintf(env.Out, "%s(%d) = %g\n", s.Attr.Text, s.Width, v)
		return nil
	}
	fmt.Fprintf(env.Out, "%s at width %d: area %g delay %g cost %g\n",
		s.Name.Text, s.Width, area, delay, cost)
	return nil
}

// execExpand reads, parses, and flattens an IIF design against the
// database, printing the expanded equation network.
func (env *Env) execExpand(s *ExpandStmt) error {
	if env.ReadFile == nil {
		return errf(s.Path.Col, "expand is not available in this session")
	}
	src, err := env.ReadFile(s.Path.Text)
	if err != nil {
		return errf(s.Path.Col, "%v", err)
	}
	params := make(map[string]int, len(s.Params))
	for _, p := range s.Params {
		params[p.Name.Text] = p.Value
	}
	d, err := iif.Parse(string(src))
	if err != nil {
		return err
	}
	if env.expander == nil {
		env.expander = expand.New(env.DB)
	}
	net, err := env.expander.Expand(d, params)
	if err != nil {
		return err
	}
	if err := net.Validate(); err != nil {
		return fmt.Errorf("expanded network is malformed: %w", err)
	}
	if _, err := net.TopoOrder(); err != nil {
		return err
	}
	_, err = io.WriteString(env.Out, net.Format())
	return err
}
