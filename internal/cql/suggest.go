package cql

import "strings"

// maxSuggestDist bounds how far a typo may be from a vocabulary word to
// still earn a "did you mean" hint. Two edits covers transpositions and
// the common doubled/dropped letter without suggesting nonsense.
const maxSuggestDist = 2

// suggest returns the vocabulary word closest to got (case-insensitive
// Levenshtein distance, at most maxSuggestDist edits), or "" when
// nothing is close enough. Ties go to the earlier vocabulary entry so
// suggestions are deterministic.
func suggest(got string, vocab []string) string {
	got = strings.ToLower(got)
	best, bestDist := "", maxSuggestDist+1
	for _, w := range vocab {
		if d := editDistance(got, strings.ToLower(w)); d < bestDist {
			best, bestDist = w, d
		}
	}
	return best
}

// editDistance is the Levenshtein distance between a and b, computed
// with a rolling single row.
func editDistance(a, b string) int {
	if a == b {
		return 0
	}
	row := make([]int, len(b)+1)
	for j := range row {
		row[j] = j
	}
	for i := 1; i <= len(a); i++ {
		prevDiag := row[0]
		row[0] = i
		for j := 1; j <= len(b); j++ {
			ins := row[j-1] + 1
			del := row[j] + 1
			sub := prevDiag
			if a[i-1] != b[j-1] {
				sub++
			}
			prevDiag = row[j]
			row[j] = min(ins, del, sub)
		}
	}
	return row[len(b)]
}
