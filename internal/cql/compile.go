package cql

import (
	"sort"
	"strings"

	"icdb/internal/genus"
	"icdb/internal/icdb"
)

// FindQuery is a compiled FindStmt, bound to a database and ready to
// run. Compilation resolves the statement's vocabulary (functions,
// component type, order key) and lowers its "with" clause onto engine
// constraints; Run picks the engine path.
type FindQuery struct {
	db      *icdb.DB
	fns     []genus.Function
	comp    genus.ComponentType
	hasComp bool
	cs      []icdb.Constraint
	order   icdb.Order
	ranked  bool
	limit   int
}

// CompileFind lowers a parsed find command onto db's query engine.
// Vocabulary errors (unknown function or component type) are returned
// as *Error values positioned at the offending word, with suggestions.
func CompileFind(db *icdb.DB, f *FindStmt) (*FindQuery, error) {
	q := &FindQuery{db: db}
	if f.Type != nil {
		ct, ok := genus.NormalizeComponentType(f.Type.Text)
		if !ok {
			return nil, &Error{Col: f.Type.Col,
				Msg:  "unknown component type '" + f.Type.Text + "'",
				Hint: suggest(f.Type.Text, componentTypeNames())}
		}
		q.comp, q.hasComp = ct, true
	}
	for _, w := range f.Executing {
		fn, err := genus.NormalizeFunction(w.Text)
		if err != nil {
			return nil, &Error{Col: w.Col,
				Msg:  "unknown function '" + w.Text + "'",
				Hint: suggest(w.Text, functionNames())}
		}
		q.fns = append(q.fns, fn)
	}
	for i := range f.Where {
		c, err := compileCond(&f.Where[i])
		if err != nil {
			return nil, err
		}
		q.cs = append(q.cs, c)
	}
	if f.At != nil {
		// The evaluation point both restricts candidates to the width and
		// makes every area/delay the engine filters, ranks, or reports the
		// estimator value at it.
		q.cs = append(q.cs, icdb.AtWidth(f.At.Width))
	}
	if f.OrderBy != nil {
		q.order = icdb.Order{Attr: f.OrderBy.Key.Text, Desc: f.OrderBy.Desc}
		q.ranked = true
	}
	if f.HasLimit {
		q.limit = f.Limit
		q.ranked = true
	}
	return q, nil
}

// compileCond lowers one attribute comparison onto an engine constraint.
// The "width" attribute is sugar over the implementation's width range:
//
//	width = n   → the range covers n (icdb.ForWidth)
//	width >= n  → some covered width is >= n (width_max >= n)
//	width > n   → width_max > n
//	width <= n  → some covered width is <= n (width_min <= n)
//	width < n   → width_min < n
//
// "width != n" has no single-range meaning and is rejected.
func compileCond(c *Cond) (icdb.Constraint, error) {
	if c.Attr.Text == "width" {
		switch c.Op {
		case EQ:
			if !c.ValueIsInt {
				return icdb.Constraint{}, errf(c.ValueCol, "width must be a whole number of bits, got %g", c.Value)
			}
			return icdb.ForWidth(int(c.Value)), nil
		case GE:
			return icdb.AttrCmp("width_max", icdb.CmpGE, c.Value)
		case GT:
			return icdb.AttrCmp("width_max", icdb.CmpGT, c.Value)
		case LE:
			return icdb.AttrCmp("width_min", icdb.CmpLE, c.Value)
		case LT:
			return icdb.AttrCmp("width_min", icdb.CmpLT, c.Value)
		}
		return icdb.Constraint{}, errf(c.OpCol, "'width != n' is not expressible over a width range; constrain width_min or width_max directly")
	}
	op, ok := map[Kind]icdb.CmpOp{
		LE: icdb.CmpLE, LT: icdb.CmpLT, GE: icdb.CmpGE,
		GT: icdb.CmpGT, EQ: icdb.CmpEQ, NE: icdb.CmpNE,
	}[c.Op]
	if !ok {
		return icdb.Constraint{}, errf(c.OpCol, "operator %s not valid in a constraint", c.OpText)
	}
	con, err := icdb.AttrCmp(c.Attr.Text, op, c.Value)
	if err != nil {
		return icdb.Constraint{}, errf(c.Attr.Col, "%v", err)
	}
	return con, nil
}

// Ranked reports whether the query runs on the materializing ranked
// path (an order-by or limit clause is present) rather than streaming
// candidates in unspecified order.
func (q *FindQuery) Ranked() bool { return q.ranked }

// Run executes the query, yielding each candidate to visit; visit
// returning false stops the delivery.
//
// Without an order-by or limit clause the query streams through the
// engine's Scan visitors: candidates arrive in unspecified order, the
// yielded Impl shares the cache's backing (read-only; Clone to retain),
// and visit must not call back into the DB. With an order-by or limit
// clause the engine ranks first — bounded by the TopK heap — and visit
// receives caller-owned candidates, best first.
func (q *FindQuery) Run(visit func(icdb.Candidate) bool) error {
	if q.ranked {
		cands, err := q.rankedCandidates()
		if err != nil {
			return err
		}
		for _, c := range cands {
			if !visit(c) {
				return nil
			}
		}
		return nil
	}
	// Streaming path. When both a component type and functions are
	// given, stream by function and filter the component inline.
	filtered := func(c icdb.Candidate) bool {
		if q.hasComp && c.Impl.Component != q.comp {
			return true
		}
		return visit(c)
	}
	switch {
	case len(q.fns) > 0:
		return q.db.QueryByFunctionsScan(q.fns, filtered, q.cs...)
	case q.hasComp:
		return q.db.QueryByComponentScan(q.comp, visit, q.cs...)
	default:
		return q.db.QueryScan(visit, q.cs...)
	}
}

// rankedCandidates materializes the ordered answer on the narrowest
// engine path for the query's selectors; every case bounds the TopK
// heap with the limit, so clones stay O(k).
func (q *FindQuery) rankedCandidates() ([]icdb.Candidate, error) {
	switch {
	case len(q.fns) > 0 && q.hasComp:
		return q.db.QueryByFunctionsOfTypeOrdered(q.fns, q.comp, q.order, q.limit, q.cs...)
	case len(q.fns) > 0:
		return q.db.QueryByFunctionsOrdered(q.fns, q.order, q.limit, q.cs...)
	case q.hasComp:
		return q.db.QueryByComponentOrdered(q.comp, q.order, q.limit, q.cs...)
	default:
		return q.db.QueryOrdered(q.order, q.limit, q.cs...)
	}
}

// Candidates materializes the query's full answer with caller-owned
// implementations: ranked queries in rank order, streaming queries in
// unspecified order.
func (q *FindQuery) Candidates() ([]icdb.Candidate, error) {
	if q.ranked {
		return q.rankedCandidates()
	}
	var out []icdb.Candidate
	err := q.Run(func(c icdb.Candidate) bool {
		c.Impl = c.Impl.Clone()
		out = append(out, c)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// functionNames returns the GENUS function vocabulary as strings, for
// suggestions.
func functionNames() []string {
	fns := genus.AllFunctions()
	out := make([]string, len(fns))
	for i, f := range fns {
		out[i] = string(f)
	}
	return out
}

// componentTypeNames returns the GENUS component-type vocabulary as
// strings, for suggestions.
func componentTypeNames() []string {
	cts := genus.AllComponentTypes()
	out := make([]string, len(cts))
	for i, ct := range cts {
		out[i] = string(ct)
	}
	return out
}

// generatorNames lists the registered generator names, sorted, for
// generate-command suggestions.
func generatorNames(db *icdb.DB) []string {
	gens, err := db.Generators()
	if err != nil {
		return nil
	}
	out := make([]string, len(gens))
	for i := range gens {
		out[i] = gens[i].Name
	}
	return out
}

// implNames lists the registered implementation names, sorted, for
// describe-command suggestions.
func implNames(db *icdb.DB) []string {
	impls, err := db.Impls()
	if err != nil {
		return nil
	}
	out := make([]string, len(impls))
	for i := range impls {
		out[i] = impls[i].Name
	}
	sort.Strings(out)
	return out
}

// joinFns renders a function set the way the catalog prints it.
func joinFns(fns []genus.Function) string {
	ss := make([]string, len(fns))
	for i, f := range fns {
		ss[i] = string(f)
	}
	return strings.Join(ss, ",")
}
