package cql

import (
	"strconv"
	"strings"
	"unicode"
)

// isWordStart reports whether c can begin a bare word. Path characters
// are included so "designs/counter.iif" lexes as one token.
func isWordStart(c byte) bool {
	return c == '_' || c == '.' || c == '/' || c == '~' ||
		unicode.IsLetter(rune(c))
}

// isWordPart reports whether c can continue a bare word.
func isWordPart(c byte) bool {
	return isWordStart(c) || c == '-' || unicode.IsDigit(rune(c))
}

// lexer tokenizes one CQL command line.
type lexer struct {
	src string
	off int
}

// Lex tokenizes src, returning the token stream terminated by an EOF
// token. Columns are 1-based byte offsets into src.
func Lex(src string) ([]Token, error) {
	lx := &lexer{src: src}
	var toks []Token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}

func (l *lexer) col() int { return l.off + 1 }

func (l *lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) peekAt(n int) byte {
	if l.off+n >= len(l.src) {
		return 0
	}
	return l.src[l.off+n]
}

func (l *lexer) next() (Token, error) {
	for l.off < len(l.src) {
		c := l.peek()
		if c != ' ' && c != '\t' && c != '\r' && c != '\n' {
			break
		}
		l.off++
	}
	col := l.col()
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Col: col}, nil
	}
	c := l.peek()

	switch {
	case c == '"':
		return l.lexString(col)

	case unicode.IsDigit(rune(c)), c == '-', isWordStart(c):
		// '-' alone is a word (the stdin path of expand); '-' before a
		// digit begins a negative number.
		return l.lexWordOrNumber(col), nil
	}

	l.off++
	switch c {
	case ',':
		return Token{Kind: COMMA, Text: ",", Col: col}, nil
	case '<':
		if l.peek() == '=' {
			l.off++
			return Token{Kind: LE, Text: "<=", Col: col}, nil
		}
		return Token{Kind: LT, Text: "<", Col: col}, nil
	case '>':
		if l.peek() == '=' {
			l.off++
			return Token{Kind: GE, Text: ">=", Col: col}, nil
		}
		return Token{Kind: GT, Text: ">", Col: col}, nil
	case '=':
		if l.peek() == '=' {
			l.off++
			return Token{Kind: EQ, Text: "==", Col: col}, nil
		}
		return Token{Kind: EQ, Text: "=", Col: col}, nil
	case '!':
		if l.peek() == '=' {
			l.off++
			return Token{Kind: NE, Text: "!=", Col: col}, nil
		}
		return Token{}, errf(col, "unexpected '!' (the only '!' operator is '!=')")
	}
	return Token{}, errf(col, "unexpected character %q", string(rune(c)))
}

// lexWordOrNumber scans a maximal run of word characters (plus a leading
// '-' for negative numbers) and classifies it: a run that parses as a
// decimal number is a NUMBER, anything else is a WORD. This makes
// "10.5" a number but "2to1mux.iif" a single word.
func (l *lexer) lexWordOrNumber(col int) Token {
	start := l.off
	if l.peek() == '-' {
		l.off++
	}
	for l.off < len(l.src) && isWordPart(l.peek()) {
		l.off++
	}
	text := l.src[start:l.off]
	// Only runs that look numeric are candidates for NUMBER: ParseFloat
	// alone would also accept the words "inf" and "nan".
	numeric := unicode.IsDigit(rune(text[0])) ||
		(len(text) > 1 && (text[0] == '-' || text[0] == '.') && unicode.IsDigit(rune(text[1])))
	if v, err := strconv.ParseFloat(text, 64); numeric && err == nil {
		return Token{
			Kind:  NUMBER,
			Text:  text,
			Val:   v,
			IsInt: !strings.ContainsAny(text, ".eE"),
			Col:   col,
		}
	}
	return Token{Kind: WORD, Text: text, Col: col}
}

// lexString scans a double-quoted string with \" and \\ escapes.
func (l *lexer) lexString(col int) (Token, error) {
	l.off++ // opening quote
	var sb strings.Builder
	for l.off < len(l.src) {
		c := l.src[l.off]
		switch c {
		case '"':
			l.off++
			return Token{Kind: STRING, Text: sb.String(), Col: col}, nil
		case '\\':
			if l.off+1 >= len(l.src) {
				// A lone trailing backslash: report the unterminated
				// string, not an escape with a NUL in it.
				return Token{}, errf(col, "unterminated string")
			}
			esc := l.peekAt(1)
			if esc != '"' && esc != '\\' {
				return Token{}, errf(l.col(), `unknown escape '\%s' (only \" and \\)`, string(rune(esc)))
			}
			sb.WriteByte(esc)
			l.off += 2
		default:
			sb.WriteByte(c)
			l.off++
		}
	}
	return Token{}, errf(col, "unterminated string")
}
