package cql

// Sink-fault tests: the engine side of the wire server's abort path.
// A streamed find writes rows through env.Out; when that writer fails
// (client gone, command cancelled, quota tripped) the stream must stop
// immediately instead of scanning the rest of the catalog for no one.
// CI runs these with the wire torture suite as the fault+soak job.

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"icdb/internal/genus"
	"icdb/internal/icdb"
)

// bulkImpls registers n throwaway register implementations so a
// streamed find has a long tail to (not) scan.
func bulkImpls(t *testing.T, db *icdb.DB, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("bulk_%04d", i)
		err := db.RegisterImpl(icdb.Impl{
			Name:      name,
			Component: genus.CompRegister,
			Functions: []genus.Function{genus.FuncSTORAGE},
			WidthMin:  1, WidthMax: 64, Stages: 1,
			Area: float64(i%17) + 1, Delay: float64(i%11) + 1,
			Params: []string{"size"},
			Source: fmt.Sprintf(
				"NAME: %s; PARAMETER: size; INORDER: d, clk; OUTORDER: q; { q = d @ (~r clk); }", name),
		})
		if err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
	}
}

// failingSink accepts `ok` writes then fails every one after, counting
// all attempts.
type failingSink struct {
	ok     int
	writes int
	err    error
}

func (s *failingSink) Write(p []byte) (int, error) {
	s.writes++
	if s.writes > s.ok {
		return 0, s.err
	}
	return len(p), nil
}

// TestFaultySinkStopsStreamedFind: when the Out writer starts failing
// mid-stream, the find returns that error promptly — exactly one
// failed attempt, not one per remaining candidate.
func TestFaultySinkStopsStreamedFind(t *testing.T) {
	db := openTestDB(t)
	bulkImpls(t, db, 200)
	sink := &failingSink{ok: 3, err: errors.New("client vanished")}
	env := &Env{DB: db, Out: sink}

	err := env.Exec("find component executing STORAGE")
	if !errors.Is(err, sink.err) {
		t.Fatalf("Exec: err = %v, want the sink's error", err)
	}
	// Each row is one Fprintf, i.e. one Write: 3 delivered rows plus
	// the failing fourth. More means the engine kept scanning.
	if sink.writes != sink.ok+1 {
		t.Fatalf("sink saw %d writes, want %d (stream must stop at the first failure)",
			sink.writes, sink.ok+1)
	}
}

// TestFaultySinkStopsShowImpls: non-find verbs share the sink
// discipline — a dead writer does not get the whole catalog rendered.
func TestFaultySinkStopsShowImpls(t *testing.T) {
	db := openTestDB(t)
	bulkImpls(t, db, 200)
	sink := &failingSink{ok: 1, err: errors.New("client vanished")}
	env := &Env{DB: db, Out: sink}

	if err := env.Exec("show impls"); err == nil {
		t.Fatal("show impls ignored the sink failure")
	}
	if sink.writes > sink.ok+2 {
		t.Fatalf("sink saw %d writes after failing at %d", sink.writes, sink.ok+1)
	}
}

// TestFaultShowServerNeedsSession: "show server" is the operator's
// window into a running icdbd; offline Envs must say so, and Envs a
// server wires up must render its info through the normal sink.
func TestFaultShowServerNeedsSession(t *testing.T) {
	db := openTestDB(t)
	env := &Env{DB: db, Out: &strings.Builder{}}
	err := env.Exec("show server")
	if err == nil || !strings.Contains(err.Error(), "network session") {
		t.Fatalf("offline show server: err = %v", err)
	}

	var out strings.Builder
	env = &Env{DB: db, Out: &out, ServerInfo: func(w io.Writer) error {
		fmt.Fprintln(w, "sessions:     1 active")
		return nil
	}}
	if err := env.Exec("show server"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "sessions:") {
		t.Fatalf("show server output: %q", out.String())
	}
}
