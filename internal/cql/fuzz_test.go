package cql

import (
	"errors"
	"strings"
	"testing"
)

// fuzzSeeds is the FuzzParse seed corpus: one entry per grammar
// production plus the documented error shapes, so the fuzzer starts
// from every interesting parse path.
var fuzzSeeds = []string{
	// Every production of CQL.md, well-formed.
	"find component executing STORAGE with area <= 10 order by delay limit 5",
	"find components of type Counter executing INC and STORAGE",
	"find impls of type Register",
	"find component with width >= 8 and delay < 2.5, stages != 0",
	"find component order by cost desc",
	"find component order by width_max asc limit 0",
	"show impls",
	"show components",
	"show functions",
	"describe reg_d",
	`describe "a name"`,
	"expand counter.iif size=8",
	`expand "my designs/top.iif" size=4 n=-2`,
	"expand -",
	"show generators",
	"generate gen_cnt size=16",
	"generate Counter size=8 stages=2",
	"estimate add_ripple width=16",
	"estimate add_ripple width=16 area",
	"explore gen_cnt width 4..64",
	"explore gen_cnt width 4..64 step 4 materialize",
	"explore gen_cnt width 4 .. 64 step 2",
	"explore gen_sub width 8..8 stages=0",
	"find pareto",
	"find pareto of type Counter with area <= 200 dominated",
	"find pareto of generator gen_cnt at width 16 limit 5",
	"show explorations",
	"find component executing ADD at width 16 order by area",
	"find component of type Counter at width 8 limit 2",
	"help",
	// Near-misses and error shapes.
	"find component exectuing STORAGE",
	"find component with aera <= 2",
	"find component with area",
	"find component order by",
	"expand f.iif size=big",
	"describe",
	"",
	"   ",
	`describe "unterminated`,
	"find ! x",
	"42 = 42",
	"find component with width != 3",
	"FIND COMPONENT EXECUTING storage LIMIT 2",
	"find component at width 0",
	"find component at width",
	"find component at 16",
	"generate",
	"generate gen size 4",
	"estimate reg_d width=",
	"estimate reg_d width=8 aera",
	"ESTIMATE reg_d WIDTH=8 COST",
	"exlpore gen_cnt width 4..64",
	"find paretto of type counter",
	"explore gen_cnt width ..64",
	"explore gen_cnt width 4..",
	"explore gen_cnt width 8..4",
	"explore gen_cnt width 4..x",
	"find pareto of Counter",
	"find pareto dominted",
}

// FuzzParse asserts parser robustness: no panic on any input, every
// failure is a positioned *Error (or lex error) whose column lands
// within the input, and accepted inputs produce a non-nil statement.
// CI runs this as a short fuzz smoke; locally:
//
//	go test -run='^$' -fuzz=FuzzParse -fuzztime=30s ./internal/cql
func FuzzParse(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err != nil {
			var e *Error
			if !errors.As(err, &e) {
				t.Fatalf("Parse(%q) error is %T (%v), want *Error", src, err, err)
			}
			// Columns are 1-based and at most one past the input (EOF).
			if e.Col < 1 || e.Col > len(src)+1 {
				t.Fatalf("Parse(%q) error col %d out of range", src, e.Col)
			}
			if !strings.Contains(e.Error(), "at col") {
				t.Fatalf("Parse(%q) error %q lacks a position", src, e)
			}
			return
		}
		if stmt == nil {
			t.Fatalf("Parse(%q): nil statement and nil error", src)
		}
	})
}

// TestFuzzSeedsParseOrPosition runs the seed corpus through the fuzz
// property deterministically, so `go test` alone covers it without the
// fuzz engine.
func TestFuzzSeedsParseOrPosition(t *testing.T) {
	for _, seed := range fuzzSeeds {
		stmt, err := Parse(seed)
		if err != nil {
			var e *Error
			if !errors.As(err, &e) {
				t.Errorf("Parse(%q) error is %T, want *Error", seed, err)
			}
			continue
		}
		if stmt == nil {
			t.Errorf("Parse(%q): nil statement and nil error", seed)
		}
	}
}
