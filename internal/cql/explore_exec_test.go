package cql

// Exec-level tests of the PR 9 design-space verbs: explore sweeps,
// "find pareto" frontier queries with dominance explanations, and the
// "show explorations" listing. gen_cnt's estimators (area 12*width,
// delay 2+width/16) grow on both axes, so in a pure sweep the smallest
// width dominates every other point — a deterministic frontier shape
// the tests lean on.

import (
	"strings"
	"testing"
)

// TestExecExplore checks the sweep's printed rows, the summary line,
// and that the default mode registers no implementations.
func TestExecExplore(t *testing.T) {
	env := &Env{DB: openTestDB(t)}
	before, err := env.DB.Impls()
	if err != nil {
		t.Fatal(err)
	}
	out := execOut(t, env, "explore gen_cnt width 4..16 step 4")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("output = %q", out)
	}
	if !strings.HasPrefix(lines[0], "width   4: area 48 delay 2.25") {
		t.Errorf("line 1 = %q", lines[0])
	}
	if !strings.HasPrefix(lines[3], "width  16: area 192 delay 3") {
		t.Errorf("line 4 = %q", lines[3])
	}
	if lines[4] != "explored 4 design point(s) of gen_cnt" {
		t.Errorf("summary = %q", lines[4])
	}
	after, err := env.DB.Impls()
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Errorf("estimate-only explore registered impls: %d -> %d", len(before), len(after))
	}

	// Materializing registers; re-running reuses.
	out = execOut(t, env, "explore gen_cnt width 8..8 materialize")
	if !strings.Contains(out, "registered gen_cnt_size_8") {
		t.Errorf("materialize output = %q", out)
	}
	out = execOut(t, env, "explore gen_cnt width 8..8 materialize")
	if !strings.Contains(out, "reused gen_cnt_size_8") {
		t.Errorf("re-run output = %q", out)
	}
}

// TestExecExploreErrors checks the unknown-generator suggestion and
// that engine-side sweep errors come back positioned at the range.
func TestExecExploreErrors(t *testing.T) {
	env := &Env{DB: openTestDB(t)}
	err := env.Exec("explore gen_ctn width 4..8")
	if err == nil || !strings.Contains(err.Error(), `did you mean "gen_cnt"?`) {
		t.Errorf("unknown generator error = %v", err)
	}
	err = env.Exec("explore gen_cnt width 4..200")
	if err == nil || !strings.Contains(err.Error(), "outside generator range [1,128]") ||
		!strings.Contains(err.Error(), "at col 23") {
		t.Errorf("out-of-range error = %v", err)
	}
}

// TestExecPareto seeds a sweep and checks the frontier stream: numbered
// frontier rows, dominated rows with their explanations, constraint
// re-shaping, the at-width pin, limit, and the empty-space message.
func TestExecPareto(t *testing.T) {
	env := &Env{DB: openTestDB(t)}
	out := execOut(t, env, "find pareto")
	if !strings.Contains(out, "no explored design points match") {
		t.Errorf("empty-space output = %q", out)
	}

	execOut(t, env, "explore gen_cnt width 4..16 step 4")

	// Both axes grow with width, so width 4 dominates the whole sweep.
	out = execOut(t, env, "find pareto of generator gen_cnt")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1 || !strings.HasPrefix(lines[0], "1. gen_cnt[size=4]") {
		t.Errorf("frontier = %q", out)
	}

	// dominated adds the beaten points, each blaming the frontier point
	// with its margins.
	out = execOut(t, env, "find pareto of generator gen_cnt dominated")
	lines = strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("dominated output = %q", out)
	}
	if !strings.Contains(lines[1], "gen_cnt[size=8]") ||
		!strings.Contains(lines[1], "dominated by gen_cnt[size=4] (Δarea 48, Δdelay 0.25)") {
		t.Errorf("dominated line = %q", lines[1])
	}

	// Constraints filter before dominance: excluding the global winner
	// promotes the best survivor instead of emptying the answer.
	out = execOut(t, env, "find pareto of generator gen_cnt with width >= 8")
	if !strings.Contains(out, "1. gen_cnt[size=8]") || strings.Contains(out, "size=4") {
		t.Errorf("constrained frontier = %q", out)
	}

	// at width pins to the explored width exactly.
	out = execOut(t, env, "find pareto of generator gen_cnt at width 12")
	if !strings.Contains(out, "1. gen_cnt[size=12]") || strings.Contains(out, "size=4") {
		t.Errorf("at-width frontier = %q", out)
	}

	// limit bounds the streamed rows.
	out = execOut(t, env, "find pareto of generator gen_cnt dominated limit 2")
	if got := len(strings.Split(strings.TrimSpace(out), "\n")); got != 2 {
		t.Errorf("limit 2 printed %d rows: %q", got, out)
	}

	// The component-keyed space unions generator sweeps with estimated
	// implementations (cnt_up at width 4: area 48, delay 2 — it beats
	// the sweep's width-4 point on delay and ties on area).
	execOut(t, env, "estimate cnt_up width=4")
	out = execOut(t, env, "find pareto of type Counter")
	if !strings.Contains(out, "1. cnt_up[width=4]") {
		t.Errorf("component frontier = %q", out)
	}

	// Unknown component type gets the usual suggestion.
	err := env.Exec("find pareto of type Counterr")
	if err == nil || !strings.Contains(err.Error(), `did you mean "Counter"?`) {
		t.Errorf("unknown type error = %v", err)
	}
}

// TestExecShowExplorations checks the listing: empty message, then
// sorted rows after a sweep.
func TestExecShowExplorations(t *testing.T) {
	env := &Env{DB: openTestDB(t)}
	out := execOut(t, env, "show explorations")
	if !strings.Contains(out, "no recorded explorations") {
		t.Errorf("empty listing = %q", out)
	}
	execOut(t, env, "explore gen_cnt width 4..8 step 4")
	out = execOut(t, env, "show explorations")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("listing = %q", out)
	}
	if !strings.HasPrefix(lines[0], "gen_cnt[size=4]") || !strings.Contains(lines[0], "Counter") {
		t.Errorf("row = %q", lines[0])
	}
	if out != execOut(t, env, "show explorations") {
		t.Error("show explorations is not deterministic")
	}
}
