package cql

import (
	"errors"
	"strings"
	"testing"
)

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexKindsAndColumns(t *testing.T) {
	toks, err := Lex(`find area <= 10.5 and n != 5, path/to.iif x=-3`)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		kind Kind
		text string
		col  int
	}{
		{WORD, "find", 1},
		{WORD, "area", 6},
		{LE, "<=", 11},
		{NUMBER, "10.5", 14},
		{WORD, "and", 19},
		{WORD, "n", 23},
		{NE, "!=", 25},
		{NUMBER, "5", 28},
		{COMMA, ",", 29},
		{WORD, "path/to.iif", 31},
		{WORD, "x", 43},
		{EQ, "=", 44},
		{NUMBER, "-3", 45},
		{EOF, "", 47},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(toks), kinds(toks), len(want))
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text || toks[i].Col != w.col {
			t.Errorf("tok[%d] = {%v %q col %d}, want {%v %q col %d}",
				i, toks[i].Kind, toks[i].Text, toks[i].Col, w.kind, w.text, w.col)
		}
	}
}

func TestLexNumberClassification(t *testing.T) {
	cases := []struct {
		src   string
		kind  Kind
		val   float64
		isInt bool
	}{
		{"5", NUMBER, 5, true},
		{"10.5", NUMBER, 10.5, false},
		{"-3", NUMBER, -3, true},
		{".5", NUMBER, 0.5, false},
		{"1e3", NUMBER, 1000, false},
		{"inf", WORD, 0, false}, // ParseFloat would accept these; the
		{"nan", WORD, 0, false}, // lexer must not.
		{"2to1mux.iif", WORD, 0, false},
		{"10.5.iif", WORD, 0, false},
	}
	for _, c := range cases {
		toks, err := Lex(c.src)
		if err != nil {
			t.Fatalf("Lex(%q): %v", c.src, err)
		}
		if len(toks) != 2 || toks[0].Kind != c.kind {
			t.Errorf("Lex(%q) = %v, want one %v", c.src, kinds(toks), c.kind)
			continue
		}
		if c.kind == NUMBER && (toks[0].Val != c.val || toks[0].IsInt != c.isInt) {
			t.Errorf("Lex(%q) = val %g int %v, want %g int %v",
				c.src, toks[0].Val, toks[0].IsInt, c.val, c.isInt)
		}
	}
}

func TestLexStrings(t *testing.T) {
	toks, err := Lex(`describe "my designs/top.iif"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Kind != STRING || toks[1].Text != "my designs/top.iif" {
		t.Fatalf("string tok = %+v", toks[1])
	}
	toks, err = Lex(`expand "a \"b\" \\c"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Text != `a "b" \c` {
		t.Fatalf("escaped string = %q", toks[1].Text)
	}
}

func TestLexErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`find ! x`, "cql: unexpected '!' (the only '!' operator is '!=') at col 6"},
		{`describe "open`, "cql: unterminated string at col 10"},
		{`expand "a\n"`, `cql: unknown escape '\n' (only \" and \\) at col 10`},
		{`expand "a\`, "cql: unterminated string at col 8"},
		{`find ?`, `cql: unexpected character "?" at col 6`},
	}
	for _, c := range cases {
		_, err := Lex(c.src)
		if err == nil {
			t.Errorf("Lex(%q): no error, want %q", c.src, c.want)
			continue
		}
		if err.Error() != c.want {
			t.Errorf("Lex(%q) = %q, want %q", c.src, err, c.want)
		}
		var e *Error
		if !errors.As(err, &e) {
			t.Errorf("Lex(%q) error is %T, want *Error", c.src, err)
		}
	}
}

func TestLexWhitespaceOnly(t *testing.T) {
	toks, err := Lex("   \t  ")
	if err != nil || len(toks) != 1 || toks[0].Kind != EOF {
		t.Fatalf("Lex(blank) = %v, %v", toks, err)
	}
	if !strings.Contains(EOF.String(), "end") {
		t.Errorf("EOF.String() = %q", EOF.String())
	}
}
