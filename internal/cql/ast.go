package cql

// Stmt is one parsed CQL command. The concrete types are FindStmt,
// ParetoStmt, ShowStmt, DescribeStmt, ExpandStmt, GenerateStmt,
// EstimateStmt, ExploreStmt, SetStmt, and HelpStmt.
type Stmt interface{ stmt() }

// Word is an identifier-like token with its source column, kept through
// the AST so the compiler can position vocabulary errors ("unknown
// function ...") exactly like the parser positions grammar errors.
type Word struct {
	Text string
	Col  int
}

// FindStmt is a "find component ..." command: the query-by-function/
// type/attribute production. All clauses are optional; with none, the
// whole catalog matches.
type FindStmt struct {
	// Target is the word after "find": "component", "components", or
	// "impls" (synonyms — the answer is always implementation rows).
	Target Word
	// Type is the component type of an "of type X" clause, nil if absent.
	Type *Word
	// Executing lists the function names of an "executing F and G ..."
	// clause; every listed function must be executable by a candidate.
	Executing []Word
	// Where lists the "with" clause's conjunction of attribute
	// comparisons.
	Where []Cond
	// At is the "at width N" evaluation-point clause, nil if absent:
	// candidates must cover the width, and area/delay are estimator-
	// evaluated there (see icdb.AtWidth).
	At *AtClause
	// OrderBy is the "order by" clause, nil if absent.
	OrderBy *OrderClause
	// Limit is the "limit N" bound; 0 means unlimited.
	Limit int
	// HasLimit distinguishes an absent limit clause from "limit 0".
	HasLimit bool
}

// Cond is one attribute comparison in a "with" clause: Attr Op Value.
type Cond struct {
	Attr Word
	// Op is the comparison token kind: LE, LT, GE, GT, EQ, or NE.
	Op Kind
	// OpText is the operator as written, for error messages.
	OpText string
	// OpCol is the operator's column.
	OpCol int
	// Value is the right-hand side number.
	Value float64
	// ValueIsInt reports whether Value was written as an integer.
	ValueIsInt bool
	// ValueCol is the number's column.
	ValueCol int
}

// OrderClause is an "order by KEY [asc|desc]" clause.
type OrderClause struct {
	Key  Word
	Desc bool
}

// AtClause is an "at width N" clause: the width the query's estimator
// expressions are evaluated at.
type AtClause struct {
	Width int
	// Col is the width number's column, for positioned errors.
	Col int
}

// ParetoStmt is a "find pareto ..." command: the non-dominated frontier
// of the explored design points, optionally restricted to one component
// type's or one generator's space and filtered by a "with" clause
// before dominance is decided.
type ParetoStmt struct {
	// Type is the component type of an "of type X" clause, nil if absent.
	Type *Word
	// Generator is the generator name of an "of generator G" clause, nil
	// if absent. The parser allows at most one of Type and Generator.
	Generator *Word
	// Where lists the "with" clause's conjunction of attribute
	// comparisons, applied to each design point before dominance.
	Where []Cond
	// At is the "at width N" clause, nil if absent: it pins the frontier
	// to points explored at exactly that width.
	At *AtClause
	// Dominated asks for dominated points too, each with its dominating
	// frontier point and margins.
	Dominated bool
	// Limit is the "limit N" bound on printed rows; 0 means unlimited.
	Limit int
	// HasLimit distinguishes an absent limit clause from "limit 0".
	HasLimit bool
}

// ExploreStmt is an "explore <generator> width <lo>..<hi> [step n]
// [materialize] [param=value ...]" command: sweep a generator's "size"
// parameter across a width range, recording each evaluated design point
// (and registering an implementation per point when materializing).
type ExploreStmt struct {
	// Gen is the generator to sweep.
	Gen Word
	// Lo and Hi are the inclusive width bounds of the sweep.
	Lo, Hi int
	// RangeCol is the range's column, for positioned errors.
	RangeCol int
	// Step is the sweep stride; 0 means the "step" clause was absent
	// (stride 1).
	Step int
	// Materialize runs Generate at every point instead of the estimators
	// alone.
	Materialize bool
	// Params binds the generator's parameters other than the swept
	// "size".
	Params []ExpandParam
}

// ShowStmt is a "show impls|components|functions" catalog listing.
type ShowStmt struct {
	// What is the listing selector: "impls", "components", or
	// "functions" (already validated by the parser).
	What Word
}

// DescribeStmt is a "describe <impl>" command: the full record of one
// implementation, including its IIF source.
type DescribeStmt struct {
	Name Word
}

// ExpandStmt is an "expand <file> [param=value ...]" command: parse the
// IIF design in the file and flatten it against the database.
type ExpandStmt struct {
	// Path is the design file path ("-" for standard input).
	Path Word
	// Params binds the design's PARAMETER names to integer values.
	Params []ExpandParam
}

// ExpandParam is one name=value binding of an expand command.
type ExpandParam struct {
	Name  Word
	Value int
}

// GenerateStmt is a "generate <generator|component> param=value ..."
// command: run a component generator at a parameter point and register
// the emitted implementation (see icdb.Generate). Name is a generator
// name or a component type whose generators are searched.
type GenerateStmt struct {
	Name   Word
	Params []ExpandParam
}

// EstimateStmt is an "estimate <impl> width=n [attr]" command: evaluate
// an implementation's estimator expressions at a width point. Attr
// restricts the output to one of area, delay, or cost; nil prints all
// three.
type EstimateStmt struct {
	Name  Word
	Width int
	// WidthCol is the width number's column, for positioned errors.
	WidthCol int
	Attr     *Word
}

// SetStmt is a "set <param> <value|off>" session command. Param is one
// of width (the session's default width evaluation point for find
// commands), area_weight, or delay_weight (session overrides of the
// database ranking weights); "off" clears the parameter back to its
// default.
type SetStmt struct {
	Param Word
	// Value is the new setting; meaningless when Off is true.
	Value float64
	// Off reports the "off" form.
	Off bool
	// ValueCol is the value token's column, for positioned errors.
	ValueCol int
}

// HelpStmt is the "help" command.
type HelpStmt struct{}

func (*FindStmt) stmt()     {}
func (*ParetoStmt) stmt()   {}
func (*ShowStmt) stmt()     {}
func (*DescribeStmt) stmt() {}
func (*ExpandStmt) stmt()   {}
func (*GenerateStmt) stmt() {}
func (*EstimateStmt) stmt() {}
func (*ExploreStmt) stmt()  {}
func (*SetStmt) stmt()      {}
func (*HelpStmt) stmt()     {}
