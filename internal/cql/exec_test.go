package cql

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"icdb/internal/genus"
	"icdb/internal/icdb"
	"icdb/internal/relstore"
)

func openTestDB(t *testing.T) *icdb.DB {
	t.Helper()
	db, err := icdb.Open(relstore.New())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return db
}

// run parses, compiles, and materializes one find command.
func run(t *testing.T, db *icdb.DB, src string) []icdb.Candidate {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	q, err := CompileFind(db, stmt.(*FindStmt))
	if err != nil {
		t.Fatalf("CompileFind(%q): %v", src, err)
	}
	cands, err := q.Candidates()
	if err != nil {
		t.Fatalf("Run(%q): %v", src, err)
	}
	return cands
}

func names(cands []icdb.Candidate) []string {
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.Impl.Name
	}
	return out
}

// TestFindEquivalentToTopK is the acceptance criterion: the CQL command
// of ISSUE 4 returns the same candidates, in the same order, as the
// equivalent QueryByFunctionTopK / QueryByFunctionsOrdered Go calls.
func TestFindEquivalentToTopK(t *testing.T) {
	db := openTestDB(t)
	areaLE10, err := icdb.AttrCmp("area", icdb.CmpLE, 10)
	if err != nil {
		t.Fatal(err)
	}

	// Cost-ranked: "limit 5" with no order-by is the engine's default
	// ranking, i.e. exactly QueryByFunctionTopK.
	got := run(t, db, "find component executing STORAGE with area <= 10 limit 5")
	want, err := db.QueryByFunctionTopK(genus.FuncSTORAGE, 5, icdb.MustWhere("area <= 10"))
	if err != nil {
		t.Fatal(err)
	}
	assertSameCandidates(t, "cost-ranked", got, want)

	// Attribute-ranked: "order by delay" is QueryByFunctionsOrdered with
	// the delay key.
	got = run(t, db, "find component executing STORAGE with area <= 10 order by delay limit 5")
	want, err = db.QueryByFunctionsOrdered(
		[]genus.Function{genus.FuncSTORAGE}, icdb.Order{Attr: "delay"}, 5, areaLE10)
	if err != nil {
		t.Fatal(err)
	}
	assertSameCandidates(t, "delay-ranked", got, want)
	if len(got) == 0 {
		t.Fatal("acceptance query returned no candidates")
	}
}

func assertSameCandidates(t *testing.T, label string, got, want []icdb.Candidate) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %v, want %v", label, names(got), names(want))
	}
	for i := range got {
		if got[i].Impl.Name != want[i].Impl.Name || got[i].Cost != want[i].Cost {
			t.Errorf("%s: [%d] = %s/%g, want %s/%g", label, i,
				got[i].Impl.Name, got[i].Cost, want[i].Impl.Name, want[i].Cost)
		}
	}
}

// TestFindStreamedMatchesRanked checks the streaming (unordered) path
// yields the same candidate set as the ranked path.
func TestFindStreamedMatchesRanked(t *testing.T) {
	db := openTestDB(t)
	streamed := names(run(t, db, "find component executing STORAGE with area <= 10"))
	ranked := names(run(t, db, "find component executing STORAGE with area <= 10 order by cost"))
	sort.Strings(streamed)
	sorted := append([]string(nil), ranked...)
	sort.Strings(sorted)
	if !equalStrings(streamed, sorted) {
		t.Errorf("streamed = %v, ranked = %v", streamed, ranked)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFindOfTypePlusExecuting checks the combined type+function filter
// on both engine paths: reg_d executes STORAGE but is not a Counter.
func TestFindOfTypePlusExecuting(t *testing.T) {
	db := openTestDB(t)
	ranked := names(run(t, db, "find component of type Counter executing STORAGE order by cost"))
	if !equalStrings(ranked, []string{"cnt_up"}) {
		t.Errorf("ranked = %v, want [cnt_up]", ranked)
	}
	streamed := names(run(t, db, "find component of type Counter executing STORAGE"))
	if !equalStrings(streamed, []string{"cnt_up"}) {
		t.Errorf("streamed = %v, want [cnt_up]", streamed)
	}
}

// TestFindOfTypeOrdered checks ordering within one component type.
func TestFindOfTypeOrdered(t *testing.T) {
	db := openTestDB(t)
	got := names(run(t, db, "find impls of type Counter order by area"))
	if !equalStrings(got, []string{"cnt_ripple", "cnt_up"}) {
		t.Errorf("by area = %v, want [cnt_ripple cnt_up]", got)
	}
	got = names(run(t, db, "find impls of type Counter order by area desc"))
	if !equalStrings(got, []string{"cnt_up", "cnt_ripple"}) {
		t.Errorf("by area desc = %v, want [cnt_up cnt_ripple]", got)
	}
}

// TestWidthSugar checks the width pseudo-attribute's lowering.
func TestWidthSugar(t *testing.T) {
	db := openTestDB(t)
	// Every builtin covers 1..64, so width = 8 keeps all of them and
	// width > 64 keeps none.
	all := run(t, db, "find component order by cost")
	cov := run(t, db, "find component with width = 8 order by cost")
	if len(cov) != len(all) {
		t.Errorf("width = 8 kept %d of %d", len(cov), len(all))
	}
	if none := run(t, db, "find component with width > 64 order by cost"); len(none) != 0 {
		t.Errorf("width > 64 kept %v", names(none))
	}
	if none := run(t, db, "find component with width < 1 order by cost"); len(none) != 0 {
		t.Errorf("width < 1 kept %v", names(none))
	}

	// Compile-time width errors, positioned.
	for _, c := range []struct{ src, want string }{
		{"find component with width != 3", "cql: 'width != n' is not expressible over a width range; constrain width_min or width_max directly at col 27"},
		{"find component with width = 2.5", "cql: width must be a whole number of bits, got 2.5 at col 29"},
	} {
		stmt, err := Parse(c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		_, err = CompileFind(db, stmt.(*FindStmt))
		if err == nil || err.Error() != c.want {
			t.Errorf("CompileFind(%q) = %v, want %q", c.src, err, c.want)
		}
	}
}

// TestCompileVocabularyErrors checks unknown functions and component
// types are positioned and get suggestions.
func TestCompileVocabularyErrors(t *testing.T) {
	db := openTestDB(t)
	cases := []struct{ src, want string }{
		{"find component executing STORAG", `cql: unknown function 'STORAG' at col 26 (did you mean "STORAGE"?)`},
		{"find component of type Counterr", `cql: unknown component type 'Counterr' at col 24 (did you mean "Counter"?)`},
	}
	for _, c := range cases {
		stmt, err := Parse(c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		_, err = CompileFind(db, stmt.(*FindStmt))
		if err == nil || err.Error() != c.want {
			t.Errorf("CompileFind(%q) = %v, want %q", c.src, err, c.want)
		}
	}
}

func execOut(t *testing.T, env *Env, src string) string {
	t.Helper()
	var sb strings.Builder
	env.Out = &sb
	if err := env.Exec(src); err != nil {
		t.Fatalf("Exec(%q): %v", src, err)
	}
	return sb.String()
}

// TestExecFind checks the printed row format and ranked numbering.
func TestExecFind(t *testing.T) {
	env := &Env{DB: openTestDB(t)}
	out := execOut(t, env, "find component executing STORAGE order by cost")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("output = %q", out)
	}
	if !strings.HasPrefix(lines[0], "1. reg_d") || !strings.Contains(lines[0], "cost 7") {
		t.Errorf("line 1 = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "2. cnt_up") || !strings.Contains(lines[1], "cost 14") {
		t.Errorf("line 2 = %q", lines[1])
	}
	out = execOut(t, env, "find component with area > 1000")
	if !strings.Contains(out, "no matching implementations") {
		t.Errorf("empty result output = %q", out)
	}
}

// TestExecShow checks the three listings are present and deterministic.
func TestExecShow(t *testing.T) {
	env := &Env{DB: openTestDB(t)}
	impls := execOut(t, env, "show impls")
	if !strings.Contains(impls, "reg_d") || !strings.Contains(impls, "cnt_ripple") {
		t.Errorf("show impls = %q", impls)
	}
	if impls != execOut(t, env, "show impls") {
		t.Error("show impls is not deterministic")
	}
	comps := execOut(t, env, "show components")
	if !strings.Contains(comps, "Counter") || !strings.Contains(comps, "COUNTER") {
		t.Errorf("show components = %q", comps)
	}
	fns := execOut(t, env, "show functions")
	if !strings.Contains(fns, "ADD") || !strings.Contains(fns, "3 in, 2 out") {
		t.Errorf("show functions = %q", fns)
	}
}

// TestExecDescribe checks the record format and the unknown-name
// suggestion.
func TestExecDescribe(t *testing.T) {
	env := &Env{DB: openTestDB(t)}
	out := execOut(t, env, "describe reg_d")
	for _, want := range []string{
		"name:      reg_d",
		"component: Register",
		"area:      6 (per bit)",
		"width:     1..64 bits",
		"source:",
		"  | NAME",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("describe output missing %q:\n%s", want, out)
		}
	}
	env.Out = &strings.Builder{}
	err := env.Exec("describe reg_e")
	want := `cql: unknown implementation 'reg_e' at col 10 (did you mean "reg_d"?)`
	if err == nil || err.Error() != want {
		t.Errorf("describe reg_e = %v, want %q", err, want)
	}
}

// TestExecExpand checks an expand command end to end through a fake
// file loader, and that a nil loader disables the command.
func TestExecExpand(t *testing.T) {
	const top = `
NAME: top;
INORDER: D[4], load, en, clk;
OUTORDER: Q[4];
SUBCOMPONENT: counter;
{
  #counter(4, D[0], D[1], D[2], D[3], load, en, clk, Q[0], Q[1], Q[2], Q[3]);
}
`
	env := &Env{
		DB: openTestDB(t),
		ReadFile: func(path string) ([]byte, error) {
			if path != "top.iif" {
				return nil, fmt.Errorf("no such design %q", path)
			}
			return []byte(top), nil
		},
	}
	out := execOut(t, env, "expand top.iif")
	if !strings.Contains(out, "INORDER") || !strings.Contains(out, "u0_") {
		t.Errorf("expand output = %q", out)
	}
	insts, err := env.DB.Instances()
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 1 || insts[0].Impl != "cnt_up" {
		t.Errorf("instances = %+v", insts)
	}

	env.Out = &strings.Builder{}
	if err := env.Exec("expand missing.iif"); err == nil || !strings.Contains(err.Error(), "missing.iif") {
		t.Errorf("missing file error = %v", err)
	}

	bare := &Env{DB: env.DB, Out: &strings.Builder{}}
	if err := bare.Exec("expand top.iif"); err == nil || !strings.Contains(err.Error(), "not available") {
		t.Errorf("nil ReadFile error = %v", err)
	}
}

// TestExecHelp checks help prints the command summary.
func TestExecHelp(t *testing.T) {
	env := &Env{DB: openTestDB(t)}
	out := execOut(t, env, "help")
	if !strings.Contains(out, "find component") || !strings.Contains(out, "order by") {
		t.Errorf("help = %q", out)
	}
}

// TestExecLimitZero pins "limit 0" as explicitly unlimited but still
// ranked.
func TestExecLimitZero(t *testing.T) {
	db := openTestDB(t)
	all := run(t, db, "find component executing STORAGE limit 0")
	if len(all) != 2 {
		t.Errorf("limit 0 = %v", names(all))
	}
	if got := names(all); got[0] != "reg_d" {
		t.Errorf("limit 0 not ranked: %v", got)
	}
}

// TestFindAtWidthRanksByEstimatedArea is the PR 5 acceptance criterion:
// "find component ... at width 16 order by area" ranks by the estimator
// value at width 16 and reports it.
func TestFindAtWidthRanksByEstimatedArea(t *testing.T) {
	db := openTestDB(t)
	got := run(t, db, "find component executing STORAGE at width 16 order by area")
	if len(got) != 2 || got[0].Impl.Name != "reg_d" || got[1].Impl.Name != "cnt_up" {
		t.Fatalf("at-width ranking = %v", names(got))
	}
	// Builtin estimators: area = area * width -> 6*16 and 12*16.
	if got[0].Area != 96 || got[1].Area != 192 {
		t.Errorf("estimated areas = %g, %g, want 96, 192", got[0].Area, got[1].Area)
	}
	want, err := db.QueryByFunctionsOrdered(
		[]genus.Function{genus.FuncSTORAGE}, icdb.Order{Attr: "area"}, 0, icdb.AtWidth(16))
	if err != nil {
		t.Fatal(err)
	}
	assertSameCandidates(t, "at-width", got, want)
}

// TestConstantEstimatorsByteIdenticalToScalar: a catalog of constant
// estimators must render byte-identical CQL output to the scalar engine
// — ordering, TopK, and streamed finds alike.
func TestConstantEstimatorsByteIdenticalToScalar(t *testing.T) {
	scalar := openTestDB(t)
	est := openTestDB(t)
	impls, err := est.Impls()
	if err != nil {
		t.Fatal(err)
	}
	for _, im := range impls {
		// Replace the builtin width-scaling estimators with the constant
		// degenerate case.
		if err := est.RegisterEstimator(im.Name, "area", "area"); err != nil {
			t.Fatal(err)
		}
		if err := est.RegisterEstimator(im.Name, "delay", "delay"); err != nil {
			t.Fatal(err)
		}
	}
	scalarEnv := &Env{DB: scalar}
	estEnv := &Env{DB: est}
	cases := []struct{ scalar, est string }{
		{"find component executing STORAGE with width = 8 order by area limit 5",
			"find component executing STORAGE at width 8 order by area limit 5"},
		{"find component with width = 8 order by cost",
			"find component at width 8 order by cost"},
		{"find impls of type Counter with width = 8 order by delay desc limit 1",
			"find impls of type Counter at width 8 order by delay desc limit 1"},
		{"find component executing ADD with width = 8 limit 3",
			"find component executing ADD at width 8 limit 3"},
	}
	for _, c := range cases {
		want := execOut(t, scalarEnv, c.scalar)
		got := execOut(t, estEnv, c.est)
		if got != want {
			t.Errorf("constant-estimator output diverged\n  scalar %q -> %q\n  est    %q -> %q",
				c.scalar, want, c.est, got)
		}
	}
	// Streamed (unordered) finds: same candidate lines, order unspecified.
	want := strings.Split(strings.TrimSpace(execOut(t, scalarEnv, "find component executing ADD with width = 8")), "\n")
	got := strings.Split(strings.TrimSpace(execOut(t, estEnv, "find component executing ADD at width 8")), "\n")
	normalize := func(lines []string) []string {
		out := make([]string, len(lines))
		for i, l := range lines {
			// Drop the rank number: streamed order is unspecified.
			_, rest, _ := strings.Cut(l, ". ")
			out[i] = rest
		}
		sort.Strings(out)
		return out
	}
	if !equalStrings(normalize(got), normalize(want)) {
		t.Errorf("streamed candidate sets diverged: got %v, want %v", got, want)
	}
}

// TestExecGenerate drives the generate verb: by generator name, by
// component type, reuse reporting, and the error shapes.
func TestExecGenerate(t *testing.T) {
	env := &Env{DB: openTestDB(t)}
	out := execOut(t, env, "generate gen_cnt size=16")
	if !strings.Contains(out, "registered gen_cnt_size_16") || !strings.Contains(out, "area 192") {
		t.Errorf("generate output = %q", out)
	}
	// The emitted implementation is immediately queryable, with its
	// estimated-at-width area reported.
	found := run(t, env.DB, "find component executing COUNTER at width 16 order by area")
	seen := false
	for _, c := range found {
		if c.Impl.Name == "gen_cnt_size_16" {
			seen = true
			if c.Area != 192 {
				t.Errorf("generated impl Area = %g, want 192", c.Area)
			}
		}
	}
	if !seen {
		t.Errorf("generated impl not queryable: %v", names(found))
	}
	out = execOut(t, env, "generate gen_cnt size=16")
	if !strings.Contains(out, "reused gen_cnt_size_16") {
		t.Errorf("re-generate output = %q", out)
	}
	// Component-type resolution picks a matching generator of the type.
	out = execOut(t, env, "generate Counter size=4")
	if !strings.Contains(out, "registered gen_cnt_size_4") || !strings.Contains(out, "(generator gen_cnt)") {
		t.Errorf("generate-by-type output = %q", out)
	}
	env.Out = &strings.Builder{}
	err := env.Exec("generate gen_cnr size=4")
	want := `cql: unknown generator or component type 'gen_cnr' at col 10 (did you mean "gen_cnt"?)`
	if err == nil || err.Error() != want {
		t.Errorf("unknown generator = %v, want %q", err, want)
	}
	if err := env.Exec("generate gen_cnt size=4 extra=1"); err == nil ||
		!strings.Contains(err.Error(), "binding") {
		t.Errorf("over-bound generate = %v", err)
	}
	if err := env.Exec("generate gen_cnt size=500"); err == nil ||
		!strings.Contains(err.Error(), "width range") {
		t.Errorf("out-of-range generate = %v", err)
	}
}

// TestExecEstimate drives the estimate verb: the full line, the
// single-attribute form, and the error shapes.
func TestExecEstimate(t *testing.T) {
	env := &Env{DB: openTestDB(t)}
	out := execOut(t, env, "estimate add_ripple width=16")
	if !strings.Contains(out, "add_ripple at width 16: area 144 delay 96 cost 240") {
		t.Errorf("estimate output = %q", out)
	}
	out = execOut(t, env, "estimate add_ripple width=16 area")
	if strings.TrimSpace(out) != "area(16) = 144" {
		t.Errorf("estimate area output = %q", out)
	}
	out = execOut(t, env, "estimate add_ripple width=16 cost")
	if strings.TrimSpace(out) != "cost(16) = 240" {
		t.Errorf("estimate cost output = %q", out)
	}
	env.Out = &strings.Builder{}
	err := env.Exec("estimate add_rippl width=16")
	want := `cql: unknown implementation 'add_rippl' at col 10 (did you mean "add_ripple"?)`
	if err == nil || err.Error() != want {
		t.Errorf("unknown impl = %v, want %q", err, want)
	}
	err = env.Exec("estimate add_ripple width=65")
	if err == nil || !strings.Contains(err.Error(), "width range") || !strings.Contains(err.Error(), "col 27") {
		t.Errorf("out-of-range estimate = %v", err)
	}
}

// TestExecShowGenerators checks the generators listing.
func TestExecShowGenerators(t *testing.T) {
	env := &Env{DB: openTestDB(t)}
	out := execOut(t, env, "show generators")
	for _, want := range []string{"gen_cnt", "gen_sub", "12 * width", "SUB"} {
		if !strings.Contains(out, want) {
			t.Errorf("show generators missing %q:\n%s", want, out)
		}
	}
	if out != execOut(t, env, "show generators") {
		t.Error("show generators is not deterministic")
	}
}

// TestExecDescribeShowsEstimators: describe prints the estimator rows.
func TestExecDescribeShowsEstimators(t *testing.T) {
	env := &Env{DB: openTestDB(t)}
	out := execOut(t, env, "describe cnt_ripple")
	for _, want := range []string{"estimator: area = area * width", "estimator: delay = delay * width"} {
		if !strings.Contains(out, want) {
			t.Errorf("describe missing %q:\n%s", want, out)
		}
	}
}

// TestGenerateByTypeFiltersWidthRange: component-type generator
// selection must skip generators that cannot cover the bound size, even
// when they are cheaper than one that can.
func TestGenerateByTypeFiltersWidthRange(t *testing.T) {
	env := &Env{DB: openTestDB(t)}
	// A cheap Counter generator that stops at 8 bits; the builtin
	// gen_cnt (1..128) must win for size=16 despite costing more.
	src := `
NAME: gen_tiny;
PARAMETER: size;
VARIABLE: i;
INORDER: D[size], load, en, clk;
OUTORDER: Q[size];
{
  #for(i = 0; i < size; i++)
    Q[i] = (D[i] (+) en) @ (~r clk);
}
`
	if err := env.DB.RegisterGenerator(icdb.Generator{
		Name:      "gen_tiny",
		Component: genus.CompCounter,
		Style:     "test",
		Functions: []genus.Function{genus.FuncCOUNTER},
		WidthMin:  1, WidthMax: 8, Stages: 1,
		Params:    []string{"size"},
		AreaExpr:  "1",
		DelayExpr: "1",
		Source:    src,
	}); err != nil {
		t.Fatal(err)
	}
	out := execOut(t, env, "generate Counter size=16")
	if !strings.Contains(out, "(generator gen_cnt)") {
		t.Errorf("size=16 selection = %q, want gen_cnt (gen_tiny cannot cover 16)", out)
	}
	out = execOut(t, env, "generate Counter size=4")
	if !strings.Contains(out, "(generator gen_tiny)") {
		t.Errorf("size=4 selection = %q, want the cheaper gen_tiny", out)
	}
}
