package cql

import (
	"strconv"
	"strings"

	"icdb/internal/icdb"
)

// The keyword vocabularies of the grammar, one per decision point, in
// the order CQL.md documents them. They drive both parsing and the
// "did you mean" suggestions on typos. Attribute and order-key words
// come from the engine (icdb.ConstraintAttrs, icdb.OrderKeys), so an
// attribute added there is immediately queryable here; "width" is this
// layer's sugar over the width range (see compileCond).
var (
	commandWords = []string{"find", "show", "describe", "expand", "generate", "estimate", "explore", "set", "help"}
	targetWords  = []string{"component", "components", "impls", "pareto"}
	clauseWords  = []string{"of", "executing", "with", "at", "order", "limit"}
	// paretoClauseWords are the clause keywords of the "find pareto"
	// production, for suggestions on its trailing garbage.
	paretoClauseWords = []string{"of", "with", "at", "dominated", "limit"}
	attrWords         = append(icdb.ConstraintAttrs(), "width")
	orderKeyWords     = icdb.OrderKeys()
	showWords         = []string{"impls", "components", "functions", "generators", "explorations", "session", "server"}
	// setWords are the session parameters a set command may adjust.
	setWords = []string{"width", "area_weight", "delay_weight"}
	// estimateWords are the attributes an estimate command may single
	// out: the two estimator attributes plus the weighted cost score.
	estimateWords = append(icdb.EstimatorAttrs(), "cost")
)

// Parse parses one CQL command line into its typed AST. Errors are
// *Error values positioned at the offending token, with keyword
// suggestions for near-miss typos. Parsing validates the grammar and
// its keyword vocabularies; function, component, and implementation
// names are validated by the compiler (CompileFind, Env.Exec), which
// positions its errors the same way.
func Parse(src string) (Stmt, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.command()
	if err != nil {
		return nil, err
	}
	if t := p.cur(); t.Kind != EOF {
		return nil, errf(t.Col, "unexpected %s after complete command", describe(t))
	}
	return stmt, nil
}

type parser struct {
	toks []Token
	i    int
}

func (p *parser) cur() Token { return p.toks[p.i] }

func (p *parser) advance() Token {
	t := p.toks[p.i]
	if t.Kind != EOF {
		p.i++
	}
	return t
}

// kw consumes the current token if it is the word s (case-insensitive).
func (p *parser) kw(s string) bool {
	t := p.cur()
	if t.Kind == WORD && strings.EqualFold(t.Text, s) {
		p.advance()
		return true
	}
	return false
}

// atKw reports whether the current token is the word s, without
// consuming it.
func (p *parser) atKw(s string) bool {
	t := p.cur()
	return t.Kind == WORD && strings.EqualFold(t.Text, s)
}

// sep consumes an "and" keyword or a comma, the two interchangeable
// list separators.
func (p *parser) sep() bool {
	if p.cur().Kind == COMMA {
		p.advance()
		return true
	}
	return p.kw("and")
}

// describe renders a token for an error message.
func describe(t Token) string {
	switch t.Kind {
	case EOF:
		return "end of command"
	case WORD:
		return "'" + t.Text + "'"
	case NUMBER:
		return "number " + t.Text
	case STRING:
		return "string"
	}
	return t.Kind.String()
}

// keywordIn matches the current WORD token against a vocabulary,
// case-insensitively, returning the canonical (lower-case) form.
func keywordIn(t Token, vocab []string) (string, bool) {
	if t.Kind != WORD {
		return "", false
	}
	for _, w := range vocab {
		if strings.EqualFold(t.Text, w) {
			return w, true
		}
	}
	return "", false
}

// command parses the top-level production: one of the seven command
// forms.
func (p *parser) command() (Stmt, error) {
	t := p.cur()
	cmd, ok := keywordIn(t, commandWords)
	if !ok {
		if t.Kind == WORD {
			return nil, &Error{Col: t.Col,
				Msg:  "unknown command '" + t.Text + "'",
				Hint: suggest(t.Text, commandWords)}
		}
		return nil, errf(t.Col, "expected a command (find, show, describe, expand, generate, estimate, explore, or help), got %s", describe(t))
	}
	p.advance()
	switch cmd {
	case "find":
		return p.find()
	case "show":
		return p.show()
	case "describe":
		return p.describeCmd()
	case "expand":
		return p.expand()
	case "generate":
		return p.generate()
	case "estimate":
		return p.estimate()
	case "explore":
		return p.explore()
	case "set":
		return p.set()
	}
	return &HelpStmt{}, nil
}

// set parses "set" Param (Number | "off"): the session-parameter
// command.
func (p *parser) set() (Stmt, error) {
	t := p.cur()
	param, ok := keywordIn(t, setWords)
	if !ok {
		if t.Kind == WORD {
			e := &Error{Col: t.Col,
				Msg:  "unknown session parameter '" + t.Text + "'",
				Hint: suggest(t.Text, setWords)}
			if e.Hint == "" {
				e.Msg += " (valid: " + strings.Join(setWords, ", ") + ")"
			}
			return nil, e
		}
		return nil, errf(t.Col, "expected session parameter (%s) after 'set', got %s", strings.Join(setWords, ", "), describe(t))
	}
	p.advance()
	s := &SetStmt{Param: Word{Text: param, Col: t.Col}}
	v := p.cur()
	switch {
	case v.Kind == WORD && strings.EqualFold(v.Text, "off"):
		s.Off = true
	case v.Kind == NUMBER:
		if param == "width" && (!v.IsInt || v.Val < 1) {
			return nil, errf(v.Col, "expected positive whole number of bits after 'set width', got %s", describe(v))
		}
		if v.Val < 0 {
			return nil, errf(v.Col, "expected non-negative %s, got %s", param, describe(v))
		}
		s.Value = v.Val
	default:
		return nil, errf(v.Col, "expected a number or 'off' after 'set %s', got %s", param, describe(v))
	}
	p.advance()
	s.ValueCol = v.Col
	return s, nil
}

// find parses
//
//	"find" Target [OfType] [Executing] [With] [AtWidth] [OrderBy] [Limit]
//
// with the clauses in that fixed order.
func (p *parser) find() (Stmt, error) {
	t := p.cur()
	target, ok := keywordIn(t, targetWords)
	if !ok {
		return nil, &Error{Col: t.Col,
			Msg:  "expected 'component' (or 'components', 'impls', 'pareto') after 'find', got " + describe(t),
			Hint: suggestWord(t, targetWords)}
	}
	if target == "pareto" {
		p.advance()
		return p.pareto()
	}
	f := &FindStmt{Target: Word{Text: t.Text, Col: t.Col}}
	p.advance()

	if p.atKw("of") {
		p.advance()
		if !p.kw("type") {
			return nil, errf(p.cur().Col, "expected 'type' after 'of' (as in \"of type Counter\"), got %s", describe(p.cur()))
		}
		n := p.cur()
		if n.Kind != WORD {
			return nil, errf(n.Col, "expected component type after 'of type', got %s", describe(n))
		}
		p.advance()
		f.Type = &Word{Text: n.Text, Col: n.Col}
	}

	if p.atKw("executing") {
		p.advance()
		for {
			n := p.cur()
			if n.Kind != WORD {
				return nil, errf(n.Col, "expected function name after '%s', got %s", prevSep(f.Executing), describe(n))
			}
			p.advance()
			f.Executing = append(f.Executing, Word{Text: n.Text, Col: n.Col})
			if !p.sep() {
				break
			}
		}
	}

	if p.atKw("with") {
		p.advance()
		after := "'with'"
		for {
			cond, err := p.cond(after)
			if err != nil {
				return nil, err
			}
			f.Where = append(f.Where, *cond)
			if !p.sep() {
				break
			}
			after = "'and'"
		}
	}

	if p.atKw("at") {
		p.advance()
		if !p.kw("width") {
			return nil, errf(p.cur().Col, "expected 'width' after 'at' (as in \"at width 16\"), got %s", describe(p.cur()))
		}
		n := p.cur()
		if n.Kind != NUMBER || !n.IsInt || n.Val < 1 {
			return nil, errf(n.Col, "expected positive whole number of bits after 'at width', got %s", describe(n))
		}
		p.advance()
		f.At = &AtClause{Width: int(n.Val), Col: n.Col}
	}

	if p.atKw("order") {
		p.advance()
		if !p.kw("by") {
			return nil, errf(p.cur().Col, "expected 'by' after 'order', got %s", describe(p.cur()))
		}
		k := p.cur()
		key, ok := keywordIn(k, orderKeyWords)
		if !ok {
			if strings.EqualFold(k.Text, "width") {
				// The one near-miss the grammar itself invites: width is a
				// constraint sugar, not a sortable attribute.
				return nil, errf(k.Col, "cannot order by 'width' (it is sugar over the width range); order by width_min or width_max")
			}
			if k.Kind == WORD {
				e := &Error{Col: k.Col,
					Msg:  "unknown order key '" + k.Text + "'",
					Hint: suggest(k.Text, orderKeyWords)}
				if e.Hint == "" {
					e.Msg += " (valid: " + strings.Join(orderKeyWords, ", ") + ")"
				}
				return nil, e
			}
			return nil, errf(k.Col, "expected order key after 'order by' (%s), got %s", strings.Join(orderKeyWords, ", "), describe(k))
		}
		p.advance()
		f.OrderBy = &OrderClause{Key: Word{Text: key, Col: k.Col}}
		if p.kw("desc") {
			f.OrderBy.Desc = true
		} else {
			p.kw("asc")
		}
	}

	if p.atKw("limit") {
		p.advance()
		n := p.cur()
		if n.Kind != NUMBER || !n.IsInt || n.Val < 0 {
			return nil, errf(n.Col, "expected non-negative integer after 'limit', got %s", describe(n))
		}
		p.advance()
		f.Limit = int(n.Val)
		f.HasLimit = true
	}

	// Anything left is either a clause out of canonical order (or
	// duplicated) or an unknown keyword worth a suggestion.
	if t := p.cur(); t.Kind == WORD {
		if kw, ok := keywordIn(t, clauseWords); ok {
			return nil, errf(t.Col, "clause '%s' is out of order or duplicated (clause order: of type, executing, with, at width, order by, limit)", kw)
		}
		return nil, &Error{Col: t.Col,
			Msg:  "unknown keyword '" + t.Text + "'",
			Hint: suggest(t.Text, clauseWords)}
	}
	return f, nil
}

// pareto parses the tail of
//
//	"find" "pareto" [("of" ("type" Name | "generator" Name))]
//	                [With] [AtWidth] ["dominated"] [Limit]
//
// with the clauses in that fixed order. The "find" and "pareto" words
// are already consumed.
func (p *parser) pareto() (Stmt, error) {
	f := &ParetoStmt{}
	if p.atKw("of") {
		p.advance()
		switch {
		case p.kw("type"):
			n := p.cur()
			if n.Kind != WORD {
				return nil, errf(n.Col, "expected component type after 'of type', got %s", describe(n))
			}
			p.advance()
			f.Type = &Word{Text: n.Text, Col: n.Col}
		case p.kw("generator"):
			n := p.cur()
			if n.Kind != WORD && n.Kind != STRING {
				return nil, errf(n.Col, "expected generator name after 'of generator', got %s", describe(n))
			}
			p.advance()
			f.Generator = &Word{Text: n.Text, Col: n.Col}
		default:
			return nil, errf(p.cur().Col, "expected 'type' or 'generator' after 'of' (as in \"of type Counter\" or \"of generator gen_cnt\"), got %s", describe(p.cur()))
		}
	}

	if p.atKw("with") {
		p.advance()
		after := "'with'"
		for {
			cond, err := p.cond(after)
			if err != nil {
				return nil, err
			}
			f.Where = append(f.Where, *cond)
			if !p.sep() {
				break
			}
			after = "'and'"
		}
	}

	if p.atKw("at") {
		p.advance()
		if !p.kw("width") {
			return nil, errf(p.cur().Col, "expected 'width' after 'at' (as in \"at width 16\"), got %s", describe(p.cur()))
		}
		n := p.cur()
		if n.Kind != NUMBER || !n.IsInt || n.Val < 1 {
			return nil, errf(n.Col, "expected positive whole number of bits after 'at width', got %s", describe(n))
		}
		p.advance()
		f.At = &AtClause{Width: int(n.Val), Col: n.Col}
	}

	if p.kw("dominated") {
		f.Dominated = true
	}

	if p.atKw("limit") {
		p.advance()
		n := p.cur()
		if n.Kind != NUMBER || !n.IsInt || n.Val < 0 {
			return nil, errf(n.Col, "expected non-negative integer after 'limit', got %s", describe(n))
		}
		p.advance()
		f.Limit = int(n.Val)
		f.HasLimit = true
	}

	if t := p.cur(); t.Kind == WORD {
		if kw, ok := keywordIn(t, paretoClauseWords); ok {
			return nil, errf(t.Col, "clause '%s' is out of order or duplicated (clause order: of, with, at width, dominated, limit)", kw)
		}
		return nil, &Error{Col: t.Col,
			Msg:  "unknown keyword '" + t.Text + "'",
			Hint: suggest(t.Text, paretoClauseWords)}
	}
	return f, nil
}

// explore parses
//
//	"explore" Name "width" Range ["step" Int] ["materialize"]
//	          { Name "=" Int }
//
// where Range is "<lo>..<hi>" (see widthRange).
func (p *parser) explore() (Stmt, error) {
	t := p.cur()
	if t.Kind != WORD && t.Kind != STRING {
		return nil, errf(t.Col, "expected generator name after 'explore', got %s", describe(t))
	}
	p.advance()
	e := &ExploreStmt{Gen: Word{Text: t.Text, Col: t.Col}}
	if !p.kw("width") {
		return nil, errf(p.cur().Col, "expected 'width <lo>..<hi>' after the generator name, got %s", describe(p.cur()))
	}
	lo, hi, col, err := p.widthRange()
	if err != nil {
		return nil, err
	}
	e.Lo, e.Hi, e.RangeCol = lo, hi, col
	if p.atKw("step") {
		p.advance()
		n := p.cur()
		if n.Kind != NUMBER || !n.IsInt || n.Val < 1 {
			return nil, errf(n.Col, "expected positive integer after 'step', got %s", describe(n))
		}
		p.advance()
		e.Step = int(n.Val)
	}
	if p.kw("materialize") {
		e.Materialize = true
	}
	params, err := p.paramList()
	if err != nil {
		return nil, err
	}
	e.Params = params
	return e, nil
}

// widthRange parses the "<lo>..<hi>" production of an explore command.
// The lexer's word rules make '.' a word character (so file paths lex
// whole), which means "4..64" arrives as a single WORD; the range may
// also arrive split across tokens ("4 .. 64", "4.. 64", "4 ..64"), and
// every split parses the same.
func (p *parser) widthRange() (lo, hi, col int, err error) {
	t := p.cur()
	col = t.Col
	switch {
	case t.Kind == NUMBER:
		if !t.IsInt || t.Val < 1 {
			return 0, 0, 0, errf(t.Col, "expected positive whole number of bits as the lower width bound, got %s", describe(t))
		}
		lo = int(t.Val)
		p.advance()
		d := p.cur()
		if d.Kind != WORD || !strings.HasPrefix(d.Text, "..") {
			return 0, 0, 0, errf(d.Col, "expected '..' after the lower width bound (as in \"width %d..64\"), got %s", lo, describe(d))
		}
		p.advance()
		if rest := d.Text[2:]; rest != "" {
			hi, err = rangeBound(rest, d.Col+2)
			if err != nil {
				return 0, 0, 0, err
			}
		} else {
			n := p.cur()
			if n.Kind != NUMBER || !n.IsInt || n.Val < 1 {
				return 0, 0, 0, errf(n.Col, "expected positive whole number of bits as the upper width bound, got %s", describe(n))
			}
			p.advance()
			hi = int(n.Val)
		}
	case t.Kind == WORD && strings.Contains(t.Text, ".."):
		i := strings.Index(t.Text, "..")
		loStr, hiStr := t.Text[:i], t.Text[i+2:]
		if loStr == "" {
			return 0, 0, 0, errf(t.Col, "width range needs a lower bound before '..' (as in \"width 4..64\")")
		}
		if lo, err = rangeBound(loStr, t.Col); err != nil {
			return 0, 0, 0, err
		}
		p.advance()
		if hiStr != "" {
			if hi, err = rangeBound(hiStr, t.Col+i+2); err != nil {
				return 0, 0, 0, err
			}
		} else {
			n := p.cur()
			if n.Kind != NUMBER || !n.IsInt || n.Val < 1 {
				return 0, 0, 0, errf(n.Col, "expected positive whole number of bits as the upper width bound, got %s", describe(n))
			}
			p.advance()
			hi = int(n.Val)
		}
	default:
		return 0, 0, 0, errf(t.Col, "expected width range '<lo>..<hi>' after 'width', got %s", describe(t))
	}
	if hi < lo {
		return 0, 0, 0, errf(col, "bad width range %d..%d (upper bound below lower)", lo, hi)
	}
	return lo, hi, col, nil
}

// rangeBound parses one bound of a width range that arrived glued to
// the ".." inside a single word.
func rangeBound(s string, col int) (int, error) {
	v, err := strconv.Atoi(s)
	if err != nil || v < 1 {
		return 0, errf(col, "expected positive whole number of bits as a width bound, got '%s'", s)
	}
	return v, nil
}

// prevSep names the token a function list element follows, for error
// messages: 'executing' for the first element, 'and' afterwards.
func prevSep(sofar []Word) string {
	if len(sofar) == 0 {
		return "executing"
	}
	return "and"
}

// cond parses one attribute comparison: Attr CmpOp Number. after names
// the preceding keyword for error positions ("expected attribute after
// 'with'").
func (p *parser) cond(after string) (*Cond, error) {
	a := p.cur()
	if a.Kind != WORD {
		return nil, errf(a.Col, "expected attribute after %s, got %s", after, describe(a))
	}
	attr, ok := keywordIn(a, attrWords)
	if !ok {
		return nil, &Error{Col: a.Col,
			Msg:  "unknown attribute '" + a.Text + "'",
			Hint: suggest(a.Text, attrWords)}
	}
	p.advance()
	op := p.cur()
	switch op.Kind {
	case LE, LT, GE, GT, EQ, NE:
	default:
		return nil, errf(op.Col, "expected comparison operator (<=, <, >=, >, =, !=) after '%s', got %s", a.Text, describe(op))
	}
	p.advance()
	v := p.cur()
	if v.Kind != NUMBER {
		return nil, errf(v.Col, "expected number after '%s', got %s", op.Text, describe(v))
	}
	p.advance()
	return &Cond{
		Attr:       Word{Text: attr, Col: a.Col},
		Op:         op.Kind,
		OpText:     op.Text,
		OpCol:      op.Col,
		Value:      v.Val,
		ValueIsInt: v.IsInt,
		ValueCol:   v.Col,
	}, nil
}

// show parses "show" ("impls" | "components" | "functions" |
// "generators" | "explorations" | "session" | "server").
func (p *parser) show() (Stmt, error) {
	t := p.cur()
	what, ok := keywordIn(t, showWords)
	if !ok {
		if t.Kind == WORD {
			return nil, &Error{Col: t.Col,
				Msg:  "unknown listing '" + t.Text + "'",
				Hint: suggest(t.Text, showWords)}
		}
		return nil, errf(t.Col, "expected 'impls', 'components', 'functions', 'generators', 'explorations', 'session', or 'server' after 'show', got %s", describe(t))
	}
	p.advance()
	return &ShowStmt{What: Word{Text: what, Col: t.Col}}, nil
}

// describeCmd parses "describe" Name.
func (p *parser) describeCmd() (Stmt, error) {
	t := p.cur()
	if t.Kind != WORD && t.Kind != STRING {
		return nil, errf(t.Col, "expected implementation name after 'describe', got %s", describe(t))
	}
	p.advance()
	return &DescribeStmt{Name: Word{Text: t.Text, Col: t.Col}}, nil
}

// expand parses "expand" Path { Name "=" Int }.
func (p *parser) expand() (Stmt, error) {
	t := p.cur()
	if t.Kind != WORD && t.Kind != STRING {
		return nil, errf(t.Col, "expected design file (or '-' for stdin) after 'expand', got %s", describe(t))
	}
	p.advance()
	e := &ExpandStmt{Path: Word{Text: t.Text, Col: t.Col}}
	params, err := p.paramList()
	if err != nil {
		return nil, err
	}
	e.Params = params
	return e, nil
}

// generate parses "generate" Name { Name "=" Int }: a generator (or
// component type) followed by its parameter-point bindings.
func (p *parser) generate() (Stmt, error) {
	t := p.cur()
	if t.Kind != WORD && t.Kind != STRING {
		return nil, errf(t.Col, "expected generator or component type after 'generate', got %s", describe(t))
	}
	p.advance()
	g := &GenerateStmt{Name: Word{Text: t.Text, Col: t.Col}}
	params, err := p.paramList()
	if err != nil {
		return nil, err
	}
	g.Params = params
	return g, nil
}

// estimate parses "estimate" Name "width" "=" Int [Attr].
func (p *parser) estimate() (Stmt, error) {
	t := p.cur()
	if t.Kind != WORD && t.Kind != STRING {
		return nil, errf(t.Col, "expected implementation name after 'estimate', got %s", describe(t))
	}
	p.advance()
	e := &EstimateStmt{Name: Word{Text: t.Text, Col: t.Col}}
	if !p.kw("width") {
		return nil, errf(p.cur().Col, "expected 'width=<bits>' after the implementation name, got %s", describe(p.cur()))
	}
	if p.cur().Kind != EQ {
		return nil, errf(p.cur().Col, "expected '=' after 'width', got %s", describe(p.cur()))
	}
	p.advance()
	v := p.cur()
	if v.Kind != NUMBER || !v.IsInt || v.Val < 1 {
		return nil, errf(v.Col, "expected positive whole number of bits after 'width=', got %s", describe(v))
	}
	p.advance()
	e.Width = int(v.Val)
	e.WidthCol = v.Col
	if a := p.cur(); a.Kind == WORD {
		attr, ok := keywordIn(a, estimateWords)
		if !ok {
			e := &Error{Col: a.Col,
				Msg:  "unknown estimate attribute '" + a.Text + "'",
				Hint: suggest(a.Text, estimateWords)}
			if e.Hint == "" {
				e.Msg += " (valid: " + strings.Join(estimateWords, ", ") + ")"
			}
			return nil, e
		}
		p.advance()
		e.Attr = &Word{Text: attr, Col: a.Col}
	}
	return e, nil
}

// paramList parses the { Name "=" Int } binding tail shared by the
// expand and generate commands.
func (p *parser) paramList() ([]ExpandParam, error) {
	var params []ExpandParam
	for p.cur().Kind != EOF {
		n := p.cur()
		if n.Kind != WORD {
			return nil, errf(n.Col, "expected parameter name, got %s", describe(n))
		}
		p.advance()
		if p.cur().Kind != EQ {
			return nil, errf(p.cur().Col, "expected '=' after parameter name '%s', got %s", n.Text, describe(p.cur()))
		}
		p.advance()
		v := p.cur()
		if v.Kind != NUMBER || !v.IsInt {
			return nil, errf(v.Col, "expected integer value for parameter '%s', got %s", n.Text, describe(v))
		}
		p.advance()
		params = append(params, ExpandParam{Name: Word{Text: n.Text, Col: n.Col}, Value: int(v.Val)})
	}
	return params, nil
}

// suggestWord suggests a replacement for a WORD token, or "" for other
// token kinds.
func suggestWord(t Token, vocab []string) string {
	if t.Kind != WORD {
		return ""
	}
	return suggest(t.Text, vocab)
}
