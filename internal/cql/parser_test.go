package cql

import (
	"reflect"
	"strings"
	"testing"
)

// parseFind parses src and asserts the result is a FindStmt.
func parseFind(t *testing.T, src string) *FindStmt {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	f, ok := stmt.(*FindStmt)
	if !ok {
		t.Fatalf("Parse(%q) = %T, want *FindStmt", src, stmt)
	}
	return f
}

// TestParseFindCmd covers the FindCmd production with every clause
// present, in canonical order.
func TestParseFindCmd(t *testing.T) {
	f := parseFind(t, "find component of type Counter executing INC and STORAGE "+
		"with area <= 12.5 and stages = 1 order by delay desc limit 3")
	if f.Target.Text != "component" {
		t.Errorf("Target = %q", f.Target.Text)
	}
	if f.Type == nil || f.Type.Text != "Counter" {
		t.Errorf("Type = %+v", f.Type)
	}
	var fns []string
	for _, w := range f.Executing {
		fns = append(fns, w.Text)
	}
	if !reflect.DeepEqual(fns, []string{"INC", "STORAGE"}) {
		t.Errorf("Executing = %v", fns)
	}
	if len(f.Where) != 2 {
		t.Fatalf("Where = %+v", f.Where)
	}
	if f.Where[0].Attr.Text != "area" || f.Where[0].Op != LE || f.Where[0].Value != 12.5 {
		t.Errorf("Where[0] = %+v", f.Where[0])
	}
	if f.Where[1].Attr.Text != "stages" || f.Where[1].Op != EQ || f.Where[1].Value != 1 || !f.Where[1].ValueIsInt {
		t.Errorf("Where[1] = %+v", f.Where[1])
	}
	if f.OrderBy == nil || f.OrderBy.Key.Text != "delay" || !f.OrderBy.Desc {
		t.Errorf("OrderBy = %+v", f.OrderBy)
	}
	if !f.HasLimit || f.Limit != 3 {
		t.Errorf("Limit = %d (has %v)", f.Limit, f.HasLimit)
	}
}

// TestParseTarget covers the Target production's three synonyms.
func TestParseTarget(t *testing.T) {
	for _, target := range []string{"component", "components", "impls"} {
		f := parseFind(t, "find "+target)
		if !strings.EqualFold(f.Target.Text, target) {
			t.Errorf("Target = %q, want %q", f.Target.Text, target)
		}
	}
}

// TestParseOfType covers the OfType production alone.
func TestParseOfType(t *testing.T) {
	f := parseFind(t, "find component of type Register")
	if f.Type == nil || f.Type.Text != "Register" || f.Type.Col != 24 {
		t.Errorf("Type = %+v", f.Type)
	}
	if f.Executing != nil || f.Where != nil || f.OrderBy != nil || f.HasLimit {
		t.Errorf("unexpected clauses: %+v", f)
	}
}

// TestParseExecuting covers the Executing production: single function,
// "and" lists, and the comma separator.
func TestParseExecuting(t *testing.T) {
	for _, src := range []string{
		"find component executing COUNTER and STORAGE and LOAD",
		"find component executing COUNTER, STORAGE, LOAD",
		"find component executing COUNTER and STORAGE, LOAD",
	} {
		f := parseFind(t, src)
		if len(f.Executing) != 3 || f.Executing[2].Text != "LOAD" {
			t.Errorf("Parse(%q).Executing = %+v", src, f.Executing)
		}
	}
	if f := parseFind(t, "find component executing XOR"); len(f.Executing) != 1 {
		t.Errorf("Executing = %+v", f.Executing)
	}
}

// TestParseWithCond covers the With and Cond productions: every
// comparison operator and the width attribute.
func TestParseWithCond(t *testing.T) {
	ops := []struct {
		src  string
		kind Kind
	}{
		{"<=", LE}, {"<", LT}, {">=", GE}, {">", GT}, {"=", EQ}, {"==", EQ}, {"!=", NE},
	}
	for _, op := range ops {
		f := parseFind(t, "find component with width "+op.src+" 8")
		if len(f.Where) != 1 || f.Where[0].Op != op.kind || f.Where[0].Attr.Text != "width" {
			t.Errorf("with width %s 8: Where = %+v", op.src, f.Where)
		}
	}
	f := parseFind(t, "find component with width_min <= 4 and width_max >= 16")
	if len(f.Where) != 2 || f.Where[0].Attr.Text != "width_min" || f.Where[1].Attr.Text != "width_max" {
		t.Errorf("Where = %+v", f.Where)
	}
}

// TestParseOrderBy covers the OrderBy production: every key, default
// direction, explicit asc, and desc.
func TestParseOrderBy(t *testing.T) {
	for _, key := range []string{"cost", "area", "delay", "stages", "width_min", "width_max"} {
		f := parseFind(t, "find component order by "+key)
		if f.OrderBy == nil || f.OrderBy.Key.Text != key || f.OrderBy.Desc {
			t.Errorf("order by %s: %+v", key, f.OrderBy)
		}
	}
	if f := parseFind(t, "find component order by area asc"); f.OrderBy.Desc {
		t.Error("asc parsed as desc")
	}
	if f := parseFind(t, "find component order by area desc"); !f.OrderBy.Desc {
		t.Error("desc not parsed")
	}
}

// TestParseLimit covers the Limit production.
func TestParseLimit(t *testing.T) {
	f := parseFind(t, "find component limit 5")
	if !f.HasLimit || f.Limit != 5 {
		t.Errorf("Limit = %+v", f)
	}
	f = parseFind(t, "find component limit 0")
	if !f.HasLimit || f.Limit != 0 {
		t.Errorf("limit 0 must parse (explicitly unlimited): %+v", f)
	}
}

// TestParseShowCmd covers the ShowCmd production's three listings.
func TestParseShowCmd(t *testing.T) {
	for _, what := range []string{"impls", "components", "functions"} {
		stmt, err := Parse("show " + what)
		if err != nil {
			t.Fatalf("show %s: %v", what, err)
		}
		s, ok := stmt.(*ShowStmt)
		if !ok || s.What.Text != what {
			t.Errorf("show %s = %+v", what, stmt)
		}
	}
}

// TestParseDescribeCmd covers the DescribeCmd production.
func TestParseDescribeCmd(t *testing.T) {
	stmt, err := Parse("describe reg_d")
	if err != nil {
		t.Fatal(err)
	}
	d, ok := stmt.(*DescribeStmt)
	if !ok || d.Name.Text != "reg_d" || d.Name.Col != 10 {
		t.Errorf("describe = %+v", stmt)
	}
}

// TestParseExpandCmd covers the ExpandCmd production: bare and quoted
// paths, stdin, and parameter bindings.
func TestParseExpandCmd(t *testing.T) {
	stmt, err := Parse(`expand designs/top.iif size=8 n=-2`)
	if err != nil {
		t.Fatal(err)
	}
	e := stmt.(*ExpandStmt)
	if e.Path.Text != "designs/top.iif" {
		t.Errorf("Path = %q", e.Path.Text)
	}
	if len(e.Params) != 2 || e.Params[0].Name.Text != "size" || e.Params[0].Value != 8 ||
		e.Params[1].Name.Text != "n" || e.Params[1].Value != -2 {
		t.Errorf("Params = %+v", e.Params)
	}

	stmt, err = Parse(`expand "my designs/top.iif" size=4`)
	if err != nil {
		t.Fatal(err)
	}
	if e := stmt.(*ExpandStmt); e.Path.Text != "my designs/top.iif" {
		t.Errorf("quoted Path = %q", e.Path.Text)
	}

	stmt, err = Parse(`expand -`)
	if err != nil {
		t.Fatal(err)
	}
	if e := stmt.(*ExpandStmt); e.Path.Text != "-" {
		t.Errorf("stdin Path = %q", e.Path.Text)
	}
}

// TestParseParetoCmd covers the ParetoCmd production: full clause
// complement, both "of" selectors, and the bare form.
func TestParseParetoCmd(t *testing.T) {
	stmt, err := Parse("find pareto of type Counter with area <= 200 and delay < 9 at width 16 dominated limit 10")
	if err != nil {
		t.Fatal(err)
	}
	f, ok := stmt.(*ParetoStmt)
	if !ok {
		t.Fatalf("Parse = %T, want *ParetoStmt", stmt)
	}
	if f.Type == nil || f.Type.Text != "Counter" || f.Generator != nil {
		t.Errorf("Type = %+v, Generator = %+v", f.Type, f.Generator)
	}
	if len(f.Where) != 2 || f.Where[0].Attr.Text != "area" || f.Where[1].Op != LT {
		t.Errorf("Where = %+v", f.Where)
	}
	if f.At == nil || f.At.Width != 16 {
		t.Errorf("At = %+v", f.At)
	}
	if !f.Dominated || !f.HasLimit || f.Limit != 10 {
		t.Errorf("Dominated = %v, Limit = %d (has %v)", f.Dominated, f.Limit, f.HasLimit)
	}

	stmt, err = Parse("find pareto of generator gen_cnt")
	if err != nil {
		t.Fatal(err)
	}
	f = stmt.(*ParetoStmt)
	if f.Generator == nil || f.Generator.Text != "gen_cnt" || f.Type != nil {
		t.Errorf("Generator = %+v, Type = %+v", f.Generator, f.Type)
	}

	stmt, err = Parse("find pareto")
	if err != nil {
		t.Fatal(err)
	}
	f = stmt.(*ParetoStmt)
	if f.Type != nil || f.Generator != nil || f.Where != nil || f.Dominated || f.HasLimit {
		t.Errorf("bare pareto = %+v", f)
	}
}

// TestParseExploreCmd covers the ExploreCmd production, including every
// tokenization the lexer can hand the width range ('.' is a word
// character, so "4..64" is one WORD; spacing splits it differently).
func TestParseExploreCmd(t *testing.T) {
	stmt, err := Parse("explore gen_cnt width 4..64 step 4 materialize stages=2")
	if err != nil {
		t.Fatal(err)
	}
	e, ok := stmt.(*ExploreStmt)
	if !ok {
		t.Fatalf("Parse = %T, want *ExploreStmt", stmt)
	}
	if e.Gen.Text != "gen_cnt" || e.Lo != 4 || e.Hi != 64 || e.Step != 4 || !e.Materialize {
		t.Errorf("explore = %+v", e)
	}
	if len(e.Params) != 1 || e.Params[0].Name.Text != "stages" || e.Params[0].Value != 2 {
		t.Errorf("Params = %+v", e.Params)
	}

	// All range tokenizations parse the same.
	for _, src := range []string{
		"explore gen_cnt width 4..64",
		"explore gen_cnt width 4 .. 64",
		"explore gen_cnt width 4.. 64",
		"explore gen_cnt width 4 ..64",
	} {
		stmt, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		e := stmt.(*ExploreStmt)
		if e.Lo != 4 || e.Hi != 64 || e.Step != 0 || e.Materialize {
			t.Errorf("Parse(%q) = %+v", src, e)
		}
	}

	// A degenerate single-point range is legal.
	stmt, err = Parse("explore gen_cnt width 8..8")
	if err != nil {
		t.Fatal(err)
	}
	if e := stmt.(*ExploreStmt); e.Lo != 8 || e.Hi != 8 {
		t.Errorf("single-point range = %+v", e)
	}
}

// TestParseHelpCmd covers the HelpCmd production.
func TestParseHelpCmd(t *testing.T) {
	stmt, err := Parse("help")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := stmt.(*HelpStmt); !ok {
		t.Errorf("help = %T", stmt)
	}
}

// TestParseCaseInsensitive checks keywords match in any case while the
// operand words keep their spelling.
func TestParseCaseInsensitive(t *testing.T) {
	f := parseFind(t, "FIND Component EXECUTING storage WITH Area <= 10 ORDER BY Delay LIMIT 2")
	if len(f.Executing) != 1 || f.Executing[0].Text != "storage" {
		t.Errorf("Executing = %+v", f.Executing)
	}
	if len(f.Where) != 1 || f.Where[0].Attr.Text != "area" {
		t.Errorf("Where = %+v", f.Where)
	}
	if f.OrderBy == nil || f.OrderBy.Key.Text != "delay" {
		t.Errorf("OrderBy = %+v", f.OrderBy)
	}
}

// TestParseErrors is the error-path table: exact messages, exact
// columns, and keyword suggestions.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"", "cql: expected a command (find, show, describe, expand, generate, estimate, explore, or help), got end of command at col 1"},
		{"42", "cql: expected a command (find, show, describe, expand, generate, estimate, explore, or help), got number 42 at col 1"},
		{"fnd component", `cql: unknown command 'fnd' at col 1 (did you mean "find"?)`},
		{"descrbe reg_d", `cql: unknown command 'descrbe' at col 1 (did you mean "describe"?)`},
		{"exlpore gen_cnt width 4..64", `cql: unknown command 'exlpore' at col 1 (did you mean "explore"?)`},
		{"find", "cql: expected 'component' (or 'components', 'impls', 'pareto') after 'find', got end of command at col 5"},
		{"find componnet", `cql: expected 'component' (or 'components', 'impls', 'pareto') after 'find', got 'componnet' at col 6 (did you mean "component"?)`},
		{"find paretto of type Counter", `cql: expected 'component' (or 'components', 'impls', 'pareto') after 'find', got 'paretto' at col 6 (did you mean "pareto"?)`},
		{"find component of Counter", "cql: expected 'type' after 'of' (as in \"of type Counter\"), got 'Counter' at col 19"},
		{"find component of type", "cql: expected component type after 'of type', got end of command at col 23"},
		{"find component executing", "cql: expected function name after 'executing', got end of command at col 25"},
		{"find component executing STORAGE and", "cql: expected function name after 'and', got end of command at col 37"},
		{"find component exectuing STORAGE", `cql: unknown keyword 'exectuing' at col 16 (did you mean "executing"?)`},
		{"find component with", "cql: expected attribute after 'with', got end of command at col 20"},
		{"find component with <= 2", "cql: expected attribute after 'with', got '<=' at col 21"},
		{"find component with area <= 2 and", "cql: expected attribute after 'and', got end of command at col 34"},
		{"find component with aera <= 2", `cql: unknown attribute 'aera' at col 21 (did you mean "area"?)`},
		{"find component with area 10", "cql: expected comparison operator (<=, <, >=, >, =, !=) after 'area', got number 10 at col 26"},
		{"find component with area <= fast", "cql: expected number after '<=', got 'fast' at col 29"},
		{"find component order delay", "cql: expected 'by' after 'order', got 'delay' at col 22"},
		{"find component order by dely", `cql: unknown order key 'dely' at col 25 (did you mean "delay"?)`},
		{"find component order by width", "cql: cannot order by 'width' (it is sugar over the width range); order by width_min or width_max at col 25"},
		{"find component order by zzz", "cql: unknown order key 'zzz' (valid: cost, area, delay, stages, width_min, width_max) at col 25"},
		{"find component order by", "cql: expected order key after 'order by' (cost, area, delay, stages, width_min, width_max), got end of command at col 24"},
		{"find component limit x", "cql: expected non-negative integer after 'limit', got 'x' at col 22"},
		{"find component limit 2.5", "cql: expected non-negative integer after 'limit', got number 2.5 at col 22"},
		{"find component limit -1", "cql: expected non-negative integer after 'limit', got number -1 at col 22"},
		{"find component executing STORAGE of type Counter", "cql: clause 'of' is out of order or duplicated (clause order: of type, executing, with, at width, order by, limit)" /* col below */},
		{"find component limit 1 limit 2", "cql: clause 'limit' is out of order or duplicated (clause order: of type, executing, with, at width, order by, limit)"},
		{"find component at 16", "cql: expected 'width' after 'at' (as in \"at width 16\"), got number 16 at col 19"},
		{"find component at width", "cql: expected positive whole number of bits after 'at width', got end of command at col 24"},
		{"find component at width 0", "cql: expected positive whole number of bits after 'at width', got number 0 at col 25"},
		{"find component at width 2.5", "cql: expected positive whole number of bits after 'at width', got number 2.5 at col 25"},
		{"find component order by area at width 8", "cql: clause 'at' is out of order or duplicated (clause order: of type, executing, with, at width, order by, limit) at col 30"},
		{"show impl", `cql: unknown listing 'impl' at col 6 (did you mean "impls"?)`},
		{"show", "cql: expected 'impls', 'components', 'functions', 'generators', 'explorations', 'session', or 'server' after 'show', got end of command at col 5"},
		{"show generatos", `cql: unknown listing 'generatos' at col 6 (did you mean "generators"?)`},
		{"show exploration", `cql: unknown listing 'exploration' at col 6 (did you mean "explorations"?)`},
		{"find pareto of Counter", "cql: expected 'type' or 'generator' after 'of' (as in \"of type Counter\" or \"of generator gen_cnt\"), got 'Counter' at col 16"},
		{"find pareto of type", "cql: expected component type after 'of type', got end of command at col 20"},
		{"find pareto of generator", "cql: expected generator name after 'of generator', got end of command at col 25"},
		{"find pareto with aera <= 2", `cql: unknown attribute 'aera' at col 18 (did you mean "area"?)`},
		{"find pareto dominated with area <= 2", "cql: clause 'with' is out of order or duplicated (clause order: of, with, at width, dominated, limit) at col 23"},
		{"find pareto dominted", `cql: unknown keyword 'dominted' at col 13 (did you mean "dominated"?)`},
		{"find pareto limit x", "cql: expected non-negative integer after 'limit', got 'x' at col 19"},
		{"explore", "cql: expected generator name after 'explore', got end of command at col 8"},
		{"explore gen_cnt", "cql: expected 'width <lo>..<hi>' after the generator name, got end of command at col 16"},
		{"explore gen_cnt width", "cql: expected width range '<lo>..<hi>' after 'width', got end of command at col 22"},
		{"explore gen_cnt width 4", "cql: expected '..' after the lower width bound (as in \"width 4..64\"), got end of command at col 24"},
		{"explore gen_cnt width 4..", "cql: expected positive whole number of bits as the upper width bound, got end of command at col 26"},
		{"explore gen_cnt width ..64", "cql: width range needs a lower bound before '..' (as in \"width 4..64\") at col 23"},
		{"explore gen_cnt width 4..x", "cql: expected positive whole number of bits as a width bound, got 'x' at col 26"},
		{"explore gen_cnt width 8..4", "cql: bad width range 8..4 (upper bound below lower) at col 23"},
		{"explore gen_cnt width 0..8", "cql: expected positive whole number of bits as a width bound, got '0' at col 23"},
		{"explore gen_cnt width 0 ..8", "cql: expected positive whole number of bits as the lower width bound, got number 0 at col 23"},
		{"explore gen_cnt width 4..8 step 0", "cql: expected positive integer after 'step', got number 0 at col 33"},
		{"explore gen_cnt width 4..8 step x", "cql: expected positive integer after 'step', got 'x' at col 33"},
		{"explore gen_cnt width 4..8 stages 2", "cql: expected '=' after parameter name 'stages', got number 2 at col 35"},
		{"describe", "cql: expected implementation name after 'describe', got end of command at col 9"},
		{"expand", "cql: expected design file (or '-' for stdin) after 'expand', got end of command at col 7"},
		{"expand f.iif size 4", "cql: expected '=' after parameter name 'size', got number 4 at col 19"},
		{"expand f.iif size=big", "cql: expected integer value for parameter 'size', got 'big' at col 19"},
		{"expand f.iif size=2.5", "cql: expected integer value for parameter 'size', got number 2.5 at col 19"},
		{"expand f.iif =4", "cql: expected parameter name, got '=' at col 14"},
		{"generate", "cql: expected generator or component type after 'generate', got end of command at col 9"},
		{"generate gen size 4", "cql: expected '=' after parameter name 'size', got number 4 at col 19"},
		{"generate gen size=big", "cql: expected integer value for parameter 'size', got 'big' at col 19"},
		{"estimate", "cql: expected implementation name after 'estimate', got end of command at col 9"},
		{"estimate reg_d", "cql: expected 'width=<bits>' after the implementation name, got end of command at col 15"},
		{"estimate reg_d width", "cql: expected '=' after 'width', got end of command at col 21"},
		{"estimate reg_d width=0", "cql: expected positive whole number of bits after 'width=', got number 0 at col 22"},
		{"estimate reg_d width=8 aera", `cql: unknown estimate attribute 'aera' at col 24 (did you mean "area"?)`},
		{"help me", "cql: unexpected 'me' after complete command at col 6"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q): no error, want %q", c.src, c.want)
			continue
		}
		if !strings.HasPrefix(err.Error(), c.want) {
			t.Errorf("Parse(%q)\n  got  %q\n  want %q", c.src, err, c.want)
		}
	}
}

// TestParseErrorColumns spot-checks that *Error.Col is the machine-
// readable position, not just part of the message.
func TestParseErrorColumns(t *testing.T) {
	src := "find component executing STORAGE of type Counter"
	_, err := Parse(src)
	e, ok := err.(*Error)
	if !ok {
		t.Fatalf("error is %T", err)
	}
	if want := strings.Index(src, "of") + 1; e.Col != want {
		t.Errorf("Col = %d, want %d", e.Col, want)
	}
}

// TestSuggest pins the typo-suggestion behavior: close typos get hints,
// far-off words do not.
func TestSuggest(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{"exectuing", "executing"},
		{"EXECTUING", "executing"},
		{"limti", "limit"},
		{"wth", "with"},
		{"zzzzzz", ""},
	}
	for _, c := range cases {
		if got := suggest(c.got, clauseWords); got != c.want {
			t.Errorf("suggest(%q) = %q, want %q", c.got, got, c.want)
		}
	}
	if d := editDistance("kitten", "sitting"); d != 3 {
		t.Errorf("editDistance(kitten, sitting) = %d, want 3", d)
	}
	if d := editDistance("", "abc"); d != 3 {
		t.Errorf("editDistance(\"\", abc) = %d, want 3", d)
	}
}
