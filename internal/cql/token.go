// Package cql implements the Component Query Language front-end: the
// textual command interface synthesis tools use to talk to the ICDB
// without linking Go code (§5 of the paper). It lexes and parses
// commands such as
//
//	find component executing STORAGE with area <= 10 order by delay limit 5
//	show impls
//	describe ripple_ctr
//	expand counter.iif size=8
//
// into a typed AST (Parse) and compiles them onto the existing engine
// (Env.Exec, CompileFind): query-by-function, attribute constraints,
// ordered ranking, and IIF expansion. Parse errors carry the column of
// the offending token and, for misspelled keywords, a "did you mean"
// suggestion. The grammar is specified in CQL.md, next to this package.
package cql

import "fmt"

// Kind classifies a lexical token.
type Kind int

// The token kinds of the CQL lexer. Keywords are not lexed specially:
// they are WORD tokens the parser matches case-insensitively, so "FIND",
// "find", and signal-ish names never collide at the lexer level.
const (
	// EOF terminates every token stream.
	EOF Kind = iota
	// WORD is a bare word: a keyword, attribute, function, component,
	// implementation name, or file path (letters, digits, '_', '.', '/',
	// '~', '-').
	WORD
	// NUMBER is an integer or decimal literal such as 5, 10.5, or -3.
	NUMBER
	// STRING is a double-quoted string, for paths containing spaces.
	STRING
	// LE, LT, GE, GT, EQ, NE are the comparison operators <=, <, >=, >,
	// = (or ==), and !=.
	LE
	LT
	GE
	GT
	EQ
	NE
	// COMMA separates list elements; accepted wherever "and" is.
	COMMA
)

// String renders the kind for diagnostics ("expected NUMBER, got ...").
func (k Kind) String() string {
	switch k {
	case EOF:
		return "end of command"
	case WORD:
		return "word"
	case NUMBER:
		return "number"
	case STRING:
		return "string"
	case LE:
		return "'<='"
	case LT:
		return "'<'"
	case GE:
		return "'>='"
	case GT:
		return "'>'"
	case EQ:
		return "'='"
	case NE:
		return "'!='"
	case COMMA:
		return "','"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Token is one lexical token with its 1-based source column.
type Token struct {
	Kind Kind
	// Text is the raw source text of the token (unquoted for STRING).
	Text string
	// Val is the numeric value of a NUMBER token.
	Val float64
	// IsInt reports whether a NUMBER token was written without a
	// fractional part, so it can be used where an integer is required
	// (limit counts, expand parameter values).
	IsInt bool
	// Col is the 1-based column of the token's first character.
	Col int
}

// Error is a CQL front-end error carrying the 1-based column of the
// offending token and an optional "did you mean" suggestion.
type Error struct {
	Col  int
	Msg  string
	Hint string
}

// Error renders as e.g.
//
//	cql: expected attribute after 'with' at col 34
//	cql: unknown keyword "exectuing" at col 16 (did you mean "executing"?)
func (e *Error) Error() string {
	s := fmt.Sprintf("cql: %s at col %d", e.Msg, e.Col)
	if e.Hint != "" {
		s += fmt.Sprintf(" (did you mean %q?)", e.Hint)
	}
	return s
}

// errf builds a positioned Error with no suggestion.
func errf(col int, format string, args ...any) *Error {
	return &Error{Col: col, Msg: fmt.Sprintf(format, args...)}
}
