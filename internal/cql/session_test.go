package cql

// Tests for the per-session parameters: set width / set area_weight /
// set delay_weight, show session, and their effect on find commands.

import (
	"errors"
	"strings"
	"testing"
)

// sess executes src against a fresh buffer on env, returning the output.
func sess(t *testing.T, env *Env, src string) string {
	t.Helper()
	var sb strings.Builder
	saved := env.Out
	env.Out = &sb
	err := env.Exec(src)
	env.Out = saved
	if err != nil {
		t.Fatalf("Exec(%q): %v", src, err)
	}
	return sb.String()
}

func TestSetWidthDefaultsFind(t *testing.T) {
	db := openTestDB(t)
	env := &Env{DB: db}

	// With the session width set, a find without "at width" evaluates
	// estimators at the session width — identical output to the explicit
	// "at width" form.
	sess(t, env, "set width 16")
	implicit := sess(t, env, "find component of type Counter order by area")
	explicit := sess(t, env, "find component of type Counter at width 16 order by area")
	if implicit != explicit {
		t.Errorf("session width 16: implicit find output differs from 'at width 16':\n%s\nvs\n%s", implicit, explicit)
	}

	// An explicit "at width" on the command wins over the session width.
	at8 := sess(t, env, "find component of type Counter at width 8 order by area")
	env2 := &Env{DB: db}
	want8 := sess(t, env2, "find component of type Counter at width 8 order by area")
	if at8 != want8 {
		t.Errorf("explicit at width 8 did not win over session width:\n%s\nvs\n%s", at8, want8)
	}

	// "set width off" restores scalar estimates.
	sess(t, env, "set width off")
	scalar := sess(t, env, "find component of type Counter order by area")
	wantScalar := sess(t, env2, "find component of type Counter order by area")
	if scalar != wantScalar {
		t.Errorf("set width off did not restore scalar finds:\n%s\nvs\n%s", scalar, wantScalar)
	}
}

func TestSetWeightsRescoreFind(t *testing.T) {
	db := openTestDB(t)
	env := &Env{DB: db}

	// Delay-only scoring: every reported cost must equal the delay.
	sess(t, env, "set area_weight 0")
	sess(t, env, "set delay_weight 1")
	out := sess(t, env, "find component of type Counter order by cost limit 3")
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		di := strings.Index(line, "delay ")
		ci := strings.Index(line, "cost ")
		if di < 0 || ci < 0 {
			t.Fatalf("unexpected find row %q", line)
		}
		delay := strings.Fields(line[di:])[1]
		cost := strings.Fields(line[ci:])[1]
		if delay != cost {
			t.Errorf("with area_weight 0, delay_weight 1: cost %s != delay %s in %q", cost, delay, line)
		}
	}

	// The override is per-session: a fresh Env scores with the database
	// defaults again.
	fresh := sess(t, &Env{DB: db}, "find component of type Counter order by cost limit 3")
	if fresh == out {
		t.Errorf("fresh session unexpectedly matched the weighted session's output")
	}
}

func TestShowSession(t *testing.T) {
	db := openTestDB(t)
	env := &Env{DB: db}
	out := sess(t, env, "show session")
	for _, want := range []string{"width:", "off", "area_weight:", "1 (database default)", "delay_weight:"} {
		if !strings.Contains(out, want) {
			t.Errorf("show session output missing %q:\n%s", want, out)
		}
	}
	sess(t, env, "set width 8")
	sess(t, env, "set delay_weight 2.5")
	out = sess(t, env, "show session")
	for _, want := range []string{"width:        8", "delay_weight: 2.5 (session override"} {
		if !strings.Contains(out, want) {
			t.Errorf("show session after sets missing %q:\n%s", want, out)
		}
	}
}

func TestSetParseErrors(t *testing.T) {
	for src, want := range map[string]string{
		"set":                "expected session parameter",
		"set bogus 3":        "unknown session parameter 'bogus'",
		"set width":          "expected a number or 'off'",
		"set width 0":        "positive whole number",
		"set width 2.5":      "positive whole number",
		"set area_weight on": "expected a number or 'off'",
	} {
		if _, err := Parse(src); err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("Parse(%q) err = %v, want %q", src, err, want)
		}
	}
}

// failAfter fails the nth write, simulating a client that disappears
// mid-stream.
type failAfter struct {
	n    int
	errv error
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, f.errv
	}
	f.n--
	return len(p), nil
}

// TestFindStopsOnWriteError pins the streaming contract a server
// depends on: when the output writer fails, the find stops and returns
// the write error instead of scanning the rest of the catalog.
func TestFindStopsOnWriteError(t *testing.T) {
	db := openTestDB(t)
	werr := errors.New("client gone")
	env := &Env{DB: db, Out: &failAfter{n: 1, errv: werr}}
	err := env.Exec("find component")
	if !errors.Is(err, werr) {
		t.Fatalf("find with failing writer: err = %v, want the write error", err)
	}
}
