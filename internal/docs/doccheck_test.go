// Package docs holds repo-wide documentation conformance tests. It has
// no runtime code: the tests are the deliverable.
package docs

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// checkedPackages are the directories whose exported identifiers must
// all carry doc comments (the revive/golint "exported" rule): the
// engine, the store, and the CQL front-end.
var checkedPackages = []string{
	"../icdb",
	"../relstore",
	"../cql",
	"../genus",
}

// TestExportedIdentifiersAreDocumented walks every non-test file of the
// checked packages and fails for each exported top-level identifier
// (function, method, type, const, var) without a doc comment. Grouped
// const/var/type declarations may be covered by one comment on the
// group. Function and type comments must start with the identifier's
// name, godoc style.
func TestExportedIdentifiersAreDocumented(t *testing.T) {
	for _, dir := range checkedPackages {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("read %s: %v", dir, err)
		}
		for _, e := range entries {
			name := e.Name()
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			checkFile(t, filepath.Join(dir, name))
		}
	}
}

func checkFile(t *testing.T, path string) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	pos := func(n ast.Node) string {
		p := fset.Position(n.Pos())
		return fmt.Sprintf("%s:%d", p.Filename, p.Line)
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !receiverExported(d) {
				continue
			}
			if d.Doc == nil {
				t.Errorf("%s: exported %s %s has no doc comment", pos(d), declKind(d), d.Name.Name)
				continue
			}
			requireNamePrefix(t, pos(d), declKind(d), d.Name.Name, d.Doc.Text())
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if !s.Name.IsExported() {
						continue
					}
					doc := s.Doc
					if doc == nil {
						doc = d.Doc
					}
					if doc == nil {
						t.Errorf("%s: exported type %s has no doc comment", pos(s), s.Name.Name)
						continue
					}
					requireNamePrefix(t, pos(s), "type", s.Name.Name, doc.Text())
				case *ast.ValueSpec:
					if d.Doc != nil || s.Doc != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							t.Errorf("%s: exported %s %s has no doc comment (neither on it nor on its group)",
								pos(s), kindWord(d.Tok.String()), n.Name)
						}
					}
				}
			}
		}
	}
}

// receiverExported reports whether a method's receiver type is itself
// exported; methods on unexported types are not part of the API surface.
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

// requireNamePrefix enforces the godoc convention that a function or
// type comment begins with the identifier it documents.
func requireNamePrefix(t *testing.T, pos, kind, name, doc string) {
	t.Helper()
	if !strings.HasPrefix(doc, name+" ") && !strings.HasPrefix(doc, name+"\n") {
		t.Errorf("%s: doc comment for %s %s should start with %q, got %q",
			pos, kind, name, name, firstLine(doc))
	}
}

func declKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

func kindWord(tok string) string {
	switch tok {
	case "const":
		return "constant"
	case "var":
		return "variable"
	}
	return tok
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
