// Package faultfile is an in-memory, fault-injecting implementation of
// the relstore.FS seam — the filesystem counterpart of wire/faultconn.
// It exists so the crash-torture suite can kill the durability layer at
// every single filesystem operation and assert recovery, something the
// real filesystem cannot do deterministically.
//
// The crash model mirrors what a power loss leaves on disk:
//
//   - Every FS and File operation (Create, OpenAppend, Rename, Remove,
//     Write, Sync) is one numbered op. CrashAt(n) lets the first n ops
//     succeed; the op numbered n+1 and everything after it fails with
//     ErrCrashed.
//   - Bytes written but not yet synced are volatile. A crashed Write
//     still lands its bytes in the volatile buffer — whether they
//     survive is decided when the post-crash image is taken.
//   - Image(keep) freezes the durable state: every file keeps its
//     synced prefix, plus none, half, or all of its volatile tail
//     (KeepNone / KeepHalf / KeepAll). Sweeping keep modes is how a
//     test exercises torn, partial, and complete unsynced tails from
//     one crash point.
//   - A completed Rename is durable (the journal and snapshot
//     protocols only rename fully-synced temp files, so this matches
//     the guarantee they actually rely on); a crashed Rename never
//     happened.
//
// A typical torture sweep runs the workload once against a crash-free
// FS to count ops, then re-runs it with CrashAt(k) for every k,
// recovers from Image(keep) for every keep mode, and asserts the
// recovered store is exactly a committed prefix of the workload.
package faultfile

import (
	"errors"
	"fmt"
	"os"
	"sync"

	"icdb/internal/relstore"
)

// ErrCrashed is returned by every operation after the injected crash
// point: the process is "dead" and nothing further takes effect.
var ErrCrashed = errors.New("faultfile: crashed")

// Keep selects how much of each file's unsynced (volatile) tail
// survives into the post-crash image.
type Keep int

// Keep modes.
const (
	// KeepNone drops every unsynced byte: the strictest image, only
	// synced data survives.
	KeepNone Keep = iota
	// KeepHalf keeps the first half of each unsynced tail: the torn
	// mid-record write.
	KeepHalf
	// KeepAll keeps every unsynced byte: the write made it to the
	// platter just before the lights went out.
	KeepAll
)

// node is one file's state: the synced (durable) prefix length and the
// full volatile content.
type node struct {
	buf    []byte
	synced int // buf[:synced] is durable
}

// FS is the fault-injecting filesystem. The zero value is not usable;
// call New. All methods are safe for concurrent use.
type FS struct {
	mu      sync.Mutex
	files   map[string]*node
	ops     int64
	crashAt int64 // ops beyond this index fail; <0 means never
	failAt  int64 // this single op fails with failErr; 0 means never
	failErr error
}

// New returns an empty filesystem with no crash point configured.
func New() *FS {
	return &FS{files: map[string]*node{}, crashAt: -1}
}

// CrashAt arranges for the first n operations to succeed and every
// later one to fail with ErrCrashed. CrashAt(0) crashes immediately.
func (fs *FS) CrashAt(n int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.crashAt = n
}

// FailAt arranges for the single operation numbered n (1-based) to
// fail with err without taking effect; operations after it succeed
// again. It models a transient I/O error rather than a crash.
func (fs *FS) FailAt(n int64, err error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.failAt = n
	fs.failErr = err
}

// Ops reports how many operations have been attempted so far. Run a
// workload crash-free and read Ops to learn the sweep bound.
func (fs *FS) Ops() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.ops
}

// Crashed reports whether the crash point has been reached.
func (fs *FS) Crashed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.crashAt >= 0 && fs.ops >= fs.crashAt
}

// step counts one operation and decides its fate: nil to proceed,
// ErrCrashed past the crash point, or the injected transient error.
// Callers hold fs.mu.
func (fs *FS) step() error {
	fs.ops++
	if fs.crashAt >= 0 && fs.ops > fs.crashAt {
		return ErrCrashed
	}
	if fs.failAt != 0 && fs.ops == fs.failAt {
		return fs.failErr
	}
	return nil
}

// Image freezes the durable state after a crash: each file's synced
// prefix plus the kept portion of its unsynced tail, as a fresh
// crash-free FS ready to recover from. It may be called whether or not
// the crash point was reached (before it, unsynced tails are still
// volatile and keep applies the same way).
func (fs *FS) Image(keep Keep) *FS {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	img := New()
	for path, n := range fs.files {
		end := n.synced
		tail := len(n.buf) - n.synced
		switch keep {
		case KeepHalf:
			end += tail / 2
		case KeepAll:
			end += tail
		}
		data := make([]byte, end)
		copy(data, n.buf[:end])
		img.files[path] = &node{buf: data, synced: end}
	}
	return img
}

// ReadFile implements relstore.FS. Reads are not counted as crash ops:
// recovery reads from the post-crash image, and a dead process does
// not read.
func (fs *FS) ReadFile(path string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("faultfile: %s: %w", path, os.ErrNotExist)
	}
	out := make([]byte, len(n.buf))
	copy(out, n.buf)
	return out, nil
}

// Create implements relstore.FS: truncating create.
func (fs *FS) Create(path string) (relstore.File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.step(); err != nil {
		return nil, err
	}
	n := &node{}
	fs.files[path] = n
	return &file{fs: fs, n: n}, nil
}

// OpenAppend implements relstore.FS.
func (fs *FS) OpenAppend(path string) (relstore.File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.step(); err != nil {
		return nil, err
	}
	n, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("faultfile: %s: %w", path, os.ErrNotExist)
	}
	return &file{fs: fs, n: n}, nil
}

// Rename implements relstore.FS. A completed rename is durable.
func (fs *FS) Rename(oldpath, newpath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.step(); err != nil {
		return err
	}
	n, ok := fs.files[oldpath]
	if !ok {
		return fmt.Errorf("faultfile: rename %s: %w", oldpath, os.ErrNotExist)
	}
	delete(fs.files, oldpath)
	fs.files[newpath] = n
	return nil
}

// Remove implements relstore.FS.
func (fs *FS) Remove(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.step(); err != nil {
		return err
	}
	if _, ok := fs.files[path]; !ok {
		return fmt.Errorf("faultfile: remove %s: %w", path, os.ErrNotExist)
	}
	delete(fs.files, path)
	return nil
}

// file is one open handle. Handles stay usable after a crashed op only
// in the sense that they keep returning ErrCrashed.
type file struct {
	fs *FS
	n  *node
}

// Write appends p. A crashed Write still lands its bytes in the
// volatile buffer — Image's keep mode decides whether they survive —
// but reports the crash, so the caller treats the write as failed.
func (f *file) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	err := f.fs.step()
	f.n.buf = append(f.n.buf, p...)
	if err != nil {
		if errors.Is(err, ErrCrashed) {
			return 0, err
		}
		// Transient failure: the bytes did not land.
		f.n.buf = f.n.buf[:len(f.n.buf)-len(p)]
		return 0, err
	}
	return len(p), nil
}

// Sync marks everything written so far durable.
func (f *file) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.fs.step(); err != nil {
		return err
	}
	f.n.synced = len(f.n.buf)
	return nil
}

// Close implements relstore.File. Closing is free: it is not a
// durability barrier and nothing interesting crashes inside it.
func (f *file) Close() error { return nil }
