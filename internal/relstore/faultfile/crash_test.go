package faultfile

// Crash-torture suite for the write-ahead journal: run a fixed mutation
// workload against a Durable store on this package's fault-injecting
// filesystem, kill it at every single filesystem operation, reopen from
// the post-crash image under every keep mode, and assert the recovered
// store is exactly a committed prefix of the workload — under
// FsyncAlways, exactly the acknowledged mutations (± the one in
// flight). This is the filesystem analogue of wire's faultconn torture
// tests.

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"icdb/internal/relstore"
)

const snapPath = "catalog.snap"

// step is one workload action: either a logical mutation (applied to
// the durable store and the shadow store alike) or a compaction
// (durable store only — it does not change logical state).
type step struct {
	name    string
	mut     func(s *relstore.Store) error
	compact bool
}

func workload() []step {
	sc := relstore.Schema{
		Table: "parts",
		Columns: []relstore.Column{
			{Name: "name", Type: relstore.TString},
			{Name: "qty", Type: relstore.TInt},
			{Name: "price", Type: relstore.TFloat},
			{Name: "active", Type: relstore.TBool},
		},
		Key: []string{"name"},
	}
	ins := func(name string, qty int, price float64, active bool) func(*relstore.Store) error {
		return func(s *relstore.Store) error {
			return s.Insert("parts", relstore.Row{"name": name, "qty": qty, "price": price, "active": active})
		}
	}
	return []step{
		{name: "create-table", mut: func(s *relstore.Store) error { return s.CreateTable(sc) }},
		{name: "insert-alu", mut: ins("alu", 4, 12.5, true)},
		{name: "insert-mux", mut: ins("mux", 9, 1.25, false)},
		{name: "create-index", mut: func(s *relstore.Store) error { return s.CreateIndex("parts", "qty") }},
		{name: "insert-reg", mut: ins("reg", 2, 3.5, true)},
		{name: "upsert-mux", mut: func(s *relstore.Store) error {
			return s.Upsert("parts", relstore.Row{"name": "mux", "qty": 16, "price": 1.0, "active": true})
		}},
		{name: "compact-1", compact: true},
		{name: "update-qty", mut: func(s *relstore.Store) error {
			_, err := s.Update("parts", relstore.Eq("active", true), func(r relstore.Row) relstore.Row {
				r["qty"] = r["qty"].(int) + 100
				return r
			})
			return err
		}},
		{name: "insert-shift", mut: ins("shift", 7, 0.75, false)},
		{name: "delete-reg", mut: func(s *relstore.Store) error {
			_, err := s.Delete("parts", relstore.Eq("name", "reg"))
			return err
		}},
		{name: "rename-alu", mut: func(s *relstore.Store) error {
			// Key change: exercises the two-phase key-index replay.
			_, err := s.Update("parts", relstore.Eq("name", "alu"), func(r relstore.Row) relstore.Row {
				r["name"] = "alu2"
				return r
			})
			return err
		}},
		{name: "compact-2", compact: true},
		{name: "insert-last", mut: ins("rom", 1, 99.0, true)},
	}
}

// runDurable opens a journaled store on fs and applies the workload,
// stopping at the first error. It returns how many steps succeeded —
// mutations acknowledged to the caller (compactions count as steps but
// change no state).
func runDurable(fs *FS, policy relstore.FsyncPolicy) (acked int, err error) {
	d, err := relstore.OpenDurable(snapPath, relstore.DurableOptions{
		FS:        fs,
		Fsync:     policy,
		CompactAt: -1, // explicit Compact steps only: keeps the op sequence deterministic
	})
	if err != nil {
		return 0, err
	}
	defer d.Close()
	for i, st := range workload() {
		if st.compact {
			err = d.Compact()
		} else {
			err = st.mut(d.Store)
		}
		if err != nil {
			return i, err
		}
	}
	return len(workload()), nil
}

// dump renders a store's full logical state as its deterministic
// snapshot encoding, the byte-comparable fingerprint the torture
// assertions use — pinned to v3, which has no section directory, so the
// covered-LSN header field (bytes 12..20) and the CRC trailer can be
// masked out: a journaled store stamps its journal position there,
// which differs from the plain shadow stores without being part of the
// logical state (v4's directory checksum covers the LSN, so v4 bytes
// would differ beyond the maskable range).
func dump(t *testing.T, dir string, s *relstore.Store) []byte {
	t.Helper()
	path := filepath.Join(dir, "dump.snap")
	if err := s.SaveSnapshotVersion(path, 3); err != nil {
		t.Fatalf("dump: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("dump: %v", err)
	}
	if len(data) < 24 {
		t.Fatalf("dump: implausibly short snapshot (%d bytes)", len(data))
	}
	for i := 12; i < 20; i++ {
		data[i] = 0
	}
	return data[:len(data)-4]
}

// shadows returns the expected store fingerprint after every workload
// prefix: shadows[i] is the state once the first i steps have applied.
func shadows(t *testing.T) [][]byte {
	t.Helper()
	dir := t.TempDir()
	s := relstore.New()
	out := [][]byte{dump(t, dir, s)}
	for _, st := range workload() {
		if !st.compact {
			if err := st.mut(s); err != nil {
				t.Fatalf("shadow step %s: %v", st.name, err)
			}
		}
		out = append(out, dump(t, dir, s))
	}
	return out
}

// recover reopens the store from a post-crash image and returns its
// fingerprint. Recovery must always succeed: a crash may cost work,
// never the catalog.
func recoverImage(t *testing.T, dir string, img *FS, crashAt int64, keep Keep) []byte {
	t.Helper()
	d, err := relstore.OpenDurable(snapPath, relstore.DurableOptions{FS: img, CompactAt: -1})
	if err != nil {
		t.Fatalf("crashAt=%d keep=%d: recovery failed: %v", crashAt, keep, err)
	}
	defer d.Close()
	return dump(t, dir, d.Store)
}

// TestCrashTortureFsyncAlways sweeps a crash over every filesystem
// operation of the workload under the always-fsync policy and asserts
// the strong guarantee: the recovered store holds exactly the
// acknowledged steps, or at most additionally the single step that was
// in flight when the crash hit. Never less, never a partial step.
func TestCrashTortureFsyncAlways(t *testing.T) {
	clean := New()
	if n, err := runDurable(clean, relstore.FsyncAlways); err != nil {
		t.Fatalf("clean run failed at step %d: %v", n, err)
	}
	total := clean.Ops()
	if total < 20 {
		t.Fatalf("workload only produced %d fs ops; sweep would be vacuous", total)
	}
	want := shadows(t)
	dir := t.TempDir()

	for crashAt := int64(0); crashAt < total; crashAt++ {
		for _, keep := range []Keep{KeepNone, KeepHalf, KeepAll} {
			fs := New()
			fs.CrashAt(crashAt)
			acked, err := runDurable(fs, relstore.FsyncAlways)
			// err == nil means the crash op landed inside the final Close
			// (whose error the workload discards) — every step was acked.
			if err != nil && !errors.Is(err, ErrCrashed) {
				t.Fatalf("crashAt=%d: unexpected error kind: %v", crashAt, err)
			}
			got := recoverImage(t, dir, fs.Image(keep), crashAt, keep)
			if bytes.Equal(got, want[acked]) {
				continue
			}
			// The in-flight step's record may have fully reached the
			// volatile tail and survived the keep mode; applying one
			// unacknowledged-but-journaled step on recovery is correct.
			if acked+1 < len(want) && bytes.Equal(got, want[acked+1]) {
				continue
			}
			t.Errorf("crashAt=%d keep=%d: recovered state is not the committed prefix (acked %d steps)", crashAt, keep, acked)
		}
	}
}

// TestCrashTortureFsyncOff sweeps the same crash points under the
// no-fsync policy, where the guarantee weakens to prefix-consistency:
// the recovered store is exactly the state after SOME prefix of the
// acknowledged steps — torn tails truncate cleanly, nothing is ever
// half-applied or reordered.
func TestCrashTortureFsyncOff(t *testing.T) {
	clean := New()
	if n, err := runDurable(clean, relstore.FsyncOff); err != nil {
		t.Fatalf("clean run failed at step %d: %v", n, err)
	}
	total := clean.Ops()
	want := shadows(t)
	dir := t.TempDir()

	for crashAt := int64(0); crashAt < total; crashAt++ {
		for _, keep := range []Keep{KeepNone, KeepHalf, KeepAll} {
			fs := New()
			fs.CrashAt(crashAt)
			acked, err := runDurable(fs, relstore.FsyncOff)
			if err != nil && !errors.Is(err, ErrCrashed) {
				t.Fatalf("crashAt=%d: unexpected error kind: %v", crashAt, err)
			}
			got := recoverImage(t, dir, fs.Image(keep), crashAt, keep)
			ok := false
			for j := 0; j <= acked+1 && j < len(want); j++ {
				if bytes.Equal(got, want[j]) {
					ok = true
					break
				}
			}
			if !ok {
				t.Errorf("crashAt=%d keep=%d: recovered state is no committed prefix (acked %d steps)", crashAt, keep, acked)
			}
		}
	}
}

// TestCrashDuringRecovery crashes a second time during the recovery
// rewrite itself (recovery truncates a torn tail via the atomic
// rewrite protocol) and asserts the third open still lands on a
// committed prefix: recovery is itself crash-safe.
func TestCrashDuringRecovery(t *testing.T) {
	// Build an image with a torn tail: crash mid-workload, keep half.
	fs := New()
	fs.CrashAt(25)
	acked, err := runDurable(fs, relstore.FsyncAlways)
	if err == nil {
		t.Fatal("workload did not observe the crash")
	}
	img := fs.Image(KeepHalf)
	want := shadows(t)
	dir := t.TempDir()

	// Count recovery's own fs ops, then crash at each of them.
	before := img.Ops()
	if got := recoverImage(t, dir, img, 25, KeepHalf); !prefixOf(got, want, acked+1) {
		t.Fatal("baseline recovery is not a committed prefix")
	}
	recoveryOps := img.Ops() - before

	for k := int64(0); k < recoveryOps; k++ {
		img2 := fs.Image(KeepHalf)
		img2.CrashAt(k)
		d, err := relstore.OpenDurable(snapPath, relstore.DurableOptions{FS: img2, CompactAt: -1})
		if err == nil {
			d.Close()
		} else if !errors.Is(err, ErrCrashed) {
			t.Fatalf("recovery crashAt=%d: unexpected error kind: %v", k, err)
		}
		got := recoverImage(t, dir, img2.Image(KeepNone), k, KeepNone)
		if !prefixOf(got, want, acked+1) {
			t.Errorf("crash during recovery at op %d: third open is not a committed prefix", k)
		}
	}
}

// TestCrashTortureLazyOpenHydration covers the lazy-open crash window:
// OpenDurable under OpenLazy partitions uncovered journal records onto
// cold stubs in memory only, and hydration's deferred replay never
// writes — so a crash anywhere between the lazy open and the first
// deferred replay (or after a partial hydration) must lose nothing.
// The sweep also crashes inside the lazy open's own filesystem ops and
// asserts both a lazy and an eager reopen still recover the full state.
func TestCrashTortureLazyOpenHydration(t *testing.T) {
	// A clean full run leaves "insert-last" uncovered by the final
	// compaction — the deferred-replay seed.
	fs := New()
	if n, err := runDurable(fs, relstore.FsyncAlways); err != nil {
		t.Fatalf("clean run failed at step %d: %v", n, err)
	}
	want := shadows(t)
	final := want[len(want)-1]
	dir := t.TempDir()

	lazyOpen := func(img *FS) (*relstore.Durable, error) {
		return relstore.OpenDurable(snapPath, relstore.DurableOptions{
			FS: img, CompactAt: -1, Open: relstore.OpenLazy,
		})
	}

	// Crash between lazy open and first deferred replay: abandon the
	// store untouched; the disk image must still recover fully.
	img := fs.Image(KeepAll)
	d, err := lazyOpen(img)
	if err != nil {
		t.Fatal(err)
	}
	if d.Recovery().Deferred == 0 {
		t.Fatal("workload left no deferred records; the sweep would be vacuous")
	}
	// Deliberately no Close: the simulated crash.
	if got := recoverImage(t, dir, img.Image(KeepNone), -1, KeepNone); !bytes.Equal(got, final) {
		t.Error("crash before first deferred replay lost state")
	}
	openOps := img.Ops()

	// Crash after a partial hydration (the first deferred replay ran,
	// in memory): same guarantee.
	img2 := fs.Image(KeepAll)
	d2, err := lazyOpen(img2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d2.Get("parts", "rom"); err != nil {
		t.Fatalf("first touch after lazy open: %v", err)
	}
	if got := recoverImage(t, dir, img2.Image(KeepNone), -1, KeepNone); !bytes.Equal(got, final) {
		t.Error("crash after partial hydration lost state")
	}

	// Crash inside every fs op of the lazy open itself; both reopen
	// modes must then land on the full committed state (the clean image
	// has no torn tail, so the open only reads and opens for append).
	for k := int64(0); k < openOps; k++ {
		img3 := fs.Image(KeepAll)
		img3.CrashAt(k)
		if d3, err := lazyOpen(img3); err == nil {
			d3.Close()
		} else if !errors.Is(err, ErrCrashed) {
			t.Fatalf("lazy open crashAt=%d: unexpected error kind: %v", k, err)
		}
		after := img3.Image(KeepNone)
		if got := recoverImage(t, dir, after, k, KeepNone); !bytes.Equal(got, final) {
			t.Errorf("crashAt=%d: eager reopen after crashed lazy open lost state", k)
		}
		d4, err := lazyOpen(after)
		if err != nil {
			t.Fatalf("crashAt=%d: lazy reopen failed: %v", k, err)
		}
		got := dump(t, dir, d4.Store)
		d4.Close()
		if !bytes.Equal(got, final) {
			t.Errorf("crashAt=%d: lazy reopen after crashed lazy open lost state", k)
		}
	}
}

// prefixOf reports whether got equals want[j] for some j <= max.
func prefixOf(got []byte, want [][]byte, max int) bool {
	for j := 0; j <= max && j < len(want); j++ {
		if bytes.Equal(got, want[j]) {
			return true
		}
	}
	return false
}

// TestJournalFailStopOnWriteError injects a single failing journal
// write (not a crash) and asserts the fail-stop contract: the mutation
// errors, every later mutation errors too (the journal is poisoned),
// and reopening recovers the pre-failure state and accepts writes
// again.
func TestJournalFailStopOnWriteError(t *testing.T) {
	boom := errors.New("disk on fire")
	fs := New()
	d, err := relstore.OpenDurable(snapPath, relstore.DurableOptions{FS: fs, CompactAt: -1})
	if err != nil {
		t.Fatal(err)
	}
	sc := relstore.Schema{
		Table:   "parts",
		Columns: []relstore.Column{{Name: "name", Type: relstore.TString}},
		Key:     []string{"name"},
	}
	if err := d.CreateTable(sc); err != nil {
		t.Fatal(err)
	}
	if err := d.Insert("parts", relstore.Row{"name": "ok"}); err != nil {
		t.Fatal(err)
	}
	fs.FailAt(fs.Ops()+1, boom) // next op is the journal write of the next mutation
	if err := d.Insert("parts", relstore.Row{"name": "lost"}); !errors.Is(err, boom) {
		t.Fatalf("expected injected write failure, got %v", err)
	}
	// Poisoned: the op after the failure would succeed at the fs level,
	// but the journal must refuse to ack anything it cannot order.
	if err := d.Insert("parts", relstore.Row{"name": "also-lost"}); err == nil {
		t.Fatal("journal accepted a mutation after a failed append")
	}
	d.Close()

	d2, err := relstore.OpenDurable(snapPath, relstore.DurableOptions{FS: fs, CompactAt: -1})
	if err != nil {
		t.Fatalf("reopen after poison: %v", err)
	}
	defer d2.Close()
	if _, err := d2.Get("parts", "ok"); err != nil {
		t.Fatalf("pre-failure row lost: %v", err)
	}
	if _, err := d2.Get("parts", "lost"); err == nil {
		t.Fatal("failed mutation came back from the dead")
	}
	if err := d2.Insert("parts", relstore.Row{"name": "back"}); err != nil {
		t.Fatalf("store did not accept writes after reopen: %v", err)
	}
}
