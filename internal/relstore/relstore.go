// Package relstore is an embedded relational store standing in for the
// INGRES database system the paper uses to hold ICDB metadata (component
// definitions, implementations, generators, instances, tool parameters).
//
// ICDB only needs typed tables with exact-match selection, ordered scans,
// insert/update/delete, and persistence; this package provides exactly
// that with no external dependencies. Rows are schemaful: every value must
// match the declared column type.
//
// # Indexes and the query planner
//
// Reads are served through a small planner (plan.go) rather than an
// unconditional table scan. Three access paths exist:
//
//   - the primary-key index, a unique map from the key columns' values to
//     a rowid, maintained for every table whose Schema declares a Key;
//   - secondary indexes, non-unique posting lists from a column tuple to
//     the rowids holding each value combination, declared up front via
//     Schema.Indexes or added later with CreateIndex;
//   - the full scan over the insertion-ordered rowid slice.
//
// Select, SelectOne, Count, Update, Delete, and Scan all consult the
// planner: a predicate whose Eq conjuncts cover the key or an index is
// answered from that index (plus residual verification when the
// predicate has planner-opaque parts), and Get is a direct point lookup
// that never scans. Scan visits rows without copying them, for read-only
// consumers that decode rather than retain.
//
// # Concurrency and snapshot isolation
//
// All methods are safe for concurrent use. Iterating reads (Select,
// SelectOne, Count, Scan, Rows) do not run under the store lock: each
// pins the table's current read state — an immutable copy-on-write
// snapshot (tableData) — under a brief read lock and then plans and
// iterates lock-free. The first write after a snapshot is pinned clones
// the structure and mutates the clone, so:
//
//   - a scan observes exactly the rows that were live when it started,
//     however long it runs and whatever writers do meanwhile;
//   - writers never wait for a slow scan (or a slow network client a
//     scan is streaming to);
//   - a Scan/Rows visitor may call back into the Store, including
//     writes — re-entrancy cannot deadlock, because no lock is held
//     across the callback.
//
// Invariants the index machinery maintains (and tests assert):
//
//   - every live rowid appears exactly once in the table's ordered id
//     slice, which is strictly ascending — rowids are allocated
//     monotonically, so ascending order IS insertion order, and no
//     operation ever re-sorts it;
//   - a row replaced by Upsert or Update keeps its rowid, and therefore
//     its position in scan order;
//   - each secondary-index posting list holds exactly the live rowids
//     whose rows currently carry the indexed values, ascending, with no
//     empty posting lists retained;
//   - index keys are built from canonicalized values (table.canon /
//     canonVal), so a lookup matches no matter which numeric Go type the
//     caller or a JSON round-trip produced.
package relstore

import (
	"encoding/json"
	"fmt"
	"os"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// ColType is the type of a column.
type ColType int

// Column types.
const (
	TString ColType = iota
	TInt
	TFloat
	TBool
)

// String names the column type the way schema error messages spell it
// ("string", "int", "float", "bool").
func (t ColType) String() string {
	switch t {
	case TString:
		return "string"
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TBool:
		return "bool"
	}
	return fmt.Sprintf("ColType(%d)", int(t))
}

// Column declares one column of a table schema.
type Column struct {
	Name string
	Type ColType
}

// Index declares a secondary index over a tuple of columns. Secondary
// indexes are non-unique: many rows may share one value combination.
type Index struct {
	Columns []string
}

// Schema declares a table: its name, columns, primary-key columns, and
// secondary indexes.
type Schema struct {
	Table   string
	Columns []Column
	// Key lists the column names forming the primary key. Empty means the
	// table has no uniqueness constraint (rows get hidden rowids).
	Key []string
	// Indexes declares secondary indexes to maintain from creation on.
	// More can be added to a live table with Store.CreateIndex.
	Indexes []Index `json:",omitempty"`
}

// Row is a single record keyed by column name.
type Row map[string]any

// clone deep-copies a row (values are scalars).
func (r Row) clone() Row {
	c := make(Row, len(r))
	for k, v := range r {
		c[k] = v
	}
	return c
}

// secIndex is one secondary index: posting lists of ascending rowids per
// indexed value combination.
type secIndex struct {
	cols     []string
	postings map[string][]int64
}

// tableData is the read-path state of one table: its rows, the
// insertion-ordered rowid slice, and every index built over them. It
// hangs off table.data as a swappable snapshot: a reader pins the
// current value (marking it shared) under the store's read lock and then
// plans and iterates with no lock held, while the first write after a
// pin clones the whole structure and mutates the clone (copy-on-write).
// A pinned snapshot therefore never changes again — which is what lets
// Scan/Rows visitors call back into the Store, and lets writers make
// progress while a slow scan is mid-flight.
type tableData struct {
	rows map[int64]Row // rowid -> row
	// ids holds the live rowids in ascending (= insertion) order. It is
	// maintained incrementally: append on insert, splice on delete.
	ids []int64
	// keyIndex maps primary-key string to rowid when schema.Key is set.
	keyIndex map[string]int64
	indexes  []*secIndex

	// shared is set (under the store's read lock) when a reader pins this
	// snapshot. Writers check it under the write lock — mutually exclusive
	// with every setter — and clone instead of mutating in place. The flag
	// only ever goes false -> true; a fresh clone starts unshared.
	shared atomic.Bool
}

// clone deep-copies everything writers mutate in place: the ids slice
// (spliced by Delete), the rows map, the key index, and every posting
// list (spliced by insertSorted/removeSorted). The Row values themselves
// are shared: a stored row is never mutated, only replaced (Upsert,
// Update), so old snapshots keep seeing the rows they pinned.
func (d *tableData) clone() *tableData {
	nd := &tableData{
		rows: make(map[int64]Row, len(d.rows)),
		ids:  slices.Clone(d.ids),
	}
	for id, r := range d.rows {
		nd.rows[id] = r
	}
	if d.keyIndex != nil {
		nd.keyIndex = make(map[string]int64, len(d.keyIndex))
		for k, v := range d.keyIndex {
			nd.keyIndex[k] = v
		}
	}
	nd.indexes = make([]*secIndex, len(d.indexes))
	for i, ix := range d.indexes {
		nix := &secIndex{cols: ix.cols, postings: make(map[string][]int64, len(ix.postings))}
		for k, p := range ix.postings {
			nix.postings[k] = slices.Clone(p)
		}
		nd.indexes[i] = nix
	}
	return nd
}

type table struct {
	schema Schema
	cols   map[string]ColType // column name -> declared type
	data   *tableData         // current read snapshot; see tableData
	nextID int64
	// pending, non-nil on a lazily opened table that has not been
	// touched yet, holds the raw snapshot section to decode on first
	// touch (lazy.go). It only ever transitions non-nil -> nil, under
	// the store's write lock, so readers may check it under the read
	// lock before pinning data.
	pending *pendingSection
}

// writable returns the table's data for in-place mutation, first cloning
// it when a reader has pinned the current snapshot. The caller must hold
// the store's write lock.
func (t *table) writable() *tableData {
	if t.data.shared.Load() {
		t.data = t.data.clone()
	}
	return t.data
}

// Store is a set of named tables. All methods are safe for concurrent
// use; see the package comment for the snapshot-isolation semantics of
// the iterating reads.
type Store struct {
	mu     sync.RWMutex
	tables map[string]*table

	// gen counts effective mutations (see Generation). It is bumped
	// under the write lock, after a mutation applies.
	gen atomic.Uint64
	// wal, when non-nil, is the write-ahead journal a Durable store
	// attached (journal.go): every mutator appends its record — under
	// the write lock, after validation, before applying — so the
	// journal is always a prefix-consistent log of the applied state.
	wal *wal

	// lazy is set once at decode time when the store was opened with
	// OpenLazy, immutable afterwards; the hydration counters below it
	// are guarded by mu (see lazy.go).
	lazy             bool
	hydrations       int64
	deferredPending  int64
	deferredReplayed int64
	// replaying, guarded by mu, suppresses journaling while hydration
	// replays deferred records that are already in the journal.
	replaying bool
}

// Generation returns a counter that increments on every effective
// mutation (insert, delete, schema change, or a row actually changing
// value — an Upsert or Update that rewrites a row with identical
// values does not count). Callers use it to skip no-op saves: an
// unchanged Generation since the last durable point means the on-disk
// state is already current.
func (s *Store) Generation() uint64 { return s.gen.Load() }

// rowsEqual reports whether two canonical rows hold identical values.
// Canonical values are comparable scalars (string, int, float64,
// bool), so interface equality is exact.
func rowsEqual(a, b Row) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// New creates an empty store.
func New() *Store {
	return &Store{tables: make(map[string]*table)}
}

// snapshot pins and returns the current read snapshot of tableName. From
// the moment the snapshot is marked shared, writers copy-on-write around
// it, so the caller may plan and iterate over it with no lock held. The
// returned table carries the immutable per-table state (schema, column
// types) the planner needs.
func (s *Store) snapshot(tableName string) (*table, *tableData, error) {
	s.mu.RLock()
	t, ok := s.tables[tableName]
	if ok && t.pending != nil {
		// Cold table: hydrate under the write lock, then re-pin. pending
		// only transitions non-nil -> nil (under the write lock), so the
		// fast path above never sees a stale nil; concurrent first
		// touchers serialize on the write lock inside hydrate, and the
		// losers find the table already live — no double decode.
		s.mu.RUnlock()
		if err := s.hydrate(tableName); err != nil {
			return nil, nil, err
		}
		s.mu.RLock()
		t, ok = s.tables[tableName]
	}
	defer s.mu.RUnlock()
	if !ok {
		return nil, nil, fmt.Errorf("relstore: no table %q", tableName)
	}
	d := t.data
	d.shared.Store(true)
	return t, d, nil
}

// CreateTable registers a new table. It fails if the table exists, the
// schema has no columns, duplicate column names, key columns that are
// not declared, or malformed secondary-index declarations.
func (s *Store) CreateTable(sc Schema) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.createTableLocked(sc)
}

func (s *Store) createTableLocked(sc Schema) error {
	if sc.Table == "" {
		return fmt.Errorf("relstore: empty table name")
	}
	if _, ok := s.tables[sc.Table]; ok {
		return fmt.Errorf("relstore: table %q already exists", sc.Table)
	}
	t, err := newTable(sc)
	if err != nil {
		return err
	}
	if s.wal != nil && len(sc.Key) == 0 {
		return fmt.Errorf("relstore: table %q has no primary key; journaled stores require keyed tables", sc.Table)
	}
	if err := s.logWAL(func(w *snapWriter) {
		w.u8(walOpCreateTable)
		walSchema(w, sc)
	}); err != nil {
		return err
	}
	s.tables[sc.Table] = t
	s.gen.Add(1)
	return nil
}

// newTable validates sc and builds an empty table for it: CreateTable
// minus the store-level concerns (name conflicts, journaling), so the
// snapshot decoders can construct tables standalone — concurrently for
// the parallel eager path, stub-first for the lazy one.
func newTable(sc Schema) (*table, error) {
	if sc.Table == "" {
		return nil, fmt.Errorf("relstore: empty table name")
	}
	if len(sc.Columns) == 0 {
		return nil, fmt.Errorf("relstore: table %q has no columns", sc.Table)
	}
	cols := make(map[string]ColType)
	for _, c := range sc.Columns {
		if _, dup := cols[c.Name]; dup {
			return nil, fmt.Errorf("relstore: table %q duplicate column %q", sc.Table, c.Name)
		}
		cols[c.Name] = c.Type
	}
	for _, k := range sc.Key {
		if _, ok := cols[k]; !ok {
			return nil, fmt.Errorf("relstore: table %q key column %q not declared", sc.Table, k)
		}
	}
	t := &table{
		schema: sc,
		cols:   cols,
		data: &tableData{
			rows:     make(map[int64]Row),
			keyIndex: make(map[string]int64),
		},
	}
	for _, ix := range sc.Indexes {
		if err := t.addIndex(t.data, ix.Columns); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// checkIndex validates one secondary-index declaration against d
// without attaching anything.
func (t *table) checkIndex(d *tableData, cols []string) error {
	if len(cols) == 0 {
		return fmt.Errorf("relstore: table %q: index over no columns", t.schema.Table)
	}
	seen := make(map[string]bool, len(cols))
	for _, c := range cols {
		if _, ok := t.cols[c]; !ok {
			return fmt.Errorf("relstore: table %q index column %q not declared", t.schema.Table, c)
		}
		if seen[c] {
			return fmt.Errorf("relstore: table %q index repeats column %q", t.schema.Table, c)
		}
		seen[c] = true
	}
	for _, ix := range d.indexes {
		if slices.Equal(ix.cols, cols) {
			return fmt.Errorf("relstore: table %q already has an index on %v", t.schema.Table, cols)
		}
	}
	return nil
}

// addIndex validates and attaches one secondary index to d (empty, the
// caller backfills when the table already has rows).
func (t *table) addIndex(d *tableData, cols []string) error {
	if err := t.checkIndex(d, cols); err != nil {
		return err
	}
	d.indexes = append(d.indexes, &secIndex{
		cols:     append([]string(nil), cols...),
		postings: make(map[string][]int64),
	})
	return nil
}

// CreateIndex adds a secondary index over cols to a live table, indexing
// every existing row. The planner uses it for any predicate whose Eq
// conjuncts cover all of cols.
func (s *Store) CreateIndex(tableName string, cols ...string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.createIndexLocked(tableName, cols)
}

func (s *Store) createIndexLocked(tableName string, cols []string) error {
	t, err := s.tableLocked(tableName)
	if err != nil {
		return err
	}
	// Validate before journaling or touching live data: a journaled
	// record must always be appliable.
	if err := t.checkIndex(t.data, cols); err != nil {
		return err
	}
	if err := s.logWAL(func(w *snapWriter) {
		w.u8(walOpCreateIndex)
		w.str(tableName)
		w.u32(uint32(len(cols)))
		for _, c := range cols {
			w.str(c)
		}
	}); err != nil {
		return err
	}
	d := t.writable()
	if err := t.addIndex(d, cols); err != nil {
		return err
	}
	ix := d.indexes[len(d.indexes)-1]
	for _, id := range d.ids {
		k := joinRow(ix.cols, d.rows[id])
		ix.postings[k] = append(ix.postings[k], id)
	}
	// Record the index in the schema so Save/Load round-trips rebuild it.
	t.schema.Indexes = append(t.schema.Indexes, Index{Columns: append([]string(nil), cols...)})
	s.gen.Add(1)
	return nil
}

// DropTable removes a table and all its rows. Scans already in flight
// continue over their pinned snapshot.
func (s *Store) DropTable(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropTableLocked(name)
}

func (s *Store) dropTableLocked(name string) error {
	t, ok := s.tables[name]
	if !ok {
		return fmt.Errorf("relstore: no table %q", name)
	}
	if err := s.logWAL(func(w *snapWriter) {
		w.u8(walOpDropTable)
		w.str(name)
	}); err != nil {
		return err
	}
	// Dropping a cold table never hydrates it: the section is simply
	// discarded, along with any journal records whose replay was
	// deferred to its hydration.
	if t.pending != nil {
		s.deferredPending -= int64(len(t.pending.deferred))
	}
	delete(s.tables, name)
	s.gen.Add(1)
	return nil
}

// Tables returns the table names in sorted order.
func (s *Store) Tables() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SchemaOf returns the schema of table name.
func (s *Store) SchemaOf(name string) (Schema, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[name]
	if !ok {
		return Schema{}, fmt.Errorf("relstore: no table %q", name)
	}
	return t.schema, nil
}

func (t *table) checkRow(r Row) error {
	for _, c := range t.schema.Columns {
		v, present := r[c.Name]
		if !present {
			return fmt.Errorf("relstore: table %q missing column %q", t.schema.Table, c.Name)
		}
		if err := checkType(c.Type, v); err != nil {
			return fmt.Errorf("relstore: table %q column %q: %w", t.schema.Table, c.Name, err)
		}
	}
	for k := range r {
		if _, ok := t.cols[k]; !ok {
			return fmt.Errorf("relstore: table %q has no column %q", t.schema.Table, k)
		}
	}
	return nil
}

func checkType(ct ColType, v any) error {
	switch ct {
	case TString:
		if _, ok := v.(string); !ok {
			return fmt.Errorf("want string, got %T", v)
		}
	case TInt:
		switch v.(type) {
		case int, int64:
		default:
			return fmt.Errorf("want int, got %T", v)
		}
	case TFloat:
		switch v.(type) {
		case float64, float32, int, int64:
		default:
			return fmt.Errorf("want float, got %T", v)
		}
	case TBool:
		if _, ok := v.(bool); !ok {
			return fmt.Errorf("want bool, got %T", v)
		}
	}
	return nil
}

// canon returns a copy of r with values normalized to each column's
// canonical Go type (TInt -> int, TFloat -> float64), so stored rows
// read back with the same types whether or not they crossed a
// Save/Load round-trip.
func (t *table) canon(r Row) Row {
	c := r.clone()
	for _, col := range t.schema.Columns {
		switch col.Type {
		case TInt:
			if v, ok := c[col.Name].(int64); ok {
				c[col.Name] = int(v)
			}
		case TFloat:
			switch v := c[col.Name].(type) {
			case int:
				c[col.Name] = float64(v)
			case int64:
				c[col.Name] = float64(v)
			case float32:
				c[col.Name] = float64(v)
			}
		}
	}
	return c
}

// renderKeyPart renders one canonical column value for use in a joined
// key string. String values have NUL and backslash escaped so the
// part-separator (NUL) cannot occur inside a part — the encoding is
// injective, which the verify-free fast paths (Get, exact-cover plans)
// rely on. Non-string canonical values (int, float64, bool) never render
// either byte.
func renderKeyPart(v any) string {
	if s, ok := v.(string); ok {
		if strings.ContainsAny(s, "\x00\\") {
			s = strings.ReplaceAll(s, `\`, `\\`)
			s = strings.ReplaceAll(s, "\x00", `\0`)
		}
		return s
	}
	return fmt.Sprintf("%v", v)
}

// joinRow builds the index-key string for cols from an already-canonical
// stored row.
func joinRow(cols []string, r Row) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = renderKeyPart(r[c])
	}
	return strings.Join(parts, "\x00")
}

// joinVals builds the index-key string for cols from queried values,
// canonicalizing each so it lines up with stored rows. sat is false when
// a value cannot possibly equal any stored value of its column's type
// (so no key should be probed at all — see canonMatchesCol).
func (t *table) joinVals(cols []string, vals map[string]any) (key string, sat bool) {
	parts := make([]string, len(cols))
	for i, c := range cols {
		cv := canonVal(t.cols[c], vals[c])
		if !canonMatchesCol(t.cols[c], cv) {
			return "", false
		}
		parts[i] = renderKeyPart(cv)
	}
	return strings.Join(parts, "\x00"), true
}

func (t *table) keyOf(r Row) string {
	if len(t.schema.Key) == 0 {
		return ""
	}
	return joinRow(t.schema.Key, r)
}

// insertSorted splices id into ascending slice s (O(1) when id is the
// largest, the insert-path common case).
func insertSorted(s []int64, id int64) []int64 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = id
	return s
}

// removeSorted splices id out of ascending slice s.
func removeSorted(s []int64, id int64) []int64 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	if i < len(s) && s[i] == id {
		return append(s[:i], s[i+1:]...)
	}
	return s
}

// indexAdd registers (id, r) in every secondary index.
func (d *tableData) indexAdd(id int64, r Row) {
	for _, ix := range d.indexes {
		k := joinRow(ix.cols, r)
		ix.postings[k] = insertSorted(ix.postings[k], id)
	}
}

// indexRemove drops (id, r) from every secondary index, releasing empty
// posting lists.
func (d *tableData) indexRemove(id int64, r Row) {
	for _, ix := range d.indexes {
		k := joinRow(ix.cols, r)
		if p := removeSorted(ix.postings[k], id); len(p) > 0 {
			ix.postings[k] = p
		} else {
			delete(ix.postings, k)
		}
	}
}

// Insert adds a row. It fails on schema violations or primary-key
// conflicts.
func (s *Store) Insert(tableName string, r Row) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.insertLocked(tableName, r)
}

func (s *Store) insertLocked(tableName string, r Row) error {
	t, err := s.tableLocked(tableName)
	if err != nil {
		return err
	}
	if err := t.checkRow(r); err != nil {
		return err
	}
	// Canonicalize before keying so the key index always reflects the
	// stored representation (float32 key values would otherwise index
	// under a different string than the stored float64 reproduces).
	cr := t.canon(r)
	var k string
	if len(t.schema.Key) > 0 {
		k = t.keyOf(cr)
		if _, conflict := t.data.keyIndex[k]; conflict {
			return fmt.Errorf("relstore: table %q duplicate key %v=%q", tableName, t.schema.Key, keyValues(k))
		}
	}
	if err := s.logWAL(func(w *snapWriter) {
		w.u8(walOpInsert)
		w.str(tableName)
		walRow(w, t, cr)
	}); err != nil {
		return err
	}
	d := t.writable()
	if len(t.schema.Key) > 0 {
		d.keyIndex[k] = t.nextID
	}
	d.rows[t.nextID] = cr
	d.ids = append(d.ids, t.nextID)
	d.indexAdd(t.nextID, cr)
	t.nextID++
	s.gen.Add(1)
	return nil
}

// Upsert inserts r, replacing any existing row with the same primary key.
// A replaced row keeps its rowid, and so its position in scan order. The
// table must declare a key.
func (s *Store) Upsert(tableName string, r Row) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.upsertLocked(tableName, r)
}

func (s *Store) upsertLocked(tableName string, r Row) error {
	t, err := s.tableLocked(tableName)
	if err != nil {
		return err
	}
	if len(t.schema.Key) == 0 {
		return fmt.Errorf("relstore: table %q has no key; cannot upsert", tableName)
	}
	if err := t.checkRow(r); err != nil {
		return err
	}
	cr := t.canon(r)
	k := t.keyOf(cr)
	// A value-identical replacement is a no-op: nothing to journal, no
	// generation bump — so re-seeding an unchanged catalog on open
	// stays journal-silent and save-skippable.
	if id, exists := t.data.keyIndex[k]; exists && rowsEqual(t.data.rows[id], cr) {
		return nil
	}
	if err := s.logWAL(func(w *snapWriter) {
		w.u8(walOpUpsert)
		w.str(tableName)
		walRow(w, t, cr)
	}); err != nil {
		return err
	}
	d := t.writable()
	if id, exists := d.keyIndex[k]; exists {
		d.indexRemove(id, d.rows[id])
		d.rows[id] = cr
		d.indexAdd(id, cr)
		s.gen.Add(1)
		return nil
	}
	d.keyIndex[k] = t.nextID
	d.rows[t.nextID] = cr
	d.ids = append(d.ids, t.nextID)
	d.indexAdd(t.nextID, cr)
	t.nextID++
	s.gen.Add(1)
	return nil
}

// Select returns copies of all rows of tableName matching p (nil p matches
// everything), in insertion order. Point and indexed predicates (see the
// package comment) are served from the corresponding index. Like Scan it
// reads a pinned snapshot, not the locked store.
func (s *Store) Select(tableName string, p Pred) ([]Row, error) {
	t, d, err := s.snapshot(tableName)
	if err != nil {
		return nil, err
	}
	ids, verify := t.plan(d, p)
	var out []Row
	for _, id := range ids {
		r := d.rows[id]
		if !verify || p.Match(r) {
			out = append(out, r.clone())
		}
	}
	return out, nil
}

// SelectOne returns the single row matching p. It fails if zero or more
// than one row matches.
func (s *Store) SelectOne(tableName string, p Pred) (Row, error) {
	t, d, err := s.snapshot(tableName)
	if err != nil {
		return nil, err
	}
	ids, verify := t.plan(d, p)
	var match Row
	n := 0
	for _, id := range ids {
		r := d.rows[id]
		if !verify || p.Match(r) {
			if n == 0 {
				match = r
			}
			n++
		}
	}
	switch n {
	case 0:
		return nil, fmt.Errorf("relstore: table %q: no matching row", tableName)
	case 1:
		return match.clone(), nil
	default:
		return nil, fmt.Errorf("relstore: table %q: %d rows match, want 1", tableName, n)
	}
}

// Get is the point-lookup fast path: it returns a copy of the single row
// of a keyed table whose primary-key columns equal keyVals (in Schema.Key
// order), without scanning. Numeric key values are matched canonically,
// like Eq. Get reads the live store under the read lock (no snapshot is
// pinned — a point lookup runs no user code and finishes immediately).
func (s *Store) Get(tableName string, keyVals ...any) (Row, error) {
	s.mu.RLock()
	t, ok := s.tables[tableName]
	if ok && t.pending != nil {
		// Cold table: hydrate and retry, same dance as snapshot().
		s.mu.RUnlock()
		if err := s.hydrate(tableName); err != nil {
			return nil, err
		}
		s.mu.RLock()
		t, ok = s.tables[tableName]
	}
	defer s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("relstore: no table %q", tableName)
	}
	if len(t.schema.Key) == 0 {
		return nil, fmt.Errorf("relstore: table %q has no key; cannot Get", tableName)
	}
	if len(keyVals) != len(t.schema.Key) {
		return nil, fmt.Errorf("relstore: table %q: Get got %d key value(s), want %v", tableName, len(keyVals), t.schema.Key)
	}
	parts := make([]string, len(keyVals))
	for i, kc := range t.schema.Key {
		cv := canonVal(t.cols[kc], keyVals[i])
		if !canonMatchesCol(t.cols[kc], cv) {
			return nil, fmt.Errorf("relstore: table %q: no matching row", tableName)
		}
		parts[i] = renderKeyPart(cv)
	}
	d := t.data
	id, ok := d.keyIndex[strings.Join(parts, "\x00")]
	if !ok {
		return nil, fmt.Errorf("relstore: table %q: no matching row", tableName)
	}
	return d.rows[id].clone(), nil
}

// Scan visits the rows of tableName matching p in insertion order,
// stopping early when visit returns false. It is the zero-copy read path:
// visit receives the store's internal row, so it must treat the row as
// read-only and must not retain it (or any contained reference) after
// returning — copy what outlives the visit.
//
// The scan iterates a pinned copy-on-write snapshot, with no store lock
// held across visits: visit may call back into the Store (reads and even
// writes — re-entrancy cannot deadlock), writers make progress while a
// scan is mid-flight, and the scan is isolated from them — it sees
// exactly the rows that were live when it started.
func (s *Store) Scan(tableName string, p Pred, visit func(Row) bool) error {
	t, d, err := s.snapshot(tableName)
	if err != nil {
		return err
	}
	ids, verify := t.plan(d, p)
	for _, id := range ids {
		r := d.rows[id]
		if !verify || p.Match(r) {
			if !visit(r) {
				return nil
			}
		}
	}
	return nil
}

// Update applies fn to every row matching p (in insertion order) and
// returns the number of rows changed. fn receives a copy and returns the
// replacement row. Update is atomic: a schema violation or key conflict
// leaves the table unmodified. Updated rows keep their rowids (and scan
// positions); all indexes are maintained.
func (s *Store) Update(tableName string, p Pred, fn func(Row) Row) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.updateLocked(tableName, p, fn)
}

func (s *Store) updateLocked(tableName string, p Pred, fn func(Row) Row) (int, error) {
	t, err := s.tableLocked(tableName)
	if err != nil {
		return 0, err
	}
	d := t.data
	ids, verify := t.plan(d, p)
	// Validate every change against a scratch key index before applying
	// (or journaling) anything, so a mid-scan conflict cannot leave
	// partial updates or an unappliable journal record.
	type change struct {
		id int64
		nr Row
	}
	var changes, eff []change
	for _, id := range ids {
		r := d.rows[id]
		if verify && !p.Match(r) {
			continue
		}
		nr := fn(r.clone())
		if err := t.checkRow(nr); err != nil {
			return 0, err
		}
		c := change{id: id, nr: t.canon(nr)}
		changes = append(changes, c)
		// Value-identical rewrites are no-ops: not journaled, not
		// applied, no generation bump — but still counted in the
		// return value, which reports rows matched and processed.
		if !rowsEqual(r, c.nr) {
			eff = append(eff, c)
		}
	}
	// Rebuild the key index in two phases — drop every changed row's old
	// key, then claim the new ones — so key permutations (a<->b swaps)
	// are legal and any genuine conflict is detected before mutation.
	// Only effective changes can move keys (a no-op keeps its row, and
	// so its key, verbatim).
	newKeys := d.keyIndex
	if len(t.schema.Key) > 0 && len(eff) > 0 {
		newKeys = make(map[string]int64, len(d.keyIndex))
		for k, v := range d.keyIndex {
			newKeys[k] = v
		}
		for _, c := range eff {
			delete(newKeys, t.keyOf(d.rows[c.id]))
		}
		for _, c := range eff {
			k := t.keyOf(c.nr)
			if _, conflict := newKeys[k]; conflict {
				return 0, fmt.Errorf("relstore: table %q update creates duplicate key %v", tableName, keyValues(k))
			}
			newKeys[k] = c.id
		}
	}
	if len(eff) == 0 {
		return len(changes), nil
	}
	// One record for the whole batch: the update is atomic in memory,
	// so it must be atomic in the journal (recovery never applies a
	// partial transaction). Old keys address the rows; the new rows are
	// absolute values, which is what makes replay idempotent.
	if err := s.logWAL(func(w *snapWriter) {
		w.u8(walOpUpdate)
		w.str(tableName)
		w.u32(uint32(len(eff)))
		for _, c := range eff {
			walKey(w, t, d.rows[c.id])
			walRow(w, t, c.nr)
		}
	}); err != nil {
		return 0, err
	}
	wd := t.writable()
	for _, c := range eff {
		wd.indexRemove(c.id, wd.rows[c.id])
		wd.rows[c.id] = c.nr
		wd.indexAdd(c.id, c.nr)
	}
	if len(t.schema.Key) > 0 {
		wd.keyIndex = newKeys
	}
	s.gen.Add(1)
	return len(changes), nil
}

// keyValues renders a key-index string for error messages.
func keyValues(k string) string {
	return strings.ReplaceAll(k, "\x00", ",")
}

// Delete removes all rows matching p and returns the count removed. Like
// the other readers it narrows candidates through the planner, so a
// Delete by key or indexed columns touches only the matching rows.
func (s *Store) Delete(tableName string, p Pred) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deleteLocked(tableName, p)
}

func (s *Store) deleteLocked(tableName string, p Pred) (int, error) {
	t, err := s.tableLocked(tableName)
	if err != nil {
		return 0, err
	}
	d := t.data
	ids, verify := t.plan(d, p)
	// The plan may alias internal index state; copy before iterating
	// while mutating.
	candidates := append([]int64(nil), ids...)
	var victims []int64
	for _, id := range candidates {
		if verify && !p.Match(d.rows[id]) {
			continue
		}
		victims = append(victims, id)
	}
	if len(victims) == 0 {
		return 0, nil
	}
	// One record for the whole batch, addressed by primary key (rowids
	// are not stable across a snapshot reload).
	if err := s.logWAL(func(w *snapWriter) {
		w.u8(walOpDelete)
		w.str(tableName)
		w.u32(uint32(len(victims)))
		for _, id := range victims {
			walKey(w, t, d.rows[id])
		}
	}); err != nil {
		return 0, err
	}
	wd := t.writable()
	removed := make(map[int64]bool, len(victims))
	for _, id := range victims {
		r := wd.rows[id]
		delete(wd.keyIndex, t.keyOf(r))
		wd.indexRemove(id, r)
		delete(wd.rows, id)
		removed[id] = true
	}
	live := wd.ids[:0]
	for _, id := range wd.ids {
		if !removed[id] {
			live = append(live, id)
		}
	}
	wd.ids = live
	s.gen.Add(1)
	return len(removed), nil
}

// Count returns the number of rows matching p. It plans and verifies like
// Select but never copies a row.
func (s *Store) Count(tableName string, p Pred) (int, error) {
	t, d, err := s.snapshot(tableName)
	if err != nil {
		return 0, err
	}
	ids, verify := t.plan(d, p)
	if !verify {
		return len(ids), nil
	}
	n := 0
	for _, id := range ids {
		if p.Match(d.rows[id]) {
			n++
		}
	}
	return n, nil
}

// persistedTable is the JSON wire form of one table.
type persistedTable struct {
	Schema Schema `json:"schema"`
	Rows   []Row  `json:"rows"`
}

// Save writes the whole store as JSON to path, atomically (temp file in
// the target directory, fsync, rename — a crash mid-save cannot truncate
// an existing catalog). Rows are written in insertion order; secondary-
// index declarations persist with the schema and are rebuilt on Load.
// JSON is the compatibility format: SaveSnapshot (snapshot.go) is the
// fast binary path, and Load reads either. Like SaveSnapshot, the read
// lock is held through the rename so concurrent saves cannot replace a
// newer on-disk state with a staler one.
func (s *Store) Save(path string) error {
	// A save must reflect every row, so a lazily opened store hydrates
	// everything still pending (and replays its deferred journal
	// records) first.
	if err := s.HydrateAll(); err != nil {
		return err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]persistedTable, len(s.tables))
	for name, t := range s.tables {
		d := t.data
		pt := persistedTable{Schema: t.schema}
		for _, id := range d.ids {
			pt.Rows = append(pt.Rows, d.rows[id])
		}
		out[name] = pt
	}
	data, err := json.MarshalIndent(out, "", " ")
	if err != nil {
		return fmt.Errorf("relstore: save: %w", err)
	}
	return writeFileAtomic(path, data)
}

// Load reads a store previously written by Save or SaveSnapshot,
// sniffing the format: files opening with the snapshot magic take the
// trusted binary fast path (LoadSnapshot), anything else is parsed as
// JSON. On the JSON path every column is normalized and type-checked
// once per column before any row is stored, and errors carry their full
// context (table, row index, column name).
func Load(path string) (*Store, error) {
	return LoadWith(path, SnapshotOptions{})
}

// LoadWith is Load with snapshot open options: opt selects the open
// mode (and eager worker count) when the file is a binary snapshot, and
// is ignored for JSON catalogs, which are always fully materialized.
func LoadWith(path string, opt SnapshotOptions) (*Store, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("relstore: load: %w", err)
	}
	if IsSnapshot(data) {
		s, _, err := decodeSnapshotOpt(data, opt)
		if err != nil {
			return nil, fmt.Errorf("relstore: load snapshot %s: %w", path, err)
		}
		return s, nil
	}
	return loadJSON(path, data)
}

func loadJSON(path string, data []byte) (*Store, error) {
	var in map[string]persistedTable
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("relstore: load %s: %w", path, err)
	}
	s := New()
	names := make([]string, 0, len(in))
	for n := range in {
		names = append(names, n)
	}
	sort.Strings(names)
	ctx := func(format string, args ...any) error {
		return fmt.Errorf("relstore: load %s: %s", path, fmt.Sprintf(format, args...))
	}
	for _, n := range names {
		pt := in[n]
		if pt.Schema.Table != n {
			return nil, ctx("table %q: schema declares name %q", n, pt.Schema.Table)
		}
		if err := s.CreateTable(pt.Schema); err != nil {
			return nil, err
		}
		t := s.tables[n]
		// Normalize and type-check column-wise: the type dispatch runs
		// once per column, not once per value, and a bad value is
		// reported with its exact position. canonVal maps JSON's float64
		// onto canonical TInt ints only when integral — a fractional
		// value in an int column is an error here, not a silent
		// truncation.
		for _, c := range pt.Schema.Columns {
			for ri, r := range pt.Rows {
				v, ok := r[c.Name]
				if !ok {
					return nil, ctx("table %q row %d: missing column %q", n, ri, c.Name)
				}
				cv := canonVal(c.Type, v)
				if err := checkType(c.Type, cv); err != nil {
					return nil, ctx("table %q row %d column %q: %v", n, ri, c.Name, err)
				}
				r[c.Name] = cv
			}
		}
		for ri, r := range pt.Rows {
			if len(r) != len(pt.Schema.Columns) {
				for k := range r {
					if _, ok := t.cols[k]; !ok {
						return nil, ctx("table %q row %d: undeclared column %q", n, ri, k)
					}
				}
			}
			// Rows are fully validated and canonical; append directly,
			// skipping Insert's re-check and defensive clone.
			if err := t.appendCanonical(r); err != nil {
				return nil, ctx("table %q row %d: %v", n, ri, err)
			}
		}
	}
	return s, nil
}

// appendCanonical adds an already-validated, already-canonical row during
// bulk load, maintaining every index incrementally. It is Insert minus
// checkRow and canon. Bulk loads run on a store no reader has seen, so
// the data is never shared and writable never clones here.
func (t *table) appendCanonical(r Row) error {
	d := t.writable()
	if len(t.schema.Key) > 0 {
		k := t.keyOf(r)
		if _, conflict := d.keyIndex[k]; conflict {
			return fmt.Errorf("duplicate key %v=%q", t.schema.Key, keyValues(k))
		}
		d.keyIndex[k] = t.nextID
	}
	d.rows[t.nextID] = r
	d.ids = append(d.ids, t.nextID)
	d.indexAdd(t.nextID, r)
	t.nextID++
	return nil
}
