// Package relstore is an embedded relational store standing in for the
// INGRES database system the paper uses to hold ICDB metadata (component
// definitions, implementations, generators, instances, tool parameters).
//
// ICDB only needs typed tables with exact-match selection, ordered scans,
// insert/update/delete, and persistence; this package provides exactly
// that with no external dependencies. Rows are schemaful: every value must
// match the declared column type.
package relstore

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
)

// ColType is the type of a column.
type ColType int

// Column types.
const (
	TString ColType = iota
	TInt
	TFloat
	TBool
)

func (t ColType) String() string {
	switch t {
	case TString:
		return "string"
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TBool:
		return "bool"
	}
	return fmt.Sprintf("ColType(%d)", int(t))
}

// Column declares one column of a table schema.
type Column struct {
	Name string
	Type ColType
}

// Schema declares a table: its name, columns, and primary-key columns.
type Schema struct {
	Table   string
	Columns []Column
	// Key lists the column names forming the primary key. Empty means the
	// table has no uniqueness constraint (rows get hidden rowids).
	Key []string
}

// Row is a single record keyed by column name.
type Row map[string]any

// clone deep-copies a row (values are scalars).
func (r Row) clone() Row {
	c := make(Row, len(r))
	for k, v := range r {
		c[k] = v
	}
	return c
}

// Pred is a selection predicate.
type Pred func(Row) bool

// Eq returns a predicate matching rows whose column col equals v.
func Eq(col string, v any) Pred {
	return func(r Row) bool { return valueEqual(r[col], v) }
}

// And combines predicates conjunctively.
func And(ps ...Pred) Pred {
	return func(r Row) bool {
		for _, p := range ps {
			if !p(r) {
				return false
			}
		}
		return true
	}
}

func valueEqual(a, b any) bool {
	// Normalize numeric types so Eq("size", 5) matches a stored int64
	// after JSON round-trips.
	af, aok := toFloat(a)
	bf, bok := toFloat(b)
	if aok && bok {
		return af == bf
	}
	return a == b
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	case float64:
		return x, true
	case float32:
		return float64(x), true
	}
	return 0, false
}

type table struct {
	schema Schema
	rows   map[int64]Row // rowid -> row
	nextID int64
	// keyIndex maps primary-key string to rowid when schema.Key is set.
	keyIndex map[string]int64
}

// Store is a set of named tables. All methods are safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	tables map[string]*table
}

// New creates an empty store.
func New() *Store {
	return &Store{tables: make(map[string]*table)}
}

// CreateTable registers a new table. It fails if the table exists, the
// schema has no columns, duplicate column names, or key columns that are
// not declared.
func (s *Store) CreateTable(sc Schema) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sc.Table == "" {
		return fmt.Errorf("relstore: empty table name")
	}
	if _, ok := s.tables[sc.Table]; ok {
		return fmt.Errorf("relstore: table %q already exists", sc.Table)
	}
	if len(sc.Columns) == 0 {
		return fmt.Errorf("relstore: table %q has no columns", sc.Table)
	}
	cols := make(map[string]ColType)
	for _, c := range sc.Columns {
		if _, dup := cols[c.Name]; dup {
			return fmt.Errorf("relstore: table %q duplicate column %q", sc.Table, c.Name)
		}
		cols[c.Name] = c.Type
	}
	for _, k := range sc.Key {
		if _, ok := cols[k]; !ok {
			return fmt.Errorf("relstore: table %q key column %q not declared", sc.Table, k)
		}
	}
	s.tables[sc.Table] = &table{
		schema:   sc,
		rows:     make(map[int64]Row),
		keyIndex: make(map[string]int64),
	}
	return nil
}

// DropTable removes a table and all its rows.
func (s *Store) DropTable(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[name]; !ok {
		return fmt.Errorf("relstore: no table %q", name)
	}
	delete(s.tables, name)
	return nil
}

// Tables returns the table names in sorted order.
func (s *Store) Tables() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SchemaOf returns the schema of table name.
func (s *Store) SchemaOf(name string) (Schema, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[name]
	if !ok {
		return Schema{}, fmt.Errorf("relstore: no table %q", name)
	}
	return t.schema, nil
}

func (t *table) checkRow(r Row) error {
	for _, c := range t.schema.Columns {
		v, present := r[c.Name]
		if !present {
			return fmt.Errorf("relstore: table %q missing column %q", t.schema.Table, c.Name)
		}
		if err := checkType(c.Type, v); err != nil {
			return fmt.Errorf("relstore: table %q column %q: %w", t.schema.Table, c.Name, err)
		}
	}
	for k := range r {
		found := false
		for _, c := range t.schema.Columns {
			if c.Name == k {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("relstore: table %q has no column %q", t.schema.Table, k)
		}
	}
	return nil
}

func checkType(ct ColType, v any) error {
	switch ct {
	case TString:
		if _, ok := v.(string); !ok {
			return fmt.Errorf("want string, got %T", v)
		}
	case TInt:
		switch v.(type) {
		case int, int64:
		default:
			return fmt.Errorf("want int, got %T", v)
		}
	case TFloat:
		switch v.(type) {
		case float64, float32, int, int64:
		default:
			return fmt.Errorf("want float, got %T", v)
		}
	case TBool:
		if _, ok := v.(bool); !ok {
			return fmt.Errorf("want bool, got %T", v)
		}
	}
	return nil
}

// canon returns a copy of r with values normalized to each column's
// canonical Go type (TInt -> int, TFloat -> float64), so stored rows
// read back with the same types whether or not they crossed a
// Save/Load round-trip.
func (t *table) canon(r Row) Row {
	c := r.clone()
	for _, col := range t.schema.Columns {
		switch col.Type {
		case TInt:
			if v, ok := c[col.Name].(int64); ok {
				c[col.Name] = int(v)
			}
		case TFloat:
			switch v := c[col.Name].(type) {
			case int:
				c[col.Name] = float64(v)
			case int64:
				c[col.Name] = float64(v)
			case float32:
				c[col.Name] = float64(v)
			}
		}
	}
	return c
}

func (t *table) keyOf(r Row) string {
	if len(t.schema.Key) == 0 {
		return ""
	}
	parts := make([]string, len(t.schema.Key))
	for i, k := range t.schema.Key {
		parts[i] = fmt.Sprintf("%v", r[k])
	}
	return strings.Join(parts, "\x00")
}

// Insert adds a row. It fails on schema violations or primary-key
// conflicts.
func (s *Store) Insert(tableName string, r Row) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[tableName]
	if !ok {
		return fmt.Errorf("relstore: no table %q", tableName)
	}
	if err := t.checkRow(r); err != nil {
		return err
	}
	// Canonicalize before keying so the key index always reflects the
	// stored representation (float32 key values would otherwise index
	// under a different string than the stored float64 reproduces).
	cr := t.canon(r)
	if len(t.schema.Key) > 0 {
		k := t.keyOf(cr)
		if _, conflict := t.keyIndex[k]; conflict {
			return fmt.Errorf("relstore: table %q duplicate key %v=%q", tableName, t.schema.Key, keyValues(k))
		}
		t.keyIndex[k] = t.nextID
	}
	t.rows[t.nextID] = cr
	t.nextID++
	return nil
}

// Upsert inserts r, replacing any existing row with the same primary key.
// The table must declare a key.
func (s *Store) Upsert(tableName string, r Row) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[tableName]
	if !ok {
		return fmt.Errorf("relstore: no table %q", tableName)
	}
	if len(t.schema.Key) == 0 {
		return fmt.Errorf("relstore: table %q has no key; cannot upsert", tableName)
	}
	if err := t.checkRow(r); err != nil {
		return err
	}
	cr := t.canon(r)
	k := t.keyOf(cr)
	if id, exists := t.keyIndex[k]; exists {
		t.rows[id] = cr
		return nil
	}
	t.keyIndex[k] = t.nextID
	t.rows[t.nextID] = cr
	t.nextID++
	return nil
}

// Select returns copies of all rows of tableName matching p (nil p matches
// everything), in insertion order.
func (s *Store) Select(tableName string, p Pred) ([]Row, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[tableName]
	if !ok {
		return nil, fmt.Errorf("relstore: no table %q", tableName)
	}
	ids := make([]int64, 0, len(t.rows))
	for id := range t.rows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var out []Row
	for _, id := range ids {
		r := t.rows[id]
		if p == nil || p(r) {
			out = append(out, r.clone())
		}
	}
	return out, nil
}

// SelectOne returns the single row matching p. It fails if zero or more
// than one row matches.
func (s *Store) SelectOne(tableName string, p Pred) (Row, error) {
	rows, err := s.Select(tableName, p)
	if err != nil {
		return nil, err
	}
	switch len(rows) {
	case 0:
		return nil, fmt.Errorf("relstore: table %q: no matching row", tableName)
	case 1:
		return rows[0], nil
	default:
		return nil, fmt.Errorf("relstore: table %q: %d rows match, want 1", tableName, len(rows))
	}
}

// Update applies fn to every row matching p (in insertion order) and
// returns the number of rows changed. fn receives a copy and returns the
// replacement row. Update is atomic: a schema violation or key conflict
// leaves the table unmodified.
func (s *Store) Update(tableName string, p Pred, fn func(Row) Row) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[tableName]
	if !ok {
		return 0, fmt.Errorf("relstore: no table %q", tableName)
	}
	ids := make([]int64, 0, len(t.rows))
	for id := range t.rows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	// Validate every change against a scratch key index before applying
	// anything, so a mid-scan conflict cannot leave partial updates.
	type change struct {
		id int64
		nr Row
	}
	var changes []change
	for _, id := range ids {
		r := t.rows[id]
		if p != nil && !p(r) {
			continue
		}
		nr := fn(r.clone())
		if err := t.checkRow(nr); err != nil {
			return 0, err
		}
		changes = append(changes, change{id: id, nr: t.canon(nr)})
	}
	// Rebuild the key index in two phases — drop every changed row's old
	// key, then claim the new ones — so key permutations (a<->b swaps)
	// are legal and any genuine conflict is detected before mutation.
	newKeys := t.keyIndex
	if len(t.schema.Key) > 0 {
		newKeys = make(map[string]int64, len(t.keyIndex))
		for k, v := range t.keyIndex {
			newKeys[k] = v
		}
		for _, c := range changes {
			delete(newKeys, t.keyOf(t.rows[c.id]))
		}
		for _, c := range changes {
			k := t.keyOf(c.nr)
			if _, conflict := newKeys[k]; conflict {
				return 0, fmt.Errorf("relstore: table %q update creates duplicate key %v", tableName, keyValues(k))
			}
			newKeys[k] = c.id
		}
	}
	for _, c := range changes {
		t.rows[c.id] = c.nr
	}
	t.keyIndex = newKeys
	return len(changes), nil
}

// keyValues renders a key-index string for error messages.
func keyValues(k string) string {
	return strings.ReplaceAll(k, "\x00", ",")
}

// Delete removes all rows matching p and returns the count removed.
func (s *Store) Delete(tableName string, p Pred) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[tableName]
	if !ok {
		return 0, fmt.Errorf("relstore: no table %q", tableName)
	}
	n := 0
	for id, r := range t.rows {
		if p == nil || p(r) {
			delete(t.keyIndex, t.keyOf(r))
			delete(t.rows, id)
			n++
		}
	}
	return n, nil
}

// Count returns the number of rows matching p.
func (s *Store) Count(tableName string, p Pred) (int, error) {
	rows, err := s.Select(tableName, p)
	if err != nil {
		return 0, err
	}
	return len(rows), nil
}

// persistedTable is the JSON wire form of one table.
type persistedTable struct {
	Schema Schema `json:"schema"`
	Rows   []Row  `json:"rows"`
}

// Save writes the whole store as JSON to path.
func (s *Store) Save(path string) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]persistedTable, len(s.tables))
	for name, t := range s.tables {
		ids := make([]int64, 0, len(t.rows))
		for id := range t.rows {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		pt := persistedTable{Schema: t.schema}
		for _, id := range ids {
			pt.Rows = append(pt.Rows, t.rows[id])
		}
		out[name] = pt
	}
	data, err := json.MarshalIndent(out, "", " ")
	if err != nil {
		return fmt.Errorf("relstore: save: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// Load reads a store previously written by Save. JSON numbers arrive as
// float64; integer columns are normalized back to int.
func Load(path string) (*Store, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("relstore: load: %w", err)
	}
	var in map[string]persistedTable
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("relstore: load %s: %w", path, err)
	}
	s := New()
	names := make([]string, 0, len(in))
	for n := range in {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pt := in[n]
		if err := s.CreateTable(pt.Schema); err != nil {
			return nil, err
		}
		for _, r := range pt.Rows {
			for _, c := range pt.Schema.Columns {
				if c.Type == TInt {
					if f, ok := r[c.Name].(float64); ok {
						r[c.Name] = int(f)
					}
				}
			}
			if err := s.Insert(n, r); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}
