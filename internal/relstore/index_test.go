package relstore

import (
	"fmt"
	"math"
	"path/filepath"
	"sync"
	"testing"
)

// indexedStore declares the implementations table with a secondary index
// on (component) and one on (component, size).
func indexedStore(t *testing.T) *Store {
	t.Helper()
	sc := implSchema()
	sc.Indexes = []Index{{Columns: []string{"component"}}}
	s := New()
	if err := s.CreateTable(sc); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateIndex("implementations", "component", "size"); err != nil {
		t.Fatal(err)
	}
	return s
}

func implRowN(i int, component string) Row {
	return Row{
		"name":          fmt.Sprintf("impl%03d", i),
		"component":     component,
		"size":          i % 4,
		"area":          float64(i),
		"parameterized": i%2 == 0,
	}
}

// checkIndexConsistency verifies every secondary-index invariant against
// a ground-truth full scan of the table.
func checkIndexConsistency(t *testing.T, s *Store, tableName string) {
	t.Helper()
	s.mu.RLock()
	defer s.mu.RUnlock()
	d := s.tables[tableName].data
	if len(d.ids) != len(d.rows) {
		t.Fatalf("ids slice has %d entries, rows map %d", len(d.ids), len(d.rows))
	}
	for i, id := range d.ids {
		if i > 0 && d.ids[i-1] >= id {
			t.Fatalf("ids not strictly ascending at %d: %v", i, d.ids)
		}
		if _, ok := d.rows[id]; !ok {
			t.Fatalf("ids holds dead rowid %d", id)
		}
	}
	for _, ix := range d.indexes {
		seen := 0
		for k, post := range ix.postings {
			if len(post) == 0 {
				t.Fatalf("index %v retains empty posting list %q", ix.cols, k)
			}
			for i, id := range post {
				if i > 0 && post[i-1] >= id {
					t.Fatalf("index %v posting %q not ascending: %v", ix.cols, k, post)
				}
				r, ok := d.rows[id]
				if !ok {
					t.Fatalf("index %v posting %q holds dead rowid %d", ix.cols, k, id)
				}
				if got := joinRow(ix.cols, r); got != k {
					t.Fatalf("index %v: rowid %d filed under %q but row keys to %q", ix.cols, id, k, got)
				}
				seen++
			}
		}
		if seen != len(d.rows) {
			t.Fatalf("index %v covers %d rows, table has %d", ix.cols, seen, len(d.rows))
		}
	}
}

func TestSecondaryIndexConsistencyAcrossMutations(t *testing.T) {
	s := indexedStore(t)
	for i := 0; i < 20; i++ {
		comp := "Counter"
		if i%3 == 0 {
			comp = "Register"
		}
		if err := s.Insert("implementations", implRowN(i, comp)); err != nil {
			t.Fatal(err)
		}
	}
	checkIndexConsistency(t, s, "implementations")

	// Upsert moves a row between posting lists without changing its rowid.
	moved := implRowN(3, "Adder")
	if err := s.Upsert("implementations", moved); err != nil {
		t.Fatal(err)
	}
	checkIndexConsistency(t, s, "implementations")
	rows, err := s.Select("implementations", Eq("component", "Adder"))
	if err != nil || len(rows) != 1 || rows[0]["name"] != "impl003" {
		t.Fatalf("after upsert: %v %v", rows, err)
	}

	// Update rewrites indexed columns in bulk.
	if _, err := s.Update("implementations", Eq("component", "Register"), func(r Row) Row {
		r["component"] = "Memory"
		return r
	}); err != nil {
		t.Fatal(err)
	}
	checkIndexConsistency(t, s, "implementations")
	if n, _ := s.Count("implementations", Eq("component", "Register")); n != 0 {
		t.Errorf("stale Register posting visible: count %d", n)
	}

	// Delete through the planner's index path.
	n, err := s.Delete("implementations", Eq("component", "Memory"))
	if err != nil || n != 6 {
		t.Fatalf("delete Memory: n=%d err=%v", n, err)
	}
	checkIndexConsistency(t, s, "implementations")

	// Delete everything through the scan path.
	if _, err := s.Delete("implementations", nil); err != nil {
		t.Fatal(err)
	}
	checkIndexConsistency(t, s, "implementations")
	if n, _ := s.Count("implementations", nil); n != 0 {
		t.Errorf("count after delete-all = %d", n)
	}
}

// TestSecondaryIndexKeySwap: the two-phase primary-key swap must leave
// secondary indexes consistent too.
func TestSecondaryIndexKeySwap(t *testing.T) {
	s := indexedStore(t)
	for i, n := range []string{"a", "b"} {
		if err := s.Insert("implementations", Row{
			"name": n, "component": fmt.Sprintf("C%d", i), "size": i, "area": 1.0, "parameterized": false,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Update("implementations", nil, func(r Row) Row {
		if r["name"] == "a" {
			r["name"] = "b"
		} else {
			r["name"] = "a"
		}
		return r
	}); err != nil {
		t.Fatalf("key swap rejected: %v", err)
	}
	checkIndexConsistency(t, s, "implementations")
	r, err := s.Get("implementations", "a")
	if err != nil || r["component"] != "C1" {
		t.Fatalf("after swap Get(a) = %v, %v", r, err)
	}
}

// TestKeyEncodingInjective: multi-column string keys with embedded NUL
// or backslash must not collide — the verify-free fast paths trust key
// string equality to mean row equality.
func TestKeyEncodingInjective(t *testing.T) {
	s := New()
	if err := s.CreateTable(Schema{
		Table:   "pair",
		Columns: []Column{{Name: "a", Type: TString}, {Name: "b", Type: TString}},
		Key:     []string{"a", "b"},
		Indexes: []Index{{Columns: []string{"b", "a"}}},
	}); err != nil {
		t.Fatal(err)
	}
	// All of these must coexist (distinct keys) and resolve exactly.
	pairs := [][2]string{
		{"x\x00y", "z"},
		{"x", "y\x00z"},
		{`x\`, `0y` + "\x00z"},
		{"x", `\0y` + "\x00z"},
	}
	for i, p := range pairs {
		if err := s.Insert("pair", Row{"a": p[0], "b": p[1]}); err != nil {
			t.Fatalf("insert %d (%q,%q): %v", i, p[0], p[1], err)
		}
	}
	for i, p := range pairs {
		r, err := s.Get("pair", p[0], p[1])
		if err != nil || r["a"] != p[0] || r["b"] != p[1] {
			t.Errorf("Get %d (%q,%q) = %v, %v", i, p[0], p[1], r, err)
		}
		n, err := s.Count("pair", And(Eq("b", p[1]), Eq("a", p[0])))
		if err != nil || n != 1 {
			t.Errorf("indexed count %d (%q,%q) = %d, %v", i, p[0], p[1], n, err)
		}
	}
}

func TestGetPointLookup(t *testing.T) {
	s := newImplStore(t)
	for i := 0; i < 5; i++ {
		if err := s.Insert("implementations", implRowN(i, "Counter")); err != nil {
			t.Fatal(err)
		}
	}
	r, err := s.Get("implementations", "impl002")
	if err != nil || r["area"] != 2.0 {
		t.Fatalf("Get = %v, %v", r, err)
	}
	// Returned row is a copy.
	r["area"] = 99.0
	again, _ := s.Get("implementations", "impl002")
	if again["area"] != 2.0 {
		t.Error("Get leaked internal row storage")
	}
	if _, err := s.Get("implementations", "nope"); err == nil {
		t.Error("Get of missing key: want error")
	}
	if _, err := s.Get("implementations"); err == nil {
		t.Error("Get with wrong arity: want error")
	}
	if _, err := s.Get("nope", "x"); err == nil {
		t.Error("Get on missing table: want error")
	}
	// Composite keys and numeric canonicalization.
	if err := s.CreateTable(Schema{
		Table:   "pair",
		Columns: []Column{{Name: "a", Type: TString}, {Name: "b", Type: TInt}},
		Key:     []string{"a", "b"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("pair", Row{"a": "x", "b": 7}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("pair", "x", int64(7)); err != nil {
		t.Errorf("Get with int64 key value: %v", err)
	}
	if _, err := s.Get("pair", "x", 7.0); err != nil {
		t.Errorf("Get with float64 key value: %v", err)
	}
	// Keyless tables cannot Get.
	if err := s.CreateTable(Schema{Table: "nokey", Columns: []Column{{Name: "a", Type: TInt}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("nokey", 1); err == nil {
		t.Error("Get on keyless table: want error")
	}
}

// TestPlannerFallback: predicates the planner cannot shape into an index
// probe must still return exactly the scan-path answer.
func TestPlannerFallback(t *testing.T) {
	s := indexedStore(t)
	for i := 0; i < 12; i++ {
		comp := "Counter"
		if i%2 == 0 {
			comp = "Register"
		}
		if err := s.Insert("implementations", implRowN(i, comp)); err != nil {
			t.Fatal(err)
		}
	}
	// Opaque Func predicate: full scan.
	rows, err := s.Select("implementations", Func(func(r Row) bool { return r["size"] == 1 }))
	if err != nil || len(rows) != 3 {
		t.Fatalf("Func select = %d rows (%v), want 3", len(rows), err)
	}
	// Eq on an unindexed column: full scan with verification.
	rows, err = s.Select("implementations", Eq("size", 1))
	if err != nil || len(rows) != 3 {
		t.Fatalf("unindexed Eq = %d rows (%v), want 3", len(rows), err)
	}
	// Index probe narrowed further by an opaque residue.
	rows, err = s.Select("implementations", And(
		Eq("component", "Counter"),
		Func(func(r Row) bool { return r["size"].(int) >= 2 }),
	))
	if err != nil || len(rows) != 3 {
		t.Fatalf("index+Func = %d rows (%v), want 3", len(rows), err)
	}
	for _, r := range rows {
		if r["component"] != "Counter" || r["size"].(int) < 2 {
			t.Errorf("row escaped the residual filter: %v", r)
		}
	}
	// Contradictory Eqs on one column must yield nothing, through any path.
	rows, err = s.Select("implementations", And(Eq("component", "Counter"), Eq("component", "Register")))
	if err != nil || len(rows) != 0 {
		t.Fatalf("contradictory Eq = %v (%v), want none", rows, err)
	}
	rows, err = s.Select("implementations", And(Eq("name", "impl001"), Eq("name", "impl002")))
	if err != nil || len(rows) != 0 {
		t.Fatalf("contradictory key Eq = %v (%v), want none", rows, err)
	}
	// A key Eq plus extra conjuncts verifies the residue on the one row.
	rows, err = s.Select("implementations", And(Eq("name", "impl001"), Eq("size", 3)))
	if err != nil || len(rows) != 0 {
		t.Fatalf("key Eq + failing residue = %v (%v), want none", rows, err)
	}
	rows, err = s.Select("implementations", And(Eq("name", "impl001"), Eq("size", 1)))
	if err != nil || len(rows) != 1 {
		t.Fatalf("key Eq + passing residue = %v (%v), want 1 row", rows, err)
	}
	// A type-mismatched Eq value whose %v rendering collides with a
	// stored key ("5" vs 5) must match nothing — the planner may not
	// probe an index key built from it.
	if err := s.Insert("implementations", Row{
		"name": "5", "component": "5", "size": 5, "area": 1.0, "parameterized": false,
	}); err != nil {
		t.Fatal(err)
	}
	rows, err = s.Select("implementations", Eq("name", 5))
	if err != nil || len(rows) != 0 {
		t.Fatalf("int query against string key = %v (%v), want none", rows, err)
	}
	rows, err = s.Select("implementations", Eq("component", 5))
	if err != nil || len(rows) != 0 {
		t.Fatalf("int query against string index = %v (%v), want none", rows, err)
	}
	if _, err := s.Get("implementations", 5); err == nil {
		t.Error("Get with int key value matched a string key")
	}
	if _, err := s.Delete("implementations", Eq("name", "5")); err != nil {
		t.Fatal(err)
	}
	// NaN equals nothing, even a stored NaN's identically rendered key.
	rows, err = s.Select("implementations", Eq("area", math.NaN()))
	if err != nil || len(rows) != 0 {
		t.Fatalf("NaN query = %v (%v), want none", rows, err)
	}
	// Insertion order is preserved on the index path.
	rows, err = s.Select("implementations", Eq("component", "Register"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1]["name"].(string) >= rows[i]["name"].(string) {
			t.Fatalf("index path broke insertion order: %v", rows)
		}
	}
}

func TestScanZeroCopyAndEarlyStop(t *testing.T) {
	s := indexedStore(t)
	for i := 0; i < 10; i++ {
		if err := s.Insert("implementations", implRowN(i, "Counter")); err != nil {
			t.Fatal(err)
		}
	}
	var visited []string
	err := s.Scan("implementations", Eq("component", "Counter"), func(r Row) bool {
		visited = append(visited, r["name"].(string))
		return len(visited) < 4
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(visited) != 4 || visited[0] != "impl000" || visited[3] != "impl003" {
		t.Errorf("scan visited %v", visited)
	}
	if err := s.Scan("nope", nil, func(Row) bool { return true }); err == nil {
		t.Error("Scan on missing table: want error")
	}
}

func TestCreateIndexValidationAndBackfill(t *testing.T) {
	s := newImplStore(t)
	for i := 0; i < 6; i++ {
		if err := s.Insert("implementations", implRowN(i, "Counter")); err != nil {
			t.Fatal(err)
		}
	}
	// Backfill: index created on a live table serves existing rows.
	if err := s.CreateIndex("implementations", "size"); err != nil {
		t.Fatal(err)
	}
	checkIndexConsistency(t, s, "implementations")
	n, err := s.Count("implementations", Eq("size", 1))
	if err != nil || n != 2 {
		t.Fatalf("count via backfilled index = %d (%v), want 2", n, err)
	}
	if err := s.CreateIndex("implementations", "size"); err == nil {
		t.Error("duplicate index accepted")
	}
	if err := s.CreateIndex("implementations", "bogus"); err == nil {
		t.Error("index on undeclared column accepted")
	}
	if err := s.CreateIndex("implementations"); err == nil {
		t.Error("index over no columns accepted")
	}
	if err := s.CreateIndex("implementations", "size", "size"); err == nil {
		t.Error("index repeating a column accepted")
	}
	if err := s.CreateIndex("nope", "size"); err == nil {
		t.Error("index on missing table accepted")
	}
	// Bad index declarations are rejected at CreateTable too.
	if err := s.CreateTable(Schema{
		Table:   "bad",
		Columns: []Column{{Name: "a", Type: TInt}},
		Indexes: []Index{{Columns: []string{"zzz"}}},
	}); err == nil {
		t.Error("CreateTable with bad index accepted")
	}
}

// TestIndexesSurviveSaveLoad: index declarations persist with the schema
// and are rebuilt, serving queries after a round-trip.
func TestIndexesSurviveSaveLoad(t *testing.T) {
	s := indexedStore(t)
	for i := 0; i < 8; i++ {
		if err := s.Insert("implementations", implRowN(i, "Counter")); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "store.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	s2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := s2.SchemaOf("implementations")
	if err != nil || len(sc.Indexes) != 2 {
		t.Fatalf("reloaded schema indexes = %+v (%v), want 2", sc.Indexes, err)
	}
	checkIndexConsistency(t, s2, "implementations")
	n, err := s2.Count("implementations", Eq("component", "Counter"))
	if err != nil || n != 8 {
		t.Errorf("count after reload = %d (%v)", n, err)
	}
}

// TestConcurrentScanAndWriters is the -race stress test: readers on the
// no-copy Scan path race with Insert/Upsert/Update/Delete writers; the
// store must stay consistent and race-free.
func TestConcurrentScanAndWriters(t *testing.T) {
	s := indexedStore(t)
	for i := 0; i < 50; i++ {
		if err := s.Insert("implementations", implRowN(i, "Counter")); err != nil {
			t.Fatal(err)
		}
	}
	const rounds = 200
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	report := func(err error) {
		select {
		case errc <- err:
		default:
		}
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				n := 1000 + w*rounds + i
				if err := s.Insert("implementations", implRowN(n, "Register")); err != nil {
					report(err)
					return
				}
				if i%3 == 0 {
					if _, err := s.Delete("implementations", Eq("name", fmt.Sprintf("impl%03d", n))); err != nil {
						report(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if _, err := s.Update("implementations", Eq("name", fmt.Sprintf("impl%03d", i%50)), func(r Row) Row {
				r["area"] = r["area"].(float64) + 1
				return r
			}); err != nil {
				report(err)
				return
			}
		}
	}()
	for rdr := 0; rdr < 3; rdr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				seen := 0
				if err := s.Scan("implementations", Eq("component", "Counter"), func(r Row) bool {
					if r["component"] != "Counter" {
						report(fmt.Errorf("scan visited wrong row: %v", r))
						return false
					}
					seen++
					return true
				}); err != nil {
					report(err)
					return
				}
				if seen != 50 {
					report(fmt.Errorf("scan saw %d Counter rows, want 50", seen))
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	checkIndexConsistency(t, s, "implementations")
}
