package relstore

import "math"

// The query planner. Given a predicate, plan extracts its Eq-on-column
// conjuncts and picks the cheapest access path:
//
//  1. primary-key point lookup, when the Eq conjuncts cover every key
//     column (at most one candidate row);
//  2. a secondary-index posting list, when they cover all columns of a
//     declared index (the index over the most columns wins);
//  3. the full insertion-ordered scan otherwise.
//
// Every Eq conjunct of a predicate is a necessary condition for a match,
// so narrowing candidates through an index is always sound — even when
// the predicate also contains planner-opaque parts (Func) or extra
// conjuncts. In those partial cases the plan asks the caller to re-verify
// the full predicate against each candidate; when the conjuncts are the
// whole predicate and exactly cover the chosen index, verification is
// skipped entirely.

// eqBindings walks p collecting its Eq conjuncts into out (column ->
// queried value). The return value reports whether p is *exactly* the
// conjunction of those bindings; it is false when p contains a Func, a
// non-conjunctive shape, or two Eqs on one column with different values
// (the first value is kept — candidates narrowed by it are then rejected
// by full-predicate verification, which is what the contradictory
// predicate requires).
func eqBindings(p Pred, out map[string]any) bool {
	switch q := p.(type) {
	case EqPred:
		if old, seen := out[q.Col]; seen {
			return valueEqual(old, q.Val)
		}
		out[q.Col] = q.Val
		return true
	case AndPred:
		exact := true
		for _, c := range q.Preds {
			if c == nil {
				continue
			}
			if !eqBindings(c, out) {
				exact = false
			}
		}
		return exact
	}
	return false
}

// covers reports whether eqs binds every column in cols.
func covers(eqs map[string]any, cols []string) bool {
	for _, c := range cols {
		if _, ok := eqs[c]; !ok {
			return false
		}
	}
	return true
}

// plan returns the candidate rowids for predicate p against the data
// snapshot d, in insertion order, and whether the caller must still
// verify p against each candidate. The returned slice aliases d's
// internal state: a reader iterating a pinned (shared) snapshot may use
// it freely, but a writer planning against its writable data must copy
// it before mutating the table.
func (t *table) plan(d *tableData, p Pred) (ids []int64, verify bool) {
	if p == nil {
		return d.ids, false
	}
	eqs := make(map[string]any)
	exact := eqBindings(p, eqs)
	if len(eqs) > 0 {
		if len(t.schema.Key) > 0 && covers(eqs, t.schema.Key) {
			verify = !exact || len(eqs) != len(t.schema.Key)
			k, sat := t.joinVals(t.schema.Key, eqs)
			if !sat {
				return nil, false
			}
			if id, ok := d.keyIndex[k]; ok {
				return []int64{id}, verify
			}
			return nil, false
		}
		best := -1
		for i, ix := range d.indexes {
			if covers(eqs, ix.cols) && (best < 0 || len(ix.cols) > len(d.indexes[best].cols)) {
				best = i
			}
		}
		if best >= 0 {
			ix := d.indexes[best]
			verify = !exact || len(eqs) != len(ix.cols)
			k, sat := t.joinVals(ix.cols, eqs)
			if !sat {
				return nil, false
			}
			return ix.postings[k], verify
		}
	}
	return d.ids, true
}

// canonMatchesCol reports whether a canonicalized query value has the
// column's canonical stored type. A mismatch (string queried against an
// int column, non-integral float against TInt, ...) can equal no stored
// value, but its %v rendering could collide with a stored key ("5" vs
// 5), so the planner must treat it as unsatisfiable rather than build a
// key from it.
func canonMatchesCol(ct ColType, v any) bool {
	switch ct {
	case TString:
		_, ok := v.(string)
		return ok
	case TInt:
		_, ok := v.(int)
		return ok
	case TFloat:
		// NaN never equals any stored value under valueEqual, but its %v
		// rendering would match a stored NaN's key — unsatisfiable.
		f, ok := v.(float64)
		return ok && !math.IsNaN(f)
	case TBool:
		_, ok := v.(bool)
		return ok
	}
	return false
}

// canonVal normalizes a queried value to the column's canonical stored
// type (see table.canon), so index key strings built from query values
// line up with those built from stored rows.
func canonVal(ct ColType, v any) any {
	switch ct {
	case TInt:
		switch x := v.(type) {
		case int64:
			return int(x)
		case float64:
			if x == math.Trunc(x) {
				return int(x)
			}
		case float32:
			if f := float64(x); f == math.Trunc(f) {
				return int(f)
			}
		}
	case TFloat:
		switch x := v.(type) {
		case int:
			return float64(x)
		case int64:
			return float64(x)
		case float32:
			return float64(x)
		}
	}
	return v
}
