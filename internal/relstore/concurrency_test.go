package relstore

// Concurrency semantics of the snapshot-isolated read path: scans hold
// no lock across visitor callbacks, so visitors may re-enter the store,
// writers make progress mid-scan, and every scan observes exactly the
// rows that were live when it started. The first two tests are
// regressions for the pre-snapshot implementation, which held the
// store's read lock for the whole scan: a visitor re-entering the store
// while a writer waited deadlocked (RWMutex read locks are not
// re-entrant once a writer is pending), and any long scan starved all
// writers.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func concStore(t *testing.T, nRows int) *Store {
	t.Helper()
	s := New()
	if err := s.CreateTable(Schema{
		Table: "t",
		Columns: []Column{
			{Name: "name", Type: TString},
			{Name: "grp", Type: TInt},
			{Name: "val", Type: TFloat},
		},
		Key:     []string{"name"},
		Indexes: []Index{{Columns: []string{"grp"}}},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nRows; i++ {
		if err := s.Insert("t", Row{"name": fmt.Sprintf("r%04d", i), "grp": i % 4, "val": float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestScanVisitorReentersStoreWhileWriterBlocked pins the deadlock fix:
// a visitor performs a re-entrant read while a writer is concurrently
// trying to insert. Under the old whole-scan read lock this deadlocked
// (the pending writer blocks the re-entrant RLock); under snapshot
// isolation both the re-entrant read and the writer complete.
func TestScanVisitorReentersStoreWhileWriterBlocked(t *testing.T) {
	s := concStore(t, 8)

	writerDone := make(chan error, 1)
	scanDone := make(chan error, 1)
	var started sync.Once
	go func() {
		scanDone <- s.Scan("t", nil, func(r Row) bool {
			started.Do(func() {
				go func() { writerDone <- s.Insert("t", Row{"name": "w", "grp": 9, "val": 9.0}) }()
				// Give the writer time to be genuinely pending before the
				// re-entrant reads below (the old code needed exactly this
				// interleaving to deadlock).
				time.Sleep(20 * time.Millisecond)
			})
			if _, err := s.Count("t", nil); err != nil {
				t.Error(err)
			}
			if _, err := s.Get("t", "r0000"); err != nil {
				t.Error(err)
			}
			return true
		})
	}()

	select {
	case err := <-scanDone:
		if err != nil {
			t.Fatalf("scan: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("scan deadlocked against a pending writer (re-entrancy regression)")
	}
	select {
	case err := <-writerDone:
		if err != nil {
			t.Fatalf("writer: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("writer never completed")
	}
}

// TestWriterProgressDuringSlowScan is the acceptance-criterion shape: a
// streamed scan pauses mid-flight (a slow network client), and a writer
// must complete while the scan is still holding its position.
func TestWriterProgressDuringSlowScan(t *testing.T) {
	s := concStore(t, 10)

	visited := make(chan struct{})     // scan reached its first row
	release := make(chan struct{})     // test lets the scan continue
	writerDone := make(chan error, 1)  // writer finished
	scanDone := make(chan []string, 1) // names the scan saw

	go func() {
		var names []string
		first := true
		s.Scan("t", nil, func(r Row) bool {
			names = append(names, r["name"].(string))
			if first {
				first = false
				close(visited)
				<-release
			}
			return true
		})
		scanDone <- names
	}()

	<-visited
	go func() { writerDone <- s.Insert("t", Row{"name": "mid", "grp": 1, "val": 1.0}) }()

	// The writer must finish while the scan is parked on its first row.
	select {
	case err := <-writerDone:
		if err != nil {
			t.Fatalf("writer: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("writer blocked behind a paused scan")
	}

	close(release)
	names := <-scanDone
	// Snapshot isolation: the scan sees the 10 original rows, not the
	// concurrently inserted one.
	if len(names) != 10 {
		t.Fatalf("scan saw %d rows %v, want the 10 pre-scan rows", len(names), names)
	}
	for _, n := range names {
		if n == "mid" {
			t.Fatalf("scan observed the concurrent insert %q", n)
		}
	}
	// The store itself does see it.
	if n, err := s.Count("t", nil); err != nil || n != 11 {
		t.Fatalf("post-scan Count = %d, %v; want 11", n, err)
	}
}

// TestScanSnapshotIsolation mutates the table heavily mid-scan (delete
// everything, insert replacements, update in place) and requires the
// scan to keep yielding exactly its pinned rows.
func TestScanSnapshotIsolation(t *testing.T) {
	s := concStore(t, 6)

	var got []string
	first := true
	err := s.Scan("t", nil, func(r Row) bool {
		if first {
			first = false
			// Visitor writes are allowed now: rewrite the table under the
			// scan's feet.
			if _, err := s.Delete("t", nil); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				if err := s.Insert("t", Row{"name": fmt.Sprintf("new%d", i), "grp": 0, "val": 0.0}); err != nil {
					t.Fatal(err)
				}
			}
		}
		got = append(got, r["name"].(string))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"r0000", "r0001", "r0002", "r0003", "r0004", "r0005"}
	if len(got) != len(want) {
		t.Fatalf("scan yielded %v, want the original %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan yielded %v, want the original %v", got, want)
		}
	}
	if n, _ := s.Count("t", nil); n != 3 {
		t.Fatalf("table has %d rows after rewrite, want 3", n)
	}
	checkIndexConsistency(t, s, "t")
}

// TestRowsCursorReentrancy gives the iter.Seq2 cursor the same
// guarantees: re-entrant writes from the loop body, isolation from them.
func TestRowsCursorReentrancy(t *testing.T) {
	s := concStore(t, 5)
	n := 0
	for r, err := range s.Rows("t", Eq("grp", 0)) {
		if err != nil {
			t.Fatal(err)
		}
		n++
		// Re-enter with a write keyed off the yielded row.
		if err := s.Upsert("t", Row{"name": r["name"].(string), "grp": r["grp"].(int), "val": 99.0}); err != nil {
			t.Fatal(err)
		}
	}
	if n != 2 { // groups cycle 0,1,2,3 over 5 rows -> grp 0 twice
		t.Fatalf("cursor yielded %d rows, want 2", n)
	}
	rows, err := s.Select("t", Eq("val", 99.0))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("re-entrant upserts touched %d rows, want 2", len(rows))
	}
}

// TestConcurrentScansAndWritersStress runs scanning readers (with
// re-entrant point reads), cursor readers, and mutating writers against
// one table. Run under -race this exercises the copy-on-write discipline:
// any in-place mutation of a pinned snapshot is a detectable data race.
func TestConcurrentScansAndWritersStress(t *testing.T) {
	s := concStore(t, 64)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var scans, writes atomic.Int64

	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				err := s.Scan("t", Eq("grp", g%4), func(r Row) bool {
					if i%7 == 0 {
						s.Get("t", r["name"].(string))
					}
					return true
				})
				if err != nil {
					t.Error(err)
					return
				}
				for _, err := range s.Rows("t", nil) {
					if err != nil {
						t.Error(err)
						return
					}
				}
				scans.Add(1)
			}
		}(g)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				name := fmt.Sprintf("w%d-%d", w, i)
				if err := s.Insert("t", Row{"name": name, "grp": i % 4, "val": float64(i)}); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Update("t", Eq("name", name), func(r Row) Row {
					r["val"] = r["val"].(float64) + 0.5
					return r
				}); err != nil {
					t.Error(err)
					return
				}
				if i%3 == 0 {
					if _, err := s.Delete("t", Eq("name", name)); err != nil {
						t.Error(err)
						return
					}
				}
				writes.Add(1)
			}
		}(w)
	}

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	if scans.Load() == 0 || writes.Load() == 0 {
		t.Fatalf("stress did no work: %d scans, %d writes", scans.Load(), writes.Load())
	}
	checkIndexConsistency(t, s, "t")
}
