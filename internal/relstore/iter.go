package relstore

import (
	"fmt"
	"iter"
)

// Rows returns a cursor over the rows of tableName matching p (nil p
// matches everything), in insertion order. Like Select and Scan it
// narrows candidates through the query planner, so an Eq-shaped
// predicate over the key or an indexed column tuple walks only the
// matching posting list. Unlike Select nothing is materialized: rows are
// yielded one at a time, without copying, so a caller that decodes into
// its own representation allocates nothing per row here.
//
// On error (unknown table) the sequence yields a single (nil, error)
// pair; every successful yield carries a nil error.
//
// The store's read lock is held for the lifetime of the iteration: the
// loop body must not call back into the Store (deadlock), must treat the
// yielded Row as read-only, and must not retain it (or any contained
// reference) after the iteration advances — copy what outlives the loop.
// Breaking out of the loop releases the lock.
func (s *Store) Rows(tableName string, p Pred) iter.Seq2[Row, error] {
	return func(yield func(Row, error) bool) {
		s.mu.RLock()
		defer s.mu.RUnlock()
		t, ok := s.tables[tableName]
		if !ok {
			yield(nil, fmt.Errorf("relstore: no table %q", tableName))
			return
		}
		ids, verify := t.plan(p)
		for _, id := range ids {
			r := t.rows[id]
			if !verify || p.Match(r) {
				if !yield(r, nil) {
					return
				}
			}
		}
	}
}
