package relstore

import "iter"

// Rows returns a cursor over the rows of tableName matching p (nil p
// matches everything), in insertion order. Like Select and Scan it
// narrows candidates through the query planner, so an Eq-shaped
// predicate over the key or an indexed column tuple walks only the
// matching posting list. Unlike Select nothing is materialized: rows are
// yielded one at a time, without copying, so a caller that decodes into
// its own representation allocates nothing per row here.
//
// On error (unknown table) the sequence yields a single (nil, error)
// pair; every successful yield carries a nil error.
//
// The iteration runs over a pinned copy-on-write snapshot, with no store
// lock held across yields: the loop body may call back into the Store
// (reads and writes both), writers make progress while the cursor is
// mid-flight, and the cursor sees exactly the rows that were live when
// Rows captured the snapshot. The loop body must still treat each
// yielded Row as read-only and must not retain it (or any contained
// reference) after the iteration advances — copy what outlives the loop.
func (s *Store) Rows(tableName string, p Pred) iter.Seq2[Row, error] {
	return func(yield func(Row, error) bool) {
		t, d, err := s.snapshot(tableName)
		if err != nil {
			yield(nil, err)
			return
		}
		ids, verify := t.plan(d, p)
		for _, id := range ids {
			r := d.rows[id]
			if !verify || p.Match(r) {
				if !yield(r, nil) {
					return
				}
			}
		}
	}
}
