// Lazy snapshot open: first-touch hydration of v4 table sections.
//
// A store opened with OpenLazy holds, per table, a stub — real schema,
// empty data — plus a pendingSection pointing at the raw section bytes
// inside the snapshot buffer. Every access path that needs rows
// (snapshot(), Get, the mutators via tableLocked, SaveSnapshot/Save via
// HydrateAll) hydrates the table first: verify the section's CRC-32C
// against the directory, bulk-decode rows and indexes, then — for
// stores opened by OpenDurable — strictly replay the table's deferred
// journal records, all under the store's write lock.
//
// Hydration is race-safe under concurrent first touch by double-checked
// locking: readers peek t.pending under the read lock (it only ever
// transitions non-nil -> nil, under the write lock), and losers of the
// race block on the write lock while the winner decodes — they never
// decode twice. A hydration failure (checksum mismatch, malformed rows,
// a deferred record that does not apply) poisons the section with a
// sticky error: every later access re-fails immediately instead of
// re-decoding, and the rest of the catalog stays usable.
package relstore

import (
	"fmt"
	"hash/crc32"
	"sort"
)

// pendingSection is the not-yet-decoded state of one lazily opened
// table. All fields are guarded by the store's write lock once the
// store is shared.
type pendingSection struct {
	raw     []byte // the table's section bytes, aliasing the snapshot buffer
	crc     uint32 // expected CRC-32C of raw, from the section directory
	rowsOff int    // offset of the first row inside raw (schema header ends here)
	nRows   int
	payload int // declared row-payload byte length
	// deferred holds this table's uncovered journal records when the
	// store was opened lazily by OpenDurable: their strict exactly-once
	// replay runs right after the row decode, under the same write lock,
	// so no reader can observe the pre-replay state.
	deferred [][]byte
	// err poisons the section: set when the open-time schema decode
	// failed, or when a hydration attempt failed. Sticky — every later
	// access returns it without re-decoding.
	err error
}

// hydrate materializes name under the write lock; a no-op when the
// table is already live or does not exist (the caller re-checks).
func (s *Store) hydrate(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tables[name]; ok {
		return s.hydrateLocked(t)
	}
	return nil
}

// hydrateLocked decodes t's pending section and replays its deferred
// journal records. The caller holds the write lock. Idempotent: a
// hydrated table returns nil immediately, a poisoned one its sticky
// error.
func (s *Store) hydrateLocked(t *table) error {
	p := t.pending
	if p == nil {
		return nil
	}
	if p.err != nil {
		return p.err
	}
	name := t.schema.Table
	if sum := crc32.Checksum(p.raw, snapCRC); sum != p.crc {
		p.err = fmt.Errorf("relstore: table %q: section checksum mismatch (want %08x, directory carries %08x): snapshot section is corrupted",
			name, sum, p.crc)
		return p.err
	}
	// One string copy of the section for zero-copy string values, same
	// as the eager decoder; the reader starts past the schema header,
	// which lazyStub already decoded into t.schema.
	r := &snapReader{b: p.raw, s: string(p.raw), off: p.rowsOff}
	if err := t.decodeSectionRows(r, p.nRows, p.payload, newBoxCache()); err != nil {
		p.err = fmt.Errorf("relstore: hydrate table %q: %w", name, err)
		return p.err
	}
	t.pending = nil
	s.hydrations++
	if n := len(p.deferred); n > 0 {
		// The records are already in the journal — replaying must not
		// re-append them. replaying is cleared before any return so a
		// later mutation in this critical section journals normally.
		s.replaying = true
		for i, rec := range p.deferred {
			if err := s.applyWALRecordLocked(rec); err != nil {
				s.replaying = false
				p.err = fmt.Errorf("relstore: hydrate table %q: deferred journal record %d does not apply: %w", name, i, err)
				p.deferred = nil
				t.pending = p // re-poison: the table is mid-replay, unusable
				return p.err
			}
		}
		s.replaying = false
		s.deferredPending -= int64(n)
		s.deferredReplayed += int64(n)
	}
	return nil
}

// tableLocked returns the named table, hydrated. It is the lookup every
// mutator goes through; the caller holds the write lock.
func (s *Store) tableLocked(name string) (*table, error) {
	t, ok := s.tables[name]
	if !ok {
		return nil, fmt.Errorf("relstore: no table %q", name)
	}
	if t.pending != nil {
		if err := s.hydrateLocked(t); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// HydrateAll materializes every still-pending table of a lazily opened
// store, in sorted name order, stopping at the first failure. Encoding
// paths (SaveSnapshot, Save, Durable.Compact) call it first: a snapshot
// must never be written from a store whose journal records are still
// waiting in pending sections. A fully hydrated (or eagerly opened)
// store returns nil immediately.
func (s *Store) HydrateAll() error {
	if !s.lazy {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.tables))
	for n, t := range s.tables {
		if t.pending != nil {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		if err := s.hydrateLocked(s.tables[n]); err != nil {
			return err
		}
	}
	return nil
}

// LazyInfo reports a store's hydration state, the numbers behind
// icdbd's boot log line and "show server" hydration counters.
type LazyInfo struct {
	// Lazy reports whether the store was opened lazily (false for eager
	// opens and fresh stores — every other field is trivial then).
	Lazy bool
	// Tables / Hydrated / Pending count the catalog's tables and how
	// many are materialized vs still cold (poisoned sections count as
	// pending — they never materialize).
	Tables   int
	Hydrated int
	Pending  int
	// PendingTables names the still-cold sections, sorted. Nil once
	// everything is hydrated.
	PendingTables []string
	// Hydrations counts first-touch materializations performed since
	// open (tables created live are never counted).
	Hydrations int64
	// DeferredPending / DeferredReplayed count journal records whose
	// replay OpenDurable deferred to hydration: still waiting vs
	// already applied.
	DeferredPending  int64
	DeferredReplayed int64
}

// LazyInfo snapshots the store's hydration counters.
func (s *Store) LazyInfo() LazyInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	li := LazyInfo{Lazy: s.lazy, Tables: len(s.tables)}
	for n, t := range s.tables {
		if t.pending != nil {
			li.PendingTables = append(li.PendingTables, n)
		}
	}
	sort.Strings(li.PendingTables)
	li.Pending = len(li.PendingTables)
	li.Hydrated = li.Tables - li.Pending
	li.Hydrations = s.hydrations
	li.DeferredPending = s.deferredPending
	li.DeferredReplayed = s.deferredReplayed
	return li
}
