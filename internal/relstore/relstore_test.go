package relstore

import (
	"fmt"
	"path/filepath"
	"testing"
	"testing/quick"
)

func implSchema() Schema {
	return Schema{
		Table: "implementations",
		Columns: []Column{
			{Name: "name", Type: TString},
			{Name: "component", Type: TString},
			{Name: "size", Type: TInt},
			{Name: "area", Type: TFloat},
			{Name: "parameterized", Type: TBool},
		},
		Key: []string{"name"},
	}
}

func newImplStore(t *testing.T) *Store {
	t.Helper()
	s := New()
	if err := s.CreateTable(implSchema()); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCreateTableValidation(t *testing.T) {
	s := New()
	if err := s.CreateTable(Schema{}); err == nil {
		t.Error("empty schema accepted")
	}
	if err := s.CreateTable(Schema{Table: "t"}); err == nil {
		t.Error("no-column schema accepted")
	}
	if err := s.CreateTable(Schema{
		Table:   "t",
		Columns: []Column{{Name: "a", Type: TInt}, {Name: "a", Type: TString}},
	}); err == nil {
		t.Error("duplicate column accepted")
	}
	if err := s.CreateTable(Schema{
		Table:   "t",
		Columns: []Column{{Name: "a", Type: TInt}},
		Key:     []string{"b"},
	}); err == nil {
		t.Error("undeclared key column accepted")
	}
	if err := s.CreateTable(Schema{Table: "t", Columns: []Column{{Name: "a", Type: TInt}}}); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable(Schema{Table: "t", Columns: []Column{{Name: "a", Type: TInt}}}); err == nil {
		t.Error("duplicate table accepted")
	}
}

func TestInsertSelect(t *testing.T) {
	s := newImplStore(t)
	rows := []Row{
		{"name": "ripple_counter", "component": "Counter", "size": 5, "area": 17.2, "parameterized": true},
		{"name": "sync_counter", "component": "Counter", "size": 5, "area": 23.6, "parameterized": true},
		{"name": "adder4", "component": "Adder_Subtractor", "size": 4, "area": 10.0, "parameterized": false},
	}
	for _, r := range rows {
		if err := s.Insert("implementations", r); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Select("implementations", Eq("component", "Counter"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("Select counters = %d rows, want 2", len(got))
	}
	if got[0]["name"] != "ripple_counter" {
		t.Errorf("insertion order not preserved: first = %v", got[0]["name"])
	}
	one, err := s.SelectOne("implementations", Eq("name", "adder4"))
	if err != nil {
		t.Fatal(err)
	}
	if one["size"] != 4 {
		t.Errorf("adder4 size = %v", one["size"])
	}
}

func TestInsertSchemaViolations(t *testing.T) {
	s := newImplStore(t)
	base := Row{"name": "x", "component": "Counter", "size": 1, "area": 1.0, "parameterized": false}
	if err := s.Insert("nope", base); err == nil {
		t.Error("insert into missing table accepted")
	}
	miss := base.clone()
	delete(miss, "size")
	if err := s.Insert("implementations", miss); err == nil {
		t.Error("missing column accepted")
	}
	bad := base.clone()
	bad["size"] = "five"
	if err := s.Insert("implementations", bad); err == nil {
		t.Error("type mismatch accepted")
	}
	extra := base.clone()
	extra["bogus"] = 1
	if err := s.Insert("implementations", extra); err == nil {
		t.Error("undeclared column accepted")
	}
}

func TestPrimaryKeyConflict(t *testing.T) {
	s := newImplStore(t)
	r := Row{"name": "x", "component": "Counter", "size": 1, "area": 1.0, "parameterized": false}
	if err := s.Insert("implementations", r); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("implementations", r); err == nil {
		t.Error("duplicate key accepted")
	}
	// Upsert replaces instead.
	r2 := r.clone()
	r2["size"] = 9
	if err := s.Upsert("implementations", r2); err != nil {
		t.Fatal(err)
	}
	got, err := s.SelectOne("implementations", Eq("name", "x"))
	if err != nil {
		t.Fatal(err)
	}
	if got["size"] != 9 {
		t.Errorf("after upsert size = %v, want 9", got["size"])
	}
	n, err := s.Count("implementations", nil)
	if err != nil || n != 1 {
		t.Errorf("count = %d (%v), want 1", n, err)
	}
}

func TestUpdateDelete(t *testing.T) {
	s := newImplStore(t)
	for i := 0; i < 5; i++ {
		r := Row{"name": fmt.Sprintf("c%d", i), "component": "Counter", "size": i, "area": 1.0, "parameterized": false}
		if err := s.Insert("implementations", r); err != nil {
			t.Fatal(err)
		}
	}
	n, err := s.Update("implementations", Eq("size", 2), func(r Row) Row {
		r["area"] = 99.0
		return r
	})
	if err != nil || n != 1 {
		t.Fatalf("update n=%d err=%v", n, err)
	}
	got, _ := s.SelectOne("implementations", Eq("name", "c2"))
	if got["area"] != 99.0 {
		t.Errorf("update not applied: %v", got["area"])
	}
	d, err := s.Delete("implementations", Eq("component", "Counter"))
	if err != nil || d != 5 {
		t.Fatalf("delete n=%d err=%v", d, err)
	}
	n, _ = s.Count("implementations", nil)
	if n != 0 {
		t.Errorf("count after delete = %d", n)
	}
	// Key slot must be reusable after delete.
	if err := s.Insert("implementations", Row{"name": "c0", "component": "Counter", "size": 0, "area": 1.0, "parameterized": false}); err != nil {
		t.Errorf("reinsert after delete: %v", err)
	}
}

func TestUpdateKeyChangeConflict(t *testing.T) {
	s := newImplStore(t)
	for _, n := range []string{"a", "b"} {
		if err := s.Insert("implementations", Row{"name": n, "component": "Counter", "size": 0, "area": 1.0, "parameterized": false}); err != nil {
			t.Fatal(err)
		}
	}
	_, err := s.Update("implementations", Eq("name", "a"), func(r Row) Row {
		r["name"] = "b"
		return r
	})
	if err == nil {
		t.Error("key-conflicting update accepted")
	}
}

func TestSelectOneErrors(t *testing.T) {
	s := newImplStore(t)
	if _, err := s.SelectOne("implementations", nil); err == nil {
		t.Error("SelectOne on empty table: want error")
	}
	for _, n := range []string{"a", "b"} {
		if err := s.Insert("implementations", Row{"name": n, "component": "Counter", "size": 0, "area": 1.0, "parameterized": false}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.SelectOne("implementations", Eq("component", "Counter")); err == nil {
		t.Error("SelectOne with 2 matches: want error")
	}
}

func TestAndPredicate(t *testing.T) {
	s := newImplStore(t)
	for i := 0; i < 4; i++ {
		r := Row{"name": fmt.Sprintf("c%d", i), "component": "Counter", "size": i % 2, "area": 1.0, "parameterized": i < 2}
		if err := s.Insert("implementations", r); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := s.Select("implementations", And(Eq("size", 1), Eq("parameterized", true)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0]["name"] != "c1" {
		t.Errorf("And select = %v", rows)
	}
}

func TestNumericEqAcrossTypes(t *testing.T) {
	// After JSON round-trip ints may be stored as int64; Eq must still
	// match plain int literals.
	if !valueEqual(int64(5), 5) || !valueEqual(5.0, 5) || valueEqual(5, 6) {
		t.Error("numeric equality normalization broken")
	}
	if valueEqual("5", 5) {
		t.Error("string/number must not compare equal")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := newImplStore(t)
	rows := []Row{
		{"name": "a", "component": "Counter", "size": 3, "area": 20.5, "parameterized": true},
		{"name": "b", "component": "Register", "size": 8, "area": 11.0, "parameterized": false},
	}
	for _, r := range rows {
		if err := s.Insert("implementations", r); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "store.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	s2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Select("implementations", Eq("name", "a"))
	if err != nil || len(got) != 1 {
		t.Fatalf("reloaded select: %v %v", got, err)
	}
	if got[0]["size"] != 3 {
		t.Errorf("int column after reload = %T %v, want int 3 (canonical TInt type)", got[0]["size"], got[0]["size"])
	}
	if got[0]["area"] != 20.5 || got[0]["parameterized"] != true {
		t.Errorf("reloaded row = %v", got[0])
	}
	// Key constraint survives reload.
	if err := s2.Insert("implementations", rows[0]); err == nil {
		t.Error("duplicate key accepted after reload")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("Load of missing file: want error")
	}
}

func TestTablesAndSchemaOf(t *testing.T) {
	s := newImplStore(t)
	if err := s.CreateTable(Schema{Table: "aaa", Columns: []Column{{Name: "x", Type: TInt}}}); err != nil {
		t.Fatal(err)
	}
	names := s.Tables()
	if len(names) != 2 || names[0] != "aaa" || names[1] != "implementations" {
		t.Errorf("Tables() = %v", names)
	}
	sc, err := s.SchemaOf("implementations")
	if err != nil || sc.Table != "implementations" || len(sc.Columns) != 5 {
		t.Errorf("SchemaOf = %+v, %v", sc, err)
	}
	if _, err := s.SchemaOf("nope"); err == nil {
		t.Error("SchemaOf missing table: want error")
	}
	if err := s.DropTable("aaa"); err != nil {
		t.Fatal(err)
	}
	if err := s.DropTable("aaa"); err == nil {
		t.Error("double drop accepted")
	}
}

func TestSelectReturnsCopies(t *testing.T) {
	s := newImplStore(t)
	if err := s.Insert("implementations", Row{"name": "a", "component": "Counter", "size": 1, "area": 1.0, "parameterized": false}); err != nil {
		t.Fatal(err)
	}
	rows, _ := s.Select("implementations", nil)
	rows[0]["size"] = 999
	again, _ := s.Select("implementations", nil)
	if again[0]["size"] != 1 {
		t.Error("Select leaked internal row storage")
	}
}

func TestInsertCopiesCallerRow(t *testing.T) {
	s := newImplStore(t)
	r := Row{"name": "a", "component": "Counter", "size": 1, "area": 1.0, "parameterized": false}
	if err := s.Insert("implementations", r); err != nil {
		t.Fatal(err)
	}
	r["size"] = 42
	got, _ := s.SelectOne("implementations", Eq("name", "a"))
	if got["size"] != 1 {
		t.Error("Insert aliased caller row")
	}
}

func TestPropertyInsertThenSelectByKey(t *testing.T) {
	// Property: any batch of distinct keys inserted can each be found by
	// exact key lookup, and count matches batch size.
	f := func(keys []uint16) bool {
		s := New()
		if err := s.CreateTable(Schema{
			Table:   "t",
			Columns: []Column{{Name: "k", Type: TString}, {Name: "v", Type: TInt}},
			Key:     []string{"k"},
		}); err != nil {
			return false
		}
		uniq := make(map[string]int)
		for i, k := range keys {
			uniq[fmt.Sprintf("k%d", k)] = i
		}
		for k, v := range uniq {
			if err := s.Insert("t", Row{"k": k, "v": v}); err != nil {
				return false
			}
		}
		for k, v := range uniq {
			r, err := s.SelectOne("t", Eq("k", k))
			if err != nil || r["v"] != v {
				return false
			}
		}
		n, err := s.Count("t", nil)
		return err == nil && n == len(uniq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestInsertEmptyStringKeyEnforced(t *testing.T) {
	s := New()
	if err := s.CreateTable(Schema{
		Table:   "named",
		Columns: []Column{{Name: "name", Type: TString}},
		Key:     []string{"name"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("named", Row{"name": ""}); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("named", Row{"name": ""}); err == nil {
		t.Error("duplicate empty-string key accepted")
	}
}

func TestCanonicalColumnTypes(t *testing.T) {
	s := newImplStore(t)
	if err := s.Insert("implementations", Row{
		"name": "a", "component": "c", "size": 4, "area": 7, "parameterized": true,
	}); err != nil {
		t.Fatal(err)
	}
	row, err := s.SelectOne("implementations", Eq("name", "a"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := row["size"].(int); !ok {
		t.Errorf("size stored as %T, want int", row["size"])
	}
	if _, ok := row["area"].(float64); !ok {
		t.Errorf("area stored as %T, want float64", row["area"])
	}
	// Update keeps canonical types too.
	if _, err := s.Update("implementations", Eq("name", "a"), func(r Row) Row {
		r["size"] = 8
		return r
	}); err != nil {
		t.Fatal(err)
	}
	row, err = s.SelectOne("implementations", Eq("name", "a"))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := row["size"].(int); !ok || v != 8 {
		t.Errorf("after update: size = %v (%T)", row["size"], row["size"])
	}
}

func TestUpdateAtomicOnKeyConflict(t *testing.T) {
	s := newImplStore(t)
	for _, n := range []string{"a", "b"} {
		if err := s.Insert("implementations", Row{"name": n, "component": "Counter", "size": 0, "area": 1.0, "parameterized": false}); err != nil {
			t.Fatal(err)
		}
	}
	// Renaming every row to "c" must conflict — and leave BOTH rows
	// untouched, not just roll back the second.
	n, err := s.Update("implementations", nil, func(r Row) Row {
		r["name"] = "c"
		return r
	})
	if err == nil {
		t.Fatal("conflicting update accepted")
	}
	if n != 0 {
		t.Errorf("partial update: n = %d, want 0", n)
	}
	for _, name := range []string{"a", "b"} {
		if _, err := s.SelectOne("implementations", Eq("name", name)); err != nil {
			t.Errorf("row %q damaged by aborted update: %v", name, err)
		}
	}
	// A key swap is a legal permutation and must succeed atomically.
	if _, err := s.Update("implementations", nil, func(r Row) Row {
		if r["name"] == "a" {
			r["name"] = "b"
		} else {
			r["name"] = "a"
		}
		return r
	}); err != nil {
		t.Errorf("key swap rejected: %v", err)
	}
}

func TestFloatKeyCanonicalizedBeforeIndexing(t *testing.T) {
	s := New()
	if err := s.CreateTable(Schema{
		Table:   "f",
		Columns: []Column{{Name: "k", Type: TFloat}, {Name: "v", Type: TInt}},
		Key:     []string{"k"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("f", Row{"k": float32(0.1), "v": 1}); err != nil {
		t.Fatal(err)
	}
	// Upserting the stored (canonical float64) form must replace, not
	// duplicate, the row.
	row, err := s.SelectOne("f", nil)
	if err != nil {
		t.Fatal(err)
	}
	row["v"] = 2
	if err := s.Upsert("f", row); err != nil {
		t.Fatal(err)
	}
	n, err := s.Count("f", nil)
	if err != nil || n != 1 {
		t.Fatalf("count = %d (%v), want 1", n, err)
	}
}
