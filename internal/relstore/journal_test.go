package relstore

// Write-ahead journal tests: recovery edge cases (empty journal, no
// snapshot, torn tails at every byte offset, mid-file corruption,
// snapshot/journal pairing), exactly-once replay across the compaction
// crash window, the deterministic-recovery property over seeded random
// stores, fsync policies, auto-compaction, and the journaled-store
// invariants (keyed tables only, no-op mutations stay journal-silent).
// The crash-point sweep lives in faultfile/crash_test.go.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// durableSchema is the keyed multi-type table the journal tests use.
func durableSchema() Schema {
	return Schema{
		Table: "impls",
		Columns: []Column{
			{Name: "name", Type: TString},
			{Name: "comp", Type: TString},
			{Name: "size", Type: TInt},
			{Name: "area", Type: TFloat},
			{Name: "param", Type: TBool},
		},
		Key: []string{"comp", "name"}, // composite: exercises key joining
	}
}

func openDurable(t *testing.T, dir string, opt DurableOptions) *Durable {
	t.Helper()
	d, err := OpenDurable(filepath.Join(dir, "cat.snap"), opt)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// stateOf fingerprints a store's logical state: its snapshot encoding
// with the covered-LSN header field and CRC trailer masked out (they
// depend on the journal position, not the contents).
func stateOf(t *testing.T, s *Store) []byte {
	t.Helper()
	// v3 has no section directory, so masking the covered-LSN field
	// below really does erase every journal-position-dependent byte
	// (v4's directory CRC covers the LSN).
	s.mu.RLock()
	data, err := s.encodeSnapshotAt(3)
	s.mu.RUnlock()
	if err != nil {
		t.Fatal(err)
	}
	for i := snapHeaderLen; i < snapHeaderLen+8; i++ {
		data[i] = 0
	}
	return data[:len(data)-snapTrailerLen]
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir, DurableOptions{})
	if err := d.CreateTable(durableSchema()); err != nil {
		t.Fatal(err)
	}
	if err := d.CreateIndex("impls", "size"); err != nil {
		t.Fatal(err)
	}
	rows := []Row{
		{"name": "add8", "comp": "adder", "size": 8, "area": 120.5, "param": true},
		{"name": "add16", "comp": "adder", "size": 16, "area": 230.0, "param": true},
		// Key parts exercising the \x00 separator and escape bytes.
		{"name": "a\x00b", "comp": "mux\\esc", "size": 2, "area": 1.0, "param": false},
	}
	for _, r := range rows {
		if err := d.Insert("impls", r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Update("impls", Eq("name", "add16"), func(r Row) Row {
		r["area"] = 999.0
		return r
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Delete("impls", Eq("name", "add8")); err != nil {
		t.Fatal(err)
	}
	want := stateOf(t, d.Store)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// No Compact was called: the catalog lives entirely in the journal.
	if _, err := os.Stat(filepath.Join(dir, "cat.snap")); !os.IsNotExist(err) {
		t.Fatalf("snapshot file exists without a compaction (stat err %v)", err)
	}

	d2 := openDurable(t, dir, DurableOptions{})
	defer d2.Close()
	if got := stateOf(t, d2.Store); !bytes.Equal(got, want) {
		t.Error("recovered state differs from pre-close state")
	}
	ri := d2.Recovery()
	if ri.SnapshotLoaded || ri.Truncated || ri.Replayed != 7 {
		t.Errorf("recovery = %+v, want no snapshot, no truncation, 7 records", ri)
	}
	if got, err := d2.Get("impls", "mux\\esc", "a\x00b"); err != nil || got["size"] != 2 {
		t.Errorf("escaped-key row after recovery: %v, %v", got, err)
	}
	if _, err := d2.Get("impls", "adder", "add8"); err == nil {
		t.Error("deleted row resurrected by recovery")
	}
}

func TestJournalEmptyJournalAndFreshOpen(t *testing.T) {
	dir := t.TempDir()
	// Fresh open: no snapshot, no journal.
	d := openDurable(t, dir, DurableOptions{})
	if ri := d.Recovery(); ri.SnapshotLoaded || ri.Replayed != 0 {
		t.Errorf("fresh open recovery = %+v", ri)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Second open: header-only journal, zero records.
	d2 := openDurable(t, dir, DurableOptions{})
	if ri := d2.Recovery(); ri.Replayed != 0 || ri.Truncated {
		t.Errorf("header-only journal recovery = %+v", ri)
	}
	d2.Close()
	// A zero-byte journal (created but never written) is treated as
	// absent, not corrupt.
	if err := os.WriteFile(filepath.Join(dir, "cat.snap.wal"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	d3 := openDurable(t, dir, DurableOptions{})
	if ri := d3.Recovery(); ri.Replayed != 0 {
		t.Errorf("zero-byte journal recovery = %+v", ri)
	}
	d3.Close()
}

// seedJournal creates a journaled catalog with n inserted rows and no
// compaction, returning the journal path and the state fingerprint
// after each record (fingerprints[i] = state once i records applied).
func seedJournal(t *testing.T, dir string, n int) (string, [][]byte) {
	t.Helper()
	d := openDurable(t, dir, DurableOptions{})
	shadow := New()
	states := [][]byte{stateOf(t, shadow)}
	step := func(f func(s *Store) error) {
		t.Helper()
		if err := f(d.Store); err != nil {
			t.Fatal(err)
		}
		if err := f(shadow); err != nil {
			t.Fatal(err)
		}
		states = append(states, stateOf(t, shadow))
	}
	step(func(s *Store) error { return s.CreateTable(durableSchema()) })
	for i := 0; i < n; i++ {
		r := Row{"name": fmt.Sprintf("impl%02d", i), "comp": "alu", "size": i, "area": float64(i), "param": i%2 == 0}
		step(func(s *Store) error { return s.Insert("impls", r) })
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, "cat.snap.wal"), states
}

func TestJournalTornTailTruncatesAtEveryOffset(t *testing.T) {
	seedDir := t.TempDir()
	jpath, states := seedJournal(t, seedDir, 6)
	jdata, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}

	// recordEnds[i] = byte offset where record i ends.
	var recordEnds []int64
	for off := int64(walHeaderLen); off < int64(len(jdata)); {
		ln := int64(binary.LittleEndian.Uint32(jdata[off:]))
		off += walFrameLen + ln
		recordEnds = append(recordEnds, off)
	}
	if len(recordEnds) != len(states)-1 || recordEnds[len(recordEnds)-1] != int64(len(jdata)) {
		t.Fatalf("frame scan found %d records ending at %v, file is %d bytes", len(recordEnds), recordEnds, len(jdata))
	}

	for cut := walHeaderLen; cut <= len(jdata); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "cat.snap.wal"), jdata[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		d, err := OpenDurable(filepath.Join(dir, "cat.snap"), DurableOptions{})
		if err != nil {
			t.Fatalf("cut=%d: recovery failed: %v", cut, err)
		}
		complete := 0
		for _, end := range recordEnds {
			if end <= int64(cut) {
				complete++
			}
		}
		if got := stateOf(t, d.Store); !bytes.Equal(got, states[complete]) {
			t.Errorf("cut=%d: recovered state is not the %d-record prefix", cut, complete)
		}
		ri := d.Recovery()
		// A cut exactly on a record boundary leaves no torn bytes — that
		// is a clean (if short) journal, not a truncation.
		boundary := int64(walHeaderLen)
		if complete > 0 {
			boundary = recordEnds[complete-1]
		}
		wantTorn := int64(cut) != boundary
		if ri.Truncated != wantTorn || ri.Replayed != complete {
			t.Errorf("cut=%d: recovery = %+v, want truncated=%v replayed=%d", cut, ri, wantTorn, complete)
		}
		if wantTorn && ri.TruncatedAt != boundary {
			t.Errorf("cut=%d: truncated at %d, want %d", cut, ri.TruncatedAt, boundary)
		}
		// The truncation is physical: a second open is clean.
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		d2, err := OpenDurable(filepath.Join(dir, "cat.snap"), DurableOptions{})
		if err != nil {
			t.Fatalf("cut=%d: second open: %v", cut, err)
		}
		if ri2 := d2.Recovery(); ri2.Truncated {
			t.Errorf("cut=%d: second open still sees a torn tail", cut)
		}
		d2.Close()
	}
}

func TestJournalRejectsMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	jpath, _ := seedJournal(t, dir, 6)
	jdata, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the FIRST record: valid records follow, so
	// this is not a torn tail and must be rejected, not truncated.
	bad := append([]byte(nil), jdata...)
	bad[walHeaderLen+walFrameLen] ^= 0xFF
	if err := os.WriteFile(jpath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenDurable(filepath.Join(dir, "cat.snap"), DurableOptions{})
	if err == nil || !strings.Contains(err.Error(), "corrupt record") {
		t.Fatalf("mid-file corruption: %v, want corrupt-record error", err)
	}
	// The same flip in the LAST record is a torn write: truncate.
	bad = append([]byte(nil), jdata...)
	lastStart := int64(walHeaderLen)
	for off := int64(walHeaderLen); off < int64(len(jdata)); {
		lastStart = off
		off += walFrameLen + int64(binary.LittleEndian.Uint32(jdata[off:]))
	}
	bad[lastStart+walFrameLen] ^= 0xFF
	if err := os.WriteFile(jpath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDurable(filepath.Join(dir, "cat.snap"), DurableOptions{})
	if err != nil {
		t.Fatalf("torn final record: %v", err)
	}
	defer d.Close()
	if ri := d.Recovery(); !ri.Truncated || ri.TruncatedAt != lastStart {
		t.Errorf("torn final record: recovery = %+v, want truncation at %d", ri, lastStart)
	}
}

func TestJournalRejectsBadMagicAndVersion(t *testing.T) {
	dir := t.TempDir()
	jpath, _ := seedJournal(t, dir, 1)
	jdata, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	open := func() error {
		_, err := OpenDurable(filepath.Join(dir, "cat.snap"), DurableOptions{})
		return err
	}
	bad := append([]byte(nil), jdata...)
	copy(bad, "NOTAJRNL")
	os.WriteFile(jpath, bad, 0o644)
	if err := open(); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic: %v", err)
	}
	bad = append([]byte(nil), jdata...)
	binary.LittleEndian.PutUint32(bad[len(walMagic):], 99)
	os.WriteFile(jpath, bad, 0o644)
	if err := open(); err == nil || !strings.Contains(err.Error(), "unsupported version 99") {
		t.Errorf("bad version: %v", err)
	}
	// Shorter than the header (but non-empty): not a journal either.
	os.WriteFile(jpath, jdata[:walHeaderLen-3], 0o644)
	if err := open(); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("short header: %v", err)
	}
}

// TestJournalCompactionCrashWindowReplay reconstructs the compaction
// crash window — new snapshot durable, journal not yet trimmed — and
// asserts the folded records are skipped, not re-applied. Replay is
// strict (a re-applied Insert would fail on the duplicate key), so a
// clean open proves exactly-once.
func TestJournalCompactionCrashWindowReplay(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir, DurableOptions{})
	if err := d.CreateTable(durableSchema()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		r := Row{"name": fmt.Sprintf("i%d", i), "comp": "c", "size": i, "area": 0.0, "param": false}
		if err := d.Insert("impls", r); err != nil {
			t.Fatal(err)
		}
	}
	jpath := filepath.Join(dir, "cat.snap.wal")
	preCompact, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	// One more record after the fold point.
	if err := d.Insert("impls", Row{"name": "late", "comp": "c", "size": 99, "area": 0.0, "param": true}); err != nil {
		t.Fatal(err)
	}
	postCompact, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	want := stateOf(t, d.Store)
	d.Close()

	// Rewind the journal to its pre-compaction contents plus the late
	// record's frame: exactly what a crash before truncateTo leaves.
	lateFrame := postCompact[walHeaderLen:]
	if err := os.WriteFile(jpath, append(append([]byte(nil), preCompact...), lateFrame...), 0o644); err != nil {
		t.Fatal(err)
	}
	d2 := openDurable(t, dir, DurableOptions{})
	defer d2.Close()
	if got := stateOf(t, d2.Store); !bytes.Equal(got, want) {
		t.Error("crash-window recovery diverged from pre-crash state")
	}
	ri := d2.Recovery()
	if !ri.SnapshotLoaded || ri.Replayed != 1 {
		t.Errorf("crash-window recovery = %+v, want snapshot + exactly 1 replayed record", ri)
	}
}

func TestJournalSnapshotPairMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir, DurableOptions{})
	if err := d.CreateTable(durableSchema()); err != nil {
		t.Fatal(err)
	}
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	d.Close()
	// Replace the snapshot with one that never saw the journal: its
	// covered LSN (0) is below the journal's base (1), so records are
	// missing and the open must refuse.
	if err := New().SaveSnapshot(filepath.Join(dir, "cat.snap")); err != nil {
		t.Fatal(err)
	}
	_, err := OpenDurable(filepath.Join(dir, "cat.snap"), DurableOptions{})
	if err == nil || !strings.Contains(err.Error(), "only covers") {
		t.Fatalf("mismatched pair: %v, want missing-records error", err)
	}
}

func TestJournalRequiresKeyedTables(t *testing.T) {
	keyless := Schema{Table: "log", Columns: []Column{{Name: "msg", Type: TString}}}
	dir := t.TempDir()
	d := openDurable(t, dir, DurableOptions{})
	defer d.Close()
	if err := d.CreateTable(keyless); err == nil || !strings.Contains(err.Error(), "keyed") {
		t.Errorf("journaled CreateTable of keyless table: %v", err)
	}
	// A pre-existing snapshot with a keyless table is rejected at open.
	dir2 := t.TempDir()
	s := New()
	if err := s.CreateTable(keyless); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveSnapshot(filepath.Join(dir2, "cat.snap")); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurable(filepath.Join(dir2, "cat.snap"), DurableOptions{}); err == nil ||
		!strings.Contains(err.Error(), "no primary key") {
		t.Errorf("open over keyless snapshot: %v", err)
	}
}

func TestJournalNoOpMutationsStaySilent(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir, DurableOptions{})
	defer d.Close()
	if err := d.CreateTable(durableSchema()); err != nil {
		t.Fatal(err)
	}
	r := Row{"name": "x", "comp": "c", "size": 1, "area": 2.0, "param": true}
	if err := d.Insert("impls", r); err != nil {
		t.Fatal(err)
	}
	gen, recs := d.Generation(), d.Info().Records
	// Value-equal upsert and update: no journal record, no generation
	// bump — re-seeding an already-seeded catalog must be free.
	if err := d.Upsert("impls", r); err != nil {
		t.Fatal(err)
	}
	if n, err := d.Update("impls", Eq("name", "x"), func(r Row) Row { return r }); err != nil || n != 1 {
		t.Fatalf("no-op update: n=%d err=%v", n, err)
	}
	if d.Generation() != gen || d.Info().Records != recs {
		t.Errorf("no-op mutations moved generation %d->%d, records %d->%d",
			gen, d.Generation(), recs, d.Info().Records)
	}
	// An effective mutation moves both.
	r["size"] = 2
	if err := d.Upsert("impls", r); err != nil {
		t.Fatal(err)
	}
	if d.Generation() == gen || d.Info().Records == recs {
		t.Error("effective upsert left generation/records unchanged")
	}
}

func TestJournalCompactionThresholdAuto(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir, DurableOptions{Fsync: FsyncOff, CompactAt: 2048})
	defer d.Close()
	if err := d.CreateTable(durableSchema()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		r := Row{"name": fmt.Sprintf("impl%03d", i), "comp": "alu", "size": i, "area": float64(i), "param": false}
		if err := d.Insert("impls", r); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for d.Info().Compactions == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("auto-compaction never ran (journal %d bytes)", d.Info().JournalBytes)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if info := d.Info(); info.JournalBytes >= 2048 && info.Records > 100 {
		t.Errorf("journal did not shrink after compaction: %+v", info)
	}
	if _, err := LoadSnapshot(filepath.Join(dir, "cat.snap")); err != nil {
		t.Errorf("compacted snapshot unreadable: %v", err)
	}
}

func TestJournalFsyncIntervalTicker(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir, DurableOptions{Fsync: FsyncInterval, FsyncInterval: 5 * time.Millisecond})
	defer d.Close()
	if err := d.CreateTable(durableSchema()); err != nil {
		t.Fatal(err)
	}
	base := d.Info().Syncs
	if err := d.Insert("impls", Row{"name": "x", "comp": "c", "size": 1, "area": 0.0, "param": false}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for d.Info().Syncs == base {
		if time.Now().After(deadline) {
			t.Fatal("interval ticker never synced the dirty journal")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestJournalRecoverDeterministicProperty is the seeded-random
// property: build a catalog through a random journaled mutation
// sequence, "crash" (drop the store without Close), and recover. The
// recovered state must equal a shadow store that applied the same
// mutations, and recovering twice then saving must be byte-identical —
// recovery is deterministic, Save → crash → recover → Save reproduces
// the file exactly.
func TestJournalRecoverDeterministicProperty(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewPCG(seed, seed))
		dir := t.TempDir()
		d := openDurable(t, dir, DurableOptions{Fsync: FsyncOff, CompactAt: -1})
		shadow := New()
		both := func(f func(s *Store) error) {
			t.Helper()
			if err := f(d.Store); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if err := f(shadow); err != nil {
				t.Fatalf("seed %d (shadow): %v", seed, err)
			}
		}
		both(func(s *Store) error { return s.CreateTable(durableSchema()) })
		var keys []string
		for op := 0; op < 120; op++ {
			switch k := rng.IntN(10); {
			case k < 5 || len(keys) == 0: // insert
				name := fmt.Sprintf("impl%04d", rng.IntN(10000))
				r := Row{"name": name, "comp": "c", "size": rng.IntN(64), "area": float64(rng.IntN(1000)) / 4, "param": rng.IntN(2) == 0}
				if _, err := shadow.Get("impls", "c", name); err == nil {
					both(func(s *Store) error { return s.Upsert("impls", r) })
				} else {
					both(func(s *Store) error { return s.Insert("impls", r) })
					keys = append(keys, name)
				}
			case k < 7: // update in place
				name := keys[rng.IntN(len(keys))]
				area := float64(rng.IntN(1000))
				both(func(s *Store) error {
					_, err := s.Update("impls", And(Eq("comp", "c"), Eq("name", name)), func(r Row) Row {
						r["area"] = area
						return r
					})
					return err
				})
			case k < 8: // re-key
				i := rng.IntN(len(keys))
				old, next := keys[i], fmt.Sprintf("renamed%04d", rng.IntN(10000))
				if _, err := shadow.Get("impls", "c", next); err == nil {
					continue // target key taken; skip
				}
				both(func(s *Store) error {
					_, err := s.Update("impls", And(Eq("comp", "c"), Eq("name", old)), func(r Row) Row {
						r["name"] = next
						return r
					})
					return err
				})
				keys[i] = next
			default: // delete
				i := rng.IntN(len(keys))
				both(func(s *Store) error {
					_, err := s.Delete("impls", And(Eq("comp", "c"), Eq("name", keys[i])))
					return err
				})
				keys[i] = keys[len(keys)-1]
				keys = keys[:len(keys)-1]
			}
			if op == 60 {
				// Mid-sequence fold point: recovery crosses snapshot+journal.
				if err := d.Compact(); err != nil {
					t.Fatalf("seed %d: compact: %v", seed, err)
				}
			}
		}
		want := stateOf(t, shadow)
		// Crash: abandon d without Close. FsyncOff means nothing was
		// synced since the compaction, but the OS file still holds every
		// written byte — equivalent to faultfile's KeepAll image.
		if got := stateOf(t, d.Store); !bytes.Equal(got, want) {
			t.Fatalf("seed %d: live store diverged from shadow (test bug)", seed)
		}

		r1 := openDurable(t, dir, DurableOptions{})
		if got := stateOf(t, r1.Store); !bytes.Equal(got, want) {
			t.Errorf("seed %d: recovered state differs from shadow", seed)
		}
		p1 := filepath.Join(dir, "save1.snap")
		if err := r1.SaveSnapshot(p1); err != nil {
			t.Fatal(err)
		}
		r1.Close()
		r2 := openDurable(t, dir, DurableOptions{})
		p2 := filepath.Join(dir, "save2.snap")
		if err := r2.SaveSnapshot(p2); err != nil {
			t.Fatal(err)
		}
		r2.Close()
		b1, _ := os.ReadFile(p1)
		b2, _ := os.ReadFile(p2)
		if len(b1) == 0 || !bytes.Equal(b1, b2) {
			t.Errorf("seed %d: recover → Save is not byte-identical across recoveries", seed)
		}
	}
}
