// The filesystem seam the durability layer (journal.go) writes
// through. Production code runs on the real OS filesystem (osFS);
// the crash-torture suite swaps in faultfile's in-memory
// fault-injecting implementation to kill the store at every write,
// sync, and rename and assert recovery — the same
// inject-at-the-boundary discipline wire/faultconn established for
// the network layer.

package relstore

import (
	"fmt"
	"io"
	"os"
)

// File is one open journal or snapshot file: sequential writes, an
// explicit durability barrier, and close. It is the narrow surface the
// write-ahead journal needs — no seeks, no reads (recovery reads whole
// files through FS.ReadFile).
type File interface {
	io.Writer
	// Sync flushes everything written so far to stable storage. The
	// journal's fsync policy decides how often it runs; the crash model
	// (see faultfile) is that only synced bytes are guaranteed to
	// survive a crash.
	Sync() error
	// Close releases the file. It does not imply Sync.
	Close() error
}

// FS is the filesystem the durability layer operates on. The journal
// protocol only ever appends to open files, replaces files via
// write-temp/sync/rename, and reads whole files at recovery — so this
// is the whole interface. Implementations: the package-default OS
// filesystem, and faultfile.FS for crash injection in tests.
type FS interface {
	// ReadFile returns the full contents of path, or an error wrapping
	// os.ErrNotExist when it does not exist.
	ReadFile(path string) ([]byte, error)
	// Create opens path for writing, truncating it if it exists.
	Create(path string) (File, error)
	// OpenAppend opens an existing path for appending.
	OpenAppend(path string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes path.
	Remove(path string) error
}

// osFS is the real filesystem; DurableOptions.FS defaults to it.
type osFS struct{}

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (osFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(path string) error { return os.Remove(path) }

// writeAtomicFS writes data to path through fsys with the same
// crash-safe protocol as writeFileAtomic: stage in a temp file in the
// same directory, sync, close, rename. Either the old file or the
// complete new one is visible at path at every instant.
func writeAtomicFS(fsys FS, path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("relstore: save %s: %w", path, err)
	}
	fail := func(err error) error {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("relstore: save %s: %w", path, err)
	}
	if _, err := f.Write(data); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("relstore: save %s: %w", path, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("relstore: save %s: %w", path, err)
	}
	return nil
}
