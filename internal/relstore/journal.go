// Write-ahead journal: crash-safe incremental persistence between
// full snapshots. The wire format and recovery rules live in
// JOURNAL.md; the short version:
//
//   - A Durable store appends one CRC-32C-checksummed record per
//     mutation (Insert/Upsert/Update/Delete, CreateTable/CreateIndex/
//     DropTable) to an append-only journal file *before* applying the
//     mutation in memory, under the store's write lock, with a
//     configurable fsync policy. A mutation is acknowledged only after
//     its record is in the journal.
//   - OpenDurable recovers by loading the snapshot (if any) and
//     replaying the journal. A torn or partially-written tail —
//     the expected shape of a crash mid-append — is truncated at the
//     last valid record; a corrupt record with valid records after it
//     is rejected as real corruption, never silently dropped.
//   - Replay is exactly-once: every record has an implicit sequence
//     number (the journal header's base LSN plus its position), each
//     snapshot is stamped with the LSN it covers, and recovery skips
//     records below that mark. That makes compaction crash-safe:
//     Compact writes a fresh snapshot (temp + fsync + rename) and only
//     then rewrites the journal without the folded prefix; a crash
//     between the two steps leaves folded records in the file, but the
//     new snapshot's covered LSN keeps them from re-applying. Records
//     address rows by primary key (rowids are not stable across a
//     snapshot reload), so journaled tables must declare one.
//   - The journal is fail-stop: if an append or sync fails partway,
//     later bytes could land after a torn record and become
//     unrecoverable, so the first failure poisons the journal and
//     every subsequent mutation errors until the store is reopened.
//     Recovery then truncates the torn record — nothing after it was
//     ever acknowledged.

package relstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

const (
	// walMagic opens every journal file, followed by a u32 version and a
	// u64 base LSN.
	walMagic = "ICDBJRNL"
	// walVersion is the current journal format version.
	walVersion = 1
	// walHeaderLen is magic + version + base LSN. The base LSN is the
	// sequence number of the file's first record: record i carries LSN
	// base+i implicitly, and compaction bumps the base as it drops the
	// folded prefix. Recovery skips records below the snapshot's covered
	// LSN, which makes replay exactly-once — the compaction crash window
	// (new snapshot durable, journal not yet trimmed) re-reads folded
	// records but never re-applies them.
	walHeaderLen = len(walMagic) + 4 + 8
	// walFrameLen is the per-record frame: u32 payload length + u32
	// CRC-32C of the payload.
	walFrameLen = 8
	// walMaxRecord bounds one record's payload (a multi-row Update or
	// Delete batch is one record); larger declared lengths are treated
	// as garbage framing.
	walMaxRecord = 64 << 20
)

// Journal record opcodes (first payload byte).
const (
	walOpCreateTable = 1
	walOpCreateIndex = 2
	walOpDropTable   = 3
	walOpInsert      = 4
	walOpUpsert      = 5
	walOpUpdate      = 6
	walOpDelete      = 7
)

// Journal value tags (self-describing scalar encoding).
const (
	walValString = 0
	walValInt    = 1
	walValFloat  = 2
	walValBool   = 3
)

// FsyncPolicy says when the journal flushes appended records to stable
// storage. The policy is the durability/latency trade-off knob: what a
// crash can lose is exactly the records appended since the last sync.
type FsyncPolicy int

// Fsync policies.
const (
	// FsyncAlways syncs after every record: an acknowledged mutation
	// survives any crash. The default.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs at most once per DurableOptions.FsyncInterval
	// (a background ticker catches the idle tail): a crash loses at
	// most the last interval's acknowledged records.
	FsyncInterval
	// FsyncOff never syncs except on Close and compaction: a crash may
	// lose any acknowledged record since the last durable point, but
	// recovery still yields a clean prefix of them.
	FsyncOff
)

// String names the policy the way the icdbd -fsync flag spells it.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncOff:
		return "off"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// DurableOptions configures OpenDurable. The zero value is a journal
// next to the snapshot (path + ".wal"), fsync on every record, a 4 MiB
// auto-compaction threshold, and the real filesystem.
type DurableOptions struct {
	// Journal is the journal file path; empty defaults to the snapshot
	// path + ".wal".
	Journal string
	// Fsync is the sync policy; the zero value is FsyncAlways.
	Fsync FsyncPolicy
	// FsyncInterval is the FsyncInterval period; the zero value is
	// 100ms. Ignored by the other policies.
	FsyncInterval time.Duration
	// CompactAt is the journal size in bytes that triggers an automatic
	// background compaction; 0 uses the 4 MiB default and a negative
	// value disables auto-compaction (Compact can still be called).
	CompactAt int64
	// FS is the filesystem to operate on; nil is the real one. The
	// crash-torture tests inject faultfile.FS here.
	FS FS
	// Open selects how the snapshot at the store path is decoded: the
	// zero value is a full eager decode; OpenLazy defers each table's
	// rows to first touch and, with them, the replay of that table's
	// uncovered journal records (see RecoveryInfo.Deferred). v2/v3
	// snapshots and JSON catalogs always open eagerly.
	Open OpenMode
	// OpenWorkers bounds eager v4 decode parallelism: 0 means
	// GOMAXPROCS, 1 decodes serially.
	OpenWorkers int
}

// RecoveryInfo describes what OpenDurable found and did.
type RecoveryInfo struct {
	// SnapshotLoaded reports whether a snapshot (or JSON catalog)
	// existed at the store path.
	SnapshotLoaded bool
	// Replayed is the number of journal records applied at open.
	Replayed int
	// Deferred is the number of journal records whose replay a lazy
	// open handed to table hydration instead of applying at open.
	Deferred int
	// Truncated reports whether a torn tail was cut off the journal.
	Truncated bool
	// TruncatedAt is the byte offset of the cut when Truncated.
	TruncatedAt int64
}

// String renders the outcome for logs and "show server": "clean" or
// "truncated torn tail at offset N", plus the replay count.
func (ri RecoveryInfo) String() string {
	src := "no snapshot"
	if ri.SnapshotLoaded {
		src = "snapshot"
	}
	replay := fmt.Sprintf("%s + %d journal record(s)", src, ri.Replayed)
	if ri.Deferred > 0 {
		replay += fmt.Sprintf(", %d deferred to hydration", ri.Deferred)
	}
	if ri.Truncated {
		return fmt.Sprintf("truncated torn tail at offset %d (%s)", ri.TruncatedAt, replay)
	}
	return fmt.Sprintf("clean (%s)", replay)
}

// DurabilityInfo is a snapshot of a Durable store's journal state, the
// numbers behind "show server"'s durability lines.
type DurabilityInfo struct {
	JournalPath string
	// Policy is the fsync policy, rendered ("always", "interval(1s)",
	// "off").
	Policy string
	// JournalBytes is the journal file's current size.
	JournalBytes int64
	// Records is the record count in the journal — the mutations not
	// yet folded into the snapshot by compaction.
	Records int64
	// Appends and Syncs count journal appends and fsyncs since open.
	Appends int64
	Syncs   int64
	// Compactions counts completed compactions since open.
	Compactions int64
	// Recovery is what OpenDurable found.
	Recovery RecoveryInfo
}

// errWALClosed poisons the journal after Close.
var errWALClosed = errors.New("journal is closed")

// wal is the open journal file and its bookkeeping. Appends happen
// under the owning Store's write lock (then wal.mu); compaction takes
// only wal.mu for the file swap, so rotating never blocks readers.
type wal struct {
	fs   FS
	path string

	mu       sync.Mutex
	f        File
	size     int64 // file size including header
	base     int64 // LSN of the file's first record
	records  int64 // records in the file (since last compaction)
	appends  int64
	syncs    int64
	dirty    bool // bytes written since the last sync
	broken   error
	policy   FsyncPolicy
	interval time.Duration
	lastSync time.Time

	// compaction trigger: append signals notify (non-blocking) when
	// size crosses compactAt.
	compactAt int64
	notify    chan struct{}
}

// append frames payload (length + CRC-32C), writes it, and applies the
// fsync policy. The caller holds the store write lock, so record order
// in the file is apply order in memory.
func (w *wal) append(payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken != nil {
		return fmt.Errorf("relstore: journal %s unusable after earlier failure: %w", w.path, w.broken)
	}
	frame := make([]byte, walFrameLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, snapCRC))
	copy(frame[walFrameLen:], payload)
	if _, err := w.f.Write(frame); err != nil {
		// The file may now end in a torn record; anything appended after
		// it would be unreachable at recovery. Fail-stop.
		w.broken = err
		return fmt.Errorf("relstore: journal %s: %w", w.path, err)
	}
	w.size += int64(len(frame))
	w.records++
	w.appends++
	w.dirty = true
	switch w.policy {
	case FsyncAlways:
		if err := w.syncLocked(); err != nil {
			return err
		}
	case FsyncInterval:
		if time.Since(w.lastSync) >= w.interval {
			if err := w.syncLocked(); err != nil {
				return err
			}
		}
	}
	if w.notify != nil && w.compactAt > 0 && w.size >= w.compactAt {
		select {
		case w.notify <- struct{}{}:
		default:
		}
	}
	return nil
}

func (w *wal) syncLocked() error {
	if err := w.f.Sync(); err != nil {
		w.broken = err
		return fmt.Errorf("relstore: journal %s: sync: %w", w.path, err)
	}
	w.syncs++
	w.dirty = false
	w.lastSync = time.Now()
	return nil
}

// syncIfDirty is the background ticker's flush for FsyncInterval.
func (w *wal) syncIfDirty() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken != nil || !w.dirty {
		return nil
	}
	return w.syncLocked()
}

// position returns the journal's current (base, records, size): the
// next LSN is base+records and size is the byte cut for compaction.
// Called under the store's write-excluding lock so the cut is
// consistent with the in-memory state.
func (w *wal) position() (base, records, size int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.base, w.records, w.size
}

// truncateTo rewrites the journal keeping only the bytes past cut —
// the records appended after a compaction captured its snapshot — via
// the same temp/sync/rename protocol as snapshots, then reopens for
// append. recs records are dropped from the count and the base LSN
// advances past them.
func (w *wal) truncateTo(cut, recs int64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken != nil {
		return fmt.Errorf("relstore: journal %s unusable after earlier failure: %w", w.path, w.broken)
	}
	all, err := w.fs.ReadFile(w.path)
	if err != nil || int64(len(all)) < cut {
		if err == nil {
			err = fmt.Errorf("journal shrank below compaction cut %d", cut)
		}
		w.broken = err
		return fmt.Errorf("relstore: journal %s: %w", w.path, err)
	}
	w.f.Close()
	nf, size, err := rewriteJournal(w.fs, w.path, w.base+recs, all[cut:])
	if err != nil {
		w.broken = err
		return fmt.Errorf("relstore: journal %s: %w", w.path, err)
	}
	w.f = nf
	w.size = size
	w.base += recs
	w.records -= recs
	w.dirty = false
	w.lastSync = time.Now()
	return nil
}

// close syncs and closes the journal, poisoning further appends.
func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken != nil {
		return w.f.Close()
	}
	var err error
	if w.dirty {
		err = w.f.Sync()
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.broken = errWALClosed
	return err
}

// rewriteJournal atomically replaces path with a fresh journal holding
// tail (already-framed record bytes, first record numbered base) and
// reopens it for append: write header+tail to a temp file, sync,
// rename, open. Used to create a new journal, cut a torn tail at
// recovery, and drop the folded prefix at compaction — in every case
// the bytes kept are synced before the rename, so the swap is atomic
// under the crash model.
func rewriteJournal(fsys FS, path string, base int64, tail []byte) (File, int64, error) {
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return nil, 0, err
	}
	var hdr [walHeaderLen]byte
	copy(hdr[:], walMagic)
	binary.LittleEndian.PutUint32(hdr[len(walMagic):], walVersion)
	binary.LittleEndian.PutUint64(hdr[len(walMagic)+4:], uint64(base))
	if _, err := f.Write(hdr[:]); err == nil && len(tail) > 0 {
		_, err = f.Write(tail)
	}
	if err != nil {
		f.Close()
		fsys.Remove(tmp)
		return nil, 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return nil, 0, err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return nil, 0, err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return nil, 0, err
	}
	nf, err := fsys.OpenAppend(path)
	if err != nil {
		return nil, 0, err
	}
	return nf, int64(walHeaderLen + len(tail)), nil
}

// Durable is a Store whose mutations are write-ahead journaled: every
// Insert/Upsert/Update/Delete (and schema change) on the embedded
// Store appends a checksummed record to the journal before it applies,
// so a crash at any instant recovers, via OpenDurable, to exactly a
// prefix of the acknowledged mutations — all of them under
// FsyncAlways. Compact folds the journal into a fresh snapshot. All
// methods are safe for concurrent use alongside the Store's own.
type Durable struct {
	*Store

	fs       FS
	path     string
	w        *wal
	recovery RecoveryInfo

	// compactMu serializes compactions; haveSnap (guarded by it) lets
	// a no-op compaction skip rewriting an unchanged snapshot.
	compactMu   sync.Mutex
	haveSnap    bool
	compactions atomic.Int64

	stop      chan struct{}
	loopDone  chan struct{}
	closeOnce sync.Once
	closeErr  error
}

// OpenDurable opens (or creates) a journaled store: it loads the
// snapshot at path if one exists (JSON catalogs are sniffed, like
// Load), replays the journal over it per the JOURNAL.md recovery
// rules, and attaches the journal so every further mutation is
// write-ahead logged. Journaled tables must declare a primary key —
// replay is key-addressed — so OpenDurable rejects catalogs with
// keyless tables. Close the store when done; an exiting process that
// skips Close loses nothing under FsyncAlways.
func OpenDurable(path string, opt DurableOptions) (*Durable, error) {
	fsys := opt.FS
	if fsys == nil {
		fsys = osFS{}
	}
	jpath := opt.Journal
	if jpath == "" {
		jpath = path + ".wal"
	}
	if opt.FsyncInterval <= 0 {
		opt.FsyncInterval = 100 * time.Millisecond
	}
	if opt.CompactAt == 0 {
		opt.CompactAt = 4 << 20
	}

	d := &Durable{fs: fsys, path: path, w: &wal{
		fs:       fsys,
		path:     jpath,
		policy:   opt.Fsync,
		interval: opt.FsyncInterval,
		lastSync: time.Now(),
	}}
	if opt.CompactAt > 0 {
		d.w.compactAt = opt.CompactAt
		d.w.notify = make(chan struct{}, 1)
	}

	// 1. Snapshot (or legacy JSON catalog), if present. The snapshot's
	// covered LSN says which journal records it already folds in.
	s := New()
	var snapLSN uint64
	if data, err := fsys.ReadFile(path); err == nil {
		if IsSnapshot(data) {
			if s, snapLSN, err = decodeSnapshotOpt(data, SnapshotOptions{Mode: opt.Open, Workers: opt.OpenWorkers}); err != nil {
				return nil, fmt.Errorf("relstore: open durable: load snapshot %s: %w", path, err)
			}
		} else if s, err = loadJSON(path, data); err != nil {
			return nil, fmt.Errorf("relstore: open durable: %w", err)
		}
		d.recovery.SnapshotLoaded = true
		d.haveSnap = true
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("relstore: open durable: %w", err)
	}
	for name, t := range s.tables {
		if t.pending != nil && t.pending.err != nil {
			// A poisoned lazy stub carries a placeholder schema; its real
			// one is unreadable. Let the open proceed — the section's
			// sticky error fires on first touch, like any lazy corruption.
			continue
		}
		if len(t.schema.Key) == 0 {
			return nil, fmt.Errorf("relstore: open durable %s: table %q has no primary key; journaled stores require keyed tables", path, name)
		}
	}

	// 2. Journal scan: validate framing, split records, find the torn
	// tail (if any) or reject mid-file corruption.
	var records [][]byte
	base := int64(snapLSN) // a fresh journal starts where the snapshot left off
	validEnd := int64(walHeaderLen)
	torn := false
	jdata, err := fsys.ReadFile(jpath)
	switch {
	case errors.Is(err, os.ErrNotExist) || (err == nil && len(jdata) == 0):
		jdata = nil
	case err != nil:
		return nil, fmt.Errorf("relstore: open durable: journal %s: %w", jpath, err)
	default:
		if len(jdata) < walHeaderLen || string(jdata[:len(walMagic)]) != walMagic {
			return nil, fmt.Errorf("relstore: open durable: journal %s: bad magic (not an ICDB journal)", jpath)
		}
		if v := binary.LittleEndian.Uint32(jdata[len(walMagic):]); v != walVersion {
			return nil, fmt.Errorf("relstore: open durable: journal %s: unsupported version %d (this build reads version %d)", jpath, v, walVersion)
		}
		base = int64(binary.LittleEndian.Uint64(jdata[len(walMagic)+4 : walHeaderLen]))
		if uint64(base) > snapLSN {
			return nil, fmt.Errorf("relstore: open durable: journal %s begins at LSN %d but snapshot %s only covers %d — records in between are missing (mismatched snapshot/journal pair?)",
				jpath, base, path, snapLSN)
		}
		off := int64(walHeaderLen)
		for off < int64(len(jdata)) {
			rem := int64(len(jdata)) - off
			if rem < walFrameLen {
				torn = true // frame header ran off the end: torn tail
				break
			}
			ln := int64(binary.LittleEndian.Uint32(jdata[off:]))
			sum := binary.LittleEndian.Uint32(jdata[off+4:])
			if ln == 0 || ln > walMaxRecord || ln > rem-walFrameLen {
				// Garbage or short framing: nothing past this point can be
				// parsed reliably, and a valid journal never produces it
				// mid-file — treat as the torn tail.
				torn = true
				break
			}
			payload := jdata[off+walFrameLen : off+walFrameLen+ln]
			if crc32.Checksum(payload, snapCRC) != sum {
				if off+walFrameLen+ln == int64(len(jdata)) {
					torn = true // checksum failed on the final record: torn write
					break
				}
				return nil, fmt.Errorf("relstore: open durable: journal %s: corrupt record at offset %d (checksum mismatch mid-journal, valid records follow)", jpath, off)
			}
			records = append(records, payload)
			off += walFrameLen + ln
			validEnd = off
		}
	}

	// 3. Replay the valid records the snapshot does not already cover.
	// Skipping below the covered LSN makes replay exactly-once: after a
	// crash between compaction's snapshot rename and its journal trim,
	// the folded prefix is still in the file but is never re-applied.
	skip := int64(snapLSN) - base
	if skip > int64(len(records)) {
		// The snapshot covers records the journal no longer holds (it was
		// trimmed, or this is a backup stamped mid-journal); nothing to
		// replay.
		skip = int64(len(records))
	}
	deferredCount := 0
	for i, payload := range records[skip:] {
		// Lazy open: a record whose target table is still a cold stub is
		// deferred — appended, in order, to the stub's replay list, which
		// hydration applies strictly exactly-once right after the row
		// decode. Records touch exactly one table each, so partitioning
		// them by table commutes with replay order. Structural records
		// (create/drop table) and records for live tables apply now; a
		// record naming a missing table still fails loudly here.
		if name, ok := walRecordTarget(payload); ok {
			if t, exists := s.tables[name]; exists && t.pending != nil {
				t.pending.deferred = append(t.pending.deferred, payload)
				s.deferredPending++
				deferredCount++
				continue
			}
		}
		if err := s.applyWALRecord(payload); err != nil {
			return nil, fmt.Errorf("relstore: open durable: journal %s: record %d (LSN %d): %w", jpath, int(skip)+i, base+skip+int64(i), err)
		}
	}
	d.recovery.Replayed = len(records) - int(skip) - deferredCount
	d.recovery.Deferred = deferredCount
	if torn {
		d.recovery.Truncated = true
		d.recovery.TruncatedAt = validEnd
	}

	// 4. Make the truncation physical (or create a fresh journal) and
	// open for append. An intact existing journal is opened in place.
	if jdata == nil || torn {
		var tail []byte
		if torn {
			tail = jdata[walHeaderLen:validEnd]
		}
		f, size, err := rewriteJournal(fsys, jpath, base, tail)
		if err != nil {
			return nil, fmt.Errorf("relstore: open durable: journal %s: %w", jpath, err)
		}
		d.w.f = f
		d.w.size = size
	} else {
		f, err := fsys.OpenAppend(jpath)
		if err != nil {
			return nil, fmt.Errorf("relstore: open durable: journal %s: %w", jpath, err)
		}
		d.w.f = f
		d.w.size = int64(len(jdata))
	}
	d.w.base = base
	d.w.records = int64(len(records))

	// 5. Attach: from here on every Store mutation is journaled first.
	s.wal = d.w
	d.Store = s

	if d.w.notify != nil || opt.Fsync == FsyncInterval {
		d.stop = make(chan struct{})
		d.loopDone = make(chan struct{})
		go d.run(opt.Fsync == FsyncInterval, opt.FsyncInterval)
	}
	return d, nil
}

// run is the background loop: auto-compaction on the size-threshold
// signal, and the interval-policy fsync ticker.
func (d *Durable) run(tick bool, interval time.Duration) {
	defer close(d.loopDone)
	var tickC <-chan time.Time
	if tick {
		t := time.NewTicker(interval)
		defer t.Stop()
		tickC = t.C
	}
	notify := d.w.notify
	for {
		select {
		case <-d.stop:
			return
		case <-notify:
			// Best-effort: a failed auto-compaction (disk full, say)
			// leaves the journal growing but intact; the next threshold
			// crossing retries, and mutations keep journaling.
			d.Compact()
		case <-tickC:
			d.w.syncIfDirty()
		}
	}
}

// Recovery reports what OpenDurable found and did.
func (d *Durable) Recovery() RecoveryInfo { return d.recovery }

// Info snapshots the journal's durability counters.
func (d *Durable) Info() DurabilityInfo {
	d.w.mu.Lock()
	policy := d.w.policy.String()
	if d.w.policy == FsyncInterval {
		policy = fmt.Sprintf("interval(%s)", d.w.interval)
	}
	info := DurabilityInfo{
		JournalPath:  d.w.path,
		Policy:       policy,
		JournalBytes: d.w.size,
		Records:      d.w.records,
		Appends:      d.w.appends,
		Syncs:        d.w.syncs,
	}
	d.w.mu.Unlock()
	info.Compactions = d.compactions.Load()
	info.Recovery = d.recovery
	return info
}

// Compact folds the journal into a fresh snapshot: encode the store
// under a read lock (capturing the journal cut the snapshot covers),
// write it atomically, then rewrite the journal without the folded
// prefix. Records appended during the snapshot write are carried into
// the rewritten journal. A crash at any point leaves a recoverable
// pair: before the snapshot rename the old snapshot+journal are
// intact; between the rename and the journal rewrite, recovery
// replays already-folded records over the new snapshot, which is a
// no-op by replay idempotence. When the journal is empty and a
// snapshot exists, Compact does nothing.
func (d *Durable) Compact() error {
	d.compactMu.Lock()
	defer d.compactMu.Unlock()
	// A lazily opened store must hydrate everything first: the snapshot
	// Compact writes covers the journal up to the cut, so no record may
	// still be waiting in a pending section when it is encoded.
	if err := d.Store.HydrateAll(); err != nil {
		return fmt.Errorf("relstore: compact: %w", err)
	}
	d.Store.mu.RLock()
	_, recs, cut := d.w.position()
	if recs == 0 && d.haveSnap {
		d.Store.mu.RUnlock()
		return nil
	}
	data, err := d.Store.encodeSnapshot()
	d.Store.mu.RUnlock()
	if err != nil {
		return fmt.Errorf("relstore: compact: %w", err)
	}
	if err := writeAtomicFS(d.fs, d.path, data); err != nil {
		return fmt.Errorf("relstore: compact: %w", err)
	}
	d.haveSnap = true
	if err := d.w.truncateTo(cut, recs); err != nil {
		return err
	}
	d.compactions.Add(1)
	return nil
}

// Close stops the background loop, syncs, and closes the journal.
// Further mutations on the store fail; reads keep working. Close does
// not compact — callers that want a fresh snapshot (icdbd's shutdown
// drain) call Compact first.
func (d *Durable) Close() error {
	d.closeOnce.Do(func() {
		if d.stop != nil {
			close(d.stop)
			<-d.loopDone
		}
		d.closeErr = d.w.close()
	})
	return d.closeErr
}

// --- record encoding -------------------------------------------------

// logWAL builds one record payload and appends it to the journal; a
// Store without a journal attached skips it for free. Callers hold the
// store write lock and call logWAL after validating the mutation and
// before applying it (write-ahead ordering).
func (s *Store) logWAL(build func(w *snapWriter)) error {
	if s.wal == nil || s.replaying {
		// replaying: hydration is re-applying records that are already in
		// the journal — appending them again would double them on the
		// next recovery.
		return nil
	}
	var buf bytes.Buffer
	w := &snapWriter{buf: &buf}
	build(w)
	return s.wal.append(buf.Bytes())
}

// walValue writes one canonical scalar with its type tag.
func walValue(w *snapWriter, v any) {
	switch v := v.(type) {
	case string:
		w.u8(walValString)
		w.str(v)
	case int:
		w.u8(walValInt)
		w.u64(uint64(int64(v)))
	case float64:
		w.u8(walValFloat)
		w.u64(math.Float64bits(v))
	case bool:
		w.u8(walValBool)
		b := uint8(0)
		if v {
			b = 1
		}
		w.u8(b)
	default:
		// Unreachable: rows are canonicalized before encoding. Encode a
		// rendered string so the record stays parseable either way.
		w.u8(walValString)
		w.str(fmt.Sprintf("%v", v))
	}
}

// walRow writes a canonical row in schema column order.
func walRow(w *snapWriter, t *table, r Row) {
	w.u32(uint32(len(t.schema.Columns)))
	for _, c := range t.schema.Columns {
		w.str(c.Name)
		walValue(w, r[c.Name])
	}
}

// walKey writes a row's primary-key values in Schema.Key order.
func walKey(w *snapWriter, t *table, r Row) {
	w.u32(uint32(len(t.schema.Key)))
	for _, k := range t.schema.Key {
		walValue(w, r[k])
	}
}

// walSchema writes a Schema, mirroring the snapshot section header.
func walSchema(w *snapWriter, sc Schema) {
	w.str(sc.Table)
	w.u32(uint32(len(sc.Columns)))
	for _, c := range sc.Columns {
		w.str(c.Name)
		w.u8(uint8(c.Type))
	}
	w.u32(uint32(len(sc.Key)))
	for _, k := range sc.Key {
		w.str(k)
	}
	w.u32(uint32(len(sc.Indexes)))
	for _, ix := range sc.Indexes {
		w.u32(uint32(len(ix.Columns)))
		for _, c := range ix.Columns {
			w.str(c)
		}
	}
}

// --- record decoding and replay --------------------------------------

func readWALValue(r *snapReader) any {
	switch tag := r.u8(); tag {
	case walValString:
		return r.str()
	case walValInt:
		return int(int64(r.u64()))
	case walValFloat:
		return math.Float64frombits(r.u64())
	case walValBool:
		return r.u8() != 0
	default:
		if r.err == nil {
			r.err = fmt.Errorf("unknown value tag %d at offset %d", tag, r.off-1)
		}
		return nil
	}
}

func readWALRow(r *snapReader) Row {
	n := int(r.u32())
	if r.err != nil || n < 0 || n > len(r.b) {
		return nil
	}
	row := make(Row, n)
	for i := 0; i < n && r.err == nil; i++ {
		name := r.str()
		row[name] = readWALValue(r)
	}
	return row
}

func readWALKey(r *snapReader) []any {
	n := int(r.u32())
	if r.err != nil || n < 0 || n > len(r.b) {
		return nil
	}
	vals := make([]any, n)
	for i := 0; i < n && r.err == nil; i++ {
		vals[i] = readWALValue(r)
	}
	return vals
}

func readWALSchema(r *snapReader) Schema {
	sc := Schema{Table: r.str()}
	nCols := int(r.u32())
	for i := 0; i < nCols && r.err == nil; i++ {
		sc.Columns = append(sc.Columns, Column{Name: r.str(), Type: ColType(r.u8())})
	}
	nKey := int(r.u32())
	for i := 0; i < nKey && r.err == nil; i++ {
		sc.Key = append(sc.Key, r.str())
	}
	nIdx := int(r.u32())
	for i := 0; i < nIdx && r.err == nil; i++ {
		nc := int(r.u32())
		var cols []string
		for j := 0; j < nc && r.err == nil; j++ {
			cols = append(cols, r.str())
		}
		sc.Indexes = append(sc.Indexes, Index{Columns: cols})
	}
	return sc
}

// keyOfVals renders decoded key values into the key-index string,
// matching keyOf on a stored row.
func keyOfVals(vals []any) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = renderKeyPart(v)
	}
	return strings.Join(parts, "\x00")
}

// walRecordTarget peeks the table a journal record addresses, without
// decoding the record body. Only row/index records have a single target
// table that may be cold; structural records (create/drop table) return
// ok=false and always apply at open.
func walRecordTarget(payload []byte) (name string, ok bool) {
	r := &snapReader{b: payload} // no aliased string: the name is copied out
	switch r.u8() {
	case walOpInsert, walOpUpsert, walOpUpdate, walOpDelete, walOpCreateIndex:
		n := r.str()
		return n, r.err == nil && n != ""
	}
	return "", false
}

// applyWALRecord replays one journal record. Replay never re-journals:
// OpenDurable applies records before the journal is attached, and
// hydration's deferred replay runs with s.replaying set. Replay is
// exactly-once — the LSN skip in OpenDurable guarantees the store is
// in precisely the state that preceded this record — so every replay
// path is strict: a record that does not apply cleanly means the
// snapshot/journal pair is inconsistent, and recovery fails loudly
// rather than guessing.
func (s *Store) applyWALRecord(payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applyWALRecordLocked(payload)
}

func (s *Store) applyWALRecordLocked(payload []byte) error {
	r := &snapReader{b: payload, s: string(payload)}
	op := r.u8()
	switch op {
	case walOpCreateTable:
		sc := readWALSchema(r)
		if r.err != nil {
			return r.err
		}
		return s.createTableLocked(sc)
	case walOpCreateIndex:
		name := r.str()
		nc := int(r.u32())
		var cols []string
		for i := 0; i < nc && r.err == nil; i++ {
			cols = append(cols, r.str())
		}
		if r.err != nil {
			return r.err
		}
		return s.createIndexLocked(name, cols)
	case walOpDropTable:
		name := r.str()
		if r.err != nil {
			return r.err
		}
		return s.dropTableLocked(name)
	case walOpInsert:
		name := r.str()
		row := readWALRow(r)
		if r.err != nil {
			return r.err
		}
		return s.insertLocked(name, row)
	case walOpUpsert:
		name := r.str()
		row := readWALRow(r)
		if r.err != nil {
			return r.err
		}
		return s.upsertLocked(name, row)
	case walOpUpdate:
		name := r.str()
		n := int(r.u32())
		if r.err != nil || n < 0 || n > len(payload) {
			return fmt.Errorf("malformed update batch")
		}
		type pair struct {
			oldKey []any
			row    Row
		}
		pairs := make([]pair, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			k := readWALKey(r)
			row := readWALRow(r)
			pairs = append(pairs, pair{oldKey: k, row: row})
		}
		if r.err != nil {
			return r.err
		}
		oldKeys := make([]string, len(pairs))
		rows := make([]Row, len(pairs))
		for i, p := range pairs {
			oldKeys[i] = keyOfVals(p.oldKey)
			rows[i] = p.row
		}
		return s.replayUpdateBatchLocked(name, oldKeys, rows)
	case walOpDelete:
		name := r.str()
		n := int(r.u32())
		if r.err != nil || n < 0 || n > len(payload) {
			return fmt.Errorf("malformed delete batch")
		}
		keys := make([]string, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			keys = append(keys, keyOfVals(readWALKey(r)))
		}
		if r.err != nil {
			return r.err
		}
		return s.replayDeleteBatchLocked(name, keys)
	default:
		return fmt.Errorf("unknown opcode %d", op)
	}
}

// replayUpdateBatch re-applies one Update record: every row is
// addressed by its old primary key (rowids are not stable across a
// snapshot reload) and updated in place, keeping its rowid and so its
// scan position, with the same two-phase key-index rebuild as Update
// so key permutations replay. Replay is exactly-once, so every old
// key must resolve.
func (s *Store) replayUpdateBatchLocked(name string, oldKeys []string, rows []Row) error {
	t, err := s.tableLocked(name)
	if err != nil {
		return err
	}
	d := t.data
	type change struct {
		id int64
		nr Row
	}
	var changes []change
	for i, row := range rows {
		if err := t.checkRow(row); err != nil {
			return err
		}
		nr := t.canon(row)
		id, ok := d.keyIndex[oldKeys[i]]
		if !ok {
			return fmt.Errorf("update record references missing row (key %q)", keyValues(oldKeys[i]))
		}
		changes = append(changes, change{id: id, nr: nr})
	}
	if len(changes) == 0 {
		return nil
	}
	wd := t.writable()
	newKeys := make(map[string]int64, len(wd.keyIndex))
	for k, v := range wd.keyIndex {
		newKeys[k] = v
	}
	for _, c := range changes {
		delete(newKeys, t.keyOf(wd.rows[c.id]))
	}
	for _, c := range changes {
		k := t.keyOf(c.nr)
		if _, conflict := newKeys[k]; conflict {
			return fmt.Errorf("update record creates duplicate key %v", keyValues(k))
		}
		newKeys[k] = c.id
	}
	for _, c := range changes {
		wd.indexRemove(c.id, wd.rows[c.id])
		wd.rows[c.id] = c.nr
		wd.indexAdd(c.id, c.nr)
	}
	wd.keyIndex = newKeys
	return nil
}

// replayDeleteBatch re-applies one Delete record by key. Replay is
// exactly-once, so every key must resolve.
func (s *Store) replayDeleteBatchLocked(name string, keys []string) error {
	t, err := s.tableLocked(name)
	if err != nil {
		return err
	}
	var victims []int64
	for _, k := range keys {
		id, ok := t.data.keyIndex[k]
		if !ok {
			return fmt.Errorf("delete record references missing row (key %q)", keyValues(k))
		}
		victims = append(victims, id)
	}
	if len(victims) == 0 {
		return nil
	}
	wd := t.writable()
	removed := make(map[int64]bool, len(victims))
	for _, id := range victims {
		r := wd.rows[id]
		delete(wd.keyIndex, t.keyOf(r))
		wd.indexRemove(id, r)
		delete(wd.rows, id)
		removed[id] = true
	}
	live := wd.ids[:0]
	for _, id := range wd.ids {
		if !removed[id] {
			live = append(live, id)
		}
	}
	wd.ids = live
	return nil
}
