package relstore

// Pred is a selection predicate. The concrete predicate types built by Eq
// and And are plain inspectable structs so the query planner (plan.go) can
// recognize index-shaped predicates and skip the table scan; an arbitrary
// function becomes a (planner-opaque) predicate via Func. A nil Pred
// matches every row.
type Pred interface {
	Match(Row) bool
}

// EqPred matches rows whose column Col equals Val (with numeric types
// normalized, so Eq("size", 5) matches a stored float64 after a JSON
// round-trip). The planner serves Eq predicates over key or indexed
// columns from the corresponding index.
type EqPred struct {
	Col string
	Val any
}

// Match reports whether r's Col equals Val.
func (p EqPred) Match(r Row) bool { return valueEqual(r[p.Col], p.Val) }

// AndPred is the conjunction of Preds. An empty conjunction matches
// everything.
type AndPred struct {
	Preds []Pred
}

// Match reports whether every conjunct matches r.
func (p AndPred) Match(r Row) bool {
	for _, q := range p.Preds {
		if q != nil && !q.Match(r) {
			return false
		}
	}
	return true
}

// Func adapts an arbitrary function to a Pred. The planner cannot see
// inside a Func, so predicates built only from Func always scan; combine
// Func with Eq under And to keep index access on the Eq part.
type Func func(Row) bool

// Match invokes the wrapped function.
func (f Func) Match(r Row) bool { return f(r) }

// Eq returns a predicate matching rows whose column col equals v.
func Eq(col string, v any) Pred {
	return EqPred{Col: col, Val: v}
}

// And combines predicates conjunctively.
func And(ps ...Pred) Pred {
	return AndPred{Preds: ps}
}

func valueEqual(a, b any) bool {
	// Normalize numeric types so Eq("size", 5) matches a stored int64
	// after JSON round-trips.
	af, aok := toFloat(a)
	bf, bok := toFloat(b)
	if aok && bok {
		return af == bf
	}
	return a == b
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	case float64:
		return x, true
	case float32:
		return float64(x), true
	}
	return 0, false
}
