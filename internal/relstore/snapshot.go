// Binary snapshot persistence. A snapshot is the whole-store wire format
// described in SNAPSHOT.md: a magic/version header, a section directory
// locating one length-prefixed section per table (schema header followed
// by typed row encoding in insertion order), and a CRC-32 trailer over
// everything before it.
//
// Snapshots exist because the JSON path re-parses, re-validates, and
// re-indexes a catalog row by row: at 10k implementations that costs
// ~200ms and ~750k allocations per Save+Load round-trip. The snapshot
// writer emits rows already in canonical form, and LoadSnapshot is a
// trusted fast path: after the checksum verifies, rows are decoded
// straight into table storage and the primary-key index, secondary
// indexes, and insertion-order id slice are bulk-built — no per-row
// Insert validation, no incremental index maintenance, no re-sorting
// (rowids are assigned sequentially in section order, so ascending
// order is insertion order by construction).
//
// The v4 section directory makes every table section independently
// locatable (byte offset and length) and verifiable (per-section
// CRC-32C), which is what the two open modes ride on: eager open decodes
// sections in parallel across a worker pool — sections are independent
// by construction — and lazy open (OpenLazy) decodes only the directory
// and each section's schema header, materializing a table's rows and
// indexes on first touch (lazy.go).
package relstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"math/rand/v2"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

const (
	// snapMagic opens every binary snapshot; Load sniffs it to pick the
	// decoder, so it must never be valid leading JSON.
	snapMagic = "ICDBSNAP"
	// snapVersion is the current format version. Readers reject versions
	// they cannot decode: the format is versioned, not self-describing
	// beyond the schema header (see SNAPSHOT.md for the compatibility
	// policy). Version history: 1 = PR 3 layout; 2 = the same wire layout
	// with the generators and estimators relations present as sections
	// (a v1 file necessarily lacks them, so readers reject it outright —
	// the JSON format remains the cross-version compatibility path);
	// 3 = PR 8, a u64 covered-LSN field between the version and the
	// table count, stamping which journal records the snapshot already
	// folds in; 4 = PR 10, a section directory after the table count
	// (per table: name, absolute byte offset, length, CRC-32C) sealed by
	// its own CRC-32C, so each section is independently locatable and
	// verifiable. Section and trailer encodings are unchanged from v3.
	// A v4 reader still accepts v3 and v2 (eagerly — they have no
	// directory to open lazily from).
	snapVersion = 4
	// snapTrailerLen is the CRC-32C trailer size.
	snapTrailerLen = 4
	// snapDirFixed is the fixed part of one directory entry — u64 offset,
	// u64 length, u32 section CRC — after the length-prefixed name.
	snapDirFixed = 20
)

// snapCRC is the Castagnoli table: CRC-32C has dedicated CPU
// instructions on amd64/arm64, so checksumming a multi-megabyte catalog
// costs a fraction of a millisecond.
var snapCRC = crc32.MakeTable(crc32.Castagnoli)

// snapHeaderLen is magic + version; the covered LSN, table count, and
// directory follow as ordinary reader payload.
const snapHeaderLen = len(snapMagic) + 4

// OpenMode selects how much of a snapshot an open decodes up front.
type OpenMode int

const (
	// OpenEager decodes every table section at open (the default); v4
	// snapshots decode sections in parallel across a worker pool.
	OpenEager OpenMode = iota
	// OpenLazy decodes only the v4 section directory and each table's
	// schema header at open, keeping the snapshot's byte buffer; a
	// table's rows and indexes materialize on first touch (see lazy.go).
	// v2/v3 snapshots have no directory and fall back to eager.
	OpenLazy
)

// String names the mode the way the icdbd -open flag spells it.
func (m OpenMode) String() string {
	if m == OpenLazy {
		return "lazy"
	}
	return "eager"
}

// SnapshotOptions configures how OpenSnapshot (and OpenDurable, via
// DurableOptions.Open) decodes a snapshot. The zero value is a full
// eager decode with one worker per CPU.
type SnapshotOptions struct {
	// Mode is the open mode; the zero value is OpenEager.
	Mode OpenMode
	// Workers bounds the eager v4 decoder's parallelism: 0 means
	// GOMAXPROCS, 1 decodes serially. Lazy open ignores it (hydration
	// is per-table, on the toucher's goroutine).
	Workers int
}

// SaveSnapshot writes the whole store to path in the binary snapshot
// format, atomically: the bytes are staged in a temp file in path's
// directory, fsynced, and renamed over path, so a crash mid-save can
// never truncate or corrupt an existing file. Tables are written in
// sorted name order and rows in insertion order, so saving an unchanged
// store is byte-for-byte deterministic — a lazily opened store is fully
// hydrated first, so lazy and eager opens of one file save identically.
//
// The read lock is held through the rename (not just the encode):
// concurrent saves of one store therefore always write identical bytes,
// so whichever rename lands last cannot replace a newer state with a
// staler one.
func (s *Store) SaveSnapshot(path string) error {
	return s.SaveSnapshotVersion(path, snapVersion)
}

// SaveSnapshotVersion is SaveSnapshot pinned to a specific format
// version: 4 (current) or 3 (the previous layout, without the section
// directory). Writing v3 exists for cross-version tests and benchmarks;
// new catalogs should use SaveSnapshot.
func (s *Store) SaveSnapshotVersion(path string, version int) error {
	if s.lazy {
		if err := s.HydrateAll(); err != nil {
			return fmt.Errorf("relstore: save snapshot: %w", err)
		}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, err := s.encodeSnapshotAt(version)
	if err != nil {
		return fmt.Errorf("relstore: save snapshot: %w", err)
	}
	return writeFileAtomic(path, data)
}

// encodeSnapshot renders the store under the read lock. The covered-LSN
// header field is the journal position when a journal is attached
// (appends hold the write lock, so the position is consistent with the
// encoded rows) and zero otherwise — a plain store has no journal to
// cover.
func (s *Store) encodeSnapshot() ([]byte, error) {
	return s.encodeSnapshotAt(snapVersion)
}

func (s *Store) encodeSnapshotAt(version int) ([]byte, error) {
	if version != 3 && version != snapVersion {
		return nil, fmt.Errorf("cannot write snapshot version %d (writers emit 3 or %d)", version, snapVersion)
	}
	for name, t := range s.tables {
		if t.pending != nil {
			return nil, fmt.Errorf("table %q is still pending hydration (HydrateAll before encoding)", name)
		}
	}
	var lsn uint64
	if s.wal != nil {
		base, records, _ := s.wal.position()
		lsn = uint64(base + records)
	}
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)

	// Exact pre-size: a dry pass sums every section's encoded size —
	// including per-cell string lengths, which the old estimate ignored —
	// so the buffer is grown once and never doubles mid-encode, and any
	// drift between sectionSize and encodeSection fails loudly below.
	secSize := make([]int, len(names))
	total := snapHeaderLen + 8 + 4 // header + covered LSN + table count
	for i, n := range names {
		sz, err := s.tables[n].sectionSize()
		if err != nil {
			return nil, err
		}
		secSize[i] = sz
		total += sz
		if version >= 4 {
			total += 4 + len(n) + snapDirFixed
		}
	}
	if version >= 4 {
		total += 4 // directory CRC
	}
	total += snapTrailerLen

	var buf bytes.Buffer
	buf.Grow(total)
	w := &snapWriter{buf: &buf}
	w.raw([]byte(snapMagic))
	w.u32(uint32(version))
	w.u64(lsn)
	w.u32(uint32(len(names)))
	// Directory first, offsets/lengths/CRCs backpatched as sections land:
	// names are known up front, so the directory's size — and with it
	// every section offset — is fixed before any row is written.
	patch := make([]int, len(names))
	dirCRCAt := -1
	if version >= 4 {
		for i, n := range names {
			w.str(n)
			patch[i] = buf.Len()
			w.u64(0) // section offset, backpatched
			w.u64(0) // section length, backpatched
			w.u32(0) // section CRC, backpatched
		}
		dirCRCAt = buf.Len()
		w.u32(0) // directory CRC, backpatched
	}
	for i, n := range names {
		start := buf.Len()
		if err := s.tables[n].encodeSection(w); err != nil {
			return nil, err
		}
		if got := buf.Len() - start; got != secSize[i] {
			return nil, fmt.Errorf("internal error: table %q encoded to %d bytes, pre-sized %d", n, got, secSize[i])
		}
		if version >= 4 {
			b := buf.Bytes()
			binary.LittleEndian.PutUint64(b[patch[i]:], uint64(start))
			binary.LittleEndian.PutUint64(b[patch[i]+8:], uint64(secSize[i]))
			binary.LittleEndian.PutUint32(b[patch[i]+16:], crc32.Checksum(b[start:buf.Len()], snapCRC))
		}
	}
	if version >= 4 {
		b := buf.Bytes()
		binary.LittleEndian.PutUint32(b[dirCRCAt:], crc32.Checksum(b[:dirCRCAt], snapCRC))
	}
	var trailer [snapTrailerLen]byte
	binary.LittleEndian.PutUint32(trailer[:], crc32.Checksum(buf.Bytes(), snapCRC))
	buf.Write(trailer[:])
	if buf.Len() != total {
		return nil, fmt.Errorf("internal error: snapshot encoded to %d bytes, pre-sized %d", buf.Len(), total)
	}
	return buf.Bytes(), nil
}

// sectionSize computes the exact byte size encodeSection will emit for
// this table: the schema header from the schema alone, the rows from the
// per-row fixed width plus every string cell's actual length. One pass
// over the rows, no allocation — the price of never reallocating the
// encode buffer.
func (t *table) sectionSize() (int, error) {
	sc := &t.schema
	n := 4 + len(sc.Table) + 4
	for _, c := range sc.Columns {
		n += 4 + len(c.Name) + 1
	}
	n += 4
	for _, k := range sc.Key {
		n += 4 + len(k)
	}
	n += 4
	for _, ix := range sc.Indexes {
		n += 4
		for _, c := range ix.Columns {
			n += 4 + len(c)
		}
	}
	n += 4 + 8 // row count + payload length
	fixed := 0 // per-row bytes independent of cell values
	var strCols []string
	for _, c := range sc.Columns {
		switch c.Type {
		case TString:
			strCols = append(strCols, c.Name)
			fixed += 4
		case TInt, TFloat:
			fixed += 8
		case TBool:
			fixed++
		}
	}
	d := t.data
	n += fixed * len(d.ids)
	if len(strCols) > 0 {
		for _, id := range d.ids {
			r := d.rows[id]
			for _, cn := range strCols {
				v, ok := r[cn].(string)
				if !ok {
					return 0, fmt.Errorf("table %q column %q: cannot snapshot %T value in string column",
						sc.Table, cn, r[cn])
				}
				n += len(v)
			}
		}
	}
	return n, nil
}

// encodeSection writes one table in a single pass over its rows: the row
// payload's length prefix is reserved up front and backpatched once the
// rows are written, so every column value is fetched (and its canonical
// Go type verified) exactly once.
func (t *table) encodeSection(w *snapWriter) error {
	w.str(t.schema.Table)
	w.u32(uint32(len(t.schema.Columns)))
	for _, c := range t.schema.Columns {
		w.str(c.Name)
		w.u8(uint8(c.Type))
	}
	w.u32(uint32(len(t.schema.Key)))
	for _, k := range t.schema.Key {
		w.str(k)
	}
	w.u32(uint32(len(t.schema.Indexes)))
	for _, ix := range t.schema.Indexes {
		w.u32(uint32(len(ix.Columns)))
		for _, c := range ix.Columns {
			w.str(c)
		}
	}
	d := t.data
	w.u32(uint32(len(d.ids)))
	lenAt := w.buf.Len()
	w.u64(0) // payload length, backpatched below
	start := w.buf.Len()
	for _, id := range d.ids {
		r := d.rows[id]
		for _, c := range t.schema.Columns {
			ok := true
			switch c.Type {
			case TString:
				var v string
				if v, ok = r[c.Name].(string); ok {
					w.str(v)
				}
			case TInt:
				var v int
				if v, ok = r[c.Name].(int); ok {
					w.u64(uint64(int64(v)))
				}
			case TFloat:
				var v float64
				if v, ok = r[c.Name].(float64); ok {
					w.u64(math.Float64bits(v))
				}
			case TBool:
				var v bool
				if v, ok = r[c.Name].(bool); ok {
					b := uint8(0)
					if v {
						b = 1
					}
					w.u8(b)
				}
			}
			if !ok {
				return fmt.Errorf("table %q column %q: cannot snapshot %T value in %s column",
					t.schema.Table, c.Name, r[c.Name], c.Type)
			}
		}
	}
	binary.LittleEndian.PutUint64(w.buf.Bytes()[lenAt:], uint64(w.buf.Len()-start))
	return nil
}

// snapWriter writes little-endian primitives into a bytes.Buffer (which
// never fails, so the writer carries no error state).
type snapWriter struct {
	buf *bytes.Buffer
	tmp [8]byte
}

func (w *snapWriter) raw(b []byte) { w.buf.Write(b) }

func (w *snapWriter) u8(v uint8) { w.buf.WriteByte(v) }

func (w *snapWriter) u32(v uint32) {
	binary.LittleEndian.PutUint32(w.tmp[:4], v)
	w.buf.Write(w.tmp[:4])
}

func (w *snapWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(w.tmp[:8], v)
	w.buf.Write(w.tmp[:8])
}

func (w *snapWriter) str(s string) {
	w.u32(uint32(len(s)))
	w.buf.WriteString(s)
}

// IsSnapshot reports whether data begins with the binary snapshot magic.
// Load uses it to sniff the format; callers holding raw bytes can too.
func IsSnapshot(data []byte) bool {
	return len(data) >= len(snapMagic) && string(data[:len(snapMagic)]) == snapMagic
}

// LoadSnapshot reads a store previously written by SaveSnapshot, fully
// and eagerly. It is the trusted-snapshot fast path: after the checksum
// trailer verifies, rows are decoded directly into table storage and
// every index is bulk-built, skipping the per-row validation Insert
// performs (the writer only emits canonical, schema-checked rows, and
// the checksum rules out torn or bit-flipped files). Malformed input —
// bad magic, unsupported version, truncation, checksum mismatch, or
// inconsistent section lengths — fails with a descriptive error, never
// a panic.
func LoadSnapshot(path string) (*Store, error) {
	return OpenSnapshot(path, SnapshotOptions{})
}

// OpenSnapshot is LoadSnapshot with explicit open options: OpenLazy
// defers each table's decode to first touch (v4 snapshots only — older
// versions decode eagerly), and Workers bounds eager decode parallelism.
func OpenSnapshot(path string, opt SnapshotOptions) (*Store, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("relstore: load snapshot: %w", err)
	}
	s, _, err := decodeSnapshotOpt(data, opt)
	if err != nil {
		return nil, fmt.Errorf("relstore: load snapshot %s: %w", path, err)
	}
	return s, nil
}

// decodeSnapshot decodes a snapshot eagerly along with its covered LSN —
// the journal sequence number up to which (exclusive) the snapshot
// already reflects every record. Version-2 files predate the field and
// cover nothing.
func decodeSnapshot(data []byte) (*Store, uint64, error) {
	return decodeSnapshotOpt(data, SnapshotOptions{})
}

func decodeSnapshotOpt(data []byte, opt SnapshotOptions) (*Store, uint64, error) {
	if len(data) < snapHeaderLen+4+snapTrailerLen {
		return nil, 0, fmt.Errorf("%d-byte file is too short to be a snapshot (truncated?)", len(data))
	}
	if !IsSnapshot(data) {
		return nil, 0, fmt.Errorf("bad magic %q (not a binary snapshot)", data[:len(snapMagic)])
	}
	// Version before checksum: a future format may change anything past
	// the header (including the trailer), so "unsupported version" must
	// win over a misleading "checksum mismatch".
	version := int(binary.LittleEndian.Uint32(data[len(snapMagic):snapHeaderLen]))
	if version < 2 || version > snapVersion {
		return nil, 0, fmt.Errorf("unsupported snapshot version %d (this build reads versions 2-%d)", version, snapVersion)
	}
	if version < 4 {
		return decodeSnapshotLegacy(data, version)
	}
	return decodeSnapshotV4(data, opt)
}

// decodeSnapshotLegacy decodes the v2/v3 layout: no directory, sections
// decoded sequentially. Always eager — without a directory there is
// nothing to defer to.
func decodeSnapshotLegacy(data []byte, version int) (*Store, uint64, error) {
	body, trailer := data[:len(data)-snapTrailerLen], data[len(data)-snapTrailerLen:]
	if sum := crc32.Checksum(body, snapCRC); sum != binary.LittleEndian.Uint32(trailer) {
		return nil, 0, fmt.Errorf("checksum mismatch (want %08x, file carries %08x): snapshot is corrupted or truncated",
			sum, binary.LittleEndian.Uint32(trailer))
	}
	// One copy of the payload as a string: every decoded string value is
	// a zero-allocation slice of it, so the decode allocates O(1) per
	// string instead of one copy each. The backing stays pinned for the
	// store's lifetime, which costs only the encoding overhead — the
	// string data itself would be resident either way.
	r := &snapReader{b: body[snapHeaderLen:], s: string(body[snapHeaderLen:])}
	var lsn uint64
	if version >= 3 {
		lsn = r.u64()
	}
	nTables := int(r.u32())
	s := New()
	boxes := newBoxCache()
	for i := 0; i < nTables && r.err == nil; i++ {
		if err := s.decodeTableSection(r, boxes); err != nil {
			return nil, 0, err
		}
	}
	if r.err != nil {
		return nil, 0, r.err
	}
	if r.off != len(r.b) {
		return nil, 0, fmt.Errorf("%d byte(s) of trailing data after the last table section", len(r.b)-r.off)
	}
	return s, lsn, nil
}

// snapDirEntry locates one table section in a v4 snapshot: absolute
// byte offset, length, and the section's own CRC-32C.
type snapDirEntry struct {
	name string
	off  int
	len  int
	crc  uint32
}

// decodeSnapDirectory parses and verifies the v4 header and section
// directory: entry bounds, contiguity (sections tile the span between
// the directory and the trailer exactly, so truncation is caught even
// without the whole-file checksum), duplicate names, and the
// directory's own CRC — which is what lazy open trusts in place of the
// whole-file trailer.
func decodeSnapDirectory(data []byte) (uint64, []snapDirEntry, error) {
	r := &snapReader{b: data, off: snapHeaderLen} // no aliased string: names are copied out
	lsn := r.u64()
	nTables := int(r.u32())
	if r.err == nil && (nTables < 0 || nTables > (len(data)-r.off)/(4+snapDirFixed)) {
		return 0, nil, fmt.Errorf("table count %d is impossible for a %d-byte file", nTables, len(data))
	}
	entries := make([]snapDirEntry, 0, nTables)
	seen := make(map[string]bool, nTables)
	for i := 0; i < nTables && r.err == nil; i++ {
		e := snapDirEntry{name: r.str()}
		e.off = int(int64(r.u64()))
		e.len = int(int64(r.u64()))
		e.crc = r.u32()
		if r.err != nil {
			break
		}
		if seen[e.name] {
			return 0, nil, fmt.Errorf("directory lists table %q twice", e.name)
		}
		seen[e.name] = true
		entries = append(entries, e)
	}
	if r.err != nil {
		return 0, nil, r.err
	}
	dirCRCAt := r.off
	wantDir := r.u32()
	if r.err != nil {
		return 0, nil, r.err
	}
	if sum := crc32.Checksum(data[:dirCRCAt], snapCRC); sum != wantDir {
		return 0, nil, fmt.Errorf("directory checksum mismatch (want %08x, file carries %08x): snapshot header is corrupted or truncated",
			sum, wantDir)
	}
	next := r.off
	for _, e := range entries {
		if e.len < 0 || e.len > len(data) || e.off != next {
			return 0, nil, fmt.Errorf("table %q: section at offset %d (%d bytes) does not tile the file (expected offset %d)",
				e.name, e.off, e.len, next)
		}
		next += e.len
	}
	if next != len(data)-snapTrailerLen {
		return 0, nil, fmt.Errorf("%d byte(s) of trailing data after the last table section", len(data)-snapTrailerLen-next)
	}
	return lsn, entries, nil
}

// decodeSnapshotV4 decodes the directory, then either materializes every
// section (eager, optionally in parallel) or builds lazy stubs that
// hydrate on first touch. Eager open verifies the whole-file trailer
// first, exactly like v3; lazy open trusts the directory CRC now and
// each section's CRC at its hydration, so one corrupt section fails only
// the table it holds.
func decodeSnapshotV4(data []byte, opt SnapshotOptions) (*Store, uint64, error) {
	if opt.Mode != OpenLazy {
		body, trailer := data[:len(data)-snapTrailerLen], data[len(data)-snapTrailerLen:]
		if sum := crc32.Checksum(body, snapCRC); sum != binary.LittleEndian.Uint32(trailer) {
			return nil, 0, fmt.Errorf("checksum mismatch (want %08x, file carries %08x): snapshot is corrupted or truncated",
				sum, binary.LittleEndian.Uint32(trailer))
		}
	}
	lsn, entries, err := decodeSnapDirectory(data)
	if err != nil {
		return nil, 0, err
	}
	s := New()
	if opt.Mode == OpenLazy {
		s.lazy = true
		for _, e := range entries {
			s.tables[e.name] = lazyStub(e, data[e.off:e.off+e.len])
		}
		return s, lsn, nil
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(entries) {
		workers = len(entries)
	}
	tables := make([]*table, len(entries))
	errs := make([]error, len(entries))
	decodeOne := func(i int, boxes *boxCache) {
		e := entries[i]
		tables[i], errs[i] = decodeSectionTable(data[e.off:e.off+e.len], e.name, boxes)
	}
	if workers <= 1 {
		boxes := newBoxCache()
		for i := range entries {
			decodeOne(i, boxes)
		}
	} else {
		// Work-stealing over a shared cursor: sections are wildly uneven
		// (one big relation, several small ones), so static striping would
		// idle workers. Each worker keeps a private box cache — values
		// repeat within a table far more than across tables.
		var next atomic.Int64
		var wg sync.WaitGroup
		for k := 0; k < workers; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				boxes := newBoxCache()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(entries) {
						return
					}
					decodeOne(i, boxes)
				}
			}()
		}
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return nil, 0, err
		}
		s.tables[entries[i].name] = tables[i]
	}
	return s, lsn, nil
}

// decodeSectionTable decodes one self-contained v4 section into a
// standalone table: schema header, validation, bulk row build. It needs
// no Store, which is what lets eager workers decode sections
// concurrently and hydration decode one section under the store lock.
func decodeSectionTable(section []byte, wantName string, boxes *boxCache) (*table, error) {
	// One string copy per section (not per value): workers copy their own
	// sections, so the conversions run in parallel too.
	r := &snapReader{b: section, s: string(section)}
	sc, nRows, payload, err := decodeSectionSchema(r)
	if err != nil {
		return nil, err
	}
	if sc.Table != wantName {
		return nil, fmt.Errorf("section declares table %q but the directory names %q", sc.Table, wantName)
	}
	t, err := newTable(sc)
	if err != nil {
		return nil, err
	}
	if err := t.decodeSectionRows(r, nRows, payload, boxes); err != nil {
		return nil, err
	}
	if r.off != len(section) {
		return nil, fmt.Errorf("table %q: %d byte(s) of trailing data in section", sc.Table, len(section)-r.off)
	}
	return t, nil
}

// lazyStub builds the unmaterialized table for one directory entry. The
// schema header is decoded now — it is O(columns), and it lets SchemaOf,
// Tables, and OpenDurable's keyed-table check answer without touching
// rows — while the row payload stays raw until first touch. A section
// whose schema cannot even be decoded still opens: the stub is poisoned,
// so every data access fails with the decode error while the rest of the
// catalog stays usable (its checksum would fail at hydration anyway —
// only the directory is verified at lazy open).
func lazyStub(e snapDirEntry, section []byte) *table {
	r := &snapReader{b: section} // no aliased string: schema strings are copied, rows stay raw
	sc, nRows, payload, err := decodeSectionSchema(r)
	if err == nil && sc.Table != e.name {
		err = fmt.Errorf("section declares table %q but the directory names %q", sc.Table, e.name)
	}
	if err == nil && r.off+payload != len(section) {
		err = fmt.Errorf("section is %d bytes but schema + declared %d-byte row payload end at %d",
			len(section), payload, r.off+payload)
	}
	var t *table
	if err == nil {
		t, err = newTable(sc)
	}
	if err != nil {
		t, _ = newTable(Schema{Table: e.name, Columns: []Column{{Name: "corrupt", Type: TString}}})
		t.pending = &pendingSection{err: fmt.Errorf("relstore: table %q: corrupt snapshot section: %w", e.name, err)}
		return t
	}
	t.pending = &pendingSection{raw: section, crc: e.crc, rowsOff: r.off, nRows: nRows, payload: payload}
	return t
}

// decodeTableSection decodes one table of a legacy (v2/v3) snapshot into
// the store: sections are not length-prefixed as a unit there, so the
// reader simply advances through them in order.
func (s *Store) decodeTableSection(r *snapReader, boxes *boxCache) error {
	sc, nRows, payload, err := decodeSectionSchema(r)
	if err != nil {
		return err
	}
	// Schema sanity (duplicate columns, undeclared key/index columns)
	// still goes through CreateTable — it is O(columns), not O(rows), so
	// the fast path keeps it.
	if err := s.CreateTable(sc); err != nil {
		return err
	}
	return s.tables[sc.Table].decodeSectionRows(r, nRows, payload, boxes)
}

// decodeSectionSchema reads a section's schema header, row count, and
// declared payload length, leaving r at the first row. The payload bound
// and minimum-row-size sanity checks run here, before any per-row
// allocation.
func decodeSectionSchema(r *snapReader) (Schema, int, int, error) {
	sc := Schema{Table: r.str()}
	nCols := int(r.u32())
	for i := 0; i < nCols && r.err == nil; i++ {
		c := Column{Name: r.str(), Type: ColType(r.u8())}
		if r.err == nil && (c.Type < TString || c.Type > TBool) {
			return sc, 0, 0, fmt.Errorf("table %q column %q: unknown column type %d", sc.Table, c.Name, c.Type)
		}
		sc.Columns = append(sc.Columns, c)
	}
	nKey := int(r.u32())
	for i := 0; i < nKey && r.err == nil; i++ {
		sc.Key = append(sc.Key, r.str())
	}
	nIdx := int(r.u32())
	for i := 0; i < nIdx && r.err == nil; i++ {
		nc := int(r.u32())
		var cols []string
		for j := 0; j < nc && r.err == nil; j++ {
			cols = append(cols, r.str())
		}
		sc.Indexes = append(sc.Indexes, Index{Columns: cols})
	}
	nRows := int(r.u32())
	payload := int(r.u64())
	if r.err != nil {
		return sc, 0, 0, r.err
	}
	if rem := len(r.b) - r.off; payload < 0 || payload > rem {
		return sc, 0, 0, fmt.Errorf("table %q: row payload of %d bytes exceeds the %d remaining", sc.Table, payload, rem)
	}
	if min := minRowSize(sc); nRows < 0 || (min > 0 && nRows > payload/min) {
		return sc, 0, 0, fmt.Errorf("table %q: row count %d is impossible for a %d-byte payload", sc.Table, nRows, payload)
	}
	return sc, nRows, payload, nil
}

// decodeSectionRows bulk-builds t's storage and indexes from r,
// positioned at the section's first row. t must be freshly constructed
// (newTable or CreateTable) and unobserved by readers.
func (t *table) decodeSectionRows(r *snapReader, nRows, payload int, boxes *boxCache) error {
	sc := t.schema
	d := t.data
	start := r.off
	d.ids = make([]int64, nRows)
	d.rows = make(map[int64]Row, nRows)
	if len(sc.Key) > 0 {
		d.keyIndex = make(map[string]int64, nRows)
	}
	// Single string key column is the dominant shape (implementations,
	// components); its index key needs no joining, and renderKeyPart is
	// allocation-free for strings without escapes.
	singleStrKey := len(sc.Key) == 1 && t.cols[sc.Key[0]] == TString
	// String interning is adaptive per column: the first internSample
	// rows are a trial, and columns whose values never repeat there
	// (names, IIF sources) stop paying the intern lookup — hashing a
	// unique multi-hundred-byte source string twice per row is pure
	// overhead.
	const internSample = 64
	strHits := make([]int, len(sc.Columns))
	strOff := make([]bool, len(sc.Columns))
	for i := 0; i < nRows; i++ {
		row := make(Row, len(sc.Columns))
		for ci, c := range sc.Columns {
			switch c.Type {
			case TString:
				v := r.str()
				if strOff[ci] {
					row[c.Name] = v
					continue
				}
				if b, ok := boxes.strs[v]; ok {
					strHits[ci]++
					row[c.Name] = b
				} else {
					b := any(v)
					boxes.strs[v] = b
					row[c.Name] = b
				}
			case TInt:
				row[c.Name] = boxes.intv(int(int64(r.u64())))
			case TFloat:
				row[c.Name] = boxes.float(math.Float64frombits(r.u64()))
			case TBool:
				row[c.Name] = r.u8() != 0
			}
		}
		if i == internSample-1 {
			for ci, c := range sc.Columns {
				if c.Type == TString && strHits[ci] == 0 {
					strOff[ci] = true
				}
			}
		}
		if r.err != nil {
			return fmt.Errorf("table %q row %d: %w", sc.Table, i, r.err)
		}
		id := int64(i)
		d.rows[id] = row
		d.ids[i] = id
		if singleStrKey {
			d.keyIndex[renderKeyPart(row[sc.Key[0]])] = id
		} else if len(sc.Key) > 0 {
			d.keyIndex[joinRow(sc.Key, row)] = id
		}
		// Rowids ascend with the loop, so plain appends keep every
		// posting list sorted.
		for _, ix := range d.indexes {
			k := joinRow(ix.cols, row)
			ix.postings[k] = append(ix.postings[k], id)
		}
	}
	t.nextID = int64(nRows)
	if len(sc.Key) > 0 && len(d.keyIndex) != nRows {
		return fmt.Errorf("table %q: %d row(s) collapse onto %d primary key(s) — duplicate keys in snapshot",
			sc.Table, nRows, len(d.keyIndex))
	}
	if got := r.off - start; got != payload {
		return fmt.Errorf("table %q: row payload length %d does not match declared %d", sc.Table, got, payload)
	}
	return nil
}

// minRowSize is the smallest possible encoding of one row of sc, used to
// bound row counts before any per-row allocation happens.
func minRowSize(sc Schema) int {
	n := 0
	for _, c := range sc.Columns {
		switch c.Type {
		case TString:
			n += 4
		case TInt, TFloat:
			n += 8
		case TBool:
			n++
		}
	}
	return n
}

// snapReader is a bounds-checked little-endian cursor. When s is the
// string aliasing b (same bytes), string reads slice s and never copy;
// when s is empty (schema-only parses over a raw section, journal-record
// peeks), string reads copy out of b instead — small strings, no pinned
// backing.
type snapReader struct {
	b   []byte
	s   string
	off int
	err error
}

func (r *snapReader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if len(r.b)-r.off < n {
		r.err = fmt.Errorf("unexpected end of snapshot at offset %d (truncated file?)", r.off)
		return false
	}
	return true
}

func (r *snapReader) u8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *snapReader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *snapReader) u64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *snapReader) str() string {
	n := int(r.u32())
	// int(u32) can wrap negative on 32-bit platforms; a negative length
	// would slip past need's remaining-bytes comparison and panic below.
	if n < 0 {
		r.err = fmt.Errorf("impossible string length at offset %d (corrupted snapshot?)", r.off)
		return ""
	}
	if r.err != nil || !r.need(n) {
		return ""
	}
	var v string
	if len(r.s) == len(r.b) {
		v = r.s[r.off : r.off+n] // zero-copy slice of the aliased string
	} else {
		v = string(r.b[r.off : r.off+n])
	}
	r.off += n
	return v
}

// boxCache dedups the interface boxes materialized while decoding.
// Catalog columns repeat values heavily (component types, styles,
// function-set strings, quantized area/delay estimates), and a boxed
// string or float64 is an allocation each — sharing one immutable box
// per distinct value is most of the difference between ~75k and ~750k
// allocations per 10k-implementation round-trip. Sound because boxed
// values are immutable and rows are cloned on the way out of the store.
type boxCache struct {
	strs   map[string]any
	ints   map[int]any
	floats map[float64]any
}

func newBoxCache() *boxCache {
	return &boxCache{
		strs:   make(map[string]any),
		ints:   make(map[int]any),
		floats: make(map[float64]any),
	}
}

func (bc *boxCache) intv(v int) any {
	if b, ok := bc.ints[v]; ok {
		return b
	}
	b := any(v)
	bc.ints[v] = b
	return b
}

func (bc *boxCache) float(v float64) any {
	if b, ok := bc.floats[v]; ok {
		return b
	}
	b := any(v)
	bc.floats[v] = b
	return b
}

// writeFileAtomic writes data to path via a temp file in the same
// directory: write, fsync, close, rename. Either the old file or the
// complete new one is visible at path at every instant; a crash can at
// worst leave a stray .tmp- file behind. Permissions follow os.WriteFile
// semantics: an existing destination keeps its mode, a fresh one gets
// 0644 filtered through the umask.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	base := filepath.Base(path)
	prevMode, hadPrev := os.FileMode(0), false
	if fi, err := os.Stat(path); err == nil {
		prevMode, hadPrev = fi.Mode().Perm(), true
	}
	var f *os.File
	var tmp string
	for i := 0; ; i++ {
		tmp = filepath.Join(dir, fmt.Sprintf(".%s.tmp-%d-%d", base, os.Getpid(), rand.Uint64()))
		var err error
		// O_EXCL with the target mode: a fresh file's permissions pass
		// through the umask here, exactly like os.WriteFile's would.
		f, err = os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err == nil {
			break
		}
		if !os.IsExist(err) || i >= 16 {
			return fmt.Errorf("relstore: save %s: %w", path, err)
		}
	}
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("relstore: save %s: %w", path, err)
	}
	if _, err := f.Write(data); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if hadPrev {
		// Overwriting keeps the destination's existing permissions, as a
		// plain in-place rewrite would have.
		if err := f.Chmod(prevMode); err != nil {
			return fail(err)
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("relstore: save %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("relstore: save %s: %w", path, err)
	}
	return nil
}
