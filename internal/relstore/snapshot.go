// Binary snapshot persistence. A snapshot is the whole-store wire format
// described in SNAPSHOT.md: a magic/version header, one length-prefixed
// section per table (schema header followed by typed row encoding in
// insertion order), and a CRC-32 trailer over everything before it.
//
// Snapshots exist because the JSON path re-parses, re-validates, and
// re-indexes a catalog row by row: at 10k implementations that costs
// ~200ms and ~750k allocations per Save+Load round-trip. The snapshot
// writer emits rows already in canonical form, and LoadSnapshot is a
// trusted fast path: after the checksum verifies, rows are decoded
// straight into table storage and the primary-key index, secondary
// indexes, and insertion-order id slice are bulk-built — no per-row
// Insert validation, no incremental index maintenance, no re-sorting
// (rowids are assigned sequentially in section order, so ascending
// order is insertion order by construction).
package relstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"math/rand/v2"
	"os"
	"path/filepath"
	"sort"
)

const (
	// snapMagic opens every binary snapshot; Load sniffs it to pick the
	// decoder, so it must never be valid leading JSON.
	snapMagic = "ICDBSNAP"
	// snapVersion is the current format version. Readers reject versions
	// they cannot decode: the format is versioned, not self-describing
	// beyond the schema header (see SNAPSHOT.md for the compatibility
	// policy). Version history: 1 = PR 3 layout; 2 = the same wire layout
	// with the generators and estimators relations present as sections
	// (a v1 file necessarily lacks them, so readers reject it outright —
	// the JSON format remains the cross-version compatibility path);
	// 3 = PR 8, a u64 covered-LSN field between the version and the
	// table count, stamping which journal records the snapshot already
	// folds in. A v3 reader still accepts v2 (covered LSN zero).
	snapVersion = 3
	// snapTrailerLen is the CRC-32C trailer size.
	snapTrailerLen = 4
)

// snapCRC is the Castagnoli table: CRC-32C has dedicated CPU
// instructions on amd64/arm64, so checksumming a multi-megabyte catalog
// costs a fraction of a millisecond.
var snapCRC = crc32.MakeTable(crc32.Castagnoli)

// snapHeaderLen is magic + version; the table count follows as ordinary
// reader payload.
const snapHeaderLen = len(snapMagic) + 4

// SaveSnapshot writes the whole store to path in the binary snapshot
// format, atomically: the bytes are staged in a temp file in path's
// directory, fsynced, and renamed over path, so a crash mid-save can
// never truncate or corrupt an existing file. Tables are written in
// sorted name order and rows in insertion order, so saving an unchanged
// store is byte-for-byte deterministic.
//
// The read lock is held through the rename (not just the encode):
// concurrent saves of one store therefore always write identical bytes,
// so whichever rename lands last cannot replace a newer state with a
// staler one.
func (s *Store) SaveSnapshot(path string) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, err := s.encodeSnapshot()
	if err != nil {
		return fmt.Errorf("relstore: save snapshot: %w", err)
	}
	return writeFileAtomic(path, data)
}

// encodeSnapshot renders the store under the read lock. The covered-LSN
// header field is the journal position when a journal is attached
// (appends hold the write lock, so the position is consistent with the
// encoded rows) and zero otherwise — a plain store has no journal to
// cover.
func (s *Store) encodeSnapshot() ([]byte, error) {
	var lsn uint64
	if s.wal != nil {
		base, records, _ := s.wal.position()
		lsn = uint64(base + records)
	}
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	var buf bytes.Buffer
	// Rough pre-size (cells don't have a knowable byte size without
	// visiting every value, which the single encode pass avoids): enough
	// to keep buffer doublings to at most one for typical catalogs.
	est := 4096
	for _, t := range s.tables {
		est += len(t.data.ids)*len(t.schema.Columns)*32 + 256
	}
	buf.Grow(est)
	w := &snapWriter{buf: &buf}
	w.raw([]byte(snapMagic))
	w.u32(snapVersion)
	w.u64(lsn)
	w.u32(uint32(len(names)))
	for _, n := range names {
		if err := s.tables[n].encodeSection(w); err != nil {
			return nil, err
		}
	}
	var trailer [snapTrailerLen]byte
	binary.LittleEndian.PutUint32(trailer[:], crc32.Checksum(buf.Bytes(), snapCRC))
	buf.Write(trailer[:])
	return buf.Bytes(), nil
}

// encodeSection writes one table in a single pass over its rows: the row
// payload's length prefix is reserved up front and backpatched once the
// rows are written, so every column value is fetched (and its canonical
// Go type verified) exactly once.
func (t *table) encodeSection(w *snapWriter) error {
	w.str(t.schema.Table)
	w.u32(uint32(len(t.schema.Columns)))
	for _, c := range t.schema.Columns {
		w.str(c.Name)
		w.u8(uint8(c.Type))
	}
	w.u32(uint32(len(t.schema.Key)))
	for _, k := range t.schema.Key {
		w.str(k)
	}
	w.u32(uint32(len(t.schema.Indexes)))
	for _, ix := range t.schema.Indexes {
		w.u32(uint32(len(ix.Columns)))
		for _, c := range ix.Columns {
			w.str(c)
		}
	}
	d := t.data
	w.u32(uint32(len(d.ids)))
	lenAt := w.buf.Len()
	w.u64(0) // payload length, backpatched below
	start := w.buf.Len()
	for _, id := range d.ids {
		r := d.rows[id]
		for _, c := range t.schema.Columns {
			ok := true
			switch c.Type {
			case TString:
				var v string
				if v, ok = r[c.Name].(string); ok {
					w.str(v)
				}
			case TInt:
				var v int
				if v, ok = r[c.Name].(int); ok {
					w.u64(uint64(int64(v)))
				}
			case TFloat:
				var v float64
				if v, ok = r[c.Name].(float64); ok {
					w.u64(math.Float64bits(v))
				}
			case TBool:
				var v bool
				if v, ok = r[c.Name].(bool); ok {
					b := uint8(0)
					if v {
						b = 1
					}
					w.u8(b)
				}
			}
			if !ok {
				return fmt.Errorf("table %q column %q: cannot snapshot %T value in %s column",
					t.schema.Table, c.Name, r[c.Name], c.Type)
			}
		}
	}
	binary.LittleEndian.PutUint64(w.buf.Bytes()[lenAt:], uint64(w.buf.Len()-start))
	return nil
}

// snapWriter writes little-endian primitives into a bytes.Buffer (which
// never fails, so the writer carries no error state).
type snapWriter struct {
	buf *bytes.Buffer
	tmp [8]byte
}

func (w *snapWriter) raw(b []byte) { w.buf.Write(b) }

func (w *snapWriter) u8(v uint8) { w.buf.WriteByte(v) }

func (w *snapWriter) u32(v uint32) {
	binary.LittleEndian.PutUint32(w.tmp[:4], v)
	w.buf.Write(w.tmp[:4])
}

func (w *snapWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(w.tmp[:8], v)
	w.buf.Write(w.tmp[:8])
}

func (w *snapWriter) str(s string) {
	w.u32(uint32(len(s)))
	w.buf.WriteString(s)
}

// IsSnapshot reports whether data begins with the binary snapshot magic.
// Load uses it to sniff the format; callers holding raw bytes can too.
func IsSnapshot(data []byte) bool {
	return len(data) >= len(snapMagic) && string(data[:len(snapMagic)]) == snapMagic
}

// LoadSnapshot reads a store previously written by SaveSnapshot. It is
// the trusted-snapshot fast path: after the checksum trailer verifies,
// rows are decoded directly into table storage and every index is
// bulk-built, skipping the per-row validation Insert performs (the
// writer only emits canonical, schema-checked rows, and the checksum
// rules out torn or bit-flipped files). Malformed input — bad magic,
// unsupported version, truncation, checksum mismatch, or inconsistent
// section lengths — fails with a descriptive error, never a panic.
func LoadSnapshot(path string) (*Store, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("relstore: load snapshot: %w", err)
	}
	s, _, err := decodeSnapshot(data)
	if err != nil {
		return nil, fmt.Errorf("relstore: load snapshot %s: %w", path, err)
	}
	return s, nil
}

// decodeSnapshot decodes a snapshot and its covered LSN — the journal
// sequence number up to which (exclusive) the snapshot already reflects
// every record. Version-2 files predate the field and cover nothing.
func decodeSnapshot(data []byte) (*Store, uint64, error) {
	if len(data) < snapHeaderLen+4+snapTrailerLen {
		return nil, 0, fmt.Errorf("%d-byte file is too short to be a snapshot (truncated?)", len(data))
	}
	if !IsSnapshot(data) {
		return nil, 0, fmt.Errorf("bad magic %q (not a binary snapshot)", data[:len(snapMagic)])
	}
	// Version before checksum: a future format may change anything past
	// the header (including the trailer), so "unsupported version" must
	// win over a misleading "checksum mismatch".
	version := binary.LittleEndian.Uint32(data[len(snapMagic):snapHeaderLen])
	if version != 2 && version != snapVersion {
		return nil, 0, fmt.Errorf("unsupported snapshot version %d (this build reads versions 2-%d)", version, snapVersion)
	}
	body, trailer := data[:len(data)-snapTrailerLen], data[len(data)-snapTrailerLen:]
	if sum := crc32.Checksum(body, snapCRC); sum != binary.LittleEndian.Uint32(trailer) {
		return nil, 0, fmt.Errorf("checksum mismatch (want %08x, file carries %08x): snapshot is corrupted or truncated",
			sum, binary.LittleEndian.Uint32(trailer))
	}
	// One copy of the payload as a string: every decoded string value is
	// a zero-allocation slice of it, so the decode allocates O(1) per
	// string instead of one copy each. The backing stays pinned for the
	// store's lifetime, which costs only the encoding overhead — the
	// string data itself would be resident either way.
	r := &snapReader{b: body[snapHeaderLen:], s: string(body[snapHeaderLen:])}
	var lsn uint64
	if version >= 3 {
		lsn = r.u64()
	}
	nTables := int(r.u32())
	s := New()
	boxes := newBoxCache()
	for i := 0; i < nTables && r.err == nil; i++ {
		if err := s.decodeTableSection(r, boxes); err != nil {
			return nil, 0, err
		}
	}
	if r.err != nil {
		return nil, 0, r.err
	}
	if r.off != len(r.b) {
		return nil, 0, fmt.Errorf("%d byte(s) of trailing data after the last table section", len(r.b)-r.off)
	}
	return s, lsn, nil
}

// decodeTableSection decodes one table and bulk-builds its storage and
// indexes. Schema sanity (duplicate columns, undeclared key/index
// columns) still goes through CreateTable — it is O(columns), not
// O(rows), so the fast path keeps it.
func (s *Store) decodeTableSection(r *snapReader, boxes *boxCache) error {
	sc := Schema{Table: r.str()}
	nCols := int(r.u32())
	for i := 0; i < nCols && r.err == nil; i++ {
		c := Column{Name: r.str(), Type: ColType(r.u8())}
		if r.err == nil && (c.Type < TString || c.Type > TBool) {
			return fmt.Errorf("table %q column %q: unknown column type %d", sc.Table, c.Name, c.Type)
		}
		sc.Columns = append(sc.Columns, c)
	}
	nKey := int(r.u32())
	for i := 0; i < nKey && r.err == nil; i++ {
		sc.Key = append(sc.Key, r.str())
	}
	nIdx := int(r.u32())
	for i := 0; i < nIdx && r.err == nil; i++ {
		nc := int(r.u32())
		var cols []string
		for j := 0; j < nc && r.err == nil; j++ {
			cols = append(cols, r.str())
		}
		sc.Indexes = append(sc.Indexes, Index{Columns: cols})
	}
	nRows := int(r.u32())
	payload := int(r.u64())
	if r.err != nil {
		return r.err
	}
	if rem := len(r.b) - r.off; payload < 0 || payload > rem {
		return fmt.Errorf("table %q: row payload of %d bytes exceeds the %d remaining", sc.Table, payload, rem)
	}
	if min := minRowSize(sc); nRows < 0 || (min > 0 && nRows > payload/min) {
		return fmt.Errorf("table %q: row count %d is impossible for a %d-byte payload", sc.Table, nRows, payload)
	}
	if err := s.CreateTable(sc); err != nil {
		return err
	}
	t := s.tables[sc.Table]
	// The store is private to this decode, so t.data is never shared yet;
	// bulk-build directly into it.
	d := t.data
	start := r.off
	d.ids = make([]int64, nRows)
	d.rows = make(map[int64]Row, nRows)
	if len(sc.Key) > 0 {
		d.keyIndex = make(map[string]int64, nRows)
	}
	// Single string key column is the dominant shape (implementations,
	// components); its index key needs no joining, and renderKeyPart is
	// allocation-free for strings without escapes.
	singleStrKey := len(sc.Key) == 1 && t.cols[sc.Key[0]] == TString
	// String interning is adaptive per column: the first internSample
	// rows are a trial, and columns whose values never repeat there
	// (names, IIF sources) stop paying the intern lookup — hashing a
	// unique multi-hundred-byte source string twice per row is pure
	// overhead.
	const internSample = 64
	strHits := make([]int, len(sc.Columns))
	strOff := make([]bool, len(sc.Columns))
	for i := 0; i < nRows; i++ {
		row := make(Row, len(sc.Columns))
		for ci, c := range sc.Columns {
			switch c.Type {
			case TString:
				v := r.str()
				if strOff[ci] {
					row[c.Name] = v
					continue
				}
				if b, ok := boxes.strs[v]; ok {
					strHits[ci]++
					row[c.Name] = b
				} else {
					b := any(v)
					boxes.strs[v] = b
					row[c.Name] = b
				}
			case TInt:
				row[c.Name] = boxes.intv(int(int64(r.u64())))
			case TFloat:
				row[c.Name] = boxes.float(math.Float64frombits(r.u64()))
			case TBool:
				row[c.Name] = r.u8() != 0
			}
		}
		if i == internSample-1 {
			for ci, c := range sc.Columns {
				if c.Type == TString && strHits[ci] == 0 {
					strOff[ci] = true
				}
			}
		}
		if r.err != nil {
			return fmt.Errorf("table %q row %d: %w", sc.Table, i, r.err)
		}
		id := int64(i)
		d.rows[id] = row
		d.ids[i] = id
		if singleStrKey {
			d.keyIndex[renderKeyPart(row[sc.Key[0]])] = id
		} else if len(sc.Key) > 0 {
			d.keyIndex[joinRow(sc.Key, row)] = id
		}
		// Rowids ascend with the loop, so plain appends keep every
		// posting list sorted.
		for _, ix := range d.indexes {
			k := joinRow(ix.cols, row)
			ix.postings[k] = append(ix.postings[k], id)
		}
	}
	t.nextID = int64(nRows)
	if len(sc.Key) > 0 && len(d.keyIndex) != nRows {
		return fmt.Errorf("table %q: %d row(s) collapse onto %d primary key(s) — duplicate keys in snapshot",
			sc.Table, nRows, len(d.keyIndex))
	}
	if got := r.off - start; got != payload {
		return fmt.Errorf("table %q: row payload length %d does not match declared %d", sc.Table, got, payload)
	}
	return nil
}

// minRowSize is the smallest possible encoding of one row of sc, used to
// bound row counts before any per-row allocation happens.
func minRowSize(sc Schema) int {
	n := 0
	for _, c := range sc.Columns {
		switch c.Type {
		case TString:
			n += 4
		case TInt, TFloat:
			n += 8
		case TBool:
			n++
		}
	}
	return n
}

// snapReader is a bounds-checked little-endian cursor. b and s alias the
// same bytes; string reads slice s so they never copy.
type snapReader struct {
	b   []byte
	s   string
	off int
	err error
}

func (r *snapReader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if len(r.b)-r.off < n {
		r.err = fmt.Errorf("unexpected end of snapshot at offset %d (truncated file?)", r.off)
		return false
	}
	return true
}

func (r *snapReader) u8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *snapReader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *snapReader) u64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *snapReader) str() string {
	n := int(r.u32())
	// int(u32) can wrap negative on 32-bit platforms; a negative length
	// would slip past need's remaining-bytes comparison and panic below.
	if n < 0 {
		r.err = fmt.Errorf("impossible string length at offset %d (corrupted snapshot?)", r.off)
		return ""
	}
	if r.err != nil || !r.need(n) {
		return ""
	}
	v := r.s[r.off : r.off+n]
	r.off += n
	return v
}

// boxCache dedups the interface boxes materialized while decoding.
// Catalog columns repeat values heavily (component types, styles,
// function-set strings, quantized area/delay estimates), and a boxed
// string or float64 is an allocation each — sharing one immutable box
// per distinct value is most of the difference between ~75k and ~750k
// allocations per 10k-implementation round-trip. Sound because boxed
// values are immutable and rows are cloned on the way out of the store.
type boxCache struct {
	strs   map[string]any
	ints   map[int]any
	floats map[float64]any
}

func newBoxCache() *boxCache {
	return &boxCache{
		strs:   make(map[string]any),
		ints:   make(map[int]any),
		floats: make(map[float64]any),
	}
}

func (bc *boxCache) intv(v int) any {
	if b, ok := bc.ints[v]; ok {
		return b
	}
	b := any(v)
	bc.ints[v] = b
	return b
}

func (bc *boxCache) float(v float64) any {
	if b, ok := bc.floats[v]; ok {
		return b
	}
	b := any(v)
	bc.floats[v] = b
	return b
}

// writeFileAtomic writes data to path via a temp file in the same
// directory: write, fsync, close, rename. Either the old file or the
// complete new one is visible at path at every instant; a crash can at
// worst leave a stray .tmp- file behind. Permissions follow os.WriteFile
// semantics: an existing destination keeps its mode, a fresh one gets
// 0644 filtered through the umask.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	base := filepath.Base(path)
	prevMode, hadPrev := os.FileMode(0), false
	if fi, err := os.Stat(path); err == nil {
		prevMode, hadPrev = fi.Mode().Perm(), true
	}
	var f *os.File
	var tmp string
	for i := 0; ; i++ {
		tmp = filepath.Join(dir, fmt.Sprintf(".%s.tmp-%d-%d", base, os.Getpid(), rand.Uint64()))
		var err error
		// O_EXCL with the target mode: a fresh file's permissions pass
		// through the umask here, exactly like os.WriteFile's would.
		f, err = os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err == nil {
			break
		}
		if !os.IsExist(err) || i >= 16 {
			return fmt.Errorf("relstore: save %s: %w", path, err)
		}
	}
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("relstore: save %s: %w", path, err)
	}
	if _, err := f.Write(data); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if hadPrev {
		// Overwriting keeps the destination's existing permissions, as a
		// plain in-place rewrite would have.
		if err := f.Chmod(prevMode); err != nil {
			return fail(err)
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("relstore: save %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("relstore: save %s: %w", path, err)
	}
	return nil
}
