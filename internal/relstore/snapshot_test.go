package relstore

// Persistence tests: binary snapshot round-trips and robustness against
// malformed files, atomic-save behavior, format sniffing, and the
// JSON load path's per-column validation and error context.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// persistStore builds a store exercising every column type, a multi-table
// layout, a composite key, secondary indexes, a keyless table, an empty
// table, and strings containing the index-key separator and escape bytes.
func persistStore(t *testing.T) *Store {
	t.Helper()
	s := New()
	sc := implSchema()
	sc.Indexes = []Index{{Columns: []string{"component"}}, {Columns: []string{"component", "size"}}}
	if err := s.CreateTable(sc); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		r := Row{
			"name":          fmt.Sprintf("impl%02d", i),
			"component":     fmt.Sprintf("Comp%d", i%3),
			"size":          i % 5,
			"area":          float64(i) * 1.5,
			"parameterized": i%2 == 0,
		}
		if err := s.Insert("implementations", r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.CreateTable(Schema{
		Table:   "params",
		Columns: []Column{{Name: "tool", Type: TString}, {Name: "param", Type: TString}, {Name: "value", Type: TFloat}},
		Key:     []string{"tool", "param"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("params", Row{"tool": "icdb", "param": "area_weight", "value": 2.5}); err != nil {
		t.Fatal(err)
	}
	// Separator and escape bytes inside keyed string values.
	if err := s.Insert("params", Row{"tool": "nul\x00tool", "param": `back\slash`, "value": 1.0}); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable(Schema{
		Table:   "log",
		Columns: []Column{{Name: "msg", Type: TString}},
	}); err != nil { // keyless
		t.Fatal(err)
	}
	if err := s.Insert("log", Row{"msg": "hello"}); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable(Schema{
		Table:   "empty",
		Columns: []Column{{Name: "x", Type: TInt}},
		Key:     []string{"x"},
	}); err != nil { // zero rows
		t.Fatal(err)
	}
	return s
}

// assertStoresEqual compares two stores table by table: schemas and full
// insertion-ordered row contents.
func assertStoresEqual(t *testing.T, want, got *Store) {
	t.Helper()
	wn, gn := want.Tables(), got.Tables()
	if fmt.Sprint(wn) != fmt.Sprint(gn) {
		t.Fatalf("tables = %v, want %v", gn, wn)
	}
	for _, n := range wn {
		ws, err := want.SchemaOf(n)
		if err != nil {
			t.Fatal(err)
		}
		gs, err := got.SchemaOf(n)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprintf("%+v", ws) != fmt.Sprintf("%+v", gs) {
			t.Errorf("table %q schema = %+v, want %+v", n, gs, ws)
		}
		wr, err := want.Select(n, nil)
		if err != nil {
			t.Fatal(err)
		}
		gr, err := got.Select(n, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(wr) != len(gr) {
			t.Fatalf("table %q: %d rows, want %d", n, len(gr), len(wr))
		}
		for i := range wr {
			if fmt.Sprintf("%v", Row(wr[i])) != fmt.Sprintf("%v", Row(gr[i])) {
				t.Errorf("table %q row %d = %v, want %v", n, i, gr[i], wr[i])
			}
			for k, v := range wr[i] {
				if fmt.Sprintf("%T", v) != fmt.Sprintf("%T", gr[i][k]) {
					t.Errorf("table %q row %d column %q type = %T, want %T (canonical types must survive)", n, i, k, gr[i][k], v)
				}
			}
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := persistStore(t)
	path := filepath.Join(t.TempDir(), "store.snap")
	if err := s.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	s2, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	assertStoresEqual(t, s, s2)

	// The bulk-built indexes must actually serve reads.
	one, err := s2.Get("implementations", "impl07")
	if err != nil || one["size"] != 2 {
		t.Fatalf("Get after snapshot load = %v, %v", one, err)
	}
	rows, err := s2.Select("implementations", Eq("component", "Comp1"))
	if err != nil || len(rows) == 0 {
		t.Fatalf("secondary-index select after snapshot load = %d rows, %v", len(rows), err)
	}
	for _, r := range rows {
		if r["component"] != "Comp1" {
			t.Errorf("indexed select returned %v", r)
		}
	}
	if _, err := s2.Get("params", "nul\x00tool", `back\slash`); err != nil {
		t.Errorf("composite key with separator bytes broken after load: %v", err)
	}

	// The loaded store must stay writable: key conflicts detected, new
	// rowids allocated past the bulk-loaded ones, scan order extended.
	if err := s2.Insert("implementations", Row{
		"name": "impl00", "component": "X", "size": 1, "area": 1.0, "parameterized": false,
	}); err == nil {
		t.Error("duplicate key accepted after snapshot load")
	}
	if err := s2.Insert("implementations", Row{
		"name": "fresh", "component": "Comp1", "size": 9, "area": 1.0, "parameterized": false,
	}); err != nil {
		t.Fatal(err)
	}
	all, err := s2.Select("implementations", nil)
	if err != nil || len(all) != 26 || all[25]["name"] != "fresh" {
		t.Fatalf("insert after snapshot load: %d rows, last %v (%v)", len(all), all[len(all)-1]["name"], err)
	}
}

// TestSnapshotJSONCrossValidation: the same store written through both
// formats reloads identically — binary vs JSON produce indistinguishable
// stores, and binary survives a JSON detour.
func TestSnapshotJSONCrossValidation(t *testing.T) {
	s := persistStore(t)
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "store.json")
	snapPath := filepath.Join(dir, "store.snap")
	if err := s.Save(jsonPath); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveSnapshot(snapPath); err != nil {
		t.Fatal(err)
	}
	fromJSON, err := Load(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	fromSnap, err := LoadSnapshot(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	assertStoresEqual(t, fromJSON, fromSnap)

	// JSON -> binary -> JSON keeps the JSON wire form stable too.
	if err := fromSnap.Save(filepath.Join(dir, "store2.json")); err != nil {
		t.Fatal(err)
	}
	j1, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := os.ReadFile(filepath.Join(dir, "store2.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Error("JSON serialization differs after a binary round-trip")
	}
}

// TestLoadSniffsFormat: one Load entry point reads both formats.
func TestLoadSniffsFormat(t *testing.T) {
	s := persistStore(t)
	dir := t.TempDir()
	for _, tc := range []struct {
		name string
		save func(string) error
	}{
		{"json", s.Save},
		{"snapshot", s.SaveSnapshot},
	} {
		path := filepath.Join(dir, tc.name)
		if err := tc.save(path); err != nil {
			t.Fatal(err)
		}
		got, err := Load(path)
		if err != nil {
			t.Fatalf("Load(%s): %v", tc.name, err)
		}
		assertStoresEqual(t, s, got)
	}
	// LoadSnapshot is strict: a JSON file is rejected with a clear error,
	// not mis-parsed.
	jsonPath := filepath.Join(dir, "json")
	if _, err := LoadSnapshot(jsonPath); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("LoadSnapshot(json file) = %v, want bad-magic error", err)
	}
}

// TestSnapshotRobustness: malformed snapshots of every flavor fail with
// descriptive errors — never a panic, never a silently wrong store.
func TestSnapshotRobustness(t *testing.T) {
	s := persistStore(t)
	path := filepath.Join(t.TempDir(), "store.snap")
	if err := s.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	load := func(b []byte) error {
		_, _, err := decodeSnapshot(b)
		return err
	}

	t.Run("truncated", func(t *testing.T) {
		// Every proper prefix must fail (the checksum trailer guarantees
		// it); step through all short prefixes and a sample of longer ones.
		for n := 0; n < len(data); n++ {
			if n > 64 && n%7 != 0 {
				continue
			}
			if err := load(data[:n]); err == nil {
				t.Fatalf("truncation to %d bytes loaded successfully", n)
			}
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte("NOTASNAP"), data[8:]...)
		if err := load(bad); err == nil || !strings.Contains(err.Error(), "magic") {
			t.Errorf("bad magic: %v", err)
		}
	})
	t.Run("wrong version", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		binary.LittleEndian.PutUint32(bad[8:], 999)
		// Re-seal the checksum so the version check itself is reached.
		binary.LittleEndian.PutUint32(bad[len(bad)-4:], crcOf(bad[:len(bad)-4]))
		if err := load(bad); err == nil || !strings.Contains(err.Error(), "version 999") {
			t.Errorf("wrong version: %v", err)
		}
	})
	t.Run("v1 snapshot rejected", func(t *testing.T) {
		// A version-1 file (the PR 3 format, predating the generators and
		// estimators sections) must be rejected with a clear version error
		// — not misparsed as a catalog missing the new relations. JSON
		// stays the cross-version compatibility path.
		old := append([]byte(nil), data...)
		binary.LittleEndian.PutUint32(old[8:], 1)
		binary.LittleEndian.PutUint32(old[len(old)-4:], crcOf(old[:len(old)-4]))
		err := load(old)
		if err == nil || !strings.Contains(err.Error(), "unsupported snapshot version 1") {
			t.Fatalf("v1 snapshot: %v, want unsupported-version error", err)
		}
		if !strings.Contains(err.Error(), "reads versions 2-4") {
			t.Errorf("v1 snapshot error %v does not name the supported versions", err)
		}
	})
	t.Run("v2 snapshot accepted", func(t *testing.T) {
		// A version-2 file predates the covered-LSN header field but is
		// otherwise the v3 layout (no section directory); a v4 reader
		// accepts it with covered LSN zero instead of forcing a JSON
		// migration. Derive the v2 bytes from a v3 encode — the current
		// format's directory does not exist in either.
		s.mu.RLock()
		v3, err3 := s.encodeSnapshotAt(3)
		s.mu.RUnlock()
		if err3 != nil {
			t.Fatal(err3)
		}
		old := append([]byte(nil), v3[:12]...)
		old = append(old, v3[20:len(v3)-4]...) // drop the LSN field
		binary.LittleEndian.PutUint32(old[8:], 2)
		old = append(old, 0, 0, 0, 0)
		binary.LittleEndian.PutUint32(old[len(old)-4:], crcOf(old[:len(old)-4]))
		s2, lsn, err := decodeSnapshot(old)
		if err != nil {
			t.Fatalf("v2 snapshot rejected: %v", err)
		}
		if lsn != 0 {
			t.Errorf("v2 snapshot decoded with covered LSN %d, want 0", lsn)
		}
		if len(s2.Tables()) != len(s.Tables()) {
			t.Errorf("v2 snapshot decoded %d tables, want %d", len(s2.Tables()), len(s.Tables()))
		}
	})
	t.Run("corrupted byte", func(t *testing.T) {
		for _, off := range []int{12, len(data) / 2, len(data) - 5} {
			bad := append([]byte(nil), data...)
			bad[off] ^= 0xFF
			if err := load(bad); err == nil || !strings.Contains(err.Error(), "checksum") {
				t.Errorf("flip at %d: %v, want checksum error", off, err)
			}
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		bad := append(append([]byte(nil), data[:len(data)-4]...), "junk"...)
		bad = append(bad, data[len(data)-4:]...)
		if err := load(bad); err == nil {
			t.Error("trailing garbage accepted")
		}
	})
	t.Run("duplicate keys", func(t *testing.T) {
		// Forge a checksummed snapshot whose keyed table repeats a key:
		// the trusted path must still refuse it.
		forged := buildForgedSnapshot(t, func(w *snapWriter) {
			w.str("t")
			w.u32(1)
			w.str("k")
			w.u8(uint8(TString))
			w.u32(1)
			w.str("k")
			w.u32(0)           // no secondary indexes
			w.u32(2)           // two rows
			w.u64(2 * (4 + 1)) // payload
			w.str("x")
			w.str("x")
		})
		if err := load(forged); err == nil || !strings.Contains(err.Error(), "duplicate") {
			t.Errorf("duplicate keys: %v", err)
		}
	})
	t.Run("payload mismatch", func(t *testing.T) {
		forged := buildForgedSnapshot(t, func(w *snapWriter) {
			w.str("t")
			w.u32(1)
			w.str("k")
			w.u8(uint8(TInt))
			w.u32(0) // no key
			w.u32(0) // no indexes
			w.u32(1) // one row
			w.u64(99)
			w.u64(7)
		})
		if err := load(forged); err == nil {
			t.Error("payload length mismatch accepted")
		}
	})
	t.Run("absurd row count", func(t *testing.T) {
		forged := buildForgedSnapshot(t, func(w *snapWriter) {
			w.str("t")
			w.u32(1)
			w.str("k")
			w.u8(uint8(TInt))
			w.u32(0)
			w.u32(0)
			w.u32(1 << 30) // a billion rows in an empty payload
			w.u64(0)
		})
		if err := load(forged); err == nil || !strings.Contains(err.Error(), "row count") {
			t.Errorf("absurd row count: %v", err)
		}
	})
	t.Run("empty store", func(t *testing.T) {
		p := filepath.Join(t.TempDir(), "empty.snap")
		if err := New().SaveSnapshot(p); err != nil {
			t.Fatal(err)
		}
		s2, err := LoadSnapshot(p)
		if err != nil || len(s2.Tables()) != 0 {
			t.Errorf("empty store round-trip: %v tables, %v", s2.Tables(), err)
		}
	})
}

func crcOf(b []byte) uint32 { return crc32.Checksum(b, crc32.MakeTable(crc32.Castagnoli)) }

// buildForgedSnapshot assembles a single-table snapshot with a valid
// header and checksum around the section written by fill. It forges the
// v3 layout — no section directory to fabricate — which exercises the
// same section decoding the v4 paths share.
func buildForgedSnapshot(t *testing.T, fill func(*snapWriter)) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := &snapWriter{buf: &buf}
	w.raw([]byte(snapMagic))
	w.u32(3)
	w.u64(0) // covered LSN
	w.u32(1)
	fill(w)
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crcOf(buf.Bytes()))
	buf.Write(trailer[:])
	return buf.Bytes()
}

// TestSnapshotByteIdentical is the quick-style property: for a spread of
// pseudo-random stores, Save -> LoadSnapshot -> Save reproduces the file
// byte for byte (deterministic table order, preserved insertion order,
// canonical value types).
func TestSnapshotByteIdentical(t *testing.T) {
	dir := t.TempDir()
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := randomStore(t, rng)
		p1 := filepath.Join(dir, fmt.Sprintf("s%d_a.snap", seed))
		p2 := filepath.Join(dir, fmt.Sprintf("s%d_b.snap", seed))
		if err := s.SaveSnapshot(p1); err != nil {
			t.Fatal(err)
		}
		s2, err := LoadSnapshot(p1)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := s2.SaveSnapshot(p2); err != nil {
			t.Fatal(err)
		}
		b1, err := os.ReadFile(p1)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := os.ReadFile(p2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("seed %d: Save -> LoadSnapshot -> Save is not byte-identical (%d vs %d bytes)", seed, len(b1), len(b2))
		}
	}
}

// randomStore generates a store with random tables, schemas, and rows.
func randomStore(t *testing.T, rng *rand.Rand) *Store {
	t.Helper()
	s := New()
	types := []ColType{TString, TInt, TFloat, TBool}
	for ti := 0; ti < 1+rng.Intn(4); ti++ {
		sc := Schema{Table: fmt.Sprintf("table%d", ti)}
		nCols := 1 + rng.Intn(5)
		for ci := 0; ci < nCols; ci++ {
			sc.Columns = append(sc.Columns, Column{
				Name: fmt.Sprintf("c%d", ci),
				Type: types[rng.Intn(len(types))],
			})
		}
		// Half the tables get an int id key column; some get an index.
		keyed := rng.Intn(2) == 0
		if keyed {
			sc.Columns = append(sc.Columns, Column{Name: "id", Type: TInt})
			sc.Key = []string{"id"}
		}
		if rng.Intn(2) == 0 {
			sc.Indexes = []Index{{Columns: []string{sc.Columns[0].Name}}}
		}
		if err := s.CreateTable(sc); err != nil {
			t.Fatal(err)
		}
		for ri := 0; ri < rng.Intn(30); ri++ {
			r := Row{}
			for _, c := range sc.Columns {
				switch c.Type {
				case TString:
					b := make([]byte, rng.Intn(12))
					rng.Read(b)
					r[c.Name] = string(b) // arbitrary bytes incl. NUL and '\'
				case TInt:
					r[c.Name] = rng.Intn(1 << 20)
				case TFloat:
					r[c.Name] = rng.NormFloat64()
				case TBool:
					r[c.Name] = rng.Intn(2) == 0
				}
			}
			if keyed {
				r["id"] = ri
			}
			if err := s.Insert(sc.Table, r); err != nil {
				t.Fatal(err)
			}
		}
	}
	return s
}

// TestSaveAtomic: both save paths go through the temp-file-and-rename
// protocol — a failed save leaves the previous file intact and no
// temp litter behind.
func TestSaveAtomic(t *testing.T) {
	s := persistStore(t)
	dir := t.TempDir()
	for _, tc := range []struct {
		name string
		save func(string) error
	}{
		{"json", s.Save},
		{"snapshot", s.SaveSnapshot},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, tc.name+".db")
			if err := tc.save(path); err != nil {
				t.Fatal(err)
			}
			before, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// A save into a missing directory fails before touching path.
			if err := tc.save(filepath.Join(dir, "no-such-dir", "x.db")); err == nil {
				t.Error("save into missing directory succeeded")
			}
			after, err := os.ReadFile(path)
			if err != nil || !bytes.Equal(before, after) {
				t.Error("failed save disturbed the existing file")
			}
			// Overwrite succeeds, preserves the destination's existing
			// permissions (os.WriteFile semantics), and leaves no temp
			// files around.
			if err := os.Chmod(path, 0o600); err != nil {
				t.Fatal(err)
			}
			if err := tc.save(path); err != nil {
				t.Fatal(err)
			}
			if fi, err := os.Stat(path); err != nil || fi.Mode().Perm() != 0o600 {
				t.Errorf("overwrite changed mode to %v (%v), want 0600 preserved", fi.Mode().Perm(), err)
			}
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				if strings.Contains(e.Name(), ".tmp-") {
					t.Errorf("temp file %q left behind", e.Name())
				}
			}
		})
	}
}

// TestLoadJSONErrorContext: the reworked JSON load path reports the
// table, row index, and column of every malformed value instead of a
// bare Insert failure, and refuses non-integral values in int columns
// rather than truncating them.
func TestLoadJSONErrorContext(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	schema := `"schema": {"Table": "t", "Columns": [{"Name": "n", "Type": 0}, {"Name": "size", "Type": 1}], "Key": ["n"]}`

	for _, tc := range []struct {
		name, rows string
		want       []string
	}{
		{
			"wrong type",
			`[{"n": "a", "size": "five"}]`,
			[]string{`table "t"`, "row 0", `column "size"`, "want int"},
		},
		{
			"fractional int",
			`[{"n": "a", "size": 1}, {"n": "b", "size": 2.5}]`,
			[]string{`table "t"`, "row 1", `column "size"`, "want int", "float64"},
		},
		{
			"missing column",
			`[{"n": "a"}]`,
			[]string{`table "t"`, "row 0", `missing column "size"`},
		},
		{
			"undeclared column",
			`[{"n": "a", "size": 1, "bogus": true}]`,
			[]string{`table "t"`, "row 0", `undeclared column "bogus"`},
		},
		{
			"duplicate key",
			`[{"n": "a", "size": 1}, {"n": "a", "size": 2}]`,
			[]string{`table "t"`, "row 1", "duplicate key"},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := write(tc.name+".json", `{"t": {`+schema+`, "rows": `+tc.rows+`}}`)
			_, err := Load(p)
			if err == nil {
				t.Fatal("malformed JSON store loaded successfully")
			}
			for _, frag := range tc.want {
				if !strings.Contains(err.Error(), frag) {
					t.Errorf("error %q missing %q", err, frag)
				}
			}
		})
	}

	// A valid file with integral float ints still loads canonically.
	p := write("ok.json", `{"t": {`+schema+`, "rows": [{"n": "a", "size": 3}]}}`)
	s, err := Load(p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Get("t", "a")
	if err != nil || r["size"] != 3 {
		t.Errorf("reloaded row = %v (%v), want size int 3", r, err)
	}
	// Mismatched map key vs schema table name is caught.
	p = write("mismatch.json", `{"other": {`+schema+`, "rows": []}}`)
	if _, err := Load(p); err == nil || !strings.Contains(err.Error(), "declares name") {
		t.Errorf("table-name mismatch: %v", err)
	}
}

// TestRowsCursor: the iterator walks planned candidates in insertion
// order, stops on break without wedging the store lock, and surfaces
// unknown-table errors through the sequence.
func TestRowsCursor(t *testing.T) {
	s := persistStore(t)
	var names []string
	for r, err := range s.Rows("implementations", Eq("component", "Comp2")) {
		if err != nil {
			t.Fatal(err)
		}
		names = append(names, r["name"].(string))
	}
	want, err := s.Select("implementations", Eq("component", "Comp2"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != len(want) {
		t.Fatalf("cursor yielded %d rows, Select %d", len(names), len(want))
	}
	for i := range want {
		if names[i] != want[i]["name"] {
			t.Errorf("row %d = %q, want %q (insertion order)", i, names[i], want[i]["name"])
		}
	}
	// Early break must release the read lock: a write afterwards would
	// deadlock if the iterator leaked it.
	for range s.Rows("implementations", nil) {
		break
	}
	if err := s.Insert("implementations", Row{
		"name": "post-break", "component": "X", "size": 0, "area": 0.0, "parameterized": false,
	}); err != nil {
		t.Fatalf("insert after broken iteration: %v", err)
	}
	sawErr := false
	for _, err := range s.Rows("no_such_table", nil) {
		if err == nil {
			t.Fatal("missing table yielded a row")
		}
		sawErr = true
	}
	if !sawErr {
		t.Error("missing table: cursor yielded nothing, want error")
	}
}
