package relstore

// Lazy-open test suite: first-touch hydration equivalence with eager
// open, save byte-identity, concurrent first touch under -race,
// per-section corruption isolation, pre-v4 fallback, and OpenDurable's
// deferred journal replay.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestLazyOpenSaveByteIdentical is the lazy analogue of
// TestSnapshotByteIdentical: for random stores, opening a snapshot
// lazily, touching an arbitrary subset of tables, and saving (which
// hydrates the rest) must produce exactly the bytes an eager open
// saves — and exactly the original file.
func TestLazyOpenSaveByteIdentical(t *testing.T) {
	dir := t.TempDir()
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := randomStore(t, rng)
		p0 := filepath.Join(dir, fmt.Sprintf("s%d_orig.snap", seed))
		if err := s.SaveSnapshot(p0); err != nil {
			t.Fatal(err)
		}
		eager, err := OpenSnapshot(p0, SnapshotOptions{})
		if err != nil {
			t.Fatalf("seed %d: eager open: %v", seed, err)
		}
		lazy, err := OpenSnapshot(p0, SnapshotOptions{Mode: OpenLazy})
		if err != nil {
			t.Fatalf("seed %d: lazy open: %v", seed, err)
		}
		// Touch a random subset now; SaveSnapshot's HydrateAll picks up
		// whatever stayed cold.
		for _, n := range lazy.Tables() {
			if rng.Intn(2) == 0 {
				if _, err := lazy.Count(n, nil); err != nil {
					t.Fatalf("seed %d: touch %q: %v", seed, n, err)
				}
			}
		}
		pe := filepath.Join(dir, fmt.Sprintf("s%d_eager.snap", seed))
		pl := filepath.Join(dir, fmt.Sprintf("s%d_lazy.snap", seed))
		if err := eager.SaveSnapshot(pe); err != nil {
			t.Fatal(err)
		}
		if err := lazy.SaveSnapshot(pl); err != nil {
			t.Fatal(err)
		}
		b0, _ := os.ReadFile(p0)
		be, _ := os.ReadFile(pe)
		bl, _ := os.ReadFile(pl)
		if !bytes.Equal(be, bl) {
			t.Fatalf("seed %d: lazy save differs from eager save (%d vs %d bytes)", seed, len(bl), len(be))
		}
		if !bytes.Equal(b0, bl) {
			t.Fatalf("seed %d: lazy round trip is not byte-identical to the original", seed)
		}
	}
}

// TestLazyOpenEquivalence: a lazily opened store answers every read
// exactly like an eager one, and the hydration counters move as
// documented — one hydration per table, never a re-decode.
func TestLazyOpenEquivalence(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(7))
	s := randomStore(t, rng)
	path := filepath.Join(dir, "cat.snap")
	if err := s.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	eager, err := OpenSnapshot(path, SnapshotOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := OpenSnapshot(path, SnapshotOptions{Mode: OpenLazy})
	if err != nil {
		t.Fatal(err)
	}

	li := lazy.LazyInfo()
	if !li.Lazy || li.Hydrated != 0 || li.Pending != len(s.Tables()) || li.Hydrations != 0 {
		t.Fatalf("fresh lazy open LazyInfo = %+v", li)
	}
	if ei := eager.LazyInfo(); ei.Lazy || ei.Pending != 0 {
		t.Fatalf("eager open LazyInfo = %+v", ei)
	}

	for _, n := range s.Tables() {
		want, err := eager.Select(n, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := lazy.Select(n, nil)
		if err != nil {
			t.Fatalf("lazy select %q: %v", n, err)
		}
		if len(got) != len(want) {
			t.Fatalf("table %q: lazy has %d rows, eager %d", n, len(got), len(want))
		}
		for i := range want {
			if fmt.Sprint(got[i]) != fmt.Sprint(want[i]) {
				t.Fatalf("table %q row %d: lazy %v != eager %v", n, i, got[i], want[i])
			}
		}
		// Second touch: no new hydration.
		before := lazy.LazyInfo().Hydrations
		if _, err := lazy.Count(n, nil); err != nil {
			t.Fatal(err)
		}
		if after := lazy.LazyInfo().Hydrations; after != before {
			t.Fatalf("table %q re-hydrated (%d -> %d)", n, before, after)
		}
	}
	li = lazy.LazyInfo()
	if li.Pending != 0 || li.Hydrated != li.Tables || li.Hydrations != int64(li.Tables) {
		t.Fatalf("post-touch LazyInfo = %+v, want everything hydrated exactly once", li)
	}
}

// TestLazyConcurrentFirstTouch is the -race stress for the
// double-checked hydration gate: many goroutines race to first-touch
// every table; each table must hydrate exactly once and every reader
// must see the full row set.
func TestLazyConcurrentFirstTouch(t *testing.T) {
	dir := t.TempDir()
	s := New()
	const nTables, nRows = 6, 200
	for ti := 0; ti < nTables; ti++ {
		name := fmt.Sprintf("t%d", ti)
		if err := s.CreateTable(Schema{
			Table:   name,
			Columns: []Column{{Name: "id", Type: TInt}, {Name: "v", Type: TString}},
			Key:     []string{"id"},
		}); err != nil {
			t.Fatal(err)
		}
		for ri := 0; ri < nRows; ri++ {
			if err := s.Insert(name, Row{"id": ri, "v": fmt.Sprintf("val%d", ri)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	path := filepath.Join(dir, "cat.snap")
	if err := s.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	lazy, err := OpenSnapshot(path, SnapshotOptions{Mode: OpenLazy})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ti := 0; ti < nTables; ti++ {
				name := fmt.Sprintf("t%d", (ti+w)%nTables)
				if n, err := lazy.Count(name, nil); err != nil || n != nRows {
					errs <- fmt.Errorf("worker %d table %s: n=%d err=%v", w, name, n, err)
					return
				}
				if r, err := lazy.Get(name, w*7%nRows); err != nil || r["v"] != fmt.Sprintf("val%d", w*7%nRows) {
					errs <- fmt.Errorf("worker %d table %s: get %v err=%v", w, name, r, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	li := lazy.LazyInfo()
	if li.Hydrations != nTables || li.Pending != 0 {
		t.Errorf("LazyInfo = %+v, want exactly %d hydrations (one per table, no double decode)", li, nTables)
	}
}

// TestLazySectionCorruptionSweep corrupts each table section of a v4
// snapshot in turn: lazy open still succeeds and only the corrupt
// table's hydration fails (with a sticky error), while eager open of
// the same bytes fails the whole file at the trailer CRC.
func TestLazySectionCorruptionSweep(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(11))
	var s *Store
	for {
		s = randomStore(t, rng)
		if len(s.Tables()) >= 3 {
			break
		}
	}
	// Every table needs at least one row so a body flip is possible.
	for _, n := range s.Tables() {
		if err := s.Insert(n, mustRow(t, s, n)); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(dir, "cat.snap")
	if err := s.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	_, entries, err := decodeSnapDirectory(orig)
	if err != nil {
		t.Fatal(err)
	}

	for _, victim := range entries {
		data := bytes.Clone(orig)
		data[victim.off+victim.len-1] ^= 0xFF // flip a row-payload byte
		bad := filepath.Join(dir, "bad.snap")
		if err := os.WriteFile(bad, data, 0o644); err != nil {
			t.Fatal(err)
		}

		if _, err := OpenSnapshot(bad, SnapshotOptions{}); err == nil ||
			!strings.Contains(err.Error(), "checksum mismatch") {
			t.Errorf("victim %q: eager open = %v, want whole-file checksum error", victim.name, err)
		}

		lazy, err := OpenSnapshot(bad, SnapshotOptions{Mode: OpenLazy})
		if err != nil {
			t.Fatalf("victim %q: lazy open: %v", victim.name, err)
		}
		for _, n := range lazy.Tables() {
			_, err := lazy.Select(n, nil)
			if n == victim.name {
				if err == nil || !strings.Contains(err.Error(), "section checksum mismatch") {
					t.Errorf("victim %q: corrupt section hydrated: %v", n, err)
				}
				// Sticky: the second touch fails identically without re-decoding.
				if _, err2 := lazy.Count(n, nil); err2 == nil || err2.Error() != err.Error() {
					t.Errorf("victim %q: poison not sticky (%v vs %v)", n, err2, err)
				}
			} else if err != nil {
				t.Errorf("victim %q: healthy table %q failed: %v", victim.name, n, err)
			}
		}
		if li := lazy.LazyInfo(); li.Pending != 1 {
			t.Errorf("victim %q: LazyInfo = %+v, want exactly the poisoned section pending", victim.name, li)
		}
	}
}

// mustRow builds one schema-conforming row for table n with a key no
// randomStore row uses.
func mustRow(t *testing.T, s *Store, n string) Row {
	t.Helper()
	sc, err := s.SchemaOf(n)
	if err != nil {
		t.Fatal(err)
	}
	r := Row{}
	for _, c := range sc.Columns {
		switch c.Type {
		case TString:
			r[c.Name] = "corruption-sweep-filler"
		case TInt:
			r[c.Name] = 1 << 21
		case TFloat:
			r[c.Name] = 3.25
		case TBool:
			r[c.Name] = true
		}
	}
	return r
}

// TestLazyOpenV3FallsBackToEager: pre-v4 snapshots have no section
// directory, so asking for a lazy open quietly materializes everything.
func TestLazyOpenV3FallsBackToEager(t *testing.T) {
	dir := t.TempDir()
	s := randomStore(t, rand.New(rand.NewSource(3)))
	path := filepath.Join(dir, "v3.snap")
	if err := s.SaveSnapshotVersion(path, 3); err != nil {
		t.Fatal(err)
	}
	lazy, err := OpenSnapshot(path, SnapshotOptions{Mode: OpenLazy})
	if err != nil {
		t.Fatal(err)
	}
	li := lazy.LazyInfo()
	if li.Lazy || li.Pending != 0 {
		t.Fatalf("v3 lazy open LazyInfo = %+v, want a fully materialized eager fallback", li)
	}
	for _, n := range s.Tables() {
		want, _ := s.Count(n, nil)
		if got, err := lazy.Count(n, nil); err != nil || got != want {
			t.Errorf("table %q: %d rows (err %v), want %d", n, got, err, want)
		}
	}
}

// TestLazyDurableDeferredReplay: OpenDurable under OpenLazy defers each
// cold table's uncovered journal records to its hydration — structural
// records still apply at open — and first touch replays them exactly
// once, yielding the same state an eager recovery builds.
func TestLazyDurableDeferredReplay(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir, DurableOptions{})
	if err := d.CreateTable(durableSchema()); err != nil {
		t.Fatal(err)
	}
	second := Schema{
		Table:   "notes",
		Columns: []Column{{Name: "k", Type: TString}, {Name: "txt", Type: TString}},
		Key:     []string{"k"},
	}
	if err := d.CreateTable(second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := d.Insert("impls", Row{"name": fmt.Sprintf("i%d", i), "comp": "alu", "size": i, "area": float64(i), "param": true}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	// Uncovered tail: row records for both snapshot tables (deferrable),
	// plus a structural create-table + insert into the new table (the
	// create applies at open, which makes the table live, so its insert
	// applies eagerly too).
	if err := d.Insert("impls", Row{"name": "late", "comp": "mux", "size": 9, "area": 9.5, "param": false}); err != nil {
		t.Fatal(err)
	}
	if err := d.Upsert("notes", Row{"k": "a", "txt": "deferred?"}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Delete("impls", Eq("name", "i0")); err != nil {
		t.Fatal(err)
	}
	third := Schema{
		Table:   "fresh",
		Columns: []Column{{Name: "id", Type: TInt}},
		Key:     []string{"id"},
	}
	if err := d.CreateTable(third); err != nil {
		t.Fatal(err)
	}
	if err := d.Insert("fresh", Row{"id": 42}); err != nil {
		t.Fatal(err)
	}
	want := stateOf(t, d.Store)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	lz, err := OpenDurable(filepath.Join(dir, "cat.snap"), DurableOptions{Open: OpenLazy})
	if err != nil {
		t.Fatal(err)
	}
	defer lz.Close()
	ri := lz.Recovery()
	// impls: insert + delete deferred; notes: upsert deferred. fresh:
	// create-table + insert applied at open (3 deferred, 2 replayed).
	if ri.Deferred != 3 || ri.Replayed != 2 {
		t.Fatalf("recovery = %+v, want 3 deferred / 2 replayed", ri)
	}
	if !strings.Contains(ri.String(), "3 deferred to hydration") {
		t.Errorf("RecoveryInfo.String() = %q, want the deferred count", ri.String())
	}
	li := lz.Store.LazyInfo()
	if !li.Lazy || li.DeferredPending != 3 || li.DeferredReplayed != 0 {
		t.Fatalf("LazyInfo at open = %+v", li)
	}
	// The structural records' table is queryable immediately.
	if r, err := lz.Get("fresh", 42); err != nil || r["id"] != 42 {
		t.Fatalf("open-time applied record: %v, %v", r, err)
	}

	// First touch of impls replays its two records exactly once.
	if _, err := lz.Get("impls", "mux", "late"); err != nil {
		t.Fatalf("deferred insert not replayed: %v", err)
	}
	if _, err := lz.Get("impls", "alu", "i0"); err == nil {
		t.Error("deferred delete not replayed: i0 resurrected")
	}
	li = lz.Store.LazyInfo()
	if li.DeferredPending != 1 || li.DeferredReplayed != 2 {
		t.Fatalf("LazyInfo after touching impls = %+v, want 1 pending / 2 replayed", li)
	}

	// Full hydration converges on the eager recovery state.
	if err := lz.Store.HydrateAll(); err != nil {
		t.Fatal(err)
	}
	if got := stateOf(t, lz.Store); !bytes.Equal(got, want) {
		t.Error("lazy recovery diverged from pre-close state")
	}
	if li = lz.Store.LazyInfo(); li.DeferredPending != 0 || li.DeferredReplayed != 3 {
		t.Fatalf("LazyInfo after full hydration = %+v", li)
	}
}

// TestLazyDurableCompactHydratesFirst: Compact on a lazily opened store
// must fold the deferred records in — the rewritten snapshot covers the
// journal, so leaving them cold would lose them.
func TestLazyDurableCompactHydratesFirst(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir, DurableOptions{})
	if err := d.CreateTable(durableSchema()); err != nil {
		t.Fatal(err)
	}
	if err := d.Insert("impls", Row{"name": "a", "comp": "alu", "size": 1, "area": 1.0, "param": true}); err != nil {
		t.Fatal(err)
	}
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := d.Insert("impls", Row{"name": "b", "comp": "alu", "size": 2, "area": 2.0, "param": true}); err != nil {
		t.Fatal(err)
	}
	want := stateOf(t, d.Store)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	lz, err := OpenDurable(filepath.Join(dir, "cat.snap"), DurableOptions{Open: OpenLazy})
	if err != nil {
		t.Fatal(err)
	}
	if lz.Recovery().Deferred != 1 {
		t.Fatalf("recovery = %+v, want 1 deferred record", lz.Recovery())
	}
	// Compact without any prior touch: the deferred insert must survive.
	if err := lz.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := lz.Close(); err != nil {
		t.Fatal(err)
	}
	e, err := OpenDurable(filepath.Join(dir, "cat.snap"), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Recovery().Replayed != 0 || e.Recovery().Deferred != 0 {
		t.Errorf("post-compact recovery = %+v, want an empty journal", e.Recovery())
	}
	if got := stateOf(t, e.Store); !bytes.Equal(got, want) {
		t.Error("compaction of a lazy store lost deferred records")
	}
}

// TestLazyDurableMissingTableRecordFailsAtOpen: a journal record naming
// a table the snapshot does not hold cannot be deferred — there is no
// stub to hang it on — and must fail the open loudly, exactly like an
// eager recovery.
func TestLazyDurableMissingTableRecordFailsAtOpen(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir, DurableOptions{})
	if err := d.CreateTable(durableSchema()); err != nil {
		t.Fatal(err)
	}
	if err := d.Insert("impls", Row{"name": "a", "comp": "alu", "size": 1, "area": 1.0, "param": true}); err != nil {
		t.Fatal(err)
	}
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Forge a create-index record naming a table that is not in the
	// snapshot and append it with valid framing.
	w := snapWriter{buf: &bytes.Buffer{}}
	w.u8(walOpCreateIndex)
	w.str("ghost")
	w.u32(1)
	w.str("nope")
	payload := w.buf.Bytes()
	frame := make([]byte, 8)
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, snapCRC))
	jpath := filepath.Join(dir, "cat.snap.wal")
	f, err := os.OpenFile(jpath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(append(frame, payload...)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	for _, mode := range []OpenMode{OpenLazy, OpenEager} {
		_, err := OpenDurable(filepath.Join(dir, "cat.snap"), DurableOptions{Open: mode})
		if err == nil || !strings.Contains(err.Error(), `no table "ghost"`) {
			t.Errorf("%v open with a ghost-table record: err = %v, want a loud missing-table failure", mode, err)
		}
	}
}

// TestLazyDurableTornTail: torn-tail truncation happens at open, before
// any deferral — a lazy recovery of a torn journal lands on the same
// record prefix an eager one does.
func TestLazyDurableTornTail(t *testing.T) {
	dir := t.TempDir()
	jpath, states := seedJournal(t, dir, 6)
	jdata, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jpath, jdata[:len(jdata)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDurable(filepath.Join(dir, "cat.snap"), DurableOptions{Open: OpenLazy})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if !d.Recovery().Truncated {
		t.Fatal("torn tail not reported")
	}
	// No snapshot was ever written, so there are no stubs — everything
	// replayed eagerly and the state is the second-to-last prefix.
	if got := stateOf(t, d.Store); !bytes.Equal(got, states[len(states)-2]) {
		t.Error("lazy torn-tail recovery is not the clean record prefix")
	}
}
