package relstore

// Microbenchmarks for the planner's access paths: keyed point lookups,
// secondary-index probes, the zero-copy Scan, and the full-scan fallback
// they replace.

import (
	"fmt"
	"testing"
)

// benchStore builds an implementations table with n rows, keyed by name,
// with a secondary index on (component).
func benchStore(b *testing.B, n int) *Store {
	b.Helper()
	sc := implSchema()
	sc.Indexes = []Index{{Columns: []string{"component"}}}
	s := New()
	if err := s.CreateTable(sc); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := s.Insert("implementations", implRowN(i, fmt.Sprintf("Comp%02d", i%50))); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

const benchRows = 10000

func BenchmarkGet(b *testing.B) {
	s := benchStore(b, benchRows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get("implementations", fmt.Sprintf("impl%03d", i%benchRows)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectOneByKey(b *testing.B) {
	s := benchStore(b, benchRows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SelectOne("implementations", Eq("name", fmt.Sprintf("impl%03d", i%benchRows))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSelectOneFullScan forces the scan fallback with an opaque
// Func predicate — the shape every keyed lookup had before the planner.
func BenchmarkSelectOneFullScan(b *testing.B) {
	s := benchStore(b, benchRows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("impl%03d", i%benchRows)
		if _, err := s.SelectOne("implementations", Func(func(r Row) bool { return r["name"] == name })); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectSecondaryIndex(b *testing.B) {
	s := benchStore(b, benchRows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := s.Select("implementations", Eq("component", fmt.Sprintf("Comp%02d", i%50)))
		if err != nil || len(rows) == 0 {
			b.Fatal(err, len(rows))
		}
	}
}

// BenchmarkSelectUnindexedColumn is the same selectivity without an
// index: planner falls back to the verified scan.
func BenchmarkSelectUnindexedColumn(b *testing.B) {
	s := benchStore(b, benchRows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := s.Select("implementations", Eq("size", i%4))
		if err != nil || len(rows) == 0 {
			b.Fatal(err, len(rows))
		}
	}
}

// BenchmarkRowsCursor drives the iterator form of the planned read path;
// it should track BenchmarkScanNoCopy, not BenchmarkSelectCloneAll.
func BenchmarkRowsCursor(b *testing.B) {
	s := benchStore(b, benchRows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for _, err := range s.Rows("implementations", nil) {
			if err != nil {
				b.Fatal(err)
			}
			n++
		}
		if n != benchRows {
			b.Fatal(n)
		}
	}
}

// Snapshot persistence against its JSON counterpart, over the same
// store shape the other benchmarks use.
func BenchmarkSaveSnapshot(b *testing.B) {
	s := benchStore(b, benchRows)
	path := b.TempDir() + "/store.snap"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.SaveSnapshot(path); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoadSnapshot(b *testing.B) {
	s := benchStore(b, benchRows)
	path := b.TempDir() + "/store.snap"
	if err := s.SaveSnapshot(path); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LoadSnapshot(path); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSaveJSON(b *testing.B) {
	s := benchStore(b, benchRows)
	path := b.TempDir() + "/store.json"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Save(path); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoadJSON(b *testing.B) {
	s := benchStore(b, benchRows)
	path := b.TempDir() + "/store.json"
	if err := s.Save(path); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Load(path); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanNoCopy(b *testing.B) {
	s := benchStore(b, benchRows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := s.Scan("implementations", nil, func(r Row) bool {
			n++
			return true
		}); err != nil || n != benchRows {
			b.Fatal(err, n)
		}
	}
}

// BenchmarkSelectCloneAll is Scan's cloning counterpart: what every
// whole-table read cost before the visitor API existed.
func BenchmarkSelectCloneAll(b *testing.B) {
	s := benchStore(b, benchRows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := s.Select("implementations", nil)
		if err != nil || len(rows) != benchRows {
			b.Fatal(err, len(rows))
		}
	}
}

func BenchmarkCountIndexed(b *testing.B) {
	s := benchStore(b, benchRows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := s.Count("implementations", Eq("component", "Comp07"))
		if err != nil || n == 0 {
			b.Fatal(err, n)
		}
	}
}

func BenchmarkInsertWithIndexes(b *testing.B) {
	s := benchStore(b, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Insert("implementations", implRowN(i, fmt.Sprintf("Comp%02d", i%50))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeleteByKey(b *testing.B) {
	s := benchStore(b, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Insert("implementations", implRowN(i, "Comp00")); err != nil {
			b.Fatal(err)
		}
		if n, err := s.Delete("implementations", Eq("name", fmt.Sprintf("impl%03d", i))); err != nil || n != 1 {
			b.Fatal(err, n)
		}
	}
}
