package icdb

// Pins for the float64 instantiation of the shared evaluator
// (iif.EvalExpr via attrEnv): the wrapper must keep every behavior
// evalAttr had before the unification — float division, math.Mod/Pow,
// always-on short-circuiting, and the constraint-flavored diagnostics.

import (
	"strings"
	"testing"

	"icdb/internal/iif"
)

func evalAttrSrc(t *testing.T, src string, a Attrs) (float64, error) {
	t.Helper()
	e, err := iif.ParseExpr(src)
	if err != nil {
		t.Fatalf("ParseExpr(%q): %v", src, err)
	}
	return evalAttr(e, a)
}

func TestEvalAttrPinnedFloatSemantics(t *testing.T) {
	a := Attrs{"area": 10.5, "delay": 4, "stages": 2}
	cases := []struct {
		src  string
		want float64
	}{
		{"7/2", 3.5},        // float division — contrast evalInt's 3
		{"2 ** (0-1)", 0.5}, // math.Pow handles negative exponents
		{"7%2", 1},          // math.Mod
		{"area * 2", 21},    // attribute lookup
		{"area*2 == 21", 1}, // comparisons yield 0/1 (integer literals only; attrs carry the fractions)
		{"delay > 5", 0},    //
		{"!stages", 0},      //
		{"1 || 1/0", 1},     // short-circuit skips poisoned right side
		{"0 && 1/0", 0},     //
		{"area > 0 && delay > 0", 1},
	}
	for _, tc := range cases {
		got, err := evalAttrSrc(t, tc.src, a)
		if err != nil || got != tc.want {
			t.Errorf("evalAttr(%q) = %g, %v; want %g", tc.src, got, err, tc.want)
		}
	}
}

func TestEvalAttrPinnedErrors(t *testing.T) {
	a := Attrs{"area": 1}
	cases := []struct {
		src, want string
	}{
		{"1/0", "division by zero"},
		{"1%0", "modulo by zero"},
		{"bogus > 0", `unknown attribute "bogus"`},
		{"area[1] > 0", `attribute "area" cannot be indexed`},
		{"++area", "operator ++ not valid in a constraint"},
		{"~b area", "operator ~b not valid in a constraint"},
		{"area ~d 2", "operator ~d not valid in a constraint"},
		{"a ~a(1/b)", "not valid in a constraint"}, // Async expression form
	}
	for _, tc := range cases {
		_, err := evalAttrSrc(t, tc.src, a)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("evalAttr(%q) err = %v, want %q", tc.src, err, tc.want)
		}
	}
}
