package icdb_test

// Benchmarks for the ICDB read path over synthetic catalogs of 1k/10k/
// 100k implementations (see internal/benchgen). Each *FullScan benchmark
// is the pre-index reference path, kept in-tree so every future commit
// can reproduce the before/after comparison recorded in BENCH_PR2.json.

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"icdb/internal/benchgen"
	"icdb/internal/expand"
	"icdb/internal/genus"
	"icdb/internal/icdb"
	"icdb/internal/relstore"
)

var benchSizes = []int{1000, 10000, 100000}

var (
	benchMu  sync.Mutex
	benchDBs = map[int]*icdb.DB{}
)

// benchDB returns the n-implementation catalog, built once per process
// and shared (read-only) by all benchmarks.
func benchDB(b *testing.B, n int) *icdb.DB {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if db, ok := benchDBs[n]; ok {
		return db
	}
	db, err := benchgen.NewDB(n)
	if err != nil {
		b.Fatal(err)
	}
	benchDBs[n] = db
	return db
}

func sizeRun(b *testing.B, f func(b *testing.B, n int)) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			f(b, n)
		})
	}
}

func BenchmarkQueryByFunction(b *testing.B) {
	sizeRun(b, func(b *testing.B, n int) {
		db := benchDB(b, n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cands, err := db.QueryByFunction(genus.FuncADD, icdb.MaxArea(50))
			if err != nil || len(cands) == 0 {
				b.Fatal(err, len(cands))
			}
		}
	})
}

func BenchmarkQueryByFunctionFullScan(b *testing.B) {
	sizeRun(b, func(b *testing.B, n int) {
		db := benchDB(b, n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cands, err := benchgen.FullScanQueryByFunction(db, genus.FuncADD, icdb.MaxArea(50))
			if err != nil || len(cands) == 0 {
				b.Fatal(err, len(cands))
			}
		}
	})
}

// BenchmarkQueryByFunctionScan is the streaming result path: same
// candidate set as BenchmarkQueryByFunction, but yielded row by row with
// O(1) allocation per row instead of materialized, cloned, and sorted.
func BenchmarkQueryByFunctionScan(b *testing.B) {
	sizeRun(b, func(b *testing.B, n int) {
		db := benchDB(b, n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rows := 0
			err := db.QueryByFunctionScan(genus.FuncADD, func(c icdb.Candidate) bool {
				rows++
				return true
			}, icdb.MaxArea(50))
			if err != nil || rows == 0 {
				b.Fatal(err, rows)
			}
		}
	})
}

func BenchmarkQueryByFunctionsTopK(b *testing.B) {
	sizeRun(b, func(b *testing.B, n int) {
		db := benchDB(b, n)
		fns := []genus.Function{genus.FuncADD, genus.FuncSUB}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cands, err := db.QueryByFunctionsTopK(fns, 5, icdb.ForWidth(8))
			if err != nil || len(cands) == 0 {
				b.Fatal(err, len(cands))
			}
		}
	})
}

func BenchmarkImplByName(b *testing.B) {
	sizeRun(b, func(b *testing.B, n int) {
		db := benchDB(b, n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.ImplByName(benchgen.NameOf(i % n)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkImplByNameFullScan(b *testing.B) {
	sizeRun(b, func(b *testing.B, n int) {
		db := benchDB(b, n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := benchgen.FullScanImplRow(db, benchgen.NameOf(i%n)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkRegisterImpl(b *testing.B) {
	db := benchDB(b, 1000)
	im := benchgen.ImplAt(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.RegisterImpl(im); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExpandCold measures a full expansion with empty memo caches;
// BenchmarkExpandWarm measures the template-cache hit path.
func BenchmarkExpandCold(b *testing.B) {
	db, err := icdb.Open(relstore.New())
	if err != nil {
		b.Fatal(err)
	}
	params := map[string]int{"size": 8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := expand.New(db).ExpandImpl("cnt_up", params); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExpandWarm(b *testing.B) {
	db, err := icdb.Open(relstore.New())
	if err != nil {
		b.Fatal(err)
	}
	ex := expand.New(db)
	params := map[string]int{"size": 8}
	if _, err := ex.ExpandImpl("cnt_up", params); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.ExpandImpl("cnt_up", params); err != nil {
			b.Fatal(err)
		}
	}
}

// Persistence of the whole catalog, in both formats. The snapshot pair
// is the fast path (bulk-built indexes, no per-row validation); the JSON
// pair is the compat path it replaced on the hot loop.
func BenchmarkSaveSnapshot(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			db := benchDB(b, n)
			path := filepath.Join(b.TempDir(), "icdb.snap")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := db.Store().SaveSnapshot(path); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkLoadSnapshot(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			db := benchDB(b, n)
			path := filepath.Join(b.TempDir(), "icdb.snap")
			if err := db.Store().SaveSnapshot(path); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := relstore.LoadSnapshot(path); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSave(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			db := benchDB(b, n)
			path := filepath.Join(b.TempDir(), "icdb.json")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := db.Store().Save(path); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkLoad(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			db := benchDB(b, n)
			path := filepath.Join(b.TempDir(), "icdb.json")
			if err := db.Store().Save(path); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := relstore.Load(path); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
