package icdb

import (
	"path/filepath"
	"strings"
	"testing"

	"icdb/internal/genus"
	"icdb/internal/relstore"
)

func openDB(t *testing.T) *DB {
	t.Helper()
	db, err := Open(relstore.New())
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestOpenBootstrapsSchema(t *testing.T) {
	db := openDB(t)
	want := []string{TableComponents, TableImplementations, TableInstances, TableToolParams}
	got := db.Store().Tables()
	for _, w := range want {
		found := false
		for _, g := range got {
			if g == w {
				found = true
			}
		}
		if !found {
			t.Errorf("table %q missing after Open (have %v)", w, got)
		}
	}
	// Every GENUS component type is seeded into the components relation.
	n, err := db.Store().Count(TableComponents, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(genus.AllComponentTypes()) {
		t.Errorf("components rows = %d, want %d", n, len(genus.AllComponentTypes()))
	}
	fns, err := db.ComponentFunctions(genus.CompCounter)
	if err != nil {
		t.Fatal(err)
	}
	if len(fns) == 0 {
		t.Error("Counter has no functions in components relation")
	}
	// Builtin library is present.
	if _, err := db.ImplByName("cnt_up"); err != nil {
		t.Errorf("builtin cnt_up missing: %v", err)
	}
}

func TestOpenIdempotent(t *testing.T) {
	store := relstore.New()
	if _, err := Open(store); err != nil {
		t.Fatal(err)
	}
	db, err := Open(store)
	if err != nil {
		t.Fatalf("second Open: %v", err)
	}
	impls, err := db.Impls()
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]int)
	for _, im := range impls {
		seen[im.Name]++
	}
	for name, n := range seen {
		if n != 1 {
			t.Errorf("implementation %q appears %d times after re-Open", name, n)
		}
	}
}

// TestOpenPreservesTunedBuiltin: re-opening a store must not revert a
// builtin implementation the user re-registered with measured numbers.
func TestOpenPreservesTunedBuiltin(t *testing.T) {
	store := relstore.New()
	db, err := Open(store)
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := db.ImplByName("reg_d")
	if err != nil {
		t.Fatal(err)
	}
	tuned.Area = 42.5
	if err := db.RegisterImpl(tuned); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(store)
	if err != nil {
		t.Fatal(err)
	}
	got, err := db2.ImplByName("reg_d")
	if err != nil {
		t.Fatal(err)
	}
	if got.Area != 42.5 {
		t.Errorf("re-Open reverted tuned area: %g", got.Area)
	}
}

func TestRegisterImplValidation(t *testing.T) {
	db := openDB(t)
	good := Impl{
		Name:      "reg_test",
		Component: genus.CompRegister,
		Functions: []genus.Function{genus.FuncSTORAGE},
		WidthMin:  1, WidthMax: 8, Stages: 1,
		Area: 1, Delay: 1,
		Params: []string{"size"},
		Source: "NAME: reg_test; PARAMETER: size; INORDER: d, clk; OUTORDER: q; { q = d @ (~r clk); }",
	}
	if err := db.RegisterImpl(good); err != nil {
		t.Fatalf("good impl rejected: %v", err)
	}

	for _, tc := range []struct {
		name   string
		mutate func(*Impl)
		want   string
	}{
		{"no name", func(im *Impl) { im.Name = "" }, "no name"},
		{"bad component", func(im *Impl) { im.Component = "Widget" }, "unknown component"},
		{"no functions", func(im *Impl) { im.Functions = nil }, "no functions"},
		{"wrong function", func(im *Impl) { im.Functions = []genus.Function{genus.FuncMUL} }, "not executable"},
		{"bad width", func(im *Impl) { im.WidthMax = 0 }, "width range"},
		{"bad source", func(im *Impl) { im.Source = "NAME reg_test" }, "bad IIF source"},
		{"name mismatch", func(im *Impl) {
			im.Source = "NAME: other; PARAMETER: size; INORDER: d; OUTORDER: q; { q = d; }"
		}, "must match"},
		{"params mismatch", func(im *Impl) { im.Params = []string{"size", "stages"} }, "PARAMETER list"},
	} {
		im := good
		tc.mutate(&im)
		err := db.RegisterImpl(im)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestQueryByFunctionRanking(t *testing.T) {
	db := openDB(t)
	// STORAGE: reg_d (cost 7) ranks ahead of cnt_up (cost 14);
	// cnt_ripple executes no STORAGE and must not appear.
	cands, err := db.QueryByFunction(genus.FuncSTORAGE)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) < 2 || cands[0].Impl.Name != "reg_d" {
		t.Fatalf("STORAGE query = %+v, want reg_d first", names(cands))
	}
	for _, c := range cands {
		if c.Impl.Name == "cnt_ripple" {
			t.Error("cnt_ripple answered a STORAGE query")
		}
	}
	// Function names normalize case-insensitively.
	if _, err := db.QueryByFunction(genus.Function("storage")); err != nil {
		t.Errorf("lower-case function: %v", err)
	}
	if _, err := db.QueryByFunction(genus.Function("FROB")); err == nil {
		t.Error("unknown function accepted")
	}
}

func TestQueryByFunctionsMerged(t *testing.T) {
	db := openDB(t)
	// COUNTER+STORAGE: only cnt_up merges both (the paper's §4.1 merged
	// component query).
	cands, err := db.QueryByFunctions([]genus.Function{genus.FuncCOUNTER, genus.FuncSTORAGE})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 || cands[0].Impl.Name != "cnt_up" {
		t.Fatalf("COUNTER+STORAGE = %v, want [cnt_up]", names(cands))
	}
	if _, err := db.QueryByFunctions(nil); err == nil {
		t.Error("empty query accepted")
	}
}

func TestQueryConstraints(t *testing.T) {
	db := openDB(t)
	// Attribute expression: exclude cnt_up by area.
	c, err := Where("area <= 10")
	if err != nil {
		t.Fatal(err)
	}
	cands, err := db.QueryByFunction(genus.FuncSTORAGE, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 || cands[0].Impl.Name != "reg_d" {
		t.Fatalf("constrained = %v, want [reg_d]", names(cands))
	}
	// Combined expression with &&, comparison, arithmetic.
	c2 := MustWhere("area + delay < 20 && stages == 1")
	cands, err = db.QueryByFunction(genus.FuncINC, c2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 2 {
		t.Fatalf("INC with cost bound = %v", names(cands))
	}
	// Typed helpers.
	if cs, _ := db.QueryByComponent(genus.CompCounter, ForWidth(100)); len(cs) != 0 {
		t.Errorf("ForWidth(100) = %v, want none", names(cs))
	}
	if cs, _ := db.QueryByComponent(genus.CompCounter, MaxDelay(3)); len(cs) != 1 {
		t.Errorf("MaxDelay(3) = %v, want [cnt_up]", names(cs))
	}
	if cs, _ := db.QueryByComponent(genus.CompCounter, MaxArea(8)); len(cs) != 1 {
		t.Errorf("MaxArea(8) = %v, want [cnt_ripple]", names(cs))
	}
}

func TestWhereErrors(t *testing.T) {
	if _, err := Where("area <="); err == nil {
		t.Error("bad expression accepted")
	}
	c := MustWhere("frobs > 1")
	db := openDB(t)
	if _, err := db.QueryByFunction(genus.FuncSTORAGE, c); err == nil || !strings.Contains(err.Error(), "unknown attribute") {
		t.Errorf("err = %v, want unknown attribute", err)
	}
	if _, err := db.QueryByFunction(genus.FuncSTORAGE, MustWhere("area / 0 > 1")); err == nil {
		t.Error("division by zero accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustWhere did not panic")
		}
	}()
	MustWhere("((")
}

func TestQueryByComponent(t *testing.T) {
	db := openDB(t)
	cands, err := db.QueryByComponent(genus.CompCounter)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 2 || cands[0].Impl.Name != "cnt_up" || cands[1].Impl.Name != "cnt_ripple" {
		t.Fatalf("Counter impls = %v, want [cnt_up cnt_ripple]", names(cands))
	}
	if _, err := db.QueryByComponent("Widget"); err == nil {
		t.Error("unknown component accepted")
	}
}

func TestToolParamsAffectRanking(t *testing.T) {
	db := openDB(t)
	// Default weights: cnt_up (12+2=14) beats cnt_ripple (7+9=16).
	cands, err := db.QueryByFunction(genus.FuncINC)
	if err != nil {
		t.Fatal(err)
	}
	if cands[0].Impl.Name != "cnt_up" {
		t.Fatalf("default ranking = %v", names(cands))
	}
	// Area-only optimization flips the order.
	if err := db.SetToolParam("icdb", "area_weight", 1); err != nil {
		t.Fatal(err)
	}
	if err := db.SetToolParam("icdb", "delay_weight", 0); err != nil {
		t.Fatal(err)
	}
	cands, err = db.QueryByFunction(genus.FuncINC)
	if err != nil {
		t.Fatal(err)
	}
	if cands[0].Impl.Name != "cnt_ripple" {
		t.Fatalf("area-weighted ranking = %v, want cnt_ripple first", names(cands))
	}
	if v, ok := db.ToolParam("icdb", "delay_weight"); !ok || v != 0 {
		t.Errorf("ToolParam = %v,%v", v, ok)
	}
	if _, ok := db.ToolParam("icdb", "nope"); ok {
		t.Error("unset tool param reported ok")
	}
}

func TestInstantiate(t *testing.T) {
	db := openDB(t)
	i1, reused, err := db.Instantiate("designA", "reg_d", map[string]int{"size": 4})
	if err != nil || reused {
		t.Fatalf("first instantiate: %+v reused=%v err=%v", i1, reused, err)
	}
	i2, reused, err := db.Instantiate("designB", "reg_d", map[string]int{"size": 4})
	if err != nil || !reused {
		t.Fatalf("second instantiate: reused=%v err=%v", reused, err)
	}
	if i2.ID != i1.ID || i2.Uses != 2 {
		t.Errorf("reuse: id %d->%d uses=%d", i1.ID, i2.ID, i2.Uses)
	}
	i3, reused, err := db.Instantiate("designA", "reg_d", map[string]int{"size": 8})
	if err != nil || reused || i3.ID == i1.ID {
		t.Fatalf("distinct bindings: %+v reused=%v err=%v", i3, reused, err)
	}
	// Bindings must match declared parameters.
	if _, _, err := db.Instantiate("d", "reg_d", nil); err == nil {
		t.Error("missing bindings accepted")
	}
	if _, _, err := db.Instantiate("d", "reg_d", map[string]int{"width": 4}); err == nil {
		t.Error("misnamed binding accepted")
	}
	if _, _, err := db.Instantiate("d", "no_such", map[string]int{"size": 4}); err == nil {
		t.Error("unknown implementation accepted")
	}
	insts, err := db.Instances()
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 2 {
		t.Fatalf("instances = %+v", insts)
	}
}

// TestInstantiateIDsAfterDelete: IDs must stay unique even if rows are
// deleted through the raw store.
func TestInstantiateIDsAfterDelete(t *testing.T) {
	db := openDB(t)
	for _, sz := range []int{1, 2, 3} {
		if _, _, err := db.Instantiate("d", "reg_d", map[string]int{"size": sz}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Store().Delete(TableInstances, relstore.Eq("id", 1)); err != nil {
		t.Fatal(err)
	}
	i4, _, err := db.Instantiate("d", "reg_d", map[string]int{"size": 4})
	if err != nil {
		t.Fatal(err)
	}
	if i4.ID != 4 {
		t.Errorf("new ID = %d, want 4 (no reuse of surviving IDs)", i4.ID)
	}
}

func TestBindingsKeyRoundTrip(t *testing.T) {
	b := map[string]int{"size": 4, "stages": 2}
	key := BindingsKey(b)
	if key != "size=4,stages=2" {
		t.Errorf("key = %q", key)
	}
	got, err := ParseBindingsKey(key)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got["size"] != 4 || got["stages"] != 2 {
		t.Errorf("round trip = %v", got)
	}
	if _, err := ParseBindingsKey("oops"); err == nil {
		t.Error("bad key accepted")
	}
	if m, err := ParseBindingsKey(""); err != nil || len(m) != 0 {
		t.Errorf("empty key = %v, %v", m, err)
	}
}

// TestPersistenceRoundTrip saves the whole database and reopens it: the
// paper's ICDB lives in INGRES across sessions; ours must survive
// Save/Load.
func TestPersistenceRoundTrip(t *testing.T) {
	db := openDB(t)
	if _, _, err := db.Instantiate("d", "cnt_up", map[string]int{"size": 4}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "icdb.json")
	if err := db.Store().Save(path); err != nil {
		t.Fatal(err)
	}
	store, err := relstore.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := Open(store)
	if err != nil {
		t.Fatal(err)
	}
	im, err := db2.ImplByName("cnt_up")
	if err != nil {
		t.Fatal(err)
	}
	if im.Area != 12 || im.WidthMax != 64 || len(im.Functions) != 5 {
		t.Errorf("reloaded impl = %+v", im)
	}
	insts, err := db2.Instances()
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 1 || insts[0].Impl != "cnt_up" || insts[0].Bindings["size"] != 4 {
		t.Errorf("reloaded instances = %+v", insts)
	}
}

func names(cands []Candidate) []string {
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.Impl.Name
	}
	return out
}

// TestOpenLazyTouchesNothing: opening a DB over a lazily opened
// snapshot must not hydrate any relation — Open's seed-skip, the
// per-relation derived caches, and schema-only checks all answer from
// the stubs. Queries then hydrate only the relations they actually
// read: a width-free scan never builds the estimator cache.
func TestOpenLazyTouchesNothing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cat.snap")
	seed := relstore.New()
	if _, err := Open(seed); err != nil {
		t.Fatal(err)
	}
	if err := seed.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	store, err := relstore.OpenSnapshot(path, relstore.SnapshotOptions{Mode: relstore.OpenLazy})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(store)
	if err != nil {
		t.Fatal(err)
	}
	li := store.LazyInfo()
	if !li.Lazy || li.Hydrated != 0 {
		t.Fatalf("Open hydrated %d/%d tables; a complete catalog must stay cold (%+v)", li.Hydrated, li.Tables, li)
	}

	// A width-free query touches implementations (rows + derived
	// indexes) but must not hydrate the estimators relation.
	cands, err := db.QueryByFunction(genus.FuncSTORAGE)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no STORAGE candidates from the builtin library")
	}
	if pending(store, TableEstimators) != true {
		t.Error("width-free query hydrated the estimators relation")
	}
	if pending(store, TableImplementations) {
		t.Error("query did not hydrate the implementations relation")
	}

	// A width-point query needs the estimator cache — now it hydrates.
	if _, err := db.QueryByFunction(genus.FuncSTORAGE, AtWidth(8)); err != nil {
		t.Fatal(err)
	}
	if pending(store, TableEstimators) {
		t.Error("width query did not hydrate the estimators relation")
	}
}

// pending reports whether a lazily opened relation is still a cold stub.
func pending(s *relstore.Store, table string) bool {
	for _, n := range s.LazyInfo().PendingTables {
		if n == table {
			return true
		}
	}
	return false
}
