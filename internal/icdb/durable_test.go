package icdb_test

// Durable-catalog tests: the icdb layer's derived mutations
// (RegisterImpl, Generate) journal through a relstore.Durable store
// and survive a crash-style reopen, and re-opening an already-seeded
// catalog appends nothing — Open's bootstrap upserts are value-equal
// no-ops.

import (
	"path/filepath"
	"reflect"
	"testing"

	"icdb/internal/genus"
	"icdb/internal/icdb"
	"icdb/internal/relstore"
	"icdb/internal/relstore/faultfile"
)

func TestJournalDurableCatalog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cat.snap")
	d, err := relstore.OpenDurable(path, relstore.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	db, err := icdb.Open(d.Store)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterImpl(icdb.Impl{
		Name:      "jrnl_adder",
		Component: genus.CompAdderSubtractor,
		Style:     "ripple",
		Functions: []genus.Function{genus.FuncADD},
		WidthMin:  1, WidthMax: 64,
		Area: 42, Delay: 3.5,
		Source: "NAME: jrnl_adder; INORDER: a, b; OUTORDER: s; { s = a (+) b; }",
	}); err != nil {
		t.Fatal(err)
	}
	generated, _, err := db.Generate("gen_cnt", map[string]int{"size": 24})
	if err != nil {
		t.Fatal(err)
	}
	seeded := d.Info().Records
	if seeded == 0 {
		t.Fatal("no journal records after seeding a fresh catalog")
	}
	// Crash-style reopen: no Close, no Compact. FsyncAlways means every
	// acknowledged registration is already durable.

	d2, err := relstore.OpenDurable(path, relstore.DurableOptions{})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer d2.Close()
	db2, err := icdb.Open(d2.Store)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db2.ImplByName("jrnl_adder"); err != nil {
		t.Errorf("registered impl lost across reopen: %v", err)
	}
	if _, err := db2.ImplByName(generated.Name); err != nil {
		t.Errorf("generated impl %s lost across reopen: %v", generated.Name, err)
	}
	// The second Open re-ran the bootstrap upserts over an already
	// seeded catalog: all value-equal, so the journal must not have
	// grown — this is what lets icdbd boot journal-silently.
	if got := d2.Info().Records; got != seeded {
		t.Errorf("reopening an unchanged catalog grew the journal from %d to %d records", seeded, got)
	}
}

// TestJournalDurableExplorations asserts exploration rows journal like
// every other relation: a sweep's design points survive a crash-style
// reopen (no Close, no Compact — recovery runs from the post-crash
// filesystem image), each journal record replays exactly once, and
// re-running the same sweep after recovery appends nothing — the
// value-equal upsert no-op holds across a restart.
func TestJournalDurableExplorations(t *testing.T) {
	fs := faultfile.New()
	d, err := relstore.OpenDurable("cat.snap", relstore.DurableOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	db, err := icdb.Open(d.Store)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Explore("gen_cnt", 8, 32, 8, nil, false); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := db.EstimateImpl("cnt_up", 16); err != nil {
		t.Fatal(err)
	}
	want, err := db.Explorations()
	if err != nil {
		t.Fatal(err)
	}
	wantFrontier, err := db.ParetoFrontier(icdb.ParetoQuery{Component: genus.CompCounter})
	if err != nil {
		t.Fatal(err)
	}
	records := d.Info().Records

	// Crash: every further filesystem op fails, and only synced bytes
	// survive into the image. Under FsyncAlways (the default) every
	// acknowledged mutation is already durable, so KeepNone — the
	// strictest image — must recover everything.
	fs.CrashAt(fs.Ops())
	img := fs.Image(faultfile.KeepNone)

	d2, err := relstore.OpenDurable("cat.snap", relstore.DurableOptions{FS: img})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer d2.Close()
	if got := int64(d2.Info().Recovery.Replayed); got != records {
		t.Errorf("recovery replayed %d journal records, want each of %d exactly once", got, records)
	}
	db2, err := icdb.Open(d2.Store)
	if err != nil {
		t.Fatal(err)
	}
	got, err := db2.Explorations()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("explorations after crash reopen:\ngot  %+v\nwant %+v", got, want)
	}
	gotFrontier, err := db2.ParetoFrontier(icdb.ParetoQuery{Component: genus.CompCounter})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotFrontier, wantFrontier) {
		t.Errorf("frontier after crash reopen:\ngot  %+v\nwant %+v", gotFrontier, wantFrontier)
	}
	// Re-running the identical sweep against the recovered catalog is
	// journal-silent: every row upserts value-equal.
	if got := d2.Info().Records; got != records {
		t.Fatalf("reopen grew the journal from %d to %d records before any new work", records, got)
	}
	if _, err := db2.Explore("gen_cnt", 8, 32, 8, nil, false); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := db2.EstimateImpl("cnt_up", 16); err != nil {
		t.Fatal(err)
	}
	if got := d2.Info().Records; got != records {
		t.Errorf("re-running a recovered sweep grew the journal from %d to %d records", records, got)
	}
}
