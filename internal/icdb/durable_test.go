package icdb_test

// Durable-catalog tests: the icdb layer's derived mutations
// (RegisterImpl, Generate) journal through a relstore.Durable store
// and survive a crash-style reopen, and re-opening an already-seeded
// catalog appends nothing — Open's bootstrap upserts are value-equal
// no-ops.

import (
	"path/filepath"
	"testing"

	"icdb/internal/genus"
	"icdb/internal/icdb"
	"icdb/internal/relstore"
)

func TestJournalDurableCatalog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cat.snap")
	d, err := relstore.OpenDurable(path, relstore.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	db, err := icdb.Open(d.Store)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterImpl(icdb.Impl{
		Name:      "jrnl_adder",
		Component: genus.CompAdderSubtractor,
		Style:     "ripple",
		Functions: []genus.Function{genus.FuncADD},
		WidthMin:  1, WidthMax: 64,
		Area: 42, Delay: 3.5,
		Source: "NAME: jrnl_adder; INORDER: a, b; OUTORDER: s; { s = a (+) b; }",
	}); err != nil {
		t.Fatal(err)
	}
	generated, _, err := db.Generate("gen_cnt", map[string]int{"size": 24})
	if err != nil {
		t.Fatal(err)
	}
	seeded := d.Info().Records
	if seeded == 0 {
		t.Fatal("no journal records after seeding a fresh catalog")
	}
	// Crash-style reopen: no Close, no Compact. FsyncAlways means every
	// acknowledged registration is already durable.

	d2, err := relstore.OpenDurable(path, relstore.DurableOptions{})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer d2.Close()
	db2, err := icdb.Open(d2.Store)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db2.ImplByName("jrnl_adder"); err != nil {
		t.Errorf("registered impl lost across reopen: %v", err)
	}
	if _, err := db2.ImplByName(generated.Name); err != nil {
		t.Errorf("generated impl %s lost across reopen: %v", generated.Name, err)
	}
	// The second Open re-ran the bootstrap upserts over an already
	// seeded catalog: all value-equal, so the journal must not have
	// grown — this is what lets icdbd boot journal-silently.
	if got := d2.Info().Records; got != seeded {
		t.Errorf("reopening an unchanged catalog grew the journal from %d to %d records", seeded, got)
	}
}
