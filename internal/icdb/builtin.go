package icdb

import "icdb/internal/genus"

// Builtin parameterized implementations seeded into every database. Each
// Source is IIF text in the Appendix A dialect; "size" is the width
// parameter throughout. Area/Delay are per-bit unit estimates used only
// for ranking.

const srcRegD = `
NAME: reg_d;
PARAMETER: size;
VARIABLE: i;
INORDER: D[size], load, clk;
OUTORDER: Q[size];
{
  #for(i = 0; i < size; i++)
    Q[i] = (D[i]*load + Q[i]*!load) @ (~r clk);
}
`

const srcCntUp = `
NAME: cnt_up;
PARAMETER: size;
VARIABLE: i;
INORDER: D[size], load, en, clk;
OUTORDER: Q[size];
PIIFVARIABLE: c[size], n[size];
{
  c[0] = en;
  #for(i = 1; i < size; i++)
    c[i] = c[i-1] * Q[i-1];
  #for(i = 0; i < size; i++) {
    n[i] = (Q[i] (+) c[i]) * !load + D[i] * load;
    Q[i] = n[i] @ (~r clk);
  }
}
`

const srcCntRipple = `
NAME: cnt_ripple;
PARAMETER: size;
VARIABLE: i;
INORDER: en, clk;
OUTORDER: Q[size];
{
  Q[0] = (Q[0] (+) en) @ (~r clk);
  #for(i = 1; i < size; i++)
    Q[i] = (Q[i] (+) 1) @ (~f Q[i-1]);
}
`

const srcTriBuf = `
NAME: tri_buf;
PARAMETER: size;
VARIABLE: i;
INORDER: D[size], en;
OUTORDER: Q[size];
{
  #for(i = 0; i < size; i++)
    Q[i] = D[i] ~t en;
}
`

const srcLogicAnd = `
NAME: logic_and;
PARAMETER: size;
VARIABLE: i;
INORDER: A[size], B[size];
OUTORDER: O[size];
{
  #for(i = 0; i < size; i++)
    O[i] = A[i] * B[i];
}
`

const srcAddRipple = `
NAME: add_ripple;
PARAMETER: size;
VARIABLE: i;
INORDER: A[size], B[size], cin;
OUTORDER: S[size], cout;
PIIFVARIABLE: c[size];
{
  c[0] = cin;
  #for(i = 1; i < size; i++)
    c[i] = A[i-1]*B[i-1] + A[i-1]*c[i-1] + B[i-1]*c[i-1];
  #for(i = 0; i < size; i++)
    S[i] = A[i] (+) B[i] (+) c[i];
  cout = A[size-1]*B[size-1] + A[size-1]*c[size-1] + B[size-1]*c[size-1];
}
`

// Builtin generator library: parameterized procedures the database can
// run on demand (Generate) when no stored implementation covers a
// requested point. gen_cnt emits synchronous up-counters; gen_sub emits
// ripple-borrow subtractors — the one builtin source of SUB coverage,
// which the static library does not provide at all.

const srcGenCnt = `
NAME: gen_cnt;
PARAMETER: size;
VARIABLE: i;
INORDER: D[size], load, en, clk;
OUTORDER: Q[size];
PIIFVARIABLE: c[size], n[size];
{
  c[0] = en;
  #for(i = 1; i < size; i++)
    c[i] = c[i-1] * Q[i-1];
  #for(i = 0; i < size; i++) {
    n[i] = (Q[i] (+) c[i]) * !load + D[i] * load;
    Q[i] = n[i] @ (~r clk);
  }
}
`

const srcGenSub = `
NAME: gen_sub;
PARAMETER: size;
VARIABLE: i;
INORDER: A[size], B[size], bin;
OUTORDER: D[size], bout;
PIIFVARIABLE: b[size];
{
  b[0] = bin;
  #for(i = 1; i < size; i++)
    b[i] = !A[i-1]*B[i-1] + !A[i-1]*b[i-1] + B[i-1]*b[i-1];
  #for(i = 0; i < size; i++)
    D[i] = A[i] (+) B[i] (+) b[i];
  bout = !A[size-1]*B[size-1] + !A[size-1]*b[size-1] + B[size-1]*b[size-1];
}
`

func builtinGenerators() []Generator {
	return []Generator{
		{
			Name:      "gen_cnt",
			Component: genus.CompCounter,
			Style:     "synchronous",
			Functions: []genus.Function{genus.FuncINC, genus.FuncCOUNTER, genus.FuncSTORAGE, genus.FuncLOAD, genus.FuncSTORE},
			WidthMin:  1, WidthMax: 128, Stages: 1,
			Params:    []string{"size"},
			AreaExpr:  "12 * width",
			DelayExpr: "2 + width / 16",
			Source:    srcGenCnt,
		},
		{
			Name:      "gen_sub",
			Component: genus.CompAdderSubtractor,
			Style:     "ripple",
			Functions: []genus.Function{genus.FuncSUB},
			WidthMin:  1, WidthMax: 128, Stages: 0,
			Params:    []string{"size"},
			AreaExpr:  "10 * width",
			DelayExpr: "6 + width",
			Source:    srcGenSub,
		},
	}
}

// builtinEstimators maps each builtin implementation to its estimator
// expressions: area scales linearly with the evaluated width for every
// builtin, delay is constant for single-stage synchronous structures and
// linear for the ripple ones (carry/borrow chains). The expressions are
// evaluated over the implementation's scalar attributes plus "width"
// (see RegisterEstimator), so "area * width" means per-bit area times
// the width point.
func builtinEstimators() map[string]map[string]string {
	linear := map[string]string{"area": "area * width", "delay": "delay * width"}
	flat := map[string]string{"area": "area * width", "delay": "delay"}
	return map[string]map[string]string{
		"reg_d":      flat,
		"cnt_up":     flat,
		"cnt_ripple": linear,
		"tri_buf":    flat,
		"logic_and":  flat,
		"add_ripple": linear,
	}
}

func builtinImpls() []Impl {
	return []Impl{
		{
			Name:      "reg_d",
			Component: genus.CompRegister,
			Style:     "dff",
			Functions: []genus.Function{genus.FuncSTORAGE, genus.FuncLOAD, genus.FuncSTORE},
			WidthMin:  1, WidthMax: 64, Stages: 1,
			Area: 6, Delay: 1,
			Params: []string{"size"},
			Source: srcRegD,
		},
		{
			Name:      "cnt_up",
			Component: genus.CompCounter,
			Style:     "synchronous",
			Functions: []genus.Function{genus.FuncINC, genus.FuncCOUNTER, genus.FuncSTORAGE, genus.FuncLOAD, genus.FuncSTORE},
			WidthMin:  1, WidthMax: 64, Stages: 1,
			Area: 12, Delay: 2,
			Params: []string{"size"},
			Source: srcCntUp,
		},
		{
			Name:      "cnt_ripple",
			Component: genus.CompCounter,
			Style:     "ripple",
			Functions: []genus.Function{genus.FuncINC, genus.FuncCOUNTER},
			WidthMin:  1, WidthMax: 64, Stages: 1,
			Area: 7, Delay: 9,
			Params: []string{"size"},
			Source: srcCntRipple,
		},
		{
			Name:      "tri_buf",
			Component: genus.CompTriState,
			Style:     "cmos",
			Functions: []genus.Function{genus.FuncTriState},
			WidthMin:  1, WidthMax: 64, Stages: 0,
			Area: 2, Delay: 1,
			Params: []string{"size"},
			Source: srcTriBuf,
		},
		{
			Name:      "logic_and",
			Component: genus.CompLogicUnit,
			Style:     "gate",
			Functions: []genus.Function{genus.FuncAND},
			WidthMin:  1, WidthMax: 64, Stages: 0,
			Area: 1, Delay: 1,
			Params: []string{"size"},
			Source: srcLogicAnd,
		},
		{
			Name:      "add_ripple",
			Component: genus.CompAdderSubtractor,
			Style:     "ripple",
			Functions: []genus.Function{genus.FuncADD},
			WidthMin:  1, WidthMax: 64, Stages: 0,
			Area: 9, Delay: 6,
			Params: []string{"size"},
			Source: srcAddRipple,
		},
	}
}
