package icdb

import (
	"fmt"
	"math/rand"
	"testing"

	"icdb/internal/genus"
	"icdb/internal/relstore"
)

// newParetoDB opens a fresh in-memory DB for frontier tests.
func newParetoDB(t *testing.T) *DB {
	t.Helper()
	db, err := Open(relstore.New())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return db
}

// recordCloud registers a point cloud under one component type, naming
// points gen/p<i> so identities stay distinct even when values collide.
func recordCloud(t *testing.T, db *DB, ct genus.ComponentType, gen string, pts []Exploration) {
	t.Helper()
	for i := range pts {
		pts[i].Generator = gen
		pts[i].Bindings = fmt.Sprintf("p=%d", i)
		pts[i].Component = ct
		if pts[i].Width == 0 {
			pts[i].Width = 8
		}
		if err := db.RecordExploration(pts[i]); err != nil {
			t.Fatalf("RecordExploration(%d): %v", i, err)
		}
	}
}

// frontierSets runs a Pareto query with dominated reporting and splits
// the streamed answer.
func frontierSets(t *testing.T, db *DB, q ParetoQuery) (frontier, dominated []ParetoPoint) {
	t.Helper()
	q.Dominated = true
	err := db.Pareto(q, func(p ParetoPoint) bool {
		if p.Dominated {
			dominated = append(dominated, p)
		} else {
			frontier = append(frontier, p)
		}
		return true
	})
	if err != nil {
		t.Fatalf("Pareto: %v", err)
	}
	return frontier, dominated
}

// TestParetoPropertyRandomClouds is the acceptance property: across 20+
// seeded random catalogs, the streamed frontier matches the O(n²)
// brute-force dominance reference exactly — every returned point is
// non-dominated, every omitted point is dominated by a returned one,
// and every dominated point's explanation names a frontier point that
// actually dominates it with the claimed margins.
func TestParetoPropertyRandomClouds(t *testing.T) {
	for seed := int64(0); seed < 24; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			n := 5 + rng.Intn(200)
			// Quantize onto a small grid so value ties — equal areas,
			// equal delays, exact duplicates — occur routinely.
			grid := float64(2 + rng.Intn(12))
			pts := make([]Exploration, n)
			for i := range pts {
				pts[i] = Exploration{
					Width: 1 + rng.Intn(64),
					Area:  float64(rng.Intn(int(grid)*10)) / grid,
					Delay: float64(rng.Intn(int(grid)*10)) / grid,
				}
			}
			db := newParetoDB(t)
			recordCloud(t, db, genus.CompCounter, "cloud", pts)

			q := ParetoQuery{Generator: "cloud"}
			frontier, dominated := frontierSets(t, db, q)

			// Reconstruct the point set the engine saw and re-derive the
			// frontier by brute force.
			var streamed []Exploration
			mask := make([]bool, 0, n)
			for _, p := range frontier {
				streamed = append(streamed, p.Exploration)
				mask = append(mask, true)
			}
			for _, p := range dominated {
				streamed = append(streamed, p.Exploration)
				mask = append(mask, false)
			}
			if len(streamed) != n {
				t.Fatalf("streamed %d points, recorded %d", len(streamed), n)
			}
			if err := CheckFrontier(streamed, mask); err != nil {
				t.Fatal(err)
			}
			brute := bruteForceFrontier(streamed)
			for i := range brute {
				if brute[i] != mask[i] {
					t.Fatalf("point %s: sweep says frontier=%v, brute force says %v",
						streamed[i].PointID(), mask[i], brute[i])
				}
			}
			// Explanations: the named dominator must exist on the frontier
			// and actually dominate with the claimed non-negative margins.
			onFrontier := make(map[string]Exploration, len(frontier))
			for _, p := range frontier {
				onFrontier[p.PointID()] = p.Exploration
			}
			for _, p := range dominated {
				dom, ok := onFrontier[p.DominatedBy]
				if !ok {
					t.Fatalf("dominated point %s blames %q, which is not on the frontier",
						p.PointID(), p.DominatedBy)
				}
				if !dominates(&dom, &p.Exploration) {
					t.Fatalf("claimed dominator %s does not dominate %s", p.DominatedBy, p.PointID())
				}
				if p.DArea != p.Area-dom.Area || p.DDelay != p.Delay-dom.Delay {
					t.Fatalf("point %s margins (%g,%g) do not match dominator %s",
						p.PointID(), p.DArea, p.DDelay, p.DominatedBy)
				}
				if p.DArea < 0 || p.DDelay < 0 || (p.DArea == 0 && p.DDelay == 0) {
					t.Fatalf("point %s has non-dominating margins (%g,%g)", p.PointID(), p.DArea, p.DDelay)
				}
			}
		})
	}
}

// TestParetoDegenerateClouds pins the edge shapes dominance definitions
// disagree on: a single point, all-equal points (nothing dominates an
// exact duplicate, so all are frontier), and ties on one axis (equal
// area: only the min-delay points survive; equal delay: only the
// min-area points survive).
func TestParetoDegenerateClouds(t *testing.T) {
	cases := []struct {
		name         string
		pts          []Exploration
		wantFrontier int
	}{
		{"single point", []Exploration{{Area: 3, Delay: 4}}, 1},
		{"all equal", []Exploration{
			{Area: 2, Delay: 2}, {Area: 2, Delay: 2}, {Area: 2, Delay: 2},
		}, 3},
		{"tie on area axis", []Exploration{
			{Area: 5, Delay: 1}, {Area: 5, Delay: 2}, {Area: 5, Delay: 3},
		}, 1},
		{"tie on delay axis", []Exploration{
			{Area: 1, Delay: 5}, {Area: 2, Delay: 5}, {Area: 3, Delay: 5},
		}, 1},
		{"duplicate frontier corner", []Exploration{
			{Area: 1, Delay: 9}, {Area: 1, Delay: 9}, {Area: 9, Delay: 1}, {Area: 5, Delay: 5},
		}, 4},
		{"staircase", []Exploration{
			{Area: 1, Delay: 4}, {Area: 2, Delay: 3}, {Area: 3, Delay: 2}, {Area: 4, Delay: 1},
		}, 4},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			db := newParetoDB(t)
			recordCloud(t, db, genus.CompCounter, "edge", c.pts)
			frontier, dominated := frontierSets(t, db, ParetoQuery{Generator: "edge"})
			if len(frontier) != c.wantFrontier {
				t.Fatalf("frontier has %d points, want %d (frontier %v)", len(frontier), c.wantFrontier, frontier)
			}
			if got := len(frontier) + len(dominated); got != len(c.pts) {
				t.Fatalf("streamed %d points, recorded %d", got, len(c.pts))
			}
			var all []Exploration
			mask := make([]bool, 0, len(c.pts))
			for _, p := range frontier {
				all, mask = append(all, p.Exploration), append(mask, true)
			}
			for _, p := range dominated {
				all, mask = append(all, p.Exploration), append(mask, false)
			}
			if err := CheckFrontier(all, mask); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestParetoStreamOrderAndEarlyStop pins the visitor contract: points
// arrive in ascending (area, delay, identity) order and a false return
// stops the stream.
func TestParetoStreamOrderAndEarlyStop(t *testing.T) {
	db := newParetoDB(t)
	recordCloud(t, db, genus.CompCounter, "ord", []Exploration{
		{Area: 9, Delay: 1}, {Area: 1, Delay: 9}, {Area: 5, Delay: 5}, {Area: 5, Delay: 6},
	})
	var seen []ParetoPoint
	err := db.Pareto(ParetoQuery{Generator: "ord", Dominated: true}, func(p ParetoPoint) bool {
		seen = append(seen, p)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(seen); i++ {
		a, b := &seen[i-1].Exploration, &seen[i].Exploration
		if !pointLess(a, b) {
			t.Fatalf("stream out of order at %d: %v then %v", i, a, b)
		}
	}
	n := 0
	err = db.Pareto(ParetoQuery{Generator: "ord"}, func(ParetoPoint) bool {
		n++
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("visitor returning false yielded %d points, want 1", n)
	}
}

// TestParetoConstraintsReshapeFrontier asserts that constraints filter
// before dominance: excluding the global frontier promotes the best
// surviving points instead of leaving the constrained answer empty.
func TestParetoConstraintsReshapeFrontier(t *testing.T) {
	db := newParetoDB(t)
	recordCloud(t, db, genus.CompCounter, "con", []Exploration{
		{Area: 1, Delay: 1, Width: 4},  // global frontier, filtered out below
		{Area: 2, Delay: 3, Width: 8},  // frontier of the width-8 subspace
		{Area: 3, Delay: 2, Width: 8},  // frontier of the width-8 subspace
		{Area: 4, Delay: 4, Width: 8},  // dominated in the subspace
		{Area: 9, Delay: 9, Width: 16}, // filtered out
	})
	cs, err := AttrCmp("width_min", CmpEQ, 8)
	if err != nil {
		t.Fatal(err)
	}
	frontier, dominated := frontierSets(t, db, ParetoQuery{Generator: "con", Constraints: []Constraint{cs}})
	if len(frontier) != 2 || len(dominated) != 1 {
		t.Fatalf("constrained query: %d frontier + %d dominated, want 2 + 1", len(frontier), len(dominated))
	}
	for _, p := range frontier {
		if p.Width != 8 {
			t.Fatalf("constraint leaked width-%d point %s", p.Width, p.PointID())
		}
	}
	if dominated[0].Area != 4 {
		t.Fatalf("dominated point is %v, want the (4,4) point", dominated[0].Exploration)
	}
}

// TestParetoByComponentMergesSpaces asserts the component-keyed query
// unions every generator's points for that type (served from the
// component secondary index) and excludes other types.
func TestParetoByComponentMergesSpaces(t *testing.T) {
	db := newParetoDB(t)
	recordCloud(t, db, genus.CompCounter, "g1", []Exploration{{Area: 1, Delay: 5}, {Area: 5, Delay: 4}})
	recordCloud(t, db, genus.CompCounter, "g2", []Exploration{{Area: 2, Delay: 2}})
	recordCloud(t, db, genus.CompRegister, "g3", []Exploration{{Area: 0.1, Delay: 0.1}})
	frontier, dominated := frontierSets(t, db, ParetoQuery{Component: genus.CompCounter})
	if len(frontier)+len(dominated) != 3 {
		t.Fatalf("component query saw %d points, want 3", len(frontier)+len(dominated))
	}
	for _, p := range append(frontier, dominated...) {
		if p.Component != genus.CompCounter {
			t.Fatalf("component query leaked %s point %s", p.Component, p.PointID())
		}
	}
	// (1,5) and (2,2) are non-dominated; (5,4) is dominated by (2,2).
	if len(frontier) != 2 || len(dominated) != 1 || dominated[0].DominatedBy != "g2[p=0]" {
		t.Fatalf("frontier %v dominated %v", frontier, dominated)
	}
}

// TestParetoSnapshotRoundTrip asserts exploration rows survive binary
// snapshot persistence and JSON alike, and the frontier answer is
// identical after reload.
func TestParetoSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db := newParetoDB(t)
	recordCloud(t, db, genus.CompCounter, "persist", []Exploration{
		{Area: 1, Delay: 3}, {Area: 2, Delay: 2}, {Area: 3, Delay: 1}, {Area: 3, Delay: 3},
	})
	want, err := db.ParetoFrontier(ParetoQuery{Generator: "persist"})
	if err != nil {
		t.Fatal(err)
	}
	for i, path := range []string{dir + "/cat.snap", dir + "/cat.json"} {
		var err error
		if i == 0 {
			err = db.Store().SaveSnapshot(path)
		} else {
			err = db.Store().Save(path)
		}
		if err != nil {
			t.Fatalf("save %s: %v", path, err)
		}
		st, err := relstore.Load(path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		db2, err := Open(st)
		if err != nil {
			t.Fatal(err)
		}
		got, err := db2.ParetoFrontier(ParetoQuery{Generator: "persist"})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: frontier has %d points after reload, want %d", path, len(got), len(want))
		}
		for j := range got {
			if got[j].Exploration != want[j].Exploration {
				t.Fatalf("%s: frontier[%d] = %+v, want %+v", path, j, got[j].Exploration, want[j].Exploration)
			}
		}
	}
}
