package icdb

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"icdb/internal/genus"
	"icdb/internal/relstore"
)

// regScaled registers a minimal ADD implementation with the given scalar
// estimates and optional estimator expressions.
func regScaled(t *testing.T, db *DB, name string, area, delay float64, areaExpr, delayExpr string) {
	t.Helper()
	src := "NAME: " + name + "; PARAMETER: size; INORDER: a, b; OUTORDER: s; { s = a (+) b; }"
	err := db.RegisterImpl(Impl{
		Name:      name,
		Component: genus.CompAdderSubtractor,
		Style:     "test",
		Functions: []genus.Function{genus.FuncADD},
		WidthMin:  1, WidthMax: 64,
		Area: area, Delay: delay,
		Params: []string{"size"},
		Source: src,
	})
	if err != nil {
		t.Fatal(err)
	}
	if areaExpr != "" {
		if err := db.RegisterEstimator(name, "area", areaExpr); err != nil {
			t.Fatal(err)
		}
	}
	if delayExpr != "" {
		if err := db.RegisterEstimator(name, "delay", delayExpr); err != nil {
			t.Fatal(err)
		}
	}
}

// TestAtWidthEvaluatesEstimators: with a width evaluation point, the
// engine filters, ranks, and reports estimator-evaluated values — and a
// width-scaling implementation that wins on per-bit cost loses to a
// flat one once the width grows.
func TestAtWidthEvaluatesEstimators(t *testing.T) {
	db := openTestDB(t)
	// flat: constant estimator, 20 at any width. scaled: 2 per bit.
	regScaled(t, db, "flat_add", 20, 0, "area", "delay")
	regScaled(t, db, "scaled_add", 2, 0, "area * width", "delay")

	for _, c := range []struct {
		width int
		first string
		area  float64
	}{
		{4, "scaled_add", 8}, // 2*4 = 8 beats 20
		{16, "flat_add", 20}, // 2*16 = 32 loses to 20
		{10, "flat_add", 20}, // tie at 2*10=20 broken by name
	} {
		cands, err := db.QueryByFunctionsOrdered(
			[]genus.Function{genus.FuncADD}, Order{Attr: "area"}, 0, AtWidth(c.width))
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		for _, cand := range cands {
			got = append(got, cand.Impl.Name)
		}
		if len(got) < 2 || got[0] != c.first {
			t.Errorf("at width %d: order = %v, want %s first", c.width, got, c.first)
			continue
		}
		if cands[0].Area != c.area {
			t.Errorf("at width %d: Area = %g, want %g", c.width, cands[0].Area, c.area)
		}
	}
}

// TestAtWidthFiltersCoverage: AtWidth keeps only implementations whose
// width range covers the point, like ForWidth.
func TestAtWidthFiltersCoverage(t *testing.T) {
	db := openTestDB(t)
	cands, err := db.QueryOrdered(Order{}, 0, AtWidth(65)) // builtins stop at 64
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 0 {
		t.Errorf("at width 65 kept %d candidates", len(cands))
	}
}

// TestAtWidthConstraintsSeeEvaluatedValues: a "with area <= n" filter at
// a width point compares the estimator value, and Where expressions may
// reference the width attribute.
func TestAtWidthConstraintsSeeEvaluatedValues(t *testing.T) {
	db := openTestDB(t)
	regScaled(t, db, "scaled_add", 2, 1, "area * width", "delay")
	le, err := AttrCmp("area", CmpLE, 10)
	if err != nil {
		t.Fatal(err)
	}
	has := func(cands []Candidate, name string) bool {
		for _, c := range cands {
			if c.Impl.Name == name {
				return true
			}
		}
		return false
	}
	// At width 4 the evaluated area is 8 <= 10; at width 8 it is 16.
	in4, err := db.QueryByFunctionsOrdered([]genus.Function{genus.FuncADD}, Order{}, 0, AtWidth(4), le)
	if err != nil {
		t.Fatal(err)
	}
	in8, err := db.QueryByFunctionsOrdered([]genus.Function{genus.FuncADD}, Order{}, 0, AtWidth(8), le)
	if err != nil {
		t.Fatal(err)
	}
	if !has(in4, "scaled_add") || has(in8, "scaled_add") {
		t.Errorf("area<=10 filter: width4 has=%v width8 has=%v, want true/false",
			has(in4, "scaled_add"), has(in8, "scaled_add"))
	}
	wq, err := Where("width >= 6")
	if err != nil {
		t.Fatal(err)
	}
	byW, err := db.QueryByFunctionsOrdered([]genus.Function{genus.FuncADD}, Order{}, 0, AtWidth(8), wq)
	if err != nil {
		t.Fatal(err)
	}
	if len(byW) == 0 {
		t.Error("width attribute not visible to Where at an evaluation point")
	}
}

// TestAtWidthTopKMatchesUnbounded: the bounded heap and the unbounded
// sort agree under width-aware ranking.
func TestAtWidthTopKMatchesUnbounded(t *testing.T) {
	db := openTestDB(t)
	regScaled(t, db, "flat_add", 20, 3, "area", "delay")
	regScaled(t, db, "scaled_add", 2, 1, "area * width", "delay * width")
	all, err := db.QueryByFunctionsOrdered([]genus.Function{genus.FuncADD}, Order{Attr: "delay"}, 0, AtWidth(16))
	if err != nil {
		t.Fatal(err)
	}
	top, err := db.QueryByFunctionsOrdered([]genus.Function{genus.FuncADD}, Order{Attr: "delay"}, 2, AtWidth(16))
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 2 || len(top) != 2 {
		t.Fatalf("result sizes: all=%d top=%d", len(all), len(top))
	}
	if !reflect.DeepEqual(all[:2], top) {
		t.Errorf("top-2 = %+v, want unbounded truncation %+v", top, all[:2])
	}
}

// TestAtWidthRejectsConflictsAndInvalid: invalid or conflicting width
// points fail eagerly on ranked and streaming paths.
func TestAtWidthRejectsConflictsAndInvalid(t *testing.T) {
	db := openTestDB(t)
	if _, err := db.QueryOrdered(Order{}, 0, AtWidth(0)); err == nil ||
		!strings.Contains(err.Error(), "at least 1") {
		t.Errorf("AtWidth(0): %v", err)
	}
	if _, err := db.QueryOrdered(Order{}, 0, AtWidth(4), AtWidth(8)); err == nil ||
		!strings.Contains(err.Error(), "conflicting") {
		t.Errorf("conflicting widths: %v", err)
	}
	if err := db.QueryScan(func(Candidate) bool { return true }, AtWidth(-3)); err == nil {
		t.Error("streaming path accepted an invalid width point")
	}
}

// TestConstantEstimatorsMatchScalarEngine is the equivalence pin: a
// catalog whose estimators are the constant expressions "area"/"delay"
// must produce candidate-for-candidate identical query, ordering, and
// TopK results at any width point as the scalar engine filtered to the
// same coverage.
func TestConstantEstimatorsMatchScalarEngine(t *testing.T) {
	scalar, err := Open(relstore.New())
	if err != nil {
		t.Fatal(err)
	}
	est, err := Open(relstore.New())
	if err != nil {
		t.Fatal(err)
	}
	impls, err := est.Impls()
	if err != nil {
		t.Fatal(err)
	}
	for _, im := range impls {
		// Overwrite the builtin width-scaling estimators with the
		// degenerate constant case.
		if err := est.RegisterEstimator(im.Name, "area", "area"); err != nil {
			t.Fatal(err)
		}
		if err := est.RegisterEstimator(im.Name, "delay", "delay"); err != nil {
			t.Fatal(err)
		}
	}
	for _, order := range []Order{{}, {Attr: "area"}, {Attr: "delay", Desc: true}, {Attr: "cost"}} {
		for _, k := range []int{0, 3} {
			want, err := scalar.QueryOrdered(order, k, ForWidth(8))
			if err != nil {
				t.Fatal(err)
			}
			got, err := est.QueryOrdered(order, k, AtWidth(8))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("order %+v k=%d: constant-estimator engine diverged\n got %+v\nwant %+v",
					order, k, got, want)
			}
		}
	}
}

// TestEstimateImpl covers the point-estimate API: estimator evaluation,
// the scalar fallback, and range errors.
func TestEstimateImpl(t *testing.T) {
	db := openTestDB(t)
	// cnt_ripple carries the builtin linear estimators (area*width,
	// delay*width); its scalars are 7 and 9.
	area, delay, cost, err := db.EstimateImpl("cnt_ripple", 8)
	if err != nil {
		t.Fatal(err)
	}
	if area != 56 || delay != 72 || cost != 128 {
		t.Errorf("cnt_ripple at 8 = (%g, %g, %g), want (56, 72, 128)", area, delay, cost)
	}
	// An implementation with no estimators falls back to its scalars.
	regScaled(t, db, "plain_add", 5, 4, "", "")
	area, delay, _, err = db.EstimateImpl("plain_add", 32)
	if err != nil {
		t.Fatal(err)
	}
	if area != 5 || delay != 4 {
		t.Errorf("scalar fallback = (%g, %g), want (5, 4)", area, delay)
	}
	if _, _, _, err := db.EstimateImpl("cnt_ripple", 65); err == nil ||
		!strings.Contains(err.Error(), "width range") {
		t.Errorf("out-of-range estimate: %v", err)
	}
	if _, _, _, err := db.EstimateImpl("no_such", 8); err == nil {
		t.Error("unknown implementation accepted")
	}
}

// TestRegisterGeneratorValidation: every declared invariant is enforced.
func TestRegisterGeneratorValidation(t *testing.T) {
	db := openTestDB(t)
	ok := builtinGenerators()[0]
	cases := []struct {
		name   string
		mutate func(*Generator)
		want   string
	}{
		{"no name", func(g *Generator) { g.Name = "" }, "no name"},
		{"bad component", func(g *Generator) { g.Component = "Blob" }, "unknown component type"},
		{"no functions", func(g *Generator) { g.Functions = nil }, "executes no functions"},
		{"foreign function", func(g *Generator) { g.Functions = []genus.Function{genus.FuncMUL} }, "not executable"},
		{"bad width range", func(g *Generator) { g.WidthMin = 9; g.WidthMax = 3 }, "bad width range"},
		{"no size param", func(g *Generator) {
			g.Params = []string{"n"}
			g.Source = strings.Replace(g.Source, "PARAMETER: size;", "PARAMETER: n;", 1)
		}, `lacks the "size" width parameter`},
		{"empty estimator", func(g *Generator) { g.AreaExpr = " " }, "empty area estimator"},
		{"bad estimator", func(g *Generator) { g.DelayExpr = "width +" }, "bad delay estimator"},
		{"name mismatch", func(g *Generator) { g.Name = "other" }, "must match"},
		{"param mismatch", func(g *Generator) { g.Params = []string{"size", "extra"} }, "does not match"},
	}
	for _, c := range cases {
		g := ok.Clone()
		c.mutate(&g)
		err := db.RegisterGenerator(g)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want %q", c.name, err, c.want)
		}
	}
}

// TestGenerateRegistersQueryableImpl: the acceptance path — a generated
// implementation is immediately visible to queries and the expander,
// carries the generator's estimators, and re-generation reuses it.
func TestGenerateRegistersQueryableImpl(t *testing.T) {
	db := openTestDB(t)
	im, reused, err := db.Generate("gen_sub", map[string]int{"size": 8})
	if err != nil {
		t.Fatal(err)
	}
	if reused {
		t.Error("first generation reported reused")
	}
	if im.Name != "gen_sub_size_8" || im.WidthMin != 8 || im.WidthMax != 8 {
		t.Errorf("generated impl = %+v", im)
	}
	if im.Area != 80 || im.Delay != 14 { // 10*8, 6+8
		t.Errorf("generated estimates = (%g, %g), want (80, 14)", im.Area, im.Delay)
	}
	// Queryable by function, and ranked width-aware.
	cands, err := db.QueryByFunction(genus.FuncSUB, AtWidth(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 || cands[0].Impl.Name != "gen_sub_size_8" {
		t.Errorf("query-by-SUB = %+v", cands)
	}
	// Estimators attached.
	ests, err := db.Estimators("gen_sub_size_8")
	if err != nil || ests["area"] != "10 * width" || ests["delay"] != "6 + width" {
		t.Errorf("attached estimators = %v (%v)", ests, err)
	}
	// Re-generation at the same point reuses the registered row.
	again, reused, err := db.Generate("gen_sub", map[string]int{"size": 8})
	if err != nil || !reused || again.Name != im.Name {
		t.Errorf("re-generate = %+v reused=%v err=%v", again, reused, err)
	}
	// Out-of-range and mis-bound points fail.
	if _, _, err := db.Generate("gen_sub", map[string]int{"size": 999}); err == nil ||
		!strings.Contains(err.Error(), "width range") {
		t.Errorf("out-of-range generate: %v", err)
	}
	if _, _, err := db.Generate("gen_sub", map[string]int{"n": 8}); err == nil {
		t.Error("mis-bound generate accepted")
	}
	if _, _, err := db.Generate("nope", map[string]int{"size": 8}); err == nil {
		t.Error("unknown generator accepted")
	}
}

// TestGeneratorPersistenceRoundTrip: generators, estimators, and
// generated implementations survive both persistence formats, and the
// reopened database keeps answering width-aware queries identically.
func TestGeneratorPersistenceRoundTrip(t *testing.T) {
	db := openTestDB(t)
	if _, _, err := db.Generate("gen_cnt", map[string]int{"size": 24}); err != nil {
		t.Fatal(err)
	}
	want, err := db.QueryByFunctionsOrdered([]genus.Function{genus.FuncCOUNTER}, Order{Attr: "area"}, 0, AtWidth(24))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "db.json")
	snapPath := filepath.Join(dir, "db.snap")
	if err := db.Store().Save(jsonPath); err != nil {
		t.Fatal(err)
	}
	if err := db.Store().SaveSnapshot(snapPath); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{jsonPath, snapPath} {
		st, err := relstore.Load(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		re, err := Open(st)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		g, err := re.GeneratorByName("gen_cnt")
		if err != nil || g.AreaExpr != "12 * width" {
			t.Fatalf("%s: generator lost: %+v (%v)", path, g, err)
		}
		got, err := re.QueryByFunctionsOrdered([]genus.Function{genus.FuncCOUNTER}, Order{Attr: "area"}, 0, AtWidth(24))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: width-aware query diverged after reload\n got %+v\nwant %+v", path, got, want)
		}
	}
}

// TestGeneratorsByComponentUsesIndex: the component-keyed listing
// returns exactly that type's generators (served from the secondary
// index) and survives re-registration.
func TestGeneratorsByComponentUsesIndex(t *testing.T) {
	db := openTestDB(t)
	gens, err := db.GeneratorsByComponent(genus.CompCounter)
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 1 || gens[0].Name != "gen_cnt" {
		t.Errorf("Counter generators = %+v", gens)
	}
	if _, err := db.GeneratorsByComponent("Blob"); err == nil {
		t.Error("unknown component type accepted")
	}
	all, err := db.Generators()
	if err != nil || len(all) != 2 {
		t.Errorf("Generators() = %d entries (%v)", len(all), err)
	}
}

// TestOpenCreatesNewRelationsOnOldStores: a store persisted before the
// generator/estimator relations existed (simulated by dropping them)
// reopens cleanly, with the new tables bootstrapped and re-seeded.
func TestOpenCreatesNewRelationsOnOldStores(t *testing.T) {
	db := openTestDB(t)
	for _, table := range []string{TableGenerators, TableEstimators} {
		if err := db.Store().DropTable(table); err != nil {
			t.Fatal(err)
		}
	}
	db.InvalidateCaches()
	re, err := Open(db.Store())
	if err != nil {
		t.Fatalf("reopen without new relations: %v", err)
	}
	if _, err := re.GeneratorByName("gen_cnt"); err != nil {
		t.Errorf("generators not re-seeded: %v", err)
	}
}

// TestGeneratedImplNameIsInjective: distinct binding points must never
// collide onto one implementation name (a bare name+value concatenation
// would map {a:12, a1:3} and {a:13, a1:2} to the same string).
func TestGeneratedImplNameIsInjective(t *testing.T) {
	a := GeneratedImplName("g", map[string]int{"a": 12, "a1": 3})
	b := GeneratedImplName("g", map[string]int{"a": 13, "a1": 2})
	if a == b {
		t.Fatalf("colliding generated names: %q", a)
	}
	if got := GeneratedImplName("gen_cnt", map[string]int{"size": 16}); got != "gen_cnt_size_16" {
		t.Errorf("GeneratedImplName = %q, want gen_cnt_size_16", got)
	}
}
