// Package icdb implements the Intelligent Component Database engine of
// Chen & Gajski (DAC'90): a relational database of microarchitecture
// components that behavioral-synthesis tools query by function. The
// database keeps four relations (components, implementations, instances,
// tool parameters) in a relstore.Store (the INGRES stand-in), classifies
// implementations with the GENUS taxonomy from package genus, and stores
// each implementation's parameterized structure as IIF source text that
// package expand turns into flat equation networks on demand.
package icdb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"icdb/internal/genus"
	"icdb/internal/iif"
	"icdb/internal/relstore"
)

// Table names of the ICDB relational schema (§3 of the paper). The
// generators and estimators relations hold the paper's component
// generators (procedures emitting implementations on demand, see
// Generator/Generate) and parameterized cost estimators (see
// RegisterEstimator/AtWidth).
const (
	TableComponents      = "components"
	TableImplementations = "implementations"
	TableInstances       = "instances"
	TableToolParams      = "tool_params"
	TableGenerators      = "generators"
	TableEstimators      = "estimators"
	TableExplorations    = "explorations"
)

// Schemas returns the relational schema of every ICDB table.
func Schemas() []relstore.Schema {
	return []relstore.Schema{
		{
			Table: TableComponents,
			Columns: []relstore.Column{
				{Name: "component", Type: relstore.TString},
				{Name: "functions", Type: relstore.TString},
			},
			Key: []string{"component"},
		},
		{
			Table: TableImplementations,
			Columns: []relstore.Column{
				{Name: "name", Type: relstore.TString},
				{Name: "component", Type: relstore.TString},
				{Name: "style", Type: relstore.TString},
				{Name: "functions", Type: relstore.TString},
				{Name: "width_min", Type: relstore.TInt},
				{Name: "width_max", Type: relstore.TInt},
				{Name: "stages", Type: relstore.TInt},
				{Name: "area", Type: relstore.TFloat},
				{Name: "delay", Type: relstore.TFloat},
				{Name: "params", Type: relstore.TString},
				{Name: "source", Type: relstore.TString},
			},
			Key: []string{"name"},
		},
		{
			Table: TableInstances,
			Columns: []relstore.Column{
				{Name: "id", Type: relstore.TInt},
				{Name: "impl", Type: relstore.TString},
				{Name: "bindings", Type: relstore.TString},
				{Name: "design", Type: relstore.TString},
				{Name: "uses", Type: relstore.TInt},
			},
			Key: []string{"impl", "bindings"},
		},
		{
			Table: TableToolParams,
			Columns: []relstore.Column{
				{Name: "tool", Type: relstore.TString},
				{Name: "param", Type: relstore.TString},
				{Name: "value", Type: relstore.TFloat},
			},
			Key: []string{"tool", "param"},
		},
		{
			Table: TableGenerators,
			Columns: []relstore.Column{
				{Name: "name", Type: relstore.TString},
				{Name: "component", Type: relstore.TString},
				{Name: "style", Type: relstore.TString},
				{Name: "functions", Type: relstore.TString},
				{Name: "width_min", Type: relstore.TInt},
				{Name: "width_max", Type: relstore.TInt},
				{Name: "stages", Type: relstore.TInt},
				{Name: "params", Type: relstore.TString},
				{Name: "area_expr", Type: relstore.TString},
				{Name: "delay_expr", Type: relstore.TString},
				{Name: "source", Type: relstore.TString},
			},
			Key: []string{"name"},
			// Serves GeneratorsByComponent (the expander's generator
			// fallback and CQL "generate <component>") from a posting list.
			Indexes: []relstore.Index{{Columns: []string{"component"}}},
		},
		{
			Table: TableEstimators,
			Columns: []relstore.Column{
				{Name: "impl", Type: relstore.TString},
				{Name: "attr", Type: relstore.TString},
				{Name: "expr", Type: relstore.TString},
			},
			Key: []string{"impl", "attr"},
			// Serves Estimators(impl) — all of one implementation's
			// estimator rows — from a posting list.
			Indexes: []relstore.Index{{Columns: []string{"impl"}}},
		},
		{
			Table: TableExplorations,
			Columns: []relstore.Column{
				{Name: "generator", Type: relstore.TString},
				{Name: "bindings", Type: relstore.TString},
				{Name: "component", Type: relstore.TString},
				{Name: "width", Type: relstore.TInt},
				{Name: "area", Type: relstore.TFloat},
				{Name: "delay", Type: relstore.TFloat},
			},
			// One row per evaluated design point: the generator (or
			// implementation, for estimate results) and its canonical
			// binding string identify the point, so re-sweeping a range
			// upserts value-equal rows — journal-silent no-ops.
			Key: []string{"generator", "bindings"},
			// Serve Pareto(component) and Pareto(generator) from posting
			// lists instead of full scans.
			Indexes: []relstore.Index{
				{Columns: []string{"component"}},
				{Columns: []string{"generator"}},
			},
		},
	}
}

// Impl is one row of the implementations relation: a (possibly
// parameterized) realization of a GENUS component type. Source holds the
// IIF text of the parameterized structure; Params names the IIF PARAMETER
// variables in declaration order. Area and Delay are per-bit estimates
// used by the query ranker.
//
// WidthMin/WidthMax constrain the value bound to the parameter named
// "size" — the GENUS width-parameter convention every builtin follows.
// Implementations whose width parameter has a different name are not
// range-checked at expansion time.
type Impl struct {
	Name      string
	Component genus.ComponentType
	Style     string
	Functions []genus.Function
	WidthMin  int
	WidthMax  int
	Stages    int
	Area      float64
	Delay     float64
	Params    []string
	Source    string
}

// Attrs exposes the implementation's attributes to constraint
// expressions (see Where).
func (im Impl) Attrs() Attrs {
	a := make(Attrs, 5)
	im.fillAttrs(a)
	return a
}

// fillAttrs (re)fills a with im's attributes. The query engine reuses
// one map across the candidates of a streamed query instead of
// allocating per row.
func (im *Impl) fillAttrs(a Attrs) {
	a["width_min"] = float64(im.WidthMin)
	a["width_max"] = float64(im.WidthMax)
	a["stages"] = float64(im.Stages)
	a["area"] = im.Area
	a["delay"] = im.Delay
}

// DB is the component database engine. It wraps a relstore.Store holding
// the four ICDB relations and serializes read-modify-write sequences.
//
// On top of the store, a DB maintains derived read-path state: a cache of
// decoded implementations plus inverted indexes from function and
// component type to the implementations carrying them, so query-by-
// function intersects posting lists instead of scanning and re-decoding
// the implementations relation. The derived state is built lazily, kept
// current by RegisterImpl and SetToolParam, and dropped wholesale by
// InvalidateCaches; writes that bypass the DB (directly through Store())
// must call InvalidateCaches to be seen by queries.
type DB struct {
	store *relstore.Store
	mu    sync.Mutex
	// nextInstID is the next instance ID to allocate; 0 means not yet
	// computed from the store (guarded by mu).
	nextInstID int

	// cmu guards the der/est pointers and the weight cache below. The
	// derived state itself lives in copy-on-write snapshots (same
	// discipline as relstore's tableData): readers pin the current
	// snapshot under a brief RLock and iterate it lock-free, so streamed
	// query visitors may take as long as they like — and re-enter the DB —
	// without blocking RegisterImpl or each other.
	//
	// The two pieces build independently, each from a scan of only its
	// own relation (ensureIndexes / ensureEstimators): a width-free query
	// touches implementations but never estimators, and a lazily opened
	// store (relstore.OpenLazy) hydrates only the relations the session's
	// queries actually reach.
	cmu sync.RWMutex
	der *derived  // impl cache + inverted indexes; nil until built
	est *estCache // compiled estimators; nil until built
	// Cached ranking weights (tool "icdb"), refreshed after SetToolParam.
	wa, wd float64
	wOK    bool

	// pmu guards the frontier engine's design-point cache: decoded,
	// sweep-ordered exploration sets per query scope, stamped with the
	// store generation they were read at so any effective mutation —
	// through the DB or directly through Store() — invalidates them
	// without an explicit hook (see scopedExplorations in pareto.go).
	pmu  sync.Mutex
	expl *explCache
}

// derived is one immutable-once-shared snapshot of the DB's derived
// read-path state over the implementations relation: the decoded-
// implementation cache and the two inverted indexes. Cached *Impl
// values are shared between snapshots and treated as immutable;
// mutators swap in fresh values instead of editing in place.
//
// shared flips to true the moment a reader pins the snapshot
// (derivedSnap, under cmu.RLock); mutators (under cmu.Lock) then clone
// before writing (writableDerived). RLock and Lock are mutually
// exclusive, so the flag is always seen by a would-be writer before the
// maps are touched.
type derived struct {
	impls  map[string]*Impl                         // name -> decoded implementation
	byFn   map[genus.Function]map[string]*Impl      // function -> posting map
	byCt   map[genus.ComponentType]map[string]*Impl // component type -> posting map
	shared atomic.Bool
}

// clone deep-copies the snapshot's map spines — outer maps and posting
// maps — sharing the *Impl values, which are immutable. The clone
// starts unshared: the writer owns it until the next reader pins it.
func (d *derived) clone() *derived {
	nd := &derived{
		impls: make(map[string]*Impl, len(d.impls)),
		byFn:  make(map[genus.Function]map[string]*Impl, len(d.byFn)),
		byCt:  make(map[genus.ComponentType]map[string]*Impl, len(d.byCt)),
	}
	for k, v := range d.impls {
		nd.impls[k] = v
	}
	for f, post := range d.byFn {
		np := make(map[string]*Impl, len(post))
		for k, v := range post {
			np[k] = v
		}
		nd.byFn[f] = np
	}
	for ct, post := range d.byCt {
		np := make(map[string]*Impl, len(post))
		for k, v := range post {
			np[k] = v
		}
		nd.byCt[ct] = np
	}
	return nd
}

// estCache is the compiled-estimator half of the derived state, built
// from a scan of only the estimators relation (ensureEstimators) —
// independently of the implementation indexes, so width-free queries
// and sessions that never evaluate a width point leave the estimators
// relation untouched (and, under a lazy open, undecoded). Same
// copy-on-write discipline as derived.
type estCache struct {
	ests   map[string]*estPair // impl name -> compiled estimators
	shared atomic.Bool
}

func (e *estCache) clone() *estCache {
	ne := &estCache{ests: make(map[string]*estPair, len(e.ests))}
	for k, v := range e.ests {
		ne.ests[k] = v
	}
	return ne
}

// derivedSnap pins and returns the live derived snapshot, building it
// first when necessary. The returned snapshot is safe to read without
// any lock: concurrent mutators clone instead of editing it. The loop
// closes the window between a successful build and the read lock in
// which a concurrent InvalidateCaches could nil the pointer out.
func (db *DB) derivedSnap() (*derived, error) {
	for {
		db.cmu.RLock()
		if d := db.der; d != nil {
			d.shared.Store(true)
			db.cmu.RUnlock()
			return d, nil
		}
		db.cmu.RUnlock()
		if err := db.ensureIndexes(); err != nil {
			return nil, err
		}
	}
}

// estSnap pins and returns the live estimator cache, building it first
// when necessary — same protocol as derivedSnap, over the estimators
// relation alone.
func (db *DB) estSnap() (*estCache, error) {
	for {
		db.cmu.RLock()
		if e := db.est; e != nil {
			e.shared.Store(true)
			db.cmu.RUnlock()
			return e, nil
		}
		db.cmu.RUnlock()
		if err := db.ensureEstimators(); err != nil {
			return nil, err
		}
	}
}

// writableDerived returns a derived snapshot the caller may mutate.
// Must be called with cmu held exclusively; if the live snapshot has
// been pinned by a reader it is cloned first and the clone installed.
func (db *DB) writableDerived() *derived {
	if db.der.shared.Load() {
		db.der = db.der.clone()
	}
	return db.der
}

// writableEsts is writableDerived for the estimator cache.
func (db *DB) writableEsts() *estCache {
	if db.est.shared.Load() {
		db.est = db.est.clone()
	}
	return db.est
}

// estPair holds one implementation's compiled estimator expressions; a
// nil expression means no estimator is registered for that attribute and
// the scalar estimate stands.
type estPair struct {
	area, delay iif.Expr
}

// Open bootstraps the ICDB schema on store, creating any missing tables,
// and (re)seeds the components relation from the GENUS catalog plus the
// builtin parameterized implementation library. Opening a store that
// already holds ICDB tables (e.g. one read with relstore.Load) is
// idempotent: implementation rows that already exist — including
// user-tuned versions of builtin names — are left untouched.
//
// A store that already holds every ICDB relation skips seeding entirely,
// so Open reads no rows: under a lazy snapshot open (relstore.OpenLazy)
// every table stays an undecoded stub until a query touches it. Only a
// catalog missing some relation (created by an older build) pays the
// seeding probes, which is also what backfills the new relations.
func Open(store *relstore.Store) (*DB, error) {
	db := &DB{store: store}
	complete := true
	for _, sc := range Schemas() {
		if _, err := store.SchemaOf(sc.Table); err == nil {
			continue
		}
		complete = false
		if err := store.CreateTable(sc); err != nil {
			return nil, fmt.Errorf("icdb: bootstrap: %w", err)
		}
	}
	if complete {
		return db, nil
	}
	for _, ct := range genus.AllComponentTypes() {
		row := relstore.Row{
			"component": string(ct),
			"functions": genus.FunctionSetKey(genus.Functions(ct)),
		}
		if err := store.Upsert(TableComponents, row); err != nil {
			return nil, fmt.Errorf("icdb: seed components: %w", err)
		}
	}
	for _, im := range builtinImpls() {
		// Seed only missing rows: a reopened store may carry user-tuned
		// versions of builtin implementations, which must survive.
		if _, err := db.ImplByName(im.Name); err == nil {
			continue
		}
		if err := db.RegisterImpl(im); err != nil {
			return nil, fmt.Errorf("icdb: seed builtin %q: %w", im.Name, err)
		}
	}
	for name, exprs := range builtinEstimators() {
		// Same survival rule per implementation: any existing estimator
		// rows mean the catalog was tuned; leave them alone.
		if have, err := db.Estimators(name); err != nil || len(have) > 0 {
			continue
		}
		for attr, expr := range exprs {
			if err := db.RegisterEstimator(name, attr, expr); err != nil {
				return nil, fmt.Errorf("icdb: seed estimator %s(%s): %w", attr, name, err)
			}
		}
	}
	for _, g := range builtinGenerators() {
		if _, err := db.GeneratorByName(g.Name); err == nil {
			continue
		}
		if err := db.RegisterGenerator(g); err != nil {
			return nil, fmt.Errorf("icdb: seed generator %q: %w", g.Name, err)
		}
	}
	return db, nil
}

// Store returns the underlying relational store (for persistence:
// store.Save / relstore.Load round-trips the whole database). Writing to
// the implementations or tool_params relations directly through the
// store bypasses the DB's derived indexes; call InvalidateCaches
// afterwards so queries observe the change.
func (db *DB) Store() *relstore.Store { return db.store }

// InvalidateCaches drops every piece of derived read-path state (the
// decoded-implementation cache, the function and component inverted
// indexes, and the cached ranking weights). It is rebuilt lazily on the
// next query. Only needed after mutating the store directly; RegisterImpl
// and SetToolParam keep the caches current themselves.
func (db *DB) InvalidateCaches() {
	db.cmu.Lock()
	defer db.cmu.Unlock()
	db.der = nil
	db.est = nil
	db.wOK = false
}

// ensureIndexes builds the decoded-implementation cache and the inverted
// indexes from one no-copy scan of the implementations relation, if they
// are not already live. The estimator cache builds separately
// (ensureEstimators): each piece touches only its own relation.
func (db *DB) ensureIndexes() error {
	db.cmu.RLock()
	built := db.der != nil
	db.cmu.RUnlock()
	if built {
		return nil
	}
	db.cmu.Lock()
	defer db.cmu.Unlock()
	if db.der != nil {
		return nil
	}
	d := &derived{
		impls: make(map[string]*Impl),
		byFn:  make(map[genus.Function]map[string]*Impl),
		byCt:  make(map[genus.ComponentType]map[string]*Impl),
	}
	err := db.store.Scan(TableImplementations, nil, func(r relstore.Row) bool {
		im := rowImpl(r)
		indexImpl(d.impls, d.byFn, d.byCt, &im)
		return true
	})
	if err != nil {
		return err
	}
	db.der = d
	return nil
}

// ensureEstimators compiles the estimator cache from one scan of the
// estimators relation, if it is not already live.
func (db *DB) ensureEstimators() error {
	db.cmu.RLock()
	built := db.est != nil
	db.cmu.RUnlock()
	if built {
		return nil
	}
	db.cmu.Lock()
	defer db.cmu.Unlock()
	if db.est != nil {
		return nil
	}
	ec := &estCache{ests: make(map[string]*estPair)}
	var estErr error
	err := db.store.Scan(TableEstimators, nil, func(r relstore.Row) bool {
		impl, attr := asString(r["impl"]), asString(r["attr"])
		e, perr := iif.ParseExpr(asString(r["expr"]))
		if perr != nil {
			estErr = fmt.Errorf("icdb: estimator %s(%s): %w", attr, impl, perr)
			return false
		}
		setEstimator(ec.ests, impl, attr, e)
		return true
	})
	if err != nil {
		return err
	}
	if estErr != nil {
		return estErr
	}
	db.est = ec
	return nil
}

// setEstimator files a compiled estimator expression under (impl, attr).
// The existing pair, if any, is replaced rather than mutated: *estPair
// values may be shared with pinned derived snapshots whose readers are
// mid-stream.
func setEstimator(ests map[string]*estPair, impl, attr string, e iif.Expr) {
	np := estPair{}
	if p := ests[impl]; p != nil {
		np = *p
	}
	switch attr {
	case "area":
		np.area = e
	case "delay":
		np.delay = e
	}
	ests[impl] = &np
}

// noteEstimator records a freshly registered estimator in the live cache
// (a no-op while the estimator cache is unbuilt — the next
// ensureEstimators picks the row up from the store).
func (db *DB) noteEstimator(impl, attr string, e iif.Expr) {
	db.cmu.Lock()
	defer db.cmu.Unlock()
	if db.est == nil {
		return
	}
	setEstimator(db.writableEsts().ests, impl, attr, e)
}

// indexImpl files im under its name, functions, and component type,
// unfiling any previous implementation of the same name first.
func indexImpl(impls map[string]*Impl, byFn map[genus.Function]map[string]*Impl, byCt map[genus.ComponentType]map[string]*Impl, im *Impl) {
	if old, ok := impls[im.Name]; ok {
		unindexImpl(impls, byFn, byCt, old)
	}
	impls[im.Name] = im
	for _, f := range im.Functions {
		post := byFn[f]
		if post == nil {
			post = make(map[string]*Impl)
			byFn[f] = post
		}
		post[im.Name] = im
	}
	post := byCt[im.Component]
	if post == nil {
		post = make(map[string]*Impl)
		byCt[im.Component] = post
	}
	post[im.Name] = im
}

func unindexImpl(impls map[string]*Impl, byFn map[genus.Function]map[string]*Impl, byCt map[genus.ComponentType]map[string]*Impl, im *Impl) {
	delete(impls, im.Name)
	for _, f := range im.Functions {
		if post := byFn[f]; post != nil {
			delete(post, im.Name)
			if len(post) == 0 {
				delete(byFn, f)
			}
		}
	}
	if post := byCt[im.Component]; post != nil {
		delete(post, im.Name)
		if len(post) == 0 {
			delete(byCt, im.Component)
		}
	}
}

// noteImpl records a freshly decoded or registered implementation in the
// live caches (a no-op while they are unbuilt — the next ensureIndexes
// picks the row up from the store).
func (db *DB) noteImpl(im Impl) {
	db.cmu.Lock()
	defer db.cmu.Unlock()
	if db.der == nil {
		return
	}
	d := db.writableDerived()
	indexImpl(d.impls, d.byFn, d.byCt, &im)
}

// RegisterImpl validates and upserts an implementation row. The IIF
// source must parse, its NAME must equal the implementation name, its
// PARAMETER list must match Params, and the declared functions must be a
// non-empty subset of the component type's GENUS function set.
func (db *DB) RegisterImpl(im Impl) error {
	if im.Name == "" {
		return fmt.Errorf("icdb: implementation has no name")
	}
	ct, ok := genus.NormalizeComponentType(string(im.Component))
	if !ok {
		return fmt.Errorf("icdb: %s: unknown component type %q", im.Name, im.Component)
	}
	if len(im.Functions) == 0 {
		return fmt.Errorf("icdb: %s: implementation executes no functions", im.Name)
	}
	allowed := make(map[genus.Function]bool)
	for _, f := range genus.Functions(ct) {
		allowed[f] = true
	}
	for _, f := range im.Functions {
		if !allowed[f] {
			return fmt.Errorf("icdb: %s: function %s not executable by component type %s", im.Name, f, ct)
		}
	}
	if im.WidthMin < 1 || im.WidthMax < im.WidthMin {
		return fmt.Errorf("icdb: %s: bad width range [%d,%d]", im.Name, im.WidthMin, im.WidthMax)
	}
	d, err := iif.Parse(im.Source)
	if err != nil {
		return fmt.Errorf("icdb: %s: bad IIF source: %w", im.Name, err)
	}
	if d.Name != im.Name {
		return fmt.Errorf("icdb: implementation %q has IIF NAME %q; they must match", im.Name, d.Name)
	}
	if !sameNameSet(d.Params, im.Params) {
		return fmt.Errorf("icdb: %s: PARAMETER list %v does not match declared params %v", im.Name, d.Params, im.Params)
	}
	im.Component = ct
	if err := db.store.Upsert(TableImplementations, implRow(im)); err != nil {
		return err
	}
	// Keep the derived indexes current: the registered implementation
	// replaces any previous posting-list entries under its name.
	db.noteImpl(im.Clone())
	return nil
}

func sameNameSet(a, b []string) bool {
	as := append([]string(nil), a...)
	bs := append([]string(nil), b...)
	sort.Strings(as)
	sort.Strings(bs)
	if len(as) != len(bs) {
		return false
	}
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func implRow(im Impl) relstore.Row {
	return relstore.Row{
		"name":      im.Name,
		"component": string(im.Component),
		"style":     im.Style,
		"functions": genus.FunctionSetKey(im.Functions),
		"width_min": im.WidthMin,
		"width_max": im.WidthMax,
		"stages":    im.Stages,
		"area":      im.Area,
		"delay":     im.Delay,
		"params":    strings.Join(im.Params, ","),
		"source":    im.Source,
	}
}

// Clone returns a caller-owned copy of im with freshly allocated slices.
// Cached implementations are shared and immutable, so every
// materializing method hands out clones; callers of the streaming Scan
// queries use Clone to retain a yielded Impl past its visit.
func (im *Impl) Clone() Impl {
	out := *im
	out.Functions = append([]genus.Function(nil), im.Functions...)
	out.Params = append([]string(nil), im.Params...)
	return out
}

func rowImpl(r relstore.Row) Impl {
	im := Impl{
		Name:      asString(r["name"]),
		Component: genus.ComponentType(asString(r["component"])),
		Style:     asString(r["style"]),
		WidthMin:  asInt(r["width_min"]),
		WidthMax:  asInt(r["width_max"]),
		Stages:    asInt(r["stages"]),
		Area:      asFloat(r["area"]),
		Delay:     asFloat(r["delay"]),
		Source:    asString(r["source"]),
	}
	if fs := asString(r["functions"]); fs != "" {
		for _, f := range strings.Split(fs, ",") {
			im.Functions = append(im.Functions, genus.Function(f))
		}
	}
	if ps := asString(r["params"]); ps != "" {
		im.Params = strings.Split(ps, ",")
	}
	return im
}

func asString(v any) string {
	s, _ := v.(string)
	return s
}

func asInt(v any) int {
	switch x := v.(type) {
	case int:
		return x
	case int64:
		return int(x)
	case float64:
		return int(x)
	}
	return 0
}

func asFloat(v any) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case float32:
		return float64(x)
	case int:
		return float64(x)
	case int64:
		return float64(x)
	}
	return 0
}

// ImplByName fetches one implementation by its exact name. It is a point
// lookup: served from the decoded cache when possible, otherwise one
// keyed Get against the store (never a scan).
func (db *DB) ImplByName(name string) (Impl, error) {
	db.cmu.RLock()
	var p *Impl
	if db.der != nil {
		p = db.der.impls[name]
	}
	db.cmu.RUnlock()
	if p != nil {
		return p.Clone(), nil
	}
	row, err := db.store.Get(TableImplementations, name)
	if err != nil {
		return Impl{}, fmt.Errorf("icdb: implementation %q: %w", name, err)
	}
	im := rowImpl(row)
	db.noteImpl(im)
	// noteImpl cached a struct copy sharing im's slices; hand the caller
	// its own copy so mutating the result cannot corrupt the cache.
	return im.Clone(), nil
}

// Impls returns every registered implementation in insertion order. It
// decodes straight off the store's row cursor: rowImpl copies every
// value out, so no defensive row clone is needed.
func (db *DB) Impls() ([]Impl, error) {
	var out []Impl
	for r, err := range db.store.Rows(TableImplementations, nil) {
		if err != nil {
			return nil, err
		}
		out = append(out, rowImpl(r))
	}
	return out, nil
}

// ComponentFunctions reads the components relation: the function set
// registered for component type ct.
func (db *DB) ComponentFunctions(ct genus.ComponentType) ([]genus.Function, error) {
	row, err := db.store.Get(TableComponents, string(ct))
	if err != nil {
		return nil, fmt.Errorf("icdb: component %q: %w", ct, err)
	}
	var out []genus.Function
	for _, f := range strings.Split(asString(row["functions"]), ",") {
		if f != "" {
			out = append(out, genus.Function(f))
		}
	}
	return out, nil
}

// SetToolParam records a synthesis-tool parameter (the paper's tool
// parameters relation, §3): e.g. ranking weights or per-tool defaults.
func (db *DB) SetToolParam(tool, param string, value float64) error {
	if err := db.store.Upsert(TableToolParams, relstore.Row{
		"tool": tool, "param": param, "value": value,
	}); err != nil {
		return err
	}
	db.cmu.Lock()
	db.wOK = false
	db.cmu.Unlock()
	return nil
}

// ToolParam looks up a tool parameter; ok is false when unset.
func (db *DB) ToolParam(tool, param string) (value float64, ok bool) {
	row, err := db.store.Get(TableToolParams, tool, param)
	if err != nil {
		return 0, false
	}
	return asFloat(row["value"]), true
}
