// Package icdb implements the Intelligent Component Database engine of
// Chen & Gajski (DAC'90): a relational database of microarchitecture
// components that behavioral-synthesis tools query by function. The
// database keeps four relations (components, implementations, instances,
// tool parameters) in a relstore.Store (the INGRES stand-in), classifies
// implementations with the GENUS taxonomy from package genus, and stores
// each implementation's parameterized structure as IIF source text that
// package expand turns into flat equation networks on demand.
package icdb

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"icdb/internal/genus"
	"icdb/internal/iif"
	"icdb/internal/relstore"
)

// Table names of the ICDB relational schema (§3 of the paper).
const (
	TableComponents      = "components"
	TableImplementations = "implementations"
	TableInstances       = "instances"
	TableToolParams      = "tool_params"
)

// Schemas returns the relational schema of every ICDB table.
func Schemas() []relstore.Schema {
	return []relstore.Schema{
		{
			Table: TableComponents,
			Columns: []relstore.Column{
				{Name: "component", Type: relstore.TString},
				{Name: "functions", Type: relstore.TString},
			},
			Key: []string{"component"},
		},
		{
			Table: TableImplementations,
			Columns: []relstore.Column{
				{Name: "name", Type: relstore.TString},
				{Name: "component", Type: relstore.TString},
				{Name: "style", Type: relstore.TString},
				{Name: "functions", Type: relstore.TString},
				{Name: "width_min", Type: relstore.TInt},
				{Name: "width_max", Type: relstore.TInt},
				{Name: "stages", Type: relstore.TInt},
				{Name: "area", Type: relstore.TFloat},
				{Name: "delay", Type: relstore.TFloat},
				{Name: "params", Type: relstore.TString},
				{Name: "source", Type: relstore.TString},
			},
			Key: []string{"name"},
		},
		{
			Table: TableInstances,
			Columns: []relstore.Column{
				{Name: "id", Type: relstore.TInt},
				{Name: "impl", Type: relstore.TString},
				{Name: "bindings", Type: relstore.TString},
				{Name: "design", Type: relstore.TString},
				{Name: "uses", Type: relstore.TInt},
			},
			Key: []string{"impl", "bindings"},
		},
		{
			Table: TableToolParams,
			Columns: []relstore.Column{
				{Name: "tool", Type: relstore.TString},
				{Name: "param", Type: relstore.TString},
				{Name: "value", Type: relstore.TFloat},
			},
			Key: []string{"tool", "param"},
		},
	}
}

// Impl is one row of the implementations relation: a (possibly
// parameterized) realization of a GENUS component type. Source holds the
// IIF text of the parameterized structure; Params names the IIF PARAMETER
// variables in declaration order. Area and Delay are per-bit estimates
// used by the query ranker.
//
// WidthMin/WidthMax constrain the value bound to the parameter named
// "size" — the GENUS width-parameter convention every builtin follows.
// Implementations whose width parameter has a different name are not
// range-checked at expansion time.
type Impl struct {
	Name      string
	Component genus.ComponentType
	Style     string
	Functions []genus.Function
	WidthMin  int
	WidthMax  int
	Stages    int
	Area      float64
	Delay     float64
	Params    []string
	Source    string
}

// Attrs exposes the implementation's attributes to constraint
// expressions (see Where).
func (im Impl) Attrs() Attrs {
	return Attrs{
		"width_min": float64(im.WidthMin),
		"width_max": float64(im.WidthMax),
		"stages":    float64(im.Stages),
		"area":      im.Area,
		"delay":     im.Delay,
	}
}

// DB is the component database engine. It wraps a relstore.Store holding
// the four ICDB relations and serializes read-modify-write sequences.
type DB struct {
	store *relstore.Store
	mu    sync.Mutex
	// nextInstID is the next instance ID to allocate; 0 means not yet
	// computed from the store (guarded by mu).
	nextInstID int
}

// Open bootstraps the ICDB schema on store, creating any missing tables,
// and (re)seeds the components relation from the GENUS catalog plus the
// builtin parameterized implementation library. Opening a store that
// already holds ICDB tables (e.g. one read with relstore.Load) is
// idempotent: the components relation is refreshed from GENUS, while
// implementation rows that already exist — including user-tuned versions
// of builtin names — are left untouched.
func Open(store *relstore.Store) (*DB, error) {
	db := &DB{store: store}
	for _, sc := range Schemas() {
		if _, err := store.SchemaOf(sc.Table); err == nil {
			continue
		}
		if err := store.CreateTable(sc); err != nil {
			return nil, fmt.Errorf("icdb: bootstrap: %w", err)
		}
	}
	for _, ct := range genus.AllComponentTypes() {
		row := relstore.Row{
			"component": string(ct),
			"functions": genus.FunctionSetKey(genus.Functions(ct)),
		}
		if err := store.Upsert(TableComponents, row); err != nil {
			return nil, fmt.Errorf("icdb: seed components: %w", err)
		}
	}
	for _, im := range builtinImpls() {
		// Seed only missing rows: a reopened store may carry user-tuned
		// versions of builtin implementations, which must survive.
		if _, err := db.ImplByName(im.Name); err == nil {
			continue
		}
		if err := db.RegisterImpl(im); err != nil {
			return nil, fmt.Errorf("icdb: seed builtin %q: %w", im.Name, err)
		}
	}
	return db, nil
}

// Store returns the underlying relational store (for persistence:
// store.Save / relstore.Load round-trips the whole database).
func (db *DB) Store() *relstore.Store { return db.store }

// RegisterImpl validates and upserts an implementation row. The IIF
// source must parse, its NAME must equal the implementation name, its
// PARAMETER list must match Params, and the declared functions must be a
// non-empty subset of the component type's GENUS function set.
func (db *DB) RegisterImpl(im Impl) error {
	if im.Name == "" {
		return fmt.Errorf("icdb: implementation has no name")
	}
	ct, ok := genus.NormalizeComponentType(string(im.Component))
	if !ok {
		return fmt.Errorf("icdb: %s: unknown component type %q", im.Name, im.Component)
	}
	if len(im.Functions) == 0 {
		return fmt.Errorf("icdb: %s: implementation executes no functions", im.Name)
	}
	allowed := make(map[genus.Function]bool)
	for _, f := range genus.Functions(ct) {
		allowed[f] = true
	}
	for _, f := range im.Functions {
		if !allowed[f] {
			return fmt.Errorf("icdb: %s: function %s not executable by component type %s", im.Name, f, ct)
		}
	}
	if im.WidthMin < 1 || im.WidthMax < im.WidthMin {
		return fmt.Errorf("icdb: %s: bad width range [%d,%d]", im.Name, im.WidthMin, im.WidthMax)
	}
	d, err := iif.Parse(im.Source)
	if err != nil {
		return fmt.Errorf("icdb: %s: bad IIF source: %w", im.Name, err)
	}
	if d.Name != im.Name {
		return fmt.Errorf("icdb: implementation %q has IIF NAME %q; they must match", im.Name, d.Name)
	}
	if !sameNameSet(d.Params, im.Params) {
		return fmt.Errorf("icdb: %s: PARAMETER list %v does not match declared params %v", im.Name, d.Params, im.Params)
	}
	im.Component = ct
	return db.store.Upsert(TableImplementations, implRow(im))
}

func sameNameSet(a, b []string) bool {
	as := append([]string(nil), a...)
	bs := append([]string(nil), b...)
	sort.Strings(as)
	sort.Strings(bs)
	if len(as) != len(bs) {
		return false
	}
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func implRow(im Impl) relstore.Row {
	return relstore.Row{
		"name":      im.Name,
		"component": string(im.Component),
		"style":     im.Style,
		"functions": genus.FunctionSetKey(im.Functions),
		"width_min": im.WidthMin,
		"width_max": im.WidthMax,
		"stages":    im.Stages,
		"area":      im.Area,
		"delay":     im.Delay,
		"params":    strings.Join(im.Params, ","),
		"source":    im.Source,
	}
}

func rowImpl(r relstore.Row) Impl {
	im := Impl{
		Name:      asString(r["name"]),
		Component: genus.ComponentType(asString(r["component"])),
		Style:     asString(r["style"]),
		WidthMin:  asInt(r["width_min"]),
		WidthMax:  asInt(r["width_max"]),
		Stages:    asInt(r["stages"]),
		Area:      asFloat(r["area"]),
		Delay:     asFloat(r["delay"]),
		Source:    asString(r["source"]),
	}
	if fs := asString(r["functions"]); fs != "" {
		for _, f := range strings.Split(fs, ",") {
			im.Functions = append(im.Functions, genus.Function(f))
		}
	}
	if ps := asString(r["params"]); ps != "" {
		im.Params = strings.Split(ps, ",")
	}
	return im
}

func asString(v any) string {
	s, _ := v.(string)
	return s
}

func asInt(v any) int {
	switch x := v.(type) {
	case int:
		return x
	case int64:
		return int(x)
	case float64:
		return int(x)
	}
	return 0
}

func asFloat(v any) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case float32:
		return float64(x)
	case int:
		return float64(x)
	case int64:
		return float64(x)
	}
	return 0
}

// ImplByName fetches one implementation by its exact name.
func (db *DB) ImplByName(name string) (Impl, error) {
	row, err := db.store.SelectOne(TableImplementations, relstore.Eq("name", name))
	if err != nil {
		return Impl{}, fmt.Errorf("icdb: implementation %q: %w", name, err)
	}
	return rowImpl(row), nil
}

// Impls returns every registered implementation in insertion order.
func (db *DB) Impls() ([]Impl, error) {
	rows, err := db.store.Select(TableImplementations, nil)
	if err != nil {
		return nil, err
	}
	out := make([]Impl, len(rows))
	for i, r := range rows {
		out[i] = rowImpl(r)
	}
	return out, nil
}

// ComponentFunctions reads the components relation: the function set
// registered for component type ct.
func (db *DB) ComponentFunctions(ct genus.ComponentType) ([]genus.Function, error) {
	row, err := db.store.SelectOne(TableComponents, relstore.Eq("component", string(ct)))
	if err != nil {
		return nil, fmt.Errorf("icdb: component %q: %w", ct, err)
	}
	var out []genus.Function
	for _, f := range strings.Split(asString(row["functions"]), ",") {
		if f != "" {
			out = append(out, genus.Function(f))
		}
	}
	return out, nil
}

// SetToolParam records a synthesis-tool parameter (the paper's tool
// parameters relation, §3): e.g. ranking weights or per-tool defaults.
func (db *DB) SetToolParam(tool, param string, value float64) error {
	return db.store.Upsert(TableToolParams, relstore.Row{
		"tool": tool, "param": param, "value": value,
	})
}

// ToolParam looks up a tool parameter; ok is false when unset.
func (db *DB) ToolParam(tool, param string) (value float64, ok bool) {
	row, err := db.store.SelectOne(TableToolParams,
		relstore.And(relstore.Eq("tool", tool), relstore.Eq("param", param)))
	if err != nil {
		return 0, false
	}
	return asFloat(row["value"]), true
}
