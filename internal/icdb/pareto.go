// Pareto dominance over explored design points. A point dominates
// another when it is no worse on both cost axes (area, delay) and
// strictly better on at least one; the Pareto frontier is the set of
// non-dominated points — the paper's "answer design questions" promise
// made concrete: not the single cheapest candidate under one weighting,
// but every defensible trade-off in the explored space. Dominated
// points are not silently dropped: each carries the frontier point that
// dominates it and the margin, the ranked-near-miss explanation of
// Mishra & Jagannathan applied to design spaces.
package icdb

import (
	"fmt"
	"math"
	"sort"

	"icdb/internal/genus"
)

// ParetoPoint is one design point as the frontier engine reports it.
// Frontier points stream with Dominated false; when a query asks for
// dominated points too, each arrives with the identity of one frontier
// point that dominates it and the (non-negative) area/delay margins.
type ParetoPoint struct {
	Exploration
	// Cost is the weighted score at the query's ranking weights, for
	// display next to the two raw axes.
	Cost float64
	// Dominated marks a point beaten by some frontier point.
	Dominated bool
	// DominatedBy is the PointID of a frontier point dominating this one
	// ("" on frontier points). Among the frontier points that dominate,
	// the reported one has the largest area not exceeding this point's —
	// the nearest frontier neighbor on the area axis.
	DominatedBy string
	// DArea and DDelay are this point's margins over the dominating
	// point: Area-dominator.Area and Delay-dominator.Delay, both >= 0
	// and at least one > 0.
	DArea  float64
	DDelay float64
}

// dominates reports whether a dominates b: no worse on both axes,
// strictly better on at least one. Equal points do not dominate each
// other, so exact duplicates both sit on the frontier.
func dominates(a, b *Exploration) bool {
	if a.Area > b.Area || a.Delay > b.Delay {
		return false
	}
	return a.Area < b.Area || a.Delay < b.Delay
}

// ParetoQuery selects and filters the design points of one frontier
// query. The zero value queries every recorded exploration.
type ParetoQuery struct {
	// Component restricts the points to one component type's design
	// space (served from the explorations relation's component index).
	Component genus.ComponentType
	// Generator restricts the points to one generator's (or estimated
	// implementation's) space. Ignored when Component is set.
	Generator string
	// Constraints filter points before dominance is computed: each point
	// exposes width, area, delay (and width_min/width_max aliasing the
	// point width) to the same Constraint vocabulary find commands use.
	// Dominance is decided among the points that survive, so constraining
	// the space re-shapes the frontier rather than punching holes in it.
	Constraints []Constraint
	// Dominated streams dominated points too (flagged, with their
	// dominator and margins) instead of the frontier alone.
	Dominated bool
}

// Pareto streams the Pareto frontier of the selected design points to
// visit in ascending area order (ties by delay, then point identity),
// the streaming-visitor contract every query path shares: visit
// returning false stops the delivery. With q.Dominated, dominated
// points stream too, interleaved in the same global order and flagged
// with an explanation. Dominance needs the whole surviving point set,
// so the points are materialized and sorted before the first visit; the
// relation scan underneath runs over a pinned snapshot and holds no
// lock while visit runs.
func (db *DB) Pareto(q ParetoQuery, visit func(ParetoPoint) bool) error {
	pts, err := db.paretoPoints(q)
	if err != nil {
		return err
	}
	wa, wd := db.queryWeights(q.Constraints)
	frontier, domBy := paretoFrontier(pts)
	// Distinct dominators number at most the frontier size, far below
	// the dominated count; memoizing their rendered IDs keeps the
	// stream at O(frontier) string allocations instead of O(points).
	var domIDs map[int]string
	for i, pt := range pts {
		p := ParetoPoint{Exploration: pt, Cost: pt.Area*wa + pt.Delay*wd}
		if !frontier[i] {
			if !q.Dominated {
				continue
			}
			dom := &pts[domBy[i]]
			if domIDs == nil {
				domIDs = make(map[int]string, 8)
			}
			id, ok := domIDs[domBy[i]]
			if !ok {
				id = dom.PointID()
				domIDs[domBy[i]] = id
			}
			p.Dominated = true
			p.DominatedBy = id
			p.DArea = pt.Area - dom.Area
			p.DDelay = pt.Delay - dom.Delay
		}
		if !visit(p) {
			return nil
		}
	}
	return nil
}

// ParetoFrontier materializes the frontier of one query, in the same
// order Pareto streams it.
func (db *DB) ParetoFrontier(q ParetoQuery) ([]ParetoPoint, error) {
	var out []ParetoPoint
	err := db.Pareto(q, func(p ParetoPoint) bool {
		out = append(out, p)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// explCache holds the frontier engine's decoded design-point sets, one
// pointLess-sorted slice per query scope ("" for the whole relation,
// "ct:X" / "gen:X" for the indexed subsets), all read at generation
// gen. Row decode plus the sweep sort dominate a cold frontier query;
// caching the sorted slice makes a repeated query — the interactive
// explore-then-ask loop — a filter over already-ordered points. The
// cached slices are shared and treated as immutable.
type explCache struct {
	gen uint64
	pts map[string][]Exploration
}

// scopedExplorations returns the query's scope — the whole relation,
// one component type's points, or one generator's — decoded and sorted
// in sweep order, served from the cache while the store generation is
// unchanged. A cold filtered scope is still built from the relation's
// secondary index, not a full scan.
func (db *DB) scopedExplorations(q ParetoQuery) ([]Exploration, error) {
	var key string
	switch {
	case q.Component != "":
		nct, ok := genus.NormalizeComponentType(string(q.Component))
		if !ok {
			return nil, fmt.Errorf("icdb: unknown component type %q", q.Component)
		}
		q.Component = nct
		key = "ct:" + string(nct)
	case q.Generator != "":
		key = "gen:" + q.Generator
	}
	// The generation is read BEFORE the scan: a write landing mid-scan
	// may leak into the slice we build, but it also bumps the live
	// generation past gen, so the mislabeled entry is rebuilt on the
	// next query instead of being served.
	gen := db.store.Generation()
	db.pmu.Lock()
	if db.expl != nil && db.expl.gen == gen {
		if pts, ok := db.expl.pts[key]; ok {
			db.pmu.Unlock()
			return pts, nil
		}
	}
	db.pmu.Unlock()

	var pts []Exploration
	err := db.explorationsScan(q.Component, q.Generator, func(e Exploration) bool {
		pts = append(pts, e)
		return true
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(pts, func(i, j int) bool { return pointLess(&pts[i], &pts[j]) })

	db.pmu.Lock()
	switch {
	case db.expl == nil || gen > db.expl.gen:
		db.expl = &explCache{gen: gen, pts: map[string][]Exploration{key: pts}}
	case gen == db.expl.gen:
		db.expl.pts[key] = pts
		// gen < db.expl.gen: a concurrent rebuild saw a newer store; keep it.
	}
	db.pmu.Unlock()
	return pts, nil
}

// paretoPoints collects the query's surviving design points, sorted into
// the sweep order dominance is decided in: area ascending, then delay,
// then point identity — a total order, so query answers are
// deterministic regardless of relation iteration order. Filtering the
// cached scope preserves its sort, so only a cold scope ever pays one.
func (db *DB) paretoPoints(q ParetoQuery) ([]Exploration, error) {
	if _, err := evalWidth(q.Constraints); err != nil {
		// An invalid AtWidth point is a query error, same as on the find
		// path — not an empty answer.
		return nil, err
	}
	all, err := db.scopedExplorations(q)
	if err != nil {
		return nil, err
	}
	if len(q.Constraints) == 0 {
		// The cached slice is shared; callers (Pareto) only read it.
		return all, nil
	}
	var pts []Exploration
	var attrs Attrs
	for i := range all {
		ok, err := paretoAccept(q.Constraints, &all[i], &attrs)
		if err != nil {
			return nil, err
		}
		if ok {
			pts = append(pts, all[i])
		}
	}
	return pts, nil
}

// pointLess is the engine's total order over design points: area, then
// delay, then generator and bindings as the deterministic tie-break.
func pointLess(a, b *Exploration) bool {
	if a.Area != b.Area {
		return a.Area < b.Area
	}
	if a.Delay != b.Delay {
		return a.Delay < b.Delay
	}
	if a.Generator != b.Generator {
		return a.Generator < b.Generator
	}
	return a.Bindings < b.Bindings
}

// paretoAccept runs the query constraints over one design point's
// attribute view. The point exposes its evaluated axes plus a width
// range collapsed to the single explored width, so the "width = 8"
// sugar and width_min/width_max comparisons mean the obvious thing.
// Like the find path, one attribute map is reused across the stream.
func paretoAccept(cs []Constraint, e *Exploration, attrs *Attrs) (bool, error) {
	if len(cs) == 0 {
		return true, nil
	}
	if *attrs == nil {
		*attrs = make(Attrs, 6)
	}
	a := *attrs
	a["width"] = float64(e.Width)
	a["width_min"] = float64(e.Width)
	a["width_max"] = float64(e.Width)
	a["area"] = e.Area
	a["delay"] = e.Delay
	a["stages"] = 0
	for _, c := range cs {
		if c.atWidth != 0 && c.atWidth != e.Width {
			// An AtWidth constraint on a frontier query pins the explored
			// width exactly; estimator re-evaluation does not apply to
			// already-evaluated points.
			return false, nil
		}
		pass, err := c.Accept(a)
		if err != nil || !pass {
			return false, err
		}
	}
	return true, nil
}

// paretoFrontier partitions sorted points into frontier and dominated in
// one sweep. pts MUST be sorted by pointLess. frontier[i] reports
// whether pts[i] is non-dominated; for dominated points, domBy[i] is the
// index of the frontier point reported as the dominator — the one with
// the largest area not exceeding pts[i]'s (its nearest frontier
// neighbor area-wise), which by the sweep invariant holds the minimum
// delay among all points at or below that area.
//
// The sweep is O(n) after the sort: walking areas in ascending order,
// a point is on the frontier exactly when its delay is strictly below
// every smaller-area point's best delay and equal to its own area
// group's minimum. Exact duplicates share a group minimum and are all
// frontier — equality dominates nothing.
func paretoFrontier(pts []Exploration) (frontier []bool, domBy []int) {
	n := len(pts)
	frontier = make([]bool, n)
	domBy = make([]int, n)
	bestDelay := math.Inf(1)
	bestIdx := -1
	for g := 0; g < n; {
		// One equal-area group: pts[g:end). Sorted by delay within the
		// group, so pts[g] holds the group minimum.
		end := g + 1
		for end < n && pts[end].Area == pts[g].Area {
			end++
		}
		groupMin := pts[g].Delay
		groupLeader := g
		for i := g; i < end; i++ {
			switch {
			case groupMin < bestDelay && pts[i].Delay == groupMin:
				// Strictly better than every smaller-area point and tied
				// for best in its own area group: non-dominated.
				frontier[i] = true
			case groupMin < bestDelay:
				// Beaten within its own area group: same area, strictly
				// smaller delay.
				domBy[i] = groupLeader
			default:
				// Some smaller-area point is at least as fast: it
				// dominates everything in this group.
				domBy[i] = bestIdx
			}
		}
		if groupMin < bestDelay {
			bestDelay, bestIdx = groupMin, groupLeader
		}
		g = end
	}
	return frontier, domBy
}

// bruteForceFrontier is the O(n²) dominance reference: a point is on the
// frontier iff no other point dominates it. It exists for the property
// tests that cross-validate the sweep and for small ad-hoc callers that
// prefer the obviously correct form.
func bruteForceFrontier(pts []Exploration) []bool {
	frontier := make([]bool, len(pts))
	for i := range pts {
		dominated := false
		for j := range pts {
			if i != j && dominates(&pts[j], &pts[i]) {
				dominated = true
				break
			}
		}
		frontier[i] = !dominated
	}
	return frontier
}

// CheckFrontier asserts the dominance postcondition over an arbitrary
// point set and its claimed frontier: every claimed point is dominated
// by nothing, and every omitted point is dominated by some claimed
// point. It is the property the tests (and paranoid callers) hold the
// sweep to.
func CheckFrontier(pts []Exploration, frontier []bool) error {
	if len(pts) != len(frontier) {
		return fmt.Errorf("icdb: frontier mask covers %d of %d points", len(frontier), len(pts))
	}
	for i := range pts {
		if frontier[i] {
			for j := range pts {
				if dominates(&pts[j], &pts[i]) {
					return fmt.Errorf("icdb: frontier point %s is dominated by %s",
						pts[i].PointID(), pts[j].PointID())
				}
			}
			continue
		}
		dominated := false
		for j := range pts {
			if frontier[j] && dominates(&pts[j], &pts[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			return fmt.Errorf("icdb: omitted point %s is not dominated by any frontier point", pts[i].PointID())
		}
	}
	return nil
}
