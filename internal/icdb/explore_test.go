package icdb

import (
	"reflect"
	"strings"
	"testing"

	"icdb/internal/relstore"
)

func newExploreDB(t *testing.T) *DB {
	t.Helper()
	db, err := Open(relstore.New())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return db
}

// TestExploreMaterializeMatchesGenerate is the differential satellite: a
// materializing sweep must register, at every swept width, an
// implementation byte-identical to what a direct Generate call at that
// binding point registers — same row, same estimators, same recorded
// exploration.
func TestExploreMaterializeMatchesGenerate(t *testing.T) {
	swept := newExploreDB(t)
	direct := newExploreDB(t)

	pts, err := swept.Explore("gen_cnt", 4, 64, 4, nil, true)
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if len(pts) != 16 {
		t.Fatalf("sweep 4..64 step 4 evaluated %d points, want 16", len(pts))
	}
	for _, pt := range pts {
		im, reused, err := direct.Generate("gen_cnt", map[string]int{"size": pt.Width})
		if err != nil {
			t.Fatalf("Generate(size=%d): %v", pt.Width, err)
		}
		if reused {
			t.Fatalf("direct Generate(size=%d) on a fresh DB claims reuse", pt.Width)
		}
		if pt.Impl != im.Name {
			t.Fatalf("sweep registered %q at width %d, direct Generate registered %q", pt.Impl, pt.Width, im.Name)
		}
		sw, err := swept.ImplByName(pt.Impl)
		if err != nil {
			t.Fatalf("sweep impl %s not queryable: %v", pt.Impl, err)
		}
		if !reflect.DeepEqual(sw, im) {
			t.Fatalf("width %d: sweep impl differs from direct Generate:\nsweep:  %+v\ndirect: %+v", pt.Width, sw, im)
		}
		se, _ := swept.Estimators(pt.Impl)
		de, _ := direct.Estimators(pt.Impl)
		if !reflect.DeepEqual(se, de) {
			t.Fatalf("width %d: estimators differ: %v vs %v", pt.Width, se, de)
		}
	}
	sx, err := swept.Explorations()
	if err != nil {
		t.Fatal(err)
	}
	dx, err := direct.Explorations()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sx, dx) {
		t.Fatalf("recorded explorations differ:\nsweep:  %+v\ndirect: %+v", sx, dx)
	}
}

// TestExploreRerunIsDeduped asserts a repeated sweep is a complete
// no-op at the store layer: no duplicate exploration rows, and
// Store.Generation — which counts effective mutations, and therefore
// journaled records — does not move. This holds across modes, too:
// estimate-only and materializing sweeps record identical rows, and a
// materializing re-run reuses every implementation.
func TestExploreRerunIsDeduped(t *testing.T) {
	db := newExploreDB(t)
	if _, err := db.Explore("gen_cnt", 4, 32, 4, nil, false); err != nil {
		t.Fatalf("Explore: %v", err)
	}
	n1, err := db.ExplorationCount()
	if err != nil {
		t.Fatal(err)
	}
	if n1 != 8 {
		t.Fatalf("first sweep recorded %d points, want 8", n1)
	}
	gen := db.Store().Generation()
	if _, err := db.Explore("gen_cnt", 4, 32, 4, nil, false); err != nil {
		t.Fatalf("re-run Explore: %v", err)
	}
	if n2, _ := db.ExplorationCount(); n2 != n1 {
		t.Fatalf("re-run grew explorations %d -> %d", n1, n2)
	}
	if g := db.Store().Generation(); g != gen {
		t.Fatalf("no-op re-run bumped Store.Generation %d -> %d", gen, g)
	}

	// Cross-mode: materializing the same range registers impls but the
	// exploration rows are value-equal — no new rows.
	pts, err := db.Explore("gen_cnt", 4, 32, 4, nil, true)
	if err != nil {
		t.Fatalf("materializing Explore: %v", err)
	}
	if n3, _ := db.ExplorationCount(); n3 != n1 {
		t.Fatalf("cross-mode re-run grew explorations %d -> %d", n1, n3)
	}
	// And a second materializing run reuses every implementation and is
	// again journal-silent.
	gen = db.Store().Generation()
	pts, err = db.Explore("gen_cnt", 4, 32, 4, nil, true)
	if err != nil {
		t.Fatalf("materializing re-run: %v", err)
	}
	for _, pt := range pts {
		if !pt.Reused {
			t.Fatalf("materializing re-run did not reuse width-%d impl %s", pt.Width, pt.Impl)
		}
	}
	if g := db.Store().Generation(); g != gen {
		t.Fatalf("materializing re-run bumped Store.Generation %d -> %d", gen, g)
	}
}

// TestExploreEstimateOnlyRegistersNoImpls asserts the default sweep
// costs one estimator evaluation per point: exploration rows appear,
// the implementations relation does not move, and each point's values
// equal GeneratorCost at that binding.
func TestExploreEstimateOnlyRegistersNoImpls(t *testing.T) {
	db := newExploreDB(t)
	before, err := db.Impls()
	if err != nil {
		t.Fatal(err)
	}
	pts, err := db.Explore("gen_cnt", 8, 16, 8, nil, false)
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	after, err := db.Impls()
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("estimate-only sweep registered impls: %d -> %d", len(before), len(after))
	}
	g, err := db.GeneratorByName("gen_cnt")
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		if pt.Impl != "" || pt.Reused {
			t.Fatalf("estimate-only point %+v carries an impl", pt)
		}
		area, delay, cost, err := db.GeneratorCost(g, map[string]int{"size": pt.Width})
		if err != nil {
			t.Fatal(err)
		}
		if pt.Area != area || pt.Delay != delay || pt.Cost != cost {
			t.Fatalf("width %d: sweep point (%g,%g,%g) != GeneratorCost (%g,%g,%g)",
				pt.Width, pt.Area, pt.Delay, pt.Cost, area, delay, cost)
		}
	}
}

// TestExploreErrors pins the sweep's validation surface: bad ranges and
// steps, ranges escaping the generator's width range (an error, not a
// clamp), binding the swept parameter, extra bindings, and unknown
// generators.
func TestExploreErrors(t *testing.T) {
	db := newExploreDB(t)
	cases := []struct {
		name  string
		gen   string
		lo    int
		hi    int
		step  int
		fixed map[string]int
		want  string
	}{
		{"zero lo", "gen_cnt", 0, 8, 1, nil, "bad width range 0..8"},
		{"inverted range", "gen_cnt", 8, 4, 1, nil, "bad width range 8..4"},
		{"zero step", "gen_cnt", 4, 8, 0, nil, "step 0 must be at least 1"},
		{"range above generator max", "gen_cnt", 4, 200, 1, nil, "outside generator range [1,128]"},
		{"binds swept parameter", "gen_cnt", 4, 8, 1, map[string]int{"size": 4}, `"size" is the swept parameter`},
		{"negative binding", "gen_cnt", 4, 8, 1, map[string]int{"stages": -1}, "must be non-negative"},
		{"extra binding", "gen_cnt", 4, 8, 1, map[string]int{"stages": 2}, "want parameters [size]"},
		{"unknown generator", "gen_nope", 4, 8, 1, nil, `generator "gen_nope"`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := db.Explore(c.gen, c.lo, c.hi, c.step, c.fixed, false)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("Explore(%s, %d..%d step %d, %v) error = %v, want substring %q",
					c.gen, c.lo, c.hi, c.step, c.fixed, err, c.want)
			}
		})
	}
	if n, _ := db.ExplorationCount(); n != 0 {
		t.Fatalf("failed sweeps recorded %d exploration rows", n)
	}
}

// TestEstimateImplRecordsExploration asserts EstimateImpl feeds the
// explorations relation under the implementation's own name, so stored
// implementations appear in frontier queries next to generator sweeps.
func TestEstimateImplRecordsExploration(t *testing.T) {
	db := newExploreDB(t)
	area, delay, _, err := db.EstimateImpl("cnt_up", 8)
	if err != nil {
		t.Fatalf("EstimateImpl: %v", err)
	}
	xs, err := db.Explorations()
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 1 {
		t.Fatalf("recorded %d explorations, want 1 (%+v)", len(xs), xs)
	}
	e := xs[0]
	if e.Generator != "cnt_up" || e.Bindings != "width=8" || e.Width != 8 || e.Area != area || e.Delay != delay {
		t.Fatalf("EstimateImpl recorded %+v", e)
	}
	// The point shows up on the counter frontier alongside a sweep.
	if _, err := db.Explore("gen_cnt", 4, 16, 4, nil, false); err != nil {
		t.Fatal(err)
	}
	var ids []string
	err = db.Pareto(ParetoQuery{Component: "counter", Dominated: true}, func(p ParetoPoint) bool {
		ids = append(ids, p.PointID())
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 5 // 4 sweep points + 1 estimated impl
	if len(ids) != want {
		t.Fatalf("counter design space has %d points (%v), want %d", len(ids), ids, want)
	}
	found := false
	for _, id := range ids {
		if id == "cnt_up[width=8]" {
			found = true
		}
	}
	if !found {
		t.Fatalf("estimated impl missing from component design space: %v", ids)
	}
}

// TestRecordExplorationValidation pins RecordExploration's input checks.
func TestRecordExplorationValidation(t *testing.T) {
	db := newExploreDB(t)
	cases := []struct {
		e    Exploration
		want string
	}{
		{Exploration{}, "no generator"},
		{Exploration{Generator: "g"}, "no bindings"},
		{Exploration{Generator: "g", Bindings: "size=1"}, "width 0 must be at least 1"},
		{Exploration{Generator: "g", Bindings: "size=1", Width: 1, Component: "gizmo"}, `unknown component type "gizmo"`},
	}
	for i, c := range cases {
		err := db.RecordExploration(c.e)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("case %d: RecordExploration(%+v) = %v, want substring %q", i, c.e, err, c.want)
		}
	}
	// Component types normalize the same way the rest of the schema does.
	if err := db.RecordExploration(Exploration{
		Generator: "g", Bindings: "size=1", Width: 1, Component: "counter", Area: 1, Delay: 1,
	}); err != nil {
		t.Fatalf("RecordExploration(counter): %v", err)
	}
	xs, err := db.Explorations()
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 1 || string(xs[0].Component) != "Counter" {
		t.Fatalf("normalized component = %+v", xs)
	}
}
