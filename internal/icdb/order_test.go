package icdb

import (
	"sort"
	"strings"
	"testing"

	"icdb/internal/genus"
	"icdb/internal/relstore"
)

func openTestDB(t *testing.T) *DB {
	t.Helper()
	db, err := Open(relstore.New())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return db
}

// TestQueryOrderedByAttr checks that every order key sorts the full
// catalog by that attribute (ties by name), ascending and descending,
// and that Cost still carries the weighted score.
func TestQueryOrderedByAttr(t *testing.T) {
	db := openTestDB(t)
	for _, key := range OrderKeys() {
		for _, desc := range []bool{false, true} {
			order := Order{Attr: key, Desc: desc}
			cands, err := db.QueryOrdered(order, 0)
			if err != nil {
				t.Fatalf("QueryOrdered(%+v): %v", order, err)
			}
			if len(cands) == 0 {
				t.Fatalf("QueryOrdered(%+v): no candidates", order)
			}
			if !sort.SliceIsSorted(cands, func(i, j int) bool {
				ri := order.rank(&cands[i].Impl, cands[i].Area, cands[i].Delay, cands[i].Cost)
				rj := order.rank(&cands[j].Impl, cands[j].Area, cands[j].Delay, cands[j].Cost)
				if ri != rj {
					return ri < rj
				}
				return cands[i].Impl.Name < cands[j].Impl.Name
			}) {
				t.Errorf("QueryOrdered(%+v): result not sorted", order)
			}
			for _, c := range cands {
				if want := c.Impl.Area + c.Impl.Delay; c.Cost != want {
					t.Errorf("QueryOrdered(%+v): %s Cost = %g, want weighted %g",
						order, c.Impl.Name, c.Cost, want)
				}
			}
		}
	}
}

// TestOrderedTopKMatchesUnbounded checks the TopK heap path returns
// exactly the unbounded ranking truncated, for a non-default key in both
// directions.
func TestOrderedTopKMatchesUnbounded(t *testing.T) {
	db := openTestDB(t)
	for _, order := range []Order{
		{Attr: "delay"},
		{Attr: "delay", Desc: true},
		{Attr: "area"},
		{},
	} {
		all, err := db.QueryByFunctionsOrdered([]genus.Function{genus.FuncSTORAGE}, order, 0)
		if err != nil {
			t.Fatalf("unbounded: %v", err)
		}
		for k := 1; k <= len(all)+1; k++ {
			got, err := db.QueryByFunctionsOrdered([]genus.Function{genus.FuncSTORAGE}, order, k)
			if err != nil {
				t.Fatalf("k=%d: %v", k, err)
			}
			want := all
			if k < len(all) {
				want = all[:k]
			}
			if len(got) != len(want) {
				t.Fatalf("order %+v k=%d: got %d candidates, want %d", order, k, len(got), len(want))
			}
			for i := range got {
				if got[i].Impl.Name != want[i].Impl.Name || got[i].Cost != want[i].Cost {
					t.Errorf("order %+v k=%d: [%d] = %s/%g, want %s/%g",
						order, k, i, got[i].Impl.Name, got[i].Cost, want[i].Impl.Name, want[i].Cost)
				}
			}
		}
	}
}

// TestOrderedDefaultEqualsTopK pins the compatibility contract: the zero
// Order is exactly the pre-existing cost ranking.
func TestOrderedDefaultEqualsTopK(t *testing.T) {
	db := openTestDB(t)
	legacy, err := db.QueryByFunctionTopK(genus.FuncSTORAGE, 3)
	if err != nil {
		t.Fatal(err)
	}
	ordered, err := db.QueryByFunctionsOrdered([]genus.Function{genus.FuncSTORAGE}, Order{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(legacy) != len(ordered) {
		t.Fatalf("got %d vs %d candidates", len(ordered), len(legacy))
	}
	for i := range legacy {
		if legacy[i].Impl.Name != ordered[i].Impl.Name {
			t.Errorf("[%d] = %s, want %s", i, ordered[i].Impl.Name, legacy[i].Impl.Name)
		}
	}
}

// TestQueryByFunctionsOfTypeOrdered checks the combined type+function
// query filters in-stream: reg_d executes STORAGE but is not a
// Counter, and the bound applies after the type filter.
func TestQueryByFunctionsOfTypeOrdered(t *testing.T) {
	db := openTestDB(t)
	got, err := db.QueryByFunctionsOfTypeOrdered(
		[]genus.Function{genus.FuncSTORAGE}, genus.CompCounter, Order{Attr: "delay"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Impl.Name != "cnt_up" {
		t.Fatalf("got %+v, want [cnt_up]", got)
	}
	if _, err := db.QueryByFunctionsOfTypeOrdered(
		[]genus.Function{genus.FuncSTORAGE}, "Bogus", Order{}, 0); err == nil {
		t.Error("want error for unknown component type")
	}
	// Case-insensitive type, like every CQL-facing entry point.
	got, err = db.QueryByFunctionsOfTypeOrdered(
		[]genus.Function{genus.FuncSTORAGE}, "counter", Order{}, 0)
	if err != nil || len(got) != 1 {
		t.Fatalf("lower-case type: %v, %v", got, err)
	}
}

func TestOrderValidate(t *testing.T) {
	db := openTestDB(t)
	_, err := db.QueryOrdered(Order{Attr: "cots"}, 0)
	if err == nil {
		t.Fatal("want error for unknown order key")
	}
	if !strings.Contains(err.Error(), `"cots"`) || !strings.Contains(err.Error(), "cost") {
		t.Errorf("error %q should name the bad key and the vocabulary", err)
	}
	if _, err := db.QueryByComponentOrdered(genus.CompCounter, Order{Attr: "width_min", Desc: true}, 0); err != nil {
		t.Errorf("width_min is a valid order key: %v", err)
	}
}

func TestAttrCmp(t *testing.T) {
	cases := []struct {
		attr string
		op   CmpOp
		v    float64
		a    Attrs
		want bool
	}{
		{"area", CmpLE, 10, Attrs{"area": 10}, true},
		{"area", CmpLT, 10, Attrs{"area": 10}, false},
		{"area", CmpLE, 10.5, Attrs{"area": 10.2}, true},
		{"delay", CmpGE, 2, Attrs{"delay": 1.5}, false},
		{"delay", CmpGT, 1, Attrs{"delay": 1.5}, true},
		{"stages", CmpEQ, 0, Attrs{"stages": 0}, true},
		{"stages", CmpNE, 0, Attrs{"stages": 0}, false},
		{"width_max", CmpGE, 8, Attrs{"width_max": 64}, true},
	}
	for _, c := range cases {
		con, err := AttrCmp(c.attr, c.op, c.v)
		if err != nil {
			t.Fatalf("AttrCmp(%s %s %g): %v", c.attr, c.op, c.v, err)
		}
		got, err := con.Accept(c.a)
		if err != nil {
			t.Fatalf("Accept(%s %s %g): %v", c.attr, c.op, c.v, err)
		}
		if got != c.want {
			t.Errorf("%s %s %g over %v = %v, want %v", c.attr, c.op, c.v, c.a, got, c.want)
		}
	}
}

func TestAttrCmpRejectsUnknown(t *testing.T) {
	if _, err := AttrCmp("bogus", CmpLE, 1); err == nil {
		t.Error("want error for unknown attribute")
	}
	if _, err := AttrCmp("area", CmpOp("~"), 1); err == nil {
		t.Error("want error for unknown operator")
	}
}

// TestAttrCmpConstrainsQueries runs AttrCmp through a real query, mixed
// with the pre-existing constraint constructors.
func TestAttrCmpConstrainsQueries(t *testing.T) {
	db := openTestDB(t)
	lt, err := AttrCmp("area", CmpLE, 10)
	if err != nil {
		t.Fatal(err)
	}
	viaCmp, err := db.QueryByFunction(genus.FuncSTORAGE, lt, ForWidth(8))
	if err != nil {
		t.Fatal(err)
	}
	viaMax, err := db.QueryByFunction(genus.FuncSTORAGE, MaxArea(10), ForWidth(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(viaCmp) == 0 || len(viaCmp) != len(viaMax) {
		t.Fatalf("AttrCmp path found %d candidates, MaxArea path %d", len(viaCmp), len(viaMax))
	}
	for i := range viaCmp {
		if viaCmp[i].Impl.Name != viaMax[i].Impl.Name {
			t.Errorf("[%d] = %s, want %s", i, viaCmp[i].Impl.Name, viaMax[i].Impl.Name)
		}
	}
}
