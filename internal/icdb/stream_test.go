package icdb_test

// Streaming query tests: the Scan variants must yield exactly the
// candidate set their materializing counterparts return (same impls,
// same costs), honor constraints and early stop, and hand out Impls
// that Clone into independent copies.

import (
	"path/filepath"
	"sort"
	"testing"

	"icdb/internal/genus"
	"icdb/internal/icdb"
	"icdb/internal/relstore"
)

func openTestDB(t *testing.T) *icdb.DB {
	t.Helper()
	db, err := icdb.Open(relstore.New())
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// collectScan drains a streamed query into a cost-sorted slice, cloning
// each yielded Impl as the visitor contract requires.
func collectScan(t *testing.T, scan func(func(icdb.Candidate) bool) error) []icdb.Candidate {
	t.Helper()
	var out []icdb.Candidate
	if err := scan(func(c icdb.Candidate) bool {
		c.Impl = c.Impl.Clone()
		out = append(out, c)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Cost != out[j].Cost {
			return out[i].Cost < out[j].Cost
		}
		return out[i].Impl.Name < out[j].Impl.Name
	})
	return out
}

func assertSameCandidates(t *testing.T, got, want []icdb.Candidate) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("streamed %d candidates, materialized %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Impl.Name != want[i].Impl.Name || got[i].Cost != want[i].Cost {
			t.Errorf("candidate %d = %s/%g, want %s/%g",
				i, got[i].Impl.Name, got[i].Cost, want[i].Impl.Name, want[i].Cost)
		}
	}
}

func TestQueryByFunctionScanMatchesMaterialized(t *testing.T) {
	db := openTestDB(t)
	for _, cs := range [][]icdb.Constraint{
		nil,
		{icdb.ForWidth(8)},
		{icdb.MaxArea(6), icdb.MaxDelay(50)},
		{icdb.MustWhere("width_min <= 4 && area <= 10")},
	} {
		want, err := db.QueryByFunction(genus.FuncADD, cs...)
		if err != nil {
			t.Fatal(err)
		}
		got := collectScan(t, func(visit func(icdb.Candidate) bool) error {
			return db.QueryByFunctionScan(genus.FuncADD, visit, cs...)
		})
		assertSameCandidates(t, got, want)
	}
}

func TestQueryByFunctionsScanIntersection(t *testing.T) {
	db := openTestDB(t)
	fns := []genus.Function{genus.FuncCOUNTER, genus.FuncSTORE}
	want, err := db.QueryByFunctions(fns)
	if err != nil {
		t.Fatal(err)
	}
	got := collectScan(t, func(visit func(icdb.Candidate) bool) error {
		return db.QueryByFunctionsScan(fns, visit)
	})
	assertSameCandidates(t, got, want)
	if len(got) == 0 {
		t.Fatal("COUNT+STORE intersection is empty; test is vacuous")
	}
	// Streaming an empty function list is the same error as querying one.
	if err := db.QueryByFunctionsScan(nil, func(icdb.Candidate) bool { return true }); err == nil {
		t.Error("empty function list accepted")
	}
}

func TestQueryByComponentScanMatchesMaterialized(t *testing.T) {
	db := openTestDB(t)
	want, err := db.QueryByComponent(genus.CompCounter)
	if err != nil {
		t.Fatal(err)
	}
	got := collectScan(t, func(visit func(icdb.Candidate) bool) error {
		return db.QueryByComponentScan(genus.CompCounter, visit)
	})
	assertSameCandidates(t, got, want)
	if err := db.QueryByComponentScan("NoSuchComponent", func(icdb.Candidate) bool { return true }); err == nil {
		t.Error("unknown component type accepted")
	}
}

func TestQueryScanWalksWholeCatalog(t *testing.T) {
	db := openTestDB(t)
	impls, err := db.Impls()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	if err := db.QueryScan(func(c icdb.Candidate) bool {
		seen[c.Impl.Name] = true
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(impls) {
		t.Fatalf("QueryScan visited %d impls, catalog has %d", len(seen), len(impls))
	}
	for _, im := range impls {
		if !seen[im.Name] {
			t.Errorf("QueryScan missed %s", im.Name)
		}
	}
	// Constrained walk matches a manual filter of the materialized list.
	n := 0
	if err := db.QueryScan(func(c icdb.Candidate) bool { n++; return true }, icdb.MaxArea(4)); err != nil {
		t.Fatal(err)
	}
	wantN := 0
	for _, im := range impls {
		if im.Area <= 4 {
			wantN++
		}
	}
	if n != wantN {
		t.Errorf("constrained QueryScan yielded %d, want %d", n, wantN)
	}
}

func TestScanEarlyStop(t *testing.T) {
	db := openTestDB(t)
	n := 0
	if err := db.QueryByFunctionScan(genus.FuncADD, func(c icdb.Candidate) bool {
		n++
		return false
	}); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("visitor called %d times after returning false, want 1", n)
	}
	// The DB is fully usable afterwards (the index lock was released).
	if _, err := db.QueryByFunction(genus.FuncADD); err != nil {
		t.Fatal(err)
	}
}

func TestScanConstraintErrorPropagates(t *testing.T) {
	db := openTestDB(t)
	bad := icdb.MustWhere("no_such_attr > 1")
	called := false
	err := db.QueryByFunctionScan(genus.FuncADD, func(c icdb.Candidate) bool {
		called = true
		return true
	}, bad)
	if err == nil {
		t.Fatal("constraint referencing an unknown attribute: want error")
	}
	if called {
		t.Error("visitor ran despite the constraint error")
	}
	// The materialized path reports the same failure.
	if _, err := db.QueryByFunction(genus.FuncADD, bad); err == nil {
		t.Error("materialized query swallowed the constraint error")
	}
}

func TestScanCloneIndependence(t *testing.T) {
	db := openTestDB(t)
	var kept icdb.Impl
	if err := db.QueryByFunctionScan(genus.FuncADD, func(c icdb.Candidate) bool {
		kept = c.Impl.Clone()
		return false
	}); err != nil {
		t.Fatal(err)
	}
	if kept.Name == "" {
		t.Fatal("no candidate yielded")
	}
	orig, err := db.ImplByName(kept.Name)
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the clone's slices must not reach the cache.
	if len(kept.Functions) == 0 {
		t.Fatal("cloned impl has no functions")
	}
	kept.Functions[0] = "TAMPERED"
	again, err := db.ImplByName(kept.Name)
	if err != nil {
		t.Fatal(err)
	}
	if again.Functions[0] != orig.Functions[0] || again.Functions[0] == "TAMPERED" {
		t.Error("mutating a cloned impl corrupted the query cache")
	}
}

// TestScanSeesRegisteredImpl: the streaming path reads the same live
// posting maps RegisterImpl maintains.
func TestScanSeesRegisteredImpl(t *testing.T) {
	db := openTestDB(t)
	im := icdb.Impl{
		Name:      "stream_probe",
		Component: genus.CompCounter,
		Functions: []genus.Function{genus.FuncCOUNTER},
		WidthMin:  1,
		WidthMax:  64,
		Area:      0.001,
		Delay:     0.001,
		Params:    []string{"size"},
		Source: `
NAME: stream_probe;
PARAMETER: size;
INORDER: A[size];
OUTORDER: O[size];
{
  O[0] = A[0];
}
`,
	}
	if err := db.RegisterImpl(im); err != nil {
		t.Fatal(err)
	}
	found := false
	if err := db.QueryByFunctionScan(genus.FuncCOUNTER, func(c icdb.Candidate) bool {
		if c.Impl.Name == "stream_probe" {
			found = true
			return false
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Error("freshly registered impl invisible to the streaming path")
	}
}

// TestDBSnapshotRoundTrip: a full ICDB catalog survives the binary
// snapshot path end to end — Open over the reloaded store serves the
// same ranked queries and point lookups.
func TestDBSnapshotRoundTrip(t *testing.T) {
	db := openTestDB(t)
	if err := db.SetToolParam("icdb", "area_weight", 3); err != nil {
		t.Fatal(err)
	}
	want, err := db.QueryByFunction(genus.FuncADD, icdb.ForWidth(8))
	if err != nil || len(want) == 0 {
		t.Fatalf("seed query: %d candidates, %v", len(want), err)
	}

	path := filepath.Join(t.TempDir(), "icdb.snap")
	if err := db.Store().SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	store, err := relstore.LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := icdb.Open(store)
	if err != nil {
		t.Fatal(err)
	}
	got, err := db2.QueryByFunction(genus.FuncADD, icdb.ForWidth(8))
	if err != nil {
		t.Fatal(err)
	}
	assertSameCandidates(t, got, want)
	if v, ok := db2.ToolParam("icdb", "area_weight"); !ok || v != 3 {
		t.Errorf("tool param after snapshot reload = %v, %v", v, ok)
	}
	// Generic Load sniffs the binary format too.
	store2, err := relstore.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := icdb.Open(store2); err != nil {
		t.Fatal(err)
	}
}
