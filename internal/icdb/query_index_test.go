package icdb

import (
	"fmt"
	"testing"

	"icdb/internal/genus"
	"icdb/internal/relstore"
)

// regCounter registers a synthetic counter implementation with the given
// function subset and cost.
func regCounter(t *testing.T, db *DB, name string, fns []genus.Function, area, delay float64) {
	t.Helper()
	src := fmt.Sprintf("NAME: %s; PARAMETER: size; INORDER: d, clk; OUTORDER: q; { q = d @ (~r clk); }", name)
	if err := db.RegisterImpl(Impl{
		Name:      name,
		Component: genus.CompCounter,
		Style:     "test",
		Functions: fns,
		WidthMin:  1, WidthMax: 32, Stages: 1,
		Area: area, Delay: delay,
		Params: []string{"size"},
		Source: src,
	}); err != nil {
		t.Fatal(err)
	}
}

// TestInvertedIndexFollowsReRegistration: re-registering an
// implementation with a different function set must move it between
// posting lists — the old postings may not serve it any more.
func TestInvertedIndexFollowsReRegistration(t *testing.T) {
	db := openDB(t)
	regCounter(t, db, "updown", []genus.Function{genus.FuncINC, genus.FuncDEC}, 5, 5)
	cands, err := db.QueryByFunction(genus.FuncDEC)
	if err != nil || len(cands) != 1 || cands[0].Impl.Name != "updown" {
		t.Fatalf("DEC query = %v (%v), want [updown]", names(cands), err)
	}
	// Drop DEC from the function set.
	regCounter(t, db, "updown", []genus.Function{genus.FuncINC}, 5, 5)
	cands, err = db.QueryByFunction(genus.FuncDEC)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if c.Impl.Name == "updown" {
			t.Error("updown still answers DEC after re-registration dropped it")
		}
	}
	// It still answers INC, once, with no duplicate postings.
	n := 0
	cands, _ = db.QueryByFunction(genus.FuncINC)
	for _, c := range cands {
		if c.Impl.Name == "updown" {
			n++
		}
	}
	if n != 1 {
		t.Errorf("updown appears %d times in INC postings, want 1", n)
	}
}

// TestInvalidateCachesSeesDirectStoreWrites: a row written behind the
// DB's back is invisible to function queries until InvalidateCaches.
func TestInvalidateCachesSeesDirectStoreWrites(t *testing.T) {
	db := openDB(t)
	// Warm the indexes.
	if _, err := db.QueryByFunction(genus.FuncADD); err != nil {
		t.Fatal(err)
	}
	rogue := Impl{
		Name:      "rogue_add",
		Component: genus.CompAdderSubtractor,
		Functions: []genus.Function{genus.FuncADD},
		WidthMin:  1, WidthMax: 8, Stages: 0,
		Area: 0.5, Delay: 0.5,
		Params: []string{"size"},
		Source: "NAME: rogue_add; PARAMETER: size; INORDER: a; OUTORDER: s; { s = a; }",
	}
	if err := db.Store().Upsert(TableImplementations, implRow(rogue)); err != nil {
		t.Fatal(err)
	}
	cands, err := db.QueryByFunction(genus.FuncADD)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if c.Impl.Name == "rogue_add" {
			t.Fatal("stale index already serves the direct write (test premise broken)")
		}
	}
	db.InvalidateCaches()
	cands, err = db.QueryByFunction(genus.FuncADD)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range cands {
		found = found || c.Impl.Name == "rogue_add"
	}
	if !found {
		t.Error("rogue_add invisible after InvalidateCaches")
	}
}

// TestQueryTopK: the heap-bounded query returns exactly the k-cheapest
// prefix of the unbounded result, in the same order.
func TestQueryTopK(t *testing.T) {
	db := openDB(t)
	for i := 0; i < 20; i++ {
		regCounter(t, db, fmt.Sprintf("tk_%02d", i),
			[]genus.Function{genus.FuncINC, genus.FuncCOUNTER},
			float64((i*7)%13), float64((i*3)%11))
	}
	full, err := db.QueryByFunction(genus.FuncINC)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 3, 7, len(full), len(full) + 5} {
		top, err := db.QueryByFunctionTopK(genus.FuncINC, k)
		if err != nil {
			t.Fatal(err)
		}
		want := k
		if want > len(full) {
			want = len(full)
		}
		if len(top) != want {
			t.Fatalf("TopK(%d) returned %d candidates, want %d", k, len(top), want)
		}
		for i := range top {
			if top[i].Impl.Name != full[i].Impl.Name || top[i].Cost != full[i].Cost {
				t.Fatalf("TopK(%d)[%d] = %s/%g, full[%d] = %s/%g",
					k, i, top[i].Impl.Name, top[i].Cost, i, full[i].Impl.Name, full[i].Cost)
			}
		}
	}
	// k <= 0 is unbounded.
	all, err := db.QueryByFunctionTopK(genus.FuncINC, 0)
	if err != nil || len(all) != len(full) {
		t.Errorf("TopK(0) = %d candidates (%v), want %d", len(all), err, len(full))
	}
	// Constraints apply before the heap.
	top, err := db.QueryByFunctionTopK(genus.FuncINC, 3, MustWhere("area >= 5"))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range top {
		if c.Impl.Area < 5 {
			t.Errorf("TopK ignored constraint: %s area %g", c.Impl.Name, c.Impl.Area)
		}
	}
	// Component-scoped TopK agrees with the unbounded component query.
	fullC, err := db.QueryByComponent(genus.CompCounter)
	if err != nil {
		t.Fatal(err)
	}
	topC, err := db.QueryByComponentTopK(genus.CompCounter, 2)
	if err != nil || len(topC) != 2 {
		t.Fatalf("component TopK = %v (%v)", names(topC), err)
	}
	for i := range topC {
		if topC[i].Impl.Name != fullC[i].Impl.Name {
			t.Errorf("component TopK[%d] = %s, want %s", i, topC[i].Impl.Name, fullC[i].Impl.Name)
		}
	}
}

// TestZeroConstraintAcceptsEverything: the zero Constraint{} must be
// inert in a query, not a nil-function panic.
func TestZeroConstraintAcceptsEverything(t *testing.T) {
	db := openDB(t)
	plain, err := db.QueryByFunction(genus.FuncSTORAGE)
	if err != nil {
		t.Fatal(err)
	}
	withZero, err := db.QueryByFunction(genus.FuncSTORAGE, Constraint{})
	if err != nil {
		t.Fatal(err)
	}
	if len(withZero) != len(plain) {
		t.Errorf("zero constraint filtered: %d vs %d candidates", len(withZero), len(plain))
	}
}

// TestQueryResultsAreCallerOwned: mutating a returned candidate's slices
// must not corrupt the shared decoded cache.
func TestQueryResultsAreCallerOwned(t *testing.T) {
	db := openDB(t)
	cands, err := db.QueryByFunction(genus.FuncSTORAGE)
	if err != nil || len(cands) == 0 {
		t.Fatal(err)
	}
	cands[0].Impl.Functions[0] = genus.Function("CLOBBERED")
	again, err := db.QueryByFunction(genus.FuncSTORAGE)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range again {
		for _, f := range c.Impl.Functions {
			if f == "CLOBBERED" {
				t.Fatal("candidate mutation leaked into the implementation cache")
			}
		}
	}
	im, err := db.ImplByName(cands[0].Impl.Name)
	if err != nil {
		t.Fatal(err)
	}
	im.Params[0] = "clobbered"
	im2, err := db.ImplByName(cands[0].Impl.Name)
	if err != nil || im2.Params[0] == "clobbered" {
		t.Errorf("ImplByName shares cache slices (params = %v, err %v)", im2.Params, err)
	}
}

// TestImplByNameIsPointLookup: the implementations table must carry a
// primary key serving ImplByName without a scan (asserted structurally:
// Get succeeds, and a huge catalog answers immediately is covered by the
// benchmarks).
func TestImplByNameIsPointLookup(t *testing.T) {
	db := openDB(t)
	if _, err := db.Store().Get(TableImplementations, "reg_d"); err != nil {
		t.Fatalf("implementations Get fast path unavailable: %v", err)
	}
	im, err := db.ImplByName("reg_d")
	if err != nil || im.Name != "reg_d" {
		t.Fatalf("ImplByName = %+v, %v", im, err)
	}
}

// TestOpenAfterLoadServesIndexedQueries mirrors the persistence test but
// asserts the lazily built indexes work over a loaded store.
func TestOpenAfterLoadServesIndexedQueries(t *testing.T) {
	db := openDB(t)
	regCounter(t, db, "persisted_cnt", []genus.Function{genus.FuncINC}, 1, 1)
	path := t.TempDir() + "/icdb.json"
	if err := db.Store().Save(path); err != nil {
		t.Fatal(err)
	}
	store, err := relstore.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := Open(store)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := db2.QueryByFunction(genus.FuncINC)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range cands {
		found = found || c.Impl.Name == "persisted_cnt"
	}
	if !found {
		t.Errorf("persisted_cnt missing from reloaded query: %v", names(cands))
	}
}
