// Design-space exploration. The explorations relation records every
// evaluated design point — each Generate and EstimateImpl result, and
// each point of an Explore sweep — as a (component, generator, bindings,
// width, area, delay) tuple, the way DB4HLS stores whole HLS design
// spaces per kernel. On top of it, Explore sweeps a generator across a
// parameter range (evaluating estimators without materializing
// implementations unless asked) and the Pareto engine (pareto.go)
// answers frontier queries over the accumulated points.
package icdb

import (
	"fmt"
	"sort"

	"icdb/internal/genus"
	"icdb/internal/relstore"
)

// Exploration is one row of the explorations relation: a design point
// some tool has evaluated. Generator names the component generator that
// produced the point — or, for EstimateImpl results, the implementation
// estimated. Bindings is the canonical parameter-binding string
// (BindingsKey), which together with Generator identifies the point:
// re-evaluating a point upserts a value-equal row, a journal-silent
// no-op.
type Exploration struct {
	Generator string
	Bindings  string
	Component genus.ComponentType
	Width     int
	Area      float64
	Delay     float64
}

// PointID renders the point's identity — generator plus bindings — the
// way Pareto explanations and CQL output name it: "gen_cnt[size=16]".
func (e *Exploration) PointID() string {
	return e.Generator + "[" + e.Bindings + "]"
}

func explRow(e Exploration) relstore.Row {
	return relstore.Row{
		"generator": e.Generator,
		"bindings":  e.Bindings,
		"component": string(e.Component),
		"width":     e.Width,
		"area":      e.Area,
		"delay":     e.Delay,
	}
}

func rowExpl(r relstore.Row) Exploration {
	return Exploration{
		Generator: asString(r["generator"]),
		Bindings:  asString(r["bindings"]),
		Component: genus.ComponentType(asString(r["component"])),
		Width:     asInt(r["width"]),
		Area:      asFloat(r["area"]),
		Delay:     asFloat(r["delay"]),
	}
}

// RecordExploration validates and upserts one design point. Generate,
// EstimateImpl, and Explore record their results through it; tools
// importing externally evaluated design spaces may call it directly.
// Recording an already-known point with identical values is a no-op
// (nothing journaled, Store.Generation unchanged).
func (db *DB) RecordExploration(e Exploration) error {
	if e.Generator == "" {
		return fmt.Errorf("icdb: exploration has no generator")
	}
	if e.Bindings == "" {
		return fmt.Errorf("icdb: exploration %s has no bindings", e.Generator)
	}
	if e.Width < 1 {
		return fmt.Errorf("icdb: exploration %s[%s]: width %d must be at least 1", e.Generator, e.Bindings, e.Width)
	}
	ct, ok := genus.NormalizeComponentType(string(e.Component))
	if !ok {
		return fmt.Errorf("icdb: exploration %s[%s]: unknown component type %q", e.Generator, e.Bindings, e.Component)
	}
	e.Component = ct
	return db.store.Upsert(TableExplorations, explRow(e))
}

// Explorations returns every recorded design point, sorted by generator
// then bindings.
func (db *DB) Explorations() ([]Exploration, error) {
	var out []Exploration
	for r, err := range db.store.Rows(TableExplorations, nil) {
		if err != nil {
			return nil, err
		}
		out = append(out, rowExpl(r))
	}
	sortExplorations(out)
	return out, nil
}

// ExplorationCount reports how many design points are recorded, without
// decoding any.
func (db *DB) ExplorationCount() (int, error) {
	return db.store.Count(TableExplorations, nil)
}

func sortExplorations(out []Exploration) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Generator != out[j].Generator {
			return out[i].Generator < out[j].Generator
		}
		if out[i].Width != out[j].Width {
			return out[i].Width < out[j].Width
		}
		return out[i].Bindings < out[j].Bindings
	})
}

// explorationsScan streams the explorations relation to visit, filtered
// to one component type or one generator when requested — both served
// from the relation's secondary indexes, not a full scan.
func (db *DB) explorationsScan(ct genus.ComponentType, gen string, visit func(Exploration) bool) error {
	var pred relstore.Pred
	switch {
	case ct != "":
		nct, ok := genus.NormalizeComponentType(string(ct))
		if !ok {
			return fmt.Errorf("icdb: unknown component type %q", ct)
		}
		pred = relstore.Eq("component", string(nct))
	case gen != "":
		pred = relstore.Eq("generator", gen)
	}
	return db.store.Scan(TableExplorations, pred, func(r relstore.Row) bool {
		return visit(rowExpl(r))
	})
}

// ExplorePoint is one evaluated point of an Explore sweep: the swept
// width, the estimator-predicted area/delay, and the weighted cost at
// the database's ranking weights. Impl is the registered implementation
// name when the sweep materialized (Reused marks a reuse-deduped hit on
// an implementation generated earlier); empty for estimate-only sweeps.
type ExplorePoint struct {
	Width  int
	Area   float64
	Delay  float64
	Cost   float64
	Impl   string
	Reused bool
}

// Explore sweeps generator gen's "size" parameter from lo to hi
// (inclusive) in the given step, recording each evaluated point in the
// explorations relation and returning the points in sweep order. By
// default a point costs one estimator evaluation — no implementation is
// registered; with materialize, Generate runs at every point and each
// emitted implementation is exactly what a direct Generate call at that
// binding point registers. fixed binds the generator's parameters other
// than "size" (nil when "size" is the only parameter); the full swept
// range must lie inside the generator's width range.
func (db *DB) Explore(gen string, lo, hi, step int, fixed map[string]int, materialize bool) ([]ExplorePoint, error) {
	g, err := db.GeneratorByName(gen)
	if err != nil {
		return nil, err
	}
	if lo < 1 || hi < lo {
		return nil, fmt.Errorf("icdb: explore %s: bad width range %d..%d", gen, lo, hi)
	}
	if step < 1 {
		return nil, fmt.Errorf("icdb: explore %s: step %d must be at least 1", gen, step)
	}
	if lo < g.WidthMin || hi > g.WidthMax {
		return nil, fmt.Errorf("icdb: explore %s: width range %d..%d outside generator range [%d,%d]",
			gen, lo, hi, g.WidthMin, g.WidthMax)
	}
	params := make(map[string]int, len(g.Params))
	for k, v := range fixed {
		if k == "size" {
			return nil, fmt.Errorf("icdb: explore %s: \"size\" is the swept parameter; it cannot also be bound", gen)
		}
		if v < 0 {
			return nil, fmt.Errorf("icdb: explore %s: parameter %s=%d must be non-negative", gen, k, v)
		}
		params[k] = v
	}
	params["size"] = lo
	if len(params) != len(g.Params) {
		return nil, fmt.Errorf("icdb: explore %s: got %d binding(s), want parameters %v", gen, len(params), g.Params)
	}
	for _, p := range g.Params {
		if _, ok := params[p]; !ok {
			return nil, fmt.Errorf("icdb: explore %s: missing binding for parameter %q", gen, p)
		}
	}
	var out []ExplorePoint
	for w := lo; w <= hi; w += step {
		params["size"] = w
		pt := ExplorePoint{Width: w}
		if materialize {
			im, reused, err := db.Generate(gen, params)
			if err != nil {
				return nil, err
			}
			wa, wd := db.rankWeights()
			pt.Area, pt.Delay, pt.Cost = im.Area, im.Delay, im.Area*wa+im.Delay*wd
			pt.Impl, pt.Reused = im.Name, reused
		} else {
			area, delay, cost, err := db.GeneratorCost(g, params)
			if err != nil {
				return nil, err
			}
			pt.Area, pt.Delay, pt.Cost = area, delay, cost
			if err := db.RecordExploration(Exploration{
				Generator: g.Name,
				Bindings:  BindingsKey(params),
				Component: g.Component,
				Width:     w,
				Area:      area,
				Delay:     delay,
			}); err != nil {
				return nil, err
			}
		}
		out = append(out, pt)
	}
	return out, nil
}
