package icdb

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"icdb/internal/relstore"
)

// Instance is one row of the instances relation: a concrete
// instantiation of a parameterized implementation with actual parameter
// bindings. The paper records instances so that repeated queries for the
// same (implementation, bindings) pair reuse the already-derived
// instance instead of re-expanding it.
type Instance struct {
	ID       int
	Impl     string
	Bindings map[string]int
	// Design names the design that first instantiated this instance.
	Design string
	// Uses counts how many instantiation requests resolved to this row.
	Uses int
}

// BindingsKey canonicalizes parameter bindings ("size=4,stages=2",
// sorted by name) for use as part of the instances primary key.
func BindingsKey(bindings map[string]int) string {
	parts := make([]string, 0, len(bindings))
	for k, v := range bindings {
		parts = append(parts, fmt.Sprintf("%s=%d", k, v))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// ParseBindingsKey inverts BindingsKey.
func ParseBindingsKey(key string) (map[string]int, error) {
	out := make(map[string]int)
	if key == "" {
		return out, nil
	}
	for _, part := range strings.Split(key, ",") {
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("icdb: bad binding %q", part)
		}
		v, err := strconv.Atoi(val)
		if err != nil {
			return nil, fmt.Errorf("icdb: bad binding %q: %w", part, err)
		}
		out[name] = v
	}
	return out, nil
}

// Instantiate records that design instantiated implementation implName
// with the given parameter bindings. If an instance with identical
// bindings already exists it is reused (its use count is incremented and
// reused is true); otherwise a new instance row is created. The bindings
// must cover exactly the implementation's declared parameters.
func (db *DB) Instantiate(design, implName string, bindings map[string]int) (inst Instance, reused bool, err error) {
	im, err := db.ImplByName(implName)
	if err != nil {
		return Instance{}, false, err
	}
	if len(bindings) != len(im.Params) {
		return Instance{}, false, fmt.Errorf("icdb: %s: got %d binding(s), want parameters %v", implName, len(bindings), im.Params)
	}
	for _, p := range im.Params {
		if _, ok := bindings[p]; !ok {
			return Instance{}, false, fmt.Errorf("icdb: %s: missing binding for parameter %q", implName, p)
		}
	}
	key := BindingsKey(bindings)

	db.mu.Lock()
	defer db.mu.Unlock()
	// (impl, bindings) is the instances primary key, so both the reuse
	// probe and the use-count bump are index point operations.
	if r, err := db.store.Get(TableInstances, implName, key); err == nil {
		pred := relstore.And(relstore.Eq("impl", implName), relstore.Eq("bindings", key))
		if _, err := db.store.Update(TableInstances, pred, func(r relstore.Row) relstore.Row {
			r["uses"] = asInt(r["uses"]) + 1
			return r
		}); err != nil {
			return Instance{}, false, err
		}
		return Instance{
			ID:       asInt(r["id"]),
			Impl:     implName,
			Bindings: bindings,
			Design:   asString(r["design"]),
			Uses:     asInt(r["uses"]) + 1,
		}, true, nil
	}
	// IDs are allocated monotonically from the stored maximum (computed
	// once per DB handle), so they stay unique even if rows were deleted
	// through the raw store.
	if db.nextInstID == 0 {
		db.nextInstID = 1
		if err := db.store.Scan(TableInstances, nil, func(r relstore.Row) bool {
			if v := asInt(r["id"]); v >= db.nextInstID {
				db.nextInstID = v + 1
			}
			return true
		}); err != nil {
			return Instance{}, false, err
		}
	}
	id := db.nextInstID
	db.nextInstID++
	err = db.store.Insert(TableInstances, relstore.Row{
		"id": id, "impl": implName, "bindings": key, "design": design, "uses": 1,
	})
	if err != nil {
		return Instance{}, false, err
	}
	return Instance{ID: id, Impl: implName, Bindings: bindings, Design: design, Uses: 1}, false, nil
}

// Instances lists every recorded instance in creation order.
func (db *DB) Instances() ([]Instance, error) {
	rows, err := db.store.Select(TableInstances, nil)
	if err != nil {
		return nil, err
	}
	out := make([]Instance, 0, len(rows))
	for _, r := range rows {
		b, err := ParseBindingsKey(asString(r["bindings"]))
		if err != nil {
			return nil, err
		}
		out = append(out, Instance{
			ID:       asInt(r["id"]),
			Impl:     asString(r["impl"]),
			Bindings: b,
			Design:   asString(r["design"]),
			Uses:     asInt(r["uses"]),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}
