package icdb

// Concurrency tests for the copy-on-write derived-state snapshots:
// streamed query visitors hold no lock, so they may run slowly, call
// back into the DB, and overlap freely with RegisterImpl — the
// engine-level counterpart of relstore's snapshot-isolation tests.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"icdb/internal/genus"
)

// testImpl builds a registrable register implementation named name.
func testImpl(name string) Impl {
	return Impl{
		Name:      name,
		Component: genus.CompRegister,
		Functions: []genus.Function{genus.FuncSTORAGE},
		WidthMin:  1, WidthMax: 8, Stages: 1,
		Area: 1, Delay: 1,
		Params: []string{"size"},
		Source: fmt.Sprintf(
			"NAME: %s; PARAMETER: size; INORDER: d, clk; OUTORDER: q; { q = d @ (~r clk); }", name),
	}
}

// TestQueryScanVisitorReentersDB pins the re-entrancy contract: a
// QueryScan visitor may call back into the DB — including registering
// an implementation, which would self-deadlock if the stream held the
// index lock.
func TestQueryScanVisitorReentersDB(t *testing.T) {
	db := openDB(t)
	done := make(chan error, 1)
	go func() {
		first := true
		done <- db.QueryScan(func(c Candidate) bool {
			if first {
				first = false
				// Re-enter with a read and a write.
				if _, err := db.ImplByName(c.Impl.Name); err != nil {
					t.Errorf("re-entrant ImplByName: %v", err)
				}
				if err := db.RegisterImpl(testImpl("reent_reg")); err != nil {
					t.Errorf("re-entrant RegisterImpl: %v", err)
				}
			}
			return true
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("QueryScan: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("QueryScan with re-entrant visitor deadlocked")
	}
	if _, err := db.ImplByName("reent_reg"); err != nil {
		t.Fatalf("impl registered mid-scan is missing: %v", err)
	}
}

// TestRegisterProgressDuringSlowScan pins the writer-liveness claim: a
// visitor parked mid-stream does not block RegisterImpl, and the parked
// scan keeps yielding its pinned snapshot (never the new impl).
func TestRegisterProgressDuringSlowScan(t *testing.T) {
	db := openDB(t)
	base, err := db.Impls()
	if err != nil {
		t.Fatal(err)
	}

	parked := make(chan struct{})
	release := make(chan struct{})
	scanDone := make(chan error, 1)
	var once sync.Once
	seen := 0
	go func() {
		scanDone <- db.QueryScan(func(c Candidate) bool {
			if c.Impl.Name == "mid_scan_reg" {
				t.Errorf("scan yielded implementation registered after its snapshot was pinned")
			}
			seen++
			once.Do(func() {
				close(parked)
				<-release
			})
			return true
		})
	}()

	<-parked
	regDone := make(chan error, 1)
	go func() { regDone <- db.RegisterImpl(testImpl("mid_scan_reg")) }()
	select {
	case err := <-regDone:
		if err != nil {
			t.Fatalf("RegisterImpl during parked scan: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RegisterImpl blocked behind a parked scan visitor")
	}
	close(release)
	if err := <-scanDone; err != nil {
		t.Fatalf("QueryScan: %v", err)
	}
	if seen != len(base) {
		t.Errorf("parked scan yielded %d implementations, want the %d in its snapshot", seen, len(base))
	}
	// A fresh query observes the registration.
	if _, err := db.ImplByName("mid_scan_reg"); err != nil {
		t.Fatalf("mid_scan_reg missing after scan: %v", err)
	}
}

// TestConcurrentQueriesAndRegistrations hammers ranked queries,
// streamed scans with re-entrant point reads, registrations, estimator
// updates, and cache invalidations against each other. Run under -race
// it is the engine-level counterpart of relstore's stress test.
func TestConcurrentQueriesAndRegistrations(t *testing.T) {
	db := openDB(t)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var scans, queries, writes atomic.Int64

	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				err := db.QueryByFunctionScan(genus.FuncSTORAGE, func(c Candidate) bool {
					if _, err := db.ImplByName(c.Impl.Name); err != nil {
						t.Errorf("re-entrant ImplByName(%s): %v", c.Impl.Name, err)
						return false
					}
					return true
				})
				if err != nil {
					t.Errorf("scan: %v", err)
					return
				}
				scans.Add(1)
			}
		}()
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := db.QueryByComponentTopK(genus.CompCounter, 3, AtWidth(8)); err != nil {
					t.Errorf("ranked query: %v", err)
					return
				}
				queries.Add(1)
			}
		}()
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				name := fmt.Sprintf("stress_%d_%d", g, i%10)
				if err := db.RegisterImpl(testImpl(name)); err != nil {
					t.Errorf("register %s: %v", name, err)
					return
				}
				if err := db.RegisterEstimator(name, "area", fmt.Sprintf("width * %d", g+2)); err != nil {
					t.Errorf("estimator %s: %v", name, err)
					return
				}
				if i%7 == 0 {
					db.InvalidateCaches()
				}
				writes.Add(1)
			}
		}(g)
	}

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	if scans.Load() == 0 || queries.Load() == 0 || writes.Load() == 0 {
		t.Fatalf("stress made no progress: scans=%d queries=%d writes=%d",
			scans.Load(), queries.Load(), writes.Load())
	}
	t.Logf("stress: %d scans, %d ranked queries, %d write rounds",
		scans.Load(), queries.Load(), writes.Load())
}

// TestWeightsConstraint pins the per-query ranking-weight override:
// Weights rescores without filtering, beats the database defaults, and
// the last of several wins.
func TestWeightsConstraint(t *testing.T) {
	db := openDB(t)
	// Database defaults skew heavily toward area...
	if err := db.SetToolParam("icdb", "area_weight", 100); err != nil {
		t.Fatal(err)
	}
	byDefault, err := db.QueryByComponent(genus.CompCounter)
	if err != nil || len(byDefault) == 0 {
		t.Fatalf("default query: %v (%d candidates)", err, len(byDefault))
	}
	// ...but a Weights override scores delay only.
	byDelay, err := db.QueryByComponent(genus.CompCounter, Weights(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(byDelay) != len(byDefault) {
		t.Fatalf("Weights filtered: %d candidates, want %d", len(byDelay), len(byDefault))
	}
	for _, c := range byDelay {
		if c.Cost != c.Delay {
			t.Errorf("%s: cost %g under Weights(0,1), want delay %g", c.Impl.Name, c.Cost, c.Delay)
		}
	}
	// Last Weights wins.
	cands, err := db.QueryByComponent(genus.CompCounter, Weights(0, 1), Weights(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if c.Cost != c.Area {
			t.Errorf("%s: cost %g under last-wins Weights(1,0), want area %g", c.Impl.Name, c.Cost, c.Area)
		}
	}
	// RankWeights reports the database defaults, not the override.
	if wa, wd := db.RankWeights(); wa != 100 || wd != 1 {
		t.Errorf("RankWeights = (%g, %g), want (100, 1)", wa, wd)
	}
}
