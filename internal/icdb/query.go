package icdb

import (
	"fmt"
	"slices"
	"sort"
	"strings"

	"icdb/internal/genus"
	"icdb/internal/iif"
)

// Attrs is the attribute environment a constraint is evaluated against:
// implementation attribute name to numeric value.
type Attrs map[string]float64

// Constraint restricts the implementations a query may return. Build one
// with Where (an IIF attribute expression, the CQL layer of §5) or with
// the typed helpers ForWidth / MaxArea / MaxDelay / AtWidth.
type Constraint struct {
	src  string
	pass func(Attrs) (bool, error)
	// atWidth, when non-zero, marks the constraint as the query's width
	// evaluation point (see AtWidth): the engine evaluates estimator
	// expressions there before filtering and ranking. Negative values
	// record an invalid requested width, rejected when the query runs.
	atWidth int
	// weights, when non-nil, overrides the ranking weights for the query
	// carrying the constraint (see Weights).
	weights *rankW
}

// rankW is one pair of ranking weights: cost = Area*area + Delay*delay.
type rankW struct {
	area, delay float64
}

// String returns the constraint's source form, for diagnostics.
func (c Constraint) String() string { return c.src }

// Accept reports whether attribute environment a satisfies the
// constraint. The zero Constraint accepts everything.
func (c Constraint) Accept(a Attrs) (bool, error) {
	if c.pass == nil {
		return true, nil
	}
	return c.pass(a)
}

// Where compiles an attribute expression such as
// "width_min <= 8 && area <= 10" into a constraint. The expression is
// parsed with iif.ParseExpr and evaluated with C semantics over the
// implementation's Attrs; a non-zero result accepts the implementation.
func Where(expr string) (Constraint, error) {
	e, err := iif.ParseExpr(expr)
	if err != nil {
		return Constraint{}, fmt.Errorf("icdb: constraint %q: %w", expr, err)
	}
	return Constraint{
		src: expr,
		pass: func(a Attrs) (bool, error) {
			v, err := evalAttr(e, a)
			if err != nil {
				return false, fmt.Errorf("icdb: constraint %q: %w", expr, err)
			}
			return v != 0, nil
		},
	}, nil
}

// MustWhere is Where for static expressions; it panics on a parse error.
func MustWhere(expr string) Constraint {
	c, err := Where(expr)
	if err != nil {
		panic(err)
	}
	return c
}

// ForWidth keeps implementations whose width range covers n bits.
func ForWidth(n int) Constraint {
	return Constraint{
		src: fmt.Sprintf("width_min <= %d && width_max >= %d", n, n),
		pass: func(a Attrs) (bool, error) {
			return a["width_min"] <= float64(n) && a["width_max"] >= float64(n), nil
		},
	}
}

// AtWidth sets the query's attribute-evaluation point: candidates must
// cover width n (like ForWidth), and every area/delay value the query
// filters, ranks, or reports is the implementation's estimator
// expression evaluated at n — implementations without a registered
// estimator keep their scalar estimates, the degenerate
// constant-expression case. The attribute environment also gains a
// "width" attribute holding n, so Where expressions may reference it.
func AtWidth(n int) Constraint {
	c := ForWidth(n)
	c.src = fmt.Sprintf("at width %d", n)
	c.atWidth = n
	if n < 1 {
		c.atWidth = -1
	}
	return c
}

// evalWidth extracts the width evaluation point from a query's
// constraints: 0 when no AtWidth constraint is present. Conflicting or
// invalid points are rejected before any row is visited.
func evalWidth(cs []Constraint) (int, error) {
	w := 0
	for _, c := range cs {
		switch {
		case c.atWidth == 0:
		case c.atWidth < 0:
			return 0, fmt.Errorf("icdb: %s: width must be at least 1", c.src)
		case w != 0 && w != c.atWidth:
			return 0, fmt.Errorf("icdb: conflicting width evaluation points %d and %d", w, c.atWidth)
		default:
			w = c.atWidth
		}
	}
	return w, nil
}

// Weights overrides the ranking weights for the query carrying the
// constraint: candidates are scored Area*area + Delay*delay instead of
// using the database-wide tool parameters (see RankWeights). It filters
// nothing. When a query carries several Weights constraints the last
// one wins.
func Weights(area, delay float64) Constraint {
	return Constraint{
		src:     fmt.Sprintf("weights area=%g delay=%g", area, delay),
		weights: &rankW{area: area, delay: delay},
	}
}

// queryWeights resolves the ranking weights of one query: the last
// Weights constraint if any, otherwise the database defaults.
func (db *DB) queryWeights(cs []Constraint) (wa, wd float64) {
	for i := len(cs) - 1; i >= 0; i-- {
		if w := cs[i].weights; w != nil {
			return w.area, w.delay
		}
	}
	return db.rankWeights()
}

// MaxArea keeps implementations whose per-bit area estimate is at most a.
func MaxArea(area float64) Constraint {
	return Constraint{
		src:  fmt.Sprintf("area <= %g", area),
		pass: func(a Attrs) (bool, error) { return a["area"] <= area, nil },
	}
}

// MaxDelay keeps implementations whose delay estimate is at most d.
func MaxDelay(d float64) Constraint {
	return Constraint{
		src:  fmt.Sprintf("delay <= %g", d),
		pass: func(a Attrs) (bool, error) { return a["delay"] <= d, nil },
	}
}

// CmpOp is a comparison operator accepted by AttrCmp.
type CmpOp string

// The comparison operators of AttrCmp constraints. CmpEQ and CmpNE
// compare exactly (no epsilon): they are meant for integer-valued
// attributes such as stages and the width bounds.
const (
	CmpLE CmpOp = "<="
	CmpLT CmpOp = "<"
	CmpGE CmpOp = ">="
	CmpGT CmpOp = ">"
	CmpEQ CmpOp = "="
	CmpNE CmpOp = "!="
)

// ConstraintAttrs returns the attribute vocabulary implementations expose
// to constraints and Order keys, in deterministic order: width_min and
// width_max (the bit-width range, in bits), stages (pipeline stages), and
// the per-bit area and delay estimates.
func ConstraintAttrs() []string {
	return []string{"area", "delay", "stages", "width_min", "width_max"}
}

// AttrCmp builds the single-comparison constraint "attr op v" directly,
// without going through the IIF expression parser — unlike Where it
// accepts non-integer values ("area <= 10.5") and validates the
// attribute name eagerly against ConstraintAttrs. It is the primitive
// the CQL front-end compiles "with" clauses onto.
func AttrCmp(attr string, op CmpOp, v float64) (Constraint, error) {
	if !slices.Contains(ConstraintAttrs(), attr) {
		return Constraint{}, fmt.Errorf("icdb: unknown constraint attribute %q (have %s)",
			attr, strings.Join(ConstraintAttrs(), ", "))
	}
	var pass func(Attrs) (bool, error)
	switch op {
	case CmpLE:
		pass = func(a Attrs) (bool, error) { return a[attr] <= v, nil }
	case CmpLT:
		pass = func(a Attrs) (bool, error) { return a[attr] < v, nil }
	case CmpGE:
		pass = func(a Attrs) (bool, error) { return a[attr] >= v, nil }
	case CmpGT:
		pass = func(a Attrs) (bool, error) { return a[attr] > v, nil }
	case CmpEQ:
		pass = func(a Attrs) (bool, error) { return a[attr] == v, nil }
	case CmpNE:
		pass = func(a Attrs) (bool, error) { return a[attr] != v, nil }
	default:
		return Constraint{}, fmt.Errorf("icdb: unknown comparison operator %q", op)
	}
	return Constraint{src: fmt.Sprintf("%s %s %g", attr, op, v), pass: pass}, nil
}

// attrEnv adapts an Attrs map to iif.EvalEnv[float64], binding the
// generic evaluation core (iif.EvalExpr) to constraint semantics: names
// resolve to attribute values, nothing mutates, and hardware operators
// are "not valid in a constraint". Maps are pointer-shaped, so the
// attrEnv(a) conversion into the interface allocates nothing — which
// keeps evalAttr on the O(1)-allocations-per-row streaming path
// (attrEval.evalAccept) it sits under.
type attrEnv Attrs

func (a attrEnv) Lookup(r *iif.Ref) (float64, error) {
	if len(r.Index) != 0 {
		return 0, fmt.Errorf("%s: attribute %q cannot be indexed", r.Pos, r.Name)
	}
	v, ok := a[r.Name]
	if !ok {
		return 0, fmt.Errorf("%s: unknown attribute %q (have %v)", r.Pos, r.Name, attrNames(Attrs(a)))
	}
	return v, nil
}

func (a attrEnv) Mutate(pos iif.Pos, op iif.UnaryOp, _ iif.Expr) (float64, error) {
	return 0, a.BadUnary(pos, op)
}

func (a attrEnv) BadUnary(pos iif.Pos, op iif.UnaryOp) error {
	return fmt.Errorf("%s: operator %s not valid in a constraint", pos, op)
}

func (a attrEnv) BadBinary(pos iif.Pos, op iif.BinaryOp) error {
	return fmt.Errorf("%s: operator %s not valid in a constraint", pos, op)
}

func (a attrEnv) BadExpr(e iif.Expr) error {
	return fmt.Errorf("expression form %T not valid in a constraint", e)
}

func (a attrEnv) ShortCircuit() bool { return true }

// evalAttr evaluates an attribute expression with C semantics over
// float64: '+' adds, '*' multiplies, comparisons and logical operators
// yield 0/1. Division, % (math.Mod), and ** (math.Pow) follow the float
// domain of iif.EvalExpr — contrast the expander's int evaluation.
func evalAttr(e iif.Expr, a Attrs) (float64, error) {
	return iif.EvalExpr[float64](e, attrEnv(a))
}

func attrNames(a Attrs) []string {
	names := make([]string, 0, len(a))
	for n := range a {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Candidate is one ranked query answer. The implementation's component
// type is available as Impl.Component.
type Candidate struct {
	// Impl is a caller-owned copy of the matching implementation (see
	// Impl.Clone), except in the streaming Scan queries, which share the
	// cache's backing and document the read-only contract themselves.
	Impl Impl
	// Area and Delay are the cost estimates the query evaluated for this
	// candidate: under an AtWidth evaluation point they are the estimator
	// expressions evaluated at that width, otherwise the implementation's
	// scalar per-bit estimates (Impl.Area / Impl.Delay).
	Area  float64
	Delay float64
	// Cost is the ranking score: Area*area_weight + Delay*delay_weight,
	// with weights taken from tool parameters (tool "icdb", defaulting to
	// 1). Lower is better. Cost carries the weighted score even when a
	// query is Ordered by a different attribute.
	Cost float64
}

// OrderKeyCost is the Order.Attr value (also the zero value's meaning)
// that ranks by the weighted cost score rather than a raw attribute.
const OrderKeyCost = "cost"

// Order selects the sort key of a ranked (non-Scan) query. The zero
// Order is the engine's default ranking: weighted cost, cheapest first.
// Attr may be OrderKeyCost or any attribute in ConstraintAttrs; Desc
// reverses the direction. Ties are always broken by implementation name,
// ascending, regardless of direction — so an order is total and a
// bounded (TopK) query returns the same candidates as an unbounded one
// truncated.
type Order struct {
	Attr string
	Desc bool
}

// OrderKeys returns every valid Order.Attr value in deterministic order.
func OrderKeys() []string {
	return append([]string{OrderKeyCost}, ConstraintAttrs()...)
}

// validate rejects unknown sort keys eagerly, before any row is visited.
func (o Order) validate() error {
	if o.Attr == "" || o.Attr == OrderKeyCost || slices.Contains(ConstraintAttrs(), o.Attr) {
		return nil
	}
	return fmt.Errorf("icdb: unknown order key %q (have %s)", o.Attr, strings.Join(OrderKeys(), ", "))
}

// rank computes im's sort key under o: the value candidates are compared
// by, negated for descending orders so ranking logic is always
// ascending. area and delay are the query-evaluated estimates (see
// Candidate.Area), so ordering by them is width-aware under AtWidth.
func (o Order) rank(im *Impl, area, delay, cost float64) float64 {
	v := cost
	switch o.Attr {
	case "", OrderKeyCost:
	case "area":
		v = area
	case "delay":
		v = delay
	case "stages":
		v = float64(im.Stages)
	case "width_min":
		v = float64(im.WidthMin)
	case "width_max":
		v = float64(im.WidthMax)
	}
	if o.Desc {
		return -v
	}
	return v
}

// RankWeights returns the database-default ranking weights: the tool
// parameters area_weight and delay_weight of tool "icdb", each
// defaulting to 1 when unset. Queries score candidates
// Area*area + Delay*delay with these weights unless a Weights
// constraint overrides them.
func (db *DB) RankWeights() (area, delay float64) { return db.rankWeights() }

// rankWeights reads the ranking weights from the tool-parameters
// relation. They are cached on the DB and refreshed after SetToolParam,
// so a query pays for at most one tool-parameter read, not one per
// candidate or per call.
func (db *DB) rankWeights() (wa, wd float64) {
	db.cmu.RLock()
	if db.wOK {
		wa, wd = db.wa, db.wd
		db.cmu.RUnlock()
		return wa, wd
	}
	db.cmu.RUnlock()
	wa, wd = 1, 1
	if v, ok := db.ToolParam("icdb", "area_weight"); ok {
		wa = v
	}
	if v, ok := db.ToolParam("icdb", "delay_weight"); ok {
		wd = v
	}
	db.cmu.Lock()
	db.wa, db.wd, db.wOK = wa, wd, true
	db.cmu.Unlock()
	return wa, wd
}

// QueryByFunction answers the paper's central query: which component
// implementations can execute function fn, subject to attribute
// constraints? Results are ranked by cost, cheapest first.
func (db *DB) QueryByFunction(fn genus.Function, cs ...Constraint) ([]Candidate, error) {
	return db.QueryByFunctions([]genus.Function{fn}, cs...)
}

// QueryByFunctions returns implementations that execute every function in
// fns (the merged-component query of §4.1: COUNTER+STORAGE finds
// counters but not pure incrementers), ranked by cost. Candidates come
// from intersecting the function inverted index's posting lists, not
// from scanning the implementations relation.
func (db *DB) QueryByFunctions(fns []genus.Function, cs ...Constraint) ([]Candidate, error) {
	return db.QueryByFunctionsTopK(fns, 0, cs...)
}

// QueryByFunctionTopK is QueryByFunction bounded to the k cheapest
// candidates (k <= 0 means unbounded). Bounded queries rank with a
// fixed-size heap instead of sorting every match.
func (db *DB) QueryByFunctionTopK(fn genus.Function, k int, cs ...Constraint) ([]Candidate, error) {
	return db.QueryByFunctionsTopK([]genus.Function{fn}, k, cs...)
}

// QueryByFunctionsTopK is QueryByFunctions bounded to the k cheapest
// candidates (k <= 0 means unbounded).
func (db *DB) QueryByFunctionsTopK(fns []genus.Function, k int, cs ...Constraint) ([]Candidate, error) {
	return db.QueryByFunctionsOrdered(fns, Order{}, k, cs...)
}

// QueryByFunctionsOrdered is QueryByFunctionsTopK under an explicit sort
// key: candidates executing every function in fns, ranked by order,
// bounded to the best k (k <= 0 means unbounded). It is the engine entry
// point for CQL "find … order by …" commands.
func (db *DB) QueryByFunctionsOrdered(fns []genus.Function, order Order, k int, cs ...Constraint) ([]Candidate, error) {
	return db.rankSeq(func(d *derived, visit func(*Impl) bool) error {
		return forEachByFunctions(d, fns, visit)
	}, cs, k, order)
}

// QueryByFunctionsOfTypeOrdered is QueryByFunctionsOrdered restricted
// to one component type: candidates must execute every function in fns
// and be implementations of ct. The type filter applies in-stream,
// before the TopK heap, so a bounded query clones O(k) implementations
// like every other ranked path. It serves CQL find commands combining
// "of type" with "executing".
func (db *DB) QueryByFunctionsOfTypeOrdered(fns []genus.Function, ct genus.ComponentType, order Order, k int, cs ...Constraint) ([]Candidate, error) {
	nct, ok := genus.NormalizeComponentType(string(ct))
	if !ok {
		return nil, fmt.Errorf("icdb: unknown component type %q", ct)
	}
	return db.rankSeq(func(d *derived, visit func(*Impl) bool) error {
		return forEachByFunctions(d, fns, func(im *Impl) bool {
			if im.Component != nct {
				return true
			}
			return visit(im)
		})
	}, cs, k, order)
}

// QueryByComponent returns the ranked implementations of one component
// type, served from the component inverted index.
func (db *DB) QueryByComponent(ct genus.ComponentType, cs ...Constraint) ([]Candidate, error) {
	return db.QueryByComponentTopK(ct, 0, cs...)
}

// QueryByComponentTopK is QueryByComponent bounded to the k cheapest
// candidates (k <= 0 means unbounded).
func (db *DB) QueryByComponentTopK(ct genus.ComponentType, k int, cs ...Constraint) ([]Candidate, error) {
	return db.QueryByComponentOrdered(ct, Order{}, k, cs...)
}

// QueryByComponentOrdered is QueryByComponentTopK under an explicit sort
// key (see Order).
func (db *DB) QueryByComponentOrdered(ct genus.ComponentType, order Order, k int, cs ...Constraint) ([]Candidate, error) {
	return db.rankSeq(func(d *derived, visit func(*Impl) bool) error {
		return forEachByComponent(d, ct, visit)
	}, cs, k, order)
}

// QueryOrdered ranks the whole catalog: every registered implementation
// passing cs, sorted by order, bounded to the best k (k <= 0 means
// unbounded). It serves CQL "find component" commands that select by
// attribute alone, with no function or component-type filter.
func (db *DB) QueryOrdered(order Order, k int, cs ...Constraint) ([]Candidate, error) {
	return db.rankSeq(forEachImpl, cs, k, order)
}

// ---- streaming core ----
//
// Every query path is built on an implSeq: a function streaming cached
// *Impl values from one pinned derived snapshot to a visitor. The
// snapshot is copy-on-write (see derivedSnap), so the stream holds no
// lock: visitors may run arbitrarily long and may call back into the
// DB — including registering implementations, which land in a fresh
// snapshot without disturbing the one mid-stream. Cached *Impl values
// are never mutated in place (re-registration swaps pointers), so
// consumers may retain one past the stream — but must copy (Clone)
// anything they hand to callers.

// implSeq streams implementations out of snapshot d to visit, stopping
// early when visit returns false.
type implSeq func(d *derived, visit func(*Impl) bool) error

// forEachByFunctions intersects the function inverted index's posting
// lists smallest-first: it iterates the rarest function's postings and
// yields implementations present in all others.
func forEachByFunctions(d *derived, fns []genus.Function, visit func(*Impl) bool) error {
	if len(fns) == 0 {
		return fmt.Errorf("icdb: query with no functions")
	}
	want := make([]genus.Function, 0, len(fns))
	for _, f := range fns {
		nf, err := genus.NormalizeFunction(string(f))
		if err != nil {
			return err
		}
		want = append(want, nf)
	}
	posts := make([]map[string]*Impl, len(want))
	smallest := 0
	for i, f := range want {
		posts[i] = d.byFn[f]
		if len(posts[i]) < len(posts[smallest]) {
			smallest = i
		}
	}
outer:
	for name, im := range posts[smallest] {
		for i, post := range posts {
			if i == smallest {
				continue
			}
			if _, ok := post[name]; !ok {
				continue outer
			}
		}
		if !visit(im) {
			return nil
		}
	}
	return nil
}

// forEachByComponent streams one component type's posting map.
func forEachByComponent(d *derived, ct genus.ComponentType, visit func(*Impl) bool) error {
	nct, ok := genus.NormalizeComponentType(string(ct))
	if !ok {
		return fmt.Errorf("icdb: unknown component type %q", ct)
	}
	for _, im := range d.byCt[nct] {
		if !visit(im) {
			return nil
		}
	}
	return nil
}

// forEachImpl streams the whole decoded-implementation cache.
func forEachImpl(d *derived, visit func(*Impl) bool) error {
	for _, im := range d.impls {
		if !visit(im) {
			return nil
		}
	}
	return nil
}

// attrEval is the attribute-evaluation context of one streamed query: a
// zero width is the scalar engine (attributes read straight off the
// implementation), a positive width evaluates estimator expressions
// there. It reads the compiled estimators of the same pinned derived
// snapshot the query streams from, so one query sees one consistent
// (implementation, estimator) pairing end to end.
type attrEval struct {
	ests  map[string]*estPair
	width int
}

// fill (re)fills a with im's attributes and returns the evaluated area
// and delay estimates. At a width point, a gains "width" and its
// area/delay entries are replaced by the estimator-evaluated values, so
// constraints filter on exactly what ranking scores. Estimator
// expressions themselves see the scalar attributes (area and delay are
// the per-bit estimates while both expressions evaluate).
func (ev attrEval) fill(im *Impl, a Attrs) (area, delay float64, err error) {
	im.fillAttrs(a)
	area, delay = im.Area, im.Delay
	if ev.width == 0 {
		return area, delay, nil
	}
	a["width"] = float64(ev.width)
	if est := ev.ests[im.Name]; est != nil {
		if est.area != nil {
			if area, err = evalAttr(est.area, a); err != nil {
				return 0, 0, fmt.Errorf("icdb: estimator area(%s): %w", im.Name, err)
			}
		}
		if est.delay != nil {
			if delay, err = evalAttr(est.delay, a); err != nil {
				return 0, 0, fmt.Errorf("icdb: estimator delay(%s): %w", im.Name, err)
			}
		}
	}
	a["area"], a["delay"] = area, delay
	return area, delay, nil
}

// evalAccept evaluates im at ev's width point and runs the constraints.
// The attribute map pointed to by attrs is allocated once and refilled
// per candidate: constraints are only constructible inside this package
// (Where, AttrCmp, ForWidth, MaxArea, MaxDelay, AtWidth) and none
// retains the map — an invariant every new constructor must keep — so
// reuse is sound and keeps constrained streaming at O(1) allocations per
// row.
func (ev attrEval) evalAccept(cs []Constraint, im *Impl, attrs *Attrs) (area, delay float64, ok bool, err error) {
	if len(cs) == 0 && ev.width == 0 {
		return im.Area, im.Delay, true, nil
	}
	if *attrs == nil {
		*attrs = make(Attrs, 8)
	}
	area, delay, err = ev.fill(im, *attrs)
	if err != nil {
		return 0, 0, false, err
	}
	for _, c := range cs {
		pass, err := c.Accept(*attrs)
		if err != nil || !pass {
			return 0, 0, false, err
		}
	}
	return area, delay, true, nil
}

// rankSeq materializes the ranked answer of one streamed query:
// survivors of the constraints, scored, and returned best-first under
// order (ties broken by name). With k > 0 it keeps a worst-on-top heap
// of k entries fed directly from the stream, so an unbounded result set
// is never materialized or fully sorted. Cloning the retained
// implementations is deferred until after the stream: cached *Impl
// values are immutable and stay valid past the index lock.
func (db *DB) rankSeq(seq implSeq, cs []Constraint, k int, order Order) ([]Candidate, error) {
	if err := order.validate(); err != nil {
		return nil, err
	}
	width, err := evalWidth(cs)
	if err != nil {
		return nil, err
	}
	wa, wd := db.queryWeights(cs)
	d, err := db.derivedSnap()
	if err != nil {
		return nil, err
	}
	ev := attrEval{width: width}
	if width != 0 {
		// Estimators only evaluate at a width point; a width-free query
		// never builds (or, lazily, decodes) the estimators relation.
		es, err := db.estSnap()
		if err != nil {
			return nil, err
		}
		ev.ests = es.ests
	}
	var kept []heapItem
	var attrs Attrs
	var cerr error
	h := candHeap{limit: k}
	err = seq(d, func(im *Impl) bool {
		area, delay, ok, err := ev.evalAccept(cs, im, &attrs)
		if err != nil {
			cerr = err
			return false
		}
		if !ok {
			return true
		}
		cost := area*wa + delay*wd
		it := heapItem{im: im, area: area, delay: delay, cost: cost, rank: order.rank(im, area, delay, cost)}
		if k > 0 {
			h.offer(it)
		} else {
			kept = append(kept, it)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if cerr != nil {
		return nil, cerr
	}
	if k > 0 {
		kept = h.items
	}
	// kept[i] sorts before kept[j] exactly when j ranks strictly after i.
	sort.SliceStable(kept, func(i, j int) bool { return worse(kept[j], kept[i]) })
	out := make([]Candidate, len(kept))
	for i, it := range kept {
		out[i] = Candidate{Impl: it.im.Clone(), Area: it.area, Delay: it.delay, Cost: it.cost}
	}
	return out, nil
}

// scanSeq drives one streamed query end to end: constraint filtering,
// costing, and delivery to the caller's visitor, allocating O(1) total
// beyond what the visitor itself does.
func (db *DB) scanSeq(seq implSeq, cs []Constraint, visit func(Candidate) bool) error {
	width, err := evalWidth(cs)
	if err != nil {
		return err
	}
	wa, wd := db.queryWeights(cs)
	d, err := db.derivedSnap()
	if err != nil {
		return err
	}
	ev := attrEval{width: width}
	if width != 0 {
		es, err := db.estSnap()
		if err != nil {
			return err
		}
		ev.ests = es.ests
	}
	var attrs Attrs
	var cerr error
	err = seq(d, func(im *Impl) bool {
		area, delay, ok, err := ev.evalAccept(cs, im, &attrs)
		if err != nil {
			cerr = err
			return false
		}
		if !ok {
			return true
		}
		return visit(Candidate{Impl: *im, Area: area, Delay: delay, Cost: area*wa + delay*wd})
	})
	if err != nil {
		return err
	}
	return cerr
}

// QueryByFunctionScan is the streaming form of QueryByFunction: it
// yields each candidate executing fn (and passing cs) to visit as it is
// found, without materializing, ranking, or copying the result set.
// Candidates arrive in unspecified order; visit returning false stops
// the scan.
//
// The yielded Candidate's Impl shares the cache's backing slices: treat
// it as read-only and call Impl.Clone before retaining it past the
// visit. The stream runs over a pinned copy-on-write snapshot and holds
// no lock, so visit MAY take arbitrarily long and MAY call back into
// the DB — re-entrant queries and registrations proceed normally; the
// stream keeps yielding the snapshot it pinned and concurrent writers
// are never blocked by a slow visitor.
func (db *DB) QueryByFunctionScan(fn genus.Function, visit func(Candidate) bool, cs ...Constraint) error {
	return db.QueryByFunctionsScan([]genus.Function{fn}, visit, cs...)
}

// QueryByFunctionsScan is QueryByFunctionScan over a function set: it
// streams the implementations executing every function in fns. See
// QueryByFunctionScan for the visitor contract.
func (db *DB) QueryByFunctionsScan(fns []genus.Function, visit func(Candidate) bool, cs ...Constraint) error {
	return db.scanSeq(func(d *derived, v func(*Impl) bool) error {
		return forEachByFunctions(d, fns, v)
	}, cs, visit)
}

// QueryByComponentScan streams the implementations of one component type.
// See QueryByFunctionScan for the visitor contract.
func (db *DB) QueryByComponentScan(ct genus.ComponentType, visit func(Candidate) bool, cs ...Constraint) error {
	return db.scanSeq(func(d *derived, v func(*Impl) bool) error {
		return forEachByComponent(d, ct, v)
	}, cs, visit)
}

// QueryScan streams every registered implementation passing cs — the
// whole-catalog walk for tools that want their own filtering or
// aggregation without paying for a materialized copy. See
// QueryByFunctionScan for the visitor contract.
func (db *DB) QueryScan(visit func(Candidate) bool, cs ...Constraint) error {
	return db.scanSeq(forEachImpl, cs, visit)
}

// candHeap is a bounded worst-on-top heap over (rank, name): the root is
// the worst candidate retained, so a better offer evicts it in O(log k).
type candHeap struct {
	limit int
	items []heapItem
}

// heapItem is one retained candidate mid-ranking: rank is the Order sort
// key (already negated for descending orders); area, delay, and cost are
// the evaluated estimates reported in the final Candidate.
type heapItem struct {
	im    *Impl
	area  float64
	delay float64
	cost  float64
	rank  float64
}

// worse reports whether a ranks strictly after b (higher rank, name as
// tie-break — the exact inverse of the final result order).
func worse(a, b heapItem) bool {
	if a.rank != b.rank {
		return a.rank > b.rank
	}
	return a.im.Name > b.im.Name
}

func (h *candHeap) offer(it heapItem) {
	if len(h.items) < h.limit {
		h.items = append(h.items, it)
		h.up(len(h.items) - 1)
		return
	}
	if !worse(h.items[0], it) {
		return
	}
	h.items[0] = it
	h.down(0)
}

func (h *candHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !worse(h.items[i], h.items[parent]) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *candHeap) down(i int) {
	for {
		worst := i
		for _, c := range []int{2*i + 1, 2*i + 2} {
			if c < len(h.items) && worse(h.items[c], h.items[worst]) {
				worst = c
			}
		}
		if worst == i {
			return
		}
		h.items[i], h.items[worst] = h.items[worst], h.items[i]
		i = worst
	}
}
