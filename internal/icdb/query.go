package icdb

import (
	"fmt"
	"math"
	"sort"

	"icdb/internal/genus"
	"icdb/internal/iif"
)

// Attrs is the attribute environment a constraint is evaluated against:
// implementation attribute name to numeric value.
type Attrs map[string]float64

// Constraint restricts the implementations a query may return. Build one
// with Where (an IIF attribute expression, the CQL layer of §5) or with
// the typed helpers ForWidth / MaxArea / MaxDelay.
type Constraint struct {
	src  string
	pass func(Attrs) (bool, error)
}

// String returns the constraint's source form, for diagnostics.
func (c Constraint) String() string { return c.src }

// Where compiles an attribute expression such as
// "width_min <= 8 && area <= 10" into a constraint. The expression is
// parsed with iif.ParseExpr and evaluated with C semantics over the
// implementation's Attrs; a non-zero result accepts the implementation.
func Where(expr string) (Constraint, error) {
	e, err := iif.ParseExpr(expr)
	if err != nil {
		return Constraint{}, fmt.Errorf("icdb: constraint %q: %w", expr, err)
	}
	return Constraint{
		src: expr,
		pass: func(a Attrs) (bool, error) {
			v, err := evalAttr(e, a)
			if err != nil {
				return false, fmt.Errorf("icdb: constraint %q: %w", expr, err)
			}
			return v != 0, nil
		},
	}, nil
}

// MustWhere is Where for static expressions; it panics on a parse error.
func MustWhere(expr string) Constraint {
	c, err := Where(expr)
	if err != nil {
		panic(err)
	}
	return c
}

// ForWidth keeps implementations whose width range covers n bits.
func ForWidth(n int) Constraint {
	return Constraint{
		src: fmt.Sprintf("width_min <= %d && width_max >= %d", n, n),
		pass: func(a Attrs) (bool, error) {
			return a["width_min"] <= float64(n) && a["width_max"] >= float64(n), nil
		},
	}
}

// MaxArea keeps implementations whose per-bit area estimate is at most a.
func MaxArea(area float64) Constraint {
	return Constraint{
		src:  fmt.Sprintf("area <= %g", area),
		pass: func(a Attrs) (bool, error) { return a["area"] <= area, nil },
	}
}

// MaxDelay keeps implementations whose delay estimate is at most d.
func MaxDelay(d float64) Constraint {
	return Constraint{
		src:  fmt.Sprintf("delay <= %g", d),
		pass: func(a Attrs) (bool, error) { return a["delay"] <= d, nil },
	}
}

// evalAttr evaluates an attribute expression with C semantics: '+' adds,
// '*' multiplies, comparisons and logical operators yield 0/1.
func evalAttr(e iif.Expr, a Attrs) (float64, error) {
	switch x := e.(type) {
	case *iif.IntLit:
		return float64(x.V), nil
	case *iif.Ref:
		if len(x.Index) != 0 {
			return 0, fmt.Errorf("%s: attribute %q cannot be indexed", x.Pos, x.Name)
		}
		v, ok := a[x.Name]
		if !ok {
			return 0, fmt.Errorf("%s: unknown attribute %q (have %v)", x.Pos, x.Name, attrNames(a))
		}
		return v, nil
	case *iif.Unary:
		v, err := evalAttr(x.X, a)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case iif.UNeg:
			return -v, nil
		case iif.UNot:
			return b2f(v == 0), nil
		}
		return 0, fmt.Errorf("%s: operator %s not valid in a constraint", x.Pos, x.Op)
	case *iif.Binary:
		l, err := evalAttr(x.X, a)
		if err != nil {
			return 0, err
		}
		// Short-circuit logical operators before evaluating the right side.
		switch x.Op {
		case iif.BLAnd:
			if l == 0 {
				return 0, nil
			}
		case iif.BLOr:
			if l != 0 {
				return 1, nil
			}
		}
		r, err := evalAttr(x.Y, a)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case iif.BOr:
			return l + r, nil
		case iif.BAnd:
			return l * r, nil
		case iif.BMinus:
			return l - r, nil
		case iif.BDiv:
			if r == 0 {
				return 0, fmt.Errorf("%s: division by zero", x.Pos)
			}
			return l / r, nil
		case iif.BMod:
			if r == 0 {
				return 0, fmt.Errorf("%s: modulo by zero", x.Pos)
			}
			return math.Mod(l, r), nil
		case iif.BPow:
			return math.Pow(l, r), nil
		case iif.BEq:
			return b2f(l == r), nil
		case iif.BNeq:
			return b2f(l != r), nil
		case iif.BLt:
			return b2f(l < r), nil
		case iif.BGt:
			return b2f(l > r), nil
		case iif.BLeq:
			return b2f(l <= r), nil
		case iif.BGeq:
			return b2f(l >= r), nil
		case iif.BLAnd:
			return b2f(r != 0), nil
		case iif.BLOr:
			return b2f(r != 0), nil
		}
		return 0, fmt.Errorf("%s: operator %s not valid in a constraint", x.Pos, x.Op)
	}
	return 0, fmt.Errorf("expression form %T not valid in a constraint", e)
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func attrNames(a Attrs) []string {
	names := make([]string, 0, len(a))
	for n := range a {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Candidate is one ranked query answer. The implementation's component
// type is available as Impl.Component.
type Candidate struct {
	Impl Impl
	// Cost is the ranking score: Area*area_weight + Delay*delay_weight,
	// with weights taken from tool parameters (tool "icdb", defaulting to
	// 1). Lower is better.
	Cost float64
}

// rankWeights reads the ranking weights from the tool-parameters
// relation.
func (db *DB) rankWeights() (wa, wd float64) {
	wa, wd = 1, 1
	if v, ok := db.ToolParam("icdb", "area_weight"); ok {
		wa = v
	}
	if v, ok := db.ToolParam("icdb", "delay_weight"); ok {
		wd = v
	}
	return wa, wd
}

// QueryByFunction answers the paper's central query: which component
// implementations can execute function fn, subject to attribute
// constraints? Results are ranked by cost, cheapest first.
func (db *DB) QueryByFunction(fn genus.Function, cs ...Constraint) ([]Candidate, error) {
	return db.QueryByFunctions([]genus.Function{fn}, cs...)
}

// QueryByFunctions returns implementations that execute every function in
// fns (the merged-component query of §4.1: COUNTER+STORAGE finds
// counters but not pure incrementers), ranked by cost.
func (db *DB) QueryByFunctions(fns []genus.Function, cs ...Constraint) ([]Candidate, error) {
	if len(fns) == 0 {
		return nil, fmt.Errorf("icdb: query with no functions")
	}
	want := make([]genus.Function, 0, len(fns))
	for _, f := range fns {
		nf, err := genus.NormalizeFunction(string(f))
		if err != nil {
			return nil, err
		}
		want = append(want, nf)
	}
	return db.query(func(im Impl) bool {
		has := make(map[genus.Function]bool, len(im.Functions))
		for _, f := range im.Functions {
			has[f] = true
		}
		for _, f := range want {
			if !has[f] {
				return false
			}
		}
		return true
	}, cs)
}

// QueryByComponent returns the ranked implementations of one component
// type.
func (db *DB) QueryByComponent(ct genus.ComponentType, cs ...Constraint) ([]Candidate, error) {
	nct, ok := genus.NormalizeComponentType(string(ct))
	if !ok {
		return nil, fmt.Errorf("icdb: unknown component type %q", ct)
	}
	return db.query(func(im Impl) bool { return im.Component == nct }, cs)
}

func (db *DB) query(match func(Impl) bool, cs []Constraint) ([]Candidate, error) {
	impls, err := db.Impls()
	if err != nil {
		return nil, err
	}
	wa, wd := db.rankWeights()
	var out []Candidate
	for _, im := range impls {
		if !match(im) {
			continue
		}
		ok := true
		for _, c := range cs {
			pass, err := c.pass(im.Attrs())
			if err != nil {
				return nil, err
			}
			if !pass {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		out = append(out, Candidate{
			Impl: im,
			Cost: im.Area*wa + im.Delay*wd,
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Cost != out[j].Cost {
			return out[i].Cost < out[j].Cost
		}
		return out[i].Impl.Name < out[j].Impl.Name
	})
	return out, nil
}
